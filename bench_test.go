package rdfind

// This file provides one testing.B benchmark per evaluation artifact of the
// paper (every table and figure of §8 and Appendix B), wrapping the
// experiment runners in internal/experiments at a reduced scale so that
// `go test -bench=.` regenerates the whole evaluation in bounded time. For
// full-size reports use:
//
//	go run ./cmd/benchsuite -exp all -scale 1 | tee experiments.txt
//
// EXPERIMENTS.md records a full-scale run next to the paper's numbers.

import (
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/experiments"
)

// benchScale keeps per-iteration cost in the single-digit seconds.
const benchScale = 0.1

func runExperiment(b *testing.B, id string) {
	b.Helper()
	opts := experiments.Options{Scale: benchScale, Workers: 2}
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(id, opts, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Datasets(b *testing.B)           { runExperiment(b, "table2") }
func BenchmarkFig2SearchSpace(b *testing.B)          { runExperiment(b, "fig2") }
func BenchmarkFig4ConditionFrequencies(b *testing.B) { runExperiment(b, "fig4") }
func BenchmarkFig7VsCinderella(b *testing.B)         { runExperiment(b, "fig7") }
func BenchmarkFig8TripleScaling(b *testing.B)        { runExperiment(b, "fig8") }
func BenchmarkFig9ScaleOut(b *testing.B)             { runExperiment(b, "fig9") }
func BenchmarkFig10SupportRuntime(b *testing.B)      { runExperiment(b, "fig10") }
func BenchmarkFig11SupportResults(b *testing.B)      { runExperiment(b, "fig11") }
func BenchmarkFig12PruningSmall(b *testing.B)        { runExperiment(b, "fig12") }
func BenchmarkFig13PruningLarge(b *testing.B)        { runExperiment(b, "fig13") }
func BenchmarkSec86MinimalFirst(b *testing.B)        { runExperiment(b, "sec86") }
func BenchmarkFig14QueryMinimization(b *testing.B)   { runExperiment(b, "fig14") }
func BenchmarkAppBUseCases(b *testing.B)             { runExperiment(b, "appB") }
func BenchmarkAblationBloomSize(b *testing.B)        { runExperiment(b, "ablation") }

// BenchmarkDiscover measures the core pipeline itself (no reporting) on the
// Diseasome analogue across thresholds — the workload of Figs. 10 and 12.
func BenchmarkDiscover(b *testing.B) {
	spec, _ := datagen.ByName("Diseasome")
	ds := spec.Generate(benchScale)
	for _, h := range []int{10, 100, 1000} {
		b.Run(sprintH(h), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Discover(ds, core.Config{Support: h, Workers: 2})
			}
		})
	}
}

// BenchmarkDiscoverVariants compares the pipeline variants of §8.5/§8.6.
func BenchmarkDiscoverVariants(b *testing.B) {
	spec, _ := datagen.ByName("Diseasome")
	ds := spec.Generate(benchScale)
	for _, v := range []core.Variant{core.Standard, core.DirectExtraction, core.NoFrequentConditions, core.MinimalFirst} {
		b.Run(v.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Discover(ds, core.Config{Support: 25, Workers: 2, Variant: v})
			}
		})
	}
}

func sprintH(h int) string {
	switch h {
	case 10:
		return "h=10"
	case 100:
		return "h=100"
	default:
		return "h=1000"
	}
}
