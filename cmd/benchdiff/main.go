// Command benchdiff compares two machine-readable benchmark records written
// by benchsuite -out and flags performance regressions.
//
// Usage:
//
//	benchdiff [-threshold F] [-alloc-threshold F] OLD.json NEW.json
//
// Wall times (the whole experiment's and each pipeline run's) may regress by
// up to the threshold fraction (default 0.2 = 20%) before the comparison
// fails; total work is deterministic for a given configuration, so any
// work-count change at all is flagged. Allocation counts (mallocs), where
// both records measured them, get their own threshold (default 0.5 — GC
// timing makes them noisier than wall time). Exit codes: 0 = within
// threshold, 1 = regression detected, 2 = usage or unreadable/incomparable
// records.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 0.2, "tolerated wall-time regression as a fraction (0.2 = 20%)")
	allocThreshold := fs.Float64("alloc-threshold", 0.5, "tolerated allocation-count regression as a fraction (0.5 = 50%)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 || *threshold < 0 || *allocThreshold < 0 {
		fmt.Fprintln(stderr, "usage: benchdiff [-threshold F] [-alloc-threshold F] OLD.json NEW.json")
		fs.PrintDefaults()
		return 2
	}
	oldRec, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	newRec, err := load(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	if oldRec.Schema != newRec.Schema {
		fmt.Fprintf(stderr, "benchdiff: schema mismatch: %q vs %q\n", oldRec.Schema, newRec.Schema)
		return 2
	}
	if oldRec.Experiment != newRec.Experiment {
		fmt.Fprintf(stderr, "benchdiff: different experiments: %q vs %q\n", oldRec.Experiment, newRec.Experiment)
		return 2
	}

	regressions := diff(oldRec, newRec, *threshold, *allocThreshold, stdout)
	if regressions > 0 {
		fmt.Fprintf(stdout, "FAIL: %d regression(s) beyond threshold\n", regressions)
		return 1
	}
	fmt.Fprintln(stdout, "OK: within threshold")
	return 0
}

func load(path string) (*experiments.BenchRecord, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec experiments.BenchRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rec.Schema == "" {
		return nil, fmt.Errorf("%s: not a benchmark record (no schema)", path)
	}
	return &rec, nil
}

// diff writes the comparison table and returns the number of regressions:
// wall times, work counts, or allocation counts that grew beyond their
// threshold fraction. (Work counts are nearly — not exactly — deterministic:
// combiner output sizes depend on the run's random hash seed, so they get the
// same tolerance instead of an exact comparison. Allocation counts are only
// compared when both records carry them, so records from before the counters
// existed still diff cleanly.)
func diff(oldRec, newRec *experiments.BenchRecord, threshold, allocThreshold float64, w io.Writer) int {
	fmt.Fprintf(w, "== %s: old vs new ==\n", oldRec.Experiment)
	regressions := 0
	checkAt := func(label, unit string, oldV, newV, limit float64) {
		delta := 0.0
		if oldV > 0 {
			delta = newV/oldV - 1
		}
		mark := ""
		if delta > limit {
			mark = "  << REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "%-40s %12.1f%s %12.1f%s %+7.1f%%%s\n", label, oldV, unit, newV, unit, delta*100, mark)
	}
	check := func(label, unit string, oldV, newV float64) {
		checkAt(label, unit, oldV, newV, threshold)
	}
	checkAllocs := func(label string, oldV, newV uint64) {
		if oldV == 0 || newV == 0 {
			return // at least one record predates allocation accounting
		}
		checkAt(label, "", float64(oldV), float64(newV), allocThreshold)
	}
	// Spilled bytes get the allocation threshold too: flush boundaries shift
	// with map growth and scheduling, and — like mallocs — the counter only
	// exists when both records ran with a memory budget.
	checkSpill := func(label string, oldV, newV int64) {
		if oldV == 0 || newV == 0 {
			return // at least one record ran unbudgeted (or predates spilling)
		}
		checkAt(label, "", float64(oldV), float64(newV), allocThreshold)
	}
	// Materialized bytes (narrow-stage output buffering) follow the same
	// both-sides-measured rule: zero means the record predates the counter.
	// Regressions here mean fused chains started re-materializing
	// intermediates, so they get the tighter wall-time threshold.
	checkMaterialized := func(label string, oldV, newV int64) {
		if oldV == 0 || newV == 0 {
			return // at least one record predates materialization accounting
		}
		checkAt(label, "", float64(oldV), float64(newV), threshold)
	}
	// Batch counts follow the both-sides-measured rule: zero means the record
	// ran record-at-a-time (or predates the columnar path). Batch counts for a
	// fixed configuration are deterministic in partition sizes, but retries and
	// variant mixes shift them a little, so they get the wall-time threshold
	// rather than an exact comparison.
	checkBatches := func(label string, oldV, newV int64) {
		if oldV == 0 || newV == 0 {
			return // at least one record ran without columnar execution
		}
		checkAt(label, "", float64(oldV), float64(newV), threshold)
	}
	// Serving metrics follow the both-sides-measured rule (zero means a batch
	// experiment or a record from before the serving layer). Latency quantiles
	// regress when they GROW beyond the threshold; throughput regresses when
	// it DROPS by more than the threshold, so the ratio is inverted.
	checkLatency := func(label string, oldV, newV float64) {
		if oldV == 0 || newV == 0 {
			return // at least one record predates serving metrics
		}
		checkAt(label, "ms", oldV, newV, threshold)
	}
	checkThroughput := func(label string, oldV, newV float64) {
		if oldV == 0 || newV == 0 {
			return // at least one record predates serving metrics
		}
		delta := newV/oldV - 1
		mark := ""
		if -delta > threshold { // a qps drop is the regression
			mark = "  << REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "%-40s %12.1f %12.1f %+7.1f%%%s\n", label, oldV, newV, delta*100, mark)
	}
	// Ingest placement-shuffle volume follows the both-sides-measured rule:
	// zero means single-process ingest or a record from before the source
	// layer. For a fixed configuration placement is a pure function of
	// dictionary IDs, so growth beyond the wall threshold means the ingest
	// path started moving more data.
	checkShuffle := func(label string, oldV, newV int64) {
		if oldV == 0 || newV == 0 {
			return // at least one record predates streamed-ingest accounting
		}
		checkAt(label, "", float64(oldV), float64(newV), threshold)
	}
	check("wall", "ms", oldRec.WallMS, newRec.WallMS)
	check("total work", "", float64(oldRec.TotalWork), float64(newRec.TotalWork))
	checkAllocs("mallocs", oldRec.Mallocs, newRec.Mallocs)
	checkSpill("spilled bytes", oldRec.SpilledBytes, newRec.SpilledBytes)
	checkMaterialized("materialized bytes", oldRec.MaterializedBytes, newRec.MaterializedBytes)
	checkBatches("batches", oldRec.Batches, newRec.Batches)
	checkShuffle("shuffle bytes", oldRec.ShuffleBytes, newRec.ShuffleBytes)
	checkThroughput("serve qps", oldRec.QPS, newRec.QPS)
	checkLatency("serve p50", oldRec.P50MS, newRec.P50MS)
	checkLatency("serve p99", oldRec.P99MS, newRec.P99MS)

	newRuns := indexRuns(newRec.Runs)
	for _, or := range oldRec.Runs {
		k := runKey(or)
		queue := newRuns[k]
		if len(queue) == 0 {
			fmt.Fprintf(w, "%-40s only in old record\n", k)
			continue
		}
		nr := queue[0]
		newRuns[k] = queue[1:]
		check("run "+k, "ms", or.WallMS, nr.WallMS)
		check("work "+k, "", float64(or.TotalWork), float64(nr.TotalWork))
		checkAllocs("mallocs "+k, or.Mallocs, nr.Mallocs)
		checkSpill("spill "+k, or.SpilledBytes, nr.SpilledBytes)
		checkMaterialized("materialized "+k, or.MaterializedBytes, nr.MaterializedBytes)
		checkBatches("batches "+k, or.Batches, nr.Batches)
		checkShuffle("shuffle "+k, or.ShuffleBytes, nr.ShuffleBytes)
	}
	for k, queue := range newRuns {
		for range queue {
			fmt.Fprintf(w, "%-40s only in new record\n", k)
		}
	}
	return regressions
}

// runKey identifies a pipeline run by its configuration; repeated identical
// configurations are matched in order.
func runKey(r experiments.PipelineRun) string {
	return fmt.Sprintf("%s/%s/w%d/h%d", r.Label, r.Variant, r.Workers, r.Support)
}

func indexRuns(runs []experiments.PipelineRun) map[string][]experiments.PipelineRun {
	idx := make(map[string][]experiments.PipelineRun, len(runs))
	for _, r := range runs {
		idx[runKey(r)] = append(idx[runKey(r)], r)
	}
	return idx
}
