package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func record(wallMS float64, runs ...experiments.PipelineRun) *experiments.BenchRecord {
	rec := &experiments.BenchRecord{
		Schema:     experiments.BenchSchema,
		Experiment: "fig9",
		Title:      "test",
		Scale:      0.1,
		Workers:    2,
		WallMS:     wallMS,
		Runs:       runs,
	}
	for _, r := range runs {
		rec.TotalWork += r.TotalWork
		rec.CriticalPath += r.CriticalPath
		rec.Mallocs += r.Mallocs
		rec.AllocBytes += r.AllocBytes
	}
	return rec
}

func write(t *testing.T, dir, name string, rec *experiments.BenchRecord) string {
	t.Helper()
	raw, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func testRun(r experiments.PipelineRun) experiments.PipelineRun {
	if r.Variant == "" {
		r.Variant = "RDFind"
	}
	if r.Workers == 0 {
		r.Workers = 2
	}
	if r.Support == 0 {
		r.Support = 10
	}
	return r
}

func TestIdenticalRecordsPass(t *testing.T) {
	dir := t.TempDir()
	rec := record(100, testRun(experiments.PipelineRun{Label: "a", WallMS: 50, TotalWork: 1000}))
	oldPath := write(t, dir, "old.json", rec)
	newPath := write(t, dir, "new.json", rec)
	var out, errOut bytes.Buffer
	if code := run([]string{oldPath, newPath}, &out, &errOut); code != 0 {
		t.Fatalf("identical records exit %d: %s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "OK") {
		t.Errorf("no OK verdict:\n%s", out.String())
	}
}

func TestWallRegressionFails(t *testing.T) {
	dir := t.TempDir()
	oldPath := write(t, dir, "old.json",
		record(100, testRun(experiments.PipelineRun{Label: "a", WallMS: 50, TotalWork: 1000})))
	// 30% slower overall and per run: beyond the default 20% threshold.
	newPath := write(t, dir, "new.json",
		record(130, testRun(experiments.PipelineRun{Label: "a", WallMS: 65, TotalWork: 1000})))
	var out, errOut bytes.Buffer
	if code := run([]string{oldPath, newPath}, &out, &errOut); code != 1 {
		t.Fatalf("regressed record exit %d, want 1: %s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("regression not marked:\n%s", out.String())
	}
	// A looser threshold tolerates the same 30%.
	var out2 bytes.Buffer
	if code := run([]string{"-threshold", "0.5", oldPath, newPath}, &out2, &errOut); code != 0 {
		t.Fatalf("loose threshold exit %d, want 0", code)
	}
}

func TestWorkRegressionFails(t *testing.T) {
	dir := t.TempDir()
	oldPath := write(t, dir, "old.json",
		record(100, testRun(experiments.PipelineRun{Label: "a", WallMS: 50, TotalWork: 1000})))
	newPath := write(t, dir, "new.json",
		record(100, testRun(experiments.PipelineRun{Label: "a", WallMS: 50, TotalWork: 2000})))
	var out, errOut bytes.Buffer
	if code := run([]string{oldPath, newPath}, &out, &errOut); code != 1 {
		t.Fatalf("doubled work exit %d, want 1: %s", code, out.String())
	}
}

func TestAllocRegressionFails(t *testing.T) {
	dir := t.TempDir()
	oldPath := write(t, dir, "old.json",
		record(100, testRun(experiments.PipelineRun{Label: "a", WallMS: 50, TotalWork: 1000, Mallocs: 1000})))
	// Double the allocations at unchanged wall time and work: beyond the
	// default 50% allocation threshold.
	newPath := write(t, dir, "new.json",
		record(100, testRun(experiments.PipelineRun{Label: "a", WallMS: 50, TotalWork: 1000, Mallocs: 2000})))
	var out, errOut bytes.Buffer
	if code := run([]string{oldPath, newPath}, &out, &errOut); code != 1 {
		t.Fatalf("doubled mallocs exit %d, want 1: %s", code, out.String())
	}
	// A looser allocation threshold tolerates the doubling.
	var out2 bytes.Buffer
	if code := run([]string{"-alloc-threshold", "1.5", oldPath, newPath}, &out2, &errOut); code != 0 {
		t.Fatalf("loose alloc threshold exit %d, want 0: %s", code, out2.String())
	}
}

func TestAllocCountersOnlyInOneRecordIgnored(t *testing.T) {
	dir := t.TempDir()
	// The old record predates allocation accounting (Mallocs == 0); the new
	// one measures. No comparison, no regression.
	oldPath := write(t, dir, "old.json",
		record(100, testRun(experiments.PipelineRun{Label: "a", WallMS: 50, TotalWork: 1000})))
	newPath := write(t, dir, "new.json",
		record(100, testRun(experiments.PipelineRun{Label: "a", WallMS: 50, TotalWork: 1000, Mallocs: 123456})))
	var out, errOut bytes.Buffer
	if code := run([]string{oldPath, newPath}, &out, &errOut); code != 0 {
		t.Fatalf("one-sided alloc counters exit %d, want 0: %s", code, out.String())
	}
}

func TestImprovementPasses(t *testing.T) {
	dir := t.TempDir()
	oldPath := write(t, dir, "old.json",
		record(100, testRun(experiments.PipelineRun{Label: "a", WallMS: 50, TotalWork: 1000})))
	newPath := write(t, dir, "new.json",
		record(40, testRun(experiments.PipelineRun{Label: "a", WallMS: 20, TotalWork: 900})))
	var out, errOut bytes.Buffer
	if code := run([]string{oldPath, newPath}, &out, &errOut); code != 0 {
		t.Fatalf("improvement exit %d, want 0: %s", code, out.String())
	}
}

// serveRecord builds a record carrying the serving metrics.
func serveRecord(qps, p50, p99 float64) *experiments.BenchRecord {
	rec := record(100, testRun(experiments.PipelineRun{Label: "a", WallMS: 50, TotalWork: 1000}))
	rec.Experiment = "serve"
	rec.QPS = qps
	rec.P50MS = p50
	rec.P99MS = p99
	rec.PlanCacheHits = 100
	rec.PlanCacheMisses = 10
	return rec
}

func TestServeThroughputDropFails(t *testing.T) {
	dir := t.TempDir()
	oldPath := write(t, dir, "old.json", serveRecord(10000, 0.5, 2))
	// 40% qps drop at unchanged latency: beyond the default 20% threshold.
	newPath := write(t, dir, "new.json", serveRecord(6000, 0.5, 2))
	var out, errOut bytes.Buffer
	if code := run([]string{oldPath, newPath}, &out, &errOut); code != 1 {
		t.Fatalf("qps drop exit %d, want 1: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "serve qps") {
		t.Errorf("qps row missing:\n%s", out.String())
	}
	// A qps GAIN must pass: the direction is inverted vs. latency.
	gainPath := write(t, dir, "gain.json", serveRecord(14000, 0.5, 2))
	var out2 bytes.Buffer
	if code := run([]string{oldPath, gainPath}, &out2, &errOut); code != 0 {
		t.Fatalf("qps gain exit %d, want 0: %s", code, out2.String())
	}
}

func TestServeLatencyGrowthFails(t *testing.T) {
	dir := t.TempDir()
	oldPath := write(t, dir, "old.json", serveRecord(10000, 0.5, 2))
	// p99 grows 50% at unchanged qps: beyond the default 20% threshold.
	newPath := write(t, dir, "new.json", serveRecord(10000, 0.5, 3))
	var out, errOut bytes.Buffer
	if code := run([]string{oldPath, newPath}, &out, &errOut); code != 1 {
		t.Fatalf("p99 growth exit %d, want 1: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "serve p99") {
		t.Errorf("p99 row missing:\n%s", out.String())
	}
}

func TestServeMetricsOnlyInOneRecordIgnored(t *testing.T) {
	dir := t.TempDir()
	// The old record predates the serving layer: no comparison, no regression.
	old := serveRecord(0, 0, 0)
	oldPath := write(t, dir, "old.json", old)
	newPath := write(t, dir, "new.json", serveRecord(10000, 0.5, 2))
	var out, errOut bytes.Buffer
	if code := run([]string{oldPath, newPath}, &out, &errOut); code != 0 {
		t.Fatalf("one-sided serve metrics exit %d, want 0: %s", code, out.String())
	}
}

func TestUsageAndBadInputs(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no args exit %d, want 2", code)
	}
	if code := run([]string{"nope1.json", "nope2.json"}, &out, &errOut); code != 2 {
		t.Errorf("missing files exit %d, want 2", code)
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{}"), 0o644)
	good := write(t, dir, "good.json", record(1))
	if code := run([]string{bad, good}, &out, &errOut); code != 2 {
		t.Errorf("schemaless record exit %d, want 2", code)
	}
	other := record(1)
	other.Experiment = "fig8"
	otherPath := write(t, dir, "other.json", other)
	if code := run([]string{good, otherPath}, &out, &errOut); code != 2 {
		t.Errorf("cross-experiment diff exit %d, want 2", code)
	}
}
