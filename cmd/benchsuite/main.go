// Command benchsuite regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	benchsuite -list
//	benchsuite [-scale F] [-workers N] [-out DIR] -exp <id>|all
//
// Experiment IDs follow DESIGN.md: table2, fig2, fig4, fig7, fig8, fig9,
// fig10, fig11, fig12, fig13, sec86, fig14, appB. Reports are printed as
// aligned text tables with the paper's published observations attached as
// notes for comparison; EXPERIMENTS.md records a full run.
//
// With -out, every experiment additionally writes a machine-readable
// BENCH_<id>.json record (schema rdfind-bench/v1): the report rows plus
// wall time, work accounting, and per-stage trace spans for each pipeline
// run. benchdiff compares two such records.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchsuite", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "", "experiment id (see -list) or 'all'")
	scale := fs.Float64("scale", 1.0, "dataset scale factor (1 = DESIGN.md default sizes)")
	workers := fs.Int("workers", 4, "dataflow workers where the experiment does not vary them")
	out := fs.String("out", "", "directory for machine-readable BENCH_<id>.json records (empty = none)")
	timeout := fs.Duration("timeout", 0, "abort the whole suite after this duration (0 = no limit), exit code 4")
	list := fs.Bool("list", false, "list experiment ids and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Watchdog: experiments run many pipelines back to back with no single
	// context to cancel, so a wall-clock deadline simply ends the process.
	if *timeout > 0 {
		time.AfterFunc(*timeout, func() {
			fmt.Fprintf(stderr, "benchsuite: timeout after %v\n", *timeout)
			os.Exit(4)
		})
	}

	if *list {
		fmt.Fprintln(stdout, "experiments:", strings.Join(experiments.IDs(), ", "), "(or: all)")
		return 0
	}
	if *exp == "" {
		fmt.Fprintln(stderr, "usage: benchsuite -exp <id>|all [-scale F] [-workers N] [-out DIR]")
		fs.PrintDefaults()
		return 2
	}

	ids := []string{*exp}
	if strings.EqualFold(*exp, "all") {
		ids = experiments.IDs()
	}
	opts := experiments.Options{Scale: *scale, Workers: *workers}
	start := time.Now()
	for _, id := range ids {
		if *out == "" {
			if err := experiments.Run(id, opts, stdout); err != nil {
				fmt.Fprintln(stderr, "benchsuite:", err)
				return 1
			}
			continue
		}
		// Benched mode: collect the machine-readable record and render its
		// report rows, so -out changes the artifacts but not the output.
		rec, err := experiments.RunBench(id, opts)
		if err != nil {
			fmt.Fprintln(stderr, "benchsuite:", err)
			return 1
		}
		rep := &experiments.Report{ID: rec.Experiment, Title: rec.Title,
			Header: rec.Header, Rows: rec.Rows, Notes: rec.Notes}
		if _, err := rep.WriteTo(stdout); err != nil {
			fmt.Fprintln(stderr, "benchsuite:", err)
			return 1
		}
		if err := writeRecord(*out, rec); err != nil {
			fmt.Fprintln(stderr, "benchsuite:", err)
			return 1
		}
	}
	fmt.Fprintf(stdout, "total: %v (scale %g, %d workers)\n", time.Since(start).Round(time.Millisecond), *scale, *workers)
	return 0
}

func writeRecord(dir string, rec *experiments.BenchRecord) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	raw, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_"+rec.Experiment+".json")
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
