// Command benchsuite regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	benchsuite -list
//	benchsuite [-scale F] [-workers N] -exp <id>|all
//
// Experiment IDs follow DESIGN.md: table2, fig2, fig4, fig7, fig8, fig9,
// fig10, fig11, fig12, fig13, sec86, fig14, appB. Reports are printed as
// aligned text tables with the paper's published observations attached as
// notes for comparison; EXPERIMENTS.md records a full run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment id (see -list) or 'all'")
	scale := flag.Float64("scale", 1.0, "dataset scale factor (1 = DESIGN.md default sizes)")
	workers := flag.Int("workers", 4, "dataflow workers where the experiment does not vary them")
	timeout := flag.Duration("timeout", 0, "abort the whole suite after this duration (0 = no limit), exit code 4")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	// Watchdog: experiments run many pipelines back to back with no single
	// context to cancel, so a wall-clock deadline simply ends the process.
	if *timeout > 0 {
		time.AfterFunc(*timeout, func() {
			fmt.Fprintf(os.Stderr, "benchsuite: timeout after %v\n", *timeout)
			os.Exit(4)
		})
	}

	if *list {
		fmt.Println("experiments:", strings.Join(experiments.IDs(), ", "), "(or: all)")
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: benchsuite -exp <id>|all [-scale F] [-workers N]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	start := time.Now()
	err := experiments.Run(*exp, experiments.Options{Scale: *scale, Workers: *workers}, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
	fmt.Printf("total: %v (scale %g, %d workers)\n", time.Since(start).Round(time.Millisecond), *scale, *workers)
}
