package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func TestListAndUsage(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exit %d", code)
	}
	if !strings.Contains(out.String(), "fig9") {
		t.Errorf("-list output lacks experiment ids: %s", out.String())
	}
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no -exp exit %d, want 2", code)
	}
	if code := run([]string{"-exp", "nope"}, &out, &errOut); code != 1 {
		t.Errorf("unknown experiment exit %d, want 1", code)
	}
}

// TestOutWritesValidRecord runs a small real experiment with -out and checks
// the BENCH file parses, carries the schema, and reconciles its accounting.
func TestOutWritesValidRecord(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment")
	}
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	code := run([]string{"-exp", "table2", "-scale", "0.02", "-workers", "2", "-out", dir}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_table2.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rec experiments.BenchRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Schema != experiments.BenchSchema || rec.Experiment != "table2" {
		t.Errorf("record header: schema=%q experiment=%q", rec.Schema, rec.Experiment)
	}
	if rec.WallMS <= 0 || len(rec.Rows) == 0 {
		t.Errorf("incomplete record: wall=%v rows=%d", rec.WallMS, len(rec.Rows))
	}
	for _, pr := range rec.Runs {
		if got := metrics.TotalRecordsIn(pr.Spans); got != pr.TotalWork {
			t.Errorf("run %q: span records-in %d != total work %d", pr.Label, got, pr.TotalWork)
		}
	}
	// The report must still have been rendered to stdout.
	if !strings.Contains(out.String(), "== table2:") {
		t.Errorf("report not rendered with -out:\n%s", out.String())
	}
}
