// Command datagen emits the synthetic evaluation datasets (the Table 2
// analogues) as N-Triples files.
//
// Usage:
//
//	datagen -list
//	datagen [-scale F] [-out DIR] [name ...]
//
// With no names, the whole suite is generated. Scale 1 produces the default
// single-machine sizes documented in DESIGN.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/datagen"
	"repro/internal/rdf"
)

func main() {
	list := flag.Bool("list", false, "list available datasets and exit")
	scale := flag.Float64("scale", 1.0, "dataset scale factor")
	out := flag.String("out", ".", "output directory")
	flag.Parse()

	if *list {
		fmt.Printf("%-12s %15s %15s\n", "name", "triples@scale1", "paper triples")
		for _, spec := range datagen.Suite() {
			fmt.Printf("%-12s %15d %15d\n", spec.Name, spec.DefaultTriples, spec.PaperTriples)
		}
		return
	}

	names := flag.Args()
	if len(names) == 0 {
		for _, spec := range datagen.Suite() {
			names = append(names, spec.Name)
		}
	}
	for _, name := range names {
		spec, ok := datagen.ByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q (use -list)\n", name)
			os.Exit(2)
		}
		ds := spec.Generate(*scale)
		path := filepath.Join(*out, strings.ToLower(spec.Name)+".nt")
		if err := write(path, ds); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		st := datagen.Describe(spec.Name, ds)
		fmt.Printf("wrote %s: %d triples, %.1f MB\n", path, st.Triples, st.SizeMB)
	}
}

func write(path string, ds *rdf.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rdf.WriteNTriples(f, ds); err != nil {
		return err
	}
	return f.Close()
}
