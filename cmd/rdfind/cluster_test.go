package main

import (
	"os"
	"strings"
	"testing"
	"time"

	rdfind "repro"
)

// TestMain lets the test binary double as the worker executable: the cluster
// coordinator respawns workers by exec'ing os.Executable() with a "worker"
// subcommand, and under `go test` that executable is this binary.
func TestMain(m *testing.M) {
	if len(os.Args) > 1 && os.Args[1] == "worker" {
		os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

func TestParseChaos(t *testing.T) {
	faults, err := parseChaos("kill:1@3, drop:0@2,dup:1@5,delay:0@1:120ms,delay:1@2")
	if err != nil {
		t.Fatal(err)
	}
	want := []rdfind.ProcFault{
		{Kind: rdfind.ProcKill, Rank: 1, Seq: 3},
		{Kind: rdfind.ProcDisconnect, Rank: 0, Seq: 2},
		{Kind: rdfind.ProcDuplicate, Rank: 1, Seq: 5},
		{Kind: rdfind.ProcDelay, Rank: 0, Seq: 1, Delay: 120 * time.Millisecond},
		{Kind: rdfind.ProcDelay, Rank: 1, Seq: 2, Delay: 50 * time.Millisecond},
	}
	if len(faults) != len(want) {
		t.Fatalf("parsed %d faults, want %d", len(faults), len(want))
	}
	for i := range want {
		if faults[i] != want[i] {
			t.Errorf("fault %d: got %+v, want %+v", i, faults[i], want[i])
		}
	}
	if f, err := parseChaos(""); err != nil || f != nil {
		t.Errorf("empty spec: %v, %v", f, err)
	}
	for _, bad := range []string{"boom:1@2", "kill:1", "kill:x@2", "kill:1@y", "kill:-1@2", "delay:0@1:xs"} {
		if _, err := parseChaos(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}

func TestClusterFlagValidation(t *testing.T) {
	if code, _, _ := runCLI(t, "-cluster", "2", "-mem-budget", "64MiB", "testdata/museums.nt"); code != exitUsage {
		t.Errorf("-cluster with -mem-budget exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runCLI(t, "-cluster", "2", "-spill-dir", t.TempDir(), "testdata/museums.nt"); code != exitUsage {
		t.Errorf("-cluster with -spill-dir exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runCLI(t, "-chaos", "kill:1@3", "testdata/museums.nt"); code != exitUsage {
		t.Errorf("-chaos without -cluster exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runCLI(t, "-cluster", "2", "-cluster-network", "carrier-pigeon", "testdata/museums.nt"); code != exitUsage {
		t.Errorf("bad -cluster-network exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runCLI(t, "-cluster", "2", "-check", "x <= y", "testdata/museums.nt"); code != exitUsage {
		t.Errorf("-cluster with -check exit %d, want %d", code, exitUsage)
	}
}

// TestClusterMatchesSingleProcess runs real multi-process discovery —
// coordinator plus exec'd worker subprocesses — and requires byte-identical
// stdout vs the single-process run, across worker counts and both networks.
func TestClusterMatchesSingleProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process integration test")
	}
	base := []string{"-support", "2", "testdata/museums.nt"}
	code, want, errOut := runCLI(t, base...)
	if code != exitOK {
		t.Fatalf("single-process exit %d: %s", code, errOut)
	}
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"workers=1", []string{"-cluster", "1"}},
		{"workers=2", []string{"-cluster", "2"}},
		{"workers=4", []string{"-cluster", "4"}},
		{"tcp", []string{"-cluster", "2", "-cluster-network", "tcp"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			code, got, errOut := runCLI(t, append(tc.args, base...)...)
			if code != exitOK {
				t.Fatalf("cluster exit %d: %s", code, errOut)
			}
			if got != want {
				t.Errorf("cluster output diverged from single-process:\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestClusterChaosRecovery injects process faults into real worker
// subprocesses. Every seeded plan must finish with exit 0 and byte-identical
// output; the kill plans must recover by respawn + lineage replay.
func TestClusterChaosRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process integration test")
	}
	base := []string{"-support", "2", "testdata/museums.nt"}
	code, want, errOut := runCLI(t, base...)
	if code != exitOK {
		t.Fatalf("single-process exit %d: %s", code, errOut)
	}
	for _, tc := range []struct {
		name  string
		chaos string
	}{
		{"kill", "kill:1@3"},
		{"drop", "drop:0@2"},
		{"dup+delay", "dup:1@3,delay:0@2:20ms"},
		{"kills-two-ranks", "kill:0@2,kill:1@4"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			args := append([]string{"-cluster", "2", "-chaos", tc.chaos}, base...)
			code, got, errOut := runCLI(t, args...)
			if code != exitOK {
				t.Fatalf("chaos %q exit %d: %s", tc.chaos, code, errOut)
			}
			if got != want {
				t.Errorf("chaos %q output diverged:\n--- got ---\n%s--- want ---\n%s", tc.chaos, got, want)
			}
		})
	}
}

// TestClusterStatsReportRecovery checks the -stats surface: an injected kill
// shows up as a worker loss, a respawn, and a stage retry.
func TestClusterStatsReportRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process integration test")
	}
	args := []string{"-cluster", "2", "-chaos", "kill:1@3", "-stats", "-support", "2", "testdata/museums.nt"}
	code, _, errOut := runCLI(t, args...)
	if code != exitOK {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	for _, want := range []string{"worker losses:       1 (1 respawned)", "stage retries:       1"} {
		if !strings.Contains(errOut, want) {
			t.Errorf("stats output lacks %q:\n%s", want, errOut)
		}
	}
}
