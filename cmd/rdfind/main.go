// Command rdfind discovers pertinent conditional inclusion dependencies and
// exact association rules in an N-Triples file.
//
// Usage:
//
//	rdfind [-support N] [-workers N] [-variant rdfind|de|nf|mf]
//	       [-pred-only-conditions] [-stats] file.nt
//
// The result is printed one statement per line, CINDs and ARs sorted by
// descending support. With -stats, run statistics (frequent conditions,
// capture groups, durations, per-stage work accounting) go to stderr.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/core"
)

func main() {
	support := flag.Int("support", 100, "support threshold h (minimum distinct included values)")
	workers := flag.Int("workers", 4, "logical dataflow workers")
	variantName := flag.String("variant", "rdfind", "pipeline variant: rdfind, de, nf, mf")
	predOnly := flag.Bool("pred-only-conditions", false, "use predicates only in conditions (no predicate projections)")
	format := flag.String("format", "text", "output format: text or json")
	check := flag.String("check", "", "instead of discovering, validate one CIND statement, e.g. '(s, p=a) <= (s, p=b)'")
	stats := flag.Bool("stats", false, "print run statistics to stderr")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rdfind [flags] file.nt")
		flag.PrintDefaults()
		os.Exit(2)
	}

	variant, ok := map[string]rdfind.Variant{
		"rdfind": rdfind.Standard,
		"de":     rdfind.DirectExtraction,
		"nf":     rdfind.NoFrequentConditions,
		"mf":     rdfind.MinimalFirst,
	}[*variantName]
	if !ok {
		fmt.Fprintf(os.Stderr, "rdfind: unknown variant %q\n", *variantName)
		os.Exit(2)
	}

	ds, err := rdfind.ReadNTriplesFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "rdfind:", err)
		os.Exit(1)
	}

	// -check mode: validate one statement and exit with its truth value.
	if *check != "" {
		inc, err := rdfind.ParseInclusion(*check, ds.Dict)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rdfind:", err)
			os.Exit(2)
		}
		holds := rdfind.Holds(ds, inc)
		fmt.Printf("%s  holds=%v support=%d\n", inc.Format(ds.Dict), holds, rdfind.Support(ds, inc.Dep))
		if !holds {
			os.Exit(1)
		}
		return
	}

	res, runStats := rdfind.Discover(ds, rdfind.Config{
		Support:                    *support,
		Workers:                    *workers,
		Variant:                    variant,
		PredicatesOnlyInConditions: *predOnly,
	})
	switch *format {
	case "json":
		data, err := rdfind.MarshalResultJSON(res, ds.Dict)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rdfind:", err)
			os.Exit(1)
		}
		os.Stdout.Write(data)
		fmt.Println()
	case "text":
		fmt.Print(res.Format(ds.Dict))
	default:
		fmt.Fprintf(os.Stderr, "rdfind: unknown format %q\n", *format)
		os.Exit(2)
	}

	if *stats {
		printStats(os.Stderr, runStats)
	}
}

func printStats(w *os.File, s *core.RunStats) {
	fmt.Fprintf(w, "triples:             %d\n", s.Triples)
	fmt.Fprintf(w, "frequent conditions: %d unary, %d binary\n", s.FrequentUnary, s.FrequentBinary)
	fmt.Fprintf(w, "capture groups:      %d\n", s.CaptureGroups)
	fmt.Fprintf(w, "broad CINDs:         %d\n", s.BroadCINDs)
	fmt.Fprintf(w, "pertinent CINDs:     %d (+%d ARs)\n", s.Pertinent, s.ARs)
	fmt.Fprintf(w, "duration:            %v\n", s.Duration)
	fmt.Fprintf(w, "work-balance speedup: %.2f\n", s.Dataflow.Speedup())
}
