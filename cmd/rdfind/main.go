// Command rdfind discovers pertinent conditional inclusion dependencies and
// exact association rules in an N-Triples file.
//
// Usage:
//
//	rdfind [-support N] [-workers N] [-ingest-workers N] [-variant rdfind|de|nf|mf]
//	       [-pred-only-conditions] [-lenient] [-timeout D] [-stats] [-json] file.nt
//
// The result is printed one statement per line, CINDs and ARs sorted by
// descending support. With -stats, run statistics (frequent conditions,
// capture groups, durations, per-stage work accounting and the operator
// trace) go to stderr. With -json, stdout instead carries one JSON document
// holding the result plus the run's metrics snapshot — trace spans, registry
// counters, work accounting (see internal/core.RunSnapshot).
//
// Exit codes distinguish failure classes for scripting:
//
//	0  success
//	1  discovery failure (worker fault, load limit, -check not holding)
//	2  usage error (bad flags, unknown variant or format)
//	3  input parse failure (malformed N-Triples, unreadable file)
//	4  timeout (-timeout exceeded before discovery finished)
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro"
	"repro/internal/core"
)

// Exit codes (documented above).
const (
	exitOK        = 0
	exitDiscovery = 1
	exitUsage     = 2
	exitParse     = 3
	exitTimeout   = 4
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rdfind", flag.ContinueOnError)
	fs.SetOutput(stderr)
	support := fs.Int("support", 100, "support threshold h (minimum distinct included values)")
	workers := fs.Int("workers", 4, "logical dataflow workers")
	ingestWorkers := fs.Int("ingest-workers", 0, "parallel N-Triples ingest shards (0 = same as -workers); any value yields identical datasets")
	variantName := fs.String("variant", "rdfind", "pipeline variant: rdfind, de, nf, mf")
	predOnly := fs.Bool("pred-only-conditions", false, "use predicates only in conditions (no predicate projections)")
	format := fs.String("format", "text", "output format: text or json")
	jsonDump := fs.Bool("json", false, "emit one JSON document with the result and the run's metrics snapshot")
	check := fs.String("check", "", "instead of discovering, validate one CIND statement, e.g. '(s, p=a) <= (s, p=b)'")
	stats := fs.Bool("stats", false, "print run statistics and the operator trace to stderr")
	lenient := fs.Bool("lenient", false, "skip malformed N-Triples lines (reported to stderr) instead of aborting")
	timeout := fs.Duration("timeout", 0, "abort discovery after this duration (0 = no limit), exit code 4")
	memBudget := fs.String("mem-budget", "", "memory budget for keyed shuffle state, e.g. 512M or 2G; overflow spills to disk (empty = unlimited, no spilling)")
	spillDir := fs.String("spill-dir", "", "directory for spill files (empty = system temp dir; implies a 256M budget if -mem-budget is unset)")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: rdfind [flags] file.nt")
		fs.PrintDefaults()
		return exitUsage
	}

	variant, ok := map[string]rdfind.Variant{
		"rdfind": rdfind.Standard,
		"de":     rdfind.DirectExtraction,
		"nf":     rdfind.NoFrequentConditions,
		"mf":     rdfind.MinimalFirst,
	}[*variantName]
	if !ok {
		fmt.Fprintf(stderr, "rdfind: unknown variant %q\n", *variantName)
		return exitUsage
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(stderr, "rdfind: unknown format %q\n", *format)
		return exitUsage
	}
	budget, err := parseByteSize(*memBudget)
	if err != nil {
		fmt.Fprintf(stderr, "rdfind: bad -mem-budget: %v\n", err)
		return exitUsage
	}

	if *ingestWorkers <= 0 {
		*ingestWorkers = *workers
	}
	ds, code := readInput(fs.Arg(0), *ingestWorkers, *lenient, stderr)
	if code != exitOK {
		return code
	}

	// -check mode: validate one statement and exit with its truth value.
	if *check != "" {
		inc, err := rdfind.ParseInclusion(*check, ds.Dict)
		if err != nil {
			fmt.Fprintln(stderr, "rdfind:", err)
			return exitUsage
		}
		holds := rdfind.Holds(ds, inc)
		fmt.Fprintf(stdout, "%s  holds=%v support=%d\n", inc.Format(ds.Dict), holds, rdfind.Support(ds, inc.Dep))
		if !holds {
			return exitDiscovery
		}
		return exitOK
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, runStats, err := rdfind.DiscoverContext(ctx, ds, rdfind.Config{
		Support:                    *support,
		Workers:                    *workers,
		Variant:                    variant,
		PredicatesOnlyInConditions: *predOnly,
		MemoryBudget:               budget,
		SpillDir:                   *spillDir,
	})
	if err != nil {
		fmt.Fprintln(stderr, "rdfind:", err)
		if *stats && runStats != nil {
			printStats(stderr, runStats)
		}
		if errors.Is(err, context.DeadlineExceeded) {
			return exitTimeout
		}
		return exitDiscovery
	}

	switch {
	case *jsonDump:
		resJSON, err := rdfind.MarshalResultJSON(res, ds.Dict)
		if err != nil {
			fmt.Fprintln(stderr, "rdfind:", err)
			return exitDiscovery
		}
		doc := struct {
			Result json.RawMessage   `json:"result"`
			Stats  *core.RunSnapshot `json:"stats"`
		}{Result: resJSON, Stats: runStats.Snapshot()}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "rdfind:", err)
			return exitDiscovery
		}
		stdout.Write(data)
		fmt.Fprintln(stdout)
	case *format == "json":
		data, err := rdfind.MarshalResultJSON(res, ds.Dict)
		if err != nil {
			fmt.Fprintln(stderr, "rdfind:", err)
			return exitDiscovery
		}
		stdout.Write(data)
		fmt.Fprintln(stdout)
	default:
		fmt.Fprint(stdout, res.Format(ds.Dict))
	}

	if *stats {
		printStats(stderr, runStats)
	}
	return exitOK
}

// parseByteSize parses a byte count with an optional K/M/G suffix (powers of
// 1024, case-insensitive, optional trailing B): "512M", "2g", "65536".
// The empty string means 0 (no budget).
func parseByteSize(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	num, mult := s, int64(1)
	if n := len(num); n > 0 && (num[n-1] == 'b' || num[n-1] == 'B') {
		num = num[:n-1]
	}
	if n := len(num); n > 0 {
		switch num[n-1] {
		case 'k', 'K':
			mult, num = 1<<10, num[:n-1]
		case 'm', 'M':
			mult, num = 1<<20, num[:n-1]
		case 'g', 'G':
			mult, num = 1<<30, num[:n-1]
		}
	}
	v, err := strconv.ParseInt(num, 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("want a byte count like 512M or 2G, got %q", s)
	}
	return v * mult, nil
}

// readInput parses the N-Triples file with the requested number of parallel
// ingest shards, strictly or leniently; parse problems return the dedicated
// parse-failure code so callers can tell bad input apart from a failed
// discovery. The shard count changes only ingest speed, never the dataset:
// the sharded dictionary merge assigns the same IDs at any count.
func readInput(path string, shards int, lenient bool, stderr io.Writer) (*rdfind.Dataset, int) {
	if !lenient {
		ds, err := rdfind.ReadNTriplesFile(path, shards)
		if err != nil {
			fmt.Fprintln(stderr, "rdfind:", err)
			return nil, exitParse
		}
		return ds, exitOK
	}
	ds, malformed, err := rdfind.ReadNTriplesFileLenient(path, shards, 0)
	if err != nil {
		fmt.Fprintln(stderr, "rdfind:", err)
		return nil, exitParse
	}
	for _, se := range malformed {
		fmt.Fprintln(stderr, "rdfind: skipped", se)
	}
	if len(malformed) > 0 {
		fmt.Fprintf(stderr, "rdfind: skipped %d malformed lines\n", len(malformed))
	}
	return ds, exitOK
}

func printStats(w io.Writer, s *core.RunStats) {
	fmt.Fprintf(w, "triples:             %d\n", s.Triples)
	fmt.Fprintf(w, "frequent conditions: %d unary, %d binary\n", s.FrequentUnary, s.FrequentBinary)
	fmt.Fprintf(w, "capture groups:      %d\n", s.CaptureGroups)
	fmt.Fprintf(w, "broad CINDs:         %d\n", s.BroadCINDs)
	fmt.Fprintf(w, "pertinent CINDs:     %d (+%d ARs)\n", s.Pertinent, s.ARs)
	fmt.Fprintf(w, "duration:            %v\n", s.Duration)
	if s.StageRetries > 0 {
		fmt.Fprintf(w, "stage retries:       %d\n", s.StageRetries)
	}
	if s.Degraded {
		fmt.Fprintf(w, "degraded:            extraction re-planned with Bloom work units (load %d)\n", s.ExtractionLoad)
	}
	if s.SpillPlanned {
		fmt.Fprintf(w, "spill planned:       load limit breach absorbed by the spill path (load %d)\n", s.ExtractionLoad)
	}
	if s.SpilledBytes > 0 {
		fmt.Fprintf(w, "spilled:             %d bytes in %d runs, %d merge passes\n",
			s.SpilledBytes, s.SpilledRuns, s.MergePasses)
	}
	fmt.Fprintf(w, "work-balance speedup: %.2f\n", s.Dataflow.Speedup())
	fmt.Fprintf(w, "operator trace:\n%s", s.Dataflow.SpanTree())
}
