// Command rdfind discovers pertinent conditional inclusion dependencies and
// exact association rules in an N-Triples file.
//
// Usage:
//
//	rdfind [-support N] [-workers N] [-variant rdfind|de|nf|mf]
//	       [-pred-only-conditions] [-lenient] [-timeout D] [-stats] file.nt
//
// The result is printed one statement per line, CINDs and ARs sorted by
// descending support. With -stats, run statistics (frequent conditions,
// capture groups, durations, per-stage work accounting) go to stderr.
//
// Exit codes distinguish failure classes for scripting:
//
//	0  success
//	1  discovery failure (worker fault, load limit, -check not holding)
//	2  usage error (bad flags, unknown variant or format)
//	3  input parse failure (malformed N-Triples, unreadable file)
//	4  timeout (-timeout exceeded before discovery finished)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/core"
)

// Exit codes (documented above).
const (
	exitOK        = 0
	exitDiscovery = 1
	exitUsage     = 2
	exitParse     = 3
	exitTimeout   = 4
)

func main() {
	support := flag.Int("support", 100, "support threshold h (minimum distinct included values)")
	workers := flag.Int("workers", 4, "logical dataflow workers")
	variantName := flag.String("variant", "rdfind", "pipeline variant: rdfind, de, nf, mf")
	predOnly := flag.Bool("pred-only-conditions", false, "use predicates only in conditions (no predicate projections)")
	format := flag.String("format", "text", "output format: text or json")
	check := flag.String("check", "", "instead of discovering, validate one CIND statement, e.g. '(s, p=a) <= (s, p=b)'")
	stats := flag.Bool("stats", false, "print run statistics to stderr")
	lenient := flag.Bool("lenient", false, "skip malformed N-Triples lines (reported to stderr) instead of aborting")
	timeout := flag.Duration("timeout", 0, "abort discovery after this duration (0 = no limit), exit code 4")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rdfind [flags] file.nt")
		flag.PrintDefaults()
		os.Exit(exitUsage)
	}

	variant, ok := map[string]rdfind.Variant{
		"rdfind": rdfind.Standard,
		"de":     rdfind.DirectExtraction,
		"nf":     rdfind.NoFrequentConditions,
		"mf":     rdfind.MinimalFirst,
	}[*variantName]
	if !ok {
		fmt.Fprintf(os.Stderr, "rdfind: unknown variant %q\n", *variantName)
		os.Exit(exitUsage)
	}

	ds := readInput(flag.Arg(0), *lenient)

	// -check mode: validate one statement and exit with its truth value.
	if *check != "" {
		inc, err := rdfind.ParseInclusion(*check, ds.Dict)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rdfind:", err)
			os.Exit(exitUsage)
		}
		holds := rdfind.Holds(ds, inc)
		fmt.Printf("%s  holds=%v support=%d\n", inc.Format(ds.Dict), holds, rdfind.Support(ds, inc.Dep))
		if !holds {
			os.Exit(exitDiscovery)
		}
		return
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, runStats, err := rdfind.DiscoverContext(ctx, ds, rdfind.Config{
		Support:                    *support,
		Workers:                    *workers,
		Variant:                    variant,
		PredicatesOnlyInConditions: *predOnly,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rdfind:", err)
		if *stats && runStats != nil {
			printStats(os.Stderr, runStats)
		}
		if errors.Is(err, context.DeadlineExceeded) {
			os.Exit(exitTimeout)
		}
		os.Exit(exitDiscovery)
	}
	switch *format {
	case "json":
		data, err := rdfind.MarshalResultJSON(res, ds.Dict)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rdfind:", err)
			os.Exit(exitDiscovery)
		}
		os.Stdout.Write(data)
		fmt.Println()
	case "text":
		fmt.Print(res.Format(ds.Dict))
	default:
		fmt.Fprintf(os.Stderr, "rdfind: unknown format %q\n", *format)
		os.Exit(exitUsage)
	}

	if *stats {
		printStats(os.Stderr, runStats)
	}
}

// readInput parses the N-Triples file, strictly or leniently; parse problems
// exit with the dedicated parse-failure code so callers can tell bad input
// apart from a failed discovery.
func readInput(path string, lenient bool) *rdfind.Dataset {
	if !lenient {
		ds, err := rdfind.ReadNTriplesFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rdfind:", err)
			os.Exit(exitParse)
		}
		return ds
	}
	ds, malformed, err := rdfind.ReadNTriplesFileLenient(path, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rdfind:", err)
		os.Exit(exitParse)
	}
	for _, se := range malformed {
		fmt.Fprintln(os.Stderr, "rdfind: skipped", se)
	}
	if len(malformed) > 0 {
		fmt.Fprintf(os.Stderr, "rdfind: skipped %d malformed lines\n", len(malformed))
	}
	return ds
}

func printStats(w *os.File, s *core.RunStats) {
	fmt.Fprintf(w, "triples:             %d\n", s.Triples)
	fmt.Fprintf(w, "frequent conditions: %d unary, %d binary\n", s.FrequentUnary, s.FrequentBinary)
	fmt.Fprintf(w, "capture groups:      %d\n", s.CaptureGroups)
	fmt.Fprintf(w, "broad CINDs:         %d\n", s.BroadCINDs)
	fmt.Fprintf(w, "pertinent CINDs:     %d (+%d ARs)\n", s.Pertinent, s.ARs)
	fmt.Fprintf(w, "duration:            %v\n", s.Duration)
	if s.StageRetries > 0 {
		fmt.Fprintf(w, "stage retries:       %d\n", s.StageRetries)
	}
	if s.Degraded {
		fmt.Fprintf(w, "degraded:            extraction re-planned with Bloom work units (load %d)\n", s.ExtractionLoad)
	}
	fmt.Fprintf(w, "work-balance speedup: %.2f\n", s.Dataflow.Speedup())
}
