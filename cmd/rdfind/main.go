// Command rdfind discovers pertinent conditional inclusion dependencies and
// exact association rules in RDF input (N-Triples or Turtle, optionally
// gzip-compressed, one file or many).
//
// Usage:
//
//	rdfind [-support N] [-workers N] [-ingest-workers N] [-variant rdfind|de|nf|mf]
//	       [-input GLOBS] [-input-format auto|nt|turtle] [-partition hash|subject]
//	       [-pred-only-conditions] [-no-columnar] [-no-optimizer] [-profile-dir DIR]
//	       [-explain] [-lenient] [-timeout D] [-stats] [-json] [file.nt ...]
//	rdfind -query 'SELECT ...' [-query-reps N] [flags] file.nt
//	rdfind -cluster N [-cluster-network tcp|unix] [-chaos SPEC] [flags] file.nt
//	rdfind worker -addr ADDR -rank N [-network tcp|unix]
//
// Input is named by positional paths and/or -input, a comma-separated list
// of paths and globs (e.g. -input 'parts/*.nt.gz'). The sorted, deduplicated
// expansion defines the canonical document order; output is identical no
// matter how the same statements are split across files. Files are decoded
// as a bounded stream — discovery never materializes the input in memory,
// so datasets larger than RAM ingest fine, gzipped or not (.gz extension or
// content magic both select streaming decompression). The input format
// defaults to auto: a .ttl or .turtle extension (before any trailing .gz)
// selects the Turtle reader per file, anything else N-Triples. -lenient and
// parallel -ingest-workers apply to N-Triples only; Turtle and N-Triples
// readers intern identical surface forms, so equivalent files produce
// identical discovery results.
//
// -partition picks the placement strategy for streamed triples: hash (the
// default; spread by hashing all three elements) or subject (keep each
// subject's triples on one worker, trading balance for locality). Placement
// never changes the discovered result, only data movement — `-exp partition`
// in cmd/benchsuite measures the trade.
//
// -query serves a SPARQL query (the engine's BGP+FILTER subset) over the
// input through the concurrent query engine after discovery: the discovered
// CINDs minimize the query, and the engine's plan cache — keyed by BGP shape
// — is exercised by -query-reps repetitions of the same text. Result rows
// replace the discovery result on stdout; with -stats the engine's counters
// (queries served, plan-cache hits and misses) are appended to the run
// statistics on stderr.
//
// The result is printed one statement per line, CINDs and ARs sorted by
// descending support. With -stats, run statistics (frequent conditions,
// capture groups, durations, per-stage work accounting and the operator
// trace) go to stderr. With -json, stdout instead carries one JSON document
// holding the result plus the run's metrics snapshot — trace spans, registry
// counters, work accounting (see internal/core.RunSnapshot).
//
// The engine plans each run with a cost-based optimizer (rewrites like
// shared-prefix materialization and pushdown through shuffles, plus per-stage
// worker/budget policies); results are byte-identical with it on or off.
// -no-optimizer disables it, -explain replaces the result on stdout with the
// optimized plan — per-stage cost estimates and the rules that fired — and
// -profile-dir persists per-stage span statistics across runs so later runs
// plan against observed behavior instead of defaults.
//
// -cluster N runs discovery as a coordinator with N worker processes: the
// process listens on a socket, spawns N copies of itself in worker mode, and
// supervises them with heartbeats; a worker process that dies is respawned
// and recovers through the engine's lineage replay, with output identical to
// a single-process run. Ingest is worker-local: file i of the resolved input
// goes to rank i mod N, each worker streams only its own files, and a
// dictionary-merge collective reconstructs the canonical global dictionary —
// the coordinator never materializes a single triple (-stats prints the
// per-rank ingest counts and the coordinator's zero). -chaos injects
// deterministic process faults for robustness testing, as a comma-separated
// list of kind:rank@seq entries (kinds kill, drop, dup, delay[:duration]),
// e.g. -chaos 'kill:1@4,drop:0@7'. The worker subcommand is spawned by the
// coordinator and is not normally invoked by hand; the job's parameters
// travel in the coordinator's welcome.
//
// Exit codes distinguish failure classes for scripting:
//
//	0  success
//	1  discovery failure (worker fault, load limit, -check not holding)
//	2  usage error (bad flags, unknown variant or format)
//	3  input parse failure (malformed N-Triples, unreadable file)
//	4  timeout (-timeout exceeded before discovery finished)
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/dataflow/opt"
	"repro/internal/sparql"
	"repro/internal/triplestore"
)

// Exit codes (documented above).
const (
	exitOK        = 0
	exitDiscovery = 1
	exitUsage     = 2
	exitParse     = 3
	exitTimeout   = 4
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 && args[0] == "worker" {
		return runWorker(args[1:], stdout, stderr)
	}
	fs := flag.NewFlagSet("rdfind", flag.ContinueOnError)
	fs.SetOutput(stderr)
	support := fs.Int("support", 100, "support threshold h (minimum distinct included values)")
	workers := fs.Int("workers", 4, "logical dataflow workers")
	input := fs.String("input", "", "comma-separated input paths and globs, combined with positional paths; sorted expansion is the document order")
	partition := fs.String("partition", "hash", "streamed-triple placement strategy: hash or subject")
	ingestWorkers := fs.Int("ingest-workers", 0, "parallel N-Triples ingest shards (0 = same as -workers); any value yields identical datasets")
	variantName := fs.String("variant", "rdfind", "pipeline variant: rdfind, de, nf, mf")
	predOnly := fs.Bool("pred-only-conditions", false, "use predicates only in conditions (no predicate projections)")
	format := fs.String("format", "text", "output format: text or json")
	inputFormat := fs.String("input-format", "auto", "input format: auto (sniff the extension, .gz stripped first), nt, or turtle")
	jsonDump := fs.Bool("json", false, "emit one JSON document with the result and the run's metrics snapshot")
	check := fs.String("check", "", "instead of discovering, validate one CIND statement, e.g. '(s, p=a) <= (s, p=b)'")
	query := fs.String("query", "", "after discovery, serve this SPARQL query through the concurrent engine (CINDs minimize it) and print its rows instead of the result")
	queryReps := fs.Int("query-reps", 1, "execute -query this many times; repetitions of one shape hit the plan cache")
	stats := fs.Bool("stats", false, "print run statistics and the operator trace to stderr")
	lenient := fs.Bool("lenient", false, "skip malformed N-Triples lines (reported to stderr) instead of aborting")
	timeout := fs.Duration("timeout", 0, "abort discovery after this duration (0 = no limit), exit code 4")
	noColumnar := fs.Bool("no-columnar", false, "disable columnar batch execution of fused chains (record-at-a-time; identical results)")
	noOptimizer := fs.Bool("no-optimizer", false, "disable the cost-based plan optimizer (no rewrites or policies; identical results)")
	profileDir := fs.String("profile-dir", "", "directory for the optimizer's span-statistics profile: read before the run, updated after, tuning later runs")
	explain := fs.Bool("explain", false, "print the optimized plan (stages, cost estimates, fired rules) to stdout instead of the result")
	memBudget := fs.String("mem-budget", "", "memory budget for keyed shuffle state, e.g. 512M or 2G; overflow spills to disk (empty = unlimited, no spilling)")
	spillDir := fs.String("spill-dir", "", "directory for spill files (empty = system temp dir; implies a 256M budget if -mem-budget is unset)")
	clusterN := fs.Int("cluster", 0, "run as coordinator of N worker processes (0 = single-process); overrides -workers")
	clusterNet := fs.String("cluster-network", "unix", "coordinator listen network: unix or tcp")
	chaos := fs.String("chaos", "", "inject process faults, comma-separated kind:rank@seq entries (kinds kill, drop, dup, delay:DUR), e.g. 'kill:1@4'")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	inputs := fs.Args()
	for _, in := range strings.Split(*input, ",") {
		if in = strings.TrimSpace(in); in != "" {
			inputs = append(inputs, in)
		}
	}
	if len(inputs) == 0 {
		fmt.Fprintln(stderr, "usage: rdfind [flags] [-input GLOBS] [file.nt ...]")
		fs.PrintDefaults()
		return exitUsage
	}

	variant, ok := map[string]rdfind.Variant{
		"rdfind": rdfind.Standard,
		"de":     rdfind.DirectExtraction,
		"nf":     rdfind.NoFrequentConditions,
		"mf":     rdfind.MinimalFirst,
	}[*variantName]
	if !ok {
		fmt.Fprintf(stderr, "rdfind: unknown variant %q\n", *variantName)
		return exitUsage
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(stderr, "rdfind: unknown format %q\n", *format)
		return exitUsage
	}
	budget, err := parseByteSize(*memBudget)
	if err != nil {
		fmt.Fprintf(stderr, "rdfind: bad -mem-budget: %v\n", err)
		return exitUsage
	}
	if *clusterN > 0 {
		// The network shuffle and the spill path are mutually exclusive, and
		// -check never runs the engine at all.
		switch {
		case budget > 0 || *spillDir != "":
			fmt.Fprintln(stderr, "rdfind: -cluster is incompatible with -mem-budget/-spill-dir (distributed shuffles do not spill)")
			return exitUsage
		case *check != "":
			fmt.Fprintln(stderr, "rdfind: -check does not use -cluster")
			return exitUsage
		case *profileDir != "" || *explain:
			fmt.Fprintln(stderr, "rdfind: -profile-dir and -explain need the plan optimizer, which is inert under -cluster")
			return exitUsage
		case *clusterNet != "unix" && *clusterNet != "tcp":
			fmt.Fprintf(stderr, "rdfind: unknown -cluster-network %q\n", *clusterNet)
			return exitUsage
		}
	} else if *chaos != "" {
		fmt.Fprintln(stderr, "rdfind: -chaos requires -cluster")
		return exitUsage
	}
	if *explain && *jsonDump {
		fmt.Fprintln(stderr, "rdfind: -explain replaces the result on stdout and cannot combine with -json")
		return exitUsage
	}
	if *query != "" {
		switch {
		case *check != "":
			fmt.Fprintln(stderr, "rdfind: -query and -check are mutually exclusive")
			return exitUsage
		case *explain:
			fmt.Fprintln(stderr, "rdfind: -query replaces the result on stdout and cannot combine with -explain")
			return exitUsage
		case *clusterN > 0:
			fmt.Fprintln(stderr, "rdfind: -query serves from a single process and cannot combine with -cluster")
			return exitUsage
		case *queryReps < 1:
			fmt.Fprintln(stderr, "rdfind: -query-reps must be at least 1")
			return exitUsage
		}
	}
	part, err := rdfind.PartitionerByName(*partition)
	if err != nil {
		fmt.Fprintln(stderr, "rdfind:", err)
		return exitUsage
	}
	if *ingestWorkers <= 0 {
		*ingestWorkers = *workers
	}
	src := rdfind.Source{
		Inputs:  inputs,
		Format:  *inputFormat,
		Lenient: *lenient,
		Shards:  *ingestWorkers,
	}
	// Resolve up front so flag-class mistakes (unknown format, lenient
	// Turtle, bad glob) report as usage errors before any file is opened.
	if _, err := src.Resolve(); err != nil {
		fmt.Fprintln(stderr, "rdfind:", err)
		return classifyInputErr(err)
	}

	// -check mode: validate one statement against the materialized dataset
	// and exit with its truth value.
	if *check != "" {
		ds, code := readSource(src, stderr)
		if code != exitOK {
			return code
		}
		inc, err := rdfind.ParseInclusion(*check, ds.Dict)
		if err != nil {
			fmt.Fprintln(stderr, "rdfind:", err)
			return exitUsage
		}
		holds := rdfind.Holds(ds, inc)
		fmt.Fprintf(stdout, "%s  holds=%v support=%d\n", inc.Format(ds.Dict), holds, rdfind.Support(ds, inc.Dep))
		if !holds {
			return exitDiscovery
		}
		return exitOK
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	cfg := rdfind.Config{
		Support:                    *support,
		Workers:                    *workers,
		Variant:                    variant,
		PredicatesOnlyInConditions: *predOnly,
		MemoryBudget:               budget,
		SpillDir:                   *spillDir,
		Partitioner:                part,
		DisableColumnar:            *noColumnar,
		DisableOptimizer:           *noOptimizer,
		ProfileDir:                 *profileDir,
	}

	// -query mode needs the dataset resident for the triple store, so it
	// reads the source whole and runs the in-memory discovery path; query
	// rows replace the discovery result on stdout.
	if *query != "" {
		ds, code := readSource(src, stderr)
		if code != exitOK {
			return code
		}
		res, runStats, err := rdfind.DiscoverContext(ctx, ds, cfg)
		if err != nil {
			fmt.Fprintln(stderr, "rdfind:", err)
			if errors.Is(err, context.DeadlineExceeded) {
				return exitTimeout
			}
			return exitDiscovery
		}
		return runQuery(ctx, ds, res, runStats, *query, *queryReps, *workers,
			*jsonDump || *format == "json", *stats, stdout, stderr)
	}

	if *clusterN > 0 {
		spec := jobSpec{
			Inputs:        absInputs(inputs),
			Format:        *inputFormat,
			Partition:     *partition,
			Support:       *support,
			Variant:       *variantName,
			PredOnly:      *predOnly,
			IngestWorkers: *ingestWorkers,
			Lenient:       *lenient,
			NoColumnar:    *noColumnar,
		}
		cl, code := startCluster(*clusterN, *clusterNet, *chaos, spec, stderr)
		if code != exitOK {
			return code
		}
		defer cl.Close()
		cfg.Cluster = cl
	}
	res, dict, runStats, err := rdfind.DiscoverSource(ctx, src, cfg)
	if err != nil {
		fmt.Fprintln(stderr, "rdfind:", err)
		if *stats && runStats != nil {
			printStats(stderr, runStats)
		}
		if errors.Is(err, context.DeadlineExceeded) {
			return exitTimeout
		}
		return classifyInputErr(err)
	}
	reportSkipped(stderr, runStats)

	switch {
	case *explain:
		opt.WriteExplain(stdout, runStats.Dataflow.Spans(), runStats.Optimizer, *workers)
	case *jsonDump:
		resJSON, err := rdfind.MarshalResultJSON(res, dict)
		if err != nil {
			fmt.Fprintln(stderr, "rdfind:", err)
			return exitDiscovery
		}
		doc := struct {
			Result json.RawMessage   `json:"result"`
			Stats  *core.RunSnapshot `json:"stats"`
		}{Result: resJSON, Stats: runStats.Snapshot()}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "rdfind:", err)
			return exitDiscovery
		}
		stdout.Write(data)
		fmt.Fprintln(stdout)
	case *format == "json":
		data, err := rdfind.MarshalResultJSON(res, dict)
		if err != nil {
			fmt.Fprintln(stderr, "rdfind:", err)
			return exitDiscovery
		}
		stdout.Write(data)
		fmt.Fprintln(stdout)
	default:
		fmt.Fprint(stdout, res.Format(dict))
	}

	if *stats {
		printStats(stderr, runStats)
	}
	return exitOK
}

// classifyInputErr maps a DiscoverSource or Resolve failure to an exit
// class: spec mistakes are usage errors, unreadable or malformed input is a
// parse failure, anything else a discovery failure.
func classifyInputErr(err error) int {
	var ie *rdfind.InputError
	switch {
	case errors.Is(err, rdfind.ErrLenientTurtle), errors.Is(err, rdfind.ErrBadFormat),
		errors.Is(err, filepath.ErrBadPattern):
		return exitUsage
	case errors.Is(err, rdfind.ErrNoInput), errors.As(err, &ie):
		return exitParse
	}
	return exitDiscovery
}

// readSource materializes the whole source in memory, for the modes that
// need a resident dataset (-check, -query). Lenient-mode skipped lines
// report to stderr like the streaming path's.
func readSource(src rdfind.Source, stderr io.Writer) (*rdfind.Dataset, int) {
	ds, malformed, err := rdfind.ReadSource(src)
	if err != nil {
		fmt.Fprintln(stderr, "rdfind:", err)
		return nil, classifyInputErr(err)
	}
	for _, m := range malformed {
		fmt.Fprintln(stderr, "rdfind: skipped", m)
	}
	if len(malformed) > 0 {
		fmt.Fprintf(stderr, "rdfind: skipped %d malformed lines\n", len(malformed))
	}
	return ds, exitOK
}

// reportSkipped prints lenient-mode skipped lines from a streamed run.
func reportSkipped(stderr io.Writer, runStats *core.RunStats) {
	ing := runStats.Ingest
	if ing == nil {
		return
	}
	for _, m := range ing.Skipped {
		fmt.Fprintln(stderr, "rdfind: skipped", m)
	}
	if ing.SkippedLines > 0 {
		fmt.Fprintf(stderr, "rdfind: skipped %d malformed lines\n", ing.SkippedLines)
	}
}

// absInputs resolves the input paths and globs to absolute form for the job
// spec: worker processes may not share the coordinator's cwd resolution.
func absInputs(inputs []string) []string {
	out := make([]string, len(inputs))
	for i, in := range inputs {
		if abs, err := filepath.Abs(in); err == nil {
			out[i] = abs
		} else {
			out[i] = in
		}
	}
	return out
}

// jobSpec carries the coordinator's discovery parameters to the worker
// processes through the welcome message, so the replicated drivers are
// guaranteed to run the same pipeline over the same input.
type jobSpec struct {
	// Inputs are the coordinator's input paths and globs, resolved to
	// absolute form (workers may not share the coordinator's cwd). Every
	// rank resolves the same spec to the same canonical document order and
	// streams only its own file assignment.
	Inputs []string `json:"inputs"`
	// Format is the coordinator's -input-format flag, applied per file by
	// every rank exactly as the coordinator applies it.
	Format string `json:"format,omitempty"`
	// Partition names the placement strategy; placements are pure functions
	// of global dictionary IDs, so independent ranks agree.
	Partition     string `json:"partition,omitempty"`
	Support       int    `json:"support"`
	Variant       string `json:"variant"`
	PredOnly      bool   `json:"predOnly,omitempty"`
	IngestWorkers int    `json:"ingestWorkers"`
	Lenient       bool   `json:"lenient,omitempty"`
	// NoColumnar replicates the coordinator's -no-columnar setting so every
	// rank executes fused chains in the same mode. (The candidate-set wire
	// format is mode-independent, but replaying the same path everywhere keeps
	// the per-rank traces comparable.)
	NoColumnar bool `json:"noColumnar,omitempty"`
}

// startCluster opens the coordinator listener and arranges for N copies of
// this executable to be spawned in worker mode (again after every loss). The
// unix network listens on a socket in a fresh temp directory; tcp listens on
// a kernel-assigned localhost port.
func startCluster(n int, network, chaos string, spec jobSpec, stderr io.Writer) (*rdfind.Cluster, int) {
	faults, err := parseChaos(chaos)
	if err != nil {
		fmt.Fprintln(stderr, "rdfind: bad -chaos:", err)
		return nil, exitUsage
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(stderr, "rdfind: resolving executable for worker spawn:", err)
		return nil, exitDiscovery
	}
	addr := "127.0.0.1:0"
	if network == "unix" {
		dir, err := os.MkdirTemp("", "rdfind-cluster-")
		if err != nil {
			fmt.Fprintln(stderr, "rdfind:", err)
			return nil, exitDiscovery
		}
		addr = filepath.Join(dir, "coord.sock")
	}
	cfg := rdfind.ClusterConfig{
		Workers:    n,
		Network:    network,
		Addr:       addr,
		JobSpec:    mustJSON(spec),
		ProcFaults: faults,
	}
	// The listener knows its final address (tcp picks a port) only after
	// StartCluster, and Spawn fires during it — hand the address to the
	// closure through a channel, resolved exactly once.
	addrCh := make(chan string, 1)
	var addrOnce sync.Once
	var dialAddr string
	cfg.Spawn = func(rank int) error {
		addrOnce.Do(func() { dialAddr = <-addrCh })
		cmd := exec.Command(exe, "worker",
			"-network", network, "-addr", dialAddr, "-rank", strconv.Itoa(rank))
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return err
		}
		go cmd.Wait() // reap; a worker's exit status is judged by heartbeats, not wait
		return nil
	}
	cl, err := rdfind.StartCluster(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "rdfind:", err)
		return nil, exitDiscovery
	}
	addrCh <- cl.Addr().String()
	return cl, exitOK
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

// parseChaos reads a -chaos schedule: comma-separated kind:rank@seq entries,
// where kind is kill, drop, dup, or delay[:duration].
func parseChaos(s string) ([]rdfind.ProcFault, error) {
	if s == "" {
		return nil, nil
	}
	var out []rdfind.ProcFault
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		kindSpec, at, ok := strings.Cut(entry, ":")
		if !ok {
			return nil, fmt.Errorf("want kind:rank@seq, got %q", entry)
		}
		f := rdfind.ProcFault{}
		switch {
		case kindSpec == "kill":
			f.Kind = rdfind.ProcKill
		case kindSpec == "drop":
			f.Kind = rdfind.ProcDisconnect
		case kindSpec == "dup":
			f.Kind = rdfind.ProcDuplicate
		case kindSpec == "delay":
			f.Kind = rdfind.ProcDelay
			f.Delay = 50 * time.Millisecond
		default:
			return nil, fmt.Errorf("unknown fault kind %q in %q", kindSpec, entry)
		}
		rankStr, seqStr, ok := strings.Cut(at, "@")
		if !ok {
			return nil, fmt.Errorf("want kind:rank@seq, got %q", entry)
		}
		// delay admits a duration suffix after the seq: delay:rank@seq:200ms.
		if f.Kind == rdfind.ProcDelay {
			if seq, dur, ok := strings.Cut(seqStr, ":"); ok {
				d, err := time.ParseDuration(dur)
				if err != nil {
					return nil, fmt.Errorf("bad delay duration in %q: %v", entry, err)
				}
				f.Delay, seqStr = d, seq
			}
		}
		rank, err := strconv.Atoi(rankStr)
		if err != nil || rank < 0 {
			return nil, fmt.Errorf("bad rank in %q", entry)
		}
		seq, err := strconv.Atoi(seqStr)
		if err != nil || seq < 0 {
			return nil, fmt.Errorf("bad seq in %q", entry)
		}
		f.Rank, f.Seq = rank, seq
		out = append(out, f)
	}
	return out, nil
}

// runWorker is the worker-mode entry point: dial the coordinator, receive the
// job parameters in the welcome, load the same input, and run the same driver
// — executing only this rank's partitions. Spawned by -cluster; the exit
// status is irrelevant to the coordinator, which judges workers by heartbeat.
func runWorker(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rdfind worker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	network := fs.String("network", "unix", "coordinator network: unix or tcp")
	addr := fs.String("addr", "", "coordinator address (socket path or host:port)")
	rank := fs.Int("rank", -1, "worker rank in [0, workers)")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *addr == "" || *rank < 0 {
		fmt.Fprintln(stderr, "rdfind worker: -addr and -rank are required")
		return exitUsage
	}
	w, err := rdfind.DialWorker(*network, *addr, *rank)
	if err != nil {
		fmt.Fprintln(stderr, "rdfind worker:", err)
		return exitDiscovery
	}
	defer w.Close()
	spec, err := decodeJobSpec(w.JobSpec())
	if err != nil {
		fmt.Fprintln(stderr, "rdfind worker:", err)
		return exitUsage
	}
	variant, ok := map[string]rdfind.Variant{
		"rdfind": rdfind.Standard,
		"de":     rdfind.DirectExtraction,
		"nf":     rdfind.NoFrequentConditions,
		"mf":     rdfind.MinimalFirst,
	}[spec.Variant]
	if !ok {
		fmt.Fprintf(stderr, "rdfind worker: unknown variant %q in job spec\n", spec.Variant)
		return exitUsage
	}
	part, err := rdfind.PartitionerByName(spec.Partition)
	if err != nil {
		fmt.Fprintln(stderr, "rdfind worker:", err)
		return exitUsage
	}
	src := rdfind.Source{
		Inputs:  spec.Inputs,
		Format:  spec.Format,
		Lenient: spec.Lenient,
		Shards:  spec.IngestWorkers,
	}
	_, _, _, err = rdfind.DiscoverSource(context.Background(), src, rdfind.Config{
		Support:                    spec.Support,
		Variant:                    variant,
		PredicatesOnlyInConditions: spec.PredOnly,
		WorkerConn:                 w,
		Partitioner:                part,
		DisableColumnar:            spec.NoColumnar,
	})
	if err != nil {
		// An injected kill simulates sudden process death: exit silently so
		// the coordinator sees only the vanished heartbeat.
		if !w.Killed() {
			fmt.Fprintln(stderr, "rdfind worker:", err)
		}
		return exitDiscovery
	}
	w.Goodbye()
	return exitOK
}

func decodeJobSpec(b []byte) (jobSpec, error) {
	var spec jobSpec
	if len(b) == 0 {
		return spec, errors.New("coordinator sent no job spec (started outside rdfind -cluster?)")
	}
	if err := json.Unmarshal(b, &spec); err != nil {
		return spec, fmt.Errorf("bad job spec: %v", err)
	}
	return spec, nil
}

// parseByteSize parses a byte count with an optional K/M/G suffix (powers of
// 1024, case-insensitive, optional trailing B): "512M", "2g", "65536".
// The empty string means 0 (no budget).
func parseByteSize(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	num, mult := s, int64(1)
	if n := len(num); n > 0 && (num[n-1] == 'b' || num[n-1] == 'B') {
		num = num[:n-1]
	}
	if n := len(num); n > 0 {
		switch num[n-1] {
		case 'k', 'K':
			mult, num = 1<<10, num[:n-1]
		case 'm', 'M':
			mult, num = 1<<20, num[:n-1]
		case 'g', 'G':
			mult, num = 1<<30, num[:n-1]
		}
	}
	v, err := strconv.ParseInt(num, 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("want a byte count like 512M or 2G, got %q", s)
	}
	return v * mult, nil
}

// runQuery is -query mode: a concurrent sparql.Engine is stood up over the
// loaded dataset with the discovery result as minimization knowledge, the
// query runs reps times (every repetition after the first hits the plan
// cache), and the last repetition's rows print to stdout — tab-separated
// after a variable header, or as a JSON document carrying the engine's
// counters. With -stats the run statistics gain the engine's counter lines.
func runQuery(ctx context.Context, ds *rdfind.Dataset, res *rdfind.Result, runStats *core.RunStats,
	text string, reps, workers int, asJSON, showStats bool, stdout, stderr io.Writer) int {
	q, err := sparql.Parse(text)
	if err != nil {
		fmt.Fprintln(stderr, "rdfind:", err)
		return exitUsage
	}
	eng := sparql.NewEngine(triplestore.New(ds), sparql.EngineConfig{
		Workers:   workers,
		Knowledge: res,
	})
	defer eng.Close()

	var last *sparql.Result
	for i := 0; i < reps; i++ {
		if last, err = eng.Execute(ctx, q); err != nil {
			fmt.Fprintln(stderr, "rdfind:", err)
			if errors.Is(err, context.DeadlineExceeded) {
				return exitTimeout
			}
			return exitDiscovery
		}
	}
	engStats := eng.Stats()

	if asJSON {
		doc := struct {
			Vars   []string           `json:"vars"`
			Rows   [][]string         `json:"rows"`
			Engine sparql.EngineStats `json:"engine"`
		}{Vars: last.Vars, Rows: last.Render(ds.Dict), Engine: engStats}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "rdfind:", err)
			return exitDiscovery
		}
		stdout.Write(data)
		fmt.Fprintln(stdout)
	} else {
		header := make([]string, len(last.Vars))
		for i, v := range last.Vars {
			header[i] = "?" + v
		}
		fmt.Fprintln(stdout, strings.Join(header, "\t"))
		for _, row := range last.Render(ds.Dict) {
			fmt.Fprintln(stdout, strings.Join(row, "\t"))
		}
	}

	if showStats {
		if runStats != nil {
			printStats(stderr, runStats)
		}
		fmt.Fprintf(stderr, "queries served:      %d\n", engStats.Queries)
		fmt.Fprintf(stderr, "plan cache:          %d hits, %d misses\n",
			engStats.PlanCacheHits, engStats.PlanCacheMisses)
	}
	return exitOK
}

func printStats(w io.Writer, s *core.RunStats) {
	fmt.Fprintf(w, "triples:             %d\n", s.Triples)
	// Streamed-ingest accounting. New lines only — the fixed-format lines
	// scripts grep for (triples, stage retries, worker losses) are untouched.
	if ing := s.Ingest; ing != nil {
		fmt.Fprintf(w, "ingest:              %d files, %s partitioner\n", ing.Files, ing.Partitioner)
		if ing.Distributed {
			for r, n := range ing.PerRank {
				fmt.Fprintf(w, "ingest rank %d:       %d triples\n", r, n)
			}
			if ing.Rank < 0 {
				fmt.Fprintf(w, "coordinator materialized: %d triples\n", ing.LocalTriples)
			}
			if ing.ShuffleBytes > 0 {
				fmt.Fprintf(w, "placement shuffle:   %d bytes\n", ing.ShuffleBytes)
			}
		}
		if ing.SkippedLines > 0 {
			fmt.Fprintf(w, "skipped lines:       %d\n", ing.SkippedLines)
		}
	}
	fmt.Fprintf(w, "frequent conditions: %d unary, %d binary\n", s.FrequentUnary, s.FrequentBinary)
	fmt.Fprintf(w, "capture groups:      %d\n", s.CaptureGroups)
	fmt.Fprintf(w, "broad CINDs:         %d\n", s.BroadCINDs)
	fmt.Fprintf(w, "pertinent CINDs:     %d (+%d ARs)\n", s.Pertinent, s.ARs)
	fmt.Fprintf(w, "duration:            %v\n", s.Duration)
	if s.StageRetries > 0 {
		fmt.Fprintf(w, "stage retries:       %d\n", s.StageRetries)
	}
	if s.WorkerLosses > 0 || s.WorkerRespawns > 0 {
		fmt.Fprintf(w, "worker losses:       %d (%d respawned)\n", s.WorkerLosses, s.WorkerRespawns)
	}
	if s.Reconnects > 0 {
		fmt.Fprintf(w, "worker reconnects:   %d\n", s.Reconnects)
	}
	if s.Degraded {
		fmt.Fprintf(w, "degraded:            extraction re-planned with Bloom work units (load %d)\n", s.ExtractionLoad)
	}
	if s.SpillPlanned {
		fmt.Fprintf(w, "spill planned:       load limit breach absorbed by the spill path (load %d)\n", s.ExtractionLoad)
	}
	if s.SpilledBytes > 0 {
		fmt.Fprintf(w, "spilled:             %d bytes in %d runs, %d merge passes\n",
			s.SpilledBytes, s.SpilledRuns, s.MergePasses)
	}
	if s.Batches > 0 {
		fmt.Fprintf(w, "column batches:      %d (%.0f%% lanes live)\n", s.Batches, s.BatchFill*100)
	}
	// Per-stage policies the plan optimizer chose (worker counts, budget
	// bypasses, fusion/materialization boundaries). Absent when the optimizer
	// is off or inert (distributed runs), so the block never perturbs the
	// fixed-format accounting lines above that scripts grep for.
	if rep := s.Optimizer; rep != nil && rep.Enabled {
		model := "cold, default cost model"
		if rep.Profiled {
			model = "profile-tuned cost model"
		}
		fmt.Fprintf(w, "plan optimizer:      on (%s), %d decisions\n", model, len(rep.Decisions))
		for _, d := range rep.Decisions {
			if d.Detail != "" {
				fmt.Fprintf(w, "  %-26s %s (%s)\n", d.Rule, d.Stage, d.Detail)
			} else {
				fmt.Fprintf(w, "  %-26s %s\n", d.Rule, d.Stage)
			}
		}
	}
	fmt.Fprintf(w, "work-balance speedup: %.2f\n", s.Dataflow.Speedup())
	fmt.Fprintf(w, "operator trace:\n%s", s.Dataflow.SpanTree())
}
