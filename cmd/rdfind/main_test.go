package main

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Golden-file convention: `go test ./cmd/rdfind -update` rewrites the
// .golden files under testdata/ from the current output. Golden runs pin
// -workers 1: with more workers the engine's random hash seed varies
// per-worker distributions, and volatile fields aside, output order and
// span accounting must be bit-stable for an exact comparison.
var update = flag.Bool("update", false, "rewrite golden files")

func goldenCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/rdfind -update` to create golden files)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// volatileKeys are JSON fields that legitimately change between runs (timing,
// memory, scheduling); normalizeJSON zeroes them before golden comparison.
var volatileKeys = map[string]bool{
	"wall_ms":          true,
	"start_ms":         true,
	"goroutines":       true,
	"heap_alloc_bytes": true,
	"shuffle_bytes":    true,
	"gauges":           true, // peak heap / peak goroutines
	"counts":           true, // latency histogram buckets
	"sum":              true, // latency histogram sum
	// Narrow-stage buffering estimates (top-level, per fused span, and the
	// registry counter): memory estimates, zeroed like shuffle_bytes.
	"materialized_bytes":          true,
	"dataflow.materialized.bytes": true,
}

// droppedKeys are volatile fields added after the goldens were recorded;
// deleting them (rather than zeroing) keeps the goldens byte-identical.
var droppedKeys = map[string]bool{
	"mallocs":           true, // run-level allocation deltas
	"alloc_bytes":       true,
	"mallocs_delta":     true, // per-span allocation deltas
	"alloc_bytes_delta": true,
	// Columnar batch accounting (per-span, run-level, and the registry
	// counters), added after the goldens were recorded. Batch counts depend on
	// the execution mode (zero with DATAFLOW_COLUMNAR=off), so dropping — not
	// zeroing — keeps one golden valid across both CI legs.
	"batches":              true,
	"batch_fill":           true,
	"dataflow.batches":     true,
	"dataflow.batch.lanes": true,
	"dataflow.batch.live":  true,
}

func normalize(v any) any {
	switch x := v.(type) {
	case map[string]any:
		for k, val := range x {
			if droppedKeys[k] {
				delete(x, k)
				continue
			}
			if volatileKeys[k] {
				x[k] = zeroLike(val)
				continue
			}
			x[k] = normalize(val)
		}
		return x
	case []any:
		for i := range x {
			x[i] = normalize(x[i])
		}
		return x
	default:
		return v
	}
}

func zeroLike(v any) any {
	switch v.(type) {
	case []any:
		return []any{}
	case map[string]any:
		return map[string]any{}
	case string:
		return ""
	default:
		return 0
	}
}

func normalizeJSON(t *testing.T, raw []byte) []byte {
	t.Helper()
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, raw)
	}
	out, err := json.MarshalIndent(normalize(doc), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestGoldenText(t *testing.T) {
	code, out, errOut := runCLI(t, "-support", "2", "-workers", "1", "testdata/museums.nt")
	if code != exitOK {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	goldenCompare(t, "museums_text", []byte(out))
}

func TestGoldenResultJSON(t *testing.T) {
	code, out, errOut := runCLI(t, "-support", "2", "-workers", "1", "-format", "json", "testdata/museums.nt")
	if code != exitOK {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	goldenCompare(t, "museums_result_json", []byte(out))
}

func TestGoldenSnapshotJSON(t *testing.T) {
	// The snapshot's spans carry fused-chain composite names and the plan
	// optimizer's report (its rewrites move work between spans), so this
	// golden is recorded in (default) fused+optimized mode; pin it against
	// the CI legs that set DATAFLOW_FUSION=off or DATAFLOW_OPTIMIZER=off
	// process-wide.
	t.Setenv("DATAFLOW_FUSION", "on")
	t.Setenv("DATAFLOW_OPTIMIZER", "on")
	code, out, errOut := runCLI(t, "-support", "2", "-workers", "1", "-json", "testdata/museums.nt")
	if code != exitOK {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	goldenCompare(t, "museums_snapshot_json", normalizeJSON(t, []byte(out)))
}

// TestGoldenFusionOff pins fusion's central promise at the CLI boundary: with
// lazy fusion disabled the discovered results — text and JSON — are
// byte-identical to the fused goldens. (Only the trace snapshot differs,
// since eager execution records one span per narrow operator.)
func TestGoldenFusionOff(t *testing.T) {
	t.Setenv("DATAFLOW_FUSION", "off")
	code, out, errOut := runCLI(t, "-support", "2", "-workers", "1", "testdata/museums.nt")
	if code != exitOK {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	goldenCompare(t, "museums_text", []byte(out))
	code, out, errOut = runCLI(t, "-support", "2", "-workers", "1", "-format", "json", "testdata/museums.nt")
	if code != exitOK {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	goldenCompare(t, "museums_result_json", []byte(out))
}

// TestGoldenColumnarOff pins the columnar path's central promise at the CLI
// boundary: with column-batch execution disabled — via the environment or the
// -no-columnar flag — the discovered results are byte-identical to the
// (default columnar) goldens. Unlike fusion, even the trace snapshot golden
// holds in both modes, because the batch accounting fields are dropped by
// normalizeJSON and everything else (span names, record counts) is identical.
func TestGoldenColumnarOff(t *testing.T) {
	t.Setenv("DATAFLOW_FUSION", "on")
	t.Setenv("DATAFLOW_COLUMNAR", "off")
	t.Setenv("DATAFLOW_OPTIMIZER", "on") // the snapshot golden is recorded with the optimizer on
	code, out, errOut := runCLI(t, "-support", "2", "-workers", "1", "testdata/museums.nt")
	if code != exitOK {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	goldenCompare(t, "museums_text", []byte(out))
	code, out, errOut = runCLI(t, "-support", "2", "-workers", "1", "-format", "json", "testdata/museums.nt")
	if code != exitOK {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	goldenCompare(t, "museums_result_json", []byte(out))
	code, out, errOut = runCLI(t, "-support", "2", "-workers", "1", "-json", "testdata/museums.nt")
	if code != exitOK {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	goldenCompare(t, "museums_snapshot_json", normalizeJSON(t, []byte(out)))
}

// TestNoColumnarFlag checks the -no-columnar escape hatch end to end: results
// match the goldens and the snapshot carries no batch accounting.
func TestNoColumnarFlag(t *testing.T) {
	code, out, errOut := runCLI(t, "-no-columnar", "-support", "2", "-workers", "1", "testdata/museums.nt")
	if code != exitOK {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	goldenCompare(t, "museums_text", []byte(out))
	code, out, _ = runCLI(t, "-no-columnar", "-support", "2", "-workers", "1", "-json", "testdata/museums.nt")
	if code != exitOK {
		t.Fatalf("exit %d", code)
	}
	if strings.Contains(out, `"batches"`) {
		t.Errorf("-no-columnar snapshot still carries batch accounting:\n%s", out)
	}
}

// TestGoldenExplain pins the -explain rendering: the optimized plan tree with
// the fired rules and per-stage cost estimates. Cost numbers are volatile
// (the model's coefficients may be tuned), so the golden normalizes every
// est_cost value; stage names, record counts, and fired rules are exact.
func TestGoldenExplain(t *testing.T) {
	t.Setenv("DATAFLOW_FUSION", "on")
	t.Setenv("DATAFLOW_OPTIMIZER", "on")
	code, out, errOut := runCLI(t, "-explain", "-support", "2", "-workers", "1", "testdata/museums.nt")
	if code != exitOK {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	got := costRe.ReplaceAllString(out, "est_cost=?")
	for _, want := range []string{"plan optimizer: enabled", "rewrites and policies", "plan:"} {
		if !strings.Contains(got, want) {
			t.Fatalf("explain output lacks %q:\n%s", want, got)
		}
	}
	goldenCompare(t, "museums_explain", []byte(got))
}

var costRe = regexp.MustCompile(`est_cost=\S+`)

// TestNoOptimizerFlag checks the -no-optimizer escape hatch end to end:
// results match the goldens byte for byte and the snapshot carries no
// optimizer report.
func TestNoOptimizerFlag(t *testing.T) {
	code, out, errOut := runCLI(t, "-no-optimizer", "-support", "2", "-workers", "1", "testdata/museums.nt")
	if code != exitOK {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	goldenCompare(t, "museums_text", []byte(out))
	code, out, _ = runCLI(t, "-no-optimizer", "-support", "2", "-workers", "1", "-json", "testdata/museums.nt")
	if code != exitOK {
		t.Fatalf("exit %d", code)
	}
	if strings.Contains(out, `"optimizer"`) {
		t.Errorf("-no-optimizer snapshot still carries an optimizer report:\n%s", out)
	}
	code, _, errOut = runCLI(t, "-no-optimizer", "-explain", "-support", "2", "-workers", "1", "testdata/museums.nt")
	if code != exitOK {
		t.Fatalf("-no-optimizer -explain exit %d", code)
	}
}

// TestProfileDirRoundTrip runs discovery twice against one -profile-dir: the
// first run persists its span statistics, the second plans against them —
// and both print the same golden text output.
func TestProfileDirRoundTrip(t *testing.T) {
	t.Setenv("DATAFLOW_OPTIMIZER", "on")
	dir := t.TempDir()
	for run := 0; run < 2; run++ {
		code, out, errOut := runCLI(t, "-profile-dir", dir, "-support", "2", "-workers", "1", "testdata/museums.nt")
		if code != exitOK {
			t.Fatalf("run %d exit %d: %s", run, code, errOut)
		}
		goldenCompare(t, "museums_text", []byte(out))
	}
	if _, err := os.Stat(filepath.Join(dir, "profile.json")); err != nil {
		t.Fatalf("profile not persisted: %v", err)
	}
	// The second run planned warm: -explain against the same dir says so.
	code, out, _ := runCLI(t, "-profile-dir", dir, "-explain", "-support", "2", "-workers", "1", "testdata/museums.nt")
	if code != exitOK {
		t.Fatalf("explain exit %d", code)
	}
	if !strings.Contains(out, "profile-tuned cost model") {
		t.Errorf("warm explain does not report a tuned model:\n%s", out)
	}
}

// TestStatsOptimizerPolicies pins the -stats policy block: per-stage
// decisions the planner made, rendered to stderr — and its absence when the
// optimizer is off.
func TestStatsOptimizerPolicies(t *testing.T) {
	t.Setenv("DATAFLOW_OPTIMIZER", "on")
	code, _, errOut := runCLI(t, "-support", "2", "-workers", "1", "-stats", "testdata/museums.nt")
	if code != exitOK {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(errOut, "plan optimizer:      on (cold, default cost model)") {
		t.Errorf("stats output lacks the optimizer line:\n%s", errOut)
	}
	// Single-worker runs always choose the serial-stage policy somewhere, so
	// at least one per-stage decision line renders.
	if !strings.Contains(errOut, "serial-stage") {
		t.Errorf("stats output lacks per-stage policy lines:\n%s", errOut)
	}
	code, _, errOut = runCLI(t, "-no-optimizer", "-support", "2", "-workers", "1", "-stats", "testdata/museums.nt")
	if code != exitOK {
		t.Fatalf("exit %d", code)
	}
	if strings.Contains(errOut, "plan optimizer:") {
		t.Errorf("-no-optimizer stats still render optimizer lines:\n%s", errOut)
	}
}

// TestSnapshotJSONReconciles re-checks the accounting invariant end to end,
// through the CLI: the emitted spans sum to the emitted total work.
func TestSnapshotJSONReconciles(t *testing.T) {
	code, out, _ := runCLI(t, "-support", "2", "-workers", "3", "-json", "testdata/museums.nt")
	if code != exitOK {
		t.Fatalf("exit %d", code)
	}
	var doc struct {
		Stats struct {
			TotalWork int64 `json:"total_work"`
			Spans     []struct {
				RecordsIn int64 `json:"records_in"`
			} `json:"spans"`
		} `json:"stats"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, sp := range doc.Stats.Spans {
		sum += sp.RecordsIn
	}
	if sum != doc.Stats.TotalWork || sum == 0 {
		t.Errorf("span records-in %d != total work %d", sum, doc.Stats.TotalWork)
	}
}

// TestIngestWorkersDeterministic pins the user-visible promise of the
// -ingest-workers flag: any shard count produces byte-identical output,
// because the sharded dictionary merge assigns the same term IDs the
// sequential reader would.
func TestIngestWorkersDeterministic(t *testing.T) {
	baseArgs := []string{"-support", "2", "-workers", "1", "-format", "json", "testdata/museums.nt"}
	code, want, errOut := runCLI(t, baseArgs...)
	if code != exitOK {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	for _, shards := range []string{"1", "2", "4", "8"} {
		args := append([]string{"-ingest-workers", shards}, baseArgs...)
		code, got, errOut := runCLI(t, args...)
		if code != exitOK {
			t.Fatalf("-ingest-workers %s: exit %d: %s", shards, code, errOut)
		}
		if got != want {
			t.Errorf("-ingest-workers %s changed the output:\n--- got ---\n%s--- want ---\n%s", shards, got, want)
		}
	}
}

func TestStatsToStderr(t *testing.T) {
	code, _, errOut := runCLI(t, "-support", "2", "-workers", "2", "-stats", "testdata/museums.nt")
	if code != exitOK {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"triples:", "capture groups:", "work-balance speedup:", "operator trace:", "input"} {
		if !strings.Contains(errOut, want) {
			t.Errorf("stats output lacks %q:\n%s", want, errOut)
		}
	}
}

func TestCheckMode(t *testing.T) {
	code, out, _ := runCLI(t, "-check", "(o, p=<http://example.org/located>) <= (s, p=<http://example.org/cityIn>)",
		"testdata/museums.nt")
	if code != exitOK {
		t.Fatalf("holding statement exit %d: %s", code, out)
	}
	if !strings.Contains(out, "holds=true") {
		t.Errorf("check output: %s", out)
	}
	code, out, _ = runCLI(t, "-check", "(s, p=<http://example.org/cityIn>) <= (s, p=<http://example.org/located>)",
		"testdata/museums.nt")
	if code != exitDiscovery {
		t.Fatalf("violated statement exit %d: %s", code, out)
	}
}

// TestGoldenTurtleInput pins the format-equivalence promise: the Turtle
// rendition of the museums fixture (same triples, same order, prefixed names)
// produces byte-identical text and JSON output to the N-Triples golden.
func TestGoldenTurtleInput(t *testing.T) {
	code, out, errOut := runCLI(t, "-support", "2", "-workers", "1", "testdata/museums.ttl")
	if code != exitOK {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	goldenCompare(t, "museums_text", []byte(out))
	code, out, errOut = runCLI(t, "-support", "2", "-workers", "1", "-format", "json", "testdata/museums.ttl")
	if code != exitOK {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	goldenCompare(t, "museums_result_json", []byte(out))
	// An explicit -input-format overrides sniffing in both directions.
	code, out, errOut = runCLI(t, "-input-format", "turtle", "-support", "2", "-workers", "1", "testdata/museums.ttl")
	if code != exitOK {
		t.Fatalf("explicit turtle exit %d: %s", code, errOut)
	}
	goldenCompare(t, "museums_text", []byte(out))
}

// gzipFile compresses src into dir under name and returns the new path.
func gzipFile(t *testing.T, src, dir, name string) string {
	t.Helper()
	raw, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestGoldenGzipInput pins transparent decompression: gzipped N-Triples and
// Turtle inputs — by .gz extension or by magic-byte sniff on an extensionless
// name — all reproduce the text golden.
func TestGoldenGzipInput(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct{ src, name string }{
		{"testdata/museums.nt", "museums.nt.gz"},
		{"testdata/museums.ttl", "museums.ttl.gz"},
	} {
		path := gzipFile(t, tc.src, dir, tc.name)
		code, out, errOut := runCLI(t, "-support", "2", "-workers", "1", path)
		if code != exitOK {
			t.Fatalf("%s: exit %d: %s", tc.name, code, errOut)
		}
		goldenCompare(t, "museums_text", []byte(out))
	}
	// No .gz extension: only the magic bytes say it is compressed.
	path := gzipFile(t, "testdata/museums.nt", dir, "museums-compressed")
	code, out, errOut := runCLI(t, "-support", "2", "-workers", "1", path)
	if code != exitOK {
		t.Fatalf("magic-sniffed gzip exit %d: %s", code, errOut)
	}
	goldenCompare(t, "museums_text", []byte(out))
}

// TestQueryMode serves a two-pattern join through -query: the rows land on
// stdout, and -query-reps 2 makes the second execution hit the plan cache —
// visible in the -stats counters (the acceptance surface for the cache).
func TestQueryMode(t *testing.T) {
	const q = "SELECT ?m WHERE { ?m <http://example.org/located> ?c . ?c <http://example.org/cityIn> <http://example.org/germany> }"
	code, out, errOut := runCLI(t, "-support", "2", "-workers", "1",
		"-query", q, "-query-reps", "2", "-stats", "testdata/museums.nt")
	if code != exitOK {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	want := "?m\n<http://example.org/altes_museum>\n<http://example.org/pergamon>\n"
	if out != want {
		t.Errorf("query rows:\n--- got ---\n%s--- want ---\n%s", out, want)
	}
	if !strings.Contains(errOut, "queries served:      2") {
		t.Errorf("stats lack the served count:\n%s", errOut)
	}
	if !strings.Contains(errOut, "plan cache:          1 hits, 1 misses") {
		t.Errorf("stats lack the plan-cache counters:\n%s", errOut)
	}
	// Discovery statistics still precede the engine lines.
	if !strings.Contains(errOut, "triples:") {
		t.Errorf("stats lack the discovery block:\n%s", errOut)
	}
}

// TestQueryModeJSON checks the -json query document: rows in surface form
// plus the engine counter snapshot under committed field names.
func TestQueryModeJSON(t *testing.T) {
	const q = "SELECT ?c WHERE { ?c <http://example.org/cityIn> <http://example.org/france> }"
	code, out, errOut := runCLI(t, "-support", "2", "-workers", "1",
		"-query", q, "-query-reps", "3", "-json", "testdata/museums.nt")
	if code != exitOK {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	var doc struct {
		Vars   []string   `json:"vars"`
		Rows   [][]string `json:"rows"`
		Engine struct {
			Queries int64 `json:"queries"`
			Hits    int64 `json:"plan_cache_hits"`
			Misses  int64 `json:"plan_cache_misses"`
		} `json:"engine"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("query document is not JSON: %v\n%s", err, out)
	}
	if len(doc.Vars) != 1 || doc.Vars[0] != "c" {
		t.Errorf("vars = %v", doc.Vars)
	}
	if len(doc.Rows) != 1 || doc.Rows[0][0] != "<http://example.org/paris>" {
		t.Errorf("rows = %v", doc.Rows)
	}
	if doc.Engine.Queries != 3 || doc.Engine.Hits != 2 || doc.Engine.Misses != 1 {
		t.Errorf("engine counters = %+v", doc.Engine)
	}
}

func TestExitCodes(t *testing.T) {
	if code, _, _ := runCLI(t); code != exitUsage {
		t.Errorf("no args exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runCLI(t, "-variant", "nope", "testdata/museums.nt"); code != exitUsage {
		t.Errorf("bad variant exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runCLI(t, "-format", "nope", "testdata/museums.nt"); code != exitUsage {
		t.Errorf("bad format exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runCLI(t, "testdata/absent.nt"); code != exitParse {
		t.Errorf("missing input exit %d, want %d", code, exitParse)
	}
	if code, _, _ := runCLI(t, "-explain", "-json", "testdata/museums.nt"); code != exitUsage {
		t.Errorf("-explain -json exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runCLI(t, "-cluster", "2", "-explain", "testdata/museums.nt"); code != exitUsage {
		t.Errorf("-cluster -explain exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runCLI(t, "-cluster", "2", "-profile-dir", "x", "testdata/museums.nt"); code != exitUsage {
		t.Errorf("-cluster -profile-dir exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runCLI(t, "-input-format", "nope", "testdata/museums.nt"); code != exitUsage {
		t.Errorf("bad input format exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runCLI(t, "-lenient", "testdata/museums.ttl"); code != exitUsage {
		t.Errorf("-lenient turtle exit %d, want %d", code, exitUsage)
	}
	// (N-Triples is a Turtle subset, so only this direction can fail.)
	if code, _, _ := runCLI(t, "-input-format", "nt", "testdata/museums.ttl"); code != exitParse {
		t.Errorf("Turtle forced through the N-Triples reader exit %d, want %d", code, exitParse)
	}
	if code, _, _ := runCLI(t, "-query", "SELECT", "testdata/museums.nt"); code != exitUsage {
		t.Errorf("malformed -query exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runCLI(t, "-query", "SELECT ?s WHERE { ?s ?p ?o }", "-query-reps", "0", "testdata/museums.nt"); code != exitUsage {
		t.Errorf("-query-reps 0 exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runCLI(t, "-query", "SELECT ?s WHERE { ?s ?p ?o }", "-explain", "testdata/museums.nt"); code != exitUsage {
		t.Errorf("-query -explain exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runCLI(t, "-query", "SELECT ?s WHERE { ?s ?p ?o }", "-check", "x", "testdata/museums.nt"); code != exitUsage {
		t.Errorf("-query -check exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runCLI(t, "-query", "SELECT ?s WHERE { ?s ?p ?o }", "-cluster", "2", "testdata/museums.nt"); code != exitUsage {
		t.Errorf("-query -cluster exit %d, want %d", code, exitUsage)
	}
}
