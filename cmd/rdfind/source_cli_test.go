package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// splitNT splits an N-Triples file into n sequential part files in a fresh
// temp dir and returns the dir. Part names sort in split order, so the
// canonical document order of the parts equals the original file.
func splitNT(t *testing.T, path string, n int) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimRight(string(data), "\n")+"\n", "\n")
	lines = lines[:len(lines)-1] // drop the empty tail
	dir := t.TempDir()
	for i := 0; i < n; i++ {
		lo, hi := i*len(lines)/n, (i+1)*len(lines)/n
		part := filepath.Join(dir, fmt.Sprintf("part-%02d.nt", i))
		if err := os.WriteFile(part, []byte(strings.Join(lines[lo:hi], "")), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestInputGlobMultiFile pins that the same statements split across files —
// named by an -input glob or by positional paths — produce byte-identical
// output to the single-file run.
func TestInputGlobMultiFile(t *testing.T) {
	code, want, errOut := runCLI(t, "-support", "2", "-workers", "1", "testdata/museums.nt")
	if code != exitOK {
		t.Fatalf("baseline exit %d: %s", code, errOut)
	}
	dir := splitNT(t, "testdata/museums.nt", 3)

	code, out, errOut := runCLI(t, "-support", "2", "-workers", "1",
		"-input", filepath.Join(dir, "part-*.nt"))
	if code != exitOK {
		t.Fatalf("glob exit %d: %s", code, errOut)
	}
	if out != want {
		t.Errorf("glob ingest diverged from single file:\n got: %q\nwant: %q", out, want)
	}

	code, out, errOut = runCLI(t, "-support", "2", "-workers", "1",
		filepath.Join(dir, "part-00.nt"), filepath.Join(dir, "part-01.nt"), filepath.Join(dir, "part-02.nt"))
	if code != exitOK {
		t.Fatalf("positional exit %d: %s", code, errOut)
	}
	if out != want {
		t.Errorf("positional multi-file ingest diverged:\n got: %q\nwant: %q", out, want)
	}

	// Duplicate naming (glob plus an explicit member) must not double-read.
	code, out, errOut = runCLI(t, "-support", "2", "-workers", "1",
		"-input", filepath.Join(dir, "part-*.nt"), filepath.Join(dir, "part-01.nt"))
	if code != exitOK {
		t.Fatalf("dedup exit %d: %s", code, errOut)
	}
	if out != want {
		t.Errorf("duplicate input naming changed the output:\n got: %q\nwant: %q", out, want)
	}
}

// TestPartitionFlag pins that placement strategy never changes the result,
// and that an unknown strategy is a usage error.
func TestPartitionFlag(t *testing.T) {
	code, want, errOut := runCLI(t, "-support", "2", "-workers", "4", "testdata/museums.nt")
	if code != exitOK {
		t.Fatalf("baseline exit %d: %s", code, errOut)
	}
	for _, part := range []string{"hash", "subject"} {
		code, out, errOut := runCLI(t, "-support", "2", "-workers", "4",
			"-partition", part, "testdata/museums.nt")
		if code != exitOK {
			t.Fatalf("-partition %s exit %d: %s", part, code, errOut)
		}
		if out != want {
			t.Errorf("-partition %s changed the output:\n got: %q\nwant: %q", part, out, want)
		}
	}
	code, _, errOut = runCLI(t, "-partition", "nope", "testdata/museums.nt")
	if code != exitUsage {
		t.Errorf("-partition nope: exit %d, want %d", code, exitUsage)
	}
	if !strings.Contains(errOut, "partitioner") {
		t.Errorf("-partition nope stderr %q does not name the partitioner", errOut)
	}
}

// TestLenientTurtleUsageError pins the explicit rejection of -lenient on
// Turtle input: the Turtle reader has no line-oriented recovery, so the flag
// must fail loudly rather than be silently ignored.
func TestLenientTurtleUsageError(t *testing.T) {
	code, _, errOut := runCLI(t, "-lenient", "testdata/museums.ttl")
	if code != exitUsage {
		t.Fatalf("exit %d, want %d (usage)", code, exitUsage)
	}
	if !strings.Contains(errOut, "lenient") {
		t.Errorf("stderr %q does not explain the lenient/Turtle conflict", errOut)
	}
	// Forcing Turtle on an .nt path must hit the same check.
	code, _, _ = runCLI(t, "-lenient", "-input-format", "turtle", "testdata/museums.nt")
	if code != exitUsage {
		t.Errorf("-input-format turtle: exit %d, want %d", code, exitUsage)
	}
}

// TestClusterIngestStats runs worker-local ingest over split input and checks
// the -stats accounting: every rank reports its ingested triples, the
// coordinator reports zero materialized triples, and stdout stays identical
// to the single-process run over the unsplit file.
func TestClusterIngestStats(t *testing.T) {
	code, want, errOut := runCLI(t, "-support", "2", "testdata/museums.nt")
	if code != exitOK {
		t.Fatalf("baseline exit %d: %s", code, errOut)
	}
	dir := splitNT(t, "testdata/museums.nt", 2)
	for _, part := range []string{"hash", "subject"} {
		code, out, errOut := runCLI(t, "-cluster", "2", "-stats", "-support", "2",
			"-partition", part, "-input", filepath.Join(dir, "part-*.nt"))
		if code != exitOK {
			t.Fatalf("-partition %s exit %d: %s", part, code, errOut)
		}
		if out != want {
			t.Errorf("-partition %s cluster output diverged:\n got: %q\nwant: %q", part, out, want)
		}
		for _, line := range []string{
			"ingest:              2 files, " + part + " partitioner",
			"ingest rank 0:",
			"ingest rank 1:",
			"coordinator materialized: 0 triples",
		} {
			if !strings.Contains(errOut, line) {
				t.Errorf("-partition %s stats missing %q:\n%s", part, line, errOut)
			}
		}
	}
}
