// Threshold advising and result ranking — the paper's future directions
// (§10) implemented: profile a dataset to recommend support thresholds per
// use case, run discovery at the knowledge-discovery threshold, and rank the
// resulting CINDs by meaningfulness, separating likely-spurious ones.
//
//	go run ./examples/advisor
package main

import (
	"fmt"

	"repro"
	"repro/internal/advisor"
	"repro/internal/datagen"
)

func main() {
	ds := datagen.LinkedMDB(0.5)
	fmt.Printf("LinkedMDB-like dataset: %d triples\n\n", ds.Size())

	// Step 1: profile once, get a threshold per use case.
	profile := advisor.BuildProfile(ds)
	suggestions := profile.Suggest()
	fmt.Println("Suggested support thresholds:")
	fmt.Print(advisor.Format(suggestions))

	// Step 2: discover at the knowledge-discovery threshold.
	var h int
	for _, s := range suggestions {
		if s.UseCase == advisor.KnowledgeDiscovery {
			h = s.Estimate.Threshold
		}
	}
	result, stats := rdfind.Discover(ds, rdfind.Config{Support: h, Workers: 4})
	fmt.Printf("\nh=%d: %d CINDs + %d ARs in %v\n", h, stats.Pertinent, stats.ARs, stats.Duration)

	// Step 3: rank by meaningfulness.
	scored := advisor.Rank(ds, result)
	fmt.Println("\nMost meaningful CINDs:")
	shown, spurious := 0, 0
	for _, s := range scored {
		if s.LikelySpurious() {
			spurious++
			continue
		}
		if shown < 10 {
			fmt.Printf("  score %7.1f  sel %.2f  cov %.2f  %s\n",
				s.Score, s.Selectivity, s.Coverage, s.CIND.Format(ds.Dict))
			shown++
		}
	}
	fmt.Printf("\n%d of %d CINDs flagged as likely spurious (near-universal referenced capture)\n",
		spurious, len(scored))
}
