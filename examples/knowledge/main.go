// Knowledge discovery (Appendix B): low-support CINDs reveal facts about
// data instances that no ontology states — the paper's examples are the
// AC/DC songwriting pair and the "area code 559 means California" rule.
// This example rediscovers both from the DBpedia-like dataset, plus the
// drug-target nesting from the DrugBank-like one.
//
//	go run ./examples/knowledge
package main

import (
	"fmt"

	"repro"
	"repro/internal/datagen"
)

func main() {
	dbp := datagen.DBpediaMPCE(0.5)
	fmt.Printf("DBpedia-like dataset: %d triples\n", dbp.Size())

	// Low thresholds surface instance-level facts; the paper's examples
	// have supports 26 and 98.
	result, stats := rdfind.Discover(dbp, rdfind.Config{Support: 20, Workers: 4})
	fmt.Printf("h=20: %d CINDs + %d ARs in %v\n\n", stats.Pertinent, stats.ARs, stats.Duration)

	// Mutual CINDs between two binary captures with the same condition
	// attributes express "X and Y always co-occur" facts. Find all pairs
	// (α, p=a ∧ o=v1) ≡ (α, p=a ∧ o=v2).
	seen := map[rdfind.Inclusion]int{}
	for _, c := range result.CINDs {
		seen[c.Inclusion] = c.Support
	}
	fmt.Println("Mutual facts (both directions hold):")
	shown := 0
	for _, c := range result.CINDs {
		reverse := rdfind.Inclusion{Dep: c.Ref, Ref: c.Dep}
		if _, ok := seen[reverse]; !ok {
			continue
		}
		if !c.Dep.Cond.IsBinary() || !c.Ref.Cond.IsBinary() {
			continue
		}
		// Report each unordered pair once.
		if c.Dep.Cond.Key() > c.Ref.Cond.Key() {
			continue
		}
		fmt.Printf("  %s   [support %d]\n", c.Inclusion.Format(dbp.Dict), c.Support)
		shown++
		if shown >= 10 {
			break
		}
	}
	if shown == 0 {
		fmt.Println("  (none)")
	}

	// Directed facts: "everything with property X also has property Y".
	fmt.Println("\nDirected facts (one direction only):")
	shown = 0
	for _, c := range result.CINDs {
		reverse := rdfind.Inclusion{Dep: c.Ref, Ref: c.Dep}
		if _, mutual := seen[reverse]; mutual {
			continue
		}
		if !c.Dep.Cond.IsBinary() || !c.Ref.Cond.IsBinary() {
			continue
		}
		if c.Dep.Cond.A1 != rdfind.Predicate || c.Ref.Cond.A1 != rdfind.Predicate {
			continue
		}
		fmt.Printf("  %s   [support %d]\n", c.Inclusion.Format(dbp.Dict), c.Support)
		shown++
		if shown >= 10 {
			break
		}
	}
	if shown == 0 {
		fmt.Println("  (none)")
	}

	// The DrugBank nesting: anything targeted by one drug is targeted by
	// another — the paper's drug00030/drug00047 example.
	drugs := datagen.DrugBank(0.5)
	dres, dstats := rdfind.Discover(drugs, rdfind.Config{Support: 10, Workers: 4})
	fmt.Printf("\nDrugBank-like dataset: %d triples, h=10: %d CINDs + %d ARs in %v\n",
		drugs.Size(), dstats.Pertinent, dstats.ARs, dstats.Duration)
	fmt.Println("Drug-target nestings:")
	shown = 0
	for _, c := range dres.CINDs {
		d, r := c.Dep.Cond, c.Ref.Cond
		if c.Dep.Proj == rdfind.Object && c.Ref.Proj == rdfind.Object &&
			d.IsBinary() && r.IsBinary() &&
			d.A1 == rdfind.Subject && r.A1 == rdfind.Subject &&
			d.A2 == rdfind.Predicate && r.A2 == rdfind.Predicate &&
			drugs.Dict.Decode(d.V2) == "target" && drugs.Dict.Decode(r.V2) == "target" {
			fmt.Printf("  targets(%s) ⊆ targets(%s)   [support %d]\n",
				drugs.Dict.Decode(d.V1), drugs.Dict.Decode(r.V1), c.Support)
			shown++
			if shown >= 10 {
				break
			}
		}
	}
	if shown == 0 {
		fmt.Println("  (none)")
	}
}
