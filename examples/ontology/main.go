// Ontology reverse engineering (Appendix B): mine subproperty hints, class
// hierarchies, and predicate domains/ranges from a DBpedia-like dataset
// whose schema is not given. Each rule family below corresponds to one of
// the paper's Appendix B patterns.
//
//	go run ./examples/ontology
package main

import (
	"fmt"
	"strings"

	"repro"
	"repro/internal/datagen"
)

func main() {
	ds := datagen.DBpediaMPCE(0.5)
	fmt.Printf("DBpedia-like dataset: %d triples\n", ds.Size())

	result, stats := rdfind.Discover(ds, rdfind.Config{Support: 25, Workers: 4})
	fmt.Printf("discovered %d CINDs + %d ARs in %v\n\n", stats.Pertinent, stats.ARs, stats.Duration)

	typeID, hasType := ds.Dict.Lookup("rdf:type")

	var subproperties, hierarchy, ranges []string
	for _, c := range result.CINDs {
		dep, ref := c.Dep, c.Ref
		switch {
		// Subproperty hint: (α, p=a) ⊆ (α, p=b) for both α = s and α = o
		// suggests a ⊑ b (the paper's associatedBand finding).
		case dep.Proj == ref.Proj && !dep.Cond.IsBinary() && !ref.Cond.IsBinary() &&
			dep.Cond.A1 == rdfind.Predicate && ref.Cond.A1 == rdfind.Predicate:
			subproperties = append(subproperties, fmt.Sprintf("%s ⊑ %s   [%s-side, support %d]",
				ds.Dict.Decode(dep.Cond.V1), ds.Dict.Decode(ref.Cond.V1), dep.Proj, c.Support))

		// Class hierarchy: (s, p=rdf:type ∧ o=C) ⊆ (s, p=rdf:type ∧ o=D)
		// suggests C ⊑ D (the paper's Leptodactylidae ⊑ Frog finding).
		case hasType && dep.Proj == rdfind.Subject && ref.Proj == rdfind.Subject &&
			isTypeCond(dep.Cond, typeID) && isTypeCond(ref.Cond, typeID):
			hierarchy = append(hierarchy, fmt.Sprintf("%s ⊑ %s   [support %d]",
				classOf(ds, dep.Cond), classOf(ds, ref.Cond), c.Support))

		// Range discovery: (o, p=a) ⊆ (s, p=rdf:type ∧ o=C) means the
		// range of predicate a is class C (the paper's movieEditor finding).
		case hasType && dep.Proj == rdfind.Object && ref.Proj == rdfind.Subject &&
			!dep.Cond.IsBinary() && dep.Cond.A1 == rdfind.Predicate && isTypeCond(ref.Cond, typeID):
			ranges = append(ranges, fmt.Sprintf("range(%s) = %s   [support %d]",
				ds.Dict.Decode(dep.Cond.V1), classOf(ds, ref.Cond), c.Support))
		}
	}

	section("Subproperty hints", subproperties, 8)
	section("Class hierarchy hints", hierarchy, 8)
	section("Predicate ranges", ranges, 8)
}

// isTypeCond reports whether the condition is p=rdf:type ∧ o=<class>.
func isTypeCond(c rdfind.Condition, typeID rdfind.Value) bool {
	return c.IsBinary() && c.A1 == rdfind.Predicate && c.V1 == typeID && c.A2 == rdfind.Object
}

// classOf extracts the class term from a type condition.
func classOf(ds *rdfind.Dataset, c rdfind.Condition) string {
	return ds.Dict.Decode(c.V2)
}

func section(title string, lines []string, max int) {
	fmt.Printf("%s (%d found):\n", title, len(lines))
	for i, l := range lines {
		if i == max {
			fmt.Printf("  … and %d more\n", len(lines)-max)
			break
		}
		fmt.Println("  " + l)
	}
	if len(lines) == 0 {
		fmt.Println("  (none at this threshold)")
	}
	fmt.Println(strings.Repeat("-", 60))
}
