// Query optimization: the Fig. 14 use case end to end. Generates a LUBM
// dataset, discovers its CINDs, minimizes LUBM query Q2 from six query
// triples to three using the discovered dependencies, and shows that the
// minimized query returns identical results several times faster.
//
//	go run ./examples/queryopt
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/datagen"
	"repro/internal/sparql"
	"repro/internal/triplestore"
)

const q2 = "SELECT ?x ?y ?z WHERE { " +
	"?x rdf:type GraduateStudent . ?y rdf:type University . ?z rdf:type Department . " +
	"?x memberOf ?z . ?z subOrganizationOf ?y . ?x undergraduateDegreeFrom ?y }"

func main() {
	ds := datagen.LUBM(1)
	fmt.Printf("LUBM dataset: %d triples\n", ds.Size())

	// Discover the dependencies that encode the schema's invariants. The
	// support threshold must not exceed the number of universities: the
	// CIND that eliminates "?y rdf:type University" projects universities.
	result, stats := rdfind.Discover(ds, rdfind.Config{Support: 4, Workers: 4})
	fmt.Printf("discovered %d CINDs + %d ARs in %v\n\n", stats.Pertinent, stats.ARs, stats.Duration)

	store := triplestore.New(ds)
	query, err := sparql.Parse(q2)
	if err != nil {
		log.Fatal(err)
	}
	minimized := sparql.Minimize(query, result, ds.Dict)

	fmt.Println("original Q2: ", query)
	fmt.Println("minimized Q2:", minimized)
	fmt.Printf("query triples: %d -> %d\n\n", len(query.Patterns), len(minimized.Patterns))

	run := func(label string, q *sparql.Query) int {
		// Warm up once, then average.
		if _, err := sparql.Execute(store, q); err != nil {
			log.Fatal(err)
		}
		const reps = 5
		start := time.Now()
		var rows int
		for i := 0; i < reps; i++ {
			res, err := sparql.Execute(store, q)
			if err != nil {
				log.Fatal(err)
			}
			rows = len(res.Rows)
		}
		fmt.Printf("%-13s %6d results in %v\n", label, rows, time.Since(start)/reps)
		return rows
	}
	a := run("original:", query)
	b := run("minimized:", minimized)
	if a != b {
		log.Fatalf("results differ: %d vs %d", a, b)
	}
	fmt.Println("\nresults identical — the removed type checks were implied by CINDs")
}
