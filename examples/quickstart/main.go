// Quickstart: discover CINDs and association rules in a small RDF dataset —
// the university instance from Table 1 of the paper — using the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

// document is Table 1 of the paper as N-Triples.
const document = `<patrick> <rdf:type> <gradStudent> .
<mike> <rdf:type> <gradStudent> .
<john> <rdf:type> <professor> .
<patrick> <memberOf> <csd> .
<mike> <memberOf> <biod> .
<patrick> <undergradFrom> <hpi> .
<tim> <undergradFrom> <hpi> .
<mike> <undergradFrom> <cmu> .
`

func main() {
	ds, err := rdfind.ReadNTriples(strings.NewReader(document))
	if err != nil {
		log.Fatal(err)
	}

	// Discover all pertinent CINDs with at least two included values.
	result, stats := rdfind.Discover(ds, rdfind.Config{Support: 2, Workers: 2})

	fmt.Printf("%d triples -> %d pertinent CINDs, %d association rules (%v)\n\n",
		stats.Triples, stats.Pertinent, stats.ARs, stats.Duration)
	fmt.Print(result.Format(ds.Dict))

	// Spot-check one statement programmatically: Example 3 of the paper
	// says graduate students are a subset of people with an undergraduate
	// degree. The discovery reports it through the association rule
	// o=gradStudent → p=rdf:type, whose unary form is equivalent.
	grad, _ := ds.Dict.Lookup("<gradStudent>")
	under, _ := ds.Dict.Lookup("<undergradFrom>")
	example3 := rdfind.Inclusion{
		Dep: rdfind.Capture{Proj: rdfind.Subject, Cond: rdfind.Unary(rdfind.Object, grad)},
		Ref: rdfind.Capture{Proj: rdfind.Subject, Cond: rdfind.Unary(rdfind.Predicate, under)},
	}
	fmt.Printf("\nExample 3 check: %s holds = %v (support %d)\n",
		example3.Format(ds.Dict), rdfind.Holds(ds, example3), rdfind.Support(ds, example3.Dep))
}
