package rdfind

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

const facadeDoc = `<s1> <memberOf> <g1> .
<s1> <type> <Person> .
<s2> <memberOf> <g1> .
<s2> <type> <Person> .
<s3> <memberOf> <g2> .
<s3> <type> <Person> .
`

// TestFaultFacadeInjectionRoundTrip drives the fault-tolerance surface
// end to end through the public facade: trace a run, inject faults at traced
// sites, and verify the output is identical and the retries are visible.
func TestFaultFacadeInjectionRoundTrip(t *testing.T) {
	ds, err := ReadNTriples(strings.NewReader(facadeDoc))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Support: 2, Workers: 2, RetryBackoff: time.Nanosecond}

	tracer := NewFaultPlan()
	cfg.FaultPlan = tracer
	res, _, err := DiscoverContext(context.Background(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := res.Format(ds.Dict)
	sites := tracer.Trace()
	if len(sites) == 0 {
		t.Fatal("empty execution trace")
	}

	cfg.FaultPlan = RandomFaultPlan(42, sites, 3)
	res, stats, err := DiscoverContext(context.Background(), ds, cfg)
	if err != nil {
		t.Fatalf("faulted run failed: %v", err)
	}
	if got := res.Format(ds.Dict); got != want {
		t.Errorf("faulted run diverged:\n%s\nwant:\n%s", got, want)
	}
	if len(cfg.FaultPlan.Fired()) == 0 {
		t.Error("no planned fault fired")
	}
	if stats.StageRetries == 0 {
		t.Error("stats do not account the retries")
	}

	// A terminal failure surfaces as a transient-marked *StageError.
	cfg.FaultPlan = NewFaultPlan(Fault{Stage: sites[0].Stage, Worker: sites[0].Worker, Kind: FaultTransient})
	cfg.MaxStageAttempts = 1
	_, _, err = DiscoverContext(context.Background(), ds, cfg)
	var se *StageError
	if !errors.As(err, &se) || !IsTransient(err) {
		t.Errorf("err = %v, want a transient *StageError", err)
	}
}

func TestFaultFacadeCancelAndLenient(t *testing.T) {
	ds, malformed, err := ReadNTriplesLenient(strings.NewReader(facadeDoc+"broken line\n"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(malformed) != 1 || malformed[0].Line != 7 {
		t.Fatalf("malformed = %v, want one error on line 7", malformed)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, stats, err := DiscoverContext(ctx, ds, Config{Support: 2, Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want to wrap context.Canceled", err)
	}
	if stats == nil {
		t.Error("cancelled run must report partial stats")
	}
	if res, _, err := TryDiscover(ds, Config{Support: 2, Workers: 2}); err != nil || res == nil {
		t.Errorf("TryDiscover on a healthy run: res=%v err=%v", res, err)
	}
}
