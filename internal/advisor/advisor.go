// Package advisor implements the first of the paper's future directions
// (§10): "(inter-)actively aid users in determining an appropriate support
// threshold to find the relevant cinds for their applications."
//
// The advisor profiles a dataset once — the condition-frequency distribution
// of Fig. 4 plus the value-occurrence distribution that governs capture-
// group sizes — and from the profile predicts, for any candidate threshold,
// how many conditions survive frequent-condition pruning and how expensive
// extraction will be (the Σ|G|² cost model of §7.1). Suggestions map the
// paper's use cases (query minimization, knowledge discovery, exploration)
// to thresholds hitting target pruning rates.
package advisor

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cind"
	"repro/internal/rdf"
)

// Profile is the one-pass dataset summary the advisor works from.
type Profile struct {
	Triples int
	// ConditionFreqs counts distinct unary+binary conditions per frequency.
	ConditionFreqs map[int]int
	// ValueOccurrences counts, per value, in how many triples it occurs —
	// the quantity that drives capture-group sizes.
	ValueOccurrences map[rdf.Value]int
}

// BuildProfile scans the dataset once.
func BuildProfile(ds *rdf.Dataset) *Profile {
	condFreq := make(map[cind.Condition]int)
	valOcc := make(map[rdf.Value]int)
	for _, t := range ds.Triples {
		condFreq[cind.Unary(rdf.Subject, t.S)]++
		condFreq[cind.Unary(rdf.Predicate, t.P)]++
		condFreq[cind.Unary(rdf.Object, t.O)]++
		condFreq[cind.Binary(rdf.Subject, t.S, rdf.Predicate, t.P)]++
		condFreq[cind.Binary(rdf.Subject, t.S, rdf.Object, t.O)]++
		condFreq[cind.Binary(rdf.Predicate, t.P, rdf.Object, t.O)]++
		valOcc[t.S]++
		valOcc[t.P]++
		valOcc[t.O]++
	}
	hist := make(map[int]int)
	for _, f := range condFreq {
		hist[f]++
	}
	return &Profile{
		Triples:          ds.Size(),
		ConditionFreqs:   hist,
		ValueOccurrences: valOcc,
	}
}

// Estimate predicts the effect of a support threshold.
type Estimate struct {
	Threshold int
	// FrequentConditions counts conditions with frequency ≥ h.
	FrequentConditions int
	// PruningRate is the share of conditions removed by the first phase of
	// lazy pruning.
	PruningRate float64
	// ExtractionLoad is the Σ|G|² cost proxy for CIND extraction, using
	// per-value evidence counts capped by the threshold regime.
	ExtractionLoad int64
}

// EstimateFor predicts pruning and extraction cost at threshold h.
func (p *Profile) EstimateFor(h int) Estimate {
	total, frequent := 0, 0
	for f, n := range p.ConditionFreqs {
		total += n
		if f >= h {
			frequent += n
		}
	}
	est := Estimate{Threshold: h, FrequentConditions: frequent}
	if total > 0 {
		est.PruningRate = 1 - float64(frequent)/float64(total)
	}
	// A value occurring in k triples yields at most 2k capture evidences
	// after subsumption; values below h occurrences cannot survive
	// capture-support pruning as group anchors of broad captures.
	for _, k := range p.ValueOccurrences {
		if k < h {
			continue
		}
		g := int64(2 * k)
		est.ExtractionLoad += g * g
	}
	return est
}

// UseCase labels a suggestion target.
type UseCase string

const (
	// QueryMinimization wants only very broad CINDs (the paper recommends
	// h ≈ 1000).
	QueryMinimization UseCase = "query-minimization"
	// KnowledgeDiscovery tolerates instance-level facts (paper: h ≈ 25).
	KnowledgeDiscovery UseCase = "knowledge-discovery"
	// Exploration wants the largest result the machine can afford.
	Exploration UseCase = "exploration"
)

// pruningTargets maps each use case to the share of conditions that should
// be pruned: broader use cases need stronger pruning.
var pruningTargets = map[UseCase]float64{
	QueryMinimization:  0.9995,
	KnowledgeDiscovery: 0.995,
	Exploration:        0.95,
}

// Suggestion is a recommended threshold for one use case.
type Suggestion struct {
	UseCase  UseCase
	Estimate Estimate
}

// Suggest recommends a threshold per use case: the smallest h whose pruning
// rate reaches the use case's target (clamped to the dataset's frequency
// range). Suggestions are ordered from broadest to most detailed use case.
func (p *Profile) Suggest() []Suggestion {
	freqs := make([]int, 0, len(p.ConditionFreqs))
	for f := range p.ConditionFreqs {
		freqs = append(freqs, f)
	}
	sort.Ints(freqs)
	if len(freqs) == 0 {
		return nil
	}
	cases := []UseCase{QueryMinimization, KnowledgeDiscovery, Exploration}
	out := make([]Suggestion, 0, len(cases))
	for _, uc := range cases {
		target := pruningTargets[uc]
		h := freqs[len(freqs)-1] + 1 // prune everything as a fallback
		// Candidate thresholds are the distinct frequencies + 1 (the
		// smallest h that excludes that frequency).
		for _, f := range freqs {
			est := p.EstimateFor(f + 1)
			if est.PruningRate >= target {
				h = f + 1
				break
			}
		}
		out = append(out, Suggestion{UseCase: uc, Estimate: p.EstimateFor(h)})
	}
	return out
}

// Format renders suggestions as a small table.
func Format(sugs []Suggestion) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %8s %10s %9s %14s\n", "use case", "h", "frequent", "pruned", "extract-load")
	for _, s := range sugs {
		fmt.Fprintf(&b, "%-22s %8d %10d %8.2f%% %14d\n",
			s.UseCase, s.Estimate.Threshold, s.Estimate.FrequentConditions,
			100*s.Estimate.PruningRate, s.Estimate.ExtractionLoad)
	}
	return b.String()
}
