package advisor

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/fixtures"
	"repro/internal/naive"
	"repro/internal/rdf"
)

func TestProfileCountsMatchOracle(t *testing.T) {
	ds := fixtures.University()
	p := BuildProfile(ds)
	if p.Triples != 8 {
		t.Errorf("Triples = %d", p.Triples)
	}
	// The histogram must cover exactly the distinct conditions.
	want := len(naive.FrequentConditions(ds, 1, naive.Options{}))
	total := 0
	for _, n := range p.ConditionFreqs {
		total += n
	}
	if total != want {
		t.Errorf("profile covers %d conditions, oracle has %d", total, want)
	}
	// Value occurrences: patrick occurs in 3 triples.
	patrick := fixtures.MustID(ds, "patrick")
	if p.ValueOccurrences[patrick] != 3 {
		t.Errorf("occ(patrick) = %d, want 3", p.ValueOccurrences[patrick])
	}
}

func TestEstimateMatchesOracle(t *testing.T) {
	ds := datagen.Countries(0.1)
	p := BuildProfile(ds)
	for _, h := range []int{1, 2, 5, 20} {
		est := p.EstimateFor(h)
		want := len(naive.FrequentConditions(ds, h, naive.Options{}))
		if est.FrequentConditions != want {
			t.Errorf("h=%d: estimated %d frequent conditions, oracle %d", h, est.FrequentConditions, want)
		}
		if est.PruningRate < 0 || est.PruningRate > 1 {
			t.Errorf("h=%d: pruning rate %f out of range", h, est.PruningRate)
		}
	}
	// Monotonicity: larger thresholds prune more and cost less.
	prev := p.EstimateFor(1)
	for _, h := range []int{2, 4, 16, 64} {
		cur := p.EstimateFor(h)
		if cur.FrequentConditions > prev.FrequentConditions {
			t.Errorf("frequent conditions grew from h=%d", h)
		}
		if cur.ExtractionLoad > prev.ExtractionLoad {
			t.Errorf("extraction load grew from h=%d", h)
		}
		if cur.PruningRate < prev.PruningRate {
			t.Errorf("pruning rate fell at h=%d", h)
		}
		prev = cur
	}
}

func TestSuggestOrdering(t *testing.T) {
	ds := datagen.Diseasome(0.2)
	sugs := BuildProfile(ds).Suggest()
	if len(sugs) != 3 {
		t.Fatalf("got %d suggestions", len(sugs))
	}
	// Broader use cases demand stronger pruning, hence larger thresholds.
	if !(sugs[0].UseCase == QueryMinimization && sugs[2].UseCase == Exploration) {
		t.Fatalf("unexpected order: %v %v %v", sugs[0].UseCase, sugs[1].UseCase, sugs[2].UseCase)
	}
	if sugs[0].Estimate.Threshold < sugs[1].Estimate.Threshold ||
		sugs[1].Estimate.Threshold < sugs[2].Estimate.Threshold {
		t.Errorf("thresholds not decreasing with use-case breadth: %d %d %d",
			sugs[0].Estimate.Threshold, sugs[1].Estimate.Threshold, sugs[2].Estimate.Threshold)
	}
	// Each suggestion meets its pruning target.
	for _, s := range sugs {
		if s.Estimate.PruningRate < pruningTargets[s.UseCase] {
			t.Errorf("%s: pruning %.4f below target %.4f", s.UseCase, s.Estimate.PruningRate, pruningTargets[s.UseCase])
		}
	}
	text := Format(sugs)
	if !strings.Contains(text, "query-minimization") || !strings.Contains(text, "h") {
		t.Errorf("Format output unexpected:\n%s", text)
	}
}

func TestSuggestEmptyDataset(t *testing.T) {
	if sugs := BuildProfile(rdf.NewDataset()).Suggest(); sugs != nil {
		t.Errorf("suggestions for empty dataset: %v", sugs)
	}
}

func TestRankScoresSelectivity(t *testing.T) {
	ds := datagen.LUBM(0.2)
	res, _ := core.Discover(ds, core.Config{Support: 5, Workers: 2})
	if len(res.CINDs) == 0 {
		t.Skip("no CINDs at this scale")
	}
	scored := Rank(ds, res)
	if len(scored) != len(res.CINDs) {
		t.Fatalf("scored %d of %d CINDs", len(scored), len(res.CINDs))
	}
	for i := 1; i < len(scored); i++ {
		if scored[i].Score > scored[i-1].Score {
			t.Fatalf("ranking not descending at %d", i)
		}
	}
	for _, s := range scored {
		if s.Selectivity < 0 || s.Selectivity > 1 {
			t.Errorf("selectivity %f out of range for %s", s.Selectivity, s.CIND.Inclusion.Format(ds.Dict))
		}
		if s.Coverage < 0 || s.Coverage > 1.0001 {
			t.Errorf("coverage %f out of range", s.Coverage)
		}
		// Consistency: spurious implies low score relative to support.
		if s.LikelySpurious() && s.Score > 0.05*float64(s.CIND.Support)+1e-9 {
			t.Errorf("spurious CIND with score %f (support %d)", s.Score, s.CIND.Support)
		}
	}
}

// TestRankPrefersInformativeCIND pins the intuition on Table 1: the
// inclusion into the *conditioned* capture must outrank an inclusion into a
// near-universal one with equal support.
func TestRankPrefersInformativeCIND(t *testing.T) {
	ds := fixtures.University()
	res, _ := core.Discover(ds, core.Config{Support: 2, Workers: 1})
	scored := Rank(ds, res)
	pos := func(needle string) int {
		for i, s := range scored {
			if strings.Contains(s.CIND.Inclusion.Format(ds.Dict), needle) {
				return i
			}
		}
		return -1
	}
	informative := pos("(s, p=memberOf) ⊆ (s, o=gradStudent)")
	broad := pos("(p, s=mike) ⊆ (p, s=patrick)")
	if informative < 0 || broad < 0 {
		t.Skip("expected CINDs not present at this configuration")
	}
	if informative > broad {
		t.Errorf("membership CIND ranked below the near-universal predicate CIND (%d vs %d)", informative, broad)
	}
}
