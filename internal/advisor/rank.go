package advisor

import (
	"sort"

	"repro/internal/cind"
	"repro/internal/rdf"
)

// This file implements the second future direction of §10: "discerning
// meaningful and spurious cinds". The heuristic follows the local-closed-
// world intuition the paper cites: a CIND is informative when its
// referenced capture is *selective* — containment in a near-universal set
// (e.g. "every subject of p is among all subjects whatsoever") says little.
// Meaningfulness combines the CIND's support with the referenced capture's
// selectivity.

// Scored is a CIND with its meaningfulness score and the quantities behind
// it.
type Scored struct {
	CIND cind.CIND
	// Selectivity is 1 − |I(ref)| / |universe(ref.Proj)|: how much of the
	// projection attribute's value universe the referenced capture rules
	// out. Near 0 means the inclusion was almost unavoidable.
	Selectivity float64
	// Coverage is supp / |I(ref)|: how much of the referenced set the
	// dependent side fills. High coverage suggests near-equivalence.
	Coverage float64
	// Score is Support · Selectivity, the ranking key.
	Score float64
}

// Rank scores every CIND in the result against the dataset and returns them
// in descending meaningfulness order. ARs are not scored; the paper already
// treats them as strictly stronger statements.
func Rank(ds *rdf.Dataset, res *cind.Result) []Scored {
	// Universe sizes per projection attribute.
	uni := map[rdf.Attr]map[rdf.Value]struct{}{
		rdf.Subject:   {},
		rdf.Predicate: {},
		rdf.Object:    {},
	}
	for _, t := range ds.Triples {
		for _, a := range rdf.Attrs {
			uni[a][t.Get(a)] = struct{}{}
		}
	}
	// Referenced interpretations are shared across CINDs; memoize.
	refSizes := map[cind.Capture]int{}
	refSize := func(c cind.Capture) int {
		if n, ok := refSizes[c]; ok {
			return n
		}
		n := len(cind.Interpret(ds, c))
		refSizes[c] = n
		return n
	}

	out := make([]Scored, 0, len(res.CINDs))
	for _, c := range res.CINDs {
		refN := refSize(c.Ref)
		uniN := len(uni[c.Ref.Proj])
		s := Scored{CIND: c}
		if uniN > 0 {
			s.Selectivity = 1 - float64(refN)/float64(uniN)
		}
		if refN > 0 {
			s.Coverage = float64(c.Support) / float64(refN)
		}
		s.Score = float64(c.Support) * s.Selectivity
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].CIND.Support > out[j].CIND.Support
	})
	return out
}

// LikelySpurious reports whether a scored CIND looks uninformative: its
// referenced capture barely restricts the universe.
func (s Scored) LikelySpurious() bool { return s.Selectivity < 0.05 }
