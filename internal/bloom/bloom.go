// Package bloom implements the Bloom filters RDFind relies on: the frequent
// unary/binary condition filters that workers build locally and union by
// bit-wise OR (Fig. 5, steps 3–4 and 8–9), and the fixed-size (64-byte)
// filters that encode the referenced captures of CIND candidate sets from
// dominant capture groups (§7.2).
//
// The filter uses double hashing over a 64-bit FNV-1a digest, the standard
// technique from Kirsch & Mitzenmacher for deriving k index functions from
// two hashes. Keys are 64-bit integers because every object RDFind inserts
// (conditions, captures) has a compact fixed-size encoding.
package bloom

import (
	"encoding/binary"
	"errors"
	"math"
)

// Filter is a fixed-size Bloom filter over uint64 keys. Filters of equal
// geometry can be combined with Union (bit-wise OR, used to merge per-worker
// partial filters) and Intersect (bit-wise AND, used by Algorithm 3 to
// approximate the intersection of two referenced-capture sets).
//
// A filter can also be saturated (see Saturated): it represents the universe,
// accepts every membership probe, and combines with filters of any geometry —
// union with it saturates, intersection with it is the identity.
type Filter struct {
	bits      []uint64
	nbits     uint64
	hashes    int
	saturated bool
}

// New returns a filter sized for the expected number of elements n at the
// given target false-positive probability p. Geometry follows the textbook
// formulas m = -n ln p / (ln 2)^2 and k = m/n ln 2, with k derived from the
// final word-rounded bit count — probes run modulo that rounded size, so
// deriving k from the pre-rounding m would mistune the filter (most visibly
// for small n, where rounding up to whole 64-bit words grows m the most).
func New(n int, p float64) *Filter {
	if n < 1 {
		n = 1
	}
	if p <= 0 || p >= 1 {
		p = 0.01
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	words := (m + 63) / 64
	nbits := words * 64
	k := int(math.Round(float64(nbits) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return &Filter{
		bits:   make([]uint64, words),
		nbits:  nbits,
		hashes: k,
	}
}

// NewBytes returns a filter occupying exactly size bytes with k hash
// functions. RDFind uses 64-byte filters for candidate sets of dominant
// capture groups (§7.2: "k = 64 bytes yields the best performance").
func NewBytes(size, k int) *Filter {
	if size < 8 {
		size = 8
	}
	if k < 1 {
		k = 1
	}
	words := (size + 7) / 8
	return &Filter{
		bits:   make([]uint64, words),
		nbits:  uint64(words) * 64,
		hashes: k,
	}
}

// fnv64a hashes a 64-bit key byte by byte with FNV-1a.
func fnv64a(key uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= key & 0xFF
		h *= prime
		key >>= 8
	}
	return h
}

// indexes derives the i-th probe position via double hashing.
func (f *Filter) index(h1, h2 uint64, i int) uint64 {
	return (h1 + uint64(i)*h2) % f.nbits
}

// split derives two independent hash values from one key.
func split(key uint64) (uint64, uint64) {
	h := fnv64a(key)
	h2 := h>>33 | h<<31 // rotate to decorrelate
	if h2 == 0 {
		h2 = 0x9E3779B97F4A7C15
	}
	return h, h2 | 1 // odd step so all positions are reachable
}

// Add inserts key into the filter. A saturated filter already contains
// everything, so inserting is a no-op.
func (f *Filter) Add(key uint64) {
	if f.saturated {
		return
	}
	h1, h2 := split(key)
	for i := 0; i < f.hashes; i++ {
		idx := f.index(h1, h2, i)
		f.bits[idx/64] |= 1 << (idx % 64)
	}
}

// Test reports whether key may have been inserted. False positives are
// possible; false negatives are not. A saturated filter accepts every key.
func (f *Filter) Test(key uint64) bool {
	if f.saturated {
		return true
	}
	h1, h2 := split(key)
	for i := 0; i < f.hashes; i++ {
		idx := f.index(h1, h2, i)
		if f.bits[idx/64]&(1<<(idx%64)) == 0 {
			return false
		}
	}
	return true
}

// Union ORs other into f. Non-saturated filters must share geometry, which
// holds by construction for the per-worker partial filters RDFind merges.
// Saturation is absorbing: a union involving a saturated filter is saturated,
// regardless of the other side's geometry.
func (f *Filter) Union(other *Filter) {
	if other == nil || f.saturated {
		return
	}
	if other.saturated {
		f.saturated = true
		f.bits = nil
		return
	}
	if f.nbits != other.nbits || f.hashes != other.hashes {
		panic("bloom: union of filters with different geometry")
	}
	for i, w := range other.bits {
		f.bits[i] |= w
	}
}

// Intersect ANDs other into f, approximating the intersection of the two
// represented sets (Algorithm 3, case of two approximate candidate sets).
// The result can over-approximate the true intersection but never drops a
// common element. Saturation is the identity: intersecting with a saturated
// filter leaves the other side unchanged (adopting its geometry when f
// itself was saturated), regardless of geometry.
func (f *Filter) Intersect(other *Filter) {
	if other.saturated {
		return
	}
	if f.saturated {
		f.saturated = false
		f.nbits = other.nbits
		f.hashes = other.hashes
		f.bits = append([]uint64(nil), other.bits...)
		return
	}
	if f.nbits != other.nbits || f.hashes != other.hashes {
		panic("bloom: intersect of filters with different geometry")
	}
	for i, w := range other.bits {
		f.bits[i] &= w
	}
}

// Clone returns a deep copy of the filter.
func (f *Filter) Clone() *Filter {
	c := &Filter{bits: make([]uint64, len(f.bits)), nbits: f.nbits, hashes: f.hashes, saturated: f.saturated}
	copy(c.bits, f.bits)
	return c
}

// Saturated returns a filter representing the universe: every membership
// probe succeeds and it combines with filters of any geometry (see Union and
// Intersect). RDFind-NF uses it to treat every condition as frequent.
func Saturated() *Filter {
	return &Filter{saturated: true}
}

// IsSaturated reports whether the filter is the explicit universe filter.
func (f *Filter) IsSaturated() bool { return f.saturated }

// Empty reports whether no bit is set. A saturated filter is never empty.
func (f *Filter) Empty() bool {
	if f.saturated {
		return false
	}
	for _, w := range f.bits {
		if w != 0 {
			return false
		}
	}
	return true
}

// Bytes returns the size of the bit array in bytes (zero for the saturated
// filter, which carries no bit array).
func (f *Filter) Bytes() int { return len(f.bits) * 8 }

// Geometry returns the filter's bit count and hash count, for tests and
// diagnostics. The saturated filter reports a zero geometry.
func (f *Filter) Geometry() (nbits uint64, hashes int) { return f.nbits, f.hashes }

// FillRatio returns the fraction of set bits, a diagnostic for saturation.
// The explicit saturated filter reports 1.
func (f *Filter) FillRatio() float64 {
	if f.saturated {
		return 1
	}
	set := 0
	for _, w := range f.bits {
		set += popcount(w)
	}
	return float64(set) / float64(f.nbits)
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Wire flags of the binary encoding.
const flagSaturated = 1

// AppendBinary serializes the filter: one flag byte, then (for non-saturated
// filters) the hash count, word count, and words as unsigned varints /
// little-endian 64-bit words. The saturated state survives the round trip,
// so a spilled candidate set can carry a universe filter.
func (f *Filter) AppendBinary(dst []byte) []byte {
	if f.saturated {
		return append(dst, flagSaturated)
	}
	dst = append(dst, 0)
	dst = binary.AppendUvarint(dst, uint64(f.hashes))
	dst = binary.AppendUvarint(dst, uint64(len(f.bits)))
	for _, w := range f.bits {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	return dst
}

// FromBinary deserializes a filter written by AppendBinary and returns it
// together with the number of bytes consumed.
func FromBinary(src []byte) (*Filter, int, error) {
	if len(src) < 1 {
		return nil, 0, errors.New("bloom: truncated filter encoding")
	}
	if src[0]&flagSaturated != 0 {
		return Saturated(), 1, nil
	}
	off := 1
	hashes, n := binary.Uvarint(src[off:])
	if n <= 0 {
		return nil, 0, errors.New("bloom: bad hash count")
	}
	off += n
	words, n := binary.Uvarint(src[off:])
	if n <= 0 {
		return nil, 0, errors.New("bloom: bad word count")
	}
	off += n
	if uint64(len(src)-off) < words*8 {
		return nil, 0, errors.New("bloom: truncated bit array")
	}
	f := &Filter{bits: make([]uint64, words), nbits: words * 64, hashes: int(hashes)}
	for i := range f.bits {
		f.bits[i] = binary.LittleEndian.Uint64(src[off:])
		off += 8
	}
	return f, off, nil
}
