package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(1000, 0.01)
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = rng.Uint64()
		f.Add(keys[i])
	}
	for _, k := range keys {
		if !f.Test(k) {
			t.Fatalf("false negative for key %d", k)
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	f := New(10000, 0.01)
	rng := rand.New(rand.NewSource(2))
	inserted := make(map[uint64]bool, 10000)
	for i := 0; i < 10000; i++ {
		k := rng.Uint64()
		inserted[k] = true
		f.Add(k)
	}
	fp := 0
	const probes = 100000
	for i := 0; i < probes; i++ {
		k := rng.Uint64()
		if inserted[k] {
			continue
		}
		if f.Test(k) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.05 {
		t.Errorf("false-positive rate %.4f exceeds 5x the 0.01 target", rate)
	}
}

func TestUnionContainsBoth(t *testing.T) {
	a := New(100, 0.01)
	b := New(100, 0.01)
	for i := uint64(0); i < 50; i++ {
		a.Add(i)
		b.Add(i + 1000)
	}
	a.Union(b)
	for i := uint64(0); i < 50; i++ {
		if !a.Test(i) || !a.Test(i+1000) {
			t.Fatalf("union lost key %d", i)
		}
	}
	a.Union(nil) // no-op, must not panic
}

func TestIntersectKeepsCommon(t *testing.T) {
	a := New(100, 0.01)
	b := New(100, 0.01)
	for i := uint64(0); i < 40; i++ {
		a.Add(i)
	}
	for i := uint64(20); i < 60; i++ {
		b.Add(i)
	}
	a.Intersect(b)
	for i := uint64(20); i < 40; i++ {
		if !a.Test(i) {
			t.Fatalf("intersection dropped common key %d", i)
		}
	}
}

func TestGeometryMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("no panic on geometry mismatch")
		}
	}()
	a := New(100, 0.01)
	b := New(100000, 0.01)
	a.Union(b)
}

func TestNewBytesSize(t *testing.T) {
	f := NewBytes(64, 4)
	if f.Bytes() != 64 {
		t.Errorf("Bytes = %d, want 64", f.Bytes())
	}
	f.Add(42)
	if !f.Test(42) {
		t.Errorf("64-byte filter lost its only key")
	}
	if NewBytes(0, 0).Bytes() < 8 {
		t.Errorf("degenerate geometry not clamped")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New(100, 0.01)
	a.Add(7)
	c := a.Clone()
	c.Add(8)
	if a.Test(8) && !a.Test(7) {
		t.Errorf("clone mutated original")
	}
	if !c.Test(7) || !c.Test(8) {
		t.Errorf("clone missing keys")
	}
}

func TestEmptyAndFillRatio(t *testing.T) {
	f := New(100, 0.01)
	if !f.Empty() || f.FillRatio() != 0 {
		t.Errorf("fresh filter not empty")
	}
	f.Add(1)
	if f.Empty() {
		t.Errorf("filter with a key reports empty")
	}
	if r := f.FillRatio(); r <= 0 || r > 0.5 {
		t.Errorf("fill ratio %.3f implausible after one insert", r)
	}
}

func TestDegenerateGeometryClamps(t *testing.T) {
	f := New(0, 2) // invalid n and p fall back to safe defaults
	f.Add(1)
	if !f.Test(1) {
		t.Errorf("clamped filter lost key")
	}
}

// Property: membership after Add always holds, for any key set.
func TestQuickNoFalseNegatives(t *testing.T) {
	f := func(keys []uint64) bool {
		fl := New(len(keys)+1, 0.01)
		for _, k := range keys {
			fl.Add(k)
		}
		for _, k := range keys {
			if !fl.Test(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: intersection never drops a key present in both filters.
func TestQuickIntersectSound(t *testing.T) {
	f := func(common, onlyA, onlyB []uint64) bool {
		a := New(64, 0.01)
		b := New(64, 0.01)
		for _, k := range common {
			a.Add(k)
			b.Add(k)
		}
		for _, k := range onlyA {
			a.Add(k)
		}
		for _, k := range onlyB {
			b.Add(k)
		}
		a.Intersect(b)
		for _, k := range common {
			if !a.Test(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkAdd(b *testing.B) {
	f := New(1<<20, 0.01)
	for i := 0; i < b.N; i++ {
		f.Add(uint64(i))
	}
}

func BenchmarkTest(b *testing.B) {
	f := New(1<<20, 0.01)
	for i := 0; i < 1<<20; i++ {
		f.Add(uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Test(uint64(i))
	}
}
