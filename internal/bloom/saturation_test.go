package bloom

import (
	"math"
	"math/rand"
	"testing"
)

// Regression for the geometry bug: New derived the hash count k from the
// pre-rounding bit count m while probes run modulo the word-rounded nbits,
// mistuning k most visibly for small n. Geometry must now be internally
// consistent: k == round(nbits/n · ln 2) for the *final* nbits.
func TestGeometryConsistent(t *testing.T) {
	for _, tc := range []struct {
		n int
		p float64
	}{
		{1, 0.01}, {3, 0.01}, {5, 0.001}, {10, 0.1}, {100, 0.01}, {10000, 0.01},
	} {
		f := New(tc.n, tc.p)
		nbits, k := f.Geometry()
		if nbits%64 != 0 {
			t.Errorf("New(%d, %g): nbits=%d not word-aligned", tc.n, tc.p, nbits)
		}
		want := int(math.Round(float64(nbits) / float64(tc.n) * math.Ln2))
		if want < 1 {
			want = 1
		}
		if want > 16 {
			want = 16
		}
		if k != want {
			t.Errorf("New(%d, %g): k=%d, want %d derived from final nbits=%d", tc.n, tc.p, k, want, nbits)
		}
	}
}

// Empirical false-positive regression at the geometry most affected by the
// old bug: tiny n, where rounding m up to a whole word is a large relative
// change. The measured rate must stay within a small multiple of the target.
func TestFalsePositiveRateSmallN(t *testing.T) {
	for _, n := range []int{2, 5, 17} {
		const p = 0.01
		f := New(n, p)
		rng := rand.New(rand.NewSource(int64(n)))
		inserted := make(map[uint64]bool, n)
		for i := 0; i < n; i++ {
			k := rng.Uint64()
			inserted[k] = true
			f.Add(k)
		}
		fp := 0
		const probes = 200000
		for i := 0; i < probes; i++ {
			k := rng.Uint64()
			if inserted[k] {
				continue
			}
			if f.Test(k) {
				fp++
			}
		}
		if rate := float64(fp) / probes; rate > 3*p {
			t.Errorf("n=%d: false-positive rate %.4f exceeds 3x the %.2f target", n, rate, p)
		}
	}
}

func TestSaturatedAcceptsEverything(t *testing.T) {
	s := Saturated()
	if !s.IsSaturated() {
		t.Fatal("Saturated() not flagged as saturated")
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		if !s.Test(rng.Uint64()) {
			t.Fatal("saturated filter rejected a key")
		}
	}
	s.Add(42) // no-op, must not panic (no backing bit array)
	if s.Empty() {
		t.Error("saturated filter reports empty")
	}
	if s.FillRatio() != 1 {
		t.Errorf("saturated FillRatio = %g, want 1", s.FillRatio())
	}
	if s.Bytes() != 0 {
		t.Errorf("saturated Bytes = %d, want 0", s.Bytes())
	}
}

// Regression for the saturation geometry hazard: Saturated() used to return
// an 8-byte all-ones filter, so Union/Intersect against any standard-geometry
// filter panicked inside a worker stage (the RDFind-NF frequent-conditions
// path, internal/core/minimalfirst.go). Saturation must combine with any
// geometry: union is absorbing, intersection is the identity.
func TestSaturatedCombinesWithAnyGeometry(t *testing.T) {
	std := New(100000, 0.01) // deliberately large, unlike the old 8-byte stub
	for i := uint64(0); i < 50; i++ {
		std.Add(i)
	}

	// Union with a saturated filter saturates, regardless of geometry.
	u := std.Clone()
	u.Union(Saturated())
	if !u.IsSaturated() || !u.Test(999999) {
		t.Error("union with saturated filter did not saturate")
	}

	// Union onto a saturated filter is a no-op.
	s := Saturated()
	s.Union(std)
	if !s.IsSaturated() {
		t.Error("saturated filter lost saturation on union")
	}

	// Intersect with a saturated filter is the identity.
	i1 := std.Clone()
	i1.Intersect(Saturated())
	for k := uint64(0); k < 50; k++ {
		if !i1.Test(k) {
			t.Fatalf("intersect with saturated filter dropped key %d", k)
		}
	}
	if i1.IsSaturated() {
		t.Error("intersect with saturated filter saturated the receiver")
	}

	// Intersecting a saturated filter with a concrete one adopts the
	// concrete side (universe ∩ S = S), including its geometry.
	i2 := Saturated()
	i2.Intersect(std)
	if i2.IsSaturated() {
		t.Error("saturated receiver still saturated after intersect with concrete filter")
	}
	gotBits, gotHashes := i2.Geometry()
	wantBits, wantHashes := std.Geometry()
	if gotBits != wantBits || gotHashes != wantHashes {
		t.Errorf("adopted geometry (%d,%d), want (%d,%d)", gotBits, gotHashes, wantBits, wantHashes)
	}
	for k := uint64(0); k < 50; k++ {
		if !i2.Test(k) {
			t.Fatalf("adopted filter missing key %d", k)
		}
	}
	i2.Add(12345) // must be independent of std's bit array
	if std.Test(12345) && !std.Test(12346) {
		t.Error("intersect aliased the concrete filter's bit array")
	}

	// Clone preserves saturation.
	if !Saturated().Clone().IsSaturated() {
		t.Error("clone dropped saturation")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	f := New(1000, 0.01)
	rng := rand.New(rand.NewSource(4))
	keys := make([]uint64, 200)
	for i := range keys {
		keys[i] = rng.Uint64()
		f.Add(keys[i])
	}
	enc := f.AppendBinary(nil)
	got, n, err := FromBinary(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Errorf("consumed %d of %d bytes", n, len(enc))
	}
	gb, gh := got.Geometry()
	fb, fh := f.Geometry()
	if gb != fb || gh != fh {
		t.Errorf("geometry (%d,%d) != original (%d,%d)", gb, gh, fb, fh)
	}
	for _, k := range keys {
		if !got.Test(k) {
			t.Fatalf("round trip lost key %d", k)
		}
	}

	// Saturation survives the round trip, and decoding tracks trailing data.
	enc = Saturated().AppendBinary(nil)
	enc = append(enc, 0xAB, 0xCD)
	got, n, err = FromBinary(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || !got.IsSaturated() {
		t.Errorf("saturated round trip: consumed=%d saturated=%v", n, got.IsSaturated())
	}

	// Truncated input errors instead of panicking.
	if _, _, err := FromBinary(nil); err == nil {
		t.Error("no error for empty input")
	}
	full := New(100, 0.01).AppendBinary(nil)
	if _, _, err := FromBinary(full[:len(full)-3]); err == nil {
		t.Error("no error for truncated bit array")
	}
}
