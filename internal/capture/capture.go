// Package capture implements RDFind's Capture Groups Creator (§6, Alg. 2):
// it turns the pruned triple stream into capture groups, the compact
// representation from which all broad CINDs can be extracted (Lemma 3,
// Theorem 1).
//
// A capture evidence states that a value belongs to a capture's
// interpretation. Per triple and projection attribute, Algorithm 2 emits
// either one binary-condition evidence (when the binary condition is
// frequent and embeds no association rule — the binary evidence subsumes the
// unary ones) or the evidences of the frequent unary conditions. Evidences
// with equal values are then grouped, deduplicated, and the value dropped:
// the remaining capture set is the capture group.
package capture

import (
	"repro/internal/cind"
	"repro/internal/dataflow"
	"repro/internal/fcdetect"
	"repro/internal/rdf"
)

// Group is a set of captures whose interpretations share one value. The
// member order is arbitrary but duplicate-free. Binary members subsume their
// unary relaxations (§6.1); the extractor expands that closure when needed.
type Group struct {
	Captures []cind.Capture
}

// evidence pairs a value with one capture containing it.
type evidence struct {
	Value   rdf.Value
	Capture cind.Capture
}

// BuildGroups runs Algorithm 2 over the triples and groups the evidences by
// value. The frequent-condition Bloom filters and the AR set from the
// FCDetector are broadcast into the per-worker closures.
func BuildGroups(triples *dataflow.Dataset[rdf.Triple], fc *fcdetect.Output, opts fcdetect.Options) *dataflow.Dataset[Group] {
	// On an already-failed engine (worker fault, cancellation) schedule
	// nothing: the caller observes the failure via Context.Err.
	if triples.Context().Err() != nil {
		return dataflow.Parallelize(triples.Context(), "cgc/aborted", []Group(nil))
	}
	bu := fc.UnaryBloom
	bb := fc.BinaryBloom
	ars := fc.ARSet()

	evidences := dataflow.FlatMap(triples, "cgc/evidences",
		func(t rdf.Triple, emit func(dataflow.Pair[evidence, struct{}])) {
			emitEvidences(t, bu, bb, ars, opts.PredicatesOnlyInConditions,
				func(e evidence) {
					emit(dataflow.Pair[evidence, struct{}]{Key: e})
				})
		})

	// Deduplicate evidences with early aggregation (the same value/capture
	// pair arises once per matching triple), then group by value and drop it.
	distinct := dataflow.ReduceByKey(evidences, "cgc/dedup",
		func(a, _ struct{}) struct{} { return a })
	byValue := dataflow.Map(distinct, "cgc/key-by-value",
		func(p dataflow.Pair[evidence, struct{}]) dataflow.Pair[rdf.Value, cind.Capture] {
			return dataflow.Pair[rdf.Value, cind.Capture]{Key: p.Key.Value, Val: p.Key.Capture}
		})
	grouped := dataflow.GroupByKey(byValue, "cgc/group")
	groups := dataflow.Map(grouped, "cgc/strip-value",
		func(p dataflow.Pair[rdf.Value, []cind.Capture]) Group {
			return Group{Captures: p.Val}
		})
	triples.Context().Stats().Metrics().Counter("capture.groups").Add(int64(groups.Len()))
	return groups
}

// emitEvidences is the per-triple body of Algorithm 2. With noPredProj set
// (§8.3: "predicates only in conditions"), the predicate element never
// serves as a projection attribute.
func emitEvidences(
	t rdf.Triple,
	bu, bb interface{ Test(uint64) bool },
	ars map[[2]cind.Condition]struct{},
	noPredProj bool,
	emit func(evidence),
) {
	for _, alpha := range rdf.Attrs {
		if noPredProj && alpha == rdf.Predicate {
			continue
		}
		beta, gamma := alpha.Others()
		vAlpha, vBeta, vGamma := t.Get(alpha), t.Get(beta), t.Get(gamma)

		condBeta := cind.Unary(beta, vBeta)
		condGamma := cind.Unary(gamma, vGamma)
		betaFrequent := bu.Test(condBeta.Key())
		gammaFrequent := bu.Test(condGamma.Key())
		switch {
		case betaFrequent && gammaFrequent:
			binary := cind.Binary(beta, vBeta, gamma, vGamma)
			_, arBG := ars[[2]cind.Condition{condBeta, condGamma}]
			_, arGB := ars[[2]cind.Condition{condGamma, condBeta}]
			if bb.Test(binary.Key()) && !arBG && !arGB {
				// The binary evidence subsumes both unary ones (line 11).
				emit(evidence{Value: vAlpha, Capture: cind.Capture{Proj: alpha, Cond: binary}})
			} else {
				emit(evidence{Value: vAlpha, Capture: cind.Capture{Proj: alpha, Cond: condBeta}})
				emit(evidence{Value: vAlpha, Capture: cind.Capture{Proj: alpha, Cond: condGamma}})
			}
		case betaFrequent:
			emit(evidence{Value: vAlpha, Capture: cind.Capture{Proj: alpha, Cond: condBeta}})
		case gammaFrequent:
			emit(evidence{Value: vAlpha, Capture: cind.Capture{Proj: alpha, Cond: condGamma}})
		}
	}
}

// Close expands a group to its implication closure: every binary member also
// asserts membership of its two unary relaxations (with the same projection
// attribute), because a binary capture evidence subsumes the unary ones.
// The result is duplicate-free.
func Close(g Group) Group {
	seen := make(map[cind.Capture]struct{}, len(g.Captures)*2)
	out := make([]cind.Capture, 0, len(g.Captures)*2)
	add := func(c cind.Capture) {
		if _, ok := seen[c]; !ok {
			seen[c] = struct{}{}
			out = append(out, c)
		}
	}
	for _, c := range g.Captures {
		add(c)
		if c.Cond.IsBinary() {
			for _, u := range c.Cond.UnaryParts() {
				add(cind.Capture{Proj: c.Proj, Cond: u})
			}
		}
	}
	return Group{Captures: out}
}
