package capture

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/cind"
	"repro/internal/dataflow"
	"repro/internal/fcdetect"
	"repro/internal/fixtures"
	"repro/internal/naive"
	"repro/internal/rdf"
)

// expectedClosedGroups computes, from first principles, the capture group of
// every value: the set of captures over the AR-pruned frequent-condition
// universe whose interpretation contains the value.
func expectedClosedGroups(ds *rdf.Dataset, h int, opts naive.Options) map[string]int {
	freq := naive.FrequentConditions(ds, h, opts)
	ars := naive.AssociationRules(ds, h, opts)
	arEmbedded := func(c cind.Condition) bool {
		if !c.IsBinary() {
			return false
		}
		p := c.UnaryParts()
		for _, r := range ars {
			if (r.If == p[0] && r.Then == p[1]) || (r.If == p[1] && r.Then == p[0]) {
				return true
			}
		}
		return false
	}
	groups := make(map[rdf.Value]map[string]struct{})
	for cond := range freq {
		if arEmbedded(cond) {
			continue
		}
		for _, a := range rdf.Attrs {
			if cond.Uses(a) {
				continue
			}
			cap := cind.Capture{Proj: a, Cond: cond}
			for v := range cind.Interpret(ds, cap) {
				g, ok := groups[v]
				if !ok {
					g = make(map[string]struct{})
					groups[v] = g
				}
				g[cap.Format(ds.Dict)] = struct{}{}
			}
		}
	}
	// Serialize each group as a sorted member list; count multiplicities.
	out := make(map[string]int)
	for _, g := range groups {
		members := make([]string, 0, len(g))
		for m := range g {
			members = append(members, m)
		}
		sort.Strings(members)
		out[strings.Join(members, "|")]++
	}
	return out
}

func buildClosedGroups(ds *rdf.Dataset, h, workers int, opts fcdetect.Options) ([]Group, *rdf.Dataset) {
	ctx := dataflow.NewContext(workers)
	triples := dataflow.Parallelize(ctx, "input", ds.Triples)
	fc := fcdetect.Detect(triples, h, opts)
	groups := dataflow.Collect(BuildGroups(triples, fc, opts))
	closed := make([]Group, len(groups))
	for i, g := range groups {
		closed[i] = Close(g)
	}
	return closed, ds
}

// TestGroupsMatchFirstPrinciples compares the closed capture groups with the
// definition-level construction on several datasets, thresholds, and worker
// counts.
func TestGroupsMatchFirstPrinciples(t *testing.T) {
	datasets := map[string]*rdf.Dataset{
		"table1": fixtures.University(),
		"random": randomDataset(400, 5),
	}
	for name, ds := range datasets {
		for _, h := range []int{1, 2, 3} {
			for _, w := range []int{1, 4} {
				closed, _ := buildClosedGroups(ds, h, w, fcdetect.Options{})
				got := make(map[string]int)
				for _, g := range closed {
					members := make([]string, 0, len(g.Captures))
					for _, c := range g.Captures {
						members = append(members, c.Format(ds.Dict))
					}
					sort.Strings(members)
					got[strings.Join(members, "|")]++
				}
				want := expectedClosedGroups(ds, h, naive.Options{})
				if len(got) != len(want) {
					t.Errorf("%s h=%d w=%d: %d distinct groups, want %d", name, h, w, len(got), len(want))
					continue
				}
				for sig, n := range want {
					if got[sig] != n {
						t.Errorf("%s h=%d w=%d: group {%s} multiplicity %d, want %d", name, h, w, sig, got[sig], n)
					}
				}
			}
		}
	}
}

// TestPaperGroupExample checks §6.1's worked example: with h=3, the value
// patrick spawns the group {(s, p=rdf:type), (s, p=undergradFrom)}.
func TestPaperGroupExample(t *testing.T) {
	ds := fixtures.University()
	closed, _ := buildClosedGroups(ds, 3, 2, fcdetect.Options{})
	id := func(s string) rdf.Value { return fixtures.MustID(ds, s) }
	want := map[cind.Capture]bool{
		cind.NewCapture(rdf.Subject, cind.Unary(rdf.Predicate, id("rdf:type"))):      true,
		cind.NewCapture(rdf.Subject, cind.Unary(rdf.Predicate, id("undergradFrom"))): true,
	}
	found := false
	for _, g := range closed {
		if len(g.Captures) != len(want) {
			continue
		}
		all := true
		for _, c := range g.Captures {
			if !want[c] {
				all = false
				break
			}
		}
		if all {
			found = true
		}
	}
	if !found {
		t.Errorf("patrick's group {(s, p=rdf:type), (s, p=undergradFrom)} not found among %d groups", len(closed))
		for _, g := range closed {
			var members []string
			for _, c := range g.Captures {
				members = append(members, c.Format(ds.Dict))
			}
			t.Logf("  group: %s", strings.Join(members, ", "))
		}
	}
}

// TestBinarySubsumption: with h=1 every binary condition is frequent, so
// groups store binary captures compactly; the raw (unclosed) groups must not
// contain the subsumed unary captures, while the closure must.
func TestBinarySubsumption(t *testing.T) {
	ds := rdf.NewDataset()
	ds.Add("a", "p", "x")
	ds.Add("b", "p", "x") // p=p ∧ o=x is frequent at h=2
	ds.Add("a", "p", "y")
	ds.Add("b", "p", "y")
	ctx := dataflow.NewContext(2)
	triples := dataflow.Parallelize(ctx, "input", ds.Triples)
	fc := fcdetect.Detect(triples, 2, fcdetect.Options{})
	raw := dataflow.Collect(BuildGroups(triples, fc, fcdetect.Options{}))
	id := func(s string) rdf.Value { return fixtures.MustID(ds, s) }

	binary := cind.NewCapture(rdf.Subject, cind.Binary(rdf.Predicate, id("p"), rdf.Object, id("x")))
	unary := cind.NewCapture(rdf.Subject, cind.Unary(rdf.Predicate, id("p")))
	for _, g := range raw {
		hasBinary := false
		for _, c := range g.Captures {
			if c == binary {
				hasBinary = true
			}
		}
		if !hasBinary {
			continue
		}
		for _, c := range g.Captures {
			if c == unary {
				t.Errorf("raw group contains both the binary capture and its subsumed unary relaxation")
			}
		}
		closed := Close(g)
		foundUnary := false
		for _, c := range closed.Captures {
			if c == unary {
				foundUnary = true
			}
		}
		if !foundUnary {
			t.Errorf("closure does not restore the subsumed unary capture")
		}
	}
}

func TestCloseIsIdempotentAndDuplicateFree(t *testing.T) {
	g := Group{Captures: []cind.Capture{
		cind.NewCapture(rdf.Subject, cind.Binary(rdf.Predicate, 1, rdf.Object, 2)),
		cind.NewCapture(rdf.Subject, cind.Unary(rdf.Predicate, 1)), // already implied
		cind.NewCapture(rdf.Object, cind.Unary(rdf.Predicate, 1)),
	}}
	once := Close(g)
	twice := Close(once)
	if len(once.Captures) != 4 {
		t.Fatalf("closure size = %d, want 4", len(once.Captures))
	}
	if len(twice.Captures) != len(once.Captures) {
		t.Errorf("closure not idempotent: %d -> %d", len(once.Captures), len(twice.Captures))
	}
	seen := map[cind.Capture]bool{}
	for _, c := range once.Captures {
		if seen[c] {
			t.Errorf("duplicate member %+v", c)
		}
		seen[c] = true
	}
}

// TestGroupMembershipEqualsSupport: across all closed groups, the membership
// count of a capture equals its support (Lemma 3).
func TestGroupMembershipEqualsSupport(t *testing.T) {
	ds := randomDataset(300, 4)
	h := 2
	closed, _ := buildClosedGroups(ds, h, 3, fcdetect.Options{})
	counts := map[cind.Capture]int{}
	for _, g := range closed {
		for _, c := range g.Captures {
			counts[c]++
		}
	}
	for c, n := range counts {
		if want := cind.SupportOf(ds, c); want != n {
			t.Errorf("capture %s: group memberships %d, support %d", c.Format(ds.Dict), n, want)
		}
	}
}

func randomDataset(n, card int) *rdf.Dataset {
	rng := rand.New(rand.NewSource(11))
	ds := rdf.NewDataset()
	seen := map[[3]int]bool{}
	for len(ds.Triples) < n {
		s, p, o := rng.Intn(card*3), rng.Intn(card), rng.Intn(card*2)
		if seen[[3]int{s, p, o}] {
			continue
		}
		seen[[3]int{s, p, o}] = true
		ds.Add(
			"s"+string(rune('a'+s%26))+string(rune('0'+s/26)),
			"p"+string(rune('a'+p)),
			"o"+string(rune('a'+o%26))+string(rune('0'+o/26)),
		)
	}
	return ds
}
