package capture

import (
	"encoding/binary"

	"repro/internal/cind"
	"repro/internal/dataflow"
	"repro/internal/rdf"
)

// Spill codecs for the Capture Groups Creator's keyed stages: the evidence
// deduplication (cgc/dedup) and the grouping by value (cgc/group) are the
// pipeline's largest shuffles — one record per triple element pair — so they
// are the first to breach a memory budget on real datasets.

// evidenceCodec spills Pair[evidence, struct{}]: a 15-byte key (value plus
// capture) and an empty value.
type evidenceCodec struct{}

func (evidenceCodec) AppendKey(dst []byte, k evidence) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(k.Value))
	return cind.AppendCapture(dst, k.Capture)
}
func (evidenceCodec) DecodeKey(src []byte) evidence {
	return evidence{
		Value:   rdf.Value(binary.LittleEndian.Uint32(src)),
		Capture: cind.CaptureAt(src[4:]),
	}
}
func (evidenceCodec) AppendValue(dst []byte, _ struct{}) []byte { return dst }
func (evidenceCodec) DecodeValue([]byte) struct{}               { return struct{}{} }

// valueCaptureCodec spills Pair[rdf.Value, cind.Capture].
type valueCaptureCodec struct{}

func (valueCaptureCodec) AppendKey(dst []byte, k rdf.Value) []byte {
	return binary.LittleEndian.AppendUint32(dst, uint32(k))
}
func (valueCaptureCodec) DecodeKey(src []byte) rdf.Value {
	return rdf.Value(binary.LittleEndian.Uint32(src))
}
func (valueCaptureCodec) AppendValue(dst []byte, v cind.Capture) []byte {
	return cind.AppendCapture(dst, v)
}
func (valueCaptureCodec) DecodeValue(src []byte) cind.Capture { return cind.CaptureAt(src) }

func init() {
	dataflow.RegisterPairCodec[evidence, struct{}](evidenceCodec{})
	dataflow.RegisterPairCodec[rdf.Value, cind.Capture](valueCaptureCodec{})
}
