// Package cind defines the conditional-inclusion-dependency model of the
// paper (§2–§3): unary and binary conditions over triple elements, captures
// (a projection attribute plus a condition), CINDs as inclusions between
// captures, exact association rules, and the implication algebra that
// underlies minimality (dependent and referenced implication).
//
// All types are small comparable structs over dictionary-encoded values, so
// they serve directly as map keys and have compact 64-bit digests for Bloom
// filters.
package cind

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rdf"
)

// Condition is a predicate over a triple: t.A1 = V1 (unary) or
// t.A1 = V1 ∧ t.A2 = V2 (binary). Binary conditions are normalized so that
// A1 < A2; A2 == rdf.AttrNone marks a unary condition (Definition 2.1).
type Condition struct {
	A1 rdf.Attr
	A2 rdf.Attr
	V1 rdf.Value
	V2 rdf.Value
}

// Unary builds the condition a = v.
func Unary(a rdf.Attr, v rdf.Value) Condition {
	return Condition{A1: a, A2: rdf.AttrNone, V1: v, V2: rdf.NoValue}
}

// Binary builds the condition a1 = v1 ∧ a2 = v2 in canonical attribute
// order. The two attributes must differ.
func Binary(a1 rdf.Attr, v1 rdf.Value, a2 rdf.Attr, v2 rdf.Value) Condition {
	if a1 == a2 {
		panic("cind: binary condition on a single attribute")
	}
	if a1 > a2 {
		a1, a2, v1, v2 = a2, a1, v2, v1
	}
	return Condition{A1: a1, A2: a2, V1: v1, V2: v2}
}

// IsBinary reports whether the condition constrains two attributes.
func (c Condition) IsBinary() bool { return c.A2 != rdf.AttrNone }

// Matches reports whether triple t satisfies the condition.
func (c Condition) Matches(t rdf.Triple) bool {
	if t.Get(c.A1) != c.V1 {
		return false
	}
	return !c.IsBinary() || t.Get(c.A2) == c.V2
}

// UnaryParts returns the unary conditions a binary condition implies. For a
// unary condition it returns the condition itself, once.
func (c Condition) UnaryParts() []Condition {
	if !c.IsBinary() {
		return []Condition{c}
	}
	return []Condition{Unary(c.A1, c.V1), Unary(c.A2, c.V2)}
}

// Implies reports φ ⇒ φ': the predicate of φ' is one of the predicates of φ,
// or the two are equal (§3.1).
func (c Condition) Implies(o Condition) bool {
	if c == o {
		return true
	}
	if o.IsBinary() {
		return false // a condition only implies itself or its unary parts
	}
	return c.IsBinary() &&
		((o.A1 == c.A1 && o.V1 == c.V1) || (o.A1 == c.A2 && o.V1 == c.V2))
}

// Uses reports whether the condition constrains attribute a.
func (c Condition) Uses(a rdf.Attr) bool {
	return c.A1 == a || (c.IsBinary() && c.A2 == a)
}

// Key digests the condition into 64 bits for Bloom-filter membership.
// Collisions only cause Bloom false positives, which every consumer
// tolerates by construction.
func (c Condition) Key() uint64 {
	return mix(uint64(c.A1)<<34 | uint64(c.A2)<<32 | uint64(c.V1)<<1 | 1).rotadd(mix(uint64(c.V2)))
}

// Format renders the condition against a dictionary, e.g.
// "p=memberOf ∧ o=csd".
func (c Condition) Format(dict *rdf.Dictionary) string {
	s := fmt.Sprintf("%s=%s", c.A1, dict.Decode(c.V1))
	if c.IsBinary() {
		s += fmt.Sprintf(" ∧ %s=%s", c.A2, dict.Decode(c.V2))
	}
	return s
}

// Capture pairs a projection attribute with a condition that must not use it
// (Definition 2.2). Its interpretation on a dataset is the set of values the
// projection takes over the triples satisfying the condition.
type Capture struct {
	Proj rdf.Attr
	Cond Condition
}

// NewCapture builds a capture, panicking if the condition uses the
// projection attribute (disallowed by Definition 2.2).
func NewCapture(proj rdf.Attr, cond Condition) Capture {
	if cond.Uses(proj) {
		panic("cind: capture condition uses the projection attribute")
	}
	return Capture{Proj: proj, Cond: cond}
}

// Key digests the capture into 64 bits for Bloom-filter membership.
func (c Capture) Key() uint64 {
	return mix(uint64(c.Proj) + 0x9E3779B97F4A7C15).rotadd(mix(c.Cond.Key()))
}

// Format renders the capture, e.g. "(s, p=memberOf ∧ o=csd)".
func (c Capture) Format(dict *rdf.Dictionary) string {
	return fmt.Sprintf("(%s, %s)", c.Proj, c.Cond.Format(dict))
}

// Inclusion is a CIND statement c ⊆ c′ between a dependent and a referenced
// capture (Definition 2.3). It is comparable and therefore a map key.
type Inclusion struct {
	Dep, Ref Capture
}

// Trivial reports whether the inclusion holds on every dataset because the
// dependent condition logically implies the referenced one under the same
// projection (e.g. (s, p=a ∧ o=b) ⊆ (s, p=a), §5.1 "equivalence pruning").
func (i Inclusion) Trivial() bool {
	if i.Dep == i.Ref {
		return true
	}
	return i.Dep.Proj == i.Ref.Proj && i.Dep.Cond.Implies(i.Ref.Cond)
}

// Implies reports whether this inclusion's validity entails o's validity via
// dependent implication (tightening the dependent condition), referenced
// implication (relaxing the referenced condition), or their composition
// (§3.1).
func (i Inclusion) Implies(o Inclusion) bool {
	if i == o {
		return false
	}
	return i.Dep.Proj == o.Dep.Proj && i.Ref.Proj == o.Ref.Proj &&
		o.Dep.Cond.Implies(i.Dep.Cond) && i.Ref.Cond.Implies(o.Ref.Cond)
}

// Format renders the inclusion, e.g.
// "(s, p=memberOf) ⊆ (s, p=rdf:type ∧ o=gradStudent)".
func (i Inclusion) Format(dict *rdf.Dictionary) string {
	return i.Dep.Format(dict) + " ⊆ " + i.Ref.Format(dict)
}

// CIND is an inclusion together with its support, the number of distinct
// values in the dependent capture's interpretation (Definition 3.1).
type CIND struct {
	Inclusion
	Support int
}

// Format renders the CIND with its support.
func (c CIND) Format(dict *rdf.Dictionary) string {
	return fmt.Sprintf("%s  [support=%d]", c.Inclusion.Format(dict), c.Support)
}

// AR is an exact association rule If → Then with confidence 1 over triples
// read as transactions {s=..., p=..., o=...} (§3.2). Both sides are unary
// conditions on distinct attributes.
type AR struct {
	If, Then Condition
	Support  int
}

// ImpliedCIND returns the CIND the rule implies:
// (γ, If) ⊆ (γ, If ∧ Then) where γ is the attribute used by neither side
// (Lemma 2 gives it the same support as the rule).
func (r AR) ImpliedCIND() CIND {
	var free rdf.Attr
	for _, a := range rdf.Attrs {
		if !r.If.Uses(a) && !r.Then.Uses(a) {
			free = a
		}
	}
	return CIND{
		Inclusion: Inclusion{
			Dep: NewCapture(free, r.If),
			Ref: NewCapture(free, Binary(r.If.A1, r.If.V1, r.Then.A1, r.Then.V1)),
		},
		Support: r.Support,
	}
}

// Format renders the rule, e.g. "o=gradStudent → p=rdf:type [support=2]".
func (r AR) Format(dict *rdf.Dictionary) string {
	return fmt.Sprintf("%s → %s  [support=%d]", r.If.Format(dict), r.Then.Format(dict), r.Support)
}

// Result is the output of a discovery run: the pertinent CINDs and the
// association rules that replace their implied CINDs (§3.3).
type Result struct {
	CINDs []CIND
	ARs   []AR
}

// Sort orders both result lists by descending support, then lexicographically
// by rendered form, giving deterministic output.
func (r *Result) Sort(dict *rdf.Dictionary) {
	sort.Slice(r.CINDs, func(i, j int) bool {
		if r.CINDs[i].Support != r.CINDs[j].Support {
			return r.CINDs[i].Support > r.CINDs[j].Support
		}
		return r.CINDs[i].Format(dict) < r.CINDs[j].Format(dict)
	})
	sort.Slice(r.ARs, func(i, j int) bool {
		if r.ARs[i].Support != r.ARs[j].Support {
			return r.ARs[i].Support > r.ARs[j].Support
		}
		return r.ARs[i].Format(dict) < r.ARs[j].Format(dict)
	})
}

// Format renders the whole result, one statement per line.
func (r *Result) Format(dict *rdf.Dictionary) string {
	var b strings.Builder
	for _, ar := range r.ARs {
		fmt.Fprintf(&b, "AR   %s\n", ar.Format(dict))
	}
	for _, c := range r.CINDs {
		fmt.Fprintf(&b, "CIND %s\n", c.Format(dict))
	}
	return b.String()
}

// mix is a 64-bit finalizer (splitmix64) used to build digests.
type mixed uint64

func mix(x uint64) mixed {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return mixed(x)
}

func (m mixed) rotadd(o mixed) uint64 {
	x := uint64(m)
	return (x<<13 | x>>51) + 0x9E3779B97F4A7C15*uint64(o)
}
