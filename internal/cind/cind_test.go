package cind

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/fixtures"
	"repro/internal/rdf"
)

// uni builds the Table 1 dataset and returns it with a term lookup helper.
func uni(t *testing.T) (*rdf.Dataset, func(string) rdf.Value) {
	t.Helper()
	ds := fixtures.University()
	return ds, func(term string) rdf.Value { return fixtures.MustID(ds, term) }
}

func TestConditionNormalization(t *testing.T) {
	a := Binary(rdf.Object, 5, rdf.Predicate, 3)
	b := Binary(rdf.Predicate, 3, rdf.Object, 5)
	if a != b {
		t.Errorf("binary conditions not normalized: %+v vs %+v", a, b)
	}
	if a.A1 != rdf.Predicate || a.A2 != rdf.Object {
		t.Errorf("canonical order violated: %+v", a)
	}
}

func TestBinaryPanicsOnSameAttr(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("no panic for binary condition on one attribute")
		}
	}()
	Binary(rdf.Subject, 1, rdf.Subject, 2)
}

func TestConditionMatches(t *testing.T) {
	ds, id := uni(t)
	phi := Binary(rdf.Predicate, id("rdf:type"), rdf.Object, id("gradStudent"))
	matches := 0
	for _, tr := range ds.Triples {
		if phi.Matches(tr) {
			matches++
		}
	}
	if matches != 2 { // t1 and t2, as in Example 2
		t.Errorf("binary condition matched %d triples, want 2", matches)
	}
	uphi := Unary(rdf.Predicate, id("undergradFrom"))
	if FrequencyOf(ds, uphi) != 3 {
		t.Errorf("frequency of p=undergradFrom = %d, want 3", FrequencyOf(ds, uphi))
	}
}

func TestConditionImplies(t *testing.T) {
	bin := Binary(rdf.Predicate, 1, rdf.Object, 2)
	u1 := Unary(rdf.Predicate, 1)
	u2 := Unary(rdf.Object, 2)
	other := Unary(rdf.Predicate, 9)
	if !bin.Implies(u1) || !bin.Implies(u2) || !bin.Implies(bin) {
		t.Errorf("binary condition must imply itself and both unary parts")
	}
	if bin.Implies(other) || u1.Implies(bin) || u1.Implies(u2) {
		t.Errorf("spurious implication")
	}
}

func TestUnaryParts(t *testing.T) {
	bin := Binary(rdf.Subject, 1, rdf.Object, 2)
	parts := bin.UnaryParts()
	if len(parts) != 2 || parts[0] != Unary(rdf.Subject, 1) || parts[1] != Unary(rdf.Object, 2) {
		t.Errorf("UnaryParts = %+v", parts)
	}
	u := Unary(rdf.Subject, 1)
	if got := u.UnaryParts(); len(got) != 1 || got[0] != u {
		t.Errorf("UnaryParts of unary = %+v", got)
	}
}

func TestCaptureRejectsProjectionInCondition(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("no panic for capture projecting a conditioned attribute")
		}
	}()
	NewCapture(rdf.Predicate, Unary(rdf.Predicate, 1))
}

func TestInterpretExample2(t *testing.T) {
	ds, id := uni(t)
	c := NewCapture(rdf.Subject, Binary(rdf.Predicate, id("rdf:type"), rdf.Object, id("gradStudent")))
	got := Interpret(ds, c)
	if len(got) != 2 {
		t.Fatalf("|I| = %d, want 2", len(got))
	}
	for _, who := range []string{"patrick", "mike"} {
		if _, ok := got[id(who)]; !ok {
			t.Errorf("interpretation missing %s", who)
		}
	}
	if SupportOf(ds, c) != 2 {
		t.Errorf("SupportOf = %d, want 2", SupportOf(ds, c))
	}
}

func TestHoldsExample3(t *testing.T) {
	ds, id := uni(t)
	// (s, p=rdf:type ∧ o=gradStudent) ⊆ (s, p=undergradFrom): valid.
	valid := Inclusion{
		Dep: NewCapture(rdf.Subject, Binary(rdf.Predicate, id("rdf:type"), rdf.Object, id("gradStudent"))),
		Ref: NewCapture(rdf.Subject, Unary(rdf.Predicate, id("undergradFrom"))),
	}
	if !Holds(ds, valid) {
		t.Errorf("Example 3 CIND does not hold")
	}
	// The reverse direction is violated by tim.
	reverse := Inclusion{Dep: valid.Ref, Ref: valid.Dep}
	if Holds(ds, reverse) {
		t.Errorf("reverse of Example 3 CIND should not hold (tim)")
	}
}

func TestInclusionTrivial(t *testing.T) {
	dep := NewCapture(rdf.Subject, Binary(rdf.Predicate, 1, rdf.Object, 2))
	refU := NewCapture(rdf.Subject, Unary(rdf.Predicate, 1))
	if !(Inclusion{Dep: dep, Ref: refU}).Trivial() {
		t.Errorf("binary ⊆ its unary relaxation must be trivial")
	}
	if !(Inclusion{Dep: dep, Ref: dep}).Trivial() {
		t.Errorf("reflexive inclusion must be trivial")
	}
	if (Inclusion{Dep: refU, Ref: dep}).Trivial() {
		t.Errorf("unary ⊆ binary is not trivial")
	}
	otherProj := NewCapture(rdf.Object, Unary(rdf.Predicate, 1))
	if (Inclusion{Dep: NewCapture(rdf.Subject, Unary(rdf.Predicate, 1)), Ref: otherProj}).Trivial() {
		t.Errorf("inclusion across projections is never trivial")
	}
}

// TestImplicationFigure1 checks the four-CIND implication lattice of Fig. 1.
func TestImplicationFigure1(t *testing.T) {
	ds, id := uni(t)
	_ = ds
	mo := Unary(rdf.Predicate, id("memberOf"))
	moCsd := Binary(rdf.Predicate, id("memberOf"), rdf.Object, id("csd"))
	ty := Unary(rdf.Predicate, id("rdf:type"))
	tyGrad := Binary(rdf.Predicate, id("rdf:type"), rdf.Object, id("gradStudent"))
	s := rdf.Subject

	psi1 := Inclusion{Dep: NewCapture(s, mo), Ref: NewCapture(s, tyGrad)}
	psi2 := Inclusion{Dep: NewCapture(s, moCsd), Ref: NewCapture(s, tyGrad)}
	psi3 := Inclusion{Dep: NewCapture(s, mo), Ref: NewCapture(s, ty)}
	psi4 := Inclusion{Dep: NewCapture(s, moCsd), Ref: NewCapture(s, ty)}

	wantImplies := map[[2]Inclusion]bool{
		{psi1, psi2}: true, // dependent implication
		{psi1, psi3}: true, // referenced implication
		{psi1, psi4}: true, // composition
		{psi2, psi4}: true,
		{psi3, psi4}: true,
		{psi2, psi3}: false,
		{psi3, psi2}: false,
		{psi4, psi1}: false,
		{psi2, psi1}: false,
		{psi1, psi1}: false, // irreflexive
	}
	for pair, want := range wantImplies {
		if got := pair[0].Implies(pair[1]); got != want {
			t.Errorf("%s implies %s = %v, want %v",
				pair[0].Format(ds.Dict), pair[1].Format(ds.Dict), got, want)
		}
	}
}

func TestARImpliedCIND(t *testing.T) {
	ds, id := uni(t)
	r := AR{
		If:      Unary(rdf.Object, id("gradStudent")),
		Then:    Unary(rdf.Predicate, id("rdf:type")),
		Support: 2,
	}
	if !ARHolds(ds, r) {
		t.Fatalf("the paper's example AR does not hold on Table 1")
	}
	implied := r.ImpliedCIND()
	if implied.Dep.Proj != rdf.Subject {
		t.Errorf("implied CIND projects %v, want s", implied.Dep.Proj)
	}
	if !Holds(ds, implied.Inclusion) {
		t.Errorf("implied CIND %s does not hold", implied.Inclusion.Format(ds.Dict))
	}
	// Lemma 2: AR support equals the implied CIND's support.
	if got := SupportOf(ds, implied.Dep); got != r.Support {
		t.Errorf("implied CIND support = %d, want %d (Lemma 2)", got, r.Support)
	}
	// An AR violated by a triple where If holds but Then does not.
	bad := AR{If: Unary(rdf.Predicate, id("rdf:type")), Then: Unary(rdf.Object, id("gradStudent"))}
	if ARHolds(ds, bad) {
		t.Errorf("AR p=rdf:type → o=gradStudent should fail (john is a professor)")
	}
}

func TestFormatting(t *testing.T) {
	ds, id := uni(t)
	c := CIND{
		Inclusion: Inclusion{
			Dep: NewCapture(rdf.Subject, Binary(rdf.Predicate, id("rdf:type"), rdf.Object, id("gradStudent"))),
			Ref: NewCapture(rdf.Subject, Unary(rdf.Predicate, id("undergradFrom"))),
		},
		Support: 2,
	}
	got := c.Format(ds.Dict)
	want := "(s, p=rdf:type ∧ o=gradStudent) ⊆ (s, p=undergradFrom)  [support=2]"
	if got != want {
		t.Errorf("Format = %q, want %q", got, want)
	}
	r := AR{If: Unary(rdf.Object, id("gradStudent")), Then: Unary(rdf.Predicate, id("rdf:type")), Support: 2}
	if got := r.Format(ds.Dict); got != "o=gradStudent → p=rdf:type  [support=2]" {
		t.Errorf("AR Format = %q", got)
	}
}

func TestResultSortAndFormat(t *testing.T) {
	ds, id := uni(t)
	low := CIND{Inclusion: Inclusion{
		Dep: NewCapture(rdf.Subject, Unary(rdf.Predicate, id("memberOf"))),
		Ref: NewCapture(rdf.Subject, Unary(rdf.Predicate, id("rdf:type"))),
	}, Support: 2}
	high := CIND{Inclusion: Inclusion{
		Dep: NewCapture(rdf.Subject, Unary(rdf.Predicate, id("undergradFrom"))),
		Ref: NewCapture(rdf.Subject, Unary(rdf.Predicate, id("rdf:type"))),
	}, Support: 3}
	res := &Result{CINDs: []CIND{low, high}, ARs: []AR{
		{If: Unary(rdf.Object, id("gradStudent")), Then: Unary(rdf.Predicate, id("rdf:type")), Support: 2},
	}}
	res.Sort(ds.Dict)
	if res.CINDs[0].Support != 3 {
		t.Errorf("Sort did not order by descending support")
	}
	text := res.Format(ds.Dict)
	if !strings.Contains(text, "AR   o=gradStudent") || !strings.Contains(text, "CIND (s, p=undergradFrom)") {
		t.Errorf("Format output unexpected:\n%s", text)
	}
}

// Property: condition keys rarely collide and are stable.
func TestConditionKeyStability(t *testing.T) {
	f := func(a1 uint8, v1, v2 uint32) bool {
		attr := rdf.Attr(a1 % 3)
		c := Unary(attr, rdf.Value(v1))
		if c.Key() != c.Key() {
			return false
		}
		other1, other2 := attr.Others()
		_ = other2
		b := Binary(attr, rdf.Value(v1), other1, rdf.Value(v2))
		return b.Key() != c.Key() // binary and unary must differ
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Matches(t) for a unary condition is consistent with projection.
func TestQuickUnaryMatches(t *testing.T) {
	f := func(s, p, o uint16, attr uint8, v uint16) bool {
		tr := rdf.Triple{S: rdf.Value(s), P: rdf.Value(p), O: rdf.Value(o)}
		a := rdf.Attr(attr % 3)
		c := Unary(a, rdf.Value(v))
		return c.Matches(tr) == (tr.Get(a) == rdf.Value(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Implies is consistent with the set semantics — if φ ⇒ φ' then
// every triple matching φ matches φ'.
func TestQuickImpliesSemantics(t *testing.T) {
	f := func(s, p, o, v1, v2 uint8) bool {
		tr := rdf.Triple{S: rdf.Value(s % 4), P: rdf.Value(p % 4), O: rdf.Value(o % 4)}
		bin := Binary(rdf.Subject, rdf.Value(v1%4), rdf.Predicate, rdf.Value(v2%4))
		for _, u := range bin.UnaryParts() {
			if bin.Matches(tr) && !u.Matches(tr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
