package cind

import (
	"encoding/binary"

	"repro/internal/rdf"
)

// Fixed-width binary encodings of the model types, used by the dataflow
// spill codecs (dataflow.PairCodec). Every field is written verbatim, so the
// encodings are injective: equal values encode to equal bytes and distinct
// values to distinct bytes — the property the spill path's byte-wise key
// comparison relies on. Widths are constants of the model: a Condition is
// two attribute bytes plus two little-endian 32-bit values (10 bytes), a
// Capture adds its projection attribute byte (11 bytes).

// ConditionWireSize is the encoded width of a Condition.
const ConditionWireSize = 10

// CaptureWireSize is the encoded width of a Capture.
const CaptureWireSize = 11

// AppendCondition appends the 10-byte encoding of c.
func AppendCondition(dst []byte, c Condition) []byte {
	dst = append(dst, byte(c.A1), byte(c.A2))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(c.V1))
	return binary.LittleEndian.AppendUint32(dst, uint32(c.V2))
}

// ConditionAt decodes the Condition starting at src[0].
func ConditionAt(src []byte) Condition {
	return Condition{
		A1: rdf.Attr(src[0]),
		A2: rdf.Attr(src[1]),
		V1: rdf.Value(binary.LittleEndian.Uint32(src[2:])),
		V2: rdf.Value(binary.LittleEndian.Uint32(src[6:])),
	}
}

// AppendCapture appends the 11-byte encoding of c.
func AppendCapture(dst []byte, c Capture) []byte {
	dst = append(dst, byte(c.Proj))
	return AppendCondition(dst, c.Cond)
}

// CaptureAt decodes the Capture starting at src[0].
func CaptureAt(src []byte) Capture {
	return Capture{Proj: rdf.Attr(src[0]), Cond: ConditionAt(src[1:])}
}
