package cind

import (
	"encoding/json"
	"fmt"

	"repro/internal/rdf"
)

// JSON serialization renders statements with term surface forms, so result
// files are self-contained and machine-readable independent of a dictionary.

type jsonCondition struct {
	// Attrs and Values are parallel; one entry for unary conditions, two
	// for binary ones.
	Attrs  []string `json:"attrs"`
	Values []string `json:"values"`
}

type jsonCapture struct {
	Projection string        `json:"projection"`
	Condition  jsonCondition `json:"condition"`
}

type jsonCIND struct {
	Dependent  jsonCapture `json:"dependent"`
	Referenced jsonCapture `json:"referenced"`
	Support    int         `json:"support"`
}

type jsonAR struct {
	IfAttr    string `json:"ifAttr"`
	IfValue   string `json:"ifValue"`
	ThenAttr  string `json:"thenAttr"`
	ThenValue string `json:"thenValue"`
	Support   int    `json:"support"`
}

type jsonResult struct {
	CINDs []jsonCIND `json:"cinds"`
	ARs   []jsonAR   `json:"associationRules"`
}

func conditionToJSON(c Condition, dict *rdf.Dictionary) jsonCondition {
	out := jsonCondition{
		Attrs:  []string{c.A1.String()},
		Values: []string{dict.Decode(c.V1)},
	}
	if c.IsBinary() {
		out.Attrs = append(out.Attrs, c.A2.String())
		out.Values = append(out.Values, dict.Decode(c.V2))
	}
	return out
}

func captureToJSON(c Capture, dict *rdf.Dictionary) jsonCapture {
	return jsonCapture{Projection: c.Proj.String(), Condition: conditionToJSON(c.Cond, dict)}
}

// MarshalJSON renders a result with surface-form terms.
func MarshalJSON(r *Result, dict *rdf.Dictionary) ([]byte, error) {
	out := jsonResult{CINDs: []jsonCIND{}, ARs: []jsonAR{}}
	for _, c := range r.CINDs {
		out.CINDs = append(out.CINDs, jsonCIND{
			Dependent:  captureToJSON(c.Dep, dict),
			Referenced: captureToJSON(c.Ref, dict),
			Support:    c.Support,
		})
	}
	for _, a := range r.ARs {
		out.ARs = append(out.ARs, jsonAR{
			IfAttr:    a.If.A1.String(),
			IfValue:   dict.Decode(a.If.V1),
			ThenAttr:  a.Then.A1.String(),
			ThenValue: dict.Decode(a.Then.V1),
			Support:   a.Support,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

func conditionFromJSON(j jsonCondition, dict *rdf.Dictionary) (Condition, error) {
	if len(j.Attrs) != len(j.Values) || len(j.Attrs) < 1 || len(j.Attrs) > 2 {
		return Condition{}, fmt.Errorf("cind: malformed JSON condition: %d attrs, %d values", len(j.Attrs), len(j.Values))
	}
	a1, err := parseAttr(j.Attrs[0])
	if err != nil {
		return Condition{}, err
	}
	if len(j.Attrs) == 1 {
		return Unary(a1, dict.Encode(j.Values[0])), nil
	}
	a2, err := parseAttr(j.Attrs[1])
	if err != nil {
		return Condition{}, err
	}
	if a1 == a2 {
		return Condition{}, fmt.Errorf("cind: JSON condition repeats attribute %s", a1)
	}
	return Binary(a1, dict.Encode(j.Values[0]), a2, dict.Encode(j.Values[1])), nil
}

func captureFromJSON(j jsonCapture, dict *rdf.Dictionary) (Capture, error) {
	proj, err := parseAttr(j.Projection)
	if err != nil {
		return Capture{}, err
	}
	cond, err := conditionFromJSON(j.Condition, dict)
	if err != nil {
		return Capture{}, err
	}
	if cond.Uses(proj) {
		return Capture{}, fmt.Errorf("cind: JSON capture conditions its projection attribute")
	}
	return Capture{Proj: proj, Cond: cond}, nil
}

// UnmarshalJSON reads a result, interning terms into the dictionary (terms
// absent from it are added, so results can be loaded before their dataset).
func UnmarshalJSON(data []byte, dict *rdf.Dictionary) (*Result, error) {
	var in jsonResult
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("cind: %w", err)
	}
	res := &Result{}
	for _, c := range in.CINDs {
		dep, err := captureFromJSON(c.Dependent, dict)
		if err != nil {
			return nil, err
		}
		ref, err := captureFromJSON(c.Referenced, dict)
		if err != nil {
			return nil, err
		}
		res.CINDs = append(res.CINDs, CIND{Inclusion: Inclusion{Dep: dep, Ref: ref}, Support: c.Support})
	}
	for _, a := range in.ARs {
		ifAttr, err := parseAttr(a.IfAttr)
		if err != nil {
			return nil, err
		}
		thenAttr, err := parseAttr(a.ThenAttr)
		if err != nil {
			return nil, err
		}
		if ifAttr == thenAttr {
			return nil, fmt.Errorf("cind: JSON rule repeats attribute %s", ifAttr)
		}
		res.ARs = append(res.ARs, AR{
			If:      Unary(ifAttr, dict.Encode(a.IfValue)),
			Then:    Unary(thenAttr, dict.Encode(a.ThenValue)),
			Support: a.Support,
		})
	}
	return res, nil
}
