package cind

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rdf"
)

// This file parses the textual forms produced by the Format methods, so
// results can round-trip through files and tools can accept statements on
// the command line:
//
//	condition:  p=rdf:type ∧ o=gradStudent        (also "&&" for ∧)
//	capture:    (s, p=memberOf)
//	inclusion:  (s, p=memberOf) ⊆ (s, p=rdf:type)  (also "<=" for ⊆)
//	AR:         o=gradStudent → p=rdf:type         (also "->" for →)
//
// Terms resolve against a dictionary; a term the dictionary has never seen
// makes the statement unsatisfiable on that dataset and is reported as an
// error.

// parseAttr reads "s", "p", or "o".
func parseAttr(s string) (rdf.Attr, error) {
	switch strings.TrimSpace(s) {
	case "s":
		return rdf.Subject, nil
	case "p":
		return rdf.Predicate, nil
	case "o":
		return rdf.Object, nil
	}
	return 0, fmt.Errorf("cind: unknown attribute %q (want s, p, or o)", s)
}

// ParseCondition reads a unary or binary condition.
func ParseCondition(s string, dict *rdf.Dictionary) (Condition, error) {
	s = strings.ReplaceAll(s, "&&", "∧")
	parts := strings.Split(s, "∧")
	if len(parts) > 2 {
		return Condition{}, fmt.Errorf("cind: more than two conjuncts in %q", s)
	}
	var unaries []Condition
	for _, part := range parts {
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			return Condition{}, fmt.Errorf("cind: conjunct %q lacks '='", strings.TrimSpace(part))
		}
		attr, err := parseAttr(part[:eq])
		if err != nil {
			return Condition{}, err
		}
		term := strings.TrimSpace(part[eq+1:])
		id, ok := dict.Lookup(term)
		if !ok {
			return Condition{}, fmt.Errorf("cind: term %q does not occur in the dataset", term)
		}
		unaries = append(unaries, Unary(attr, id))
	}
	if len(unaries) == 1 {
		return unaries[0], nil
	}
	if unaries[0].A1 == unaries[1].A1 {
		return Condition{}, fmt.Errorf("cind: binary condition repeats attribute %s", unaries[0].A1)
	}
	return Binary(unaries[0].A1, unaries[0].V1, unaries[1].A1, unaries[1].V1), nil
}

// ParseCapture reads "(α, condition)".
func ParseCapture(s string, dict *rdf.Dictionary) (Capture, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
		return Capture{}, fmt.Errorf("cind: capture %q must be parenthesized", s)
	}
	inner := s[1 : len(s)-1]
	comma := strings.IndexByte(inner, ',')
	if comma < 0 {
		return Capture{}, fmt.Errorf("cind: capture %q lacks a projection attribute", s)
	}
	proj, err := parseAttr(inner[:comma])
	if err != nil {
		return Capture{}, err
	}
	cond, err := ParseCondition(inner[comma+1:], dict)
	if err != nil {
		return Capture{}, err
	}
	if cond.Uses(proj) {
		return Capture{}, fmt.Errorf("cind: capture %q conditions its projection attribute", s)
	}
	return Capture{Proj: proj, Cond: cond}, nil
}

// ParseInclusion reads "capture ⊆ capture". A trailing "[support=N]"
// annotation is ignored.
func ParseInclusion(s string, dict *rdf.Dictionary) (Inclusion, error) {
	s = stripSupport(strings.ReplaceAll(s, "<=", "⊆"))
	parts := strings.Split(s, "⊆")
	if len(parts) != 2 {
		return Inclusion{}, fmt.Errorf("cind: inclusion %q must have exactly one ⊆", s)
	}
	dep, err := ParseCapture(parts[0], dict)
	if err != nil {
		return Inclusion{}, fmt.Errorf("dependent: %w", err)
	}
	ref, err := ParseCapture(parts[1], dict)
	if err != nil {
		return Inclusion{}, fmt.Errorf("referenced: %w", err)
	}
	return Inclusion{Dep: dep, Ref: ref}, nil
}

// ParseAR reads "condition → condition" with unary sides. A trailing
// "[support=N]" annotation sets the support.
func ParseAR(s string, dict *rdf.Dictionary) (AR, error) {
	support, s := takeSupport(strings.ReplaceAll(s, "->", "→"))
	parts := strings.Split(s, "→")
	if len(parts) != 2 {
		return AR{}, fmt.Errorf("cind: rule %q must have exactly one →", s)
	}
	ifCond, err := ParseCondition(parts[0], dict)
	if err != nil {
		return AR{}, err
	}
	thenCond, err := ParseCondition(parts[1], dict)
	if err != nil {
		return AR{}, err
	}
	if ifCond.IsBinary() || thenCond.IsBinary() {
		return AR{}, fmt.Errorf("cind: association rule sides must be unary")
	}
	if ifCond.A1 == thenCond.A1 {
		return AR{}, fmt.Errorf("cind: association rule sides must use different attributes")
	}
	return AR{If: ifCond, Then: thenCond, Support: support}, nil
}

// stripSupport removes a trailing "[support=N]" annotation.
func stripSupport(s string) string {
	_, out := takeSupport(s)
	return out
}

// takeSupport extracts a trailing "[support=N]" annotation.
func takeSupport(s string) (int, string) {
	s = strings.TrimSpace(s)
	open := strings.LastIndex(s, "[support=")
	if open < 0 || !strings.HasSuffix(s, "]") {
		return 0, s
	}
	n, err := strconv.Atoi(s[open+len("[support=") : len(s)-1])
	if err != nil {
		return 0, s
	}
	return n, strings.TrimSpace(s[:open])
}
