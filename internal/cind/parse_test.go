package cind

import (
	"testing"

	"repro/internal/fixtures"
	"repro/internal/rdf"
)

func TestParseConditionForms(t *testing.T) {
	ds := fixtures.University()
	id := func(s string) rdf.Value { return fixtures.MustID(ds, s) }

	u, err := ParseCondition("p=memberOf", ds.Dict)
	if err != nil || u != Unary(rdf.Predicate, id("memberOf")) {
		t.Errorf("unary parse: %v, %v", u, err)
	}
	b, err := ParseCondition("p=rdf:type ∧ o=gradStudent", ds.Dict)
	want := Binary(rdf.Predicate, id("rdf:type"), rdf.Object, id("gradStudent"))
	if err != nil || b != want {
		t.Errorf("binary parse: %v, %v", b, err)
	}
	// ASCII conjunction and attribute order normalization.
	b2, err := ParseCondition("o=gradStudent && p=rdf:type", ds.Dict)
	if err != nil || b2 != want {
		t.Errorf("ASCII/reordered parse: %v, %v", b2, err)
	}
}

func TestParseConditionErrors(t *testing.T) {
	ds := fixtures.University()
	for _, in := range []string{
		"p=unknownTerm",                  // term not in dataset
		"x=memberOf",                     // bad attribute
		"memberOf",                       // no '='
		"p=a ∧ p=b",                      // repeated attribute (terms exist? 'a' doesn't; use real)
		"p=memberOf ∧ p=rdf:type",        // repeated attribute
		"p=memberOf ∧ o=csd ∧ s=patrick", // ternary
	} {
		if _, err := ParseCondition(in, ds.Dict); err == nil {
			t.Errorf("no error for %q", in)
		}
	}
}

func TestParseCaptureRoundTrip(t *testing.T) {
	ds := fixtures.University()
	id := func(s string) rdf.Value { return fixtures.MustID(ds, s) }
	orig := NewCapture(rdf.Subject, Binary(rdf.Predicate, id("memberOf"), rdf.Object, id("csd")))
	parsed, err := ParseCapture(orig.Format(ds.Dict), ds.Dict)
	if err != nil || parsed != orig {
		t.Errorf("capture round trip: %v, %v", parsed, err)
	}
	for _, in := range []string{
		"s, p=memberOf",   // not parenthesized
		"(p=memberOf)",    // no projection
		"(q, p=memberOf)", // bad attribute
		"(p, p=memberOf)", // projection conditioned
	} {
		if _, err := ParseCapture(in, ds.Dict); err == nil {
			t.Errorf("no error for %q", in)
		}
	}
}

func TestParseInclusionRoundTrip(t *testing.T) {
	ds := fixtures.University()
	id := func(s string) rdf.Value { return fixtures.MustID(ds, s) }
	orig := Inclusion{
		Dep: NewCapture(rdf.Subject, Binary(rdf.Predicate, id("rdf:type"), rdf.Object, id("gradStudent"))),
		Ref: NewCapture(rdf.Subject, Unary(rdf.Predicate, id("undergradFrom"))),
	}
	parsed, err := ParseInclusion(orig.Format(ds.Dict), ds.Dict)
	if err != nil || parsed != orig {
		t.Fatalf("inclusion round trip: %v, %v", parsed, err)
	}
	// The CIND rendering with support annotation parses too.
	c := CIND{Inclusion: orig, Support: 2}
	parsed2, err := ParseInclusion(c.Format(ds.Dict), ds.Dict)
	if err != nil || parsed2 != orig {
		t.Errorf("annotated round trip: %v, %v", parsed2, err)
	}
	// ASCII arrow form.
	ascii := "(s, p=memberOf) <= (s, p=rdf:type)"
	if _, err := ParseInclusion(ascii, ds.Dict); err != nil {
		t.Errorf("ASCII inclusion rejected: %v", err)
	}
	if _, err := ParseInclusion("(s, p=memberOf)", ds.Dict); err == nil {
		t.Errorf("no error for inclusion without ⊆")
	}
}

func TestParseARRoundTrip(t *testing.T) {
	ds := fixtures.University()
	id := func(s string) rdf.Value { return fixtures.MustID(ds, s) }
	orig := AR{If: Unary(rdf.Object, id("gradStudent")), Then: Unary(rdf.Predicate, id("rdf:type")), Support: 2}
	parsed, err := ParseAR(orig.Format(ds.Dict), ds.Dict)
	if err != nil || parsed != orig {
		t.Fatalf("AR round trip: %+v, %v", parsed, err)
	}
	if _, err := ParseAR("o=gradStudent -> p=rdf:type", ds.Dict); err != nil {
		t.Errorf("ASCII arrow rejected: %v", err)
	}
	for _, in := range []string{
		"o=gradStudent",                          // no arrow
		"o=gradStudent → o=hpi",                  // same attribute
		"p=rdf:type ∧ o=gradStudent → s=patrick", // binary side
	} {
		if _, err := ParseAR(in, ds.Dict); err == nil {
			t.Errorf("no error for %q", in)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	ds := fixtures.University()
	id := func(s string) rdf.Value { return fixtures.MustID(ds, s) }
	res := &Result{
		CINDs: []CIND{{
			Inclusion: Inclusion{
				Dep: NewCapture(rdf.Subject, Binary(rdf.Predicate, id("rdf:type"), rdf.Object, id("gradStudent"))),
				Ref: NewCapture(rdf.Subject, Unary(rdf.Predicate, id("undergradFrom"))),
			},
			Support: 2,
		}},
		ARs: []AR{{If: Unary(rdf.Object, id("gradStudent")), Then: Unary(rdf.Predicate, id("rdf:type")), Support: 2}},
	}
	data, err := MarshalJSON(res, ds.Dict)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalJSON(data, ds.Dict)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.CINDs) != 1 || back.CINDs[0] != res.CINDs[0] {
		t.Errorf("CIND round trip: %+v", back.CINDs)
	}
	if len(back.ARs) != 1 || back.ARs[0] != res.ARs[0] {
		t.Errorf("AR round trip: %+v", back.ARs)
	}
}

func TestJSONIntoFreshDictionary(t *testing.T) {
	ds := fixtures.University()
	id := func(s string) rdf.Value { return fixtures.MustID(ds, s) }
	res := &Result{CINDs: []CIND{{
		Inclusion: Inclusion{
			Dep: NewCapture(rdf.Subject, Unary(rdf.Predicate, id("memberOf"))),
			Ref: NewCapture(rdf.Subject, Unary(rdf.Predicate, id("rdf:type"))),
		},
		Support: 2,
	}}}
	data, err := MarshalJSON(res, ds.Dict)
	if err != nil {
		t.Fatal(err)
	}
	fresh := rdf.NewDictionary()
	back, err := UnmarshalJSON(data, fresh)
	if err != nil {
		t.Fatal(err)
	}
	// The fresh dictionary interned the surface forms.
	if got := back.CINDs[0].Dep.Format(fresh); got != "(s, p=memberOf)" {
		t.Errorf("fresh-dictionary load renders %q", got)
	}
}

func TestJSONErrors(t *testing.T) {
	dict := rdf.NewDictionary()
	for name, data := range map[string]string{
		"syntax":        "{",
		"bad attr":      `{"cinds":[{"dependent":{"projection":"x","condition":{"attrs":["p"],"values":["v"]}},"referenced":{"projection":"s","condition":{"attrs":["p"],"values":["v"]}},"support":1}]}`,
		"arity":         `{"cinds":[{"dependent":{"projection":"s","condition":{"attrs":["p","o","s"],"values":["a","b","c"]}},"referenced":{"projection":"s","condition":{"attrs":["p"],"values":["v"]}},"support":1}]}`,
		"proj conflict": `{"cinds":[{"dependent":{"projection":"p","condition":{"attrs":["p"],"values":["v"]}},"referenced":{"projection":"s","condition":{"attrs":["p"],"values":["v"]}},"support":1}]}`,
		"ar same attr":  `{"associationRules":[{"ifAttr":"p","ifValue":"a","thenAttr":"p","thenValue":"b","support":1}]}`,
	} {
		if _, err := UnmarshalJSON([]byte(data), dict); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}
