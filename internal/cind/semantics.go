package cind

import "repro/internal/rdf"

// This file gives the model types their direct, set-based semantics. These
// functions materialize interpretations by scanning the dataset, so they are
// meant for validation, tests, and the exhaustive oracle — the discovery
// pipeline itself never interprets captures directly.

// Interpret computes I(T, c), the set of values the capture projects from
// the triples satisfying its condition (Definition 2.2).
func Interpret(ds *rdf.Dataset, c Capture) map[rdf.Value]struct{} {
	out := make(map[rdf.Value]struct{})
	for _, t := range ds.Triples {
		if c.Cond.Matches(t) {
			out[t.Get(c.Proj)] = struct{}{}
		}
	}
	return out
}

// SupportOf computes |I(T, c)|, the support any CIND with dependent capture
// c has (Definition 3.1).
func SupportOf(ds *rdf.Dataset, c Capture) int {
	return len(Interpret(ds, c))
}

// Holds reports whether the dataset satisfies the inclusion, by materializing
// both interpretations (Definition 2.3).
func Holds(ds *rdf.Dataset, inc Inclusion) bool {
	ref := Interpret(ds, inc.Ref)
	for _, t := range ds.Triples {
		if inc.Dep.Cond.Matches(t) {
			if _, ok := ref[t.Get(inc.Dep.Proj)]; !ok {
				return false
			}
		}
	}
	return true
}

// FrequencyOf counts the triples satisfying a condition — the condition
// frequency of §5.1.
func FrequencyOf(ds *rdf.Dataset, c Condition) int {
	n := 0
	for _, t := range ds.Triples {
		if c.Matches(t) {
			n++
		}
	}
	return n
}

// ARHolds reports whether the rule holds exactly (confidence 1): every triple
// satisfying If also satisfies Then, and at least one does.
func ARHolds(ds *rdf.Dataset, r AR) bool {
	seen := false
	for _, t := range ds.Triples {
		if r.If.Matches(t) {
			if !r.Then.Matches(t) {
				return false
			}
			seen = true
		}
	}
	return seen
}
