// Package cinderella reimplements the state-of-the-art baseline the paper
// compares against (Bauckmann et al., "Discovering conditional inclusion
// dependencies", CIKM 2012), applied to RDF the way §8.2 describes: the
// triple set becomes a three-column relation; for every ordered pair of
// projection attributes a partial IND is checked and a left outer join
// against the referenced column marks which dependent tuples are included;
// conditions over the remaining attributes are then generated so that they
// select only included tuples.
//
// Cinderella conditions only the dependent side — the referenced side stays
// the whole column. This is the simplification the paper points out: the
// baseline solves a strictly smaller problem than RDFind, which is why only
// runtimes, not result sets, are compared (Fig. 7).
//
// Two variants are provided, as in the experiment:
//
//   - Discover (standard): materializes the full join result and tracks
//     every candidate condition with its full distinct-value set at once, on
//     either the hash-join ("pg") or sort-merge ("my") engine of package
//     reldb. The join result itself is not charged against memory (the DBMS
//     spills it to disk; it only costs time) — it is the condition-tracking
//     structures, which the original holds in the application's heap, that
//     exhaust the budget; when they do, the run fails with
//     reldb.ErrOutOfMemory, reproducing the aborted runs (hollow bars in
//     Fig. 7).
//   - Optimized (Cinderella*): streams the join, skips self-joins (equal
//     attribute pairs), and uses a first pass to prune conditions that are
//     violated or whose frequency is below the support threshold before
//     tracking value sets. Its footprint therefore shrinks as h grows,
//     which is why the paper sees it fail only at the smallest thresholds.
package cinderella

import (
	"fmt"

	"repro/internal/cind"
	"repro/internal/rdf"
	"repro/internal/reldb"
)

// DefaultRowBudget emulates the 4 GB memory grant of the paper's baseline
// runs: the standard variant fails once a join result plus its condition-
// tracking structures exceed this many entries.
const DefaultRowBudget = 3_000_000

// Config tunes a run.
type Config struct {
	// Support is the minimum number of distinct dependent values a
	// condition must select.
	Support int
	// Join selects the physical join operator (reldb.HashJoin emulates
	// PostgreSQL, reldb.SortMergeJoin MySQL).
	Join reldb.JoinAlgorithm
	// Optimized selects the Cinderella* variant.
	Optimized bool
	// RowBudget caps materialized entries; 0 selects DefaultRowBudget.
	RowBudget int
}

func (c Config) budget() int {
	if c.RowBudget <= 0 {
		return DefaultRowBudget
	}
	return c.RowBudget
}

// CIND is the baseline's result shape: a conditioned dependent capture
// included in a whole, unconditioned referenced column.
type CIND struct {
	Dep     cind.Capture
	RefAttr rdf.Attr
	Support int
}

// Format renders the result, e.g. "(s, p=memberOf) ⊆ (s, ⊤)".
func (c CIND) Format(dict *rdf.Dictionary) string {
	return fmt.Sprintf("%s ⊆ (%s, ⊤)  [support=%d]", c.Dep.Format(dict), c.RefAttr, c.Support)
}

// tripleTable loads the dataset into the relational engine.
func tripleTable(ds *rdf.Dataset) *reldb.Table {
	t := reldb.NewTable("triples", "s", "p", "o")
	for _, tr := range ds.Triples {
		t.Insert(tr.S, tr.P, tr.O)
	}
	return t
}

// Discover runs the baseline over all attribute pairs and returns every
// conditional inclusion it finds, or reldb.ErrOutOfMemory when the memory
// emulation trips.
func Discover(ds *rdf.Dataset, cfg Config) ([]CIND, error) {
	out, _, err := DiscoverStats(ds, cfg)
	return out, err
}

// Stats reports the memory accounting of a run, used to calibrate the
// Fig. 7 budget.
type Stats struct {
	// PeakEntries is the largest number of simultaneously tracked condition
	// entries across all attribute pairs (structures are released between
	// pairs, as the original frees them per partial IND).
	PeakEntries int
}

// DiscoverStats is Discover with memory accounting.
func DiscoverStats(ds *rdf.Dataset, cfg Config) ([]CIND, Stats, error) {
	table := tripleTable(ds)
	var out []CIND
	var st Stats
	for _, dep := range rdf.Attrs {
		for _, ref := range rdf.Attrs {
			if dep == ref && cfg.Optimized {
				continue // Cinderella* avoids self-joins
			}
			charge := 0 // per-pair: structures are released between pairs
			cinds, err := discoverPair(table, dep, ref, cfg, &charge)
			if charge > st.PeakEntries {
				st.PeakEntries = charge
			}
			if err != nil {
				return nil, st, err
			}
			out = append(out, cinds...)
		}
	}
	return out, st, nil
}

// discoverPair handles one ordered attribute pair.
func discoverPair(table *reldb.Table, dep, ref rdf.Attr, cfg Config, charge *int) ([]CIND, error) {
	depCol, refCol := dep.String(), ref.String()

	// Prerequisite: a partial IND must exist, i.e. the columns overlap.
	if dep != ref {
		refVals := table.DistinctValues(refCol)
		overlap := false
		for v := range table.DistinctValues(depCol) {
			if _, ok := refVals[v]; ok {
				overlap = true
				break
			}
		}
		if !overlap {
			return nil, nil
		}
	}

	if cfg.Optimized {
		return optimizedPair(table, dep, ref, cfg, charge)
	}
	return standardPair(table, dep, ref, cfg, charge)
}

// condStats tracks one candidate condition during generation.
type condStats struct {
	violated bool
	values   map[rdf.Value]struct{}
}

// tracker accumulates condition statistics, charging every tracked entry
// (one per condition plus one per distinct value) against a shared budget.
type tracker struct {
	stats  map[cind.Condition]*condStats
	charge *int
	budget int
}

func newTracker(charge *int, budget int) *tracker {
	return &tracker{stats: make(map[cind.Condition]*condStats), charge: charge, budget: budget}
}

func (tr *tracker) track(cond cind.Condition, val rdf.Value, matched bool) error {
	cs, ok := tr.stats[cond]
	if !ok {
		cs = &condStats{values: make(map[rdf.Value]struct{})}
		tr.stats[cond] = cs
		*tr.charge++
	}
	if !matched {
		cs.violated = true
	}
	if _, seen := cs.values[val]; !seen {
		cs.values[val] = struct{}{}
		*tr.charge++
	}
	if *tr.charge > tr.budget {
		return fmt.Errorf("%w: condition tracking exceeded %d entries", reldb.ErrOutOfMemory, tr.budget)
	}
	return nil
}

// standardPair consumes the full join result — the DBMS pipelines or spills
// it, so it costs time proportional to the join size but is not charged
// against the application heap — while tracking every candidate condition
// with its full value set simultaneously. That tracking is what makes the
// standard baseline fail on all Diseasome runs in Fig. 7.
func standardPair(table *reldb.Table, dep, ref rdf.Attr, cfg Config, charge *int) ([]CIND, error) {
	tr := newTracker(charge, cfg.budget())
	b, g := dep.Others()
	bi, gi, di := int(b), int(g), int(dep)
	var trackErr error
	reldb.StreamFullLeftOuterJoin(table, table, dep.String(), ref.String(), cfg.Join, func(row reldb.Row, matched bool) {
		if trackErr != nil {
			return
		}
		val := row[di]
		conds := [3]cind.Condition{
			cind.Unary(b, row[bi]),
			cind.Unary(g, row[gi]),
			cind.Binary(b, row[bi], g, row[gi]),
		}
		for _, c := range conds {
			if trackErr = tr.track(c, val, matched); trackErr != nil {
				return
			}
		}
	})
	if trackErr != nil {
		return nil, trackErr
	}
	return harvest(tr.stats, dep, ref, cfg.Support), nil
}

// optimizedPair streams the join twice: the first pass counts condition
// frequencies and finds violations with O(#conditions) memory; the second
// tracks distinct-value sets only for conditions that are unviolated and
// frequent enough to possibly reach the support threshold (support never
// exceeds frequency). The footprint shrinks as h grows — Cinderella* only
// fails at the smallest thresholds.
func optimizedPair(table *reldb.Table, dep, ref rdf.Attr, cfg Config, charge *int) ([]CIND, error) {
	b, g := dep.Others()
	bi, gi, di := int(b), int(g), int(dep)

	// Pass 1: frequencies and violations of unary conditions.
	type probe struct {
		freq     int
		violated bool
	}
	probes := make(map[cind.Condition]*probe)
	note := func(c cind.Condition, matched bool) {
		p, ok := probes[c]
		if !ok {
			p = &probe{}
			probes[c] = p
		}
		p.freq++
		if !matched {
			p.violated = true
		}
	}
	reldb.StreamLeftOuterJoin(table, table, dep.String(), ref.String(), func(row reldb.Row, matched bool) {
		note(cind.Unary(b, row[bi]), matched)
		note(cind.Unary(g, row[gi]), matched)
	})
	frequent := func(c cind.Condition) bool {
		p, ok := probes[c]
		return ok && p.freq >= cfg.Support
	}
	keepUnary := func(c cind.Condition) bool {
		p, ok := probes[c]
		return ok && !p.violated && p.freq >= cfg.Support
	}

	// Pass 2: value sets for surviving unary conditions, and for binary
	// combinations whose parts are both frequent (Apriori — a binary
	// condition's frequency, and hence its support, is bounded by its
	// parts'; violations of a part do not disqualify the conjunction).
	tr := newTracker(charge, cfg.budget())
	var trackErr error
	reldb.StreamLeftOuterJoin(table, table, dep.String(), ref.String(), func(row reldb.Row, matched bool) {
		if trackErr != nil {
			return
		}
		val := row[di]
		cb := cind.Unary(b, row[bi])
		cg := cind.Unary(g, row[gi])
		if keepUnary(cb) {
			trackErr = tr.track(cb, val, matched)
		}
		if trackErr == nil && keepUnary(cg) {
			trackErr = tr.track(cg, val, matched)
		}
		if trackErr == nil && frequent(cb) && frequent(cg) {
			trackErr = tr.track(cind.Binary(b, row[bi], g, row[gi]), val, matched)
		}
	})
	if trackErr != nil {
		return nil, trackErr
	}
	return harvest(tr.stats, dep, ref, cfg.Support), nil
}

// harvest emits the valid, sufficiently supported conditions as CINDs.
func harvest(stats map[cind.Condition]*condStats, dep, ref rdf.Attr, h int) []CIND {
	var out []CIND
	for cond, cs := range stats {
		if cs.violated || len(cs.values) < h {
			continue
		}
		out = append(out, CIND{
			Dep:     cind.Capture{Proj: dep, Cond: cond},
			RefAttr: ref,
			Support: len(cs.values),
		})
	}
	return out
}
