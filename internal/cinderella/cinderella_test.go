package cinderella

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cind"
	"repro/internal/datagen"
	"repro/internal/rdf"
	"repro/internal/reldb"
)

// refColumn returns the distinct values of a projection attribute.
func refColumn(ds *rdf.Dataset, a rdf.Attr) map[rdf.Value]struct{} {
	out := make(map[rdf.Value]struct{})
	for _, t := range ds.Triples {
		out[t.Get(a)] = struct{}{}
	}
	return out
}

// TestResultsAreValid checks the defining property of the baseline's output:
// the conditioned dependent values are all contained in the referenced
// column, the condition selects no unmatched tuple, and supports are exact.
func TestResultsAreValid(t *testing.T) {
	// Countries has cross-attribute value overlap (capital cities appear as
	// subjects and objects), so both variants produce results; Table 1 does
	// not, which is why it is not used here.
	ds := datagen.Countries(0.05)
	for _, optimized := range []bool{false, true} {
		for _, algo := range []reldb.JoinAlgorithm{reldb.HashJoin, reldb.SortMergeJoin} {
			res, err := Discover(ds, Config{Support: 1, Join: algo, Optimized: optimized})
			if err != nil {
				t.Fatalf("optimized=%v algo=%v: %v", optimized, algo, err)
			}
			if len(res) == 0 {
				t.Fatalf("optimized=%v algo=%v: no results on Countries", optimized, algo)
			}
			for _, c := range res {
				vals := cind.Interpret(ds, c.Dep)
				if len(vals) != c.Support {
					t.Errorf("support of %s = %d, reported %d", c.Format(ds.Dict), len(vals), c.Support)
				}
				ref := refColumn(ds, c.RefAttr)
				for v := range vals {
					if _, ok := ref[v]; !ok {
						t.Errorf("invalid result %s: value %s not in referenced column",
							c.Format(ds.Dict), ds.Dict.Decode(v))
					}
				}
			}
		}
	}
}

// TestFindsPlantedInclusion: in Countries every subject of a capitalOf
// statement (a city) also occurs in the object column (as object of the
// country's hasCapital statement), so the baseline must report
// (s, p=capitalOf) ⊆ (o, ⊤).
func TestFindsPlantedInclusion(t *testing.T) {
	ds := datagen.Countries(0.05)
	capitalOf, ok := ds.Dict.Lookup("capitalOf")
	if !ok {
		t.Fatal("capitalOf not generated")
	}
	res, err := Discover(ds, Config{Support: 2, Optimized: true})
	if err != nil {
		t.Fatal(err)
	}
	want := cind.Capture{Proj: rdf.Subject, Cond: cind.Unary(rdf.Predicate, capitalOf)}
	found := false
	for _, c := range res {
		if c.Dep == want && c.RefAttr == rdf.Object {
			found = true
			if c.Support != cind.SupportOf(ds, want) {
				t.Errorf("support = %d, want %d", c.Support, cind.SupportOf(ds, want))
			}
		}
	}
	if !found {
		t.Errorf("planted inclusion (s, p=capitalOf) ⊆ (o, ⊤) not found among %d results", len(res))
	}
}

// TestSupportThresholdFilters: results must respect the support threshold
// and shrink monotonically.
func TestSupportThresholdFilters(t *testing.T) {
	ds := datagen.Countries(0.1)
	prev := -1
	for _, h := range []int{1, 2, 5, 20} {
		res, err := Discover(ds, Config{Support: h, Optimized: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range res {
			if c.Support < h {
				t.Errorf("h=%d: result with support %d", h, c.Support)
			}
		}
		if prev >= 0 && len(res) > prev {
			t.Errorf("h=%d: result count grew from %d to %d", h, prev, len(res))
		}
		prev = len(res)
	}
}

// TestStandardRunsOutOfMemory: with a tight budget the standard variant must
// fail with ErrOutOfMemory while Cinderella* survives — the Fig. 7 failure
// mode.
func TestStandardRunsOutOfMemory(t *testing.T) {
	ds := skewed(3000)
	cfg := Config{Support: 5, RowBudget: 5000}
	if _, err := Discover(ds, cfg); !errors.Is(err, reldb.ErrOutOfMemory) {
		t.Errorf("standard variant did not fail under budget: %v", err)
	}
	cfg.Optimized = true
	if _, err := Discover(ds, cfg); err != nil {
		t.Errorf("optimized variant failed: %v", err)
	}
}

// TestVariantsAgreeOnCrossAttributePairs: for dep≠ref pairs, standard and
// optimized must produce the same unary results (binary combination policies
// differ only for conditions with violated parts, which cannot be valid...
// they can: check unary only).
func TestVariantsAgreeOnUnaryResults(t *testing.T) {
	ds := datagen.Countries(0.05)
	std, err := Discover(ds, Config{Support: 2})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Discover(ds, Config{Support: 2, Optimized: true})
	if err != nil {
		t.Fatal(err)
	}
	key := func(c CIND) string { return c.Dep.Format(ds.Dict) + "->" + c.RefAttr.String() }
	stdSet := map[string]int{}
	for _, c := range std {
		if c.Dep.Proj != rdf.Attr(0) && false {
			continue
		}
		if c.Dep.Cond.IsBinary() {
			continue
		}
		// Skip self-join pairs, which optimized does not compute.
		if sameAttrPair(c) {
			continue
		}
		stdSet[key(c)] = c.Support
	}
	optSet := map[string]int{}
	for _, c := range opt {
		if c.Dep.Cond.IsBinary() {
			continue
		}
		optSet[key(c)] = c.Support
	}
	for k, v := range stdSet {
		if optSet[k] != v {
			t.Errorf("standard found %s (support %d), optimized reported %d", k, v, optSet[k])
		}
	}
	for k := range optSet {
		if _, ok := stdSet[k]; !ok {
			t.Errorf("optimized-only result %s", k)
		}
	}
}

func sameAttrPair(c CIND) bool { return c.Dep.Proj == c.RefAttr }

// skewed builds a dataset with one hot predicate so self-joins explode.
func skewed(n int) *rdf.Dataset {
	rng := rand.New(rand.NewSource(5))
	ds := rdf.NewDataset()
	for i := 0; i < n; i++ {
		ds.Add(fmt.Sprintf("s%d", i), "rdf:type", fmt.Sprintf("class%d", rng.Intn(5)))
	}
	return ds
}

func BenchmarkCinderellaOptimized(b *testing.B) {
	ds := datagen.Countries(0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Discover(ds, Config{Support: 10, Optimized: true}); err != nil {
			b.Fatal(err)
		}
	}
}
