package cinderella

import (
	"fmt"

	"repro/internal/cind"
	"repro/internal/rdf"
	"repro/internal/reldb"
)

// This file implements the Pli variant of the baseline (Bauckmann et al.
// describe both; the paper skips it in Fig. 7 "because Cinderella is shown
// to be faster" — reproducing it makes that comparison possible here).
// Instead of joining, the variant builds position list indexes (PLIs): the
// dependent column is clustered by value, each cluster is classified as
// included or violating by probing the referenced column's value set, and
// conditions are then accumulated cluster-wise.

// DiscoverPLI runs the Pli variant over all attribute pairs. It honors the
// same support threshold and memory budget as the join-based variants; the
// PLI clusters themselves are charged against the budget, which is the
// variant's documented weakness (it materializes the full position index
// before generating any condition).
func DiscoverPLI(ds *rdf.Dataset, cfg Config) ([]CIND, error) {
	out, _, err := DiscoverPLIStats(ds, cfg)
	return out, err
}

// DiscoverPLIStats is DiscoverPLI with memory accounting.
func DiscoverPLIStats(ds *rdf.Dataset, cfg Config) ([]CIND, Stats, error) {
	table := tripleTable(ds)
	var out []CIND
	var st Stats
	for _, dep := range rdf.Attrs {
		for _, ref := range rdf.Attrs {
			if dep == ref {
				continue // a column is always included in itself
			}
			charge := 0
			cinds, err := pliPair(table, dep, ref, cfg, &charge)
			if charge > st.PeakEntries {
				st.PeakEntries = charge
			}
			if err != nil {
				return nil, st, err
			}
			out = append(out, cinds...)
		}
	}
	return out, st, nil
}

// pliPair handles one ordered attribute pair with position list indexes.
func pliPair(table *reldb.Table, dep, ref rdf.Attr, cfg Config, charge *int) ([]CIND, error) {
	budget := cfg.budget()
	di, ri := int(dep), int(ref)

	// Build the PLI: dependent value → row positions. Every entry counts
	// against the budget, reproducing the variant's up-front memory cost.
	pli := make(map[rdf.Value][]int)
	for pos, row := range table.Rows {
		pli[row[di]] = append(pli[row[di]], pos)
		*charge++
		if *charge > budget {
			return nil, fmt.Errorf("%w: position list index exceeded %d entries", reldb.ErrOutOfMemory, budget)
		}
	}

	// Referenced value set.
	refVals := make(map[rdf.Value]struct{}, len(table.Rows))
	for _, row := range table.Rows {
		refVals[row[ri]] = struct{}{}
	}

	// Partial-IND prerequisite: some dependent value must be included.
	anyIncluded := false
	for v := range pli {
		if _, ok := refVals[v]; ok {
			anyIncluded = true
			break
		}
	}
	if !anyIncluded {
		return nil, nil
	}

	// Cluster-wise condition accumulation.
	b, g := dep.Others()
	bi, gi := int(b), int(g)
	tr := newTracker(charge, budget)
	for v, positions := range pli {
		_, included := refVals[v]
		for _, pos := range positions {
			row := table.Rows[pos]
			conds := [3]cind.Condition{
				cind.Unary(b, row[bi]),
				cind.Unary(g, row[gi]),
				cind.Binary(b, row[bi], g, row[gi]),
			}
			for _, c := range conds {
				if err := tr.track(c, v, included); err != nil {
					return nil, err
				}
			}
		}
	}
	return harvest(tr.stats, dep, ref, cfg.Support), nil
}
