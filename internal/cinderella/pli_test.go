package cinderella

import (
	"errors"
	"testing"

	"repro/internal/cind"
	"repro/internal/datagen"
	"repro/internal/reldb"
)

// TestPLIMatchesOptimizedOnCrossPairs: the Pli variant computes the same
// problem as Cinderella*, so their results on cross-attribute pairs must
// coincide exactly for unary and binary conditions alike, except that the
// optimized variant prunes conditions whose frequency is below the support
// threshold earlier (same final harvest).
func TestPLIMatchesOptimizedOnCrossPairs(t *testing.T) {
	ds := datagen.Countries(0.05)
	for _, h := range []int{1, 2, 5} {
		pli, err := DiscoverPLI(ds, Config{Support: h})
		if err != nil {
			t.Fatal(err)
		}
		opt, err := Discover(ds, Config{Support: h, Optimized: true})
		if err != nil {
			t.Fatal(err)
		}
		key := func(c CIND) string { return c.Dep.Format(ds.Dict) + "⊆" + c.RefAttr.String() }
		pliSet := map[string]int{}
		for _, c := range pli {
			pliSet[key(c)] = c.Support
		}
		optSet := map[string]int{}
		for _, c := range opt {
			optSet[key(c)] = c.Support
		}
		if len(pliSet) != len(optSet) {
			t.Errorf("h=%d: PLI found %d results, Cinderella* %d", h, len(pliSet), len(optSet))
		}
		for k, v := range optSet {
			if pliSet[k] != v {
				t.Errorf("h=%d: %s support %d (Cinderella*) vs %d (PLI)", h, k, v, pliSet[k])
			}
		}
	}
}

// TestPLIResultsValid: every PLI result's dependent values must lie in the
// referenced column.
func TestPLIResultsValid(t *testing.T) {
	ds := datagen.Countries(0.05)
	res, err := DiscoverPLI(ds, Config{Support: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results")
	}
	for _, c := range res {
		vals := cind.Interpret(ds, c.Dep)
		if len(vals) != c.Support {
			t.Errorf("support of %s = %d, reported %d", c.Format(ds.Dict), len(vals), c.Support)
		}
		ref := refColumn(ds, c.RefAttr)
		for v := range vals {
			if _, ok := ref[v]; !ok {
				t.Errorf("invalid result %s", c.Format(ds.Dict))
			}
		}
	}
}

// TestPLIBudget: the PLI variant pays for the index up front and fails
// before any condition is generated.
func TestPLIBudget(t *testing.T) {
	ds := datagen.Countries(0.1)
	if _, err := DiscoverPLI(ds, Config{Support: 5, RowBudget: 100}); !errors.Is(err, reldb.ErrOutOfMemory) {
		t.Errorf("tiny budget not enforced: %v", err)
	}
}
