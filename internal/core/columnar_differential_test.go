package core

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/datagen"
	"repro/internal/fixtures"
	"repro/internal/metrics"
)

// The batch-vs-record differential layer: columnar execution is a pure
// kernel change inside fused chains, so every suite here requires the
// rendered result — Format output, byte for byte — to be identical with
// columnar execution on and off, across seeds, variants, worker counts,
// injected faults, spilling, and distributed execution.

// TestPropertyDifferentialColumnarModes runs the property suite's
// seeded-random datasets through every pipeline variant with columnar
// execution on and off and requires byte-identical Format output (and deep
// equality of the results): the batch path must be indistinguishable from
// record-at-a-time execution at the result boundary.
func TestPropertyDifferentialColumnarModes(t *testing.T) {
	// The comparison is batch-vs-record inside fused chains, so the baseline
	// must actually fuse and batch regardless of the process-wide defaults
	// (CI runs DATAFLOW_FUSION=off and DATAFLOW_COLUMNAR=off legs).
	t.Setenv("DATAFLOW_FUSION", "on")
	t.Setenv("DATAFLOW_COLUMNAR", "on")
	seeds := 200
	if testing.Short() || raceDetectorEnabled {
		seeds = 30
	}
	variants := []Variant{Standard, DirectExtraction, NoFrequentConditions, MinimalFirst}
	for seed := 0; seed < seeds; seed++ {
		ds := datagen.Random(int64(seed))
		h := 1 + seed%4
		for _, w := range []int{1, 2, 4} {
			for _, v := range variants {
				cfg := Config{Support: h, Workers: w, Variant: v}
				batch, batchStats := Discover(ds, cfg)
				cfg.DisableColumnar = true
				rec, recStats := Discover(ds, cfg)
				label := fmt.Sprintf("seed=%d h=%d %v w=%d", seed, h, v, w)
				if got, want := batch.Format(ds.Dict), rec.Format(ds.Dict); got != want {
					t.Fatalf("%s: columnar and record Format output differ\ncolumnar: %s\nrecord:   %s", label, got, want)
				}
				if !reflect.DeepEqual(batch, rec) {
					t.Fatalf("%s: columnar and record results differ\ncolumnar: %+v\nrecord:   %+v", label, batch, rec)
				}
				// The batch path actually ran (and only there): batch
				// accounting is the one permitted stats difference.
				if batchStats.Batches == 0 {
					t.Fatalf("%s: columnar run recorded no batches", label)
				}
				if recStats.Batches != 0 {
					t.Fatalf("%s: record-path run recorded %d batches", label, recStats.Batches)
				}
			}
		}
	}
}

// spanSummary reduces a trace to the fields both execution modes must agree
// on: names, record counts, and per-fused-op attribution.
func spanSummary(spans []metrics.Span) []string {
	var out []string
	for _, sp := range spans {
		line := fmt.Sprintf("%s in=%d out=%d", sp.Name, sp.RecordsIn, sp.RecordsOut)
		for _, op := range sp.FusedOps {
			line += fmt.Sprintf(" %s=%d", op.Name, op.RecordsIn)
		}
		out = append(out, line)
	}
	return out
}

// TestDifferentialColumnarFaultReplay injects transient faults at the
// columnar pipeline's composite fused spans and checks the three retry
// promises: the fault sites (span names) are exactly the record path's, the
// faulted columnar run is byte-identical to a fault-free record-path run,
// and the replayed chains' per-op tallies and batch counts reflect one clean
// pass (reset on retry, matching the fault-free columnar trace).
func TestDifferentialColumnarFaultReplay(t *testing.T) {
	t.Setenv("DATAFLOW_FUSION", "on")
	t.Setenv("DATAFLOW_COLUMNAR", "on")
	for seed := 0; seed < 8; seed++ {
		ds := datagen.Random(int64(seed))
		h := 1 + seed%3
		base := Config{Support: h, Workers: 2}

		// Trace a fault-free columnar run to find its composite-chain sites.
		tracer := dataflow.NewFaultPlan()
		cfgTrace := base
		cfgTrace.FaultPlan = tracer
		want, wantStats := Discover(ds, cfgTrace)

		var faults []dataflow.Fault
		seen := map[string]bool{}
		for _, site := range tracer.Trace() {
			if site.Occurrence != 1 || !strings.Contains(site.Stage, "+") || seen[site.Stage] {
				continue
			}
			seen[site.Stage] = true
			faults = append(faults, dataflow.Fault{
				Stage:  site.Stage,
				Worker: site.Worker,
				Kind:   dataflow.FaultTransient,
			})
		}
		if len(faults) == 0 {
			t.Fatalf("seed=%d: columnar pipeline exposed no composite-chain fault sites", seed)
		}

		cfgFault := base
		cfgFault.FaultPlan = dataflow.NewFaultPlan(faults...)
		cfgFault.MaxStageAttempts = 3
		got, stats := Discover(ds, cfgFault)
		if fired := cfgFault.FaultPlan.Fired(); len(fired) != len(faults) {
			t.Fatalf("seed=%d: %d of %d composite-site faults fired", seed, len(fired), len(faults))
		}
		if stats.StageRetries == 0 {
			t.Errorf("seed=%d: no stage retries recorded despite injected faults", seed)
		}
		// Per-attempt tallies and batch counts reset on replay: aside from
		// the Retries field, the faulted trace matches the fault-free one.
		if !reflect.DeepEqual(spanSummary(stats.Dataflow.Spans()), spanSummary(wantStats.Dataflow.Spans())) {
			t.Errorf("seed=%d: faulted columnar trace diverged from fault-free trace", seed)
		}

		// The faulted columnar run matches a fault-free record-path run byte
		// for byte, and its span names are unchanged by columnar execution.
		cfgRec := base
		cfgRec.DisableColumnar = true
		rec, recStats := Discover(ds, cfgRec)
		if gotF, wantF := got.Format(ds.Dict), rec.Format(ds.Dict); gotF != wantF {
			t.Errorf("seed=%d: faulted columnar run diverged from record-path result", seed)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("seed=%d: faulted columnar run diverged from fault-free result", seed)
		}
		if !reflect.DeepEqual(spanSummary(stats.Dataflow.Spans()), spanSummary(recStats.Dataflow.Spans())) {
			t.Errorf("seed=%d: span accounting differs between columnar and record execution", seed)
		}
	}
}

// TestSpillDifferentialColumnar drives columnar batches through the PairCodec
// spill path: with a 1-byte budget every keyed stage spills, and the output
// of a budgeted columnar run must be byte-identical both to a budgeted
// record-path run and to an unbudgeted one — the spilled bytes a batch-fed
// stage encodes are the same bytes the record path encodes.
func TestSpillDifferentialColumnar(t *testing.T) {
	t.Setenv("DATAFLOW_FUSION", "on")
	t.Setenv("DATAFLOW_COLUMNAR", "on")
	ds := fixtures.University()
	for _, v := range []Variant{Standard, NoFrequentConditions} {
		for _, w := range []int{1, 3} {
			label := fmt.Sprintf("%v w=%d", v, w)
			base := Config{Support: 2, Workers: w, Variant: v}
			plain, _, err := TryDiscover(ds, base)
			if err != nil {
				t.Fatalf("%s unbudgeted: %v", label, err)
			}
			want := plain.Format(ds.Dict)
			for _, columnar := range []bool{true, false} {
				cfg := base
				cfg.MemoryBudget = 1
				cfg.SpillDir = t.TempDir()
				cfg.DisableColumnar = !columnar
				got, stats, err := TryDiscover(ds, cfg)
				if err != nil {
					t.Fatalf("%s columnar=%v budgeted: %v", label, columnar, err)
				}
				if gotF := got.Format(ds.Dict); gotF != want {
					t.Errorf("%s columnar=%v: budgeted output diverged (%d vs %d bytes)",
						label, columnar, len(gotF), len(want))
				}
				if stats.SpilledBytes == 0 || stats.SpilledRuns == 0 {
					t.Errorf("%s columnar=%v: 1-byte budget spilled nothing", label, columnar)
				}
			}
		}
	}
}

// TestDistributedColumnarParity sends columnar-fed collective frames through
// the in-process cluster harness: distributed runs with columnar execution on
// and off must both match the single-process result byte for byte, and a
// worker killed mid-pipeline must recover through lineage replay to the same
// bytes with its loss accounted.
func TestDistributedColumnarParity(t *testing.T) {
	t.Setenv("DATAFLOW_FUSION", "on")
	t.Setenv("DATAFLOW_COLUMNAR", "on")
	ds := skewedDataset(500, 17)
	single, _ := Discover(ds, Config{Support: 2, Workers: 2})
	want := single.Format(ds.Dict)

	for _, columnar := range []bool{true, false} {
		cfg := Config{Support: 2, DisableColumnar: !columnar}
		res, stats := runDistributed(t, ds, cfg, 2, nil)
		if got := res.Format(ds.Dict); got != want {
			t.Errorf("columnar=%v: distributed output diverged from single-process (%d vs %d bytes)",
				columnar, len(got), len(want))
		}
		if stats.WorkerLosses != 0 {
			t.Errorf("columnar=%v: fault-free run recorded %d losses", columnar, stats.WorkerLosses)
		}
	}

	// Kill-recovery under columnar execution: retry-from-retained-partitions
	// replays batched chains, and the recovered bytes must not move.
	faults := []dataflow.ProcFault{{Seq: 4, Rank: 1, Kind: dataflow.ProcKill}}
	res, stats := runDistributed(t, ds, Config{Support: 2}, 2, faults)
	if got := res.Format(ds.Dict); got != want {
		t.Errorf("post-recovery columnar output diverged from single-process (%d vs %d bytes)",
			len(got), len(want))
	}
	if stats.WorkerLosses != 1 || stats.WorkerRespawns != 1 {
		t.Errorf("loss accounting: losses=%d respawns=%d, want 1/1", stats.WorkerLosses, stats.WorkerRespawns)
	}
}
