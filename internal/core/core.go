// Package core orchestrates the full RDFind pipeline (Fig. 3): FCDetector →
// CGCreator → CINDExtractor, on top of the dataflow engine. It also provides
// the pipeline variants evaluated in §8.5 and §8.6 — RDFind-DE (direct
// extraction), RDFind-NF (no frequent-condition pruning), and the
// minimal-first strategy — which trade performance but, up to the documented
// AR differences of NF, compute the same pertinent CINDs.
package core

import (
	"time"

	"repro/internal/capture"
	"repro/internal/cind"
	"repro/internal/dataflow"
	"repro/internal/extract"
	"repro/internal/fcdetect"
	"repro/internal/rdf"
)

// Variant selects a pipeline strategy.
type Variant int

const (
	// Standard is the full RDFind pipeline: lazy pruning in two phases,
	// load balancing, and approximate-validate extraction.
	Standard Variant = iota
	// DirectExtraction (RDFind-DE) skips capture-support pruning, load
	// balancing, and the Bloom-filter candidate encoding (§7.1, §8.5).
	DirectExtraction
	// NoFrequentConditions (RDFind-NF) additionally waives everything
	// related to frequent conditions: all conditions count as frequent and
	// no association rules are derived, so AR-implied CINDs appear as plain
	// CINDs in the result (§8.5).
	NoFrequentConditions
	// MinimalFirst extracts minimal CINDs directly in multiple passes over
	// the capture groups instead of minimizing the broad set afterwards
	// (§8.6; shown there to be up to 3× slower than even RDFind-DE).
	MinimalFirst
)

// String names the variant as in the paper.
func (v Variant) String() string {
	switch v {
	case Standard:
		return "RDFind"
	case DirectExtraction:
		return "RDFind-DE"
	case NoFrequentConditions:
		return "RDFind-NF"
	case MinimalFirst:
		return "RDFind-MF"
	}
	return "unknown"
}

// Config parameterizes a discovery run.
type Config struct {
	// Support is the broadness threshold h (Definition 3.1). Values below 1
	// are treated as 1.
	Support int
	// Workers is the logical worker count of the dataflow engine; 0 selects
	// one worker.
	Workers int
	// Variant selects the pipeline strategy; the zero value is the full
	// RDFind pipeline.
	Variant Variant
	// PredicatesOnlyInConditions uses the predicate element only inside
	// conditions, never as a projection attribute (the Freebase experiment
	// of §8.3).
	PredicatesOnlyInConditions bool
	// BloomBytes sizes candidate-set Bloom filters; 0 selects the paper's
	// 64 bytes.
	BloomBytes int
	// LoadLimit caps the estimated extraction load (candidate-set entries);
	// 0 means unlimited. A bounded run that would exceed it fails with
	// extract.ErrLoadLimit instead of exhausting memory — use TryDiscover
	// to observe the error.
	LoadLimit int64
}

func (c Config) normalized() Config {
	if c.Support < 1 {
		c.Support = 1
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	return c
}

// RunStats reports what a run did, for the experiment harness.
type RunStats struct {
	Triples        int
	FrequentUnary  int
	FrequentBinary int
	CaptureGroups  int
	BroadCINDs     int
	Pertinent      int
	ARs            int
	Duration       time.Duration
	Dataflow       *dataflow.Stats
}

// Discover runs the selected pipeline over the dataset and returns the
// pertinent CINDs and association rules, plus run statistics. It panics if
// a configured LoadLimit is exceeded; set one only through TryDiscover.
func Discover(ds *rdf.Dataset, cfg Config) (*cind.Result, *RunStats) {
	res, stats, err := TryDiscover(ds, cfg)
	if err != nil {
		panic("core: " + err.Error() + " (use TryDiscover with Config.LoadLimit)")
	}
	return res, stats
}

// TryDiscover is Discover with the load-limit error surfaced: when
// Config.LoadLimit is set and the extraction would exceed it, the run stops
// with extract.ErrLoadLimit and partial statistics.
func TryDiscover(ds *rdf.Dataset, cfg Config) (*cind.Result, *RunStats, error) {
	cfg = cfg.normalized()
	start := time.Now()
	ctx := dataflow.NewContext(cfg.Workers)
	stats := &RunStats{Triples: ds.Size(), Dataflow: ctx.Stats()}

	triples := dataflow.Parallelize(ctx, "input", ds.Triples)
	fcOpts := fcdetect.Options{PredicatesOnlyInConditions: cfg.PredicatesOnlyInConditions}

	// Phase 1 of lazy pruning: frequent conditions and association rules
	// (skipped entirely by RDFind-NF).
	var fc *fcdetect.Output
	if cfg.Variant == NoFrequentConditions {
		fc = allFrequent(triples, cfg)
	} else {
		fc = fcdetect.Detect(triples, cfg.Support, fcOpts)
		stats.FrequentUnary = fc.Unary.Len()
		stats.FrequentBinary = fc.Binary.Len()
	}

	// Capture groups (§6).
	groups := capture.BuildGroups(triples, fc, fcOpts)
	stats.CaptureGroups = groups.Len()

	// CIND extraction (§7).
	ecfg := extract.Config{
		Support:          cfg.Support,
		DirectExtraction: cfg.Variant == DirectExtraction || cfg.Variant == NoFrequentConditions,
		BloomBytes:       cfg.BloomBytes,
		LoadLimit:        cfg.LoadLimit,
	}
	var pertinent []cind.CIND
	if cfg.Variant == MinimalFirst {
		mf, err := minimalFirst(groups, ecfg)
		if err != nil {
			stats.Duration = time.Since(start)
			return nil, stats, err
		}
		pertinent = mf
		stats.BroadCINDs = len(pertinent) // broad set never materialized
	} else {
		broad, err := extract.BroadCINDs(groups, ecfg)
		if err != nil {
			stats.Duration = time.Since(start)
			return nil, stats, err
		}
		stats.BroadCINDs = len(broad)
		pertinent = extract.Minimize(broad)
	}

	res := &cind.Result{CINDs: pertinent, ARs: fc.ARs}
	res.Sort(ds.Dict)
	stats.Pertinent = len(res.CINDs)
	stats.ARs = len(res.ARs)
	stats.Duration = time.Since(start)
	return res, stats, nil
}

// allFrequent fabricates an FCDetector output that treats every condition as
// frequent and knows no association rules — the RDFind-NF configuration.
// Saturated one-bit "filters" make every membership probe succeed.
func allFrequent(triples *dataflow.Dataset[rdf.Triple], cfg Config) *fcdetect.Output {
	empty := dataflow.Parallelize(triples.Context(), "nf/no-counters",
		[]dataflow.Pair[cind.Condition, int](nil))
	return &fcdetect.Output{
		Unary:       empty,
		Binary:      empty,
		UnaryBloom:  saturatedFilter(),
		BinaryBloom: saturatedFilter(),
	}
}
