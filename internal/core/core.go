// Package core orchestrates the full RDFind pipeline (Fig. 3): FCDetector →
// CGCreator → CINDExtractor, on top of the dataflow engine. It also provides
// the pipeline variants evaluated in §8.5 and §8.6 — RDFind-DE (direct
// extraction), RDFind-NF (no frequent-condition pruning), and the
// minimal-first strategy — which trade performance but, up to the documented
// AR differences of NF, compute the same pertinent CINDs.
package core

import (
	"context"
	"runtime"
	"time"

	"repro/internal/capture"
	"repro/internal/cind"
	"repro/internal/dataflow"
	"repro/internal/dataflow/opt"
	"repro/internal/extract"
	"repro/internal/fcdetect"
	"repro/internal/metrics"
	"repro/internal/rdf"
	"repro/internal/source"
)

// Variant selects a pipeline strategy.
type Variant int

const (
	// Standard is the full RDFind pipeline: lazy pruning in two phases,
	// load balancing, and approximate-validate extraction.
	Standard Variant = iota
	// DirectExtraction (RDFind-DE) skips capture-support pruning, load
	// balancing, and the Bloom-filter candidate encoding (§7.1, §8.5).
	DirectExtraction
	// NoFrequentConditions (RDFind-NF) additionally waives everything
	// related to frequent conditions: all conditions count as frequent and
	// no association rules are derived, so AR-implied CINDs appear as plain
	// CINDs in the result (§8.5).
	NoFrequentConditions
	// MinimalFirst extracts minimal CINDs directly in multiple passes over
	// the capture groups instead of minimizing the broad set afterwards
	// (§8.6; shown there to be up to 3× slower than even RDFind-DE).
	MinimalFirst
)

// String names the variant as in the paper.
func (v Variant) String() string {
	switch v {
	case Standard:
		return "RDFind"
	case DirectExtraction:
		return "RDFind-DE"
	case NoFrequentConditions:
		return "RDFind-NF"
	case MinimalFirst:
		return "RDFind-MF"
	}
	return "unknown"
}

// Config parameterizes a discovery run.
type Config struct {
	// Support is the broadness threshold h (Definition 3.1). Values below 1
	// are treated as 1.
	Support int
	// Workers is the logical worker count of the dataflow engine; 0 selects
	// one worker.
	Workers int
	// Variant selects the pipeline strategy; the zero value is the full
	// RDFind pipeline.
	Variant Variant
	// PredicatesOnlyInConditions uses the predicate element only inside
	// conditions, never as a projection attribute (the Freebase experiment
	// of §8.3).
	PredicatesOnlyInConditions bool
	// BloomBytes sizes candidate-set Bloom filters; 0 selects the paper's
	// 64 bytes.
	BloomBytes int
	// LoadLimit caps the estimated extraction load (candidate-set entries);
	// 0 means unlimited. A bounded run that would exceed it first degrades
	// to Bloom work-unit candidate sets (linear instead of quadratic load,
	// reported in RunStats.Degraded) and only fails with extract.ErrLoadLimit
	// if even the degraded load exceeds the limit — use TryDiscover or
	// DiscoverContext to observe the error. RDFind-DE and RDFind-NF never
	// degrade: the paper defines direct extraction as exact-only, and its
	// memory failures are the point of Fig. 13.
	LoadLimit int64
	// MemoryBudget caps (approximately) the bytes of keyed shuffle and
	// aggregation state the dataflow engine holds in memory; overflow spills
	// to unlinked temporary files and is re-merged externally, with results
	// byte-identical to an unbudgeted run. 0 disables spilling. A budgeted
	// run also absorbs LoadLimit breaches by keeping the exact extraction
	// plan on the spill path instead of degrading to Bloom work units.
	MemoryBudget int64
	// SpillDir is the directory for spill files; empty selects the system
	// temp directory. Setting SpillDir without MemoryBudget enables spilling
	// with a default budget of 256 MiB.
	SpillDir string
	// MaxStageAttempts bounds how often a dataflow stage is executed when
	// workers fail with transient faults (1 disables retries); 0 selects 3.
	MaxStageAttempts int
	// RetryBackoff is the base of the exponential backoff between stage
	// attempts; 0 selects 1ms.
	RetryBackoff time.Duration
	// FaultPlan injects deterministic faults into the dataflow engine, for
	// robustness testing; nil injects nothing. An empty plan traces stage
	// executions without injecting.
	FaultPlan *dataflow.FaultPlan
	// DisableFusion switches the dataflow engine back to eager
	// one-stage-per-operator execution (dataflow.WithFusion(false)) instead
	// of the default lazy narrow-operator fusion. Results are byte-identical
	// either way — the differential suites pin that — so this exists for
	// those suites and for debugging per-operator spans.
	DisableFusion bool
	// DisableColumnar switches the dataflow engine's fused narrow chains back
	// to record-at-a-time execution (dataflow.WithColumnar(false)) instead of
	// the default column-batch path, and with it the bitmap-backed candidate
	// sets that ride on it (extract.Config.BitmapSets). Results are
	// byte-identical either way — the differential suites pin that — so this
	// exists for those suites and for debugging.
	DisableColumnar bool
	// Cluster makes this run the coordinator of a multi-process job: stages
	// execute on the cluster's worker processes and this driver consumes the
	// collective results. Overrides Workers with the cluster's worker count
	// and disables the in-process spill path (distributed shuffles move data
	// over the network instead). Mutually exclusive with WorkerConn.
	Cluster *dataflow.Cluster
	// WorkerConn makes this run one worker rank of a multi-process job: the
	// driver replays the same pipeline as the coordinator but executes only
	// its rank's partition of every stage. Worker count, partitioning seed,
	// and injected fault schedules come from the coordinator's welcome.
	WorkerConn *dataflow.WorkerConn
	// RetryJitter spreads the stage-retry backoff by ±RetryJitter (a fraction
	// in [0, 1]), decorrelating retry storms when several workers fail
	// together. 0 keeps the deterministic exponential backoff.
	RetryJitter float64
	// DisableOptimizer switches off the cost-based plan optimizer
	// (dataflow.WithOptimizer(false)): no shared-prefix materialization, no
	// shuffle pushdown, and global worker/budget policies instead of
	// per-stage ones. Results are byte-identical either way — the optimizer
	// differential suites pin that — so this exists for those suites, for
	// benchmark baselines, and for debugging.
	DisableOptimizer bool
	// ProfileDir persists the optimizer's per-stage observations across
	// processes: the run loads profile.json from this directory (cold start
	// when absent), and saves the updated observations back after the run.
	// Empty disables persistence. Ignored when the optimizer is disabled and
	// cleared for distributed runs, where the optimizer is inert.
	ProfileDir string
	// Profile shares optimizer observations in memory across runs in the
	// same process (a benchmark sweep warming its own cost model). When set
	// it wins over ProfileDir; nil without ProfileDir means each run starts
	// cold.
	Profile *opt.Profile
	// Partitioner places triples onto worker partitions as streamed ingest
	// blocks arrive (DiscoverSource only; in-memory Discover keeps
	// Parallelize's contiguous split). Nil selects source.HashPartitioner.
	// Placement never changes the discovered result — the differential
	// suites pin byte-identical output across partitioners — only ingest
	// balance and downstream shuffle volume.
	Partitioner source.Partitioner
}

func (c Config) normalized() Config {
	if c.Support < 1 {
		c.Support = 1
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.MaxStageAttempts < 1 {
		c.MaxStageAttempts = 3
	}
	if c.SpillDir != "" && c.MemoryBudget == 0 {
		c.MemoryBudget = 1 << 28 // 256 MiB default once a spill dir is named
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = time.Millisecond
	}
	// Distributed runs take their worker count from the cluster and keep
	// shuffle state in memory: the network shuffle and the spill path are
	// mutually exclusive (the CLI rejects the combination up front).
	if c.Cluster != nil {
		c.Workers = c.Cluster.Workers()
		c.MemoryBudget, c.SpillDir = 0, ""
	}
	if c.WorkerConn != nil {
		c.Workers = c.WorkerConn.Workers()
		c.MemoryBudget, c.SpillDir = 0, ""
	}
	// The optimizer is inert in distributed mode (the engine never creates a
	// planner for replicated drivers), so profile plumbing is dropped too.
	if c.Cluster != nil || c.WorkerConn != nil {
		c.Profile, c.ProfileDir = nil, ""
	}
	return c
}

// RunStats reports what a run did, for the experiment harness. On a failed
// or cancelled run the fields filled in before the abort are still valid, so
// callers get a partial-progress report next to the error.
type RunStats struct {
	Triples        int
	FrequentUnary  int
	FrequentBinary int
	CaptureGroups  int
	BroadCINDs     int
	Pertinent      int
	ARs            int
	Duration       time.Duration
	Dataflow       *dataflow.Stats
	// ExtractionLoad is the estimated candidate-set entries of the executed
	// extraction strategy (summed over the minimal-first passes).
	ExtractionLoad int64
	// Degraded reports that a LoadLimit breach was absorbed by re-planning
	// extraction with Bloom work-unit candidate sets instead of failing.
	Degraded bool
	// SpillPlanned reports that a LoadLimit breach was absorbed by keeping
	// the exact extraction plan on the engine's spill-to-disk path (requires
	// Config.MemoryBudget; takes precedence over degradation).
	SpillPlanned bool
	// SpilledBytes, SpilledRuns, and MergePasses aggregate the engine's
	// out-of-core activity across all stages: bytes written to spill files,
	// sorted runs flushed, and external merge passes performed. All zero in
	// an unbudgeted run or when the budget was never exceeded.
	SpilledBytes int64
	SpilledRuns  int64
	MergePasses  int64
	// MaterializedBytes estimates the bytes buffered into partition slices by
	// narrow-operator stages (fused or eager), summed over all stages. Fusion
	// shrinks it by eliding the intermediate partitions between chained
	// narrow operators.
	MaterializedBytes int64
	// Batches counts the column batches the engine's columnar execution
	// delivered to fused-chain sinks across all stages; BatchFill is the
	// fraction of their lanes still selected when they arrived (1.0 = no
	// Filter cleared anything). Both zero with Config.DisableColumnar.
	Batches   int64
	BatchFill float64
	// StageRetries is the total number of worker re-executions after
	// transient faults, summed over all stages (see dataflow.Stats.Retries).
	StageRetries int
	// WorkerLosses, WorkerRespawns, and Reconnects report the distributed
	// engine's fault handling: worker processes declared lost (heartbeat
	// deadline or injected kill), replacement processes spawned, and worker
	// connections re-established after transient drops. All zero in a
	// single-process run.
	WorkerLosses   int64
	WorkerRespawns int64
	Reconnects     int64
	// Mallocs and AllocBytes are the process-wide allocation deltas
	// (runtime.MemStats Mallocs and TotalAlloc) across the run — the
	// whole-pipeline counterpart of the per-span deltas, letting the
	// benchmark harness gate on allocation counts next to wall time.
	Mallocs    uint64
	AllocBytes uint64
	// Optimizer reports the plan optimizer's run: whether it was enabled and
	// profile-fed, its (possibly tuned) cost model, and every rewrite rule
	// and per-stage policy it chose. Nil when the optimizer is disabled or
	// the run is distributed.
	Optimizer *opt.Report
	// Ingest reports the streaming-source ingest of a DiscoverSource run;
	// nil on in-memory (Discover/TryDiscover/DiscoverContext) runs.
	Ingest *IngestStats
}

// IngestStats accounts a streamed-source ingest (DiscoverSource).
type IngestStats struct {
	// Files is the number of resolved input files; Partitioner names the
	// placement strategy.
	Files       int
	Partitioner string
	// PerRank[r] is the number of triples worker rank r streamed from its
	// assigned input files (cluster mode), or the number placed into
	// logical partition r (single-process).
	PerRank []int64
	// LocalTriples counts the triples this process materialized at the
	// ingest root: the full input single-process, this rank's files on a
	// worker, and always 0 on a cluster coordinator — the accounting behind
	// the coordinator-never-holds-the-dataset guarantee.
	LocalTriples int64
	// ShuffleBytes is the placement shuffle's wire volume (cluster mode;
	// 0 single-process, where placement happens as blocks arrive).
	ShuffleBytes int64
	// Skipped lists lenient-mode malformed lines with their files
	// (single-process only); SkippedLines is the cluster-wide count and is
	// also set single-process.
	Skipped      []source.Malformed
	SkippedLines int64
	// Distributed reports a multi-process ingest; Rank is this process's
	// worker rank in it (-1 on the coordinator).
	Distributed bool
	Rank        int
}

// Discover runs the selected pipeline over the dataset and returns the
// pertinent CINDs and association rules, plus run statistics. It panics on
// any error (an exceeded LoadLimit, an exhausted stage-retry budget); use
// TryDiscover or DiscoverContext to observe errors instead.
func Discover(ds *rdf.Dataset, cfg Config) (*cind.Result, *RunStats) {
	res, stats, err := TryDiscover(ds, cfg)
	if err != nil {
		panic("core: " + err.Error() + " (use TryDiscover to observe errors)")
	}
	return res, stats
}

// TryDiscover is Discover with errors surfaced: an exceeded LoadLimit ends
// the run with extract.ErrLoadLimit (after the degradation attempt) and
// partial statistics, and a terminal stage failure surfaces as a
// *dataflow.StageError.
func TryDiscover(ds *rdf.Dataset, cfg Config) (*cind.Result, *RunStats, error) {
	return DiscoverContext(context.Background(), ds, cfg)
}

// DiscoverContext is TryDiscover under a cancellation context: the pipeline
// checks ctx between stage attempts and aborts promptly when it is cancelled
// or times out, returning partial statistics and an error wrapping ctx.Err().
// Transient worker faults (injected or signalled via dataflow.Transient
// panics) are retried per Config.MaxStageAttempts before they become errors.
func DiscoverContext(ctx context.Context, ds *rdf.Dataset, cfg Config) (*cind.Result, *RunStats, error) {
	cfg = cfg.normalized()
	h := newHarness(ctx, cfg)
	h.stats.Triples = ds.Size()
	triples := dataflow.Parallelize(h.dfctx, "input", ds.Triples)
	return h.run(triples, ds.Dict)
}

// harness is the shared run scaffolding of DiscoverContext and
// DiscoverSource: the configured dataflow context, run statistics with their
// collection closures, and the optimizer profile feedback loop. It exists so
// the two ingest roots — a resident Dataset parallelized in memory, and a
// streamed Source placed partition-by-partition — drive one and the same
// pipeline body.
type harness struct {
	cfg      Config
	dfctx    *dataflow.Context
	stats    *RunStats
	prof     *opt.Profile
	start    time.Time
	memStart runtime.MemStats
}

// newHarness builds the dataflow context and stats plumbing for one run.
// cfg must already be normalized.
func newHarness(ctx context.Context, cfg Config) *harness {
	if ctx == nil {
		ctx = context.Background()
	}
	h := &harness{cfg: cfg}
	runtime.ReadMemStats(&h.memStart)
	h.start = time.Now()
	dfOpts := []dataflow.Option{
		dataflow.WithCancel(ctx),
		dataflow.WithRetries(cfg.MaxStageAttempts - 1),
		dataflow.WithBackoff(cfg.RetryBackoff),
		dataflow.WithFaultPlan(cfg.FaultPlan),
		dataflow.WithMemoryBudget(cfg.MemoryBudget),
		dataflow.WithSpillDir(cfg.SpillDir),
	}
	if cfg.DisableFusion {
		dfOpts = append(dfOpts, dataflow.WithFusion(false))
	}
	if cfg.DisableColumnar {
		dfOpts = append(dfOpts, dataflow.WithColumnar(false))
	}
	if cfg.DisableOptimizer {
		dfOpts = append(dfOpts, dataflow.WithOptimizer(false))
	}
	// Profile feedback loop: a live handle wins; otherwise a profile directory
	// is loaded (empty on first run, started fresh over a corrupt file) and
	// saved back after the run. Errors are deliberately non-fatal — a broken
	// profile must never break discovery, only un-tune it.
	h.prof = cfg.Profile
	if h.prof == nil && cfg.ProfileDir != "" && !cfg.DisableOptimizer {
		h.prof, _ = opt.LoadProfile(cfg.ProfileDir)
	}
	if h.prof != nil {
		dfOpts = append(dfOpts, dataflow.WithProfile(h.prof))
	}
	if cfg.RetryJitter > 0 {
		dfOpts = append(dfOpts, dataflow.WithRetryJitter(cfg.RetryJitter))
	}
	if cfg.Cluster != nil {
		dfOpts = append(dfOpts, dataflow.WithCluster(cfg.Cluster))
	}
	if cfg.WorkerConn != nil {
		dfOpts = append(dfOpts, dataflow.WithWorkerConn(cfg.WorkerConn))
	}
	h.dfctx = dataflow.NewContext(cfg.Workers, dfOpts...)
	h.stats = &RunStats{Dataflow: h.dfctx.Stats()}
	return h
}

func (h *harness) recordAllocs() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	h.stats.Mallocs = ms.Mallocs - h.memStart.Mallocs
	h.stats.AllocBytes = ms.TotalAlloc - h.memStart.TotalAlloc
}

func (h *harness) recordSpill() {
	// Read through a snapshot so an unbudgeted run does not materialize
	// zero-valued spill counters in the registry.
	counters := h.dfctx.Stats().Metrics().Snapshot().Counters
	h.stats.SpilledBytes = counters["dataflow.spill.bytes"]
	h.stats.SpilledRuns = counters["dataflow.spill.runs"]
	h.stats.MergePasses = counters["dataflow.spill.merge_passes"]
	h.stats.MaterializedBytes = counters["dataflow.materialized.bytes"]
	h.stats.Batches = counters["dataflow.batches"]
	if lanes := counters["dataflow.batch.lanes"]; lanes > 0 {
		h.stats.BatchFill = float64(counters["dataflow.batch.live"]) / float64(lanes)
	}
	h.stats.WorkerLosses = counters[metrics.ClusterLosses]
	h.stats.WorkerRespawns = counters[metrics.ClusterRespawns]
	h.stats.Reconnects = counters[metrics.ClusterReconnects]
}

// finish closes the stats out on an aborted run.
func (h *harness) finish(err error) (*cind.Result, *RunStats, error) {
	h.stats.StageRetries = h.dfctx.Stats().TotalRetries()
	h.stats.Duration = time.Since(h.start)
	h.recordAllocs()
	h.recordSpill()
	h.stats.Optimizer = h.dfctx.OptimizerReport()
	return nil, h.stats, err
}

// run executes the pipeline proper — FCDetector → CGCreator → CINDExtractor
// — over an already-rooted triple dataset. dict is the global dictionary the
// triples are encoded against, used only to canonicalize the result order.
func (h *harness) run(triples *dataflow.Dataset[rdf.Triple], dict *rdf.Dictionary) (*cind.Result, *RunStats, error) {
	cfg, dfctx, stats := h.cfg, h.dfctx, h.stats
	fcOpts := fcdetect.Options{PredicatesOnlyInConditions: cfg.PredicatesOnlyInConditions}

	// Phase 1 of lazy pruning: frequent conditions and association rules
	// (skipped entirely by RDFind-NF).
	var fc *fcdetect.Output
	if cfg.Variant == NoFrequentConditions {
		fc = allFrequent(triples, cfg)
	} else {
		fc = fcdetect.Detect(triples, cfg.Support, fcOpts)
		stats.FrequentUnary = fc.Unary.Len()
		stats.FrequentBinary = fc.Binary.Len()
	}
	if err := dfctx.Err(); err != nil {
		return h.finish(err)
	}

	// Capture groups (§6).
	groups := capture.BuildGroups(triples, fc, fcOpts)
	stats.CaptureGroups = groups.Len()
	if err := dfctx.Err(); err != nil {
		return h.finish(err)
	}

	// CIND extraction (§7). A LoadLimit breach degrades to Bloom work-unit
	// candidate sets unless the variant is defined as exact-only.
	ecfg := extract.Config{
		Support:            cfg.Support,
		DirectExtraction:   cfg.Variant == DirectExtraction || cfg.Variant == NoFrequentConditions,
		BloomBytes:         cfg.BloomBytes,
		LoadLimit:          cfg.LoadLimit,
		DegradeOnLoadLimit: true,
		SpillOnLoadLimit:   cfg.MemoryBudget > 0,
		BitmapSets:         dfctx.Columnar(),
	}
	var pertinent []cind.CIND
	if cfg.Variant == MinimalFirst {
		mf, outcome, err := minimalFirst(groups, ecfg)
		stats.ExtractionLoad = outcome.EstimatedLoad
		stats.Degraded = outcome.Degraded
		stats.SpillPlanned = outcome.Spilled
		if err != nil {
			return h.finish(err)
		}
		pertinent = mf
		stats.BroadCINDs = len(pertinent) // broad set never materialized
	} else {
		broad, outcome, err := extract.BroadCINDsOutcome(groups, ecfg)
		stats.ExtractionLoad = outcome.EstimatedLoad
		stats.Degraded = outcome.Degraded
		stats.SpillPlanned = outcome.Spilled
		if err != nil {
			return h.finish(err)
		}
		stats.BroadCINDs = len(broad)
		pertinent = extract.Minimize(broad)
	}
	if err := dfctx.Err(); err != nil {
		return h.finish(err)
	}

	res := &cind.Result{CINDs: pertinent, ARs: fc.ARs}
	res.Sort(dict)
	stats.Pertinent = len(res.CINDs)
	stats.ARs = len(res.ARs)
	stats.StageRetries = dfctx.Stats().TotalRetries()
	stats.Duration = time.Since(h.start)
	h.recordAllocs()
	h.recordSpill()
	stats.Optimizer = dfctx.OptimizerReport()
	// Feed the run's spans back into the profile (successful runs only:
	// partial traces would skew the averages) and persist it if asked to.
	if h.prof != nil && dfctx.Optimizer() {
		h.prof.Observe(dfctx.Stats().Spans())
		if cfg.ProfileDir != "" {
			_ = h.prof.Save(cfg.ProfileDir)
		}
	}
	return res, stats, nil
}

// allFrequent fabricates an FCDetector output that treats every condition as
// frequent and knows no association rules — the RDFind-NF configuration.
// Saturated one-bit "filters" make every membership probe succeed.
func allFrequent(triples *dataflow.Dataset[rdf.Triple], cfg Config) *fcdetect.Output {
	empty := dataflow.Parallelize(triples.Context(), "nf/no-counters",
		[]dataflow.Pair[cind.Condition, int](nil))
	return &fcdetect.Output{
		Unary:       empty,
		Binary:      empty,
		UnaryBloom:  saturatedFilter(),
		BinaryBloom: saturatedFilter(),
	}
}
