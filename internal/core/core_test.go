package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cind"
	"repro/internal/extract"
	"repro/internal/fixtures"
	"repro/internal/naive"
	"repro/internal/rdf"
)

// resultKey canonicalizes a result for set comparison.
func cindSet(res *cind.Result) map[cind.CIND]bool {
	out := make(map[cind.CIND]bool, len(res.CINDs))
	for _, c := range res.CINDs {
		out[c] = true
	}
	return out
}

func arSet(res *cind.Result) map[cind.AR]bool {
	out := make(map[cind.AR]bool, len(res.ARs))
	for _, r := range res.ARs {
		out[r] = true
	}
	return out
}

func compareToOracle(t *testing.T, label string, ds *rdf.Dataset, res *cind.Result, want *cind.Result, checkARs bool) {
	t.Helper()
	got := cindSet(res)
	exp := cindSet(want)
	for c := range exp {
		if !got[c] {
			t.Errorf("%s: missing CIND %s", label, c.Format(ds.Dict))
		}
	}
	for c := range got {
		if !exp[c] {
			t.Errorf("%s: spurious CIND %s", label, c.Format(ds.Dict))
		}
	}
	if !checkARs {
		return
	}
	gotARs, expARs := arSet(res), arSet(want)
	for r := range expARs {
		if !gotARs[r] {
			t.Errorf("%s: missing AR %s", label, r.Format(ds.Dict))
		}
	}
	for r := range gotARs {
		if !expARs[r] {
			t.Errorf("%s: spurious AR %s", label, r.Format(ds.Dict))
		}
	}
}

// TestDiscoverMatchesOracle is the central differential test: the full
// pipeline and the RDFind-DE and minimal-first variants must reproduce the
// oracle exactly, across datasets, thresholds, and worker counts.
func TestDiscoverMatchesOracle(t *testing.T) {
	datasets := map[string]*rdf.Dataset{
		"table1":  fixtures.University(),
		"random":  randomDataset(400, 5, 21),
		"skewed":  skewedDataset(500, 17),
		"uniform": randomDataset(250, 12, 5),
	}
	variants := []Variant{Standard, DirectExtraction, MinimalFirst}
	thresholds := []int{1, 2, 4, 8}
	if testing.Short() {
		thresholds = []int{2, 8}
	}
	for name, ds := range datasets {
		for _, h := range thresholds {
			want := naive.Discover(ds, h, naive.Options{})
			for _, v := range variants {
				for _, w := range []int{1, 4} {
					res, stats := Discover(ds, Config{Support: h, Workers: w, Variant: v})
					label := fmt.Sprintf("%s h=%d %v w=%d", name, h, v, w)
					compareToOracle(t, label, ds, res, want, true)
					if stats.Pertinent != len(res.CINDs) || stats.ARs != len(res.ARs) {
						t.Errorf("%s: stats inconsistent with result", label)
					}
				}
			}
		}
	}
}

// TestDiscoverTinyBloomStress forces heavy Bloom false-positive rates (an
// 8-byte filter for candidate sets) so the approximate-validate path must
// correct them. Results must still be exact.
func TestDiscoverTinyBloomStress(t *testing.T) {
	ds := skewedDataset(600, 3)
	for _, h := range []int{2, 4} {
		want := naive.Discover(ds, h, naive.Options{})
		res, _ := Discover(ds, Config{Support: h, Workers: 3, BloomBytes: 8})
		compareToOracle(t, fmt.Sprintf("tiny-bloom h=%d", h), ds, res, want, true)
	}
}

// TestNoFrequentConditionsVariant: RDFind-NF computes no association rules,
// so its result is the pertinent CINDs over the unquotiented universe. Every
// CIND that RDFind reports must also be reported by NF, every NF CIND must
// be valid, broad, and minimal, and NF must report no ARs.
func TestNoFrequentConditionsVariant(t *testing.T) {
	ds := randomDataset(300, 4, 9)
	h := 2
	std, _ := Discover(ds, Config{Support: h, Workers: 2})
	nf, _ := Discover(ds, Config{Support: h, Workers: 2, Variant: NoFrequentConditions})
	if len(nf.ARs) != 0 {
		t.Errorf("NF reported %d ARs, want 0", len(nf.ARs))
	}
	nfSet := cindSet(nf)
	for _, c := range std.CINDs {
		if !nfSet[c] {
			// A standard CIND may be absorbed by an AR-equivalent capture
			// in NF's universe; it must then be *implied* by some NF CIND
			// via the AR equivalence. Verify validity instead of identity.
			if !cind.Holds(ds, c.Inclusion) {
				t.Errorf("standard CIND invalid?! %s", c.Format(ds.Dict))
			}
		}
	}
	for _, c := range nf.CINDs {
		if !cind.Holds(ds, c.Inclusion) {
			t.Errorf("NF reported invalid CIND %s", c.Format(ds.Dict))
		}
		if c.Support < h || cind.SupportOf(ds, c.Dep) != c.Support {
			t.Errorf("NF support wrong for %s", c.Format(ds.Dict))
		}
		if c.Trivial() {
			t.Errorf("NF reported trivial CIND %s", c.Format(ds.Dict))
		}
	}
}

// TestPredicatesOnlyInConditions mirrors the Freebase-experiment
// configuration (§8.3: no predicate projections).
func TestPredicatesOnlyInConditions(t *testing.T) {
	ds := skewedDataset(400, 13)
	for _, h := range []int{2, 5} {
		want := naive.Discover(ds, h, naive.Options{PredicatesOnlyInConditions: true})
		res, _ := Discover(ds, Config{Support: h, Workers: 2, PredicatesOnlyInConditions: true})
		compareToOracle(t, fmt.Sprintf("pred-only h=%d", h), ds, res, want, true)
	}
}

// TestWorkerCountInvariance: the result must not depend on the parallelism.
func TestWorkerCountInvariance(t *testing.T) {
	ds := skewedDataset(500, 29)
	base, _ := Discover(ds, Config{Support: 3, Workers: 1})
	for _, w := range []int{2, 5, 9} {
		res, _ := Discover(ds, Config{Support: 3, Workers: w})
		if len(res.CINDs) != len(base.CINDs) || len(res.ARs) != len(base.ARs) {
			t.Fatalf("w=%d: %d CINDs / %d ARs, w=1: %d / %d",
				w, len(res.CINDs), len(res.ARs), len(base.CINDs), len(base.ARs))
		}
		baseSet := cindSet(base)
		for _, c := range res.CINDs {
			if !baseSet[c] {
				t.Errorf("w=%d: CIND %s not in w=1 result", w, c.Format(ds.Dict))
			}
		}
	}
}

// TestSupportMonotonicity: raising h can only shrink the CIND result.
func TestSupportMonotonicity(t *testing.T) {
	ds := skewedDataset(400, 3)
	prev := -1
	for _, h := range []int{1, 2, 4, 8, 16, 1 << 20} {
		res, _ := Discover(ds, Config{Support: h, Workers: 2})
		n := len(res.CINDs) + len(res.ARs)
		if prev >= 0 && n > prev {
			t.Errorf("h=%d: result grew from %d to %d statements", h, prev, n)
		}
		prev = n
		for _, c := range res.CINDs {
			if c.Support < h {
				t.Errorf("h=%d: CIND with support %d reported", h, c.Support)
			}
		}
	}
	// An absurd threshold yields nothing.
	res, _ := Discover(ds, Config{Support: 1 << 20, Workers: 2})
	if len(res.CINDs) != 0 || len(res.ARs) != 0 {
		t.Errorf("h=2^20 still returned %d CINDs, %d ARs", len(res.CINDs), len(res.ARs))
	}
}

func TestDiscoverEmptyAndDegenerate(t *testing.T) {
	empty := rdf.NewDataset()
	res, stats := Discover(empty, Config{Support: 0, Workers: 0})
	if len(res.CINDs) != 0 || len(res.ARs) != 0 || stats.Triples != 0 {
		t.Errorf("empty dataset produced output")
	}
	one := rdf.NewDataset()
	one.Add("a", "b", "c")
	res, _ = Discover(one, Config{Support: 1, Workers: 2})
	for _, c := range res.CINDs {
		if !cind.Holds(one, c.Inclusion) {
			t.Errorf("invalid CIND on single-triple dataset: %s", c.Format(one.Dict))
		}
	}
}

// TestLoadLimit: a tiny limit makes TryDiscover fail with the sentinel
// error; an ample one returns the usual result; Discover panics on a
// violated limit instead of returning garbage.
func TestLoadLimit(t *testing.T) {
	ds := skewedDataset(400, 7)
	_, _, err := TryDiscover(ds, Config{Support: 2, Workers: 2, LoadLimit: 10})
	if !errors.Is(err, extract.ErrLoadLimit) {
		t.Fatalf("tiny load limit not enforced: %v", err)
	}
	res, _, err := TryDiscover(ds, Config{Support: 2, Workers: 2, LoadLimit: 1 << 40})
	if err != nil || len(res.CINDs) == 0 {
		t.Errorf("ample limit failed: %v", err)
	}
	// The minimal-first variant enforces the limit too.
	_, _, err = TryDiscover(ds, Config{Support: 2, Workers: 2, Variant: MinimalFirst, LoadLimit: 10})
	if !errors.Is(err, extract.ErrLoadLimit) {
		t.Errorf("minimal-first ignored the load limit: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Errorf("Discover did not panic on a violated load limit")
		}
	}()
	Discover(ds, Config{Support: 2, Workers: 2, LoadLimit: 10})
}

func TestVariantString(t *testing.T) {
	names := map[Variant]string{
		Standard: "RDFind", DirectExtraction: "RDFind-DE",
		NoFrequentConditions: "RDFind-NF", MinimalFirst: "RDFind-MF",
		Variant(99): "unknown",
	}
	for v, want := range names {
		if v.String() != want {
			t.Errorf("Variant(%d).String() = %q, want %q", v, v.String(), want)
		}
	}
}

// randomDataset generates duplicate-free triples with moderate skew.
func randomDataset(n, card int, seed int64) *rdf.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := rdf.NewDataset()
	seen := map[[3]int]bool{}
	for len(ds.Triples) < n {
		s, p, o := rng.Intn(card*3), rng.Intn(card), rng.Intn(card*2)
		if seen[[3]int{s, p, o}] {
			continue
		}
		seen[[3]int{s, p, o}] = true
		ds.Add(fmt.Sprintf("s%d", s), fmt.Sprintf("p%d", p), fmt.Sprintf("o%d", o))
	}
	return ds
}

// skewedDataset mimics the rdf:type effect: a handful of predicates carry
// most triples, producing dominant capture groups (§7.1).
func skewedDataset(n int, seed int64) *rdf.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := rdf.NewDataset()
	seen := map[[3]int]bool{}
	classes := []string{"Person", "Place", "Work", "Species"}
	for len(ds.Triples) < n {
		s := rng.Intn(n / 3)
		var p, o int
		if rng.Intn(100) < 60 { // 60% of triples are rdf:type statements
			p = 0
			o = rng.Intn(len(classes))
		} else {
			p = 1 + rng.Intn(6)
			o = len(classes) + rng.Intn(n/4)
		}
		if seen[[3]int{s, p, o}] {
			continue
		}
		seen[[3]int{s, p, o}] = true
		var pred string
		if p == 0 {
			pred = "rdf:type"
		} else {
			pred = fmt.Sprintf("p%d", p)
		}
		var obj string
		if p == 0 {
			obj = classes[o]
		} else {
			obj = fmt.Sprintf("o%d", o)
		}
		ds.Add(fmt.Sprintf("s%d", s), pred, obj)
	}
	return ds
}
