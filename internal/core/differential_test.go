package core

import (
	"fmt"
	"testing"

	"repro/internal/cind"
	"repro/internal/datagen"
	"repro/internal/naive"
	"repro/internal/rdf"
)

// TestPropertyDifferentialSmallRandom is the property-based differential
// suite: ~200 tiny seeded-random datasets, each run through all four pipeline
// variants at 1, 2, and 4 workers and compared against the naive oracle.
// Standard, RDFind-DE, and minimal-first must match the oracle exactly
// (CINDs and ARs); RDFind-NF has no ARs by definition, so it is checked
// semantically instead of by set equality.
func TestPropertyDifferentialSmallRandom(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 30
	}
	exact := []Variant{Standard, DirectExtraction, MinimalFirst}
	for seed := 0; seed < seeds; seed++ {
		ds := datagen.Random(int64(seed))
		h := 1 + seed%4
		want := naive.Discover(ds, h, naive.Options{})
		for _, w := range []int{1, 2, 4} {
			for _, v := range exact {
				res, stats := Discover(ds, Config{Support: h, Workers: w, Variant: v})
				label := fmt.Sprintf("seed=%d h=%d %v w=%d", seed, h, v, w)
				compareToOracle(t, label, ds, res, want, true)
				if stats.Pertinent != len(res.CINDs) || stats.ARs != len(res.ARs) {
					t.Errorf("%s: stats inconsistent with result", label)
				}
				if t.Failed() {
					t.Fatalf("stopping after first failing dataset (seed %d)", seed)
				}
			}
			nf, _ := Discover(ds, Config{Support: h, Workers: w, Variant: NoFrequentConditions})
			checkNFSemantics(t, fmt.Sprintf("seed=%d h=%d NF w=%d", seed, h, w), ds, h, want, nf)
			if t.Failed() {
				t.Fatalf("stopping after first failing dataset (seed %d)", seed)
			}
		}
	}
}

// checkNFSemantics verifies the RDFind-NF contract against the oracle
// result: no association rules; every reported CIND is valid, broad, minimal
// in presentation (non-trivial), and carries its exact support; and every
// oracle CIND is either reported or still valid (it may be absorbed into an
// AR-equivalent capture in NF's unquotiented universe).
func checkNFSemantics(t *testing.T, label string, ds *rdf.Dataset, h int, want *cind.Result, nf *cind.Result) {
	t.Helper()
	if len(nf.ARs) != 0 {
		t.Errorf("%s: reported %d ARs, want 0", label, len(nf.ARs))
	}
	nfSet := cindSet(nf)
	for _, c := range want.CINDs {
		if !nfSet[c] && !cind.Holds(ds, c.Inclusion) {
			t.Errorf("%s: oracle CIND invalid?! %s", label, c.Format(ds.Dict))
		}
	}
	for _, c := range nf.CINDs {
		if !cind.Holds(ds, c.Inclusion) {
			t.Errorf("%s: invalid CIND %s", label, c.Format(ds.Dict))
		}
		if c.Support < h || cind.SupportOf(ds, c.Dep) != c.Support {
			t.Errorf("%s: wrong support for %s", label, c.Format(ds.Dict))
		}
		if c.Trivial() {
			t.Errorf("%s: trivial CIND %s", label, c.Format(ds.Dict))
		}
	}
}
