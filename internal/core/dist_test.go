package core

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/cind"
	"repro/internal/dataflow"
	"repro/internal/rdf"
)

// runDistributed executes one discovery on an in-process cluster: worker
// goroutines each replay DiscoverContext over the shared (read-only) dataset
// with a WorkerConn, while the coordinator runs the same call with the
// Cluster handle. Returns the coordinator's result and stats.
func runDistributed(t *testing.T, ds *rdf.Dataset, cfg Config, workers int, faults []dataflow.ProcFault) (*cind.Result, *RunStats) {
	t.Helper()
	addr := filepath.Join(t.TempDir(), "coord.sock")
	var wg sync.WaitGroup
	ccfg := dataflow.ClusterConfig{
		Workers:           workers,
		Network:           "unix",
		Addr:              addr,
		ProcFaults:        faults,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatDeadline: time.Second,
		Spawn: func(rank int) error {
			wg.Add(1)
			go func() {
				defer wg.Done()
				w, err := dataflow.DialWorker("unix", addr, rank)
				if err != nil {
					return
				}
				defer w.Close()
				wcfg := cfg
				wcfg.WorkerConn = w
				if _, _, err := DiscoverContext(context.Background(), ds, wcfg); err == nil {
					w.Goodbye()
				}
			}()
			return nil
		},
	}
	cl, err := dataflow.StartCluster(ccfg)
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	defer wg.Wait()
	defer cl.Close()
	ccfg2 := cfg
	ccfg2.Cluster = cl
	res, stats, err := DiscoverContext(context.Background(), ds, ccfg2)
	if err != nil {
		t.Fatalf("distributed discovery failed: %v", err)
	}
	return res, stats
}

// TestDistributedDiscoveryMatchesSingleProcess is the distributed
// differential test: the coordinator's result must be byte-identical to the
// single-process result across worker counts and pipeline variants.
func TestDistributedDiscoveryMatchesSingleProcess(t *testing.T) {
	datasets := map[string]*rdf.Dataset{
		"random": randomDataset(400, 5, 21),
		"skewed": skewedDataset(500, 17),
	}
	variants := []Variant{Standard, DirectExtraction}
	for name, ds := range datasets {
		single, _ := Discover(ds, Config{Support: 2, Workers: 4})
		want := single.Format(ds.Dict)
		for _, v := range variants {
			for _, w := range []int{1, 2, 4} {
				res, stats := runDistributed(t, ds, Config{Support: 2, Variant: v}, w, nil)
				label := fmt.Sprintf("%s %v workers=%d", name, v, w)
				if got := res.Format(ds.Dict); got != want {
					t.Errorf("%s: distributed output diverged from single-process (%d vs %d bytes)",
						label, len(got), len(want))
				}
				if stats.WorkerLosses != 0 || stats.WorkerRespawns != 0 {
					t.Errorf("%s: fault-free run recorded losses=%d respawns=%d",
						label, stats.WorkerLosses, stats.WorkerRespawns)
				}
			}
		}
	}
}

// TestDistributedDiscoverySurvivesWorkerKill injects a process kill at a
// mid-pipeline collective and requires the run to complete via lineage
// re-execution with identical output and the loss accounted in the stats.
func TestDistributedDiscoverySurvivesWorkerKill(t *testing.T) {
	ds := skewedDataset(500, 17)
	single, _ := Discover(ds, Config{Support: 2, Workers: 2})
	want := single.Format(ds.Dict)

	faults := []dataflow.ProcFault{{Seq: 4, Rank: 1, Kind: dataflow.ProcKill}}
	res, stats := runDistributed(t, ds, Config{Support: 2}, 2, faults)
	if got := res.Format(ds.Dict); got != want {
		t.Errorf("post-recovery output diverged from single-process (%d vs %d bytes)",
			len(got), len(want))
	}
	if stats.WorkerLosses != 1 || stats.WorkerRespawns != 1 {
		t.Errorf("loss accounting: losses=%d respawns=%d, want 1/1",
			stats.WorkerLosses, stats.WorkerRespawns)
	}
	if stats.StageRetries == 0 {
		t.Error("worker loss not accounted as a stage retry")
	}
	snap := stats.Snapshot()
	if snap.WorkerLosses != 1 || snap.WorkerRespawns != 1 {
		t.Errorf("snapshot dropped cluster accounting: %+v", snap)
	}
}

// TestDistributedDisablesSpill: cluster and worker modes must zero the spill
// configuration (cross-process shuffles already stream through the
// coordinator; local spilling would break the replay determinism lineage
// recovery depends on).
func TestDistributedDisablesSpill(t *testing.T) {
	cfg := Config{Support: 2, MemoryBudget: 1 << 20, SpillDir: "/tmp/nope", Cluster: nil}
	n := cfg.normalized()
	if n.MemoryBudget != 1<<20 {
		t.Fatal("single-process normalization must keep the budget")
	}
	ds := randomDataset(100, 4, 3)
	res, stats := runDistributed(t, ds, Config{Support: 2, MemoryBudget: 1 << 10, SpillDir: t.TempDir()}, 2, nil)
	if res == nil || stats.SpillPlanned || stats.SpilledBytes != 0 {
		t.Errorf("distributed run engaged the spill path: planned=%v bytes=%d",
			stats.SpillPlanned, stats.SpilledBytes)
	}
}
