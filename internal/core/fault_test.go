package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dataflow"
	"repro/internal/extract"
	"repro/internal/fixtures"
	"repro/internal/rdf"
)

// discoverFormatted runs discovery and canonicalizes the result to its sorted
// textual form, so runs are compared byte for byte.
func discoverFormatted(t *testing.T, ds *rdf.Dataset, cfg Config) string {
	t.Helper()
	res, _, err := TryDiscover(ds, cfg)
	if err != nil {
		t.Fatalf("discovery failed (%v w=%d): %v", cfg.Variant, cfg.Workers, err)
	}
	return res.Format(ds.Dict)
}

// TestFaultEverySingleFaultSchedule is the exhaustive differential test of
// the recovery machinery: a fault-free run is traced, and then every single
// traced site — every stage, worker, and occurrence of the whole pipeline —
// is faulted in turn (alternating transient errors and panics). Each faulted
// run must retry back to a byte-identical result, for every pipeline variant.
func TestFaultEverySingleFaultSchedule(t *testing.T) {
	ds := fixtures.University()
	variants := []Variant{Standard, DirectExtraction, NoFrequentConditions, MinimalFirst}
	if testing.Short() {
		variants = []Variant{Standard, MinimalFirst}
	}
	for _, v := range variants {
		t.Run(v.String(), func(t *testing.T) {
			base := Config{Support: 2, Workers: 2, Variant: v, RetryBackoff: time.Nanosecond}

			tracer := dataflow.NewFaultPlan()
			cfg := base
			cfg.FaultPlan = tracer
			res, _, err := TryDiscover(ds, cfg)
			if err != nil {
				t.Fatalf("fault-free traced run failed: %v", err)
			}
			want := res.Format(ds.Dict)
			sites := tracer.Trace()
			if len(sites) < 20 {
				t.Fatalf("suspiciously small trace (%d sites) — tracer broken?", len(sites))
			}

			for i, s := range sites {
				kind := dataflow.FaultTransient
				if i%2 == 1 {
					kind = dataflow.FaultPanic
				}
				cfg := base
				cfg.FaultPlan = dataflow.NewFaultPlan(dataflow.Fault{
					Stage: s.Stage, Worker: s.Worker, Occurrence: s.Occurrence, Kind: kind,
				})
				res, stats, err := TryDiscover(ds, cfg)
				if err != nil {
					t.Fatalf("site %+v (%v): recoverable fault killed the run: %v", s, kind, err)
				}
				if got := res.Format(ds.Dict); got != want {
					t.Errorf("site %+v (%v): output diverged from fault-free run\ngot:\n%s\nwant:\n%s", s, kind, got, want)
				}
				if fired := cfg.FaultPlan.Fired(); len(fired) != 1 {
					t.Errorf("site %+v: fired %d faults, want exactly 1", s, len(fired))
				}
				if stats.StageRetries < 1 {
					t.Errorf("site %+v: StageRetries = %d, want ≥ 1", s, stats.StageRetries)
				}
			}
			t.Logf("%v: %d single-fault schedules, all byte-identical", v, len(sites))
		})
	}
}

// TestFaultQuickRandomSchedules drives randomized multi-fault schedules
// through every variant under testing/quick: any recoverable schedule must
// reproduce the fault-free output byte for byte.
func TestFaultQuickRandomSchedules(t *testing.T) {
	ds := randomDataset(150, 4, 11)
	type combo struct {
		v Variant
		w int
	}
	combos := []combo{
		{Standard, 3},
		{DirectExtraction, 2},
		{NoFrequentConditions, 2},
		{MinimalFirst, 3},
	}
	const faults = 4
	want := make(map[combo]string, len(combos))
	sites := make(map[combo][]dataflow.Site, len(combos))
	for _, cb := range combos {
		tracer := dataflow.NewFaultPlan()
		cfg := Config{Support: 2, Workers: cb.w, Variant: cb.v,
			RetryBackoff: time.Nanosecond, FaultPlan: tracer}
		want[cb] = discoverFormatted(t, ds, cfg)
		sites[cb] = tracer.Trace()
	}

	prop := func(seed int64) bool {
		ok := true
		for _, cb := range combos {
			plan := dataflow.RandomFaultPlan(seed, sites[cb], faults)
			cfg := Config{Support: 2, Workers: cb.w, Variant: cb.v,
				// Cascading same-site faults consume one attempt each, so the
				// budget must exceed the fault count for guaranteed recovery.
				MaxStageAttempts: faults + 2,
				RetryBackoff:     time.Nanosecond,
				FaultPlan:        plan,
			}
			res, _, err := TryDiscover(ds, cfg)
			if err != nil {
				t.Logf("seed %d %v w=%d: %v", seed, cb.v, cb.w, err)
				ok = false
				continue
			}
			if got := res.Format(ds.Dict); got != want[cb] {
				t.Logf("seed %d %v w=%d: output diverged (faults fired: %+v)", seed, cb.v, cb.w, plan.Fired())
				ok = false
			}
		}
		return ok
	}
	max := 12
	if testing.Short() {
		max = 4
	}
	cfg := &quick.Config{MaxCount: max, Rand: rand.New(rand.NewSource(2016))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestFaultWorkerCountInvarianceUnderFaults: a faulted run must agree with
// the single-worker fault-free run at every parallelism.
func TestFaultWorkerCountInvarianceUnderFaults(t *testing.T) {
	ds := skewedDataset(300, 23)
	want := discoverFormatted(t, ds, Config{Support: 2, Workers: 1})
	for _, w := range []int{1, 3, 5} {
		tracer := dataflow.NewFaultPlan()
		discoverFormatted(t, ds, Config{Support: 2, Workers: w,
			RetryBackoff: time.Nanosecond, FaultPlan: tracer})
		plan := dataflow.RandomFaultPlan(int64(100+w), tracer.Trace(), 3)
		cfg := Config{Support: 2, Workers: w, MaxStageAttempts: 6,
			RetryBackoff: time.Nanosecond, FaultPlan: plan}
		if got := discoverFormatted(t, ds, cfg); got != want {
			t.Errorf("w=%d under faults %+v diverged from fault-free w=1", w, plan.Fired())
		}
	}
}

// TestFaultCancelledContextAborts: a cancelled context must abort discovery
// with an error wrapping context.Canceled and a partial-stats report.
func TestFaultCancelledContextAborts(t *testing.T) {
	ds := skewedDataset(300, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, stats, err := DiscoverContext(ctx, ds, Config{Support: 2, Workers: 2})
	if err == nil {
		t.Fatal("cancelled context did not abort discovery")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want to wrap context.Canceled", err)
	}
	var se *dataflow.StageError
	if !errors.As(err, &se) {
		t.Errorf("err = %T, want a *dataflow.StageError naming the aborted stage", err)
	}
	if res != nil {
		t.Errorf("cancelled run returned a result: %v", res)
	}
	if stats == nil || stats.Triples != ds.Size() {
		t.Errorf("cancelled run must report partial stats (got %+v)", stats)
	}
}

// TestFaultDeadlineExceededSurfaces: an expired deadline surfaces as
// context.DeadlineExceeded, the signal the CLI maps to its timeout exit code.
func TestFaultDeadlineExceededSurfaces(t *testing.T) {
	ds := skewedDataset(300, 5)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // deadline certainly expired
	_, _, err := DiscoverContext(ctx, ds, Config{Support: 2, Workers: 2})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want to wrap context.DeadlineExceeded", err)
	}
}

// TestFaultLoadLimitDegradation: a LoadLimit between the degraded and the
// exact load must downgrade extraction to Bloom work units — reported in
// stats, with a byte-identical result — instead of failing the run.
func TestFaultLoadLimitDegradation(t *testing.T) {
	ds := skewedDataset(400, 7)
	res, stats, err := TryDiscover(ds, Config{Support: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Degraded {
		t.Fatal("unlimited run reported degradation")
	}
	exact := stats.ExtractionLoad
	if exact < 2 {
		t.Fatalf("implausible exact load %d", exact)
	}
	want := res.Format(ds.Dict)

	res2, stats2, err := TryDiscover(ds, Config{Support: 2, Workers: 2, LoadLimit: exact - 1})
	if err != nil {
		t.Fatalf("limit below exact load failed instead of degrading: %v", err)
	}
	if !stats2.Degraded {
		t.Error("run under exact-load limit did not report degradation")
	}
	if stats2.ExtractionLoad >= exact {
		t.Errorf("degraded load %d not below exact load %d", stats2.ExtractionLoad, exact)
	}
	if got := res2.Format(ds.Dict); got != want {
		t.Errorf("degraded run diverged from exact run\ngot:\n%s\nwant:\n%s", got, want)
	}

	// The minimal-first variant degrades too.
	_, mfStats, err := TryDiscover(ds, Config{Support: 2, Workers: 2, Variant: MinimalFirst, LoadLimit: exact - 1})
	if err != nil {
		t.Fatalf("minimal-first failed instead of degrading: %v", err)
	}
	if !mfStats.Degraded {
		t.Error("minimal-first under a tight limit did not report degradation")
	}

	// Direct extraction is defined exact-only: it must fail, never degrade
	// (the paper's Fig. 13 out-of-memory behavior).
	_, deStats, err := TryDiscover(ds, Config{Support: 2, Workers: 2, Variant: DirectExtraction})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = TryDiscover(ds, Config{Support: 2, Workers: 2, Variant: DirectExtraction,
		LoadLimit: deStats.ExtractionLoad - 1})
	if !errors.Is(err, extract.ErrLoadLimit) {
		t.Errorf("RDFind-DE with a tight limit: err = %v, want ErrLoadLimit", err)
	}
}

// TestFaultRetryBudgetExhaustionSurfacesStageError: more same-site faults
// than attempts must end the run with a structured StageError, while the
// partial stats keep what completed before the failure.
func TestFaultRetryBudgetExhaustionSurfacesStageError(t *testing.T) {
	ds := fixtures.University()
	mk := func(occurrences int) *dataflow.FaultPlan {
		fs := make([]dataflow.Fault, occurrences)
		for i := range fs {
			fs[i] = dataflow.Fault{Stage: "cgc/evidences", Worker: 0, Occurrence: i + 1, Kind: dataflow.FaultTransient}
		}
		return dataflow.NewFaultPlan(fs...)
	}
	// Two faults, three attempts: recovers.
	cfg := Config{Support: 2, Workers: 2, MaxStageAttempts: 3,
		RetryBackoff: time.Nanosecond, FaultPlan: mk(2)}
	if _, _, err := TryDiscover(ds, cfg); err != nil {
		t.Fatalf("two faults within a three-attempt budget failed: %v", err)
	}
	// Three faults, three attempts: exhausted.
	cfg.FaultPlan = mk(3)
	res, stats, err := TryDiscover(ds, cfg)
	if err == nil {
		t.Fatal("exhausted retry budget did not surface an error")
	}
	var se *dataflow.StageError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T (%v), want *dataflow.StageError", err, err)
	}
	if se.Stage != "cgc/evidences" || se.Worker != 0 || se.Attempt != 3 {
		t.Errorf("unexpected failure site: %+v", se)
	}
	if res != nil {
		t.Error("failed run returned a result")
	}
	if stats == nil || stats.FrequentUnary == 0 {
		t.Errorf("partial stats must keep the completed FC phase, got %+v", stats)
	}
	// Attempts 1 and 2 each retried worker 0 once; attempt 3 was terminal.
	if stats.StageRetries != 2 {
		t.Errorf("StageRetries = %d, want 2", stats.StageRetries)
	}
}

// TestFaultDiscoverPanicsOnFailure pins Discover's contract: hard failures
// panic (so silent garbage can never be mistaken for a result) while
// TryDiscover reports the same condition as an error.
func TestFaultDiscoverPanicsOnFailure(t *testing.T) {
	ds := fixtures.University()
	plan := dataflow.NewFaultPlan(dataflow.Fault{Stage: "cgc/evidences", Worker: 0, Occurrence: 1, Kind: dataflow.FaultTransient})
	cfg := Config{Support: 2, Workers: 2, MaxStageAttempts: 1, FaultPlan: plan}
	defer func() {
		if recover() == nil {
			t.Error("Discover did not panic on a terminal stage failure")
		}
	}()
	Discover(ds, cfg)
}
