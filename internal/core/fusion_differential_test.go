package core

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/datagen"
)

// TestPropertyDifferentialFusionModes runs the property suite's seeded-random
// datasets through every pipeline variant with fusion on and off and requires
// exactly equal results: fusion is a pure execution-plan change, so the
// discovered CINDs and ARs — including their order — must not move.
func TestPropertyDifferentialFusionModes(t *testing.T) {
	// The comparison is fused-vs-eager, so the baseline must actually fuse
	// regardless of the process-wide default (CI runs a DATAFLOW_FUSION=off leg).
	t.Setenv("DATAFLOW_FUSION", "on")
	seeds := 200
	if testing.Short() || raceDetectorEnabled {
		seeds = 30
	}
	variants := []Variant{Standard, DirectExtraction, NoFrequentConditions, MinimalFirst}
	for seed := 0; seed < seeds; seed++ {
		ds := datagen.Random(int64(seed))
		h := 1 + seed%4
		for _, w := range []int{1, 2, 4} {
			for _, v := range variants {
				cfg := Config{Support: h, Workers: w, Variant: v}
				fused, fusedStats := Discover(ds, cfg)
				cfg.DisableFusion = true
				eager, eagerStats := Discover(ds, cfg)
				label := fmt.Sprintf("seed=%d h=%d %v w=%d", seed, h, v, w)
				if !reflect.DeepEqual(fused, eager) {
					t.Fatalf("%s: fused and unfused results differ\nfused:   %+v\nunfused: %+v", label, fused, eager)
				}
				// Result-derived counters agree too; only the execution plan
				// (stage count, work accounting) may differ.
				if fusedStats.Pertinent != eagerStats.Pertinent || fusedStats.ARs != eagerStats.ARs ||
					fusedStats.BroadCINDs != eagerStats.BroadCINDs || fusedStats.CaptureGroups != eagerStats.CaptureGroups {
					t.Fatalf("%s: result-derived stats diverge: fused %+v, unfused %+v", label, fusedStats, eagerStats)
				}
			}
		}
	}
}

// TestDifferentialFusionFaultReplay injects transient faults at the fused
// pipeline's composite-chain sites (stage names containing '+') and checks
// that the retried fused run still matches a fault-free unfused run — the
// retry contract replays a fused chain from its retained root partitions, so
// faults must stay invisible in the result.
func TestDifferentialFusionFaultReplay(t *testing.T) {
	// Composite-chain fault sites only exist when fusion is on; pin the mode
	// against the CI leg that sets DATAFLOW_FUSION=off.
	t.Setenv("DATAFLOW_FUSION", "on")
	for seed := 0; seed < 8; seed++ {
		ds := datagen.Random(int64(seed))
		h := 1 + seed%3
		base := Config{Support: h, Workers: 2}

		// Trace a fault-free fused run to find its composite-chain sites.
		tracer := dataflow.NewFaultPlan()
		cfgTrace := base
		cfgTrace.FaultPlan = tracer
		want, _ := Discover(ds, cfgTrace)

		var faults []dataflow.Fault
		seen := map[string]bool{}
		for _, site := range tracer.Trace() {
			if site.Occurrence != 1 || !strings.Contains(site.Stage, "+") || seen[site.Stage] {
				continue
			}
			seen[site.Stage] = true
			faults = append(faults, dataflow.Fault{
				Stage:  site.Stage,
				Worker: site.Worker,
				Kind:   dataflow.FaultTransient,
			})
		}
		if len(faults) == 0 {
			t.Fatalf("seed=%d: fused pipeline exposed no composite-chain fault sites", seed)
		}

		cfgFault := base
		cfgFault.FaultPlan = dataflow.NewFaultPlan(faults...)
		cfgFault.MaxStageAttempts = 3
		got, stats := Discover(ds, cfgFault)
		if fired := cfgFault.FaultPlan.Fired(); len(fired) != len(faults) {
			t.Fatalf("seed=%d: %d of %d composite-site faults fired", seed, len(fired), len(faults))
		}
		if stats.StageRetries == 0 {
			t.Errorf("seed=%d: no stage retries recorded despite injected faults", seed)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("seed=%d: faulted fused run diverged from fault-free result", seed)
		}

		// The same faulted fused run also matches a fault-free unfused run.
		cfgEager := base
		cfgEager.DisableFusion = true
		eager, _ := Discover(ds, cfgEager)
		if !reflect.DeepEqual(got, eager) {
			t.Errorf("seed=%d: faulted fused run diverged from unfused result", seed)
		}
	}
}
