package core

import (
	"repro/internal/bloom"
	"repro/internal/capture"
	"repro/internal/cind"
	"repro/internal/dataflow"
	"repro/internal/extract"
)

// minimalFirst implements the alternative strategy discussed in §8.6:
// instead of extracting all broad CINDs and minimizing afterwards, it makes
// multiple passes over the capture groups, extracting one condition-arity
// class per pass and using the previously found CINDs to discard implied
// candidates of the next class.
//
// Pass order follows the implication structure: Ψ1:2 CINDs (unary dependent,
// binary referenced) are always minimal; they kill Ψ1:1 (referenced
// implication) and Ψ2:2 (dependent implication) CINDs; and the full Ψ1:1 and
// Ψ2:2 sets kill Ψ2:1 CINDs. The paper found this strategy up to 3× slower
// than even RDFind-DE — broader CINDs are usually minimal anyway, so the
// extra passes over the groups cost more than they save — and the experiment
// suite reproduces that comparison. The result set is identical to
// Minimize(BroadCINDs(...)).
func minimalFirst(groups *dataflow.Dataset[capture.Group], ecfg extract.Config) ([]cind.CIND, extract.Outcome, error) {
	var total extract.Outcome
	pass := func(dep, ref extract.Arity) ([]cind.CIND, error) {
		cfg := ecfg
		cfg.DepArity, cfg.RefArity = dep, ref
		res, outcome, err := extract.BroadCINDsOutcome(groups, cfg)
		total.EstimatedLoad += outcome.EstimatedLoad
		total.Degraded = total.Degraded || outcome.Degraded
		total.Spilled = total.Spilled || outcome.Spilled
		return res, err
	}

	// Pass 1: Ψ1:2 — all minimal (a unary dependent condition cannot be
	// relaxed; a binary referenced condition cannot be tightened).
	c12, err := pass(extract.UnaryOnly, extract.BinaryOnly)
	if err != nil {
		return nil, total, err
	}

	// The kill indexes derived from Ψ1:2.
	byDep12 := make(map[cind.Inclusion]struct{}, len(c12))  // for Ψ1:1 kills
	incSet12 := make(map[cind.Inclusion]struct{}, len(c12)) // for Ψ2:2 kills
	for _, c := range c12 {
		incSet12[c.Inclusion] = struct{}{}
		for _, u := range c.Ref.Cond.UnaryParts() {
			if !u.Uses(c.Ref.Proj) {
				byDep12[cind.Inclusion{Dep: c.Dep, Ref: cind.Capture{Proj: c.Ref.Proj, Cond: u}}] = struct{}{}
			}
		}
	}

	// Pass 2a: Ψ1:1, killed by referenced implication from Ψ1:2.
	c11, err := pass(extract.UnaryOnly, extract.UnaryOnly)
	if err != nil {
		return nil, total, err
	}
	// Pass 2b: Ψ2:2, killed by dependent implication from Ψ1:2.
	c22, err := pass(extract.BinaryOnly, extract.BinaryOnly)
	if err != nil {
		return nil, total, err
	}

	out := c12
	c11Set := make(map[cind.Inclusion]struct{}, len(c11))
	for _, c := range c11 {
		c11Set[c.Inclusion] = struct{}{}
		if _, killed := byDep12[c.Inclusion]; !killed {
			out = append(out, c)
		}
	}
	tight22 := make(map[cind.Inclusion]struct{}) // Ψ2:2-based kills for Ψ2:1
	for _, c := range c22 {
		for _, u := range c.Ref.Cond.UnaryParts() {
			if !u.Uses(c.Ref.Proj) {
				tight22[cind.Inclusion{Dep: c.Dep, Ref: cind.Capture{Proj: c.Ref.Proj, Cond: u}}] = struct{}{}
			}
		}
		if c.Trivial() {
			continue
		}
		if !depRelaxedIn(c.Inclusion, incSet12) {
			out = append(out, c)
		}
	}

	// Pass 3: Ψ2:1, killed by the full Ψ1:1 and Ψ2:2 sets (kills must use
	// the unminimized sets: implication composes through CINDs that are
	// themselves non-minimal but valid).
	c21, err := pass(extract.BinaryOnly, extract.UnaryOnly)
	if err != nil {
		return nil, total, err
	}
	for _, c := range c21 {
		if c.Trivial() {
			continue
		}
		if _, killed := tight22[c.Inclusion]; killed {
			continue
		}
		if depRelaxedIn(c.Inclusion, c11Set) {
			continue
		}
		out = append(out, c)
	}
	return out, total, nil
}

// depRelaxedIn reports whether relaxing inc's binary dependent condition to
// one of its unary parts yields a statement in the given set or a reflexive
// statement.
func depRelaxedIn(inc cind.Inclusion, set map[cind.Inclusion]struct{}) bool {
	for _, u := range inc.Dep.Cond.UnaryParts() {
		if u.Uses(inc.Dep.Proj) {
			continue
		}
		relaxed := cind.Capture{Proj: inc.Dep.Proj, Cond: u}
		if relaxed == inc.Ref {
			return true
		}
		if _, ok := set[cind.Inclusion{Dep: relaxed, Ref: inc.Ref}]; ok {
			return true
		}
	}
	return false
}

// saturatedFilter returns an always-true membership filter.
func saturatedFilter() *bloom.Filter { return bloom.Saturated() }
