package core

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/dataflow/opt"
	"repro/internal/datagen"
	"repro/internal/fixtures"
)

// The optimizer differential layer: the cost-based planner rewrites plans
// (shared-prefix materialization, pushdown through shuffles) and picks
// execution policies (serial stages, combiner skip, spill bypass), but every
// suite here requires the rendered result — Format output, byte for byte —
// to be identical with the optimizer on and off, across seeds, variants,
// worker counts, injected faults, spilling, and warm profiles.

// TestPropertyDifferentialOptimizerModes runs the property suite's
// seeded-random datasets through every pipeline variant with the optimizer
// on and off and requires byte-identical Format output (and deep equality of
// the results): rewrites and policies must be invisible at the result
// boundary.
func TestPropertyDifferentialOptimizerModes(t *testing.T) {
	// The baseline must actually optimize regardless of the process-wide
	// defaults (CI runs a DATAFLOW_OPTIMIZER=off leg).
	t.Setenv("DATAFLOW_OPTIMIZER", "on")
	seeds := 200
	if testing.Short() || raceDetectorEnabled {
		seeds = 30
	}
	variants := []Variant{Standard, DirectExtraction, NoFrequentConditions, MinimalFirst}
	for seed := 0; seed < seeds; seed++ {
		ds := datagen.Random(int64(seed))
		h := 1 + seed%4
		for _, w := range []int{1, 2, 4} {
			for _, v := range variants {
				cfg := Config{Support: h, Workers: w, Variant: v}
				on, onStats := Discover(ds, cfg)
				cfg.DisableOptimizer = true
				off, offStats := Discover(ds, cfg)
				label := fmt.Sprintf("seed=%d h=%d %v w=%d", seed, h, v, w)
				if got, want := on.Format(ds.Dict), off.Format(ds.Dict); got != want {
					t.Fatalf("%s: optimized and unoptimized Format output differ\noptimized:   %s\nunoptimized: %s", label, got, want)
				}
				if !reflect.DeepEqual(on, off) {
					t.Fatalf("%s: optimized and unoptimized results differ\noptimized:   %+v\nunoptimized: %+v", label, on, off)
				}
				// The planner actually ran (and only there): the optimizer
				// report is the one permitted stats difference.
				if onStats.Optimizer == nil || !onStats.Optimizer.Enabled {
					t.Fatalf("%s: optimized run carries no optimizer report", label)
				}
				if offStats.Optimizer != nil {
					t.Fatalf("%s: optimizer-off run carries an optimizer report", label)
				}
			}
		}
	}
}

// TestDifferentialOptimizerFaultReplay injects transient faults at the
// optimized pipeline's composite fused spans — the spans the shared-prefix
// rewrite creates — and checks that fault sites survive plan rewrites: the
// sites traced on a fault-free optimized run are injectable, the faults fire
// and are retried with attribution, and the faulted optimized run is
// byte-identical both to the fault-free optimized run and to an
// optimizer-off run.
func TestDifferentialOptimizerFaultReplay(t *testing.T) {
	// Composite fault sites and the shared-prefix rewrite only exist on
	// fused chains; pin against the CI leg that sets DATAFLOW_FUSION=off.
	t.Setenv("DATAFLOW_FUSION", "on")
	t.Setenv("DATAFLOW_OPTIMIZER", "on")
	for seed := 0; seed < 8; seed++ {
		ds := datagen.Random(int64(seed))
		h := 1 + seed%3
		base := Config{Support: h, Workers: 2}

		// Trace a fault-free optimized run to find its composite-chain sites.
		tracer := dataflow.NewFaultPlan()
		cfgTrace := base
		cfgTrace.FaultPlan = tracer
		want, wantStats := Discover(ds, cfgTrace)
		if wantStats.Optimizer == nil || !wantStats.Optimizer.Enabled {
			t.Fatalf("seed=%d: traced run was not optimized", seed)
		}

		var faults []dataflow.Fault
		seen := map[string]bool{}
		for _, site := range tracer.Trace() {
			if site.Occurrence != 1 || !strings.Contains(site.Stage, "+") || seen[site.Stage] {
				continue
			}
			seen[site.Stage] = true
			faults = append(faults, dataflow.Fault{
				Stage:  site.Stage,
				Worker: site.Worker,
				Kind:   dataflow.FaultTransient,
			})
		}
		if len(faults) == 0 {
			t.Fatalf("seed=%d: optimized pipeline exposed no composite-chain fault sites", seed)
		}

		cfgFault := base
		cfgFault.FaultPlan = dataflow.NewFaultPlan(faults...)
		cfgFault.MaxStageAttempts = 3
		got, stats := Discover(ds, cfgFault)
		if fired := cfgFault.FaultPlan.Fired(); len(fired) != len(faults) {
			t.Fatalf("seed=%d: %d of %d composite-site faults fired", seed, len(fired), len(faults))
		}
		if stats.StageRetries == 0 {
			t.Errorf("seed=%d: no stage retries recorded despite injected faults", seed)
		}
		// Per-attempt tallies reset on replay: aside from the Retries field,
		// the faulted optimized trace matches the fault-free optimized one.
		if !reflect.DeepEqual(spanSummary(stats.Dataflow.Spans()), spanSummary(wantStats.Dataflow.Spans())) {
			t.Errorf("seed=%d: faulted optimized trace diverged from fault-free trace", seed)
		}

		// The faulted optimized run matches both the fault-free optimized
		// result and an optimizer-off run byte for byte. (Span traces are NOT
		// compared across the optimizer axis: rewrites legitimately move work
		// between spans; results may not move.)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("seed=%d: faulted optimized run diverged from fault-free result", seed)
		}
		cfgOff := base
		cfgOff.DisableOptimizer = true
		off, _ := Discover(ds, cfgOff)
		if gotF, wantF := got.Format(ds.Dict), off.Format(ds.Dict); gotF != wantF {
			t.Errorf("seed=%d: faulted optimized run diverged from optimizer-off result", seed)
		}
	}
}

// TestOptimizerWarmProfileDifferential exercises the self-tuning loop: a
// first run records observations into a shared profile, a second run plans
// against them (profile-tuned model, first-consumer materialization, policy
// rules armed) — and the warm run's output must still be byte-identical to
// an optimizer-off run. The on-disk round trip through ProfileDir is checked
// the same way.
func TestOptimizerWarmProfileDifferential(t *testing.T) {
	// The shared-prefix rule rewrites fused chains; pin against the CI leg
	// that sets DATAFLOW_FUSION=off.
	t.Setenv("DATAFLOW_FUSION", "on")
	t.Setenv("DATAFLOW_OPTIMIZER", "on")
	ds := datagen.Random(42)
	base := Config{Support: 2, Workers: 2}
	off := base
	off.DisableOptimizer = true
	plain, _ := Discover(ds, off)
	want := plain.Format(ds.Dict)

	// In-memory profile shared across runs.
	prof := opt.NewProfile()
	cfg := base
	cfg.Profile = prof
	cold, coldStats := Discover(ds, cfg)
	if coldStats.Optimizer == nil || coldStats.Optimizer.Profiled {
		t.Fatalf("cold run: report=%+v, want enabled and unprofiled", coldStats.Optimizer)
	}
	if got := cold.Format(ds.Dict); got != want {
		t.Fatalf("cold optimized output diverged from optimizer-off output")
	}
	if prof.Len() == 0 {
		t.Fatalf("first run recorded no observations into the shared profile")
	}
	warm, warmStats := Discover(ds, cfg)
	if warmStats.Optimizer == nil || !warmStats.Optimizer.Profiled {
		t.Fatalf("warm run: report=%+v, want profile-tuned", warmStats.Optimizer)
	}
	if got := warm.Format(ds.Dict); got != want {
		t.Fatalf("warm optimized output diverged from optimizer-off output")
	}
	if warmStats.Optimizer.Fired(opt.RuleSharedPrefix) == 0 {
		t.Errorf("warm run did not materialize the remembered shared prefix")
	}

	// On-disk round trip: two runs against a ProfileDir, profile persisted
	// between them, warm output unchanged.
	dir := t.TempDir()
	cfgDir := base
	cfgDir.ProfileDir = dir
	first, _ := Discover(ds, cfgDir)
	if got := first.Format(ds.Dict); got != want {
		t.Fatalf("profile-dir cold output diverged")
	}
	if _, err := os.Stat(filepath.Join(dir, "profile.json")); err != nil {
		t.Fatalf("profile not persisted: %v", err)
	}
	second, secondStats := Discover(ds, cfgDir)
	if got := second.Format(ds.Dict); got != want {
		t.Fatalf("profile-dir warm output diverged")
	}
	if secondStats.Optimizer == nil || !secondStats.Optimizer.Profiled {
		t.Fatalf("profile-dir warm run: report=%+v, want profile-tuned", secondStats.Optimizer)
	}
}

// TestSpillDifferentialOptimizer drives the optimizer across the spill axis:
// under a 1-byte budget every keyed stage spills and the spill-bypass rule
// must never fire, while an unbudgeted warm run may bypass — in all cases
// the output is byte-identical to the optimizer-off result.
func TestSpillDifferentialOptimizer(t *testing.T) {
	t.Setenv("DATAFLOW_OPTIMIZER", "on")
	ds := fixtures.University()
	for _, w := range []int{1, 3} {
		label := fmt.Sprintf("w=%d", w)
		base := Config{Support: 2, Workers: w}
		off := base
		off.DisableOptimizer = true
		plain, _, err := TryDiscover(ds, off)
		if err != nil {
			t.Fatalf("%s optimizer-off: %v", label, err)
		}
		want := plain.Format(ds.Dict)

		prof := opt.NewProfile()
		for run := 0; run < 2; run++ {
			cfg := base
			cfg.MemoryBudget = 1
			cfg.SpillDir = t.TempDir()
			cfg.Profile = prof
			got, stats, err := TryDiscover(ds, cfg)
			if err != nil {
				t.Fatalf("%s run=%d budgeted: %v", label, run, err)
			}
			if gotF := got.Format(ds.Dict); gotF != want {
				t.Errorf("%s run=%d: budgeted optimized output diverged (%d vs %d bytes)",
					label, run, len(gotF), len(want))
			}
			if stats.SpilledBytes == 0 || stats.SpilledRuns == 0 {
				t.Errorf("%s run=%d: 1-byte budget spilled nothing", label, run)
			}
			if stats.Optimizer.Fired(opt.RuleSpillBypass) != 0 {
				t.Errorf("%s run=%d: spill bypass fired under a 1-byte budget", label, run)
			}
		}
	}
}
