//go:build race

package core

// raceDetectorEnabled trims the seed sweeps of the heaviest differential
// suites under the race detector: race-mode CI legs are after data races in
// the engine kernels, which a few dozen seeds expose as well as 200, and the
// full sweep would push the package past go test's per-package timeout.
const raceDetectorEnabled = true
