package core

import (
	"repro/internal/dataflow/opt"
	"repro/internal/metrics"
)

// RunSnapshot is the machine-readable form of a run's statistics: the scalar
// counters of RunStats plus the engine's trace spans and metric registry,
// ready for json.Marshal. cmd/rdfind -json and the benchmark harness both
// emit it, so external tooling sees one schema.
type RunSnapshot struct {
	Triples        int     `json:"triples"`
	FrequentUnary  int     `json:"frequent_unary"`
	FrequentBinary int     `json:"frequent_binary"`
	CaptureGroups  int     `json:"capture_groups"`
	BroadCINDs     int     `json:"broad_cinds"`
	Pertinent      int     `json:"pertinent"`
	ARs            int     `json:"ars"`
	WallMS         float64 `json:"wall_ms"`
	TotalWork      int64   `json:"total_work"`
	CriticalPath   int64   `json:"critical_path"`
	Speedup        float64 `json:"speedup"`
	StageRetries   int     `json:"stage_retries,omitempty"`
	ExtractionLoad int64   `json:"extraction_load,omitempty"`
	Degraded       bool    `json:"degraded,omitempty"`
	// Spill accounting (RunStats.SpillPlanned/SpilledBytes/SpilledRuns/
	// MergePasses); all zero when no memory budget was set or never exceeded.
	SpillPlanned bool  `json:"spill_planned,omitempty"`
	SpilledBytes int64 `json:"spilled_bytes,omitempty"`
	SpilledRuns  int64 `json:"spilled_runs,omitempty"`
	MergePasses  int64 `json:"merge_passes,omitempty"`
	// MaterializedBytes estimates the bytes buffered into partition slices by
	// narrow-operator stages (RunStats.MaterializedBytes); fusion lowers it.
	MaterializedBytes int64 `json:"materialized_bytes,omitempty"`
	// Batches/BatchFill account the columnar batch path across all fused
	// chains (RunStats.Batches/BatchFill); zero on record-at-a-time runs.
	Batches   int64   `json:"batches,omitempty"`
	BatchFill float64 `json:"batch_fill,omitempty"`
	// Cluster fault accounting (RunStats.WorkerLosses/WorkerRespawns/
	// Reconnects); all zero in a single-process run.
	WorkerLosses   int64 `json:"worker_losses,omitempty"`
	WorkerRespawns int64 `json:"worker_respawns,omitempty"`
	Reconnects     int64 `json:"reconnects,omitempty"`
	// Mallocs/AllocBytes are the run's process-wide allocation deltas
	// (RunStats.Mallocs/AllocBytes); zero on snapshots from before the
	// counters existed, so readers treat zero as "not measured".
	Mallocs    uint64 `json:"mallocs,omitempty"`
	AllocBytes uint64 `json:"alloc_bytes,omitempty"`

	// Optimizer is the plan optimizer's run report (RunStats.Optimizer):
	// enabled/profiled flags, the cost model used, and every rewrite rule and
	// per-stage policy chosen. Absent when the optimizer was off.
	Optimizer *opt.Report `json:"optimizer,omitempty"`

	Spans   []metrics.Span           `json:"spans,omitempty"`
	Metrics metrics.RegistrySnapshot `json:"metrics,omitzero"`
}

// Snapshot freezes the run statistics into their serializable form. The spans
// and registry are copied from the dataflow engine; a RunStats without an
// engine (hand-built in tests) yields empty trace fields.
func (s *RunStats) Snapshot() *RunSnapshot {
	snap := &RunSnapshot{
		Triples:           s.Triples,
		FrequentUnary:     s.FrequentUnary,
		FrequentBinary:    s.FrequentBinary,
		CaptureGroups:     s.CaptureGroups,
		BroadCINDs:        s.BroadCINDs,
		Pertinent:         s.Pertinent,
		ARs:               s.ARs,
		WallMS:            float64(s.Duration.Nanoseconds()) / 1e6,
		StageRetries:      s.StageRetries,
		ExtractionLoad:    s.ExtractionLoad,
		Degraded:          s.Degraded,
		SpillPlanned:      s.SpillPlanned,
		SpilledBytes:      s.SpilledBytes,
		SpilledRuns:       s.SpilledRuns,
		MergePasses:       s.MergePasses,
		MaterializedBytes: s.MaterializedBytes,
		Batches:           s.Batches,
		BatchFill:         s.BatchFill,
		WorkerLosses:      s.WorkerLosses,
		WorkerRespawns:    s.WorkerRespawns,
		Reconnects:        s.Reconnects,
		Mallocs:           s.Mallocs,
		AllocBytes:        s.AllocBytes,
		Optimizer:         s.Optimizer,
		Speedup:           1,
	}
	if s.Dataflow != nil {
		snap.TotalWork = s.Dataflow.TotalWork()
		snap.CriticalPath = s.Dataflow.CriticalPath()
		snap.Speedup = s.Dataflow.Speedup()
		snap.Spans = s.Dataflow.Spans()
		snap.Metrics = s.Dataflow.Metrics().Snapshot()
	}
	return snap
}
