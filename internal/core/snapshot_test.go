package core

import (
	"encoding/json"
	"testing"

	"repro/internal/datagen"
	"repro/internal/metrics"
)

// TestSnapshotReconciles pins the observability contract: the snapshot's span
// accounting agrees with the engine's work totals, the domain counters
// recorded by the pipeline phases match the scalar statistics, and the whole
// thing survives a JSON round-trip.
func TestSnapshotReconciles(t *testing.T) {
	ds := datagen.Countries(0.05)
	_, stats := Discover(ds, Config{Support: 2, Workers: 2})
	snap := stats.Snapshot()

	if snap.TotalWork != stats.Dataflow.TotalWork() {
		t.Errorf("snapshot total work %d != stats %d", snap.TotalWork, stats.Dataflow.TotalWork())
	}
	if got := metrics.TotalRecordsIn(snap.Spans); got != snap.TotalWork {
		t.Errorf("span records-in %d != total work %d", got, snap.TotalWork)
	}
	if snap.Speedup <= 0 {
		t.Errorf("speedup = %v", snap.Speedup)
	}

	m := snap.Metrics
	if got := m.Counters["fc.frequent.unary"]; got != int64(snap.FrequentUnary) {
		t.Errorf("fc.frequent.unary counter %d != stat %d", got, snap.FrequentUnary)
	}
	if got := m.Counters["fc.frequent.binary"]; got != int64(snap.FrequentBinary) {
		t.Errorf("fc.frequent.binary counter %d != stat %d", got, snap.FrequentBinary)
	}
	if got := m.Counters["capture.groups"]; got != int64(snap.CaptureGroups) {
		t.Errorf("capture.groups counter %d != stat %d", got, snap.CaptureGroups)
	}
	if got := m.Counters["extract.broad_cinds"]; got != int64(snap.BroadCINDs) {
		t.Errorf("extract.broad_cinds counter %d != stat %d", got, snap.BroadCINDs)
	}
	if got := m.Counters["extract.load.estimated"]; got != snap.ExtractionLoad {
		t.Errorf("extract.load.estimated counter %d != stat %d", got, snap.ExtractionLoad)
	}
	if m.Histograms["dataflow.stage.wall_ms"].Count != int64(len(snap.Spans)) {
		t.Errorf("latency histogram count %d != %d spans",
			m.Histograms["dataflow.stage.wall_ms"].Count, len(snap.Spans))
	}

	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back RunSnapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.TotalWork != snap.TotalWork || back.Pertinent != snap.Pertinent || len(back.Spans) != len(snap.Spans) {
		t.Errorf("JSON round-trip changed the snapshot: %+v", back)
	}
}

// TestSnapshotWithoutEngine covers hand-built statistics (no dataflow run).
func TestSnapshotWithoutEngine(t *testing.T) {
	snap := (&RunStats{Triples: 3}).Snapshot()
	if snap.Speedup != 1 || snap.TotalWork != 0 || len(snap.Spans) != 0 {
		t.Errorf("engineless snapshot = %+v", snap)
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatal(err)
	}
}
