package core

import (
	"context"
	"encoding/binary"
	"fmt"

	"repro/internal/cind"
	"repro/internal/dataflow"
	"repro/internal/rdf"
	"repro/internal/source"
)

// This file roots the pipeline on the streaming source layer. Three roles
// share one deterministic driver:
//
//   - Single-process: the files are streamed in canonical document order,
//     the dictionary grows incrementally block by block, and each triple is
//     placed into its partition by the Partitioner as it arrives. Nothing
//     but the encoded triples and the dictionary is ever resident.
//
//   - Worker rank r of a cluster: r streams only the files assigned to it
//     (file i goes to rank i mod workers), building a per-file term table
//     and per-file triples encoded against it. The dictionary-merge
//     collective — one gather of every rank's per-file tables — lets every
//     process replay the canonical document-order interning locally, so all
//     ranks agree on the global dictionary without any process having read
//     the whole input. The rank then remaps its triples to global IDs and a
//     placement shuffle routes them to their Partitioner-chosen homes.
//
//   - Coordinator: contributes nothing, consumes the dictionary-merge
//     gather (it needs the dictionary to canonicalize results), and passes
//     all-nil partitions to the dataflow root — it never materializes a
//     single triple, which IngestStats.LocalTriples asserts.
//
// Tables are gathered per file, not per rank: with files interleaved across
// ranks, rank-level tables would intern terms in rank order, not document
// order, and the IDs would diverge from a sequential read. Keying by global
// file index keeps the merge exactly the one mergeShards performs in
// memory, so the Source differential suite can demand byte-identical
// dictionaries across every ingest mode.

// tripleCodec ships rdf.Triple over the wire for the placement shuffle.
type tripleCodec struct{}

func (tripleCodec) AppendValue(dst []byte, t rdf.Triple) []byte {
	dst = binary.AppendUvarint(dst, uint64(t.S))
	dst = binary.AppendUvarint(dst, uint64(t.P))
	return binary.AppendUvarint(dst, uint64(t.O))
}

func (tripleCodec) DecodeValue(src []byte) rdf.Triple {
	s, n := binary.Uvarint(src)
	p, m := binary.Uvarint(src[n:])
	o, _ := binary.Uvarint(src[n+m:])
	return rdf.Triple{S: rdf.Value(s), P: rdf.Value(p), O: rdf.Value(o)}
}

func init() {
	dataflow.RegisterValueCodec[rdf.Triple](tripleCodec{})
}

// DiscoverSource runs the selected pipeline over a streamed source spec:
// the streaming counterpart of DiscoverContext, returning the global
// dictionary alongside the result (the caller holds no Dataset to read it
// from). In cluster mode every worker loads its own file assignment and the
// coordinator never materializes the dataset; output is byte-identical to a
// single-process in-memory run over the same files, which the Source
// differential suite pins across worker counts, partitioners, and chaos
// plans.
func DiscoverSource(ctx context.Context, spec source.Spec, cfg Config) (*cind.Result, *rdf.Dictionary, *RunStats, error) {
	cfg = cfg.normalized()
	resolved, err := spec.Resolve()
	if err != nil {
		return nil, nil, &RunStats{}, err
	}
	part := cfg.Partitioner
	if part == nil {
		part = source.HashPartitioner{}
	}
	h := newHarness(ctx, cfg)
	ing := &IngestStats{Files: len(resolved.Files), Partitioner: part.Name()}
	h.stats.Ingest = ing

	var triples *dataflow.Dataset[rdf.Triple]
	var dict *rdf.Dictionary
	if h.dfctx.Distributed() {
		triples, dict, err = ingestDistributed(h, resolved, part, ing)
	} else {
		triples, dict, err = ingestLocal(h, resolved, part, ing)
	}
	if err != nil {
		_, stats, _ := h.finish(err)
		return nil, dict, stats, err
	}
	h.stats.Triples = int(sum(ing.PerRank))
	res, stats, err := h.run(triples, dict)
	return res, dict, stats, err
}

func sum(ns []int64) int64 {
	var t int64
	for _, n := range ns {
		t += n
	}
	return t
}

// ingestLocal streams every file in document order, growing the dictionary
// incrementally and placing each triple as its block arrives.
func ingestLocal(h *harness, resolved *source.Resolved, part source.Partitioner, ing *IngestStats) (*dataflow.Dataset[rdf.Triple], *rdf.Dictionary, error) {
	workers := h.dfctx.Workers()
	dict := rdf.NewDictionary()
	parts := make([][]rdf.Triple, workers)
	var remap []rdf.Value
	for i := range resolved.Files {
		path := resolved.Files[i].Path
		err := resolved.StreamFile(i, func(blk *rdf.TermBlock) error {
			remap = remap[:0]
			for _, term := range blk.Terms {
				remap = append(remap, dict.Encode(term))
			}
			for _, bt := range blk.Triples {
				t := rdf.Triple{S: remap[bt.S], P: remap[bt.P], O: remap[bt.O]}
				parts[part.Place(t, workers)] = append(parts[part.Place(t, workers)], t)
			}
			for _, e := range blk.Errs {
				ing.Skipped = append(ing.Skipped, source.Malformed{Path: path, Err: e})
			}
			return nil
		})
		if err != nil {
			return nil, dict, err
		}
	}
	ing.PerRank = make([]int64, workers)
	for w, p := range parts {
		ing.PerRank[w] = int64(len(p))
		ing.LocalTriples += int64(len(p))
	}
	ing.SkippedLines = int64(len(ing.Skipped))
	// The root span keeps the in-memory path's name so trace snapshots,
	// optimizer profiles, and bench baselines stay comparable across ingest
	// modes.
	return dataflow.FromPartitions(h.dfctx, "input", parts, nil), dict, nil
}

// fileTable is one input file's ingest summary: its term table in
// first-occurrence order plus counts. On the loading rank it also carries
// the file's triples, encoded against the table.
type fileTable struct {
	index   int
	terms   []string
	triples []rdf.BlockTriple // loading rank only; nil after decode
	ntrips  int64
	skipped int64
}

// ingestDistributed is the worker-local ingest driver, executed in lockstep
// by the coordinator and every worker rank.
func ingestDistributed(h *harness, resolved *source.Resolved, part source.Partitioner, ing *IngestStats) (*dataflow.Dataset[rdf.Triple], *rdf.Dictionary, error) {
	c := h.dfctx
	workers := c.Workers()
	rank := c.Rank()
	ing.Distributed, ing.Rank = true, rank

	// A worker streams its assigned files (file i → rank i mod workers); the
	// coordinator streams nothing and contributes an empty body.
	var local []*fileTable
	var body []byte
	if rank >= 0 {
		for i := range resolved.Files {
			if i%workers != rank {
				continue
			}
			ft, err := loadFileTable(resolved, i)
			if err != nil {
				return nil, nil, err
			}
			local = append(local, ft)
			body = ft.append(body)
		}
	}

	// Dictionary-merge collective: every process receives every rank's
	// per-file tables and replays the canonical document-order interning.
	blobs, ok := dataflow.Gather(c, "source/dict", body)
	if !ok {
		return nil, nil, c.Err()
	}
	tables := make([]*fileTable, len(resolved.Files))
	for _, ft := range local {
		tables[ft.index] = ft // keep the local triples; decode would drop them
	}
	for r, blob := range blobs {
		if r == rank {
			continue
		}
		fts, err := decodeFileTables(blob)
		if err != nil {
			return nil, nil, fmt.Errorf("core: dictionary merge from rank %d: %w", r, err)
		}
		for _, ft := range fts {
			if ft.index < 0 || ft.index >= len(tables) || tables[ft.index] != nil {
				return nil, nil, fmt.Errorf("core: dictionary merge from rank %d: bad file index %d", r, ft.index)
			}
			tables[ft.index] = ft
		}
	}
	dict := rdf.NewDictionary()
	counts := make([]int64, workers)
	var skipped int64
	for i, ft := range tables {
		if ft == nil {
			return nil, nil, fmt.Errorf("core: dictionary merge: no table for file %d", i)
		}
		for _, term := range ft.terms {
			dict.Encode(term)
		}
		counts[i%workers] += ft.ntrips
		skipped += ft.skipped
	}

	// The loading rank remaps its file-local triples to global IDs, walking
	// its files in document order; everyone else roots empty partitions with
	// the gathered counts so span accounting still covers the whole input.
	parts := make([][]rdf.Triple, workers)
	if rank >= 0 {
		mine := make([]rdf.Triple, 0, counts[rank])
		var remap []rdf.Value
		for _, ft := range local {
			remap = remap[:0]
			for _, term := range ft.terms {
				id, ok := dict.Lookup(term)
				if !ok {
					return nil, nil, fmt.Errorf("core: dictionary merge lost term %q", term)
				}
				remap = append(remap, id)
			}
			for _, bt := range ft.triples {
				mine = append(mine, rdf.Triple{S: remap[bt.S], P: remap[bt.P], O: remap[bt.O]})
			}
			ft.triples = nil
		}
		parts[rank] = mine
		ing.LocalTriples = int64(len(mine))
	}
	ing.PerRank = counts
	ing.SkippedLines = skipped

	triples := dataflow.FromPartitions(c, "input", parts, counts)
	placed := dataflow.PartitionBy(triples, "source/place", func(t rdf.Triple) int {
		return part.Place(t, workers)
	})
	for _, sp := range c.Stats().Spans() {
		if sp.Name == "source/place" {
			ing.ShuffleBytes = sp.ShuffleBytes
		}
	}
	return placed, dict, c.Err()
}

// loadFileTable streams one file into a file-local term table.
func loadFileTable(resolved *source.Resolved, i int) (*fileTable, error) {
	ft := &fileTable{index: i}
	byTerm := map[string]uint32{}
	var remap []uint32
	err := resolved.StreamFile(i, func(blk *rdf.TermBlock) error {
		remap = remap[:0]
		for _, term := range blk.Terms {
			id, ok := byTerm[term]
			if !ok {
				id = uint32(len(ft.terms))
				byTerm[term] = id
				ft.terms = append(ft.terms, term)
			}
			remap = append(remap, id)
		}
		for _, bt := range blk.Triples {
			ft.triples = append(ft.triples, rdf.BlockTriple{
				S: remap[bt.S], P: remap[bt.P], O: remap[bt.O],
			})
		}
		ft.skipped += int64(len(blk.Errs))
		return nil
	})
	if err != nil {
		return nil, err
	}
	ft.ntrips = int64(len(ft.triples))
	return ft, nil
}

// append encodes the table (index, counts, and terms — not the triples,
// which never leave the loading rank) onto dst for the dictionary-merge
// gather.
func (ft *fileTable) append(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(ft.index))
	dst = binary.AppendUvarint(dst, uint64(ft.ntrips))
	dst = binary.AppendUvarint(dst, uint64(ft.skipped))
	dst = binary.AppendUvarint(dst, uint64(len(ft.terms)))
	for _, term := range ft.terms {
		dst = binary.AppendUvarint(dst, uint64(len(term)))
		dst = append(dst, term...)
	}
	return dst
}

// decodeFileTables decodes one rank's gathered contribution.
func decodeFileTables(src []byte) ([]*fileTable, error) {
	var out []*fileTable
	for len(src) > 0 {
		ft := &fileTable{}
		var vals [4]uint64
		for i := range vals {
			v, n := binary.Uvarint(src)
			if n <= 0 {
				return nil, fmt.Errorf("truncated file table header")
			}
			vals[i] = v
			src = src[n:]
		}
		ft.index = int(vals[0])
		ft.ntrips = int64(vals[1])
		ft.skipped = int64(vals[2])
		nterms := int(vals[3])
		ft.terms = make([]string, 0, nterms)
		for t := 0; t < nterms; t++ {
			l, n := binary.Uvarint(src)
			if n <= 0 || uint64(len(src)-n) < l {
				return nil, fmt.Errorf("truncated term")
			}
			ft.terms = append(ft.terms, string(src[n:n+int(l)]))
			src = src[n+int(l):]
		}
		out = append(out, ft)
	}
	return out, nil
}
