package core

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/cind"
	"repro/internal/dataflow"
	"repro/internal/rdf"
	"repro/internal/source"
)

// writeSplitNT serializes ds as nfiles contiguous N-Triples slices under
// dir, named so their sorted order reproduces document order. The returned
// glob matches exactly those files.
func writeSplitNT(t *testing.T, ds *rdf.Dataset, dir string, nfiles int) string {
	t.Helper()
	base, rem := len(ds.Triples)/nfiles, len(ds.Triples)%nfiles
	lo := 0
	for i := 0; i < nfiles; i++ {
		hi := lo + base
		if i < rem {
			hi++
		}
		part := &rdf.Dataset{Dict: ds.Dict, Triples: ds.Triples[lo:hi]}
		lo = hi
		var buf bytes.Buffer
		if err := rdf.WriteNTriples(&buf, part); err != nil {
			t.Fatalf("WriteNTriples: %v", err)
		}
		path := filepath.Join(dir, fmt.Sprintf("part-%02d.nt", i))
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
	}
	return filepath.Join(dir, "part-*.nt")
}

// slurpBaseline reads the resolved files through the legacy slurp reader
// (concatenated in canonical order) and discovers over the result: the
// pre-streaming ingest path every streamed mode must match byte for byte.
func slurpBaseline(t *testing.T, spec source.Spec, cfg Config) (string, *rdf.Dataset) {
	t.Helper()
	resolved, err := spec.Resolve()
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	var concat bytes.Buffer
	for _, f := range resolved.Files {
		b, err := os.ReadFile(f.Path)
		if err != nil {
			t.Fatalf("ReadFile: %v", err)
		}
		concat.Write(b)
	}
	ds, err := rdf.ReadNTriples(&concat)
	if err != nil {
		t.Fatalf("ReadNTriples: %v", err)
	}
	res, _ := Discover(ds, cfg)
	return res.Format(ds.Dict), ds
}

// sameDict fails unless the two dictionaries issued identical IDs.
func sameDict(t *testing.T, label string, got, want *rdf.Dictionary) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Errorf("%s: dictionary size %d, want %d", label, got.Len(), want.Len())
		return
	}
	for id := 0; id < want.Len(); id++ {
		if g, w := got.Decode(rdf.Value(id)), want.Decode(rdf.Value(id)); g != w {
			t.Errorf("%s: dictionary ID %d = %q, want %q", label, id, g, w)
			return
		}
	}
}

// runDistributedSource executes one streamed-source discovery on an
// in-process cluster: every worker resolves the same spec and loads only its
// own file assignment; the coordinator holds no triples. Returns the
// coordinator's result, dictionary, and stats.
func runDistributedSource(t *testing.T, spec source.Spec, cfg Config, workers int, faults []dataflow.ProcFault) (*cind.Result, *rdf.Dictionary, *RunStats) {
	t.Helper()
	addr := filepath.Join(t.TempDir(), "coord.sock")
	var wg sync.WaitGroup
	ccfg := dataflow.ClusterConfig{
		Workers:           workers,
		Network:           "unix",
		Addr:              addr,
		ProcFaults:        faults,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatDeadline: time.Second,
		Spawn: func(rank int) error {
			wg.Add(1)
			go func() {
				defer wg.Done()
				w, err := dataflow.DialWorker("unix", addr, rank)
				if err != nil {
					return
				}
				defer w.Close()
				wcfg := cfg
				wcfg.WorkerConn = w
				if _, _, _, err := DiscoverSource(context.Background(), spec, wcfg); err == nil {
					w.Goodbye()
				}
			}()
			return nil
		},
	}
	cl, err := dataflow.StartCluster(ccfg)
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	defer wg.Wait()
	defer cl.Close()
	ccfg2 := cfg
	ccfg2.Cluster = cl
	res, dict, stats, err := DiscoverSource(context.Background(), spec, ccfg2)
	if err != nil {
		t.Fatalf("distributed source discovery failed: %v", err)
	}
	return res, dict, stats
}

// TestSourceSingleProcessMatchesSlurp: streamed single-process ingest over
// split files must reproduce the legacy slurp reader byte for byte —
// result and dictionary — across partitioners, shard counts, and block
// geometries.
func TestSourceSingleProcessMatchesSlurp(t *testing.T) {
	ds := skewedDataset(500, 17)
	dir := t.TempDir()
	glob := writeSplitNT(t, ds, dir, 3)
	cfg := Config{Support: 2, Workers: 4}
	want, wantDS := slurpBaseline(t, source.Spec{Inputs: []string{glob}}, cfg)

	for _, part := range []string{"hash", "subject"} {
		for _, shards := range []int{1, 4} {
			for _, blockBytes := range []int{64, 1 << 20} {
				label := fmt.Sprintf("part=%s shards=%d block=%d", part, shards, blockBytes)
				p, err := source.ByName(part)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				scfg := cfg
				scfg.Partitioner = p
				spec := source.Spec{Inputs: []string{glob}, Shards: shards, BlockBytes: blockBytes}
				res, dict, stats, err := DiscoverSource(context.Background(), spec, scfg)
				if err != nil {
					t.Fatalf("%s: DiscoverSource: %v", label, err)
				}
				if got := res.Format(dict); got != want {
					t.Errorf("%s: streamed output diverged from slurp (%d vs %d bytes)",
						label, len(got), len(want))
				}
				sameDict(t, label, dict, wantDS.Dict)
				if stats.Ingest == nil || stats.Ingest.Files != 3 {
					t.Errorf("%s: ingest stats missing or wrong file count: %+v", label, stats.Ingest)
				}
				if stats.Ingest.LocalTriples != int64(len(ds.Triples)) {
					t.Errorf("%s: LocalTriples = %d, want %d",
						label, stats.Ingest.LocalTriples, len(ds.Triples))
				}
			}
		}
	}
}

// TestSourceClusterMatchesSingleProcess: worker-local cluster ingest must
// agree byte for byte with the slurp baseline at every worker count and
// partitioner, with the coordinator never materializing a triple.
func TestSourceClusterMatchesSingleProcess(t *testing.T) {
	ds := skewedDataset(500, 17)
	dir := t.TempDir()
	glob := writeSplitNT(t, ds, dir, 5)
	cfg := Config{Support: 2}
	want, wantDS := slurpBaseline(t, source.Spec{Inputs: []string{glob}}, Config{Support: 2, Workers: 4})

	for _, part := range []string{"hash", "subject"} {
		for _, w := range []int{1, 2, 4} {
			label := fmt.Sprintf("part=%s workers=%d", part, w)
			p, err := source.ByName(part)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			ccfg := cfg
			ccfg.Partitioner = p
			spec := source.Spec{Inputs: []string{glob}}
			res, dict, stats := runDistributedSource(t, spec, ccfg, w, nil)
			if got := res.Format(dict); got != want {
				t.Errorf("%s: cluster output diverged from slurp (%d vs %d bytes)",
					label, len(got), len(want))
			}
			sameDict(t, label, dict, wantDS.Dict)
			ing := stats.Ingest
			if ing == nil {
				t.Fatalf("%s: no ingest stats", label)
			}
			if ing.LocalTriples != 0 {
				t.Errorf("%s: coordinator materialized %d triples, want 0", label, ing.LocalTriples)
			}
			var total int64
			for _, n := range ing.PerRank {
				total += n
			}
			if total != int64(len(ds.Triples)) {
				t.Errorf("%s: per-rank counts sum to %d, want %d", label, total, len(ds.Triples))
			}
			if part == "hash" && w > 1 && ing.ShuffleBytes == 0 {
				t.Errorf("%s: placement shuffle recorded no bytes", label)
			}
		}
	}
}

// TestSourceClusterSurvivesWorkerKillDuringIngest injects process kills at
// the ingest collectives themselves — the dictionary-merge gather (seq 0)
// and the placement shuffle (seq 1) — and requires recovery with
// byte-identical output.
func TestSourceClusterSurvivesWorkerKillDuringIngest(t *testing.T) {
	ds := skewedDataset(500, 17)
	dir := t.TempDir()
	glob := writeSplitNT(t, ds, dir, 4)
	want, wantDS := slurpBaseline(t, source.Spec{Inputs: []string{glob}}, Config{Support: 2, Workers: 2})

	for _, seq := range []int{0, 1} {
		label := fmt.Sprintf("kill:1@%d", seq)
		faults := []dataflow.ProcFault{{Seq: seq, Rank: 1, Kind: dataflow.ProcKill}}
		res, dict, stats := runDistributedSource(t, source.Spec{Inputs: []string{glob}},
			Config{Support: 2}, 2, faults)
		if got := res.Format(dict); got != want {
			t.Errorf("%s: post-recovery output diverged (%d vs %d bytes)", label, len(got), len(want))
		}
		sameDict(t, label, dict, wantDS.Dict)
		if stats.WorkerLosses != 1 || stats.WorkerRespawns != 1 {
			t.Errorf("%s: loss accounting: losses=%d respawns=%d, want 1/1",
				label, stats.WorkerLosses, stats.WorkerRespawns)
		}
	}
}

// TestSourceLenientParity: streamed lenient ingest must skip exactly the
// lines the legacy lenient reader skips, and report them attributed to
// their file.
func TestSourceLenientParity(t *testing.T) {
	ds := skewedDataset(200, 7)
	dir := t.TempDir()
	glob := writeSplitNT(t, ds, dir, 2)
	// Dirty one file with malformed lines.
	dirty := filepath.Join(dir, "part-00.nt")
	b, err := os.ReadFile(dirty)
	if err != nil {
		t.Fatal(err)
	}
	b = append(b, []byte("this is not a triple\n<only> <two> .\n")...)
	if err := os.WriteFile(dirty, b, 0o644); err != nil {
		t.Fatal(err)
	}

	spec := source.Spec{Inputs: []string{glob}, Lenient: true}
	res, dict, stats, err := DiscoverSource(context.Background(), spec, Config{Support: 2, Workers: 2})
	if err != nil {
		t.Fatalf("DiscoverSource: %v", err)
	}
	if stats.Ingest.SkippedLines != 2 || len(stats.Ingest.Skipped) != 2 {
		t.Fatalf("skipped = %d lines %d detail, want 2/2: %v",
			stats.Ingest.SkippedLines, len(stats.Ingest.Skipped), stats.Ingest.Skipped)
	}
	for _, m := range stats.Ingest.Skipped {
		if m.Path != dirty {
			t.Errorf("skipped line attributed to %s, want %s", m.Path, dirty)
		}
	}

	// Legacy lenient baseline over the same concatenation.
	resolved, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	var concat bytes.Buffer
	for _, f := range resolved.Files {
		raw, err := os.ReadFile(f.Path)
		if err != nil {
			t.Fatal(err)
		}
		concat.Write(raw)
	}
	legacy, skipped, err := rdf.ReadNTriplesLenient(&concat, 0)
	if err != nil {
		t.Fatalf("ReadNTriplesLenient: %v", err)
	}
	if len(skipped) != 2 {
		t.Fatalf("legacy reader skipped %d lines, want 2", len(skipped))
	}
	lres, _ := Discover(legacy, Config{Support: 2, Workers: 2})
	if got, want := res.Format(dict), lres.Format(legacy.Dict); got != want {
		t.Errorf("lenient streamed output diverged from legacy (%d vs %d bytes)",
			len(got), len(want))
	}
	sameDict(t, "lenient", dict, legacy.Dict)
}
