package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/rdf"
)

// TestSpillDifferential: a memory budget far below the working set must not
// change a single bit of the output. Every variant — including NF, whose
// saturated frequent-condition filters ride through the capture codecs — is
// run budgeted and unbudgeted at several worker counts; results are compared
// with DeepEqual on the sorted CIND and AR slices, i.e. byte-identical.
func TestSpillDifferential(t *testing.T) {
	datasets := map[string]*rdf.Dataset{
		"table1": fixtures.University(),
		"skewed": skewedDataset(400, 7),
	}
	variants := []Variant{Standard, DirectExtraction, NoFrequentConditions, MinimalFirst}
	for name, ds := range datasets {
		for _, v := range variants {
			for _, w := range []int{1, 2, 4} {
				label := fmt.Sprintf("%s %v w=%d", name, v, w)
				want, _, err := TryDiscover(ds, Config{Support: 2, Workers: w, Variant: v})
				if err != nil {
					t.Fatalf("%s unbudgeted: %v", label, err)
				}
				got, stats, err := TryDiscover(ds, Config{
					Support: 2, Workers: w, Variant: v,
					MemoryBudget: 1, SpillDir: t.TempDir(),
				})
				if err != nil {
					t.Fatalf("%s budgeted: %v", label, err)
				}
				if !reflect.DeepEqual(got.CINDs, want.CINDs) {
					t.Errorf("%s: budgeted CINDs diverged (%d vs %d)", label, len(got.CINDs), len(want.CINDs))
				}
				if !reflect.DeepEqual(got.ARs, want.ARs) {
					t.Errorf("%s: budgeted ARs diverged (%d vs %d)", label, len(got.ARs), len(want.ARs))
				}
				if stats.SpilledBytes == 0 || stats.SpilledRuns == 0 {
					t.Errorf("%s: 1-byte budget spilled nothing (%d bytes / %d runs)",
						label, stats.SpilledBytes, stats.SpilledRuns)
				}
			}
		}
	}
}

// TestSpillStatsQuietWithoutBudget: an unbudgeted run reports zero spill
// activity and does not materialize spill counters in the registry snapshot.
func TestSpillStatsQuietWithoutBudget(t *testing.T) {
	_, stats, err := TryDiscover(fixtures.University(), Config{Support: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SpilledBytes != 0 || stats.SpilledRuns != 0 || stats.MergePasses != 0 || stats.SpillPlanned {
		t.Errorf("unbudgeted run reports spill activity: %+v", stats)
	}
	if _, ok := stats.Dataflow.Metrics().Snapshot().Counters["dataflow.spill.bytes"]; ok {
		t.Error("unbudgeted run materialized dataflow.spill.bytes in the registry")
	}
	snap := stats.Snapshot()
	if snap.SpillPlanned || snap.SpilledBytes != 0 {
		t.Errorf("snapshot reports spill activity: %+v", snap)
	}
}

// TestSpillAbsorbsLoadLimit: with a memory budget configured, a LoadLimit
// breach no longer degrades or fails — the exact plan runs on the spill path
// and the breach is only recorded. Results still match the unlimited run.
func TestSpillAbsorbsLoadLimit(t *testing.T) {
	ds := skewedDataset(400, 7)
	want, _, err := TryDiscover(ds, Config{Support: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Without a budget this limit fails outright (see TestLoadLimit).
	res, stats, err := TryDiscover(ds, Config{
		Support: 2, Workers: 2, LoadLimit: 10,
		MemoryBudget: 1 << 10, SpillDir: t.TempDir(),
	})
	if err != nil {
		t.Fatalf("budgeted run hit the load limit: %v", err)
	}
	if !stats.SpillPlanned {
		t.Error("LoadLimit breach not recorded as spill-planned")
	}
	if stats.Degraded {
		t.Error("budgeted run degraded to Bloom work units; spill should take precedence")
	}
	if !reflect.DeepEqual(res.CINDs, want.CINDs) || !reflect.DeepEqual(res.ARs, want.ARs) {
		t.Error("spill-planned run diverged from the unlimited run")
	}
	if c := stats.Dataflow.Metrics().Snapshot().Counters["extract.spill_planned_runs"]; c == 0 {
		t.Error("extract.spill_planned_runs counter is zero")
	}

	// Minimal-first breaches per pass and must absorb them the same way.
	mf, mfStats, err := TryDiscover(ds, Config{
		Support: 2, Workers: 2, Variant: MinimalFirst, LoadLimit: 10,
		MemoryBudget: 1 << 10, SpillDir: t.TempDir(),
	})
	if err != nil {
		t.Fatalf("budgeted minimal-first hit the load limit: %v", err)
	}
	if !mfStats.SpillPlanned {
		t.Error("minimal-first breach not recorded as spill-planned")
	}
	if !reflect.DeepEqual(mf.CINDs, want.CINDs) {
		t.Error("spill-planned minimal-first diverged from the unlimited run")
	}
}

// TestSpillDirImpliesBudget: naming a spill directory without a budget
// selects the 256 MiB default, which is plenty for the fixture — the run
// must succeed without writing a byte.
func TestSpillDirImpliesBudget(t *testing.T) {
	cfg := Config{Support: 2, Workers: 2, SpillDir: t.TempDir()}.normalized()
	if cfg.MemoryBudget != 1<<28 {
		t.Fatalf("normalized budget = %d, want %d", cfg.MemoryBudget, 1<<28)
	}
	res, stats, err := TryDiscover(fixtures.University(), Config{Support: 2, Workers: 2, SpillDir: t.TempDir()})
	if err != nil || len(res.CINDs) == 0 {
		t.Fatalf("run failed: %v", err)
	}
	if stats.SpilledBytes != 0 {
		t.Errorf("generous default budget spilled %d bytes", stats.SpilledBytes)
	}
}
