package dataflow

// This file is the columnar batch-at-a-time execution path of the lazy plan
// layer (plan.go). Everything downstream of ingest is dictionary-encoded IDs,
// so instead of streaming one record at a time through the fused chain's
// nested closures, the batch path moves column slices of up to batchSize
// records per call: the root slices its retained partitions into dense
// batches (zero copies), Map fills a per-worker scratch column, Filter clears
// bits in a selection Bitmap instead of compacting, and FlatMap compacts its
// emissions into a dense scratch column. The per-fused-op tallies are
// maintained batch-wise and agree exactly with the record path's counts, and
// the final sink in Dataset.force appends only the selected lanes — so the
// materialized output partitions are byte-identical to record-at-a-time
// execution at every boundary (wide operators, spill codecs, the distributed
// wire format, retries from retained partitions).
//
// Scratch discipline: each operator's bfeed closure owns per-worker scratch
// (a column and, for Filter, a selection bitmap) that it reuses across
// batches. That is safe because batches are consumed strictly depth-first —
// emit returns only after every downstream operator and the sink are done
// with the batch — and producers never re-read an emitted batch. For the same
// reason a downstream Filter may clear bits of an upstream Filter's selection
// in place. Root batches alias the retained input partitions, so no operator
// ever writes through b.vals it did not allocate itself.

// batchSize is the number of lanes in a dense root batch. 1024 keeps a
// uint64 column within 8 KiB — comfortably cache-resident — while amortizing
// the per-batch closure overhead over enough records to vanish.
const batchSize = 1024

// colBatch is a column of records plus an optional selection: sel's zero
// value (no words) means every lane is live; otherwise bit i set means lane
// i is live. vals may be longer than batchSize after a FlatMap expansion.
type colBatch[T any] struct {
	vals []T
	sel  Bitmap
}

// dense reports whether every lane is live without consulting bits.
func (b colBatch[T]) dense() bool { return b.sel.words == nil }

// live returns the number of live lanes.
func (b colBatch[T]) live() int64 {
	if b.dense() {
		return int64(len(b.vals))
	}
	return int64(b.sel.Count())
}

// batchFeed is the batch-path analogue of chain.feed: it streams worker w's
// root partition through every chained function as column batches.
type batchFeed[T any] func(w int, tally []int64, emit func(colBatch[T]))

// rootBatchFeed slices materialized partitions into dense batches without
// copying.
func rootBatchFeed[T any](parts [][]T) batchFeed[T] {
	return func(w int, _ []int64, emit func(colBatch[T])) {
		in := parts[w]
		for lo := 0; lo < len(in); lo += batchSize {
			hi := lo + batchSize
			if hi > len(in) {
				hi = len(in)
			}
			emit(colBatch[T]{vals: in[lo:hi:hi]})
		}
	}
}

// batchMap appends a Map to the batch path: f runs over the live lanes of
// the input column into a same-length scratch column, carrying the selection
// through unchanged (dead lanes keep stale scratch values no one reads).
func batchMap[T, U any](prev batchFeed[T], idx int, f func(T) U) batchFeed[U] {
	return func(w int, tally []int64, emit func(colBatch[U])) {
		var scratch []U
		prev(w, tally, func(b colBatch[T]) {
			if cap(scratch) < len(b.vals) {
				scratch = make([]U, len(b.vals))
			}
			out := scratch[:len(b.vals)]
			if b.dense() {
				tally[idx] += int64(len(b.vals))
				for i, t := range b.vals {
					out[i] = f(t)
				}
			} else {
				n := int64(0)
				b.sel.ForEach(func(i int) {
					out[i] = f(b.vals[i])
					n++
				})
				tally[idx] += n
			}
			emit(colBatch[U]{vals: out, sel: b.sel})
		})
	}
}

// batchFilter appends a Filter: a dense batch gets a fresh all-ones scratch
// selection with failing lanes cleared; an already-selected batch has its
// failing lanes cleared in place (safe, see the scratch discipline above).
// The input column is never copied or written.
func batchFilter[T any](prev batchFeed[T], idx int, pred func(T) bool) batchFeed[T] {
	return func(w int, tally []int64, emit func(colBatch[T])) {
		var scratch Bitmap
		prev(w, tally, func(b colBatch[T]) {
			if b.dense() {
				tally[idx] += int64(len(b.vals))
				scratch = scratch.resized(len(b.vals))
				scratch.SetAll()
				for i, t := range b.vals {
					if !pred(t) {
						scratch.Clear(i)
					}
				}
				emit(colBatch[T]{vals: b.vals, sel: scratch})
				return
			}
			n := int64(0)
			b.sel.ForEach(func(i int) {
				n++
				if !pred(b.vals[i]) {
					b.sel.Clear(i)
				}
			})
			tally[idx] += n
			emit(b)
		})
	}
}

// batchFlatMap appends a FlatMap: emissions from the live lanes compact into
// a dense scratch column (selection gaps cannot survive an expansion, whose
// output lanes no longer align with input lanes). Empty outputs emit nothing.
func batchFlatMap[T, U any](prev batchFeed[T], idx int, f func(T, func(U))) batchFeed[U] {
	return func(w int, tally []int64, emit func(colBatch[U])) {
		var scratch []U
		collect := func(u U) { scratch = append(scratch, u) }
		prev(w, tally, func(b colBatch[T]) {
			scratch = scratch[:0]
			if b.dense() {
				tally[idx] += int64(len(b.vals))
				for _, t := range b.vals {
					f(t, collect)
				}
			} else {
				n := int64(0)
				b.sel.ForEach(func(i int) {
					n++
					f(b.vals[i], collect)
				})
				tally[idx] += n
			}
			if len(scratch) > 0 {
				emit(colBatch[U]{vals: scratch})
			}
		})
	}
}

// batchMapPartitions starts a batch chain at a MapPartitions over
// materialized partitions: f still sees the whole partition slice, and its
// emissions are re-batched into dense batchSize columns.
func batchMapPartitions[T, U any](parts [][]T, f func(worker int, items []T, emit func(U))) batchFeed[U] {
	return func(w int, tally []int64, emit func(colBatch[U])) {
		tally[0] += int64(len(parts[w]))
		buf := make([]U, 0, batchSize)
		f(w, parts[w], func(u U) {
			buf = append(buf, u)
			if len(buf) == batchSize {
				emit(colBatch[U]{vals: buf})
				buf = buf[:0]
			}
		})
		if len(buf) > 0 {
			emit(colBatch[U]{vals: buf})
		}
	}
}
