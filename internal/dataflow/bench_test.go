package dataflow

import (
	"fmt"
	"testing"
)

// Microbenchmarks for the engine's hot kernels. Run with
//
//	go test ./internal/dataflow -run '^$' -bench . -benchmem
//
// The -benchmem columns are the point: the scatter/reduce rewrites are gated
// on allocations per operation, not only wall time (single-core CI machines
// cannot show goroutine parallelism as elapsed-time wins).

// benchPairs builds n keyed records over k distinct keys.
func benchPairs(n, k int) []Pair[int, int] {
	data := make([]Pair[int, int], n)
	for i := range data {
		data[i] = Pair[int, int]{i % k, 1}
	}
	return data
}

func BenchmarkReduceByKey(b *testing.B) {
	c := NewContext(4)
	data := benchPairs(100000, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := Parallelize(c, "in", data)
		ReduceByKey(d, "count", func(a, b int) int { return a + b })
	}
}

func BenchmarkShuffleByKey(b *testing.B) {
	c := NewContext(4)
	data := benchPairs(100000, 1000)
	d := Parallelize(c, "in", data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := shuffleByKey(d, "shuffle"); !ok {
			b.Fatal(c.Err())
		}
	}
}

func BenchmarkGroupByKey(b *testing.B) {
	c := NewContext(4)
	data := benchPairs(100000, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := Parallelize(c, "in", data)
		GroupByKey(d, "group")
	}
}

func BenchmarkDistinct(b *testing.B) {
	c := NewContext(4)
	data := make([]int, 100000)
	for i := range data {
		data[i] = i % 1000
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := Parallelize(c, "in", data)
		Distinct(d, "distinct")
	}
}

func BenchmarkGlobalReduce(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			c := NewContext(workers)
			data := make([]int, 100000)
			for i := range data {
				data[i] = i
			}
			d := Parallelize(c, "in", data)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := GlobalReduce(d, "sum", func(a, b int) int { return a + b }); !ok {
					b.Fatal(c.Err())
				}
			}
		})
	}
}

func BenchmarkFilter(b *testing.B) {
	c := NewContext(4)
	data := make([]int, 100000)
	for i := range data {
		data[i] = i
	}
	d := Parallelize(c, "in", data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Materialize forces the lazily planned stage so the benchmark
		// measures execution, not plan construction.
		Filter(d, "even", func(v int) bool { return v%2 == 0 }).Materialize()
	}
}

// benchChain applies ops narrow operators to d and forces the result: a
// Filter dropping nothing followed by alternating Maps, so fused and unfused
// execution see identical record flow.
func benchChain(d *Dataset[int], ops int) *Dataset[int] {
	out := Filter(d, "keep", func(v int) bool { return v >= 0 })
	for i := 1; i < ops; i++ {
		step := i
		out = Map(out, fmt.Sprintf("m%d", step), func(v int) int { return v + step })
	}
	return out.Materialize()
}

// BenchmarkNarrowChain measures 2-, 4-, and 6-operator narrow chains across
// the three execution modes. Fused chains stream each record through every
// operator into a single output buffer; the columnar path additionally moves
// 1024-lane column batches through batch kernels instead of per-record
// closure calls; unfused chains materialize a full intermediate partition set
// per operator, so allocs/op and ns/op grow with chain length.
func BenchmarkNarrowChain(b *testing.B) {
	data := make([]int, 100000)
	for i := range data {
		data[i] = i
	}
	modes := []struct {
		name            string
		fused, columnar bool
	}{
		{"fused-columnar", true, true},
		{"fused-record", true, false},
		{"unfused", false, false},
	}
	for _, ops := range []int{2, 4, 6} {
		for _, mode := range modes {
			b.Run(fmt.Sprintf("ops=%d/%s", ops, mode.name), func(b *testing.B) {
				c := NewContext(4, WithFusion(mode.fused), WithColumnar(mode.columnar))
				d := Parallelize(c, "in", data).Materialize()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					benchChain(d, ops)
				}
			})
		}
	}
}
