package dataflow

import (
	"fmt"
	"testing"
)

// Microbenchmarks for the engine's hot kernels. Run with
//
//	go test ./internal/dataflow -run '^$' -bench . -benchmem
//
// The -benchmem columns are the point: the scatter/reduce rewrites are gated
// on allocations per operation, not only wall time (single-core CI machines
// cannot show goroutine parallelism as elapsed-time wins).

// benchPairs builds n keyed records over k distinct keys.
func benchPairs(n, k int) []Pair[int, int] {
	data := make([]Pair[int, int], n)
	for i := range data {
		data[i] = Pair[int, int]{i % k, 1}
	}
	return data
}

func BenchmarkReduceByKey(b *testing.B) {
	c := NewContext(4)
	data := benchPairs(100000, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := Parallelize(c, "in", data)
		ReduceByKey(d, "count", func(a, b int) int { return a + b })
	}
}

func BenchmarkShuffleByKey(b *testing.B) {
	c := NewContext(4)
	data := benchPairs(100000, 1000)
	d := Parallelize(c, "in", data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := shuffleByKey(d, "shuffle"); !ok {
			b.Fatal(c.Err())
		}
	}
}

func BenchmarkGroupByKey(b *testing.B) {
	c := NewContext(4)
	data := benchPairs(100000, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := Parallelize(c, "in", data)
		GroupByKey(d, "group")
	}
}

func BenchmarkDistinct(b *testing.B) {
	c := NewContext(4)
	data := make([]int, 100000)
	for i := range data {
		data[i] = i % 1000
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := Parallelize(c, "in", data)
		Distinct(d, "distinct")
	}
}

func BenchmarkGlobalReduce(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			c := NewContext(workers)
			data := make([]int, 100000)
			for i := range data {
				data[i] = i
			}
			d := Parallelize(c, "in", data)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := GlobalReduce(d, "sum", func(a, b int) int { return a + b }); !ok {
					b.Fatal(c.Err())
				}
			}
		})
	}
}

func BenchmarkFilter(b *testing.B) {
	c := NewContext(4)
	data := make([]int, 100000)
	for i := range data {
		data[i] = i
	}
	d := Parallelize(c, "in", data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Filter(d, "even", func(v int) bool { return v%2 == 0 })
	}
}
