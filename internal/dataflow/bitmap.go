package dataflow

import "math/bits"

// Bitmap is a fixed-length selection bitmap over the lanes of a columnar
// batch (batch.go): bit i set means lane i is live. It is the word-packed
// representation Dremel-style engines use instead of filtered copies — a
// Filter clears bits rather than compacting the column.
//
// The representation invariant is that bits at positions ≥ Len() in the last
// word are always zero. Every mutating operation preserves it (SetAll masks
// the tail word), so Count and ForEach never have to special-case the tail.
// The zero Bitmap has no words and length zero; batch.go uses it to mean
// "all lanes live" without allocating.
type Bitmap struct {
	words []uint64
	n     int
}

// NewBitmap returns an all-zero bitmap of n bits.
func NewBitmap(n int) Bitmap {
	if n < 0 {
		n = 0
	}
	return Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of bits.
func (b Bitmap) Len() int { return b.n }

// Set sets bit i.
func (b Bitmap) Set(i int) {
	if i < 0 || i >= b.n {
		panic("dataflow: Bitmap.Set out of range")
	}
	b.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear clears bit i.
func (b Bitmap) Clear(i int) {
	if i < 0 || i >= b.n {
		panic("dataflow: Bitmap.Clear out of range")
	}
	b.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Get reports whether bit i is set.
func (b Bitmap) Get(i int) bool {
	if i < 0 || i >= b.n {
		panic("dataflow: Bitmap.Get out of range")
	}
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// SetAll sets every bit, masking the tail word so bits past Len stay zero.
func (b Bitmap) SetAll() {
	if b.n == 0 {
		return
	}
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	if rem := uint(b.n) & 63; rem != 0 {
		b.words[len(b.words)-1] = (1 << rem) - 1
	}
}

// ClearAll clears every bit.
func (b Bitmap) ClearAll() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Count returns the number of set bits.
func (b Bitmap) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// And intersects o into b in place. The lengths must match.
func (b Bitmap) And(o Bitmap) {
	if b.n != o.n {
		panic("dataflow: Bitmap.And length mismatch")
	}
	for i, w := range o.words {
		b.words[i] &= w
	}
}

// Or unions o into b in place. The lengths must match.
func (b Bitmap) Or(o Bitmap) {
	if b.n != o.n {
		panic("dataflow: Bitmap.Or length mismatch")
	}
	for i, w := range o.words {
		b.words[i] |= w
	}
}

// ForEach calls f with each set bit's index, in ascending order.
func (b Bitmap) ForEach(f func(i int)) {
	for wi, w := range b.words {
		base := wi << 6
		for w != 0 {
			f(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// resized returns a bitmap of n bits reusing b's word storage when it is
// large enough, for per-worker scratch reuse across batches. The returned
// bitmap's bits are undefined; callers must SetAll or ClearAll first.
func (b Bitmap) resized(n int) Bitmap {
	words := (n + 63) / 64
	if cap(b.words) < words {
		return NewBitmap(n)
	}
	return Bitmap{words: b.words[:words], n: n}
}
