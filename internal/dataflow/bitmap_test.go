package dataflow

import (
	"encoding/binary"
	"reflect"
	"sort"
	"testing"
)

// Tests for the selection bitmap (bitmap.go). The representation invariant —
// bits at positions ≥ Len() in the tail word are always zero — is what Count
// and ForEach rely on, so the suite leans on sizes that are not multiples of
// 64 (the batch-tail case: the last batch of a partition is almost never
// exactly batchSize lanes).

// oracle mirrors a Bitmap as the set of indices that are set.
type oracle map[int]bool

func (o oracle) count() int {
	n := 0
	for _, v := range o {
		if v {
			n++
		}
	}
	return n
}

func (o oracle) sorted() []int {
	var out []int
	for i, v := range o {
		if v {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	if out == nil {
		out = []int{}
	}
	return out
}

// checkAgainstOracle verifies every read operation of b against the oracle.
func checkAgainstOracle(t *testing.T, label string, b Bitmap, o oracle) {
	t.Helper()
	if got, want := b.Count(), o.count(); got != want {
		t.Fatalf("%s: Count = %d, oracle %d", label, got, want)
	}
	for i := 0; i < b.Len(); i++ {
		if got, want := b.Get(i), o[i]; got != want {
			t.Fatalf("%s: Get(%d) = %v, oracle %v", label, i, got, want)
		}
	}
	visited := []int{}
	last := -1
	b.ForEach(func(i int) {
		if i <= last {
			t.Fatalf("%s: ForEach out of order: %d after %d", label, i, last)
		}
		if i < 0 || i >= b.Len() {
			t.Fatalf("%s: ForEach yielded out-of-range index %d (len %d)", label, i, b.Len())
		}
		last = i
		visited = append(visited, i)
	})
	if want := o.sorted(); !reflect.DeepEqual(visited, want) {
		t.Fatalf("%s: ForEach visited %v, oracle %v", label, visited, want)
	}
}

func TestBitmapTailSizes(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 129, 1000, 1023, 1024, 1025} {
		b := NewBitmap(n)
		o := oracle{}
		checkAgainstOracle(t, "fresh", b, o)

		b.SetAll()
		for i := 0; i < n; i++ {
			o[i] = true
		}
		checkAgainstOracle(t, "set-all", b, o)
		// The tail-word invariant, probed directly: And with a full bitmap of
		// the same size must not resurrect bits past n, and Count stays n.
		full := NewBitmap(n)
		full.SetAll()
		b.Or(full)
		b.And(full)
		checkAgainstOracle(t, "and-or-full", b, o)

		if n > 0 {
			b.Clear(n - 1)
			delete(o, n-1)
			b.Clear(0)
			delete(o, 0)
			checkAgainstOracle(t, "cleared-ends", b, o)
		}

		b.ClearAll()
		o = oracle{}
		checkAgainstOracle(t, "all-cleared", b, o)
	}
}

func TestBitmapRangePanics(t *testing.T) {
	b := NewBitmap(65)
	for name, fn := range map[string]func(){
		"Set(-1)":   func() { b.Set(-1) },
		"Set(65)":   func() { b.Set(65) },
		"Clear(65)": func() { b.Clear(65) },
		"Get(65)":   func() { b.Get(65) },
		"And-len":   func() { b.And(NewBitmap(64)) },
		"Or-len":    func() { b.Or(NewBitmap(66)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBitmapResizedReusesStorage(t *testing.T) {
	b := NewBitmap(128)
	r := b.resized(70)
	if r.Len() != 70 {
		t.Fatalf("resized len = %d", r.Len())
	}
	if &r.words[0] != &b.words[0] {
		t.Error("resized within capacity did not reuse storage")
	}
	// Bits are undefined after resized; SetAll must establish the invariant.
	r.SetAll()
	if got := r.Count(); got != 70 {
		t.Errorf("resized+SetAll Count = %d, want 70", got)
	}
	grown := r.resized(1024)
	if grown.Len() != 1024 {
		t.Fatalf("grown len = %d", grown.Len())
	}
	grown.ClearAll()
	if got := grown.Count(); got != 0 {
		t.Errorf("grown+ClearAll Count = %d, want 0", got)
	}
}

// FuzzBitmapOps replays an arbitrary byte string as an operation sequence
// over a Bitmap and a second operand bitmap, mirrored against map-based
// oracles, and requires set/clear/set-all/clear-all/and/or/iterate to agree
// at every step. Sizes sweep 0..255, so non-multiple-of-64 tails (the batch
// boundary case) and the all-cleared state are exercised constantly.
func FuzzBitmapOps(f *testing.F) {
	f.Add(uint8(65), []byte{0, 1, 1, 2, 2, 3, 4, 5})
	f.Add(uint8(64), []byte{2, 4, 0, 0, 0, 5, 3})
	f.Add(uint8(63), []byte{2, 2, 5, 4})
	f.Add(uint8(0), []byte{0, 1, 2, 3, 4, 5})
	f.Add(uint8(130), []byte{6, 2, 7, 4, 5})
	f.Fuzz(func(t *testing.T, size uint8, ops []byte) {
		n := int(size)
		a, b := NewBitmap(n), NewBitmap(n)
		ao, bo := oracle{}, oracle{}
		for len(ops) > 0 {
			op := ops[0]
			ops = ops[1:]
			// Operand index from the next two bytes, reduced into range.
			idx := -1
			if n > 0 {
				var raw uint16
				if len(ops) >= 2 {
					raw = binary.LittleEndian.Uint16(ops)
					ops = ops[2:]
				} else if len(ops) == 1 {
					raw = uint16(ops[0])
					ops = nil
				}
				idx = int(raw) % n
			}
			switch op % 8 {
			case 0:
				if idx >= 0 {
					a.Set(idx)
					ao[idx] = true
				}
			case 1:
				if idx >= 0 {
					a.Clear(idx)
					delete(ao, idx)
				}
			case 2:
				a.SetAll()
				for i := 0; i < n; i++ {
					ao[i] = true
				}
			case 3:
				a.ClearAll()
				ao = oracle{}
			case 4:
				a.And(b)
				for i := range ao {
					if !bo[i] {
						delete(ao, i)
					}
				}
			case 5:
				a.Or(b)
				for i, v := range bo {
					if v {
						ao[i] = true
					}
				}
			case 6:
				if idx >= 0 {
					b.Set(idx)
					bo[idx] = true
				}
			case 7:
				if idx >= 0 {
					b.Clear(idx)
					delete(bo, idx)
				}
			}
			checkAgainstOracle(t, "a", a, ao)
			checkAgainstOracle(t, "b", b, bo)
		}
	})
}
