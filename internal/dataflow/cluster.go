// Multi-process distributed execution: the coordinator side.
//
// The engine distributes by SPMD replication rather than by shipping
// closures (Go cannot serialize functions): the coordinator and every worker
// process run the same deterministic driver program over the same input.
// Worker rank r executes only partition r of every stage; the coordinator
// executes no partitions at all and instead consumes the collective results
// that drive control flow (Collect, Len, GlobalReduce), so it ends the run
// holding the final output.
//
// All cross-process data moves through collectives executed in deterministic
// program order. Each collective has a sequence number that every process
// derives independently by counting (Context.nextSeq); the coordinator
// validates that name and kind agree across processes, which turns any
// divergence of the replicated drivers into an immediate typed error instead
// of silent corruption.
//
// Fault tolerance is lineage-based: the coordinator retains every completed
// collective's contributions. Because the driver is deterministic, a lost
// worker's entire partition state is re-derivable by replaying the program —
// a respawned replacement starts the driver from the beginning, and its
// contributions to already-complete collectives are answered instantly from
// the retained originals (the originals win, preserving byte identity), so
// the replay fast-forwards to the frontier where the rest of the job is
// waiting. This is the coarse-grained equivalent of Flink's
// restart-from-consistent-inputs recovery that RDFind's evaluation relies on.
package dataflow

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Cluster timing defaults; tests and the CLI override via ClusterConfig.
const (
	defaultHeartbeatInterval = 200 * time.Millisecond
	defaultHeartbeatDeadline = 2 * time.Second
	defaultWriteTimeout      = 10 * time.Second
	defaultReconnectBase     = 25 * time.Millisecond
	defaultMaxReconnects     = 5
	defaultMaxRespawns       = 2
	defaultDistSeed          = 0x9e3779b97f4a7c15 // fixed job seed when none is given
	goodbyeWait              = 5 * time.Second
)

// ClusterConfig parameterizes a coordinator.
type ClusterConfig struct {
	// Workers is the number of worker processes (= logical workers).
	Workers int
	// Network and Addr are passed to net.Listen ("tcp" or "unix").
	Network, Addr string
	// Seed is the job-wide key-partitioning hash seed distributed to all
	// processes; 0 selects a fixed default.
	Seed uint64
	// JobSpec is an opaque job description relayed to workers in the welcome
	// message (the CLI ships its flag set through it).
	JobSpec []byte
	// Spawn launches the worker process for a rank. It is called once per
	// rank at startup and again after every loss; it must return promptly
	// (launch asynchronously or from a goroutine-friendly exec).
	Spawn func(rank int) error

	// HeartbeatInterval is the cadence of liveness traffic in both
	// directions; HeartbeatDeadline is how stale a worker's last heartbeat
	// may grow before the coordinator declares the process lost.
	HeartbeatInterval, HeartbeatDeadline time.Duration
	// WriteTimeout bounds every message write (the per-RPC timeout).
	WriteTimeout time.Duration
	// ReconnectBase is the base of the workers' jittered exponential
	// reconnect backoff; MaxReconnects bounds their attempts per drop.
	ReconnectBase time.Duration
	MaxReconnects int
	// MaxRespawns bounds how many times one rank may be respawned before
	// its loss is terminal; 0 selects the default, negative disables
	// respawning (every loss is terminal).
	MaxRespawns int

	// Faults is a stage-level fault schedule shipped to the workers (each
	// fault fires on the process owning its worker index). ProcFaults are
	// process-level faults fired at collective barriers.
	Faults     []Fault
	ProcFaults []ProcFault
}

func (cfg *ClusterConfig) withDefaults() {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = defaultDistSeed
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = defaultHeartbeatInterval
	}
	if cfg.HeartbeatDeadline <= 0 {
		cfg.HeartbeatDeadline = defaultHeartbeatDeadline
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = defaultWriteTimeout
	}
	if cfg.ReconnectBase <= 0 {
		cfg.ReconnectBase = defaultReconnectBase
	}
	if cfg.MaxReconnects <= 0 {
		cfg.MaxReconnects = defaultMaxReconnects
	}
	if cfg.MaxRespawns == 0 {
		cfg.MaxRespawns = defaultMaxRespawns
	} else if cfg.MaxRespawns < 0 {
		cfg.MaxRespawns = 0 // negative: disable respawns entirely
	}
}

// coordConn wraps one accepted connection with write serialization, so
// release broadcasts, heartbeats, and abort notices from different
// goroutines never interleave frames.
type coordConn struct {
	mu   sync.Mutex
	conn net.Conn
}

func (cc *coordConn) send(timeout time.Duration, typ byte, payload []byte) error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return sendMsg(cc.conn, timeout, typ, payload)
}

// rankState tracks one worker rank across process generations.
type rankState struct {
	gen         int // increments on every (re)connection of this rank
	lostGen     int // generation already declared lost; equal to gen ⇒ loss handled
	cc          *coordConn
	lastSeen    time.Time // last liveness evidence; initialized with a boot grace
	losses      int       // processes of this rank declared lost so far
	lastLossSeq int       // collective frontier at the previous loss (-1: none)
	goodbye     bool      // current generation completed the job cleanly
}

// collective is one barrier of the deterministic collective program. The
// contributions of completed collectives are retained for the lifetime of
// the job: they are the lineage from which respawned workers fast-forward.
type collective struct {
	seq      int
	kind     byte
	name     string
	contribs [][]byte // per-rank contribution bodies; nil = absent
	have     int
	rawBytes int64
	releases [][]byte // per-rank release bodies, computed once at completion
	done     chan struct{}
}

// Cluster is the coordinator of a distributed job. Create one with
// StartCluster, attach it to the driver Context with WithCluster, run the
// job, then Close.
type Cluster struct {
	cfg ClusterConfig
	ln  net.Listener

	mu          sync.Mutex
	ctx         *Context // attached by WithCluster
	ranks       []*rankState
	colls       map[int]*collective
	highSeq     int
	trace       []CollectiveSite
	spentFaults []bool
	err         error
	aborted     chan struct{}
	done        chan struct{}
	wg          sync.WaitGroup
}

// StartCluster opens the coordinator listener, spawns every rank via
// cfg.Spawn, and starts the accept, heartbeat, and loss-monitor loops.
func StartCluster(cfg ClusterConfig) (*Cluster, error) {
	cfg.withDefaults()
	ln, err := net.Listen(cfg.Network, cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("dataflow: coordinator listen: %w", err)
	}
	cl := &Cluster{
		cfg:         cfg,
		ln:          ln,
		ranks:       make([]*rankState, cfg.Workers),
		colls:       make(map[int]*collective),
		highSeq:     -1,
		spentFaults: make([]bool, len(cfg.ProcFaults)),
		aborted:     make(chan struct{}),
		done:        make(chan struct{}),
	}
	now := time.Now()
	for r := range cl.ranks {
		cl.ranks[r] = &rankState{lastSeen: now.Add(cfg.HeartbeatDeadline), lastLossSeq: -1}
	}
	cl.wg.Add(2)
	go cl.acceptLoop()
	go cl.superviseLoop()
	if cfg.Spawn != nil {
		for r := 0; r < cfg.Workers; r++ {
			r := r
			cl.wg.Add(1)
			go func() {
				defer cl.wg.Done()
				if err := cfg.Spawn(r); err != nil {
					cl.Abort(&StageError{Stage: "cluster/spawn", Worker: r, Attempt: 1,
						Cause: fmt.Errorf("spawning rank %d: %w", r, err)})
				}
			}()
		}
	}
	return cl, nil
}

// Addr returns the coordinator's listen address for worker dials.
func (cl *Cluster) Addr() net.Addr { return cl.ln.Addr() }

// Workers returns the job's worker-process count.
func (cl *Cluster) Workers() int { return cl.cfg.Workers }

// Err returns the job's terminal failure, if any.
func (cl *Cluster) Err() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.err
}

// CollectiveTrace returns the collective barriers executed so far in program
// order. Tests derive deterministic ProcFault schedules from a fault-free
// run's trace.
func (cl *Cluster) CollectiveTrace() []CollectiveSite {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	out := make([]CollectiveSite, len(cl.trace))
	copy(out, cl.trace)
	return out
}

// attach binds the driver Context (called by WithCluster).
func (cl *Cluster) attach(c *Context) {
	cl.mu.Lock()
	cl.ctx = c
	cl.mu.Unlock()
}

// count feeds a cluster counter into the attached job's metric registry.
// Callers may hold cl.mu (lock order: cl.mu → stats.mu).
func (cl *Cluster) countLocked(name string, n int64) {
	if cl.ctx != nil {
		cl.ctx.stats.Metrics().Counter(name).Add(n)
	}
}

// Abort latches a terminal failure, wakes every collective waiter, notifies
// all workers, and fails the attached driver context.
func (cl *Cluster) Abort(err error) {
	cl.mu.Lock()
	cl.abortLocked(err)
	cl.mu.Unlock()
}

func (cl *Cluster) abortLocked(err error) {
	if cl.err != nil {
		return
	}
	cl.err = err
	close(cl.aborted)
	ccs := make([]*coordConn, 0, len(cl.ranks))
	for _, rs := range cl.ranks {
		if rs.cc != nil {
			ccs = append(ccs, rs.cc)
		}
	}
	ctx := cl.ctx
	payload := encodeWireError(err)
	// The broadcast and the driver-side fail run outside cl.mu: Context.fail
	// calls back into Cluster.Abort (to cover driver-originated failures),
	// and conn writes must not stall the coordinator state machine.
	cl.wg.Add(1)
	go func() {
		defer cl.wg.Done()
		for _, cc := range ccs {
			cc.send(cl.cfg.WriteTimeout, msgAbort, payload)
		}
		if ctx != nil {
			ctx.fail(err)
		}
	}()
}

// Close shuts the coordinator down. On a healthy job it first waits briefly
// for all workers' goodbyes, so final releases drain before connections drop.
func (cl *Cluster) Close() error {
	if cl.Err() == nil {
		deadline := time.Now().Add(goodbyeWait)
		for time.Now().Before(deadline) {
			cl.mu.Lock()
			all := true
			for _, rs := range cl.ranks {
				if !rs.goodbye {
					all = false
					break
				}
			}
			cl.mu.Unlock()
			if all {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	cl.mu.Lock()
	select {
	case <-cl.done:
	default:
		close(cl.done)
	}
	for _, rs := range cl.ranks {
		if rs.cc != nil {
			rs.cc.conn.Close()
		}
	}
	cl.mu.Unlock()
	cl.ln.Close()
	cl.wg.Wait()
	return cl.Err()
}

func (cl *Cluster) closed() bool {
	select {
	case <-cl.done:
		return true
	default:
		return false
	}
}

// acceptLoop admits worker connections until the coordinator closes.
func (cl *Cluster) acceptLoop() {
	defer cl.wg.Done()
	for {
		conn, err := cl.ln.Accept()
		if err != nil {
			return // listener closed by Close
		}
		cl.wg.Add(1)
		go func() {
			defer cl.wg.Done()
			cl.serve(conn)
		}()
	}
}

// serve handles one worker connection: hello/welcome handshake, then the
// message loop. Read errors do not declare the worker lost — connection
// drops are recoverable (the worker reconnects); only the heartbeat deadline
// or an observed kill does.
func (cl *Cluster) serve(conn net.Conn) {
	defer conn.Close()
	r := newWireReader(conn)
	conn.SetReadDeadline(time.Now().Add(cl.cfg.HeartbeatDeadline))
	typ, payload, err := readMsg(r)
	if err != nil || typ != msgHello {
		return
	}
	hello, err := decodeJSON[helloMsg](payload)
	if err != nil || hello.Rank < 0 || hello.Rank >= cl.cfg.Workers {
		return
	}
	rank := hello.Rank
	cc := &coordConn{conn: conn}

	cl.mu.Lock()
	if cl.closed() {
		cl.mu.Unlock()
		return
	}
	rs := cl.ranks[rank]
	if old := rs.cc; old != nil && old != cc {
		old.conn.Close()
	}
	// A second hello from a rank that was never declared lost is a reconnect
	// after a transient drop (a respawn's hello follows a loss, which marked
	// the previous generation in lostGen).
	if rs.gen > 0 && rs.lostGen != rs.gen {
		cl.countLocked(metrics.ClusterReconnects, 1)
	}
	rs.gen++
	gen := rs.gen
	rs.cc = cc
	rs.lastSeen = time.Now()
	welcome := welcomeMsg{
		Rank:            rank,
		Workers:         cl.cfg.Workers,
		Seed:            cl.cfg.Seed,
		JobSpec:         cl.cfg.JobSpec,
		HeartbeatMS:     cl.cfg.HeartbeatInterval.Milliseconds(),
		DeadlineMS:      cl.cfg.HeartbeatDeadline.Milliseconds(),
		WriteTimeoutMS:  cl.cfg.WriteTimeout.Milliseconds(),
		ReconnectBaseMS: cl.cfg.ReconnectBase.Milliseconds(),
		MaxReconnects:   cl.cfg.MaxReconnects,
		Faults:          cl.cfg.Faults,
		ProcFaults:      cl.cfg.ProcFaults,
	}
	for i, spent := range cl.spentFaults {
		if spent {
			welcome.Spent = append(welcome.Spent, i)
		}
	}
	cl.mu.Unlock()

	if err := cc.send(cl.cfg.WriteTimeout, msgWelcome, encodeJSON(welcome)); err != nil {
		return
	}

	for {
		conn.SetReadDeadline(time.Now().Add(cl.cfg.HeartbeatDeadline))
		typ, payload, err := readMsg(r)
		if err != nil {
			return
		}
		switch typ {
		case msgHeartbeat:
			cl.mu.Lock()
			if rs.gen == gen {
				rs.lastSeen = time.Now()
				cl.countLocked(metrics.ClusterHeartbeats, 1)
			}
			cl.mu.Unlock()
		case msgContribute:
			cl.handleContribute(rank, cc, payload)
		case msgFaultFired:
			cl.handleFaultFired(rank, payload)
		case msgFailJob:
			cl.Abort(decodeWireError(payload))
		case msgGoodbye:
			cl.mu.Lock()
			if rs.gen == gen {
				rs.goodbye = true
				rs.lastSeen = time.Now().Add(24 * time.Hour) // done; never declare lost
			}
			cl.mu.Unlock()
			return
		}
	}
}

// handleContribute implements the idempotent collective protocol. The first
// complete contribution per (seq, rank) wins; duplicates are absorbed; a
// contribution to an already-complete collective (a respawned worker
// replaying the program) is answered immediately from the retained lineage.
func (cl *Cluster) handleContribute(rank int, cc *coordConn, payload []byte) {
	seq, kind, name, body, err := decodeContribute(payload)
	if err != nil {
		cl.Abort(&StageError{Stage: "cluster", Worker: rank, Attempt: 1, Cause: err})
		return
	}
	cl.mu.Lock()
	if cl.err != nil {
		reply := encodeRelease(seq, releaseFailed, encodeWireError(cl.err))
		cl.mu.Unlock()
		cc.send(cl.cfg.WriteTimeout, msgRelease, reply)
		return
	}
	coll, err := cl.collLocked(seq, kind, name)
	if err != nil {
		cl.abortLocked(err)
		cl.mu.Unlock()
		return
	}
	if coll.contribs[rank] != nil {
		// Duplicate (ProcDuplicate injection, a reconnect re-send racing its
		// original, or a replaying respawned worker).
		cl.countLocked(metrics.ClusterDupContribs, 1)
		if coll.have < cl.cfg.Workers {
			cl.mu.Unlock()
			return // incomplete: the release will reach this rank on completion
		}
		cl.countLocked(metrics.ClusterReplayedReleases, 1)
		reply := encodeRelease(seq, releaseOK, coll.releases[rank])
		cl.mu.Unlock()
		cc.send(cl.cfg.WriteTimeout, msgRelease, reply)
		return
	}
	coll.contribs[rank] = body
	coll.have++
	coll.rawBytes += int64(len(body))
	cl.countLocked(metrics.ClusterShuffleBytes, int64(len(body)))
	if coll.have < cl.cfg.Workers {
		cl.mu.Unlock()
		return
	}
	// Complete: derive the per-rank releases, retain everything as lineage,
	// and broadcast to the current generation of every rank.
	if err := coll.completeLocked(cl.cfg.Workers); err != nil {
		cl.abortLocked(&StageError{Stage: name, Worker: rank, Attempt: 1, Cause: err})
		cl.mu.Unlock()
		return
	}
	cl.countLocked(metrics.ClusterCollectives, 1)
	close(coll.done)
	type dst struct {
		cc      *coordConn
		payload []byte
	}
	sends := make([]dst, 0, cl.cfg.Workers)
	for r, rs := range cl.ranks {
		if rs.cc != nil {
			sends = append(sends, dst{rs.cc, encodeRelease(seq, releaseOK, coll.releases[r])})
		}
	}
	cl.mu.Unlock()
	for _, s := range sends {
		s.cc.send(cl.cfg.WriteTimeout, msgRelease, s.payload)
	}
}

// collLocked finds or creates the collective for seq, validating that every
// process describes the same barrier — a mismatch means the replicated
// drivers diverged, which is terminal.
func (cl *Cluster) collLocked(seq int, kind byte, name string) (*collective, error) {
	if coll, ok := cl.colls[seq]; ok {
		if coll.kind != kind || coll.name != name {
			return nil, &StageError{Stage: name, Worker: -1, Attempt: 1, Deterministic: true,
				Cause: fmt.Errorf("collective %d diverged across processes: %s %q vs %s %q",
					seq, kindName(kind), name, kindName(coll.kind), coll.name)}
		}
		return coll, nil
	}
	coll := &collective{
		seq:      seq,
		kind:     kind,
		name:     name,
		contribs: make([][]byte, cl.cfg.Workers),
		done:     make(chan struct{}),
	}
	cl.colls[seq] = coll
	if seq > cl.highSeq {
		cl.highSeq = seq
	}
	cl.trace = append(cl.trace, CollectiveSite{Seq: seq, Name: name, Kind: kind})
	return coll, nil
}

// completeLocked derives the release bodies. A gather releases all
// contributions in rank order to everyone; a shuffle transposes the per-rank
// bucket lists so rank t receives bucket t of every source in rank order.
func (coll *collective) completeLocked(workers int) error {
	coll.releases = make([][]byte, workers)
	if coll.kind == kindGather {
		var rel []byte
		for _, body := range coll.contribs {
			rel = appendBlob(rel, body)
		}
		for r := range coll.releases {
			coll.releases[r] = rel
		}
		return nil
	}
	buckets := make([][][]byte, workers) // [source][target]
	for s, body := range coll.contribs {
		bs, err := splitBlobs(body)
		if err != nil || len(bs) != workers {
			return fmt.Errorf("corrupt shuffle contribution from rank %d: %d buckets, want %d", s, len(bs), workers)
		}
		buckets[s] = bs
	}
	for t := 0; t < workers; t++ {
		var rel []byte
		for s := 0; s < workers; s++ {
			rel = appendBlob(rel, buckets[s][t])
		}
		coll.releases[t] = rel
	}
	return nil
}

// handleFaultFired marks an injected process fault spent, and fast-paths the
// loss declaration for kills so recovery does not wait out the deadline.
func (cl *Cluster) handleFaultFired(rank int, payload []byte) {
	idx, _, ok := uvarintAt(payload)
	if !ok || idx >= len(cl.cfg.ProcFaults) {
		return
	}
	cl.mu.Lock()
	cl.spentFaults[idx] = true
	pf := cl.cfg.ProcFaults[idx]
	if pf.Kind == ProcKill && pf.Rank == rank {
		// The notice names the fault, so no loss inference: inferring here
		// would spend the NEXT kill scheduled for this rank too, silently
		// disarming a repeated-kill schedule.
		cl.loseRankLocked(rank, ErrWorkerKilled, false)
	}
	cl.mu.Unlock()
}

// superviseLoop sends coordinator→worker heartbeats and enforces the
// heartbeat deadline, declaring stale workers lost.
func (cl *Cluster) superviseLoop() {
	defer cl.wg.Done()
	tick := time.NewTicker(cl.cfg.HeartbeatInterval)
	defer tick.Stop()
	for {
		select {
		case <-cl.done:
			return
		case <-tick.C:
		}
		cl.mu.Lock()
		if cl.err != nil {
			cl.mu.Unlock()
			return
		}
		now := time.Now()
		ccs := make([]*coordConn, 0, len(cl.ranks))
		for r, rs := range cl.ranks {
			if rs.cc != nil {
				ccs = append(ccs, rs.cc)
			}
			if now.Sub(rs.lastSeen) > cl.cfg.HeartbeatDeadline {
				cl.loseRankLocked(r, fmt.Errorf("heartbeat deadline exceeded (last seen %v ago)", now.Sub(rs.lastSeen).Round(time.Millisecond)), true)
			}
		}
		cl.mu.Unlock()
		for _, cc := range ccs {
			cc.send(cl.cfg.WriteTimeout, msgHeartbeat, nil)
		}
	}
}

// frontierLocked is the smallest incomplete collective barrier — the point
// lineage replay must re-reach. With no incomplete barrier it is the next
// unseen one.
func (cl *Cluster) frontierLocked() (int, string) {
	frontier, name := cl.highSeq+1, "cluster"
	for seq, coll := range cl.colls {
		if coll.have < cl.cfg.Workers && seq < frontier {
			frontier, name = seq, coll.name
		}
	}
	return frontier, name
}

// loseRankLocked declares one worker process lost and decides between
// respawn-and-replay and terminal failure. The classification mirrors the
// in-process retry path: a loss is transient (ErrProcessLoss wrapped
// Transient inside a StageError naming the frontier stage) unless the rank
// died twice at the same barrier — then the loss is deterministic — or its
// respawn budget is exhausted. inferSpent is set by detection paths that
// carry no fault-fired notice (the heartbeat deadline): the killed worker may
// have died before its notice got out, so the first unspent kill scheduled
// for this rank is assumed to be the one that fired.
func (cl *Cluster) loseRankLocked(rank int, cause error, inferSpent bool) {
	rs := cl.ranks[rank]
	if rs.lostGen == rs.gen || rs.goodbye || cl.err != nil || cl.closed() {
		return // this generation is already handled (or the job is over)
	}
	rs.lostGen = rs.gen
	if rs.cc != nil {
		rs.cc.conn.Close()
	}
	rs.losses++
	cl.countLocked(metrics.ClusterLosses, 1)
	// Loss inference: a killed worker may not have gotten its fault-fired
	// notice out. Mark the first unspent kill scheduled for this rank spent,
	// so the replayed replacement is not re-killed at the same barrier.
	if inferSpent {
		for i, pf := range cl.cfg.ProcFaults {
			if pf.Kind == ProcKill && pf.Rank == rank && !cl.spentFaults[i] {
				cl.spentFaults[i] = true
				break
			}
		}
	}
	frontierSeq, frontierName := cl.frontierLocked()
	deterministic := rs.lastLossSeq >= 0 && rs.lastLossSeq == frontierSeq
	rs.lastLossSeq = frontierSeq
	if deterministic || rs.losses > cl.cfg.MaxRespawns {
		cl.abortLocked(&StageError{Stage: frontierName, Worker: rank, Attempt: rs.losses,
			Deterministic: deterministic,
			Cause:         Transient(fmt.Errorf("%w: rank %d (%v)", ErrProcessLoss, rank, cause))})
		return
	}
	if cl.ctx != nil {
		cl.ctx.stats.recordRetries(frontierName, 1)
	}
	cl.countLocked(metrics.ClusterRespawns, 1)
	rs.lastSeen = time.Now().Add(cl.cfg.HeartbeatDeadline) // boot grace for the replacement
	if cl.cfg.Spawn == nil {
		cl.abortLocked(&StageError{Stage: frontierName, Worker: rank, Attempt: rs.losses,
			Cause: fmt.Errorf("%w: rank %d (%v); no respawn hook configured", ErrProcessLoss, rank, cause)})
		return
	}
	spawn := cl.cfg.Spawn
	cl.wg.Add(1)
	go func() {
		defer cl.wg.Done()
		if err := spawn(rank); err != nil {
			cl.Abort(&StageError{Stage: frontierName, Worker: rank, Attempt: rs.losses,
				Cause: fmt.Errorf("respawning rank %d: %w", rank, err)})
		}
	}()
}

// await blocks the coordinator driver at one collective barrier until the
// workers complete it (or the job dies), and returns the completed barrier.
func (cl *Cluster) await(c *Context, seq int, kind byte, name string) (*collective, error) {
	cl.mu.Lock()
	if cl.err != nil {
		err := cl.err
		cl.mu.Unlock()
		return nil, err
	}
	coll, err := cl.collLocked(seq, kind, name)
	if err != nil {
		cl.abortLocked(err)
		cl.mu.Unlock()
		return nil, err
	}
	cl.mu.Unlock()
	var cancel <-chan struct{}
	if c.job != nil {
		cancel = c.job.Done()
	}
	select {
	case <-coll.done:
		return coll, nil
	case <-cl.aborted:
		return nil, cl.Err()
	case <-cancel:
		err := &StageError{Stage: name, Worker: -1, Attempt: 1,
			Cause: fmt.Errorf("cancelled: %w", c.job.Err())}
		cl.Abort(err)
		return nil, err
	}
}

// errIsProcessLoss reports whether err traces to a lost worker process.
func errIsProcessLoss(err error) bool { return errors.Is(err, ErrProcessLoss) }
