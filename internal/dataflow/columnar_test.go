package dataflow

import (
	"reflect"
	"sort"
	"testing"
)

// Tests for the columnar batch execution path (batch.go): toggle plumbing,
// batch/fill accounting, span parity with the record path, and fault retry
// over batched fused chains. Everything columnar-dependent pins the mode with
// an explicit WithColumnar so the suite is meaningful under either value of
// the DATAFLOW_COLUMNAR environment default (CI runs both).

func TestColumnarEnvDefault(t *testing.T) {
	t.Setenv("DATAFLOW_COLUMNAR", "off")
	if NewContext(1).Columnar() {
		t.Error("DATAFLOW_COLUMNAR=off: context still columnar")
	}
	// An explicit option always wins over the environment.
	if !NewContext(1, WithColumnar(true)).Columnar() {
		t.Error("WithColumnar(true) under env off ignored")
	}
	t.Setenv("DATAFLOW_COLUMNAR", "on")
	if !NewContext(1).Columnar() {
		t.Error("DATAFLOW_COLUMNAR=on: context not columnar")
	}
	if NewContext(1, WithColumnar(false)).Columnar() {
		t.Error("WithColumnar(false) under env on ignored")
	}
}

// chainRun executes one Map→Filter fused chain over n records on w workers
// and returns the sorted output plus the chain's span.
func chainRun(t *testing.T, n, w int, columnar bool) ([]int, []int64) {
	t.Helper()
	c := NewContext(w, WithFusion(true), WithColumnar(columnar))
	d := Parallelize(c, "in", ints(n))
	doubled := Map(d, "double", func(x int) int { return 2 * x })
	kept := Filter(doubled, "small", func(x int) bool { return x < n })
	got := Collect(kept)
	sort.Ints(got)
	if c.Err() != nil {
		t.Fatalf("n=%d w=%d columnar=%v: %v", n, w, columnar, c.Err())
	}
	var sp *[3]int64
	for _, s := range c.Stats().Spans() {
		if s.Name == "double+small" {
			sp = &[3]int64{s.Batches, s.RecordsIn, s.RecordsOut}
		}
	}
	if sp == nil {
		t.Fatalf("no fused span recorded")
	}
	return got, sp[:]
}

// TestColumnarBatchAccounting pins the batch math: partitions are sliced into
// batchSize-lane dense batches, Map and Filter preserve the batch count, and
// the fill rate is the Filter's survivor fraction.
func TestColumnarBatchAccounting(t *testing.T) {
	const n, w = 2500, 2
	c := NewContext(w, WithFusion(true), WithColumnar(true))
	d := Parallelize(c, "in", ints(n))
	doubled := Map(d, "double", func(x int) int { return 2 * x })
	kept := Filter(doubled, "small", func(x int) bool { return x < n })
	out := Collect(kept)
	if len(out) != n/2 {
		t.Fatalf("chain output %d records, want %d", len(out), n/2)
	}

	// 1250 records per worker → 2 root batches each (1024 + 226); Filter
	// clears bits in place, so the same 4 batches reach the sink.
	var fused *int
	for _, sp := range c.Stats().Spans() {
		if sp.Name != "double+small" {
			continue
		}
		fused = new(int)
		if sp.Batches != 4 {
			t.Errorf("span batches = %d, want 4", sp.Batches)
		}
		// Fill: 2500 lanes delivered, 1250 still selected.
		if want := 0.5; sp.BatchFill != want {
			t.Errorf("span batch fill = %v, want %v", sp.BatchFill, want)
		}
	}
	if fused == nil {
		t.Fatal("no fused span recorded")
	}
	counters := c.Stats().Metrics().Snapshot().Counters
	if counters["dataflow.batches"] != 4 {
		t.Errorf("dataflow.batches = %d, want 4", counters["dataflow.batches"])
	}
	if counters["dataflow.batch.lanes"] != n {
		t.Errorf("dataflow.batch.lanes = %d, want %d", counters["dataflow.batch.lanes"], n)
	}
	if counters["dataflow.batch.live"] != n/2 {
		t.Errorf("dataflow.batch.live = %d, want %d", counters["dataflow.batch.live"], n/2)
	}
}

// TestColumnarDisabledNoBatchAccounting: the record path must leave no batch
// trace — spans and registry both stay clean, so snapshots diff cleanly
// across modes.
func TestColumnarDisabledNoBatchAccounting(t *testing.T) {
	c := NewContext(2, WithFusion(true), WithColumnar(false))
	d := Parallelize(c, "in", ints(2500))
	Map(d, "double", func(x int) int { return 2 * x }).Materialize()
	for _, sp := range c.Stats().Spans() {
		if sp.Batches != 0 || sp.BatchFill != 0 {
			t.Errorf("record-path span %q carries batch accounting: %+v", sp.Name, sp)
		}
	}
	counters := c.Stats().Metrics().Snapshot().Counters
	for _, k := range []string{"dataflow.batches", "dataflow.batch.lanes", "dataflow.batch.live"} {
		if counters[k] != 0 {
			t.Errorf("counter %s = %d on the record path", k, counters[k])
		}
	}
}

// TestColumnarSpanParity compares full span records between the two modes:
// names, record counts, per-worker attribution, and per-fused-op tallies are
// identical; only the batch fields differ (set on one side, zero on the
// other). This is the trace-level half of the differential contract — the
// record counts the benchmark harness reconciles must not move.
func TestColumnarSpanParity(t *testing.T) {
	run := func(columnar bool) (out []int, spans []struct {
		name    string
		in, out int64
		per     []int64
		fused   []int64
	}) {
		c := NewContext(3, WithFusion(true), WithColumnar(columnar))
		d := Parallelize(c, "in", ints(5000))
		m := Map(d, "widen", func(x int) int { return x * 3 })
		fl := FlatMap(m, "dup-odd", func(x int, emit func(int)) {
			emit(x)
			if x%2 != 0 {
				emit(-x)
			}
		})
		kept := Filter(fl, "bound", func(x int) bool { return x > -9000 })
		out = Collect(kept)
		sort.Ints(out)
		for _, sp := range c.Stats().Spans() {
			rec := struct {
				name    string
				in, out int64
				per     []int64
				fused   []int64
			}{name: sp.Name, in: sp.RecordsIn, out: sp.RecordsOut, per: sp.PerWorker}
			for _, op := range sp.FusedOps {
				rec.fused = append(rec.fused, op.RecordsIn)
			}
			spans = append(spans, rec)
			if columnar && sp.Name == "widen+dup-odd+bound" && sp.Batches == 0 {
				t.Error("columnar fused span recorded no batches")
			}
			if !columnar && sp.Batches != 0 {
				t.Errorf("record-path span %q recorded batches", sp.Name)
			}
		}
		return out, spans
	}
	batchOut, batchSpans := run(true)
	recOut, recSpans := run(false)
	if !reflect.DeepEqual(batchOut, recOut) {
		t.Fatal("columnar and record outputs differ")
	}
	if !reflect.DeepEqual(batchSpans, recSpans) {
		t.Errorf("span accounting diverged:\ncolumnar: %+v\nrecord:   %+v", batchSpans, recSpans)
	}
}

// TestFusedChainFaultRetryColumnar is the columnar twin of
// TestFusedChainFaultRetry: a transient fault at the composite site must be
// retried under the same span name, the replayed worker's per-op tallies and
// batch counts must reset (one clean pass), and the output must match the
// record path.
func TestFusedChainFaultRetryColumnar(t *testing.T) {
	plan := NewFaultPlan(Fault{Stage: "double+small", Worker: 1, Kind: FaultTransient})
	c := NewContext(2, WithFusion(true), WithColumnar(true), WithFaultPlan(plan), WithRetries(2))
	d := Parallelize(c, "in", ints(10))
	got := Collect(Filter(Map(d, "double", func(x int) int { return 2 * x }), "small", func(x int) bool { return x < 10 }))
	if err := c.Err(); err != nil {
		t.Fatalf("columnar fused chain did not recover from transient fault: %v", err)
	}
	sort.Ints(got)
	if want := []int{0, 2, 4, 6, 8}; !reflect.DeepEqual(got, want) {
		t.Fatalf("retried columnar chain output %v, want %v", got, want)
	}
	if fired := plan.Fired(); len(fired) != 1 {
		t.Fatalf("fault did not fire at the composite site: %+v", fired)
	}
	if r := c.Stats().Retries()["double+small"]; r != 1 {
		t.Errorf("retries[double+small] = %d, want 1", r)
	}
	for _, sp := range c.Stats().Spans() {
		if sp.Name != "double+small" {
			continue
		}
		// Tallies reset on replay: per-op counts reflect one clean pass.
		for _, op := range sp.FusedOps {
			if op.RecordsIn != 10 {
				t.Errorf("fused op %q counted %d records after retry, want 10", op.Name, op.RecordsIn)
			}
		}
		// Batch counts reset too: 5 records per worker → 1 batch each.
		if sp.Batches != 2 {
			t.Errorf("span batches = %d after retry, want 2 (reset on replay)", sp.Batches)
		}
		if sp.BatchFill != 0.5 {
			t.Errorf("span batch fill = %v after retry, want 0.5", sp.BatchFill)
		}
	}
}

// TestColumnarEquivalenceAcrossWorkers sweeps worker counts and chain shapes
// the quick-check cannot pin deterministically: batch-boundary sizes around
// batchSize and multiples, with outputs required byte-equal per partition
// (not just as a sorted multiset) so partition boundaries round-trip too.
func TestColumnarEquivalenceAcrossWorkers(t *testing.T) {
	for _, n := range []int{0, 1, batchSize - 1, batchSize, batchSize + 1, 3*batchSize + 17} {
		for _, w := range []int{1, 2, 4} {
			run := func(columnar bool) [][]int {
				c := NewContext(w, WithFusion(true), WithColumnar(columnar))
				d := Parallelize(c, "in", ints(n))
				m := Map(d, "inc", func(x int) int { return x + 1 })
				f := Filter(m, "odd", func(x int) bool { return x%2 == 1 })
				fl := FlatMap(f, "dup", func(x int, emit func(int)) { emit(x); emit(x * 10) })
				return fl.Partitions()
			}
			if got, want := run(true), run(false); !reflect.DeepEqual(got, want) {
				t.Errorf("n=%d w=%d: columnar partitions diverge from record path", n, w)
			}
		}
	}
}
