// Package dataflow is a small general-purpose dataflow engine that stands in
// for Apache Flink, the substrate RDFind was implemented on (App. C of the
// paper). It provides the operator repertoire RDFind's data flows require —
// Map, FlatMap, Filter, ReduceByKey with early aggregation (Flink's
// GroupCombine), GroupByKey, CoGroup, global reduction ("collect"), custom
// repartitioning, and broadcast variables — over horizontally partitioned
// in-memory datasets.
//
// A Context fixes the number of logical workers w. Every dataset is held as
// w partitions and every operator processes partitions in parallel, one
// goroutine per worker. Shuffles hash-partition records by key, with
// combiner-style pre-aggregation before data crosses partitions, mirroring
// the "early aggregation" the paper uses to cut network traffic (§5.2, §6.1).
//
// Narrow operators are lazy by default: they build a logical plan on the
// Dataset, and a chain of them executes as one fused stage when a wide
// operator or a sink forces materialization — the engine-level analogue of
// Flink's chained operators. See plan.go for the plan layer and
// WithFusion(false) for the eager escape hatch.
//
// The engine is fault-tolerant in the way Flink's task recovery made RDFind
// fault-tolerant (see fault.go): worker panics become StageErrors, stages
// failing with transient faults are re-executed from their retained input
// partitions with bounded exponential backoff, a context.Context attached
// with WithCancel aborts the pipeline between stages, and a FaultPlan injects
// deterministic faults for testing. Once a stage fails terminally, every
// subsequent operator on the same Context short-circuits to an empty dataset,
// so a broken pipeline drains in O(1) per operator and the first error is
// reported by Context.Err.
//
// Because the reproduction runs on a single machine, the engine additionally
// keeps per-worker work accounting (records processed per worker per stage).
// From it, Stats derives the critical-path cost and the work-balance speedup
// used by the scale-out experiment (Fig. 9): on a real cluster the elapsed
// time of a stage is governed by its most loaded worker, which is exactly
// what the per-stage maximum models.
package dataflow

import (
	"context"
	"fmt"
	"hash/maphash"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/dataflow/opt"
)

// Context carries the worker count, the hash seed that fixes the
// key-to-partition mapping for the lifetime of a job, the work accounting
// shared by all stages, and the fault-tolerance configuration.
//
// A Context is owned by a single job: the driver calls operators one after
// another, and the recorded stage order, the fault-injection occurrence
// counting, and the fail-fast error latch all assume that sequential
// ownership. Concurrent jobs must use separate Contexts (all engine state is
// internally synchronized, so even misuse cannot corrupt memory — but the
// interleaved stage accounting of two jobs would be meaningless).
type Context struct {
	workers     int
	seed        maphash.Seed
	stats       *Stats
	epoch       time.Time       // job start, the zero point of span offsets
	job         context.Context // nil: not cancellable
	maxAttempts int             // per-stage executions, ≥ 1
	backoff     time.Duration   // base of the exponential inter-attempt backoff
	faults      *FaultPlan      // nil: no injection, no tracing
	memBudget   int64           // bytes of keyed-operator state before spilling; 0: in-memory only
	spillDir    string          // directory for spill files; "": the OS temp dir
	fuse        bool            // lazy narrow-operator fusion (plan.go); false: eager per-op stages
	columnar    bool            // batch-at-a-time fused-chain execution (batch.go); false: record path
	optim       bool            // cost-based plan optimizer (opt package); false: structural defaults only
	prof        *opt.Profile    // cross-run observations feeding the optimizer; nil: cold
	planner     *opt.Planner    // per-job decision maker; nil when disabled or distributed

	jitter  float64                  // retry-backoff jitter fraction in [0, 1]
	sleepFn func(time.Duration) bool // inter-attempt wait; overridable for timing-free tests

	// Distributed-mode state (cluster.go / worker.go / dist.go). At most one
	// of cluster and worker is set; both nil means single-process.
	cluster  *Cluster    // set on the coordinator driver
	worker   *WorkerConn // set on a worker rank's driver replica
	rank     int         // this process's worker rank (-1: coordinator or single-process)
	distSeed uint64      // cluster-wide key-partitioning seed
	distSeq  int         // next collective barrier number (deterministic counting)

	mu  sync.Mutex
	err error // first terminal failure; latches the whole pipeline
}

// Option configures a Context beyond its worker count.
type Option func(*Context)

// WithCancel attaches a cancellation context: every stage checks it before
// each attempt, so a cancelled job aborts promptly between operators with
// Context.Err wrapping the context's error.
func WithCancel(ctx context.Context) Option {
	return func(c *Context) { c.job = ctx }
}

// WithRetries allows each stage up to n re-executions after a transient
// failure (n+1 attempts in total). Negative values are clamped to 0.
func WithRetries(n int) Option {
	return func(c *Context) {
		if n < 0 {
			n = 0
		}
		c.maxAttempts = n + 1
	}
}

// WithBackoff sets the base of the exponential backoff between stage
// attempts (base, 2·base, 4·base, …). Non-positive values disable waiting.
func WithBackoff(base time.Duration) Option {
	return func(c *Context) { c.backoff = base }
}

// WithFaultPlan attaches a deterministic fault-injection schedule. An empty
// plan injects nothing but traces every worker execution.
func WithFaultPlan(p *FaultPlan) Option {
	return func(c *Context) { c.faults = p }
}

// WithMemoryBudget bounds the keyed-operator state (aggregation maps and
// shuffle routing buffers) to roughly n bytes across all workers. Under the
// budget, ReduceByKey and GroupByKey over record types with a registered
// PairCodec switch to the spill-to-disk execution of spill.go; operators
// without a codec are unaffected. Non-positive budgets disable spilling.
func WithMemoryBudget(n int64) Option {
	return func(c *Context) {
		if n > 0 {
			c.memBudget = n
		}
	}
}

// WithSpillDir places spill files in dir instead of the OS temp directory.
// The directory must exist; files are unlinked at creation, so nothing is
// left behind regardless of how the job ends.
func WithSpillDir(dir string) Option {
	return func(c *Context) { c.spillDir = dir }
}

// WithFusion toggles lazy narrow-operator fusion (see plan.go). It is on by
// default; disabling it restores the old eager one-stage-per-operator
// execution, which the differential suites compare fused runs against. The
// DATAFLOW_FUSION environment variable ("off"/"0"/"false" disables,
// "on"/"1"/"true" enables) sets the process-wide default; an explicit
// WithFusion always wins over the environment.
func WithFusion(enabled bool) Option {
	return func(c *Context) { c.fuse = enabled }
}

// fusionDefault reads the DATAFLOW_FUSION environment toggle.
func fusionDefault() bool {
	switch os.Getenv("DATAFLOW_FUSION") {
	case "off", "0", "false":
		return false
	default:
		return true
	}
}

// WithColumnar toggles columnar batch-at-a-time execution of fused chains
// (see batch.go). It is on by default and only takes effect while fusion is
// on — the record path and the batch path produce byte-identical partitions,
// which the batch-vs-record differential suites pin. The DATAFLOW_COLUMNAR
// environment variable ("off"/"0"/"false" disables, "on"/"1"/"true" enables)
// sets the process-wide default; an explicit WithColumnar always wins.
func WithColumnar(enabled bool) Option {
	return func(c *Context) { c.columnar = enabled }
}

// columnarDefault reads the DATAFLOW_COLUMNAR environment toggle.
func columnarDefault() bool {
	switch os.Getenv("DATAFLOW_COLUMNAR") {
	case "off", "0", "false":
		return false
	default:
		return true
	}
}

// WithOptimizer toggles the cost-based plan optimizer (see the opt package).
// It is on by default; disabling it restores the pre-optimizer structural
// defaults (no shared-prefix materialization, no pushdown, global policies),
// which the optimizer differential suites compare against — results are
// byte-identical either way. The DATAFLOW_OPTIMIZER environment variable
// ("off"/"0"/"false" disables, "on"/"1"/"true" enables) sets the
// process-wide default; an explicit WithOptimizer always wins.
func WithOptimizer(enabled bool) Option {
	return func(c *Context) { c.optim = enabled }
}

// optimizerDefault reads the DATAFLOW_OPTIMIZER environment toggle.
func optimizerDefault() bool {
	switch os.Getenv("DATAFLOW_OPTIMIZER") {
	case "off", "0", "false":
		return false
	default:
		return true
	}
}

// WithProfile attaches cross-run span observations (loaded from a profile
// directory or shared in memory across a sweep) for the optimizer's
// self-tuned cost model and history-driven rules. The same handle can be
// passed to consecutive jobs; observations recorded after each run
// accumulate there. Ignored while the optimizer is disabled.
func WithProfile(p *opt.Profile) Option {
	return func(c *Context) { c.prof = p }
}

// NewContext returns a context with the given number of logical workers.
// Worker counts below 1 are clamped to 1. Without options the context is not
// cancellable, does not retry (one attempt per stage), and injects no faults.
func NewContext(workers int, opts ...Option) *Context {
	if workers < 1 {
		workers = 1
	}
	c := &Context{
		workers:     workers,
		seed:        maphash.MakeSeed(),
		stats:       &Stats{},
		epoch:       time.Now(),
		maxAttempts: 1,
		backoff:     time.Millisecond,
		fuse:        fusionDefault(),
		columnar:    columnarDefault(),
		optim:       optimizerDefault(),
		rank:        -1,
	}
	c.sleepFn = c.sleep
	for _, opt := range opts {
		opt(c)
	}
	if c.maxAttempts < 1 {
		c.maxAttempts = 1
	}
	// The planner exists only for single-process jobs: in distributed mode
	// the driver is replicated across ranks, and profile- or consumer-count-
	// driven decisions made from rank-local state could diverge between the
	// replicas, desynchronizing the collective barrier sequence. Structural
	// execution there stays on the (deterministic) global defaults.
	if c.optim && c.cluster == nil && c.worker == nil {
		c.planner = opt.NewPlanner(c.workers, c.prof)
	}
	return c
}

// Workers returns the number of logical workers.
func (c *Context) Workers() int { return c.workers }

// MemoryBudget returns the configured spill budget in bytes (0: unbudgeted).
func (c *Context) MemoryBudget() int64 { return c.memBudget }

// Columnar reports whether fused chains execute batch-at-a-time (the
// resolved value of WithColumnar and the DATAFLOW_COLUMNAR default). Domain
// layers use it to select companion columnar data structures — the bitmap
// candidate sets of internal/extract — alongside the engine's batch kernels.
func (c *Context) Columnar() bool { return c.columnar }

// Optimizer reports whether the cost-based plan optimizer is active for this
// context (enabled and not suppressed by distributed mode).
func (c *Context) Optimizer() bool { return c.planner != nil }

// OptimizerReport returns the optimizer's decisions so far (rewrite rules
// fired and per-stage policies chosen), or nil when the optimizer is
// inactive.
func (c *Context) OptimizerReport() *opt.Report {
	if c.planner == nil {
		return nil
	}
	return c.planner.Report()
}

// Stats returns the accumulated work accounting.
func (c *Context) Stats() *Stats { return c.stats }

// Err returns the first terminal stage failure (a *StageError, possibly
// wrapping a cancellation), or nil while the pipeline is healthy. Once
// non-nil, every subsequent operator short-circuits to an empty dataset.
func (c *Context) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// fail latches the first terminal failure. In distributed mode the first
// failure also propagates across the process boundary — the coordinator
// aborts the whole cluster, a worker notifies its coordinator — and the
// resulting echoes are absorbed by the latch on each side.
func (c *Context) fail(err error) {
	c.mu.Lock()
	first := c.err == nil
	if first {
		c.err = err
	}
	c.mu.Unlock()
	if !first {
		return
	}
	if c.cluster != nil {
		c.cluster.Abort(err)
	}
	if c.worker != nil {
		c.worker.Fail(err)
	}
}

func (c *Context) failed() bool { return c.Err() != nil }

// cancelErr returns the attached context's error, if any.
func (c *Context) cancelErr() error {
	if c.job == nil {
		return nil
	}
	return c.job.Err()
}

// sleep waits for the given duration unless the job is cancelled first; it
// reports whether the wait completed.
func (c *Context) sleep(d time.Duration) bool {
	if d <= 0 {
		return c.cancelErr() == nil
	}
	if c.job == nil {
		time.Sleep(d)
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.job.Done():
		return false
	}
}

// Dataset is a horizontally partitioned collection: one slice of records per
// logical worker. Under fusion (the default) a Dataset may be lazy — a
// pending narrow-operator chain instead of materialized partitions (see
// plan.go); every consumer that needs the records (wide operators, Collect,
// GlobalReduce, Len, Partitions, String) forces it exactly once. Like the
// Context it belongs to, a Dataset is driven by a single job goroutine.
type Dataset[T any] struct {
	ctx   *Context
	parts [][]T
	plan  *chain[T] // pending narrow-operator chain; nil once materialized
	// shuffle is a pending repartitioning (shuffleplan.go), the optimizer's
	// pushdown site: while it is pending, Maps and Filters may move onto its
	// scatter side. At most one of plan and shuffle is set; forcing clears
	// both. consumers counts how many lazy consumers have taken plan, the
	// shared-prefix rule's input.
	shuffle   *shufflePlan[T]
	consumers int
	// distinct is an upper bound on the number of distinct shuffle keys in
	// the dataset when one is known (0 = unknown). Operators that aggregate
	// by key (ReduceByKey, GroupByKey, Distinct) set it on their outputs and
	// use it to pre-size downstream aggregation maps; record-subset operators
	// (Filter) propagate it, since a subset cannot add keys.
	distinct int64
	// glen memoizes the cluster-wide Len in distributed mode, where computing
	// it is a collective barrier: repeated Len calls must not consume extra
	// barrier sequence numbers.
	glen   int
	glenOK bool
}

// Context returns the context the dataset belongs to.
func (d *Dataset[T]) Context() *Context { return d.ctx }

// Partitions exposes the raw partitions, mainly for tests and diagnostics,
// forcing any pending chain first. The slice always has exactly
// Context().Workers() entries.
func (d *Dataset[T]) Partitions() [][]T {
	d.force()
	return d.parts
}

// Len returns the total number of records across all partitions, forcing any
// pending chain first. In distributed mode it is a collective: every process
// receives the cluster-wide count (memoized, so repeated calls are free and
// barrier-aligned).
func (d *Dataset[T]) Len() int {
	d.force()
	if d.ctx.distributed() {
		if d.glenOK {
			return d.glen
		}
		if d.ctx.failed() {
			return 0
		}
		n, ok := distLen(d)
		if !ok {
			return 0
		}
		d.glen, d.glenOK = n, true
		return n
	}
	n := 0
	for _, p := range d.parts {
		n += len(p)
	}
	return n
}

// empty returns a dataset with w empty partitions, the value every operator
// yields once the pipeline has failed.
func empty[T any](c *Context) *Dataset[T] {
	return &Dataset[T]{ctx: c, parts: make([][]T, c.workers)}
}

// workerFailure pairs a worker index with its recovered error.
type workerFailure struct {
	worker int
	err    error
}

// runStage executes f(worker) once per worker, concurrently, with panic
// isolation, fault injection, and bounded retries for transient failures.
// Each retry re-executes only the failed workers; because operator inputs are
// immutable retained partitions and outputs are written per worker, a re-run
// worker deterministically reproduces its slot. runStage reports whether the
// stage completed; on terminal failure the error is latched on the Context.
func (c *Context) runStage(name string, f func(worker int) error) bool {
	if c.failed() {
		return false
	}
	pending := c.pendingWorkers()
	if len(pending) == 0 {
		// Coordinator driver: partitions execute on the worker processes;
		// the stage is a control-flow no-op here beyond the cancel check.
		if err := c.cancelErr(); err != nil {
			c.fail(&StageError{Stage: name, Worker: -1, Attempt: 1,
				Cause: fmt.Errorf("cancelled: %w", err)})
			return false
		}
		return true
	}
	// lastErr remembers each worker's failure message from the previous
	// attempt. Inputs are immutable retained partitions, so a transient
	// failure that reproduces byte-identically on replay is a deterministic
	// logic fault mislabeled as transient — retrying it further would burn
	// the whole retry budget reproducing the same failure.
	lastErr := make(map[int]string)
	for attempt := 1; ; attempt++ {
		if err := c.cancelErr(); err != nil {
			c.fail(&StageError{Stage: name, Worker: -1, Attempt: attempt,
				Cause: fmt.Errorf("cancelled: %w", err)})
			return false
		}
		var failures []workerFailure
		if c.planner != nil && c.planner.SerialStage(name, len(pending)) {
			// Worker-count policy: the stage's profiled work is smaller than
			// goroutine fan-out overhead, so its pending workers run
			// sequentially on the driver goroutine. Fault injection still
			// counts per (stage, worker) visit and failures still collect per
			// worker, so retry semantics and determinism are unchanged —
			// only the scheduling differs.
			for _, w := range pending {
				if err := c.runWorker(name, w, f); err != nil {
					failures = append(failures, workerFailure{worker: w, err: err})
				}
			}
		} else {
			var (
				mu sync.Mutex
				wg sync.WaitGroup
			)
			wg.Add(len(pending))
			for _, w := range pending {
				go func(w int) {
					defer wg.Done()
					if err := c.runWorker(name, w, f); err != nil {
						mu.Lock()
						failures = append(failures, workerFailure{worker: w, err: err})
						mu.Unlock()
					}
				}(w)
			}
			wg.Wait()
		}
		if len(failures) == 0 {
			return true
		}
		sort.Slice(failures, func(i, j int) bool { return failures[i].worker < failures[j].worker })
		first := failures[0]
		retryable := attempt < c.maxAttempts
		deterministic := false
		for _, wf := range failures {
			if !IsTransient(wf.err) {
				// A genuine crash outranks every other classification.
				retryable, deterministic = false, false
				first = wf
				break
			}
			if msg, seen := lastErr[wf.worker]; !deterministic && seen && msg == wf.err.Error() {
				deterministic = true
				first = wf
			}
		}
		if deterministic {
			retryable = false
		}
		if !retryable {
			c.fail(&StageError{Stage: name, Worker: first.worker, Attempt: attempt,
				Deterministic: deterministic, Cause: first.err})
			return false
		}
		for _, wf := range failures {
			lastErr[wf.worker] = wf.err.Error()
		}
		c.stats.recordRetries(name, len(failures))
		if !c.sleepFn(retryDelay(c.backoff, attempt, c.jitter)) {
			c.fail(&StageError{Stage: name, Worker: first.worker, Attempt: attempt,
				Cause: fmt.Errorf("cancelled during retry backoff: %w", c.cancelErr())})
			return false
		}
		pending = pending[:0]
		for _, wf := range failures {
			pending = append(pending, wf.worker)
		}
	}
}

// runWorker runs f(w) with panic recovery and fault injection. Injected
// faults fire before any user code, so a retried worker observes no partial
// state from the faulted execution.
func (c *Context) runWorker(name string, w int, f func(int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = recoverWorker(r)
		}
	}()
	if c.faults != nil {
		if ferr := c.faults.visit(name, w); ferr != nil {
			return ferr
		}
	}
	return f(w)
}

// hashPartition maps a key to a worker index.
func hashPartition[K comparable](c *Context, k K) int {
	if c.workers <= 1 {
		return 0
	}
	return int(maphash.Comparable(c.seed, k) % uint64(c.workers))
}

// Parallelize splits items across the context's workers in contiguous
// chunks, mimicking reading an unpartitioned input file split-wise. The
// remainder of len(items)/workers is spread over the first partitions, so
// partition sizes differ by at most one (ceil-chunking instead would leave
// trailing workers empty: n=5, w=4 gave 2/2/1/0 where 2/1/1/1 balances).
// Concatenating the partitions in worker order always reproduces items.
// Empty (or nil) input yields a dataset with w empty partitions.
func Parallelize[T any](c *Context, name string, items []T) *Dataset[T] {
	if c.failed() {
		return empty[T](c)
	}
	sp := c.begin(name)
	parts := make([][]T, c.workers)
	if len(items) == 0 {
		c.finish(sp, make([]int64, c.workers), 0)
		return &Dataset[T]{ctx: c, parts: parts}
	}
	base, rem := len(items)/c.workers, len(items)%c.workers
	counts := make([]int64, c.workers)
	lo := 0
	for w := 0; w < c.workers; w++ {
		hi := lo + base
		if w < rem {
			hi++
		}
		parts[w] = items[lo:hi:hi]
		counts[w] = int64(hi - lo)
		lo = hi
	}
	c.finish(sp, counts, int64(len(items)))
	return &Dataset[T]{ctx: c, parts: parts}
}

// Map applies f to every record, preserving partitioning. Under fusion it is
// lazy: the map is appended to the dataset's pending chain and runs when a
// consumer forces materialization.
func Map[T, U any](d *Dataset[T], name string, f func(T) U) *Dataset[U] {
	c := d.ctx
	if c.fuse {
		if c.failed() {
			return empty[U](c)
		}
		if s := d.shuffle; s != nil && c.planner != nil &&
			c.planner.PushThroughShuffle(s.name, opt.Op{Kind: opt.KindMap, Name: name}) {
			return &Dataset[U]{ctx: c, shuffle: shuffleMap(s, name, f)}
		}
		return &Dataset[U]{ctx: c, plan: chainMap(chainOf(d), name, f)}
	}
	d.force()
	sp := c.begin(name)
	out := make([][]U, c.workers)
	counts := make([]int64, c.workers)
	if !c.runStage(name, func(w int) error {
		in := d.parts[w]
		res := out[w] // a retried worker reuses its previous attempt's buffer
		if cap(res) < len(in) {
			res = make([]U, len(in))
		} else {
			res = res[:len(in)]
		}
		for i, t := range in {
			res[i] = f(t)
		}
		out[w] = res
		counts[w] = int64(len(in))
		return nil
	}) {
		return empty[U](c)
	}
	sp.materializedBytes = estimateMaterializedBytes(out)
	c.finish(sp, counts, totalLen(out))
	return &Dataset[U]{ctx: c, parts: out}
}

// FlatMap applies f to every record; f may emit any number of outputs.
// Under fusion it is lazy, like Map.
func FlatMap[T, U any](d *Dataset[T], name string, f func(T, func(U))) *Dataset[U] {
	c := d.ctx
	if c.fuse {
		if c.failed() {
			return empty[U](c)
		}
		return &Dataset[U]{ctx: c, plan: chainFlatMap(chainOf(d), name, f)}
	}
	d.force()
	sp := c.begin(name)
	out := make([][]U, c.workers)
	counts := make([]int64, c.workers)
	if !c.runStage(name, func(w int) error {
		res := out[w][:0] // a retried worker reuses its previous attempt's buffer
		emit := func(u U) { res = append(res, u) }
		for _, t := range d.parts[w] {
			f(t, emit)
		}
		out[w] = res
		counts[w] = int64(len(d.parts[w]))
		return nil
	}) {
		return empty[U](c)
	}
	sp.materializedBytes = estimateMaterializedBytes(out)
	c.finish(sp, counts, totalLen(out))
	return &Dataset[U]{ctx: c, parts: out}
}

// Filter keeps the records satisfying pred, preserving partitioning. It runs
// directly per partition (no FlatMap emit-closure indirection) and, as a
// record-subset operator, propagates the input's distinct-key bound — even
// across a pending chain. Under fusion it is lazy, like Map.
func Filter[T any](d *Dataset[T], name string, pred func(T) bool) *Dataset[T] {
	c := d.ctx
	if c.fuse {
		if c.failed() {
			return empty[T](c)
		}
		if s := d.shuffle; s != nil && c.planner != nil &&
			c.planner.PushThroughShuffle(s.name, opt.Op{Kind: opt.KindFilter, Name: name}) {
			return &Dataset[T]{ctx: c, shuffle: shuffleFilter(s, name, pred), distinct: d.distinct}
		}
		return &Dataset[T]{ctx: c, plan: chainFilter(chainOf(d), name, pred), distinct: d.distinct}
	}
	d.force()
	sp := c.begin(name)
	out := make([][]T, c.workers)
	counts := make([]int64, c.workers)
	if !c.runStage(name, func(w int) error {
		in := d.parts[w]
		res := out[w][:0] // a retried worker reuses its previous attempt's buffer
		for _, t := range in {
			if pred(t) {
				res = append(res, t)
			}
		}
		out[w] = res
		counts[w] = int64(len(in))
		return nil
	}) {
		return empty[T](c)
	}
	sp.materializedBytes = estimateMaterializedBytes(out)
	c.finish(sp, counts, totalLen(out))
	return &Dataset[T]{ctx: c, parts: out, distinct: d.distinct}
}

// MapPartitions applies f once per partition with the worker index, for
// operators that need partition-local state (e.g. building a partial Bloom
// filter per worker). Because f receives a whole partition slice, it is a
// fusion barrier on its input side — any pending upstream chain is forced
// first — but its own output is lazy and downstream narrow ops fuse onto it.
func MapPartitions[T, U any](d *Dataset[T], name string, f func(worker int, items []T, emit func(U))) *Dataset[U] {
	c := d.ctx
	d.force()
	if c.fuse {
		if c.failed() {
			return empty[U](c)
		}
		return &Dataset[U]{ctx: c, plan: chainMapPartitions(d.parts, name, f)}
	}
	sp := c.begin(name)
	out := make([][]U, c.workers)
	counts := make([]int64, c.workers)
	if !c.runStage(name, func(w int) error {
		res := out[w][:0] // a retried worker reuses its previous attempt's buffer
		f(w, d.parts[w], func(u U) { res = append(res, u) })
		out[w] = res
		counts[w] = int64(len(d.parts[w]))
		return nil
	}) {
		return empty[U](c)
	}
	sp.materializedBytes = estimateMaterializedBytes(out)
	c.finish(sp, counts, totalLen(out))
	return &Dataset[U]{ctx: c, parts: out}
}

// Pair is a keyed record, the currency of shuffles.
type Pair[K comparable, V any] struct {
	Key K
	Val V
}

// mapSizeHint sizes an aggregation map that will see n input records.
// distinct, when positive, is an upper bound on the number of distinct keys
// and wins whenever it is tighter than n. Without a bound, pre-sizing to n
// would balloon memory on heavily duplicated keys, so the speculative size is
// capped and the map grows normally past it.
func mapSizeHint(n int, distinct int64) int {
	if distinct > 0 && distinct < int64(n) {
		n = int(distinct)
	}
	const unknownKeyCap = 1024
	if distinct <= 0 && n > unknownKeyCap {
		return unknownKeyCap
	}
	return n
}

// mapSizeHintOpt is mapSizeHint with a profile-driven expected key count
// (the optimizer's map-presize policy): where no semantic distinct-key bound
// exists, the profile's observed output size replaces the speculative cap —
// one allocation instead of log(n/cap) rehashes on stages the history knows.
// A semantic bound still wins, and expected never sizes beyond n.
func mapSizeHintOpt(n int, distinct, expected int64) int {
	if distinct <= 0 && expected > 0 {
		if expected < int64(n) {
			return int(expected)
		}
		return n
	}
	return mapSizeHint(n, distinct)
}

// shuffleParts redistributes records to the partition chosen by target (which
// must return a value in [0, workers)). It runs as two named phases
// (name/scatter and name/gather); the boolean is false when either failed.
// The int64 estimates the bytes that crossed partitions (zero on one worker).
//
// The scatter is allocation-lean: a classification pass records every
// record's target in an int32 scratch slice while counting per destination,
// then exact-capacity buckets are filled — no append regrowth, at the price
// of reading the input twice. All scratch (target slice, bucket slices,
// gathered partitions) is published only through per-worker slots, so a
// retried worker finds its previous attempt's allocations, shrinks them with
// [:0], and overwrites them deterministically — the same retained-partition
// retry contract the append-based kernel had, with no allocations on re-runs.
func shuffleParts[T any](c *Context, name string, parts [][]T, target func(T) int) ([][]T, int64, bool) {
	buckets := make([][][]T, c.workers)
	targets := make([][]int32, c.workers)
	crossing := make([]int64, c.workers)
	if !c.runStage(name+"/scatter", func(w int) error {
		in := parts[w]
		tg := targets[w]
		if cap(tg) < len(in) {
			tg = make([]int32, len(in))
		} else {
			tg = tg[:len(in)]
		}
		cnt := make([]int32, c.workers)
		for i, t := range in {
			p := target(t)
			tg[i] = int32(p)
			cnt[p]++
		}
		targets[w] = tg
		local := buckets[w]
		if local == nil {
			local = make([][]T, c.workers)
		}
		for p, n := range cnt {
			if cap(local[p]) < int(n) {
				local[p] = make([]T, 0, n)
			} else {
				local[p] = local[p][:0]
			}
		}
		for i, t := range in {
			p := tg[i]
			local[p] = append(local[p], t)
		}
		buckets[w] = local
		crossing[w] = int64(len(in) - len(local[w]))
		return nil
	}) {
		return nil, 0, false
	}
	out := make([][]T, c.workers)
	if !c.runStage(name+"/gather", func(t int) error {
		n := 0
		for w := 0; w < c.workers; w++ {
			n += len(buckets[w][t])
		}
		part := out[t]
		if cap(part) < n {
			part = make([]T, 0, n)
		} else {
			part = part[:0]
		}
		for w := 0; w < c.workers; w++ {
			part = append(part, buckets[w][t]...)
		}
		out[t] = part
		return nil
	}) {
		return nil, 0, false
	}
	return out, estimateCrossingBytes(parts, crossing), true
}

// shuffleByKey hash-partitions keyed records so that all records with equal
// keys land in the same output partition. In distributed mode the shuffle
// crosses processes through the coordinator, routed by the seeded hash of
// the codec's key encoding instead of maphash (whose seed cannot leave the
// process).
func shuffleByKey[K comparable, V any](d *Dataset[Pair[K, V]], name string) ([][]Pair[K, V], int64, bool) {
	c := d.ctx
	if c.distributed() {
		return distShufflePairs(c, name, d.parts)
	}
	return shuffleParts(c, name, d.parts, func(kv Pair[K, V]) int {
		return hashPartition(c, kv.Key)
	})
}

// ReduceByKey combines values of equal keys with the associative,
// commutative function combine. Values are pre-aggregated within each source
// partition before the shuffle (early aggregation) and reduced again at the
// target, exactly like Flink's GroupCombine + GroupReduce pairing the paper
// describes.
func ReduceByKey[K comparable, V any](d *Dataset[Pair[K, V]], name string, combine func(V, V) V) *Dataset[Pair[K, V]] {
	c := d.ctx
	d.force()
	// Spilling and the network shuffle are mutually exclusive (the spill
	// scatter assumes all routes are process-local); distributed runs stay in
	// memory per rank.
	if c.memBudget > 0 && !c.distributed() {
		if codec, ok := pairCodecFor[K, V](); ok {
			// Memory-budget policy: a stage whose profiled state sits far
			// under the budget (and never spilled) keeps the in-memory path;
			// cold or borderline stages honor the global budget as before.
			if c.planner == nil || !c.planner.BypassSpill(name, c.memBudget) {
				return reduceByKeySpill(d, name, combine, codec)
			}
		}
	}
	// Profile-driven key-count hint for aggregation-map pre-sizing, consulted
	// only where no semantic distinct-key bound exists.
	var keyHint int64
	if c.planner != nil && d.distinct <= 0 {
		keyHint = c.planner.KeySizeHint(name)
	}
	sp := c.begin(name)
	counts := make([]int64, c.workers)
	for w, p := range d.parts {
		counts[w] = int64(len(p))
	}
	// Combiner selection: when the profile shows the partition-local combine
	// pass barely pre-aggregates, the shuffle takes the raw records instead of
	// paying a per-worker map build for nothing. combine is associative and
	// commutative, so the final reduce produces the same values either way.
	pre := d.parts
	if c.planner == nil || !c.planner.SkipCombiner(name) {
		// Combiner pass: partition-local aggregation.
		pre = make([][]Pair[K, V], c.workers)
		if !c.runStage(name+"/combine", func(w int) error {
			in := d.parts[w]
			agg := make(map[K]V, mapSizeHintOpt(len(in), d.distinct, keyHint))
			for _, kv := range in {
				if cur, ok := agg[kv.Key]; ok {
					agg[kv.Key] = combine(cur, kv.Val)
				} else {
					agg[kv.Key] = kv.Val
				}
			}
			local := pre[w] // a retried worker reuses its previous attempt's buffer
			if cap(local) < len(agg) {
				local = make([]Pair[K, V], 0, len(agg))
			} else {
				local = local[:0]
			}
			for k, v := range agg {
				local = append(local, Pair[K, V]{k, v})
			}
			pre[w] = local
			return nil
		}) {
			return empty[Pair[K, V]](c)
		}
		sp.combinerIn = sumCounts(counts)
		sp.combinerOut = totalLen(pre)
	}
	shuffled, bytes, ok := shuffleByKey(&Dataset[Pair[K, V]]{ctx: c, parts: pre, distinct: d.distinct}, name)
	if !ok {
		return empty[Pair[K, V]](c)
	}
	sp.shuffleBytes = bytes
	// Final reduce at the target partitions. Post-combine, every shuffled
	// record carries a distinct (partition, key) pair, so the partition length
	// itself is a tight key bound (with the combiner elided it is still an
	// upper bound, and the profile hint tightens it).
	out := make([][]Pair[K, V], c.workers)
	if !c.runStage(name+"/reduce", func(w int) error {
		in := shuffled[w]
		bound := int64(len(in))
		if d.distinct > 0 && d.distinct < bound {
			bound = d.distinct
		}
		if keyHint > 0 && keyHint < bound {
			bound = keyHint
		}
		agg := make(map[K]V, bound)
		for _, kv := range in {
			if cur, ok := agg[kv.Key]; ok {
				agg[kv.Key] = combine(cur, kv.Val)
			} else {
				agg[kv.Key] = kv.Val
			}
		}
		local := out[w]
		if cap(local) < len(agg) {
			local = make([]Pair[K, V], 0, len(agg))
		} else {
			local = local[:0]
		}
		for k, v := range agg {
			local = append(local, Pair[K, V]{k, v})
		}
		out[w] = local
		return nil
	}) {
		return empty[Pair[K, V]](c)
	}
	c.finish(sp, counts, totalLen(out))
	// One output record per distinct key: the output's own length is an exact
	// distinct-key bound for downstream aggregations.
	return &Dataset[Pair[K, V]]{ctx: c, parts: out, distinct: totalLen(out)}
}

// GroupByKey gathers all values of equal keys into one record.
func GroupByKey[K comparable, V any](d *Dataset[Pair[K, V]], name string) *Dataset[Pair[K, []V]] {
	c := d.ctx
	d.force()
	if c.memBudget > 0 && !c.distributed() {
		if codec, ok := pairCodecFor[K, V](); ok {
			if c.planner == nil || !c.planner.BypassSpill(name, c.memBudget) {
				return groupByKeySpill(d, name, codec)
			}
		}
	}
	var keyHint int64
	if c.planner != nil && d.distinct <= 0 {
		keyHint = c.planner.KeySizeHint(name)
	}
	sp := c.begin(name)
	counts := make([]int64, c.workers)
	for w, p := range d.parts {
		counts[w] = int64(len(p))
	}
	shuffled, bytes, ok := shuffleByKey(d, name)
	if !ok {
		return empty[Pair[K, []V]](c)
	}
	sp.shuffleBytes = bytes
	out := make([][]Pair[K, []V], c.workers)
	if !c.runStage(name+"/group", func(w int) error {
		in := shuffled[w]
		agg := make(map[K][]V, mapSizeHintOpt(len(in), d.distinct, keyHint))
		for _, kv := range in {
			agg[kv.Key] = append(agg[kv.Key], kv.Val)
		}
		local := make([]Pair[K, []V], 0, len(agg))
		for k, vs := range agg {
			local = append(local, Pair[K, []V]{k, vs})
		}
		out[w] = local
		return nil
	}) {
		return empty[Pair[K, []V]](c)
	}
	c.finish(sp, counts, totalLen(out))
	// One output record per distinct key.
	return &Dataset[Pair[K, []V]]{ctx: c, parts: out, distinct: totalLen(out)}
}

// CoGrouped is the result record of a CoGroup: all left and right values
// sharing one key.
type CoGrouped[K comparable, V, W any] struct {
	Key   K
	Left  []V
	Right []W
}

// CoGroup joins two keyed datasets, emitting one record per key present on
// either side (a full-outer co-group, Flink's CoGroup operator).
func CoGroup[K comparable, V, W any](a *Dataset[Pair[K, V]], b *Dataset[Pair[K, W]], name string) *Dataset[CoGrouped[K, V, W]] {
	c := a.ctx
	if b.ctx != c {
		panic("dataflow: cogroup of datasets from different contexts")
	}
	a.force()
	b.force()
	sp := c.begin(name)
	sa, bytesA, okA := shuffleByKey(a, name+"/left")
	if !okA {
		return empty[CoGrouped[K, V, W]](c)
	}
	sb, bytesB, okB := shuffleByKey(b, name+"/right")
	if !okB {
		return empty[CoGrouped[K, V, W]](c)
	}
	sp.shuffleBytes = bytesA + bytesB
	out := make([][]CoGrouped[K, V, W], c.workers)
	counts := make([]int64, c.workers)
	if !c.runStage(name+"/join", func(w int) error {
		left := make(map[K][]V, mapSizeHint(len(sa[w]), a.distinct))
		for _, kv := range sa[w] {
			left[kv.Key] = append(left[kv.Key], kv.Val)
		}
		right := make(map[K][]W, mapSizeHint(len(sb[w]), b.distinct))
		for _, kv := range sb[w] {
			right[kv.Key] = append(right[kv.Key], kv.Val)
		}
		local := make([]CoGrouped[K, V, W], 0, len(left))
		for k, vs := range left {
			local = append(local, CoGrouped[K, V, W]{k, vs, right[k]})
		}
		for k, ws := range right {
			if _, seen := left[k]; !seen {
				local = append(local, CoGrouped[K, V, W]{Key: k, Right: ws})
			}
		}
		out[w] = local
		counts[w] = int64(len(sa[w]) + len(sb[w]))
		return nil
	}) {
		return empty[CoGrouped[K, V, W]](c)
	}
	c.finish(sp, counts, totalLen(out))
	return &Dataset[CoGrouped[K, V, W]]{ctx: c, parts: out}
}

// Union concatenates two datasets partition-wise without a shuffle. Both
// must belong to the same context.
func Union[T any](a, b *Dataset[T], name string) *Dataset[T] {
	c := a.ctx
	if b.ctx != c {
		panic("dataflow: union of datasets from different contexts")
	}
	a.force()
	b.force()
	sp := c.begin(name)
	out := make([][]T, c.workers)
	counts := make([]int64, c.workers)
	if !c.runStage(name, func(w int) error {
		n := len(a.parts[w]) + len(b.parts[w])
		part := out[w] // a retried worker reuses its previous attempt's buffer
		if cap(part) < n {
			part = make([]T, 0, n)
		} else {
			part = part[:0]
		}
		part = append(part, a.parts[w]...)
		part = append(part, b.parts[w]...)
		out[w] = part
		counts[w] = int64(len(part))
		return nil
	}) {
		return empty[T](c)
	}
	c.finish(sp, counts, totalLen(out))
	// Key bounds add across a concatenation, but only when both are known.
	var hint int64
	if a.distinct > 0 && b.distinct > 0 {
		hint = a.distinct + b.distinct
	}
	return &Dataset[T]{ctx: c, parts: out, distinct: hint}
}

// Distinct removes duplicate records via a hash shuffle, so equal records
// meet on one worker. It is the engine-level form of the early-aggregated
// deduplication RDFind's capture-evidence stage performs.
//
// It runs directly on T — records are deduplicated partition-locally
// (name/combine, the early aggregation), shuffled by their own hash, and
// deduplicated once more at the target (name/reduce) — instead of boxing
// every record into a Pair[T, struct{}] and delegating to ReduceByKey. Within
// each partition, output records keep first-occurrence order.
func Distinct[T comparable](d *Dataset[T], name string) *Dataset[T] {
	c := d.ctx
	d.force()
	sp := c.begin(name)
	pre := make([][]T, c.workers)
	counts := make([]int64, c.workers)
	if !c.runStage(name+"/combine", func(w int) error {
		in := d.parts[w]
		seen := make(map[T]struct{}, mapSizeHint(len(in), d.distinct))
		local := pre[w][:0] // a retried worker reuses its previous attempt's buffer
		for _, t := range in {
			if _, dup := seen[t]; !dup {
				seen[t] = struct{}{}
				local = append(local, t)
			}
		}
		pre[w] = local
		counts[w] = int64(len(in))
		return nil
	}) {
		return empty[T](c)
	}
	sp.combinerIn = sumCounts(counts)
	sp.combinerOut = totalLen(pre)
	var (
		shuffled [][]T
		bytes    int64
		ok       bool
	)
	if c.distributed() {
		// Route each record by the seeded hash of its own encoding, so equal
		// records meet on one rank cluster-wide.
		shuffled, bytes, ok = distShuffleRecords(c, name, pre, nil)
	} else {
		shuffled, bytes, ok = shuffleParts(c, name, pre, func(t T) int {
			return hashPartition(c, t)
		})
	}
	if !ok {
		return empty[T](c)
	}
	sp.shuffleBytes = bytes
	out := make([][]T, c.workers)
	if !c.runStage(name+"/reduce", func(w int) error {
		in := shuffled[w]
		bound := int64(len(in)) // post-combine, the partition length is tight
		if d.distinct > 0 && d.distinct < bound {
			bound = d.distinct
		}
		seen := make(map[T]struct{}, bound)
		local := out[w][:0]
		for _, t := range in {
			if _, dup := seen[t]; !dup {
				seen[t] = struct{}{}
				local = append(local, t)
			}
		}
		out[w] = local
		return nil
	}) {
		return empty[T](c)
	}
	c.finish(sp, counts, totalLen(out))
	// Every surviving record is a distinct key by construction.
	return &Dataset[T]{ctx: c, parts: out, distinct: totalLen(out)}
}

// PartitionBy redistributes records by an explicit partition function,
// Flink's Repartition. RDFind uses it to spread the work units of dominant
// capture groups round-robin across workers (§7.2).
func PartitionBy[T any](d *Dataset[T], name string, part func(T) int) *Dataset[T] {
	c := d.ctx
	d.force()
	wrap := func(t T) int {
		p := part(t) % c.workers
		if p < 0 {
			p += c.workers
		}
		return p
	}
	if c.planner != nil && c.fuse && !c.distributed() && !c.failed() {
		// Optimizer path: leave the shuffle pending so Maps and Filters can
		// push onto its scatter side (shuffleplan.go). Routing stays on the
		// pre-image, so placement — and the final bytes — are identical.
		return &Dataset[T]{ctx: c, shuffle: shuffleRoot(name, d.parts, wrap), distinct: d.distinct}
	}
	sp := c.begin(name)
	counts := make([]int64, c.workers)
	for w, p := range d.parts {
		counts[w] = int64(len(p))
	}
	var (
		out   [][]T
		bytes int64
		ok    bool
	)
	if c.distributed() {
		// part must be a pure function of the record; the replicated drivers
		// all compute the same placement.
		out, bytes, ok = distShuffleRecords(c, name, d.parts, wrap)
	} else {
		out, bytes, ok = shuffleParts(c, name, d.parts, wrap)
	}
	if !ok {
		return empty[T](c)
	}
	sp.shuffleBytes = bytes
	c.finish(sp, counts, totalLen(out))
	// A repartition moves records without merging keys.
	return &Dataset[T]{ctx: c, parts: out, distinct: d.distinct}
}

// Collect gathers all records on the driver, Flink's collect/broadcast
// boundary. The returned slice concatenates partitions in worker order. On a
// failed pipeline it returns nil; check Context.Err.
func Collect[T any](d *Dataset[T]) []T {
	d.force()
	if d.ctx.failed() {
		return nil
	}
	if d.ctx.distributed() {
		// A gather collective: every process receives all records in (rank,
		// partition-order) — the same order the single-process concatenation
		// produces — so driver control flow built on Collect results stays
		// identical across the replicated drivers.
		all, ok := distCollect(d)
		if !ok {
			return nil
		}
		return all
	}
	var all []T
	for _, p := range d.parts {
		all = append(all, p...)
	}
	return all
}

// GlobalReduce folds all records into one value, used to union per-worker
// partial Bloom filters (Fig. 5, step 4). f must be associative: each worker
// first folds its own partition (name/partial), then the per-worker partial
// values meet in a binary merge tree (name/merge, ⌈log₂ w⌉ rounds) instead of
// a record-by-record fold on the driver. Records still combine in worker
// order, so f need not be commutative. The boolean is false when the dataset
// is empty or the pipeline has failed.
func GlobalReduce[T any](d *Dataset[T], name string, f func(T, T) T) (T, bool) {
	c := d.ctx
	d.force()
	var zero T
	if c.failed() {
		return zero, false
	}
	sp := c.begin(name)
	counts := make([]int64, c.workers)
	for w, p := range d.parts {
		counts[w] = int64(len(p))
	}
	partials := make([]T, c.workers)
	have := make([]bool, c.workers)
	if !c.runStage(name+"/partial", func(w int) error {
		var acc T
		ok := false // reset at entry so a retried worker restarts cleanly
		for _, t := range d.parts[w] {
			if !ok {
				acc, ok = t, true
			} else {
				acc = f(acc, t)
			}
		}
		partials[w], have[w] = acc, ok
		return nil
	}) {
		return zero, false
	}
	if c.distributed() {
		// Cross-process merge: gather the per-rank partials and fold them in
		// rank order on every process. The linear fold equals the merge tree
		// below by associativity, and decoding fresh copies per process keeps
		// accumulator-mutating f (Bloom union) safe.
		var partial T
		had := false
		if c.worker != nil {
			partial, had = partials[c.rank], have[c.rank]
		}
		acc, got, ok := distMergePartials(c, name, f, partial, had)
		if !ok {
			return zero, false
		}
		var out int64
		if got {
			out = 1
		}
		c.finish(sp, counts, out)
		return acc, got
	}
	// Each round halves the live slots: merge worker w combines slot
	// i = w·2·stride with its partner at i+stride. Rounds write into fresh
	// arrays, so a retried worker re-reads an unmodified previous round.
	for stride := 1; stride < c.workers; stride *= 2 {
		next := make([]T, c.workers)
		haveNext := make([]bool, c.workers)
		if !c.runStage(name+"/merge", func(w int) error {
			i := w * 2 * stride
			if i >= c.workers {
				return nil // no slot for this worker in this round
			}
			acc, ok := partials[i], have[i]
			if j := i + stride; j < c.workers && have[j] {
				if ok {
					acc = f(acc, partials[j])
				} else {
					acc, ok = partials[j], true
				}
			}
			next[i], haveNext[i] = acc, ok
			return nil
		}) {
			return zero, false
		}
		partials, have = next, haveNext
	}
	var out int64
	if have[0] {
		out = 1
	}
	c.finish(sp, counts, out)
	return partials[0], have[0]
}

// String summarizes the dataset for diagnostics, forcing any pending chain
// (via Len) exactly once.
func (d *Dataset[T]) String() string {
	return fmt.Sprintf("Dataset(workers=%d, records=%d)", d.ctx.workers, d.Len())
}
