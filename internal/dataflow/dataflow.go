// Package dataflow is a small general-purpose dataflow engine that stands in
// for Apache Flink, the substrate RDFind was implemented on (App. C of the
// paper). It provides the operator repertoire RDFind's data flows require —
// Map, FlatMap, Filter, ReduceByKey with early aggregation (Flink's
// GroupCombine), GroupByKey, CoGroup, global reduction ("collect"), custom
// repartitioning, and broadcast variables — over horizontally partitioned
// in-memory datasets.
//
// A Context fixes the number of logical workers w. Every dataset is held as
// w partitions and every operator processes partitions in parallel, one
// goroutine per worker. Shuffles hash-partition records by key, with
// combiner-style pre-aggregation before data crosses partitions, mirroring
// the "early aggregation" the paper uses to cut network traffic (§5.2, §6.1).
//
// Because the reproduction runs on a single machine, the engine additionally
// keeps per-worker work accounting (records processed per worker per stage).
// From it, Stats derives the critical-path cost and the work-balance speedup
// used by the scale-out experiment (Fig. 9): on a real cluster the elapsed
// time of a stage is governed by its most loaded worker, which is exactly
// what the per-stage maximum models.
package dataflow

import (
	"fmt"
	"hash/maphash"
	"sync"
)

// Context carries the worker count, the hash seed that fixes the
// key-to-partition mapping for the lifetime of a job, and the work
// accounting shared by all stages.
type Context struct {
	workers int
	seed    maphash.Seed
	stats   *Stats
}

// NewContext returns a context with the given number of logical workers.
// Worker counts below 1 are clamped to 1.
func NewContext(workers int) *Context {
	if workers < 1 {
		workers = 1
	}
	return &Context{
		workers: workers,
		seed:    maphash.MakeSeed(),
		stats:   &Stats{},
	}
}

// Workers returns the number of logical workers.
func (c *Context) Workers() int { return c.workers }

// Stats returns the accumulated work accounting.
func (c *Context) Stats() *Stats { return c.stats }

// Dataset is a horizontally partitioned collection: one slice of records per
// logical worker.
type Dataset[T any] struct {
	ctx   *Context
	parts [][]T
}

// Context returns the context the dataset belongs to.
func (d *Dataset[T]) Context() *Context { return d.ctx }

// Partitions exposes the raw partitions, mainly for tests and diagnostics.
func (d *Dataset[T]) Partitions() [][]T { return d.parts }

// Len returns the total number of records across all partitions.
func (d *Dataset[T]) Len() int {
	n := 0
	for _, p := range d.parts {
		n += len(p)
	}
	return n
}

// runParallel executes f(worker) once per worker, concurrently.
func (c *Context) runParallel(f func(worker int)) {
	var wg sync.WaitGroup
	wg.Add(c.workers)
	for w := 0; w < c.workers; w++ {
		go func(w int) {
			defer wg.Done()
			f(w)
		}(w)
	}
	wg.Wait()
}

// hashPartition maps a key to a worker index.
func hashPartition[K comparable](c *Context, k K) int {
	return int(maphash.Comparable(c.seed, k) % uint64(c.workers))
}

// Parallelize splits items across the context's workers in contiguous
// chunks, mimicking reading an unpartitioned input file split-wise.
func Parallelize[T any](c *Context, name string, items []T) *Dataset[T] {
	parts := make([][]T, c.workers)
	chunk := (len(items) + c.workers - 1) / c.workers
	counts := make([]int64, c.workers)
	for w := 0; w < c.workers; w++ {
		lo := w * chunk
		if lo > len(items) {
			lo = len(items)
		}
		hi := lo + chunk
		if hi > len(items) {
			hi = len(items)
		}
		parts[w] = items[lo:hi:hi]
		counts[w] = int64(len(parts[w]))
	}
	c.stats.record(name, counts)
	return &Dataset[T]{ctx: c, parts: parts}
}

// Map applies f to every record, preserving partitioning.
func Map[T, U any](d *Dataset[T], name string, f func(T) U) *Dataset[U] {
	c := d.ctx
	out := make([][]U, c.workers)
	counts := make([]int64, c.workers)
	c.runParallel(func(w int) {
		in := d.parts[w]
		res := make([]U, len(in))
		for i, t := range in {
			res[i] = f(t)
		}
		out[w] = res
		counts[w] = int64(len(in))
	})
	c.stats.record(name, counts)
	return &Dataset[U]{ctx: c, parts: out}
}

// FlatMap applies f to every record; f may emit any number of outputs.
func FlatMap[T, U any](d *Dataset[T], name string, f func(T, func(U))) *Dataset[U] {
	c := d.ctx
	out := make([][]U, c.workers)
	counts := make([]int64, c.workers)
	c.runParallel(func(w int) {
		var res []U
		emit := func(u U) { res = append(res, u) }
		for _, t := range d.parts[w] {
			f(t, emit)
		}
		out[w] = res
		counts[w] = int64(len(d.parts[w]))
	})
	c.stats.record(name, counts)
	return &Dataset[U]{ctx: c, parts: out}
}

// Filter keeps the records satisfying pred, preserving partitioning.
func Filter[T any](d *Dataset[T], name string, pred func(T) bool) *Dataset[T] {
	return FlatMap(d, name, func(t T, emit func(T)) {
		if pred(t) {
			emit(t)
		}
	})
}

// MapPartitions applies f once per partition with the worker index, for
// operators that need partition-local state (e.g. building a partial Bloom
// filter per worker).
func MapPartitions[T, U any](d *Dataset[T], name string, f func(worker int, items []T, emit func(U))) *Dataset[U] {
	c := d.ctx
	out := make([][]U, c.workers)
	counts := make([]int64, c.workers)
	c.runParallel(func(w int) {
		var res []U
		f(w, d.parts[w], func(u U) { res = append(res, u) })
		out[w] = res
		counts[w] = int64(len(d.parts[w]))
	})
	c.stats.record(name, counts)
	return &Dataset[U]{ctx: c, parts: out}
}

// Pair is a keyed record, the currency of shuffles.
type Pair[K comparable, V any] struct {
	Key K
	Val V
}

// shuffleByKey hash-partitions keyed records so that all records with equal
// keys land in the same output partition.
func shuffleByKey[K comparable, V any](d *Dataset[Pair[K, V]]) [][]Pair[K, V] {
	c := d.ctx
	// Each input partition fills one bucket per target worker; buckets are
	// then concatenated per target, keeping source order deterministic.
	buckets := make([][][]Pair[K, V], c.workers)
	c.runParallel(func(w int) {
		local := make([][]Pair[K, V], c.workers)
		for _, kv := range d.parts[w] {
			t := hashPartition(c, kv.Key)
			local[t] = append(local[t], kv)
		}
		buckets[w] = local
	})
	out := make([][]Pair[K, V], c.workers)
	c.runParallel(func(t int) {
		var part []Pair[K, V]
		for w := 0; w < c.workers; w++ {
			part = append(part, buckets[w][t]...)
		}
		out[t] = part
	})
	return out
}

// ReduceByKey combines values of equal keys with the associative,
// commutative function combine. Values are pre-aggregated within each source
// partition before the shuffle (early aggregation) and reduced again at the
// target, exactly like Flink's GroupCombine + GroupReduce pairing the paper
// describes.
func ReduceByKey[K comparable, V any](d *Dataset[Pair[K, V]], name string, combine func(V, V) V) *Dataset[Pair[K, V]] {
	c := d.ctx
	// Combiner pass: partition-local aggregation.
	pre := make([][]Pair[K, V], c.workers)
	counts := make([]int64, c.workers)
	c.runParallel(func(w int) {
		agg := make(map[K]V)
		for _, kv := range d.parts[w] {
			if cur, ok := agg[kv.Key]; ok {
				agg[kv.Key] = combine(cur, kv.Val)
			} else {
				agg[kv.Key] = kv.Val
			}
		}
		local := make([]Pair[K, V], 0, len(agg))
		for k, v := range agg {
			local = append(local, Pair[K, V]{k, v})
		}
		pre[w] = local
		counts[w] = int64(len(d.parts[w]))
	})
	shuffled := shuffleByKey(&Dataset[Pair[K, V]]{ctx: c, parts: pre})
	// Final reduce at the target partitions.
	out := make([][]Pair[K, V], c.workers)
	c.runParallel(func(w int) {
		agg := make(map[K]V)
		for _, kv := range shuffled[w] {
			if cur, ok := agg[kv.Key]; ok {
				agg[kv.Key] = combine(cur, kv.Val)
			} else {
				agg[kv.Key] = kv.Val
			}
		}
		local := make([]Pair[K, V], 0, len(agg))
		for k, v := range agg {
			local = append(local, Pair[K, V]{k, v})
		}
		out[w] = local
	})
	c.stats.record(name, counts)
	return &Dataset[Pair[K, V]]{ctx: c, parts: out}
}

// GroupByKey gathers all values of equal keys into one record.
func GroupByKey[K comparable, V any](d *Dataset[Pair[K, V]], name string) *Dataset[Pair[K, []V]] {
	c := d.ctx
	counts := make([]int64, c.workers)
	for w, p := range d.parts {
		counts[w] = int64(len(p))
	}
	shuffled := shuffleByKey(d)
	out := make([][]Pair[K, []V], c.workers)
	c.runParallel(func(w int) {
		agg := make(map[K][]V)
		for _, kv := range shuffled[w] {
			agg[kv.Key] = append(agg[kv.Key], kv.Val)
		}
		local := make([]Pair[K, []V], 0, len(agg))
		for k, vs := range agg {
			local = append(local, Pair[K, []V]{k, vs})
		}
		out[w] = local
	})
	c.stats.record(name, counts)
	return &Dataset[Pair[K, []V]]{ctx: c, parts: out}
}

// CoGrouped is the result record of a CoGroup: all left and right values
// sharing one key.
type CoGrouped[K comparable, V, W any] struct {
	Key   K
	Left  []V
	Right []W
}

// CoGroup joins two keyed datasets, emitting one record per key present on
// either side (a full-outer co-group, Flink's CoGroup operator).
func CoGroup[K comparable, V, W any](a *Dataset[Pair[K, V]], b *Dataset[Pair[K, W]], name string) *Dataset[CoGrouped[K, V, W]] {
	c := a.ctx
	if b.ctx != c {
		panic("dataflow: cogroup of datasets from different contexts")
	}
	sa := shuffleByKey(a)
	sb := shuffleByKey(b)
	out := make([][]CoGrouped[K, V, W], c.workers)
	counts := make([]int64, c.workers)
	c.runParallel(func(w int) {
		left := make(map[K][]V)
		for _, kv := range sa[w] {
			left[kv.Key] = append(left[kv.Key], kv.Val)
		}
		right := make(map[K][]W)
		for _, kv := range sb[w] {
			right[kv.Key] = append(right[kv.Key], kv.Val)
		}
		var local []CoGrouped[K, V, W]
		for k, vs := range left {
			local = append(local, CoGrouped[K, V, W]{k, vs, right[k]})
		}
		for k, ws := range right {
			if _, seen := left[k]; !seen {
				local = append(local, CoGrouped[K, V, W]{Key: k, Right: ws})
			}
		}
		out[w] = local
		counts[w] = int64(len(sa[w]) + len(sb[w]))
	})
	c.stats.record(name, counts)
	return &Dataset[CoGrouped[K, V, W]]{ctx: c, parts: out}
}

// Union concatenates two datasets partition-wise without a shuffle. Both
// must belong to the same context.
func Union[T any](a, b *Dataset[T], name string) *Dataset[T] {
	c := a.ctx
	if b.ctx != c {
		panic("dataflow: union of datasets from different contexts")
	}
	out := make([][]T, c.workers)
	counts := make([]int64, c.workers)
	c.runParallel(func(w int) {
		part := make([]T, 0, len(a.parts[w])+len(b.parts[w]))
		part = append(part, a.parts[w]...)
		part = append(part, b.parts[w]...)
		out[w] = part
		counts[w] = int64(len(part))
	})
	c.stats.record(name, counts)
	return &Dataset[T]{ctx: c, parts: out}
}

// Distinct removes duplicate records via a hash shuffle, so equal records
// meet on one worker. It is the engine-level form of the early-aggregated
// deduplication RDFind's capture-evidence stage performs.
func Distinct[T comparable](d *Dataset[T], name string) *Dataset[T] {
	keyed := Map(d, name+"-key", func(t T) Pair[T, struct{}] {
		return Pair[T, struct{}]{Key: t}
	})
	reduced := ReduceByKey(keyed, name, func(a, _ struct{}) struct{} { return a })
	return Map(reduced, name+"-unkey", func(p Pair[T, struct{}]) T { return p.Key })
}

// PartitionBy redistributes records by an explicit partition function,
// Flink's Repartition. RDFind uses it to spread the work units of dominant
// capture groups round-robin across workers (§7.2).
func PartitionBy[T any](d *Dataset[T], name string, part func(T) int) *Dataset[T] {
	c := d.ctx
	buckets := make([][][]T, c.workers)
	counts := make([]int64, c.workers)
	c.runParallel(func(w int) {
		local := make([][]T, c.workers)
		for _, t := range d.parts[w] {
			p := part(t) % c.workers
			if p < 0 {
				p += c.workers
			}
			local[p] = append(local[p], t)
		}
		buckets[w] = local
		counts[w] = int64(len(d.parts[w]))
	})
	out := make([][]T, c.workers)
	c.runParallel(func(t int) {
		var part []T
		for w := 0; w < c.workers; w++ {
			part = append(part, buckets[w][t]...)
		}
		out[t] = part
	})
	c.stats.record(name, counts)
	return &Dataset[T]{ctx: c, parts: out}
}

// Collect gathers all records on the driver, Flink's collect/broadcast
// boundary. The returned slice concatenates partitions in worker order.
func Collect[T any](d *Dataset[T]) []T {
	var all []T
	for _, p := range d.parts {
		all = append(all, p...)
	}
	return all
}

// GlobalReduce folds all records into one value on a single worker, used to
// union per-worker partial Bloom filters (Fig. 5, step 4). The boolean is
// false when the dataset is empty.
func GlobalReduce[T any](d *Dataset[T], name string, f func(T, T) T) (T, bool) {
	c := d.ctx
	counts := make([]int64, c.workers)
	for w, p := range d.parts {
		counts[w] = int64(len(p))
	}
	c.stats.record(name, counts)
	var acc T
	have := false
	for _, p := range d.parts {
		for _, t := range p {
			if !have {
				acc = t
				have = true
			} else {
				acc = f(acc, t)
			}
		}
	}
	return acc, have
}

// String summarizes the dataset for diagnostics.
func (d *Dataset[T]) String() string {
	return fmt.Sprintf("Dataset(workers=%d, records=%d)", d.ctx.workers, d.Len())
}
