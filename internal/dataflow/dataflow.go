// Package dataflow is a small general-purpose dataflow engine that stands in
// for Apache Flink, the substrate RDFind was implemented on (App. C of the
// paper). It provides the operator repertoire RDFind's data flows require —
// Map, FlatMap, Filter, ReduceByKey with early aggregation (Flink's
// GroupCombine), GroupByKey, CoGroup, global reduction ("collect"), custom
// repartitioning, and broadcast variables — over horizontally partitioned
// in-memory datasets.
//
// A Context fixes the number of logical workers w. Every dataset is held as
// w partitions and every operator processes partitions in parallel, one
// goroutine per worker. Shuffles hash-partition records by key, with
// combiner-style pre-aggregation before data crosses partitions, mirroring
// the "early aggregation" the paper uses to cut network traffic (§5.2, §6.1).
//
// The engine is fault-tolerant in the way Flink's task recovery made RDFind
// fault-tolerant (see fault.go): worker panics become StageErrors, stages
// failing with transient faults are re-executed from their retained input
// partitions with bounded exponential backoff, a context.Context attached
// with WithCancel aborts the pipeline between stages, and a FaultPlan injects
// deterministic faults for testing. Once a stage fails terminally, every
// subsequent operator on the same Context short-circuits to an empty dataset,
// so a broken pipeline drains in O(1) per operator and the first error is
// reported by Context.Err.
//
// Because the reproduction runs on a single machine, the engine additionally
// keeps per-worker work accounting (records processed per worker per stage).
// From it, Stats derives the critical-path cost and the work-balance speedup
// used by the scale-out experiment (Fig. 9): on a real cluster the elapsed
// time of a stage is governed by its most loaded worker, which is exactly
// what the per-stage maximum models.
package dataflow

import (
	"context"
	"fmt"
	"hash/maphash"
	"sort"
	"sync"
	"time"
)

// Context carries the worker count, the hash seed that fixes the
// key-to-partition mapping for the lifetime of a job, the work accounting
// shared by all stages, and the fault-tolerance configuration.
//
// A Context is owned by a single job: the driver calls operators one after
// another, and the recorded stage order, the fault-injection occurrence
// counting, and the fail-fast error latch all assume that sequential
// ownership. Concurrent jobs must use separate Contexts (all engine state is
// internally synchronized, so even misuse cannot corrupt memory — but the
// interleaved stage accounting of two jobs would be meaningless).
type Context struct {
	workers     int
	seed        maphash.Seed
	stats       *Stats
	epoch       time.Time       // job start, the zero point of span offsets
	job         context.Context // nil: not cancellable
	maxAttempts int             // per-stage executions, ≥ 1
	backoff     time.Duration   // base of the exponential inter-attempt backoff
	faults      *FaultPlan      // nil: no injection, no tracing

	mu  sync.Mutex
	err error // first terminal failure; latches the whole pipeline
}

// Option configures a Context beyond its worker count.
type Option func(*Context)

// WithCancel attaches a cancellation context: every stage checks it before
// each attempt, so a cancelled job aborts promptly between operators with
// Context.Err wrapping the context's error.
func WithCancel(ctx context.Context) Option {
	return func(c *Context) { c.job = ctx }
}

// WithRetries allows each stage up to n re-executions after a transient
// failure (n+1 attempts in total). Negative values are clamped to 0.
func WithRetries(n int) Option {
	return func(c *Context) {
		if n < 0 {
			n = 0
		}
		c.maxAttempts = n + 1
	}
}

// WithBackoff sets the base of the exponential backoff between stage
// attempts (base, 2·base, 4·base, …). Non-positive values disable waiting.
func WithBackoff(base time.Duration) Option {
	return func(c *Context) { c.backoff = base }
}

// WithFaultPlan attaches a deterministic fault-injection schedule. An empty
// plan injects nothing but traces every worker execution.
func WithFaultPlan(p *FaultPlan) Option {
	return func(c *Context) { c.faults = p }
}

// NewContext returns a context with the given number of logical workers.
// Worker counts below 1 are clamped to 1. Without options the context is not
// cancellable, does not retry (one attempt per stage), and injects no faults.
func NewContext(workers int, opts ...Option) *Context {
	if workers < 1 {
		workers = 1
	}
	c := &Context{
		workers:     workers,
		seed:        maphash.MakeSeed(),
		stats:       &Stats{},
		epoch:       time.Now(),
		maxAttempts: 1,
		backoff:     time.Millisecond,
	}
	for _, opt := range opts {
		opt(c)
	}
	if c.maxAttempts < 1 {
		c.maxAttempts = 1
	}
	return c
}

// Workers returns the number of logical workers.
func (c *Context) Workers() int { return c.workers }

// Stats returns the accumulated work accounting.
func (c *Context) Stats() *Stats { return c.stats }

// Err returns the first terminal stage failure (a *StageError, possibly
// wrapping a cancellation), or nil while the pipeline is healthy. Once
// non-nil, every subsequent operator short-circuits to an empty dataset.
func (c *Context) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// fail latches the first terminal failure.
func (c *Context) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
}

func (c *Context) failed() bool { return c.Err() != nil }

// cancelErr returns the attached context's error, if any.
func (c *Context) cancelErr() error {
	if c.job == nil {
		return nil
	}
	return c.job.Err()
}

// sleep waits for the given duration unless the job is cancelled first; it
// reports whether the wait completed.
func (c *Context) sleep(d time.Duration) bool {
	if d <= 0 {
		return c.cancelErr() == nil
	}
	if c.job == nil {
		time.Sleep(d)
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.job.Done():
		return false
	}
}

// Dataset is a horizontally partitioned collection: one slice of records per
// logical worker.
type Dataset[T any] struct {
	ctx   *Context
	parts [][]T
}

// Context returns the context the dataset belongs to.
func (d *Dataset[T]) Context() *Context { return d.ctx }

// Partitions exposes the raw partitions, mainly for tests and diagnostics.
// The slice always has exactly Context().Workers() entries.
func (d *Dataset[T]) Partitions() [][]T { return d.parts }

// Len returns the total number of records across all partitions.
func (d *Dataset[T]) Len() int {
	n := 0
	for _, p := range d.parts {
		n += len(p)
	}
	return n
}

// empty returns a dataset with w empty partitions, the value every operator
// yields once the pipeline has failed.
func empty[T any](c *Context) *Dataset[T] {
	return &Dataset[T]{ctx: c, parts: make([][]T, c.workers)}
}

// workerFailure pairs a worker index with its recovered error.
type workerFailure struct {
	worker int
	err    error
}

// runStage executes f(worker) once per worker, concurrently, with panic
// isolation, fault injection, and bounded retries for transient failures.
// Each retry re-executes only the failed workers; because operator inputs are
// immutable retained partitions and outputs are written per worker, a re-run
// worker deterministically reproduces its slot. runStage reports whether the
// stage completed; on terminal failure the error is latched on the Context.
func (c *Context) runStage(name string, f func(worker int) error) bool {
	if c.failed() {
		return false
	}
	pending := make([]int, c.workers)
	for w := range pending {
		pending[w] = w
	}
	for attempt := 1; ; attempt++ {
		if err := c.cancelErr(); err != nil {
			c.fail(&StageError{Stage: name, Worker: -1, Attempt: attempt,
				Cause: fmt.Errorf("cancelled: %w", err)})
			return false
		}
		var (
			mu       sync.Mutex
			failures []workerFailure
			wg       sync.WaitGroup
		)
		wg.Add(len(pending))
		for _, w := range pending {
			go func(w int) {
				defer wg.Done()
				if err := c.runWorker(name, w, f); err != nil {
					mu.Lock()
					failures = append(failures, workerFailure{worker: w, err: err})
					mu.Unlock()
				}
			}(w)
		}
		wg.Wait()
		if len(failures) == 0 {
			return true
		}
		sort.Slice(failures, func(i, j int) bool { return failures[i].worker < failures[j].worker })
		first := failures[0]
		retryable := attempt < c.maxAttempts
		for _, wf := range failures {
			if !IsTransient(wf.err) {
				retryable = false
				first = wf
				break
			}
		}
		if !retryable {
			c.fail(&StageError{Stage: name, Worker: first.worker, Attempt: attempt, Cause: first.err})
			return false
		}
		c.stats.recordRetries(name, len(failures))
		if !c.sleep(c.backoff << (attempt - 1)) {
			c.fail(&StageError{Stage: name, Worker: first.worker, Attempt: attempt,
				Cause: fmt.Errorf("cancelled during retry backoff: %w", c.cancelErr())})
			return false
		}
		pending = pending[:0]
		for _, wf := range failures {
			pending = append(pending, wf.worker)
		}
	}
}

// runWorker runs f(w) with panic recovery and fault injection. Injected
// faults fire before any user code, so a retried worker observes no partial
// state from the faulted execution.
func (c *Context) runWorker(name string, w int, f func(int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = recoverWorker(r)
		}
	}()
	if c.faults != nil {
		if ferr := c.faults.visit(name, w); ferr != nil {
			return ferr
		}
	}
	return f(w)
}

// hashPartition maps a key to a worker index.
func hashPartition[K comparable](c *Context, k K) int {
	if c.workers <= 1 {
		return 0
	}
	return int(maphash.Comparable(c.seed, k) % uint64(c.workers))
}

// Parallelize splits items across the context's workers in contiguous
// chunks, mimicking reading an unpartitioned input file split-wise. Empty
// (or nil) input yields a dataset with w empty partitions.
func Parallelize[T any](c *Context, name string, items []T) *Dataset[T] {
	if c.failed() {
		return empty[T](c)
	}
	sp := c.begin(name)
	parts := make([][]T, c.workers)
	if len(items) == 0 {
		c.finish(sp, make([]int64, c.workers), 0)
		return &Dataset[T]{ctx: c, parts: parts}
	}
	chunk := (len(items) + c.workers - 1) / c.workers
	counts := make([]int64, c.workers)
	for w := 0; w < c.workers; w++ {
		lo := w * chunk
		if lo > len(items) {
			lo = len(items)
		}
		hi := lo + chunk
		if hi > len(items) {
			hi = len(items)
		}
		parts[w] = items[lo:hi:hi]
		counts[w] = int64(len(parts[w]))
	}
	c.finish(sp, counts, int64(len(items)))
	return &Dataset[T]{ctx: c, parts: parts}
}

// Map applies f to every record, preserving partitioning.
func Map[T, U any](d *Dataset[T], name string, f func(T) U) *Dataset[U] {
	c := d.ctx
	sp := c.begin(name)
	out := make([][]U, c.workers)
	counts := make([]int64, c.workers)
	if !c.runStage(name, func(w int) error {
		in := d.parts[w]
		res := make([]U, len(in))
		for i, t := range in {
			res[i] = f(t)
		}
		out[w] = res
		counts[w] = int64(len(in))
		return nil
	}) {
		return empty[U](c)
	}
	c.finish(sp, counts, totalLen(out))
	return &Dataset[U]{ctx: c, parts: out}
}

// FlatMap applies f to every record; f may emit any number of outputs.
func FlatMap[T, U any](d *Dataset[T], name string, f func(T, func(U))) *Dataset[U] {
	c := d.ctx
	sp := c.begin(name)
	out := make([][]U, c.workers)
	counts := make([]int64, c.workers)
	if !c.runStage(name, func(w int) error {
		var res []U
		emit := func(u U) { res = append(res, u) }
		for _, t := range d.parts[w] {
			f(t, emit)
		}
		out[w] = res
		counts[w] = int64(len(d.parts[w]))
		return nil
	}) {
		return empty[U](c)
	}
	c.finish(sp, counts, totalLen(out))
	return &Dataset[U]{ctx: c, parts: out}
}

// Filter keeps the records satisfying pred, preserving partitioning.
func Filter[T any](d *Dataset[T], name string, pred func(T) bool) *Dataset[T] {
	return FlatMap(d, name, func(t T, emit func(T)) {
		if pred(t) {
			emit(t)
		}
	})
}

// MapPartitions applies f once per partition with the worker index, for
// operators that need partition-local state (e.g. building a partial Bloom
// filter per worker).
func MapPartitions[T, U any](d *Dataset[T], name string, f func(worker int, items []T, emit func(U))) *Dataset[U] {
	c := d.ctx
	sp := c.begin(name)
	out := make([][]U, c.workers)
	counts := make([]int64, c.workers)
	if !c.runStage(name, func(w int) error {
		var res []U
		f(w, d.parts[w], func(u U) { res = append(res, u) })
		out[w] = res
		counts[w] = int64(len(d.parts[w]))
		return nil
	}) {
		return empty[U](c)
	}
	c.finish(sp, counts, totalLen(out))
	return &Dataset[U]{ctx: c, parts: out}
}

// Pair is a keyed record, the currency of shuffles.
type Pair[K comparable, V any] struct {
	Key K
	Val V
}

// shuffleByKey hash-partitions keyed records so that all records with equal
// keys land in the same output partition. It runs as two named phases
// (name/scatter and name/gather); the boolean is false when either failed.
// The int64 estimates the bytes that crossed partitions (zero on one worker).
func shuffleByKey[K comparable, V any](d *Dataset[Pair[K, V]], name string) ([][]Pair[K, V], int64, bool) {
	c := d.ctx
	// Each input partition fills one bucket per target worker; buckets are
	// then concatenated per target, keeping source order deterministic.
	buckets := make([][][]Pair[K, V], c.workers)
	crossing := make([]int64, c.workers)
	if !c.runStage(name+"/scatter", func(w int) error {
		local := make([][]Pair[K, V], c.workers)
		for _, kv := range d.parts[w] {
			t := hashPartition(c, kv.Key)
			local[t] = append(local[t], kv)
		}
		buckets[w] = local
		crossing[w] = int64(len(d.parts[w]) - len(local[w]))
		return nil
	}) {
		return nil, 0, false
	}
	out := make([][]Pair[K, V], c.workers)
	if !c.runStage(name+"/gather", func(t int) error {
		var part []Pair[K, V]
		for w := 0; w < c.workers; w++ {
			part = append(part, buckets[w][t]...)
		}
		out[t] = part
		return nil
	}) {
		return nil, 0, false
	}
	return out, estimateCrossingBytes(d.parts, crossing), true
}

// ReduceByKey combines values of equal keys with the associative,
// commutative function combine. Values are pre-aggregated within each source
// partition before the shuffle (early aggregation) and reduced again at the
// target, exactly like Flink's GroupCombine + GroupReduce pairing the paper
// describes.
func ReduceByKey[K comparable, V any](d *Dataset[Pair[K, V]], name string, combine func(V, V) V) *Dataset[Pair[K, V]] {
	c := d.ctx
	sp := c.begin(name)
	// Combiner pass: partition-local aggregation.
	pre := make([][]Pair[K, V], c.workers)
	counts := make([]int64, c.workers)
	if !c.runStage(name+"/combine", func(w int) error {
		agg := make(map[K]V)
		for _, kv := range d.parts[w] {
			if cur, ok := agg[kv.Key]; ok {
				agg[kv.Key] = combine(cur, kv.Val)
			} else {
				agg[kv.Key] = kv.Val
			}
		}
		local := make([]Pair[K, V], 0, len(agg))
		for k, v := range agg {
			local = append(local, Pair[K, V]{k, v})
		}
		pre[w] = local
		counts[w] = int64(len(d.parts[w]))
		return nil
	}) {
		return empty[Pair[K, V]](c)
	}
	sp.combinerIn = sumCounts(counts)
	sp.combinerOut = totalLen(pre)
	shuffled, bytes, ok := shuffleByKey(&Dataset[Pair[K, V]]{ctx: c, parts: pre}, name)
	if !ok {
		return empty[Pair[K, V]](c)
	}
	sp.shuffleBytes = bytes
	// Final reduce at the target partitions.
	out := make([][]Pair[K, V], c.workers)
	if !c.runStage(name+"/reduce", func(w int) error {
		agg := make(map[K]V)
		for _, kv := range shuffled[w] {
			if cur, ok := agg[kv.Key]; ok {
				agg[kv.Key] = combine(cur, kv.Val)
			} else {
				agg[kv.Key] = kv.Val
			}
		}
		local := make([]Pair[K, V], 0, len(agg))
		for k, v := range agg {
			local = append(local, Pair[K, V]{k, v})
		}
		out[w] = local
		return nil
	}) {
		return empty[Pair[K, V]](c)
	}
	c.finish(sp, counts, totalLen(out))
	return &Dataset[Pair[K, V]]{ctx: c, parts: out}
}

// GroupByKey gathers all values of equal keys into one record.
func GroupByKey[K comparable, V any](d *Dataset[Pair[K, V]], name string) *Dataset[Pair[K, []V]] {
	c := d.ctx
	sp := c.begin(name)
	counts := make([]int64, c.workers)
	for w, p := range d.parts {
		counts[w] = int64(len(p))
	}
	shuffled, bytes, ok := shuffleByKey(d, name)
	if !ok {
		return empty[Pair[K, []V]](c)
	}
	sp.shuffleBytes = bytes
	out := make([][]Pair[K, []V], c.workers)
	if !c.runStage(name+"/group", func(w int) error {
		agg := make(map[K][]V)
		for _, kv := range shuffled[w] {
			agg[kv.Key] = append(agg[kv.Key], kv.Val)
		}
		local := make([]Pair[K, []V], 0, len(agg))
		for k, vs := range agg {
			local = append(local, Pair[K, []V]{k, vs})
		}
		out[w] = local
		return nil
	}) {
		return empty[Pair[K, []V]](c)
	}
	c.finish(sp, counts, totalLen(out))
	return &Dataset[Pair[K, []V]]{ctx: c, parts: out}
}

// CoGrouped is the result record of a CoGroup: all left and right values
// sharing one key.
type CoGrouped[K comparable, V, W any] struct {
	Key   K
	Left  []V
	Right []W
}

// CoGroup joins two keyed datasets, emitting one record per key present on
// either side (a full-outer co-group, Flink's CoGroup operator).
func CoGroup[K comparable, V, W any](a *Dataset[Pair[K, V]], b *Dataset[Pair[K, W]], name string) *Dataset[CoGrouped[K, V, W]] {
	c := a.ctx
	if b.ctx != c {
		panic("dataflow: cogroup of datasets from different contexts")
	}
	sp := c.begin(name)
	sa, bytesA, okA := shuffleByKey(a, name+"/left")
	if !okA {
		return empty[CoGrouped[K, V, W]](c)
	}
	sb, bytesB, okB := shuffleByKey(b, name+"/right")
	if !okB {
		return empty[CoGrouped[K, V, W]](c)
	}
	sp.shuffleBytes = bytesA + bytesB
	out := make([][]CoGrouped[K, V, W], c.workers)
	counts := make([]int64, c.workers)
	if !c.runStage(name+"/join", func(w int) error {
		left := make(map[K][]V)
		for _, kv := range sa[w] {
			left[kv.Key] = append(left[kv.Key], kv.Val)
		}
		right := make(map[K][]W)
		for _, kv := range sb[w] {
			right[kv.Key] = append(right[kv.Key], kv.Val)
		}
		var local []CoGrouped[K, V, W]
		for k, vs := range left {
			local = append(local, CoGrouped[K, V, W]{k, vs, right[k]})
		}
		for k, ws := range right {
			if _, seen := left[k]; !seen {
				local = append(local, CoGrouped[K, V, W]{Key: k, Right: ws})
			}
		}
		out[w] = local
		counts[w] = int64(len(sa[w]) + len(sb[w]))
		return nil
	}) {
		return empty[CoGrouped[K, V, W]](c)
	}
	c.finish(sp, counts, totalLen(out))
	return &Dataset[CoGrouped[K, V, W]]{ctx: c, parts: out}
}

// Union concatenates two datasets partition-wise without a shuffle. Both
// must belong to the same context.
func Union[T any](a, b *Dataset[T], name string) *Dataset[T] {
	c := a.ctx
	if b.ctx != c {
		panic("dataflow: union of datasets from different contexts")
	}
	sp := c.begin(name)
	out := make([][]T, c.workers)
	counts := make([]int64, c.workers)
	if !c.runStage(name, func(w int) error {
		part := make([]T, 0, len(a.parts[w])+len(b.parts[w]))
		part = append(part, a.parts[w]...)
		part = append(part, b.parts[w]...)
		out[w] = part
		counts[w] = int64(len(part))
		return nil
	}) {
		return empty[T](c)
	}
	c.finish(sp, counts, totalLen(out))
	return &Dataset[T]{ctx: c, parts: out}
}

// Distinct removes duplicate records via a hash shuffle, so equal records
// meet on one worker. It is the engine-level form of the early-aggregated
// deduplication RDFind's capture-evidence stage performs.
func Distinct[T comparable](d *Dataset[T], name string) *Dataset[T] {
	keyed := Map(d, name+"-key", func(t T) Pair[T, struct{}] {
		return Pair[T, struct{}]{Key: t}
	})
	reduced := ReduceByKey(keyed, name, func(a, _ struct{}) struct{} { return a })
	return Map(reduced, name+"-unkey", func(p Pair[T, struct{}]) T { return p.Key })
}

// PartitionBy redistributes records by an explicit partition function,
// Flink's Repartition. RDFind uses it to spread the work units of dominant
// capture groups round-robin across workers (§7.2).
func PartitionBy[T any](d *Dataset[T], name string, part func(T) int) *Dataset[T] {
	c := d.ctx
	sp := c.begin(name)
	buckets := make([][][]T, c.workers)
	counts := make([]int64, c.workers)
	crossing := make([]int64, c.workers)
	if !c.runStage(name+"/scatter", func(w int) error {
		local := make([][]T, c.workers)
		for _, t := range d.parts[w] {
			p := part(t) % c.workers
			if p < 0 {
				p += c.workers
			}
			local[p] = append(local[p], t)
		}
		buckets[w] = local
		counts[w] = int64(len(d.parts[w]))
		crossing[w] = int64(len(d.parts[w]) - len(local[w]))
		return nil
	}) {
		return empty[T](c)
	}
	sp.shuffleBytes = estimateCrossingBytes(d.parts, crossing)
	out := make([][]T, c.workers)
	if !c.runStage(name+"/gather", func(t int) error {
		var part []T
		for w := 0; w < c.workers; w++ {
			part = append(part, buckets[w][t]...)
		}
		out[t] = part
		return nil
	}) {
		return empty[T](c)
	}
	c.finish(sp, counts, totalLen(out))
	return &Dataset[T]{ctx: c, parts: out}
}

// Collect gathers all records on the driver, Flink's collect/broadcast
// boundary. The returned slice concatenates partitions in worker order. On a
// failed pipeline it returns nil; check Context.Err.
func Collect[T any](d *Dataset[T]) []T {
	if d.ctx.failed() {
		return nil
	}
	var all []T
	for _, p := range d.parts {
		all = append(all, p...)
	}
	return all
}

// GlobalReduce folds all records into one value on a single worker, used to
// union per-worker partial Bloom filters (Fig. 5, step 4). The boolean is
// false when the dataset is empty or the pipeline has failed.
func GlobalReduce[T any](d *Dataset[T], name string, f func(T, T) T) (T, bool) {
	c := d.ctx
	var acc T
	if c.failed() {
		return acc, false
	}
	sp := c.begin(name)
	counts := make([]int64, c.workers)
	for w, p := range d.parts {
		counts[w] = int64(len(p))
	}
	have := false
	for _, p := range d.parts {
		for _, t := range p {
			if !have {
				acc = t
				have = true
			} else {
				acc = f(acc, t)
			}
		}
	}
	var out int64
	if have {
		out = 1
	}
	c.finish(sp, counts, out)
	return acc, have
}

// String summarizes the dataset for diagnostics.
func (d *Dataset[T]) String() string {
	return fmt.Sprintf("Dataset(workers=%d, records=%d)", d.ctx.workers, d.Len())
}
