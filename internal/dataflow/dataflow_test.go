package dataflow

import (
	"sort"
	"testing"
	"testing/quick"
)

func ints(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestParallelizePartitionsEverything(t *testing.T) {
	for _, w := range []int{1, 2, 4, 7, 16} {
		c := NewContext(w)
		d := Parallelize(c, "in", ints(100))
		if d.Len() != 100 {
			t.Fatalf("w=%d: Len = %d, want 100", w, d.Len())
		}
		got := Collect(d)
		sort.Ints(got)
		for i, v := range got {
			if v != i {
				t.Fatalf("w=%d: lost or duplicated records", w)
			}
		}
	}
}

func TestParallelizeMoreWorkersThanItems(t *testing.T) {
	c := NewContext(10)
	d := Parallelize(c, "in", ints(3))
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
}

func TestNewContextClampsWorkers(t *testing.T) {
	if NewContext(0).Workers() != 1 || NewContext(-5).Workers() != 1 {
		t.Errorf("worker count not clamped to 1")
	}
}

func TestMapAndFilter(t *testing.T) {
	c := NewContext(3)
	d := Parallelize(c, "in", ints(20))
	doubled := Map(d, "double", func(x int) int { return 2 * x })
	even := Filter(doubled, "keep<20", func(x int) bool { return x < 20 })
	got := Collect(even)
	sort.Ints(got)
	want := []int{0, 2, 4, 6, 8, 10, 12, 14, 16, 18}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestFlatMap(t *testing.T) {
	c := NewContext(2)
	d := Parallelize(c, "in", []string{"ab", "c", ""})
	chars := FlatMap(d, "explode", func(s string, emit func(byte)) {
		for i := 0; i < len(s); i++ {
			emit(s[i])
		}
	})
	got := Collect(chars)
	if len(got) != 3 {
		t.Fatalf("got %d chars, want 3", len(got))
	}
}

func TestReduceByKeyCountsLikeSequential(t *testing.T) {
	words := []string{"a", "b", "a", "c", "b", "a", "d", "a"}
	wantCounts := map[string]int{"a": 4, "b": 2, "c": 1, "d": 1}
	for _, w := range []int{1, 2, 5} {
		c := NewContext(w)
		d := Parallelize(c, "in", words)
		pairs := Map(d, "pair", func(s string) Pair[string, int] { return Pair[string, int]{s, 1} })
		counts := ReduceByKey(pairs, "count", func(a, b int) int { return a + b })
		got := map[string]int{}
		for _, kv := range Collect(counts) {
			if _, dup := got[kv.Key]; dup {
				t.Fatalf("w=%d: key %q emitted twice", w, kv.Key)
			}
			got[kv.Key] = kv.Val
		}
		if len(got) != len(wantCounts) {
			t.Fatalf("w=%d: got %v, want %v", w, got, wantCounts)
		}
		for k, v := range wantCounts {
			if got[k] != v {
				t.Fatalf("w=%d: count[%q] = %d, want %d", w, k, got[k], v)
			}
		}
	}
}

func TestGroupByKeyGathersAllValues(t *testing.T) {
	c := NewContext(4)
	type kv = Pair[int, string]
	d := Parallelize(c, "in", []kv{{1, "a"}, {2, "b"}, {1, "c"}, {3, "d"}, {1, "e"}})
	groups := GroupByKey(d, "group")
	got := map[int][]string{}
	for _, g := range Collect(groups) {
		got[g.Key] = g.Val
	}
	if len(got[1]) != 3 || len(got[2]) != 1 || len(got[3]) != 1 {
		t.Fatalf("groups = %v", got)
	}
	members := map[string]bool{}
	for _, v := range got[1] {
		members[v] = true
	}
	if !members["a"] || !members["c"] || !members["e"] {
		t.Fatalf("group 1 = %v", got[1])
	}
}

func TestCoGroupFullOuter(t *testing.T) {
	c := NewContext(3)
	left := Parallelize(c, "l", []Pair[string, int]{{"x", 1}, {"y", 2}, {"x", 3}})
	right := Parallelize(c, "r", []Pair[string, string]{{"x", "a"}, {"z", "b"}})
	joined := CoGroup(left, right, "join")
	got := map[string]CoGrouped[string, int, string]{}
	for _, g := range Collect(joined) {
		got[g.Key] = g
	}
	if len(got) != 3 {
		t.Fatalf("keys = %d, want 3 (x, y, z)", len(got))
	}
	if len(got["x"].Left) != 2 || len(got["x"].Right) != 1 {
		t.Errorf("x = %+v", got["x"])
	}
	if len(got["y"].Left) != 1 || len(got["y"].Right) != 0 {
		t.Errorf("y = %+v", got["y"])
	}
	if len(got["z"].Left) != 0 || len(got["z"].Right) != 1 {
		t.Errorf("z = %+v", got["z"])
	}
}

func TestCoGroupContextMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("no panic for cross-context cogroup")
		}
	}()
	a := Parallelize(NewContext(2), "a", []Pair[int, int]{{1, 1}})
	b := Parallelize(NewContext(2), "b", []Pair[int, int]{{1, 1}})
	CoGroup(a, b, "bad")
}

func TestPartitionByPlacesRecords(t *testing.T) {
	c := NewContext(4)
	d := Parallelize(c, "in", ints(40))
	byMod := PartitionBy(d, "mod", func(x int) int { return x })
	for w, part := range byMod.Partitions() {
		for _, x := range part {
			if x%4 != w {
				t.Fatalf("record %d landed on worker %d", x, w)
			}
		}
	}
	// Negative partition indexes must wrap, not panic.
	neg := PartitionBy(d, "neg", func(x int) int { return -x })
	if neg.Len() != 40 {
		t.Fatalf("negative partitioning lost records")
	}
}

func TestMapPartitionsSeesWholePartition(t *testing.T) {
	c := NewContext(3)
	d := Parallelize(c, "in", ints(30))
	sums := MapPartitions(d, "sum", func(worker int, items []int, emit func(int)) {
		s := 0
		for _, x := range items {
			s += x
		}
		emit(s)
	})
	total := 0
	for _, s := range Collect(sums) {
		total += s
	}
	if total != 29*30/2 {
		t.Fatalf("partition sums total %d, want %d", total, 29*30/2)
	}
}

func TestUnionKeepsAllRecords(t *testing.T) {
	c := NewContext(3)
	a := Parallelize(c, "a", ints(10))
	b := Parallelize(c, "b", ints(5))
	u := Union(a, b, "union")
	if u.Len() != 15 {
		t.Fatalf("union has %d records, want 15", u.Len())
	}
	counts := map[int]int{}
	for _, v := range Collect(u) {
		counts[v]++
	}
	for i := 0; i < 5; i++ {
		if counts[i] != 2 {
			t.Errorf("value %d appears %d times, want 2", i, counts[i])
		}
	}
}

func TestUnionContextMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("no panic for cross-context union")
		}
	}()
	Union(Parallelize(NewContext(2), "a", ints(1)), Parallelize(NewContext(2), "b", ints(1)), "bad")
}

func TestDistinct(t *testing.T) {
	c := NewContext(4)
	d := Parallelize(c, "in", []int{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5})
	got := Collect(Distinct(d, "distinct"))
	sort.Ints(got)
	want := []int{1, 2, 3, 4, 5, 6, 9}
	if len(got) != len(want) {
		t.Fatalf("Distinct = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Distinct = %v, want %v", got, want)
		}
	}
}

func TestGlobalReduce(t *testing.T) {
	c := NewContext(4)
	d := Parallelize(c, "in", ints(10))
	sum, ok := GlobalReduce(d, "sum", func(a, b int) int { return a + b })
	if !ok || sum != 45 {
		t.Fatalf("GlobalReduce = (%d, %v), want (45, true)", sum, ok)
	}
	empty := Parallelize(c, "empty", []int(nil))
	if _, ok := GlobalReduce(empty, "sum", func(a, b int) int { return a + b }); ok {
		t.Errorf("GlobalReduce on empty dataset reported a value")
	}
}

func TestStatsAccounting(t *testing.T) {
	c := NewContext(2)
	d := Parallelize(c, "in", ints(10))
	Map(d, "noop", func(x int) int { return x }).Materialize()
	st := c.Stats()
	if got := st.TotalWork(); got != 20 { // 10 parallelize + 10 map
		t.Fatalf("TotalWork = %d, want 20", got)
	}
	if st.CriticalPath() <= 0 || st.CriticalPath() > 20 {
		t.Fatalf("CriticalPath = %d out of range", st.CriticalPath())
	}
	if s := st.Speedup(); s < 1 || s > 2 {
		t.Fatalf("Speedup = %f out of [1,2]", s)
	}
	if len(st.Stages()) != 2 {
		t.Fatalf("stages = %d, want 2", len(st.Stages()))
	}
	if st.String() == "" {
		t.Errorf("empty stats rendering")
	}
}

func TestSpeedupEmptyStats(t *testing.T) {
	if s := (&Stats{}).Speedup(); s != 1 {
		t.Errorf("Speedup of empty stats = %f, want 1", s)
	}
}

// Property: word counting via the engine equals sequential counting for any
// input and any worker count.
func TestQuickReduceByKeyEquivalence(t *testing.T) {
	f := func(data []uint8, workers uint8) bool {
		w := int(workers)%8 + 1
		c := NewContext(w)
		d := Parallelize(c, "in", data)
		pairs := Map(d, "pair", func(b uint8) Pair[uint8, int] { return Pair[uint8, int]{b, 1} })
		red := ReduceByKey(pairs, "count", func(a, b int) int { return a + b })
		want := map[uint8]int{}
		for _, b := range data {
			want[b]++
		}
		got := map[uint8]int{}
		for _, kv := range Collect(red) {
			got[kv.Key] = kv.Val
		}
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: shuffling never loses or duplicates records.
func TestQuickGroupByKeyPreservesMultiplicity(t *testing.T) {
	f := func(keys []int16, workers uint8) bool {
		w := int(workers)%8 + 1
		c := NewContext(w)
		pairs := make([]Pair[int16, int], len(keys))
		for i, k := range keys {
			pairs[i] = Pair[int16, int]{k, i}
		}
		d := Parallelize(c, "in", pairs)
		groups := GroupByKey(d, "group")
		n := 0
		for _, g := range Collect(groups) {
			n += len(g.Val)
		}
		return n == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
