// Distributed execution: the operator-side collectives. See cluster.go for
// the execution model (SPMD replicated drivers, sequence-numbered collective
// barriers, lineage recovery) and worker.go for the connection mechanics.
//
// Each helper here is one collective: it derives the barrier's sequence
// number by counting (every process counts identically because the drivers
// are replicas), encodes the local contribution with the registered codecs,
// and decodes the release. The coordinator variant consumes the completed
// barrier's retained state instead of contributing.
package dataflow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"time"
)

// WithCluster attaches a coordinator: this Context becomes the distributed
// driver. It executes no partitions itself — stages run on the worker
// processes — but runs the full driver control flow and consumes every
// collective's results, ending the run with the job's output. The cluster's
// worker count and partitioning seed override the Context's.
func WithCluster(cl *Cluster) Option {
	return func(c *Context) {
		c.cluster = cl
		c.workers = cl.cfg.Workers
		c.distSeed = cl.cfg.Seed
		c.rank = -1
		cl.attach(c)
	}
}

// WithWorkerConn attaches a worker connection: this Context becomes rank r's
// replica of the distributed driver, executing exactly partition r of every
// stage. Worker count, partitioning seed, and the injected stage-fault
// schedule all come from the coordinator's welcome.
func WithWorkerConn(w *WorkerConn) Option {
	return func(c *Context) {
		c.worker = w
		c.workers = w.workers
		c.rank = w.rank
		c.distSeed = w.seed
		if len(w.faults) > 0 {
			c.faults = NewFaultPlan(w.faults...)
		}
	}
}

// WithRetryJitter spreads the retry backoff of runStage by ±frac (clamped to
// [0, 1]): attempt n sleeps base·2ⁿ⁻¹ scaled by a uniform factor in
// [1-frac, 1+frac]. Jitter decorrelates retry storms when many workers fail
// together (the same reason the worker reconnect path always jitters).
func WithRetryJitter(frac float64) Option {
	return func(c *Context) {
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		c.jitter = frac
	}
}

// retryDelay computes the attempt'th backoff from the base, jittered.
func retryDelay(base time.Duration, attempt int, jitter float64) time.Duration {
	d := base << (attempt - 1)
	if jitter > 0 && d > 0 {
		d = time.Duration(float64(d) * (1 + jitter*(2*rand.Float64()-1)))
	}
	return d
}

// distributed reports whether this Context takes part in a multi-process job.
func (c *Context) distributed() bool { return c.cluster != nil || c.worker != nil }

// nextSeq assigns the next collective barrier's sequence number. Every
// process calls it at the same program points, so the numbering agrees
// cluster-wide without communication.
func (c *Context) nextSeq() int {
	s := c.distSeq
	c.distSeq++
	return s
}

// doneCh is the driver's cancellation channel (nil: not cancellable).
func (c *Context) doneCh() <-chan struct{} {
	if c.job == nil {
		return nil
	}
	return c.job.Done()
}

// pendingWorkers lists the logical workers this process executes: all of
// them single-process, exactly one on a worker rank, none on the
// coordinator.
func (c *Context) pendingWorkers() []int {
	if c.cluster != nil {
		return nil
	}
	if c.worker != nil {
		return []int{c.rank}
	}
	all := make([]int, c.workers)
	for w := range all {
		all[w] = w
	}
	return all
}

// failDist latches a distributed failure, preserving an existing StageError
// classification (remote failures arrive pre-classified over the wire).
func failDist(c *Context, name string, worker int, err error) {
	var se *StageError
	if errors.As(err, &se) {
		c.fail(se)
		return
	}
	c.fail(&StageError{Stage: name, Worker: worker, Attempt: 1, Cause: err})
}

// coordAwait blocks the coordinator at one collective barrier.
func coordAwait(c *Context, seq int, kind byte, name string) (*collective, bool) {
	coll, err := c.cluster.await(c, seq, kind, name)
	if err != nil {
		failDist(c, name, -1, err)
		return nil, false
	}
	return coll, true
}

// appendRecordList encodes records as a blob list using a ValueCodec.
func appendRecordList[T any](dst []byte, codec ValueCodec[T], items []T) []byte {
	var scratch []byte
	for _, t := range items {
		scratch = codec.AppendValue(scratch[:0], t)
		dst = appendBlob(dst, scratch)
	}
	return dst
}

// decodeRecordList decodes a blob list of records into dst.
func decodeRecordList[T any](dst []T, codec ValueCodec[T], src []byte) ([]T, error) {
	blobs, err := splitBlobs(src)
	if err != nil {
		return dst, err
	}
	for _, b := range blobs {
		dst = append(dst, codec.DecodeValue(b))
	}
	return dst, nil
}

// decodePairFrames decodes a run of spill frames into dst.
func decodePairFrames[K comparable, V any](dst []Pair[K, V], codec PairCodec[K, V], src []byte) ([]Pair[K, V], error) {
	for len(src) > 0 {
		kb, vb, n, err := decodeFrame(src)
		if err != nil {
			return dst, err
		}
		if n == 0 {
			break
		}
		dst = append(dst, Pair[K, V]{Key: codec.DecodeKey(kb), Val: codec.DecodeValue(vb)})
		src = src[n:]
	}
	return dst, nil
}

// distShufflePairs is the cross-process shuffle of keyed records: rank r
// encodes its partition into per-target buckets of spill frames (the wire
// format is exactly the spill layer's), contributes the bucket list, and
// receives every source's bucket for r. Keys route by the seeded byte hash
// over their codec key encoding — codecs must encode equal keys equally
// (the same injectivity the spill merge already requires).
func distShufflePairs[K comparable, V any](c *Context, name string, parts [][]Pair[K, V]) ([][]Pair[K, V], int64, bool) {
	if c.failed() {
		return nil, 0, false
	}
	codec, ok := pairCodecFor[K, V]()
	if !ok {
		failDist(c, name, c.rank, &MissingCodecError{Type: reflect.TypeOf(Pair[K, V]{})})
		return nil, 0, false
	}
	seq := c.nextSeq()
	if c.cluster != nil {
		coll, ok := coordAwait(c, seq, kindShuffle, name)
		if !ok {
			return nil, 0, false
		}
		return make([][]Pair[K, V], c.workers), coll.rawBytes, true
	}
	rank := c.rank
	buckets := make([][]byte, c.workers)
	var scratch, kb []byte
	for _, kv := range parts[rank] {
		kb = codec.AppendKey(kb[:0], kv.Key)
		t := c.distPartition(kb)
		buckets[t] = appendFrame(buckets[t], codec, kv.Key, kv.Val, &scratch)
	}
	var body []byte
	for _, b := range buckets {
		body = appendBlob(body, b)
	}
	rel, err := c.worker.contribute(seq, kindShuffle, name, body, c.doneCh())
	if err != nil {
		failDist(c, name, rank, err)
		return nil, 0, false
	}
	sources, err := splitBlobs(rel)
	if err != nil {
		failDist(c, name, rank, err)
		return nil, 0, false
	}
	out := make([][]Pair[K, V], c.workers)
	var local []Pair[K, V]
	for _, src := range sources {
		local, err = decodePairFrames(local, codec, src)
		if err != nil {
			failDist(c, name, rank, err)
			return nil, 0, false
		}
	}
	out[rank] = local
	return out, int64(len(body)), true
}

// distShuffleRecords is the cross-process repartition of unkeyed records
// (Distinct, PartitionBy). A nil target routes each record by the seeded
// hash of its own encoding; an explicit target must be a pure function of
// the record so every process agrees on placements.
func distShuffleRecords[T any](c *Context, name string, parts [][]T, target func(T) int) ([][]T, int64, bool) {
	if c.failed() {
		return nil, 0, false
	}
	codec, ok := valueCodecFor[T]()
	if !ok {
		failDist(c, name, c.rank, &MissingCodecError{Type: reflect.TypeOf((*T)(nil)).Elem()})
		return nil, 0, false
	}
	seq := c.nextSeq()
	if c.cluster != nil {
		coll, ok := coordAwait(c, seq, kindShuffle, name)
		if !ok {
			return nil, 0, false
		}
		return make([][]T, c.workers), coll.rawBytes, true
	}
	rank := c.rank
	buckets := make([][]byte, c.workers)
	var scratch []byte
	for _, rec := range parts[rank] {
		scratch = codec.AppendValue(scratch[:0], rec)
		t := 0
		if target != nil {
			t = target(rec)
		} else {
			t = c.distPartition(scratch)
		}
		buckets[t] = appendBlob(buckets[t], scratch)
	}
	var body []byte
	for _, b := range buckets {
		body = appendBlob(body, b)
	}
	rel, err := c.worker.contribute(seq, kindShuffle, name, body, c.doneCh())
	if err != nil {
		failDist(c, name, rank, err)
		return nil, 0, false
	}
	sources, err := splitBlobs(rel)
	if err != nil {
		failDist(c, name, rank, err)
		return nil, 0, false
	}
	out := make([][]T, c.workers)
	var local []T
	for _, src := range sources {
		local, err = decodeRecordList(local, codec, src)
		if err != nil {
			failDist(c, name, rank, err)
			return nil, 0, false
		}
	}
	out[rank] = local
	return out, int64(len(body)), true
}

// distGather runs one gather barrier: the worker contributes body and every
// process receives all contributions in rank order.
func distGather(c *Context, name string, body []byte) ([][]byte, bool) {
	seq := c.nextSeq()
	if c.cluster != nil {
		coll, ok := coordAwait(c, seq, kindGather, name)
		if !ok {
			return nil, false
		}
		return coll.contribs, true
	}
	rel, err := c.worker.contribute(seq, kindGather, name, body, c.doneCh())
	if err != nil {
		failDist(c, name, c.rank, err)
		return nil, false
	}
	blobs, err := splitBlobs(rel)
	if err != nil {
		failDist(c, name, c.rank, err)
		return nil, false
	}
	return blobs, true
}

// distLen sums the per-rank partition lengths via a gather, so Len returns
// the cluster-wide record count on every process.
func distLen[T any](d *Dataset[T]) (int, bool) {
	c := d.ctx
	var body []byte
	if c.worker != nil {
		body = binary.AppendUvarint(nil, uint64(len(d.parts[c.rank])))
	}
	blobs, ok := distGather(c, "len", body)
	if !ok {
		return 0, false
	}
	n := 0
	for _, b := range blobs {
		v, _, ok := uvarintAt(b)
		if !ok {
			failDist(c, "len", c.rank, fmt.Errorf("corrupt length contribution"))
			return 0, false
		}
		n += v
	}
	return n, true
}

// distCollect gathers every record on every process in (rank, partition
// order) — the same concatenation order the single-process Collect uses.
func distCollect[T any](d *Dataset[T]) ([]T, bool) {
	c := d.ctx
	codec, ok := valueCodecFor[T]()
	if !ok {
		failDist(c, "collect", c.rank, &MissingCodecError{Type: reflect.TypeOf((*T)(nil)).Elem()})
		return nil, false
	}
	var body []byte
	if c.worker != nil {
		body = appendRecordList(nil, codec, d.parts[c.rank])
	}
	blobs, ok := distGather(c, "collect", body)
	if !ok {
		return nil, false
	}
	var all []T
	for _, b := range blobs {
		var err error
		all, err = decodeRecordList(all, codec, b)
		if err != nil {
			failDist(c, "collect", c.rank, err)
			return nil, false
		}
	}
	return all, true
}

// distMergePartials completes a GlobalReduce across processes: each rank
// contributes its local partial (with a presence flag for empty partitions),
// and every process folds the decoded partials in rank order. The linear
// fold equals the single-process merge tree because f is associative and
// both preserve worker order; decoding fresh copies on every process keeps
// an f that mutates its accumulator (Bloom union) safe.
func distMergePartials[T any](c *Context, name string, f func(T, T) T, partial T, have bool) (T, bool, bool) {
	var zero T
	codec, ok := valueCodecFor[T]()
	if !ok {
		failDist(c, name, c.rank, &MissingCodecError{Type: reflect.TypeOf((*T)(nil)).Elem()})
		return zero, false, false
	}
	var body []byte
	if c.worker != nil {
		if have {
			body = codec.AppendValue([]byte{1}, partial)
		} else {
			body = []byte{0}
		}
	}
	blobs, ok := distGather(c, name+"/merge", body)
	if !ok {
		return zero, false, false
	}
	var acc T
	got := false
	for _, b := range blobs {
		if len(b) == 0 || b[0] == 0 {
			continue
		}
		v := codec.DecodeValue(b[1:])
		if !got {
			acc, got = v, true
		} else {
			acc = f(acc, v)
		}
	}
	return acc, got, true
}
