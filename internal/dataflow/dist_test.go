package dataflow

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
)

// distProgram is the driver every process of the test cluster replays: a
// keyed shuffle (ReduceByKey), an unkeyed repartition (Distinct), a CoGroup,
// a gather (Len), and a GlobalReduce — one of each collective shape. The
// returned slice is sorted, so it is comparable across partitioning regimes
// (single-process maphash vs the cluster's seeded hash).
func distProgram(c *Context, n int) ([]Pair[int, int], int, int64) {
	d := Parallelize(c, "input", ints(n))
	keyed := Map(d, "key", func(v int) Pair[int, int] {
		return Pair[int, int]{Key: v % 17, Val: v}
	})
	sums := ReduceByKey(keyed, "sum", func(a, b int) int { return a + b })

	mods := Distinct(Map(d, "mod", func(v int) int { return v % 5 }), "mods")
	tags := Map(mods, "tag", func(v int) Pair[int, string] {
		return Pair[int, string]{Key: v % 17, Val: "x"}
	})
	joined := CoGroup(sums, tags, "join")
	boosted := Map(joined, "boost", func(g CoGrouped[int, int, string]) Pair[int, int] {
		total := 0
		for _, v := range g.Left {
			total += v
		}
		return Pair[int, int]{Key: g.Key, Val: total + len(g.Right)}
	})

	loads := MapPartitions(d, "load", func(_ int, items []int, emit func(int64)) {
		var s int64
		for _, v := range items {
			s += int64(v)
		}
		emit(s)
	})
	total, _ := GlobalReduce(loads, "total", func(a, b int64) int64 { return a + b })

	out := Collect(boosted)
	sortPairs(out)
	return out, boosted.Len(), total
}

type distOutput struct {
	pairs []Pair[int, int]
	count int
	total int64
}

// runDistCluster runs distProgram on an in-process cluster: one coordinator
// Context plus cfg.Workers worker goroutines, each dialing the coordinator's
// unix socket and replaying the driver over its own Context. Spawn doubles as
// the respawn hook, so injected kills exercise real lineage recovery. Returns
// the coordinator's result, its terminal error (nil on success), and the
// cluster for metric assertions.
func runDistCluster(t *testing.T, n int, cfg ClusterConfig, driver func(c *Context)) (*Cluster, error) {
	t.Helper()
	cfg.Network = "unix"
	cfg.Addr = filepath.Join(t.TempDir(), "coord.sock")
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = 20 * time.Millisecond
	}
	if cfg.HeartbeatDeadline == 0 {
		cfg.HeartbeatDeadline = time.Second
	}
	var wg sync.WaitGroup
	cfg.Spawn = func(rank int) error {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, err := DialWorker("unix", cfg.Addr, rank)
			if err != nil {
				return // coordinator already gone (job over)
			}
			defer w.Close()
			c := NewContext(0, WithWorkerConn(w))
			driver(c)
			if c.Err() == nil {
				w.Goodbye()
			}
		}()
		return nil
	}
	cl, err := StartCluster(cfg)
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	c := NewContext(0, WithCluster(cl))
	driver(c)
	err = c.Err()
	cl.Close()
	wg.Wait()
	return cl, err
}

// singleOracle computes distProgram's expected output single-process.
func singleOracle(n int) distOutput {
	c := NewContext(4)
	pairs, count, total := distProgram(c, n)
	if err := c.Err(); err != nil {
		panic(err)
	}
	return distOutput{pairs, count, total}
}

func TestDistMatchesSingleProcessAcrossWorkerCounts(t *testing.T) {
	const n = 5000
	want := singleOracle(n)
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var mu sync.Mutex
			results := map[int]distOutput{} // rank → worker-side result; -1 coordinator
			driver := func(c *Context) {
				pairs, count, total := distProgram(c, n)
				if c.Err() != nil {
					return
				}
				mu.Lock()
				results[c.rank] = distOutput{pairs, count, total}
				mu.Unlock()
			}
			cl, err := runDistCluster(t, n, ClusterConfig{Workers: workers}, driver)
			if err != nil {
				t.Fatalf("distributed run failed: %v", err)
			}
			if len(results) != workers+1 {
				t.Fatalf("got results from %d processes, want %d", len(results), workers+1)
			}
			// Every process — coordinator included — holds the identical result.
			for rank, got := range results {
				if !reflect.DeepEqual(got, want) {
					t.Errorf("rank %d diverged from the single-process oracle (%d pairs, count %d, total %d)",
						rank, len(got.pairs), got.count, got.total)
				}
			}
			if c := cl.CollectiveTrace(); len(c) == 0 {
				t.Error("no collectives traced")
			}
		})
	}
}

// killSeqFor traces a fault-free 2-worker run and returns a mid-program
// shuffle barrier to schedule process faults at.
func killSeqFor(t *testing.T, n int) int {
	t.Helper()
	driver := func(c *Context) { distProgram(c, n) }
	cl, err := runDistCluster(t, n, ClusterConfig{Workers: 2}, driver)
	if err != nil {
		t.Fatalf("trace run failed: %v", err)
	}
	trace := cl.CollectiveTrace()
	if len(trace) < 3 {
		t.Fatalf("trace too short: %v", trace)
	}
	return trace[len(trace)/2].Seq
}

func TestDistWorkerKillRecoversViaLineage(t *testing.T) {
	const n = 5000
	want := singleOracle(n)
	seq := killSeqFor(t, n)

	var mu sync.Mutex
	var got distOutput
	driver := func(c *Context) {
		pairs, count, total := distProgram(c, n)
		if c.cluster != nil && c.Err() == nil {
			mu.Lock()
			got = distOutput{pairs, count, total}
			mu.Unlock()
		}
	}
	cfg := ClusterConfig{
		Workers:    2,
		ProcFaults: []ProcFault{{Seq: seq, Rank: 1, Kind: ProcKill}},
	}
	cl, err := runDistCluster(t, n, cfg, driver)
	if err != nil {
		t.Fatalf("run with injected kill failed instead of recovering: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("recovered run diverged from the single-process oracle")
	}
	counters := cl.ctx.Stats().Metrics()
	if v := counters.Counter(metrics.ClusterLosses).Value(); v != 1 {
		t.Errorf("losses = %d, want 1", v)
	}
	if v := counters.Counter(metrics.ClusterRespawns).Value(); v != 1 {
		t.Errorf("respawns = %d, want 1", v)
	}
	if v := counters.Counter(metrics.ClusterReplayedReleases).Value(); v == 0 {
		t.Error("respawned worker fast-forwarded through no replayed releases")
	}
	// The loss is accounted as a stage retry at the collective frontier.
	if cl.ctx.Stats().TotalRetries() == 0 {
		t.Error("worker loss not accounted in stage retries")
	}
}

func TestDistRepeatedKillAtSameBarrierIsDeterministic(t *testing.T) {
	const n = 2000
	seq := killSeqFor(t, n)
	driver := func(c *Context) { distProgram(c, n) }
	// Two kills for the same rank at the same barrier: the respawned process
	// replays, fires the second kill at the same frontier, and the
	// coordinator classifies the loss as deterministic.
	cfg := ClusterConfig{
		Workers: 2,
		ProcFaults: []ProcFault{
			{Seq: seq, Rank: 1, Kind: ProcKill},
			{Seq: seq, Rank: 1, Kind: ProcKill},
		},
	}
	_, err := runDistCluster(t, n, cfg, driver)
	if err == nil {
		t.Fatal("expected a terminal error from the repeated kill")
	}
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("expected *StageError, got %T: %v", err, err)
	}
	if !se.Deterministic {
		t.Errorf("repeated death at one barrier not classified deterministic: %+v", se)
	}
	if !errors.Is(err, ErrProcessLoss) {
		t.Errorf("terminal loss does not wrap ErrProcessLoss: %v", err)
	}
	if se.Worker != 1 {
		t.Errorf("loss attributed to worker %d, want 1", se.Worker)
	}
}

func TestDistKillWithRespawnsDisabledIsTerminalAndTransient(t *testing.T) {
	const n = 2000
	seq := killSeqFor(t, n)
	driver := func(c *Context) { distProgram(c, n) }
	cfg := ClusterConfig{
		Workers:     2,
		MaxRespawns: -1, // every loss terminal
		ProcFaults:  []ProcFault{{Seq: seq, Rank: 0, Kind: ProcKill}},
	}
	_, err := runDistCluster(t, n, cfg, driver)
	if err == nil {
		t.Fatal("expected a terminal error with respawns disabled")
	}
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("expected *StageError, got %T: %v", err, err)
	}
	if se.Deterministic {
		t.Errorf("single loss misclassified deterministic: %+v", se)
	}
	if !IsTransient(se.Cause) {
		t.Errorf("process loss not classified transient: %v", se.Cause)
	}
	if !errors.Is(err, ErrProcessLoss) {
		t.Errorf("error chain lacks the process-loss sentinel: %v", err)
	}
	if se.Worker != 0 || se.Attempt != 1 {
		t.Errorf("unexpected loss site: %+v", se)
	}
}

func TestDistDisconnectReconnectsWithoutLoss(t *testing.T) {
	const n = 5000
	want := singleOracle(n)
	seq := killSeqFor(t, n)

	var mu sync.Mutex
	var got distOutput
	driver := func(c *Context) {
		pairs, count, total := distProgram(c, n)
		if c.cluster != nil && c.Err() == nil {
			mu.Lock()
			got = distOutput{pairs, count, total}
			mu.Unlock()
		}
	}
	cfg := ClusterConfig{
		Workers:    2,
		ProcFaults: []ProcFault{{Seq: seq, Rank: 0, Kind: ProcDisconnect}},
	}
	cl, err := runDistCluster(t, n, cfg, driver)
	if err != nil {
		t.Fatalf("run with injected disconnect failed: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("post-reconnect run diverged from the single-process oracle")
	}
	counters := cl.ctx.Stats().Metrics()
	if v := counters.Counter(metrics.ClusterReconnects).Value(); v == 0 {
		t.Error("no reconnect recorded after the injected drop")
	}
	if v := counters.Counter(metrics.ClusterLosses).Value(); v != 0 {
		t.Errorf("transient drop escalated to %d losses", v)
	}
}

func TestDistDuplicateAndDelayedContributions(t *testing.T) {
	const n = 5000
	want := singleOracle(n)
	seq := killSeqFor(t, n)

	var mu sync.Mutex
	var got distOutput
	driver := func(c *Context) {
		pairs, count, total := distProgram(c, n)
		if c.cluster != nil && c.Err() == nil {
			mu.Lock()
			got = distOutput{pairs, count, total}
			mu.Unlock()
		}
	}
	cfg := ClusterConfig{
		Workers: 2,
		ProcFaults: []ProcFault{
			{Seq: seq, Rank: 1, Kind: ProcDuplicate},
			{Seq: seq, Rank: 0, Kind: ProcDelay, Delay: 50 * time.Millisecond},
		},
	}
	cl, err := runDistCluster(t, n, cfg, driver)
	if err != nil {
		t.Fatalf("run with duplicated/delayed frames failed: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("run with duplicated/delayed frames diverged")
	}
	counters := cl.ctx.Stats().Metrics()
	if v := counters.Counter(metrics.ClusterDupContribs).Value(); v == 0 {
		t.Error("duplicated contribution not absorbed (no dup counted)")
	}
}

func TestDistDivergentDriversAreDetected(t *testing.T) {
	const n = 1000
	driver := func(c *Context) {
		d := Parallelize(c, "input", ints(n))
		name := "sum"
		if c.worker != nil && c.rank == 1 {
			name = "sum-divergent" // rank 1 disagrees about the program
		}
		keyed := Map(d, "key", func(v int) Pair[int, int] {
			return Pair[int, int]{Key: v % 7, Val: v}
		})
		Collect(ReduceByKey(keyed, name, func(a, b int) int { return a + b }))
	}
	_, err := runDistCluster(t, n, ClusterConfig{Workers: 2}, driver)
	if err == nil {
		t.Fatal("expected the coordinator to flag the divergent replica")
	}
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("expected *StageError, got %T: %v", err, err)
	}
	if !se.Deterministic {
		t.Errorf("driver divergence must be deterministic (respawn cannot fix it): %+v", se)
	}
}

func TestDistLenIsMemoizedPerDataset(t *testing.T) {
	const n = 1000
	driver := func(c *Context) {
		d := Parallelize(c, "input", ints(n))
		keyed := Map(d, "key", func(v int) Pair[int, int] {
			return Pair[int, int]{Key: v % 7, Val: v}
		})
		sums := ReduceByKey(keyed, "sum", func(a, b int) int { return a + b })
		a, b := sums.Len(), sums.Len() // second call must not run a second barrier
		if a != 7 || b != 7 {
			panic(fmt.Sprintf("Len = %d, %d, want 7", a, b))
		}
	}
	cl, err := runDistCluster(t, n, ClusterConfig{Workers: 2}, driver)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	lens := 0
	for _, site := range cl.CollectiveTrace() {
		if site.Name == "len" {
			lens++
		}
	}
	if lens != 1 {
		t.Errorf("Len ran %d barriers, want 1 (memoized)", lens)
	}
}

func TestDistMissingCodecIsTerminal(t *testing.T) {
	type opaque struct{ x int } // no codec registered for this type
	driver := func(c *Context) {
		d := Parallelize(c, "input", []opaque{{1}, {2}, {3}})
		Collect(Distinct(d, "dedup"))
	}
	_, err := runDistCluster(t, 3, ClusterConfig{Workers: 2}, driver)
	var mce *MissingCodecError
	if !errors.As(err, &mce) {
		t.Fatalf("expected *MissingCodecError, got %v", err)
	}
}

// --- satellite: retry backoff jitter ---

func TestRetryDelayJitterBounds(t *testing.T) {
	base := 10 * time.Millisecond
	if d := retryDelay(base, 1, 0); d != base {
		t.Errorf("unjittered attempt 1 = %v, want %v", d, base)
	}
	if d := retryDelay(base, 3, 0); d != 4*base {
		t.Errorf("unjittered attempt 3 = %v, want %v", d, 4*base)
	}
	lo, hi := time.Duration(float64(2*base)*0.5), time.Duration(float64(2*base)*1.5)
	varied := false
	prev := time.Duration(-1)
	for i := 0; i < 200; i++ {
		d := retryDelay(base, 2, 0.5)
		if d < lo || d > hi {
			t.Fatalf("jittered delay %v outside [%v, %v]", d, lo, hi)
		}
		if prev >= 0 && d != prev {
			varied = true
		}
		prev = d
	}
	if !varied {
		t.Error("200 jittered delays were all identical")
	}
}

func TestWithRetryJitterClamps(t *testing.T) {
	if c := NewContext(1, WithRetryJitter(-0.5)); c.jitter != 0 {
		t.Errorf("negative jitter not clamped to 0: %v", c.jitter)
	}
	if c := NewContext(1, WithRetryJitter(7)); c.jitter != 1 {
		t.Errorf("oversized jitter not clamped to 1: %v", c.jitter)
	}
}

func TestRunStageRetriesWithJitteredBackoff(t *testing.T) {
	plan := NewFaultPlan(
		Fault{Stage: "work", Worker: 0, Occurrence: 1, Kind: FaultTransient},
		Fault{Stage: "work", Worker: 0, Occurrence: 2, Kind: FaultTransient},
	)
	base := 8 * time.Millisecond
	c := NewContext(2, WithFaultPlan(plan), WithRetries(3), WithBackoff(base), WithRetryJitter(0.5))
	var slept []time.Duration
	c.sleepFn = func(d time.Duration) bool {
		slept = append(slept, d)
		return true
	}
	d := Parallelize(c, "input", ints(100))
	Map(d, "work", func(v int) int { return v + 1 }).Materialize()
	if err := c.Err(); err != nil {
		t.Fatalf("retried pipeline failed: %v", err)
	}
	if len(slept) != 2 {
		t.Fatalf("recorded %d backoff sleeps, want 2", len(slept))
	}
	for i, want := range []time.Duration{base, 2 * base} {
		lo, hi := time.Duration(float64(want)*0.5), time.Duration(float64(want)*1.5)
		if slept[i] < lo || slept[i] > hi {
			t.Errorf("attempt %d slept %v, want within [%v, %v]", i+1, slept[i], lo, hi)
		}
	}
}

// --- satellite: prompt cancellation of spill merges ---

func openFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("no /proc fd table on %s: %v", runtime.GOOS, err)
	}
	return len(ents)
}

func TestSpillCancelMidMergeClosesReadersPromptly(t *testing.T) {
	const n, keys = 20000, 400
	input := spillPairs(n, keys)
	// Count total combines of a clean run, then cancel at the 75% mark: with
	// a 1KiB budget the in-memory maps flush near-constantly, so almost every
	// combine happens while the external merge drains its runs — the
	// cancellation lands inside the merge loops with thousands of heap pops
	// still ahead of it (the pollers check every cancelCheckEvery events).
	clean := NewContext(2, WithMemoryBudget(1<<10), WithSpillDir(t.TempDir()))
	var totalCombines atomic.Int64
	Collect(ReduceByKey(Parallelize(clean, "input", input), "sum", func(a, b int) int {
		totalCombines.Add(1)
		return a + b
	}))
	if err := clean.Err(); err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	if clean.Stats().Metrics().Counter("dataflow.spill.runs").Value() == 0 {
		t.Fatal("workload did not spill; the test needs an external merge")
	}

	before := openFDs(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	dir := t.TempDir()
	c := NewContext(2, WithCancel(ctx), WithMemoryBudget(1<<10), WithSpillDir(dir))
	cancelAt := totalCombines.Load() * 3 / 4
	var calls atomic.Int64
	start := time.Now()
	Collect(ReduceByKey(Parallelize(c, "input", input), "sum", func(a, b int) int {
		if calls.Add(1) == cancelAt {
			cancel()
		}
		return a + b
	}))
	err := c.Err()
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled spill run returned %v, want context.Canceled in the chain", err)
	}
	if took := time.Since(start); took > 30*time.Second {
		t.Errorf("cancelled merge took %v to abort", took)
	}
	// All merge readers and spill files must be closed: fd count back at the
	// baseline and no temp state left behind (spill files are unlinked at
	// creation, so anything remaining is a leak).
	if after := openFDs(t); after > before {
		t.Errorf("cancelled merge leaked file descriptors: %d -> %d", before, after)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Errorf("cancelled merge left %d entries in the spill dir", len(ents))
	}
}
