// Fault model of the dataflow engine.
//
// Flink, the substrate RDFind ran on, restarts failed tasks from their last
// consistent inputs (the paper relies on this in §8 and App. C, and its
// evaluation explicitly reasons about runs that die of memory-grant failures
// — the hollow bars of Fig. 7). This engine reproduces that robustness for
// in-process workers: a panic or error in any worker goroutine is recovered
// into a structured StageError instead of tearing down the process, and
// because datasets are immutable in-memory partitions, a failed stage can be
// deterministically re-executed from its retained inputs. Faults marked
// transient are retried with exponential backoff up to a bounded number of
// stage attempts; everything else fails the job at the first stage boundary.
//
// A FaultPlan injects deterministic faults — a panic or a transient error at
// stage S, worker W, occurrence K — so tests can prove that any recoverable
// fault schedule yields output identical to the fault-free run.
package dataflow

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sort"
	"sync"
	"time"
)

// StageError reports the failure of one stage execution: which stage, which
// worker, on which attempt, and the recovered cause. It wraps the cause, so
// errors.Is/As see through it (e.g. to a PanicError or context.Canceled).
type StageError struct {
	// Stage is the engine-level stage name (an operator name, possibly with
	// a phase suffix such as "/combine" or "/scatter").
	Stage string
	// Worker is the logical worker whose execution failed.
	Worker int
	// Attempt is the 1-based stage attempt the failure occurred on.
	Attempt int
	// Deterministic marks a transient-labeled failure that reproduced
	// byte-identically when its worker was replayed on the retained input
	// partition: a logic fault, not a recoverable condition. The engine
	// stops retrying such failures after the first replay instead of
	// burning the remaining retry budget on identical re-executions.
	Deterministic bool
	// Cause is the recovered failure.
	Cause error
}

func (e *StageError) Error() string {
	if e.Deterministic {
		return fmt.Sprintf("dataflow: stage %q worker %d attempt %d: deterministic failure (identical on replay): %v",
			e.Stage, e.Worker, e.Attempt, e.Cause)
	}
	return fmt.Sprintf("dataflow: stage %q worker %d attempt %d: %v", e.Stage, e.Worker, e.Attempt, e.Cause)
}

// Unwrap exposes the cause to errors.Is and errors.As.
func (e *StageError) Unwrap() error { return e.Cause }

// PanicError is a panic recovered from a worker goroutine, with the stack at
// the point of the panic. Panics are not considered transient: re-executing
// deterministic user code would panic again, so the stage fails immediately.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("worker panic: %v", e.Value) }

// transientError marks an error as retryable.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient marks an error as transient: a stage failing with it is eligible
// for re-execution from its retained input partitions. User operator code may
// panic with a Transient-wrapped error to request a retry.
func Transient(err error) error { return &transientError{err: err} }

// IsTransient reports whether err is marked transient anywhere in its chain.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// injectedPanic is the panic payload of a FaultPanic injection; the recovery
// path unwraps it to the transient error instead of treating it as a crash.
type injectedPanic struct{ err error }

// FaultKind selects how an injected fault manifests.
type FaultKind uint8

const (
	// FaultTransient makes the worker fail with a transient error before it
	// processes its partition.
	FaultTransient FaultKind = iota
	// FaultPanic makes the worker goroutine panic before it processes its
	// partition. The injected panic carries a transient marker, so recovery
	// plus retry apply (a stand-in for a killed task, not a code bug).
	FaultPanic
)

func (k FaultKind) String() string {
	if k == FaultPanic {
		return "panic"
	}
	return "transient"
}

// Site identifies one worker execution of one stage: the K-th time (1-based)
// stage Stage runs worker Worker, counting re-executions.
type Site struct {
	Stage      string
	Worker     int
	Occurrence int
}

// Fault schedules one injected fault at a site.
type Fault struct {
	Stage      string
	Worker     int
	Occurrence int
	Kind       FaultKind
}

func (f Fault) site() Site { return Site{Stage: f.Stage, Worker: f.Worker, Occurrence: f.Occurrence} }

// FaultPlan is a deterministic fault-injection schedule, attached to a
// Context with WithFaultPlan. Every worker execution is traced; when an
// execution matches a scheduled site, the planned fault fires before any user
// code runs, so re-execution from retained inputs observes no partial state.
// An empty plan injects nothing and doubles as an execution tracer.
type FaultPlan struct {
	mu      sync.Mutex
	planned map[Site]FaultKind
	counts  map[siteKey]int
	trace   []Site
	fired   []Fault
}

type siteKey struct {
	stage  string
	worker int
}

// NewFaultPlan builds a plan that fires the given faults. Faults with an
// Occurrence below 1 fire on the first execution of their site.
func NewFaultPlan(faults ...Fault) *FaultPlan {
	p := &FaultPlan{
		planned: make(map[Site]FaultKind, len(faults)),
		counts:  make(map[siteKey]int),
	}
	for _, f := range faults {
		if f.Occurrence < 1 {
			f.Occurrence = 1
		}
		p.planned[f.site()] = f.Kind
	}
	return p
}

// RandomFaultPlan samples n distinct sites from the given trace (as returned
// by Trace of a fault-free run) and schedules one fault at each, with kinds
// chosen by the seeded generator. The same seed, trace, and n always yield
// the same plan.
func RandomFaultPlan(seed int64, sites []Site, n int) *FaultPlan {
	rng := rand.New(rand.NewSource(seed))
	if n > len(sites) {
		n = len(sites)
	}
	picked := rng.Perm(len(sites))[:n]
	faults := make([]Fault, 0, n)
	for _, i := range picked {
		s := sites[i]
		kind := FaultTransient
		if rng.Intn(2) == 1 {
			kind = FaultPanic
		}
		faults = append(faults, Fault{Stage: s.Stage, Worker: s.Worker, Occurrence: s.Occurrence, Kind: kind})
	}
	return NewFaultPlan(faults...)
}

// visit records one worker execution and fires a planned fault if the site
// matches: FaultTransient returns a transient error, FaultPanic panics with a
// recoverable payload. Called by the engine before any user code runs.
func (p *FaultPlan) visit(stage string, worker int) error {
	p.mu.Lock()
	key := siteKey{stage: stage, worker: worker}
	p.counts[key]++
	site := Site{Stage: stage, Worker: worker, Occurrence: p.counts[key]}
	p.trace = append(p.trace, site)
	kind, hit := p.planned[site]
	if hit {
		p.fired = append(p.fired, Fault{Stage: site.Stage, Worker: site.Worker, Occurrence: site.Occurrence, Kind: kind})
	}
	p.mu.Unlock()
	if !hit {
		return nil
	}
	err := Transient(fmt.Errorf("injected %s fault at stage %q worker %d occurrence %d",
		kind, site.Stage, site.Worker, site.Occurrence))
	if kind == FaultPanic {
		panic(injectedPanic{err: err})
	}
	return err
}

// Trace returns every worker execution seen so far, sorted by stage, worker,
// and occurrence so that schedules derived from it are deterministic even
// though workers run concurrently.
func (p *FaultPlan) Trace() []Site {
	p.mu.Lock()
	out := make([]Site, len(p.trace))
	copy(out, p.trace)
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stage != out[j].Stage {
			return out[i].Stage < out[j].Stage
		}
		if out[i].Worker != out[j].Worker {
			return out[i].Worker < out[j].Worker
		}
		return out[i].Occurrence < out[j].Occurrence
	})
	return out
}

// Fired returns the faults that actually fired, in firing order per site.
func (p *FaultPlan) Fired() []Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Fault, len(p.fired))
	copy(out, p.fired)
	return out
}

// recoverWorker classifies a recovered panic value: injected faults and
// Transient-marked panics keep their transient nature; everything else is a
// genuine crash, captured with its stack.
func recoverWorker(r any) error {
	if ip, ok := r.(injectedPanic); ok {
		return ip.err
	}
	if err, ok := r.(error); ok && IsTransient(err) {
		return err
	}
	return &PanicError{Value: r, Stack: debug.Stack()}
}

// Process-level fault model for the distributed mode (cluster.go). These
// extend the in-process FaultPlan: where a Fault perturbs one worker
// goroutine of one stage, a ProcFault perturbs a whole worker process or its
// coordinator connection at a chosen collective barrier.

// Sentinel errors classifying process-level failures into the StageError
// model. They compose with Transient: a recoverable worker loss surfaces (and
// is retried via respawn) as a Transient(ErrProcessLoss)-wrapped StageError.
var (
	// ErrProcessLoss marks a worker process declared dead by the coordinator
	// (missed heartbeat deadline or observed kill).
	ErrProcessLoss = errors.New("worker process lost")
	// ErrWorkerKilled is the local error a worker's RunJob returns when an
	// injected ProcKill terminates it (in-process harness mode; a real
	// subprocess just exits).
	ErrWorkerKilled = errors.New("worker process killed by injected fault")
	// ErrCoordinatorLost is returned by a worker that exhausted its reconnect
	// budget against an unreachable coordinator.
	ErrCoordinatorLost = errors.New("coordinator unreachable")
	// ErrRemoteFailure wraps a terminal failure that originated on another
	// process and was propagated over the wire.
	ErrRemoteFailure = errors.New("remote failure")
)

// procKillPanic terminates a worker goroutine in the in-process harness; a
// subprocess worker exits instead. RunJob recovers it into ErrWorkerKilled.
type procKillPanic struct{}

// ProcFaultKind selects how an injected process-level fault manifests.
type ProcFaultKind uint8

const (
	// ProcKill terminates the worker process at the chosen collective. The
	// coordinator detects the loss, respawns the rank, and re-derives its
	// partitions by lineage replay.
	ProcKill ProcFaultKind = iota
	// ProcDisconnect drops the worker's coordinator connection at the chosen
	// collective; the worker reconnects with jittered backoff and re-sends
	// its in-flight contribution.
	ProcDisconnect
	// ProcDuplicate sends the worker's contribution twice; the coordinator's
	// idempotent contribution protocol must absorb the duplicate.
	ProcDuplicate
	// ProcDelay stalls the worker's contribution by Delay before sending.
	ProcDelay
)

func (k ProcFaultKind) String() string {
	switch k {
	case ProcKill:
		return "kill"
	case ProcDisconnect:
		return "disconnect"
	case ProcDuplicate:
		return "duplicate"
	default:
		return "delay"
	}
}

// ProcFault schedules one process-level fault: when worker Rank reaches
// collective barrier Seq (0-based position in the deterministic collective
// program; see Cluster.CollectiveTrace), Kind fires before the contribution
// is sent. The struct is JSON-serializable — plans ship to workers inside the
// welcome message.
type ProcFault struct {
	// Seq is the collective sequence number the fault fires at.
	Seq int `json:"seq"`
	// Rank is the worker rank the fault fires on.
	Rank int `json:"rank"`
	// Kind selects the manifestation.
	Kind ProcFaultKind `json:"kind"`
	// Delay is the stall duration for ProcDelay (ignored otherwise).
	Delay time.Duration `json:"delay,omitempty"`
}

// CollectiveSite is one entry of the coordinator's collective trace: the
// barrier's position in program order, the stage name it served, and its
// kind. Tests derive deterministic ProcFault schedules from a fault-free
// run's trace, mirroring the FaultPlan Trace → RandomFaultPlan workflow.
type CollectiveSite struct {
	Seq  int
	Name string
	Kind byte
}
