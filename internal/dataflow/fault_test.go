package dataflow

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// sum is the sequential oracle for the pipeline used in the fault tests.
func sum(items []int) int {
	total := 0
	for _, v := range items {
		total += v
	}
	return total
}

// runSumPipeline runs a small multi-stage job (map → reduce-by-key → collect)
// and returns the per-key sums, exercising both narrow and shuffle stages.
func runSumPipeline(c *Context, n int) map[int]int {
	d := Parallelize(c, "input", ints(n))
	keyed := Map(d, "key", func(v int) Pair[int, int] {
		return Pair[int, int]{Key: v % 7, Val: v}
	})
	reduced := ReduceByKey(keyed, "sum", func(a, b int) int { return a + b })
	out := make(map[int]int)
	for _, p := range Collect(reduced) {
		out[p.Key] = p.Val
	}
	return out
}

func TestFaultWorkerPanicBecomesStageError(t *testing.T) {
	c := NewContext(4)
	d := Parallelize(c, "input", ints(100))
	Map(d, "boom", func(v int) int {
		if v == 42 {
			panic("user code bug")
		}
		return v
	}).Materialize()
	err := c.Err()
	if err == nil {
		t.Fatal("expected a stage error after a worker panic")
	}
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("expected *StageError, got %T: %v", err, err)
	}
	if se.Stage != "boom" || se.Attempt != 1 {
		t.Errorf("unexpected failure site: %+v", se)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("expected a *PanicError cause, got %v", err)
	}
	if pe.Value != "user code bug" || len(pe.Stack) == 0 {
		t.Errorf("panic not captured faithfully: value=%v stack=%d bytes", pe.Value, len(pe.Stack))
	}
}

func TestFaultRealPanicIsNotRetried(t *testing.T) {
	c := NewContext(2, WithRetries(5), WithBackoff(0))
	var calls sync.Map
	d := Parallelize(c, "input", ints(10))
	Map(d, "boom", func(v int) int {
		n, _ := calls.LoadOrStore(v, new(int))
		*(n.(*int))++
		panic("deterministic bug")
	}).Materialize()
	if c.Err() == nil {
		t.Fatal("expected failure")
	}
	calls.Range(func(_, n any) bool {
		if *(n.(*int)) > 1 {
			t.Errorf("record reprocessed %d times; genuine panics must not be retried", *(n.(*int)))
		}
		return true
	})
	if got := c.Stats().TotalRetries(); got != 0 {
		t.Errorf("TotalRetries = %d, want 0", got)
	}
}

func TestFaultTransientErrorIsRetried(t *testing.T) {
	c := NewContext(3, WithRetries(2), WithBackoff(0))
	var mu sync.Mutex
	failures := 2 // fail the first two executions of worker 1
	d := Parallelize(c, "input", ints(90))
	out := MapPartitions(d, "flaky", func(w int, items []int, emit func(int)) {
		if w == 1 {
			mu.Lock()
			shouldFail := failures > 0
			remaining := failures
			if shouldFail {
				failures--
			}
			mu.Unlock()
			if shouldFail {
				// The message varies per attempt: a transient failure that
				// recurs byte-identically on the retained partition is now
				// classified deterministic and not retried (see the
				// deterministic-recurrence test below).
				panic(Transient(fmt.Errorf("flaky worker, %d failures left", remaining)))
			}
		}
		emit(sum(items))
	})
	got := sum(Collect(out))
	if err := c.Err(); err != nil {
		t.Fatalf("pipeline failed despite retry budget: %v", err)
	}
	if want := sum(ints(90)); got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
	if got := c.Stats().Retries()["flaky"]; got != 2 {
		t.Errorf(`Retries["flaky"] = %d, want 2`, got)
	}
}

// A transient-labeled panic that reproduces byte-identically on the retained
// partition is a deterministic logic fault: the engine must classify it as
// non-retryable after the first replay instead of burning the whole retry
// budget, and surface a StageError carrying the Deterministic flag.
func TestFaultDeterministicPanicStopsRetrying(t *testing.T) {
	c := NewContext(3, WithRetries(5), WithBackoff(0))
	var runs sync.Map
	d := Parallelize(c, "input", ints(90))
	MapPartitions(d, "buggy", func(w int, items []int, emit func(int)) {
		n, _ := runs.LoadOrStore(w, new(int))
		if w == 1 {
			*(n.(*int))++
			// Same message every attempt: deterministic on the retained input.
			panic(Transient(fmt.Errorf("divide by zero at record 17")))
		}
		emit(sum(items))
	}).Materialize()
	err := c.Err()
	if err == nil {
		t.Fatal("pipeline succeeded despite a deterministic failure")
	}
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("error %T is not a *StageError: %v", err, err)
	}
	if !se.Deterministic {
		t.Errorf("StageError.Deterministic = false, want true: %v", se)
	}
	if se.Stage != "buggy" || se.Worker != 1 {
		t.Errorf("StageError names stage %q worker %d, want \"buggy\" worker 1", se.Stage, se.Worker)
	}
	if se.Attempt != 2 {
		t.Errorf("failed on attempt %d, want 2 (one replay)", se.Attempt)
	}
	if !strings.Contains(err.Error(), "deterministic") {
		t.Errorf("error message does not mention determinism: %v", err)
	}
	// Exactly one replay: the original execution plus the confirming one.
	if n, ok := runs.Load(1); !ok || *(n.(*int)) != 2 {
		t.Errorf("worker 1 ran %v times, want exactly 2", n)
	}
	if got := c.Stats().TotalRetries(); got != 1 {
		t.Errorf("TotalRetries = %d, want 1 (budget not burned)", got)
	}
}

// Distinct failure messages on consecutive attempts keep the transient
// classification: only identical recurrence is deterministic.
func TestFaultVaryingTransientStillRetries(t *testing.T) {
	c := NewContext(2, WithRetries(3), WithBackoff(0))
	var mu sync.Mutex
	attempts := 0
	d := Parallelize(c, "input", ints(20))
	out := MapPartitions(d, "varying", func(w int, items []int, emit func(int)) {
		if w == 0 {
			mu.Lock()
			attempts++
			n := attempts
			mu.Unlock()
			if n <= 3 {
				panic(Transient(fmt.Errorf("timeout after %d ms", n*10)))
			}
		}
		emit(sum(items))
	})
	got := sum(Collect(out))
	if err := c.Err(); err != nil {
		t.Fatalf("pipeline failed despite varying transient errors: %v", err)
	}
	if want := sum(ints(20)); got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
}

func TestFaultInjectedTransientRetriesToSameResult(t *testing.T) {
	want := runSumPipeline(NewContext(4), 200)
	for _, kind := range []FaultKind{FaultTransient, FaultPanic} {
		t.Run(kind.String(), func(t *testing.T) {
			plan := NewFaultPlan(Fault{Stage: "sum/combine", Worker: 2, Occurrence: 1, Kind: kind})
			c := NewContext(4, WithRetries(2), WithBackoff(0), WithFaultPlan(plan))
			got := runSumPipeline(c, 200)
			if err := c.Err(); err != nil {
				t.Fatalf("pipeline failed: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("faulted run diverged: got %v, want %v", got, want)
			}
			if fired := plan.Fired(); len(fired) != 1 || fired[0].Kind != kind {
				t.Errorf("fired = %+v, want one %v fault", fired, kind)
			}
			if c.Stats().TotalRetries() != 1 {
				t.Errorf("TotalRetries = %d, want 1", c.Stats().TotalRetries())
			}
		})
	}
}

func TestFaultOnlyFailedWorkersAreReexecuted(t *testing.T) {
	plan := NewFaultPlan(Fault{Stage: "count", Worker: 0, Occurrence: 1, Kind: FaultTransient})
	c := NewContext(4, WithRetries(1), WithBackoff(0), WithFaultPlan(plan))
	var runs sync.Map
	d := Parallelize(c, "input", ints(40))
	MapPartitions(d, "count", func(w int, items []int, emit func(int)) {
		n, _ := runs.LoadOrStore(w, new(int))
		*(n.(*int))++
		emit(len(items))
	}).Materialize()
	if err := c.Err(); err != nil {
		t.Fatalf("pipeline failed: %v", err)
	}
	// Worker 0 fails before user code on occurrence 1, runs user code on the
	// retry; workers 1–3 run user code exactly once.
	for w := 0; w < 4; w++ {
		n, ok := runs.Load(w)
		if !ok || *(n.(*int)) != 1 {
			t.Errorf("worker %d user code ran %v times, want exactly 1", w, n)
		}
	}
	// The engine-level trace shows the re-execution of worker 0 only.
	for _, s := range plan.Trace() {
		if s.Stage == "count" && s.Occurrence > 1 && s.Worker != 0 {
			t.Errorf("healthy worker %d was re-executed: %+v", s.Worker, s)
		}
	}
}

func TestFaultRetryBudgetExhausted(t *testing.T) {
	plan := NewFaultPlan(
		Fault{Stage: "sum/combine", Worker: 1, Occurrence: 1, Kind: FaultTransient},
		Fault{Stage: "sum/combine", Worker: 1, Occurrence: 2, Kind: FaultPanic},
		Fault{Stage: "sum/combine", Worker: 1, Occurrence: 3, Kind: FaultTransient},
	)
	c := NewContext(4, WithRetries(2), WithBackoff(0), WithFaultPlan(plan))
	got := runSumPipeline(c, 100)
	err := c.Err()
	if err == nil {
		t.Fatal("expected failure after exhausting 3 attempts")
	}
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("expected *StageError, got %T", err)
	}
	if se.Stage != "sum/combine" || se.Worker != 1 || se.Attempt != 3 {
		t.Errorf("unexpected terminal failure site: %+v", se)
	}
	if !IsTransient(err) {
		t.Error("terminal cause should still be the (transient) injected fault")
	}
	if len(got) != 0 {
		t.Errorf("failed pipeline leaked results: %v", got)
	}
	if len(plan.Fired()) != 3 {
		t.Errorf("fired %d faults, want 3", len(plan.Fired()))
	}
}

func TestFaultSurvivesSameSiteFailingTwice(t *testing.T) {
	want := runSumPipeline(NewContext(4), 100)
	plan := NewFaultPlan(
		Fault{Stage: "sum/combine", Worker: 1, Occurrence: 1, Kind: FaultTransient},
		Fault{Stage: "sum/combine", Worker: 1, Occurrence: 2, Kind: FaultPanic},
	)
	c := NewContext(4, WithRetries(2), WithBackoff(0), WithFaultPlan(plan))
	got := runSumPipeline(c, 100)
	if err := c.Err(); err != nil {
		t.Fatalf("pipeline failed: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("twice-faulted run diverged: got %v, want %v", got, want)
	}
}

func TestFaultDownstreamOperatorsShortCircuit(t *testing.T) {
	plan := NewFaultPlan(Fault{Stage: "key", Worker: 0, Occurrence: 1, Kind: FaultTransient})
	c := NewContext(2, WithFaultPlan(plan)) // no retries: first fault is terminal
	d := Parallelize(c, "input", ints(50))
	// Materialize pins the fault site: unforced, "key" would fuse with
	// "after" and the fault's stage name would not match.
	keyed := Map(d, "key", func(v int) Pair[int, int] { return Pair[int, int]{Key: v, Val: v} }).Materialize()
	ran := false
	mapped := Map(keyed, "after", func(p Pair[int, int]) Pair[int, int] { ran = true; return p })
	if ran {
		t.Error("operator after a terminal failure executed user code")
	}
	if got := Collect(mapped); got != nil {
		t.Errorf("Collect on failed pipeline = %v, want nil", got)
	}
	if _, ok := GlobalReduce(mapped, "reduce", func(a, _ Pair[int, int]) Pair[int, int] { return a }); ok {
		t.Error("GlobalReduce reported a value on a failed pipeline")
	}
	if c.Err() == nil {
		t.Error("Err() should report the latched failure")
	}
}

func TestFaultCancellationAbortsBetweenStages(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the job starts
	c := NewContext(4, WithCancel(ctx))
	got := runSumPipeline(c, 100)
	err := c.Err()
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Err = %v, want to wrap context.Canceled", err)
	}
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("cancellation should surface as a *StageError, got %T", err)
	}
	if len(got) != 0 {
		t.Errorf("cancelled pipeline leaked results: %v", got)
	}
}

func TestFaultCancellationDuringRetryBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	plan := NewFaultPlan(Fault{Stage: "work", Worker: 0, Occurrence: 1, Kind: FaultTransient})
	// A long backoff that the cancellation must interrupt well before it ends.
	c := NewContext(1, WithCancel(ctx), WithRetries(1), WithBackoff(time.Hour), WithFaultPlan(plan))
	d := Parallelize(c, "input", ints(10))
	done := make(chan struct{})
	go func() {
		Map(d, "work", func(v int) int { return v }).Materialize()
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not interrupt the retry backoff")
	}
	if err := c.Err(); !errors.Is(err, context.Canceled) {
		t.Errorf("Err = %v, want to wrap context.Canceled", err)
	}
}

func TestFaultPlanTraceIsDeterministic(t *testing.T) {
	var traces [][]Site
	for i := 0; i < 3; i++ {
		plan := NewFaultPlan()
		c := NewContext(4, WithFaultPlan(plan))
		runSumPipeline(c, 100)
		if err := c.Err(); err != nil {
			t.Fatalf("empty plan must inject nothing, got %v", err)
		}
		if fired := plan.Fired(); len(fired) != 0 {
			t.Fatalf("empty plan fired faults: %+v", fired)
		}
		traces = append(traces, plan.Trace())
	}
	for i := 1; i < len(traces); i++ {
		if !reflect.DeepEqual(traces[0], traces[i]) {
			t.Fatalf("trace %d differs from trace 0 despite identical jobs", i)
		}
	}
	// Every stage of the job appears in the trace once per worker.
	seen := make(map[Site]bool, len(traces[0]))
	for _, s := range traces[0] {
		if seen[s] {
			t.Fatalf("duplicate trace site %+v", s)
		}
		seen[s] = true
	}
	for _, stage := range []string{"key", "sum/combine", "sum/scatter", "sum/gather", "sum/reduce"} {
		for w := 0; w < 4; w++ {
			if !seen[Site{Stage: stage, Worker: w, Occurrence: 1}] {
				t.Errorf("stage %q worker %d missing from trace", stage, w)
			}
		}
	}
}

func TestFaultRandomPlanIsSeedDeterministic(t *testing.T) {
	tracer := NewFaultPlan()
	c := NewContext(4, WithFaultPlan(tracer))
	runSumPipeline(c, 100)
	sites := tracer.Trace()

	a := RandomFaultPlan(7, sites, 5)
	b := RandomFaultPlan(7, sites, 5)
	if !reflect.DeepEqual(a.planned, b.planned) {
		t.Errorf("same seed produced different plans:\n%v\n%v", a.planned, b.planned)
	}
	d := RandomFaultPlan(8, sites, 5)
	if reflect.DeepEqual(a.planned, d.planned) {
		t.Error("different seeds produced identical plans (suspicious for 5 picks)")
	}
	if n := len(RandomFaultPlan(1, sites, len(sites)+10).planned); n != len(sites) {
		t.Errorf("oversized n planned %d faults, want clamp to %d", n, len(sites))
	}
}

func TestFaultParallelizeEmptyInput(t *testing.T) {
	for _, items := range [][]int{nil, {}} {
		c := NewContext(4)
		d := Parallelize(c, "empty", items)
		if got := len(d.Partitions()); got != 4 {
			t.Fatalf("empty input yielded %d partitions, want 4", got)
		}
		if d.Len() != 0 {
			t.Errorf("empty input has %d records", d.Len())
		}
		// The stage is still accounted (with zero work) and downstream
		// shuffles over the empty dataset run fine.
		reduced := ReduceByKey(
			Map(d, "key", func(v int) Pair[int, int] { return Pair[int, int]{Key: v, Val: v} }),
			"sum", func(a, b int) int { return a + b })
		if got := Collect(reduced); len(got) != 0 {
			t.Errorf("reduce over empty input = %v", got)
		}
		if err := c.Err(); err != nil {
			t.Errorf("empty pipeline failed: %v", err)
		}
	}
}

func TestFaultHashPartitionSingleWorker(t *testing.T) {
	c := NewContext(1)
	for _, k := range []string{"", "a", "long-key-long-key"} {
		if got := hashPartition(c, k); got != 0 {
			t.Errorf("hashPartition(1 worker, %q) = %d, want 0", k, got)
		}
	}
}

// TestFaultConcurrentJobsNeedSeparateContexts documents the ownership rule:
// one Context per job. Two jobs on two Contexts run concurrently without
// interference — each keeps its own stats, error latch, and fault plan.
func TestFaultConcurrentJobsNeedSeparateContexts(t *testing.T) {
	const jobs = 8
	var wg sync.WaitGroup
	results := make([]map[int]int, jobs)
	ctxs := make([]*Context, jobs)
	for i := 0; i < jobs; i++ {
		ctxs[i] = NewContext(1 + i%4)
	}
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = runSumPipeline(ctxs[i], 300)
		}(i)
	}
	wg.Wait()
	want := runSumPipeline(NewContext(1), 300)
	for i, got := range results {
		if !reflect.DeepEqual(got, want) {
			t.Errorf("job %d diverged: got %v, want %v", i, got, want)
		}
		if err := ctxs[i].Err(); err != nil {
			t.Errorf("job %d failed: %v", i, err)
		}
	}
	// Per-context stats: each job recorded its own stages, none of another's.
	for i, c := range ctxs {
		stages := c.Stats().Stages()
		byName := map[string]int{}
		for _, st := range stages {
			byName[st.Name]++
			if len(st.PerWorker) != c.Workers() {
				t.Errorf("job %d stage %q accounted %d workers, want %d", i, st.Name, len(st.PerWorker), c.Workers())
			}
		}
		for _, name := range []string{"input", "key", "sum"} {
			if byName[name] != 1 {
				t.Errorf("job %d recorded stage %q %d times, want 1", i, name, byName[name])
			}
		}
	}
}

func TestFaultStageErrorMessageNamesSite(t *testing.T) {
	plan := NewFaultPlan(Fault{Stage: "key", Worker: 1, Occurrence: 1, Kind: FaultTransient})
	c := NewContext(2, WithFaultPlan(plan))
	runSumPipeline(c, 50)
	err := c.Err()
	if err == nil {
		t.Fatal("expected failure")
	}
	msg := err.Error()
	for _, want := range []string{`stage "key"`, "worker 1", "attempt 1", "injected transient fault"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %q", msg, want)
		}
	}
}
