package dataflow

import "fmt"

// This file holds the entry points the streaming ingest layer builds on:
// caller-partitioned roots (FromPartitions) and the raw gather collective
// (Gather) that the dictionary-merge protocol in core runs over the wire
// layer. They are deliberately thin — placement policy, term tables, and
// document-order reconstruction all live with the caller — so the dataflow
// package keeps owning only movement and accounting.

// Rank returns this process's worker rank: 0..Workers()-1 on a worker
// replica, -1 on a cluster coordinator or a single-process run (where this
// process executes every logical worker).
func (c *Context) Rank() int { return c.rank }

// Distributed reports whether this Context takes part in a multi-process
// job, as coordinator or worker.
func (c *Context) Distributed() bool { return c.distributed() }

// FromPartitions roots a dataset from partitions the caller has already
// placed — the streaming-ingest counterpart of Parallelize, which instead
// splits one resident slice. parts must have exactly Workers() entries; in
// distributed mode a process supplies only the partitions it owns (the
// coordinator passes all-nil parts) and counts carries the cluster-wide
// per-partition record counts so span accounting still sees the whole
// input. A nil counts derives the counts from parts (single-process).
func FromPartitions[T any](c *Context, name string, parts [][]T, counts []int64) *Dataset[T] {
	if c.failed() {
		return empty[T](c)
	}
	if len(parts) != c.workers {
		c.fail(&StageError{Stage: name, Worker: c.rank, Attempt: 1,
			Cause: fmt.Errorf("FromPartitions: %d partitions for %d workers", len(parts), c.workers)})
		return empty[T](c)
	}
	sp := c.begin(name)
	if counts == nil {
		counts = make([]int64, c.workers)
		for w, p := range parts {
			counts[w] = int64(len(p))
		}
	}
	var total int64
	for _, n := range counts {
		total += n
	}
	c.finish(sp, counts, total)
	return &Dataset[T]{ctx: c, parts: parts}
}

// Gather runs one gather collective: every process receives all ranks'
// contributions in rank order. Single-process it degenerates to the
// process's own body; on a cluster coordinator the returned slices are the
// workers' contributions (the coordinator contributes nothing). It returns
// ok=false when the pipeline has failed — check Context.Err.
func Gather(c *Context, name string, body []byte) ([][]byte, bool) {
	if c.failed() {
		return nil, false
	}
	if !c.distributed() {
		return [][]byte{body}, true
	}
	return distGather(c, name, body)
}
