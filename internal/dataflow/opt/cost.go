package opt

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/metrics"
)

// CostModel prices a stage from the observation fields a span records. The
// defaults are rough per-unit CPU costs; Tune refits the record coefficient
// from a profile so estimates track the machine and workload at hand.
type CostModel struct {
	// NSPerRecord prices processing one input record.
	NSPerRecord float64 `json:"ns_per_record"`
	// NSPerShuffleByte prices moving one byte across partitions.
	NSPerShuffleByte float64 `json:"ns_per_shuffle_byte"`
	// NSPerSpillByte prices writing and re-reading one spilled byte.
	NSPerSpillByte float64 `json:"ns_per_spill_byte"`
}

// DefaultCostModel returns the untuned model used when no profile exists.
func DefaultCostModel() CostModel {
	return CostModel{NSPerRecord: 50, NSPerShuffleByte: 1, NSPerSpillByte: 8}
}

// Tune refits the per-record coefficient from a profile's observed wall
// times, weighted by record volume so big stages dominate. Byte costs keep
// their defaults unless spans moved enough bytes to fit them meaningfully.
func (m *CostModel) Tune(p *Profile) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var wallNS, records float64
	for _, obs := range p.stages {
		if obs.RecordsIn <= 0 || obs.WallMS <= 0 {
			continue
		}
		wallNS += obs.WallMS * 1e6
		records += float64(obs.RecordsIn)
	}
	if records > 0 {
		fit := wallNS / records
		// Clamp: a profile of tiny stages (fixed overhead dominates) or of
		// spill-bound stages must not push the model into absurdity.
		if fit < 5 {
			fit = 5
		}
		if fit > 5000 {
			fit = 5000
		}
		m.NSPerRecord = fit
	}
}

// EstimateSpan prices one recorded stage in nanoseconds.
func (m CostModel) EstimateSpan(sp metrics.Span) float64 {
	in := sp.CostInputs()
	return m.Estimate(in.RecordsIn, in.ShuffleBytes, in.SpilledBytes)
}

// Estimate prices a stage from its primitive quantities.
func (m CostModel) Estimate(records, shuffleBytes, spillBytes int64) float64 {
	return float64(records)*m.NSPerRecord +
		float64(shuffleBytes)*m.NSPerShuffleByte +
		float64(spillBytes)*m.NSPerSpillByte
}

// WriteExplain renders the optimized plan as executed: the rewrite rules and
// policies that fired, then each stage with its per-stage cost estimate.
// Stage lines are indented one level per '/'-segment, mirroring the span
// tree, and fused chains list their member operators. Raw cost numbers are
// volatile (the model may be profile-tuned), so golden tests normalize the
// est_cost values; everything else is deterministic at fixed worker count.
func WriteExplain(w io.Writer, spans []metrics.Span, rep *Report, workers int) {
	model := DefaultCostModel()
	switch {
	case rep == nil || !rep.Enabled:
		fmt.Fprintln(w, "plan optimizer: disabled")
	case rep.Profiled:
		fmt.Fprintln(w, "plan optimizer: enabled (profile-tuned cost model)")
		model = rep.Model
	default:
		fmt.Fprintln(w, "plan optimizer: enabled (cold, default cost model)")
		model = rep.Model
	}
	fmt.Fprintf(w, "workers: %d\n", workers)
	if n := len(rep.GetDecisions()); n > 0 {
		fmt.Fprintf(w, "rewrites and policies (%d):\n", n)
		for _, d := range rep.GetDecisions() {
			if d.Detail != "" {
				fmt.Fprintf(w, "  %-26s %s (%s)\n", d.Rule, d.Stage, d.Detail)
			} else {
				fmt.Fprintf(w, "  %-26s %s\n", d.Rule, d.Stage)
			}
		}
	}
	fmt.Fprintln(w, "plan:")
	byStage := decisionsByStage(rep.GetDecisions())
	for _, sp := range spans {
		depth := strings.Count(splitFused(sp.Name), "/")
		indent := strings.Repeat("  ", 1+depth)
		cost := model.EstimateSpan(sp)
		line := fmt.Sprintf("%s%s in=%d out=%d est_cost=%.0fns", indent, sp.Name, sp.RecordsIn, sp.RecordsOut, cost)
		if rules := byStage[sp.Name]; len(rules) > 0 {
			line += " [" + strings.Join(rules, ",") + "]"
		}
		fmt.Fprintln(w, line)
		for _, op := range sp.FusedOps {
			fmt.Fprintf(w, "%s  · %s in=%d\n", indent, op.Name, op.RecordsIn)
		}
	}
}

// GetDecisions is a nil-safe accessor for explain rendering.
func (r *Report) GetDecisions() []Decision {
	if r == nil {
		return nil
	}
	return r.Decisions
}

// splitFused returns the part of a span name used for indentation: the
// shared prefix of a fused name, the whole name otherwise.
func splitFused(name string) string {
	if i := strings.IndexByte(name, '+'); i >= 0 {
		return name[:i]
	}
	return name
}

// decisionsByStage groups fired rule names by the stage they apply to,
// matching both exact span names and the spans of a stage's sub-phases.
func decisionsByStage(decisions []Decision) map[string][]string {
	out := map[string][]string{}
	for _, d := range decisions {
		out[d.Stage] = append(out[d.Stage], d.Rule)
	}
	for stage, rules := range out {
		sort.Strings(rules)
		out[stage] = rules
	}
	return out
}
