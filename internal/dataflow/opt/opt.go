// Package opt is the dataflow engine's cost-based plan optimizer. It owns
// the logical-plan IR lifted from the engine's pending-chain representation
// (dataflow plan.go), the rewrite-rule catalog, a cost model fed by the span
// statistics the metrics layer records, and the on-disk profile that feeds
// past observations back in — the engine-level analogue of the cost-based
// optimizers in parallel data frameworks (Volcano/Cascades lineage).
//
// The engine executes operators as the driver calls them, so the optimizer
// is not a separate compile phase: the engine lifts each pending fragment
// (a narrow-operator chain, a shuffle with trailing narrow ops) into the IR
// at the moment a decision is due and asks the Planner. Every decision is
// either a rewrite rule (changing plan shape: shared-prefix materialization,
// filter/projection pushdown past a shuffle, combiner selection) or a
// per-stage policy (worker-count/serial execution, aggregation-map
// pre-sizing, memory-budget/spill bypass). All of them preserve results
// byte for byte; the differential suites pin that.
package opt

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind classifies the nodes of the lifted logical plan.
type Kind uint8

const (
	// KindSource is a materialized partition set a fragment reads from.
	KindSource Kind = iota
	// KindMap is a 1:1 narrow operator (a projection when it shrinks records).
	KindMap
	// KindFlatMap is a 1:N narrow operator.
	KindFlatMap
	// KindFilter is a record-subset narrow operator.
	KindFilter
	// KindMapPartitions consumes a whole partition at once.
	KindMapPartitions
	// KindShuffle redistributes records across partitions.
	KindShuffle
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindSource:
		return "source"
	case KindMap:
		return "map"
	case KindFlatMap:
		return "flatmap"
	case KindFilter:
		return "filter"
	case KindMapPartitions:
		return "map-partitions"
	case KindShuffle:
		return "shuffle"
	}
	return "unknown"
}

// Op is one operator of a lifted plan fragment.
type Op struct {
	Kind Kind
	Name string
}

// Chain is the IR of a pending narrow-operator chain: the operators that
// would run as one fused stage, in application order, lifted from the
// engine's plan representation.
type Chain struct {
	Ops []Op
}

// Signature names the chain the way the engine names its fused stage, so
// profile entries recorded from spans and decisions keyed by chain line up.
func (ch Chain) Signature() string {
	names := make([]string, len(ch.Ops))
	for i, op := range ch.Ops {
		names[i] = op.Name
	}
	return FusedName(names)
}

// FusedName names the fused stage of a chain of operator names. A single-op
// chain keeps exactly its operator's name; longer chains factor the longest
// common '/'-terminated prefix and join the remaining segments with '+'
// (["ext/prune-groups" "ext/drop-empty"] → "ext/prune-groups+drop-empty").
// The dataflow engine's span naming delegates here, so signatures match.
func FusedName(ops []string) string {
	if len(ops) == 0 {
		return ""
	}
	if len(ops) == 1 {
		return ops[0]
	}
	prefix := CommonSlashPrefix(ops)
	var b strings.Builder
	b.WriteString(prefix)
	for i, op := range ops {
		if i > 0 {
			b.WriteByte('+')
		}
		b.WriteString(op[len(prefix):])
	}
	return b.String()
}

// CommonSlashPrefix returns the longest '/'-terminated prefix shared by all
// names ("" when the first segments already differ).
func CommonSlashPrefix(ops []string) string {
	prefix := ops[0]
	i := strings.LastIndexByte(prefix, '/')
	if i < 0 {
		return ""
	}
	prefix = prefix[:i+1]
	for _, op := range ops[1:] {
		for !strings.HasPrefix(op, prefix) {
			j := strings.LastIndexByte(strings.TrimSuffix(prefix, "/"), '/')
			if j < 0 {
				return ""
			}
			prefix = prefix[:j+1]
		}
	}
	return prefix
}

// Rule names, as they appear in Decision records, -explain output, and the
// -stats policy lines.
const (
	// RuleSharedPrefix materializes a pending chain consumed by several
	// downstream fragments, so the shared prefix computes once instead of
	// replaying per consumer — the generalization of the hand-placed
	// Materialize the extraction phase used to carry.
	RuleSharedPrefix = "shared-prefix-materialize"
	// RuleProjectionPushdown moves a Map through a pending shuffle, so the
	// (usually narrower) projected records cross partitions instead of the
	// originals.
	RuleProjectionPushdown = "projection-pushdown"
	// RuleFilterPushdown moves a Filter through a pending shuffle, so dropped
	// records never cross partitions.
	RuleFilterPushdown = "filter-pushdown"
	// RuleCombinerSkip elides a ReduceByKey's partition-local combine pass
	// when the profile shows it barely pre-aggregates (keys are near-unique).
	RuleCombinerSkip = "combiner-skip"
	// RuleSerialStage runs a stage's workers sequentially on one goroutine
	// when fan-out overhead exceeds the stage's profiled work.
	RuleSerialStage = "serial-stage"
	// RuleMapPresize sizes an aggregation map from the profile's observed
	// distinct-key count instead of the speculative cap.
	RuleMapPresize = "map-presize"
	// RuleSpillBypass keeps a budgeted keyed stage on the in-memory path when
	// the profile shows its state is far under the budget and it never spilled.
	RuleSpillBypass = "spill-bypass"
)

// Decision is one optimizer action: a rewrite rule fired or a per-stage
// policy chosen. Stage is the operator (or chain signature) it applies to.
type Decision struct {
	Stage  string `json:"stage"`
	Rule   string `json:"rule"`
	Detail string `json:"detail,omitempty"`
}

// Report is the machine-readable summary of what the optimizer did during
// one run: whether it was enabled, whether a profile fed the cost model, the
// tuned model itself, and every decision in the order it was made.
type Report struct {
	Enabled   bool       `json:"enabled"`
	Profiled  bool       `json:"profiled,omitempty"`
	Model     CostModel  `json:"model"`
	Decisions []Decision `json:"decisions,omitempty"`
}

// Fired counts the decisions attributed to one rule.
func (r *Report) Fired(rule string) int {
	if r == nil {
		return 0
	}
	n := 0
	for _, d := range r.Decisions {
		if d.Rule == rule {
			n++
		}
	}
	return n
}

// Rules returns the distinct rule names that fired, sorted.
func (r *Report) Rules() []string {
	if r == nil {
		return nil
	}
	seen := map[string]bool{}
	for _, d := range r.Decisions {
		seen[d.Rule] = true
	}
	out := make([]string, 0, len(seen))
	for rule := range seen {
		out = append(out, rule)
	}
	sort.Strings(out)
	return out
}

// Policy thresholds. They are deliberately coarse: every rule they gate is
// result-preserving, so a misjudgment costs a little time, never correctness.
const (
	// serialRowCutoff/serialWallCutoffMS bound the profiled per-run records
	// and wall time under which parallel fan-out is not worth its goroutine
	// and synchronization overhead.
	serialRowCutoff    = 1024
	serialWallCutoffMS = 0.25
	// combinerKeepRatio is the minimum profiled pre-aggregation (1 - out/in)
	// the combine pass must achieve to keep running.
	combinerKeepRatio = 0.05
	// spillBypassHeadroom is how many times the profiled state estimate must
	// fit into the budget before the spill path is bypassed.
	spillBypassHeadroom = 4
)

// Planner makes the optimizer's decisions for one job. The dataflow Context
// owns one (nil when the optimizer is disabled or the run is distributed —
// profile-driven decisions must not diverge across replicated drivers) and
// consults it as the driver executes; the Planner records every decision for
// the run report. It is internally locked, but like the Context it belongs
// to a single driver goroutine.
type Planner struct {
	mu        sync.Mutex
	workers   int
	prof      *Profile
	model     CostModel
	decisions []Decision
	seen      map[string]bool // stage+rule dedupe for idempotent policies
}

// NewPlanner returns a planner for a job with the given worker count.
// prof may be nil (no history: only structural rules and in-run consumer
// counting apply); a non-empty profile also tunes the cost model.
func NewPlanner(workers int, prof *Profile) *Planner {
	model := DefaultCostModel()
	if prof != nil {
		model.Tune(prof)
	}
	return &Planner{workers: workers, prof: prof, model: model, seen: map[string]bool{}}
}

// Model returns the planner's (possibly profile-tuned) cost model.
func (p *Planner) Model() CostModel {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.model
}

// Report freezes the decisions made so far.
func (p *Planner) Report() *Report {
	p.mu.Lock()
	defer p.mu.Unlock()
	return &Report{
		Enabled:   true,
		Profiled:  p.prof != nil && p.prof.Len() > 0,
		Model:     p.model,
		Decisions: append([]Decision(nil), p.decisions...),
	}
}

// record appends a decision once per (stage, rule) pair; repeated firings of
// an idempotent policy (a retried stage re-asking, both phases of a keyed
// operator) collapse into the first record.
func (p *Planner) record(stage, rule, detail string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := stage + "\x00" + rule
	if p.seen[key] {
		return
	}
	p.seen[key] = true
	p.decisions = append(p.decisions, Decision{Stage: stage, Rule: rule, Detail: detail})
}

// phaseSuffixes are the engine's sub-stage name segments; opRoot strips them
// so policies and profile lookups key on the operator, whose span carries
// the recorded statistics.
var phaseSuffixes = map[string]bool{
	"combine": true, "scatter": true, "gather": true, "reduce": true,
	"group": true, "join": true, "partial": true, "merge": true,
	"left": true, "right": true,
}

func opRoot(name string) string {
	if i := strings.LastIndexByte(name, '/'); i >= 0 && phaseSuffixes[name[i+1:]] {
		return name[:i]
	}
	return name
}

// lookup finds the profile observation for a stage, trying the exact name
// first and then its operator root (sub-phases share the operator's span).
func (p *Planner) lookup(name string) (StageObs, bool) {
	if p.prof == nil {
		return StageObs{}, false
	}
	if obs, ok := p.prof.Lookup(name); ok {
		return obs, true
	}
	if root := opRoot(name); root != name {
		return p.prof.Lookup(root)
	}
	return StageObs{}, false
}

// MaterializeShared decides whether a pending chain should materialize now
// instead of being replayed by each consumer. consumers is how many
// downstream fragments have consumed the chain so far, including the one
// asking. The rule fires on the second in-run consumer — from then on the
// prefix is computed once — and, with a warm profile, already on the first,
// reproducing the hand-placed Materialize exactly. Firing also feeds the
// consumer count back into the profile for the next run.
func (p *Planner) MaterializeShared(ch Chain, consumers int) bool {
	if len(ch.Ops) == 0 {
		return false
	}
	sig := ch.Signature()
	if consumers >= 2 {
		if p.prof != nil {
			p.prof.NoteShared(sig, consumers)
		}
		p.record(sig, RuleSharedPrefix, fmt.Sprintf("consumers=%d", consumers))
		return true
	}
	if p.prof != nil && p.prof.SharedConsumers(sig) >= 2 {
		p.record(sig, RuleSharedPrefix,
			fmt.Sprintf("profile: %d consumers last run", p.prof.SharedConsumers(sig)))
		return true
	}
	return false
}

// ObserveShared feeds a chain's final consumer count into the profile
// without deciding anything: the engine calls it when a chain that lazy
// consumers already replayed is forced on top of them, so the next run's
// planner knows to materialize the prefix at its first consumer.
func (p *Planner) ObserveShared(ch Chain, consumers int) {
	if p.prof != nil && len(ch.Ops) > 0 && consumers >= 2 {
		p.prof.NoteShared(ch.Signature(), consumers)
	}
}

// PushThroughShuffle decides whether op may move from after a pending
// shuffle to its scatter side. Legal for Maps (routing happens on the
// pre-image, so placement is unchanged and the projected records cross the
// network) and Filters (dropped records never cross); everything else stays
// put.
func (p *Planner) PushThroughShuffle(shuffle string, op Op) bool {
	switch op.Kind {
	case KindMap:
		p.record(shuffle, RuleProjectionPushdown, op.Name)
		return true
	case KindFilter:
		p.record(shuffle, RuleFilterPushdown, op.Name)
		return true
	}
	return false
}

// SerialStage decides whether a stage's pending workers run sequentially on
// the driver goroutine instead of one goroutine each: always when only one
// worker is pending, and at higher worker counts when the profile shows the
// whole stage is smaller than the fan-out overhead it would pay.
func (p *Planner) SerialStage(name string, pending int) bool {
	if pending <= 1 {
		if p.workers == 1 {
			p.record(opRoot(name), RuleSerialStage, "single worker")
		}
		return true
	}
	if obs, ok := p.lookup(name); ok && obs.Runs > 0 &&
		obs.RecordsIn < serialRowCutoff && obs.WallMS < serialWallCutoffMS {
		p.record(opRoot(name), RuleSerialStage,
			fmt.Sprintf("profiled %d records in %.2fms", obs.RecordsIn, obs.WallMS))
		return true
	}
	return false
}

// KeySizeHint returns the expected number of distinct keys a keyed stage
// will aggregate (0 = unknown), from the profile's observed output size.
// Callers use it to pre-size aggregation maps where no semantic bound is
// known, replacing the engine's speculative cap.
func (p *Planner) KeySizeHint(name string) int64 {
	obs, ok := p.lookup(name)
	if !ok || obs.Runs == 0 || obs.RecordsOut <= 0 {
		return 0
	}
	p.record(opRoot(name), RuleMapPresize, fmt.Sprintf("expect %d keys", obs.RecordsOut))
	return obs.RecordsOut
}

// SkipCombiner decides whether a ReduceByKey elides its partition-local
// combine pass: when the profile shows the combiner barely shrinks its input
// (keys near-unique), the pass costs a full map build per worker and saves
// almost nothing downstream.
func (p *Planner) SkipCombiner(name string) bool {
	obs, ok := p.lookup(name)
	if !ok || obs.Runs == 0 || obs.CombinerIn <= 0 {
		return false
	}
	ratio := 1 - float64(obs.CombinerOut)/float64(obs.CombinerIn)
	if ratio >= combinerKeepRatio {
		return false
	}
	p.record(opRoot(name), RuleCombinerSkip,
		fmt.Sprintf("combiner kept %d of %d records", obs.CombinerOut, obs.CombinerIn))
	return true
}

// BypassSpill decides whether a budgeted keyed stage may stay on the
// in-memory path: only when the profile shows the stage never spilled and
// its state estimate fits the budget several times over. Cold stages always
// take the spill path — the budget is a hard cap until history says the
// stage is far under it.
func (p *Planner) BypassSpill(name string, budget int64) bool {
	obs, ok := p.lookup(name)
	if !ok || obs.Runs == 0 || obs.SpilledBytes > 0 {
		return false
	}
	state := obs.StateBytes()
	if state <= 0 || state*spillBypassHeadroom > budget {
		return false
	}
	p.record(opRoot(name), RuleSpillBypass,
		fmt.Sprintf("profiled state ≈%dB under budget %dB", state, budget))
	return true
}
