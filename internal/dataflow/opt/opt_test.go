package opt

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func TestFusedName(t *testing.T) {
	cases := []struct {
		ops  []string
		want string
	}{
		{nil, ""},
		{[]string{"fc/count"}, "fc/count"},
		{[]string{"ext/prune-groups", "ext/drop-empty"}, "ext/prune-groups+drop-empty"},
		{[]string{"a/b/x", "a/b/y", "a/z"}, "a/b/x+b/y+z"},
		{[]string{"left", "right"}, "left+right"},
	}
	for _, tc := range cases {
		if got := FusedName(tc.ops); got != tc.want {
			t.Errorf("FusedName(%v) = %q, want %q", tc.ops, got, tc.want)
		}
	}
}

func TestChainSignatureMatchesFusedName(t *testing.T) {
	ch := Chain{Ops: []Op{
		{Kind: KindMap, Name: "ext/close"},
		{Kind: KindFilter, Name: "ext/keep"},
	}}
	if got, want := ch.Signature(), FusedName([]string{"ext/close", "ext/keep"}); got != want {
		t.Fatalf("Signature() = %q, want %q", got, want)
	}
}

func TestProfileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p := NewProfile()
	p.Observe([]metrics.Span{
		{Name: "fc/count", RecordsIn: 1000, RecordsOut: 60, WallMS: 2.5, ShuffleBytes: 4096},
		{Name: "input", RecordsIn: 1000, RecordsOut: 1000, WallMS: 0.1},
	})
	p.NoteShared("ext/close", 2)
	if err := p.Save(dir); err != nil {
		t.Fatalf("Save: %v", err)
	}

	q, err := LoadProfile(dir)
	if err != nil {
		t.Fatalf("LoadProfile: %v", err)
	}
	if q.Len() != 2 {
		t.Fatalf("loaded %d stages, want 2", q.Len())
	}
	obs, ok := q.Lookup("fc/count")
	if !ok || obs.RecordsIn != 1000 || obs.RecordsOut != 60 || obs.ShuffleBytes != 4096 {
		t.Errorf("loaded observation = %+v ok=%v", obs, ok)
	}
	if q.SharedConsumers("ext/close") != 2 {
		t.Errorf("shared consumers lost in round trip: %d", q.SharedConsumers("ext/close"))
	}

	// Missing directory: cold start, no error.
	q2, err := LoadProfile(filepath.Join(dir, "nowhere"))
	if err != nil || q2.Len() != 0 {
		t.Errorf("missing profile: len=%d err=%v, want empty and nil", q2.Len(), err)
	}

	// Corrupt file: cold start with the error surfaced.
	if err := os.WriteFile(filepath.Join(dir, profileFile), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	q3, err := LoadProfile(dir)
	if err == nil {
		t.Errorf("corrupt profile loaded without error")
	}
	if q3 == nil || q3.Len() != 0 {
		t.Errorf("corrupt profile did not yield a usable empty profile")
	}
}

func TestProfileEMA(t *testing.T) {
	p := NewProfile()
	p.Observe([]metrics.Span{{Name: "s", RecordsIn: 100, WallMS: 1.0}})
	p.Observe([]metrics.Span{{Name: "s", RecordsIn: 200, WallMS: 3.0}})
	obs, _ := p.Lookup("s")
	if obs.Runs != 2 {
		t.Fatalf("runs = %d, want 2", obs.Runs)
	}
	// First sample taken whole, second blended at α=0.5: 100→150, 1.0→2.0.
	if obs.RecordsIn != 150 {
		t.Errorf("records EMA = %d, want 150", obs.RecordsIn)
	}
	if obs.WallMS != 2.0 {
		t.Errorf("wall EMA = %v, want 2.0", obs.WallMS)
	}
}

func TestCostModelTune(t *testing.T) {
	m := DefaultCostModel()
	p := NewProfile()
	// 1e6 records in 100ms → 100ns/record.
	p.Observe([]metrics.Span{{Name: "big", RecordsIn: 1_000_000, WallMS: 100}})
	m.Tune(p)
	if m.NSPerRecord < 99 || m.NSPerRecord > 101 {
		t.Errorf("tuned ns/record = %v, want ≈100", m.NSPerRecord)
	}

	// Absurd fits clamp instead of poisoning estimates.
	lo := DefaultCostModel()
	pLo := NewProfile()
	pLo.Observe([]metrics.Span{{Name: "s", RecordsIn: 1_000_000_000, WallMS: 1}})
	lo.Tune(pLo)
	if lo.NSPerRecord != 5 {
		t.Errorf("under-clamp: %v, want 5", lo.NSPerRecord)
	}
	hi := DefaultCostModel()
	pHi := NewProfile()
	pHi.Observe([]metrics.Span{{Name: "s", RecordsIn: 10, WallMS: 10_000}})
	hi.Tune(pHi)
	if hi.NSPerRecord != 5000 {
		t.Errorf("over-clamp: %v, want 5000", hi.NSPerRecord)
	}

	// Tuning with no usable observations keeps the default.
	un := DefaultCostModel()
	un.Tune(NewProfile())
	if !reflect.DeepEqual(un, DefaultCostModel()) {
		t.Errorf("empty profile changed the model: %+v", un)
	}
}

func TestPlannerRules(t *testing.T) {
	p := NewPlanner(4, nil)
	ch := Chain{Ops: []Op{{Kind: KindMap, Name: "ext/close"}}}
	if p.MaterializeShared(ch, 1) {
		t.Errorf("cold planner materialized at the first consumer")
	}
	if !p.MaterializeShared(ch, 2) {
		t.Errorf("second consumer did not trigger materialization")
	}
	if p.MaterializeShared(Chain{}, 5) {
		t.Errorf("empty chain materialized")
	}

	if !p.PushThroughShuffle("route", Op{Kind: KindMap, Name: "m"}) {
		t.Errorf("map not pushed")
	}
	if !p.PushThroughShuffle("route", Op{Kind: KindFilter, Name: "f"}) {
		t.Errorf("filter not pushed")
	}
	if p.PushThroughShuffle("route", Op{Kind: KindFlatMap, Name: "fm"}) {
		t.Errorf("flatmap pushed through a shuffle")
	}

	if !p.SerialStage("s", 1) {
		t.Errorf("single pending worker not serial")
	}
	if p.SerialStage("s", 4) {
		t.Errorf("cold 4-worker stage went serial")
	}
	if p.SkipCombiner("s") || p.BypassSpill("s", 1<<30) || p.KeySizeHint("s") != 0 {
		t.Errorf("profile-driven rules fired without a profile")
	}

	rep := p.Report()
	if !rep.Enabled || rep.Profiled {
		t.Errorf("report flags: %+v", rep)
	}
	if rep.Fired(RuleSharedPrefix) != 1 {
		t.Errorf("shared-prefix decisions = %d, want 1", rep.Fired(RuleSharedPrefix))
	}
	wantRules := []string{RuleFilterPushdown, RuleProjectionPushdown, RuleSharedPrefix}
	if got := rep.Rules(); !reflect.DeepEqual(got, wantRules) {
		t.Errorf("Rules() = %v, want %v", got, wantRules)
	}
}

func TestPlannerDedupesDecisions(t *testing.T) {
	p := NewPlanner(1, nil)
	for i := 0; i < 5; i++ {
		p.SerialStage("stage/combine", 1) // sub-phase collapses to its operator root
		p.SerialStage("stage/reduce", 1)
		p.SerialStage("stage", 1)
	}
	rep := p.Report()
	if len(rep.Decisions) != 1 {
		t.Fatalf("decisions = %+v, want a single deduped serial-stage record", rep.Decisions)
	}
	if rep.Decisions[0].Stage != "stage" {
		t.Errorf("decision stage = %q, want operator root %q", rep.Decisions[0].Stage, "stage")
	}
}

func TestOpRoot(t *testing.T) {
	cases := map[string]string{
		"fc/count/combine":  "fc/count",
		"fc/count/scatter":  "fc/count",
		"ext/units/gather":  "ext/units",
		"ext/close":         "ext/close", // not a phase suffix
		"input":             "input",
		"cg/evidence/group": "cg/evidence",
	}
	for in, want := range cases {
		if got := opRoot(in); got != want {
			t.Errorf("opRoot(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWriteExplain(t *testing.T) {
	p := NewPlanner(2, nil)
	p.MaterializeShared(Chain{Ops: []Op{{Kind: KindMap, Name: "ext/close"}}}, 2)
	p.PushThroughShuffle("ext/place-units", Op{Kind: KindMap, Name: "ext/unwrap-units"})
	rep := p.Report()
	spans := []metrics.Span{
		{Name: "input", RecordsIn: 100, RecordsOut: 100},
		{Name: "ext/place-units", RecordsIn: 50, RecordsOut: 50,
			FusedOps: []metrics.FusedOp{{Name: "ext/unwrap-units", RecordsIn: 50}}},
	}
	var b strings.Builder
	WriteExplain(&b, spans, rep, 2)
	out := b.String()
	for _, want := range []string{
		"plan optimizer: enabled (cold, default cost model)",
		"workers: 2",
		RuleSharedPrefix + " ", // rule listing
		"ext/close",
		RuleProjectionPushdown,
		"input in=100 out=100 est_cost=",
		"· ext/unwrap-units in=50",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}

	var off strings.Builder
	WriteExplain(&off, spans, nil, 2)
	if !strings.Contains(off.String(), "plan optimizer: disabled") {
		t.Errorf("disabled explain: %s", off.String())
	}
}
