package opt

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/metrics"
)

// profileFile is the file name inside a profile directory.
const profileFile = "profile.json"

// obsAlpha is the exponential-moving-average weight of the newest run: high
// enough that two runs of a changed workload converge, low enough that one
// noisy run does not flip a policy.
const obsAlpha = 0.5

// StageObs is the smoothed per-stage observation the profile keeps: the
// cost-model inputs a span records, averaged across runs.
type StageObs struct {
	// Runs counts how many runs contributed; the remaining fields are
	// exponential moving averages over those runs.
	Runs              int64   `json:"runs"`
	RecordsIn         int64   `json:"records_in"`
	RecordsOut        int64   `json:"records_out"`
	WallMS            float64 `json:"wall_ms"`
	ShuffleBytes      int64   `json:"shuffle_bytes,omitempty"`
	SpilledBytes      int64   `json:"spilled_bytes,omitempty"`
	MaterializedBytes int64   `json:"materialized_bytes,omitempty"`
	CombinerIn        int64   `json:"combiner_in,omitempty"`
	CombinerOut       int64   `json:"combiner_out,omitempty"`
	AllocBytes        int64   `json:"alloc_bytes,omitempty"`
}

// fallbackRecordBytes is the per-record width assumed when a stage's spans
// never exposed one (no shuffle crossed workers, nothing materialized). It
// is deliberately generous — an over-estimate only delays a spill bypass,
// an under-estimate could overcommit a real budget.
const fallbackRecordBytes = 64

// StateBytes estimates the in-memory state the stage holds at its peak, for
// budget decisions: its shuffle buffers plus aggregation output, priced at
// the bytes it materialized when known, else the per-record width implied by
// its shuffle traffic, else a generous constant.
func (o StageObs) StateBytes() int64 {
	if o.MaterializedBytes > 0 {
		return o.MaterializedBytes
	}
	records := o.RecordsIn + o.RecordsOut
	if records <= 0 {
		return 0
	}
	width := int64(fallbackRecordBytes)
	if o.ShuffleBytes > 0 && o.RecordsIn > 0 {
		if w := o.ShuffleBytes / o.RecordsIn; w > width {
			width = w
		}
	}
	return records * width
}

// Profile accumulates per-stage observations across runs and remembers which
// chain signatures were consumed by multiple downstream fragments. It is the
// self-tuning half of the optimizer: a run records into it, the next run's
// planner reads it. Safe for concurrent use.
type Profile struct {
	mu     sync.Mutex
	stages map[string]*StageObs
	shared map[string]int
}

// profileState is the on-disk shape of a Profile.
type profileState struct {
	Stages map[string]*StageObs `json:"stages"`
	Shared map[string]int       `json:"shared,omitempty"`
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{stages: map[string]*StageObs{}, shared: map[string]int{}}
}

// LoadProfile reads the profile stored in dir. A missing file yields an
// empty profile and no error (first run); an unreadable or corrupt file
// yields an empty profile and the error, so callers can start cold and
// overwrite it on save.
func LoadProfile(dir string) (*Profile, error) {
	p := NewProfile()
	data, err := os.ReadFile(filepath.Join(dir, profileFile))
	if err != nil {
		if os.IsNotExist(err) {
			return p, nil
		}
		return p, err
	}
	var st profileState
	if err := json.Unmarshal(data, &st); err != nil {
		return NewProfile(), err
	}
	if st.Stages != nil {
		p.stages = st.Stages
	}
	if st.Shared != nil {
		p.shared = st.Shared
	}
	return p, nil
}

// Save writes the profile into dir, creating it if needed.
func (p *Profile) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	p.mu.Lock()
	data, err := json.MarshalIndent(profileState{Stages: p.stages, Shared: p.shared}, "", "  ")
	p.mu.Unlock()
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, profileFile), data, 0o644)
}

// Len reports how many stages have observations.
func (p *Profile) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.stages)
}

// Lookup returns the observation for a stage name, if any.
func (p *Profile) Lookup(name string) (StageObs, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	obs, ok := p.stages[name]
	if !ok {
		return StageObs{}, false
	}
	return *obs, true
}

// Observe folds one run's spans into the profile.
func (p *Profile) Observe(spans []metrics.Span) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, sp := range spans {
		in := sp.CostInputs()
		obs, ok := p.stages[sp.Name]
		if !ok {
			obs = &StageObs{}
			p.stages[sp.Name] = obs
		}
		obs.Runs++
		obs.RecordsIn = ema(obs.RecordsIn, in.RecordsIn, obs.Runs)
		obs.RecordsOut = ema(obs.RecordsOut, in.RecordsOut, obs.Runs)
		obs.WallMS = emaF(obs.WallMS, in.WallMS, obs.Runs)
		obs.ShuffleBytes = ema(obs.ShuffleBytes, in.ShuffleBytes, obs.Runs)
		obs.SpilledBytes = ema(obs.SpilledBytes, in.SpilledBytes, obs.Runs)
		obs.MaterializedBytes = ema(obs.MaterializedBytes, in.MaterializedBytes, obs.Runs)
		obs.CombinerIn = ema(obs.CombinerIn, in.CombinerIn, obs.Runs)
		obs.CombinerOut = ema(obs.CombinerOut, in.CombinerOut, obs.Runs)
		obs.AllocBytes = ema(obs.AllocBytes, in.AllocBytes, obs.Runs)
	}
}

// NoteShared records that a chain signature had the given number of
// downstream consumers this run (keeps the maximum seen in-run).
func (p *Profile) NoteShared(sig string, consumers int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if consumers > p.shared[sig] {
		p.shared[sig] = consumers
	}
}

// SharedConsumers returns the recorded consumer count for a chain signature.
func (p *Profile) SharedConsumers(sig string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.shared[sig]
}

// ema folds the newest sample into the running average. The first sample is
// taken whole; later ones blend with weight obsAlpha.
func ema(avg, sample, runs int64) int64 {
	if runs <= 1 {
		return sample
	}
	return int64(float64(avg)*(1-obsAlpha) + float64(sample)*obsAlpha)
}

func emaF(avg, sample float64, runs int64) float64 {
	if runs <= 1 {
		return sample
	}
	return avg*(1-obsAlpha) + sample*obsAlpha
}
