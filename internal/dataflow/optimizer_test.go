package dataflow

import (
	"fmt"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"

	"repro/internal/dataflow/opt"
)

// The optimizer's engine-level contract: every rewrite rule and policy is
// invisible at the result boundary (byte-identical partitions against an
// optimizer-off run) and visible in the run report. These suites drive each
// rule directly through the operators that host it.

// optPair sorts pair slices for result comparison where map iteration order
// is involved.
func optPair(parts [][]Pair[int, int]) []Pair[int, int] {
	var all []Pair[int, int]
	for _, p := range parts {
		all = append(all, p...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Key != all[j].Key {
			return all[i].Key < all[j].Key
		}
		return all[i].Val < all[j].Val
	})
	return all
}

func seqInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// TestOptimizerSharedPrefixMaterializes pins the shared-prefix rule's two
// activation modes. Cold: the second lazy consumer of a pending chain
// triggers materialization, so the prefix executes at most twice (once
// lazily replayed by consumer one, once materialized) instead of once per
// consumer. Warm: a profile that remembers the sharing materializes at the
// first consumer, and the prefix executes exactly once for any number of
// consumers — the hand-placed-Materialize behavior, derived automatically.
func TestOptimizerSharedPrefixMaterializes(t *testing.T) {
	run := func(prof *opt.Profile, consumers int) (int64, [][]int, *opt.Report) {
		var calls atomic.Int64
		opts := []Option{WithFusion(true), WithOptimizer(true)}
		if prof != nil {
			opts = append(opts, WithProfile(prof))
		}
		c := NewContext(2, opts...)
		base := Parallelize(c, "src", seqInts(100))
		shared := Map(base, "stage/expensive", func(v int) int {
			calls.Add(1)
			return v * 3
		})
		outs := make([][][]int, consumers)
		for i := 0; i < consumers; i++ {
			outs[i] = Map(shared, fmt.Sprintf("stage/consumer-%d", i), func(v int) int { return v + i }).Partitions()
		}
		return calls.Load(), outs[0], c.OptimizerReport()
	}

	prof := opt.NewProfile()
	calls, cold, rep := run(prof, 3)
	if calls > 200 {
		t.Errorf("cold run executed the shared prefix %d times for 100 records × 3 consumers; want ≤ 200", calls)
	}
	if rep.Fired(opt.RuleSharedPrefix) == 0 {
		t.Errorf("cold run with 3 consumers fired no shared-prefix decision: %+v", rep.Decisions)
	}
	if prof.SharedConsumers("stage/expensive") < 2 {
		t.Errorf("profile did not learn the sharing: consumers=%d", prof.SharedConsumers("stage/expensive"))
	}

	calls, warm, _ := run(prof, 3)
	if calls != 100 {
		t.Errorf("warm run executed the shared prefix %d times; want exactly 100 (materialize at first consumer)", calls)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("warm-profile run changed the results")
	}

	// Optimizer off: every consumer replays the prefix.
	var calls3 atomic.Int64
	c := NewContext(2, WithFusion(true), WithOptimizer(false))
	base := Parallelize(c, "src", seqInts(100))
	shared := Map(base, "stage/expensive", func(v int) int { calls3.Add(1); return v * 3 })
	var off [][]int
	for i := 0; i < 3; i++ {
		off = Map(shared, fmt.Sprintf("stage/consumer-%d", i), func(v int) int { return v + i }).Partitions()
	}
	if calls3.Load() != 300 {
		t.Fatalf("optimizer-off run executed the shared prefix %d times; want 300 (replay per consumer)", calls3.Load())
	}
	if rep := c.OptimizerReport(); rep != nil {
		t.Errorf("optimizer-off context returned a report: %+v", rep)
	}
	_ = off
}

// TestOptimizerShufflePushdown pins the pushdown rules: Maps and Filters
// after a PartitionBy execute on the scatter side, the shuffle span carries
// their fused attribution, and the output is byte-identical to an
// optimizer-off run — including partition placement and in-partition order,
// because routing happens on the pre-image.
func TestOptimizerShufflePushdown(t *testing.T) {
	build := func(c *Context) [][]int {
		d := Parallelize(c, "src", seqInts(1000))
		shuffled := PartitionBy(d, "route", func(v int) int { return v / 100 })
		projected := Map(shuffled, "project", func(v int) int { return v * 2 })
		kept := Filter(projected, "keep", func(v int) bool { return v%3 != 0 })
		return kept.Partitions()
	}

	on := NewContext(4, WithFusion(true), WithOptimizer(true))
	got := build(on)
	off := NewContext(4, WithFusion(true), WithOptimizer(false))
	want := build(off)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("pushdown changed partition contents or order:\n on=%v\noff=%v", got, want)
	}

	rep := on.OptimizerReport()
	if rep.Fired(opt.RuleProjectionPushdown) != 1 || rep.Fired(opt.RuleFilterPushdown) != 1 {
		t.Fatalf("expected one projection and one filter pushdown, got %+v", rep.Decisions)
	}
	var found bool
	for _, sp := range on.Stats().Spans() {
		if sp.Name != "route" {
			continue
		}
		found = true
		if len(sp.FusedOps) != 2 || sp.FusedOps[0].Name != "project" || sp.FusedOps[1].Name != "keep" {
			t.Errorf("shuffle span fused-op attribution = %+v; want project, keep", sp.FusedOps)
		}
		if sp.RecordsIn != 1000 {
			t.Errorf("shuffle span records_in = %d; want 1000", sp.RecordsIn)
		}
	}
	if !found {
		t.Errorf("no span named after the PartitionBy stage")
	}

	// The span catalog differs between modes (pushed ops leave their own
	// spans), but the pushed-through record count must not: the filter sees
	// all 1000 mapped records either way.
	for _, sp := range on.Stats().Spans() {
		if sp.Name == "project" || sp.Name == "keep" {
			t.Errorf("pushed operator %q still recorded its own span", sp.Name)
		}
	}
}

// TestOptimizerShuffleSecondConsumer pins the multi-consumer contract of a
// pending shuffle: deriving a pushed plan never mutates the original, and a
// second consumer forces the un-extended shuffle with correct contents.
func TestOptimizerShuffleSecondConsumer(t *testing.T) {
	c := NewContext(3, WithFusion(true), WithOptimizer(true))
	d := Parallelize(c, "src", seqInts(90))
	shuffled := PartitionBy(d, "route", func(v int) int { return v })
	mapped := Map(shuffled, "project", func(v int) int { return -v })
	raw := shuffled.Partitions() // second consumer: forces the original shuffle
	got := mapped.Partitions()

	off := NewContext(3, WithFusion(true), WithOptimizer(false))
	dOff := Parallelize(off, "src", seqInts(90))
	shuffledOff := PartitionBy(dOff, "route", func(v int) int { return v })
	wantRaw := shuffledOff.Partitions()
	wantMapped := Map(shuffledOff, "project", func(v int) int { return -v }).Partitions()

	if !reflect.DeepEqual(raw, wantRaw) {
		t.Errorf("original shuffle diverged after a pushed derivation")
	}
	if !reflect.DeepEqual(got, wantMapped) {
		t.Errorf("pushed shuffle diverged from eager shuffle+map")
	}
}

// TestOptimizerCombinerSkip pins combiner selection: with a profile showing
// near-unique keys, ReduceByKey elides its combine pass (no combiner
// accounting on the span) and still produces identical results.
func TestOptimizerCombinerSkip(t *testing.T) {
	items := make([]Pair[int, int], 500)
	for i := range items {
		items[i] = Pair[int, int]{Key: i, Val: i} // all keys unique: worst case for the combiner
	}
	run := func(prof *opt.Profile) ([]Pair[int, int], *Context) {
		opts := []Option{WithFusion(true), WithOptimizer(true)}
		if prof != nil {
			opts = append(opts, WithProfile(prof))
		}
		c := NewContext(3, opts...)
		d := Parallelize(c, "src", items)
		red := ReduceByKey(d, "sum", func(a, b int) int { return a + b })
		return optPair(red.Partitions()), c
	}

	prof := opt.NewProfile()
	want, c1 := run(prof)
	prof.Observe(c1.Stats().Spans())
	if obs, ok := prof.Lookup("sum"); !ok || obs.CombinerIn == 0 {
		t.Fatalf("profile did not record combiner accounting: %+v ok=%v", obs, ok)
	}

	got, c2 := run(prof)
	rep := c2.OptimizerReport()
	if rep.Fired(opt.RuleCombinerSkip) != 1 {
		t.Fatalf("warm run did not skip the useless combiner: %+v", rep.Decisions)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("combiner skip changed the reduced results")
	}
	for _, sp := range c2.Stats().Spans() {
		if sp.Name == "sum" && sp.CombinerIn != 0 {
			t.Errorf("skipped combiner still recorded combiner_in=%d", sp.CombinerIn)
		}
	}

	// A combiner that actually aggregates keeps running: 10 hot keys.
	hot := make([]Pair[int, int], 500)
	for i := range hot {
		hot[i] = Pair[int, int]{Key: i % 10, Val: 1}
	}
	prof2 := opt.NewProfile()
	c3 := NewContext(3, WithFusion(true), WithOptimizer(true), WithProfile(prof2))
	ReduceByKey(Parallelize(c3, "src", hot), "sum", func(a, b int) int { return a + b }).Partitions()
	prof2.Observe(c3.Stats().Spans())
	c4 := NewContext(3, WithFusion(true), WithOptimizer(true), WithProfile(prof2))
	ReduceByKey(Parallelize(c4, "src", hot), "sum", func(a, b int) int { return a + b }).Partitions()
	if c4.OptimizerReport().Fired(opt.RuleCombinerSkip) != 0 {
		t.Errorf("profitable combiner was skipped")
	}
}

// TestOptimizerSerialStagePolicy pins the worker-count policy: a stage the
// profile knows to be tiny runs serially at workers > 1 with identical
// results, and the decision is recorded.
func TestOptimizerSerialStagePolicy(t *testing.T) {
	items := seqInts(50) // far under serialRowCutoff
	prof := opt.NewProfile()
	c1 := NewContext(4, WithFusion(false), WithOptimizer(true), WithProfile(prof))
	want := Map(Parallelize(c1, "src", items), "tiny", func(v int) int { return v * 7 }).Partitions()
	prof.Observe(c1.Stats().Spans())

	c2 := NewContext(4, WithFusion(false), WithOptimizer(true), WithProfile(prof))
	got := Map(Parallelize(c2, "src", items), "tiny", func(v int) int { return v * 7 }).Partitions()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("serial execution changed results")
	}
	if c2.OptimizerReport().Fired(opt.RuleSerialStage) == 0 {
		t.Errorf("profiled tiny stage at 4 workers recorded no serial-stage policy: %+v",
			c2.OptimizerReport().Decisions)
	}
}

// TestOptimizerSpillBypass pins the memory-budget policy: a stage whose
// profiled state sits far under a generous budget skips the spill path on
// the next run (identical results, no spill activity), while a cold stage
// honors the budget.
func TestOptimizerSpillBypass(t *testing.T) {
	items := make([]Pair[int, int], 400)
	for i := range items {
		items[i] = Pair[int, int]{Key: i % 20, Val: i}
	}
	sum := func(a, b int) int { return a + b }
	const budget = 64 << 20 // generous: profiled state fits thousands of times

	runBudgeted := func(prof *opt.Profile) (*Context, [][]Pair[int, int]) {
		opts := []Option{WithFusion(true), WithOptimizer(true),
			WithMemoryBudget(budget), WithSpillDir(t.TempDir())}
		if prof != nil {
			opts = append(opts, WithProfile(prof))
		}
		c := NewContext(2, opts...)
		out := ReduceByKey(Parallelize(c, "src", items), "agg", sum).Partitions()
		return c, out
	}

	prof := opt.NewProfile()
	c1, want := runBudgeted(prof)
	if c1.OptimizerReport().Fired(opt.RuleSpillBypass) != 0 {
		t.Fatalf("cold run bypassed the spill path")
	}
	prof.Observe(c1.Stats().Spans())

	c2, got := runBudgeted(prof)
	if c2.OptimizerReport().Fired(opt.RuleSpillBypass) != 1 {
		t.Fatalf("warm run under a generous budget kept the spill path: %+v", c2.OptimizerReport().Decisions)
	}
	if !reflect.DeepEqual(optPair(got), optPair(want)) {
		t.Errorf("spill bypass changed the reduced results")
	}

	// A 1-byte budget never bypasses, warm or not: headroom can't be met.
	c3 := NewContext(2, WithFusion(true), WithOptimizer(true), WithProfile(prof),
		WithMemoryBudget(1), WithSpillDir(t.TempDir()))
	ReduceByKey(Parallelize(c3, "src", items), "agg", sum).Partitions()
	if c3.OptimizerReport().Fired(opt.RuleSpillBypass) != 0 {
		t.Errorf("1-byte budget was bypassed")
	}
}

// TestOptimizerDistributedInert pins that replicated drivers never get a
// planner: profile- and consumer-count-driven decisions on rank-local state
// could diverge between replicas and desynchronize the collectives.
func TestOptimizerDistributedInert(t *testing.T) {
	c := NewContext(2, WithOptimizer(true))
	if !c.Optimizer() {
		t.Fatalf("single-process context has no active optimizer")
	}
	// Simulated via the option hooks the cluster/worker constructors use.
	cl := &Cluster{}
	cc := NewContext(2, WithOptimizer(true), WithCluster(cl))
	if cc.Optimizer() {
		t.Errorf("coordinator context has an active optimizer")
	}
	if cc.OptimizerReport() != nil {
		t.Errorf("coordinator context returned an optimizer report")
	}
}
