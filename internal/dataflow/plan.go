package dataflow

import "repro/internal/dataflow/opt"

// This file is the engine's lazy logical-plan layer. Narrow operators — Map,
// FlatMap, Filter, and the output side of MapPartitions — do not execute when
// they are called: they append to a pending chain on the Dataset, and the
// whole chain runs as ONE fused stage when something needs the data. A wide
// operator (ReduceByKey, GroupByKey, CoGroup, Distinct, PartitionBy, Union),
// Collect, GlobalReduce, Len, Partitions, or String forces materialization;
// the fused stage streams every source record through all chained functions
// in a single pass — one goroutine fan-out, one output buffer per worker,
// zero intermediate partitions — which is how Flink executes RDFind's long
// narrow chains as chained operators (App. C of the paper).
//
// Chains are always rooted at materialized partitions: extending a lazy
// dataset composes onto its pending chain, extending a materialized dataset
// starts a fresh chain over its partitions. Forcing is memoized — the first
// force materializes the partitions and clears the plan, every later force is
// a no-op — but chains themselves are not shared state: two consumers that
// each extend the same unforced dataset replay its pending prefix once per
// consumer (like Spark's lineage recomputation). Call Materialize on a
// dataset with several downstream consumers to compute the prefix once.
//
// Fault tolerance keeps the retained-input contract at chain granularity: the
// fused stage's inputs are the chain's materialized root partitions, so a
// retried worker replays the whole chain from them (and resets its per-op
// tallies), exactly as an eager stage replays from its retained input.
// WithFusion(false) — or DATAFLOW_FUSION=off in the environment — restores
// the old eager one-stage-per-operator execution for differential testing.

// chain is a pending narrow-operator chain. T is the type the chain emits;
// the materialized root partitions it reads are captured inside feed.
// srcLens holds the root's per-worker partition lengths (the fused stage's
// input accounting), ops the chained operator names in application order, and
// feed streams worker w's root partition through every chained function,
// incrementing tally[i] for each record entering the i-th operator. bfeed is
// the columnar twin of feed (batch.go): the same chain as batch-at-a-time
// column kernels, producing identical output records and identical tallies.
// Every constructor builds both; force picks one per Context.columnar.
type chain[T any] struct {
	srcLens []int64
	ops     []string
	kinds   []opt.Kind // operator kinds parallel to ops, for lifting into the optimizer IR
	feed    func(w int, tally []int64, emit func(T))
	bfeed   batchFeed[T]
}

// lift raises the pending chain into the optimizer's logical-plan IR.
func (p *chain[T]) lift() opt.Chain {
	ops := make([]opt.Op, len(p.ops))
	for i, name := range p.ops {
		ops[i] = opt.Op{Kind: p.kinds[i], Name: name}
	}
	return opt.Chain{Ops: ops}
}

// chainOf returns d's pending chain, or a fresh zero-op chain rooted at its
// materialized partitions. With the optimizer active it is also the
// shared-prefix decision point: each lazy consumer of a pending chain passes
// through here, and when the planner decides the chain is shared — a second
// in-run consumer, or a warm profile remembering one from the last run — the
// chain materializes now, so this consumer (and every later one) reads the
// computed partitions instead of replaying the prefix. This generalizes the
// hand-placed Materialize calls domain code used to carry.
func chainOf[T any](d *Dataset[T]) *chain[T] {
	if d.shuffle != nil {
		d.forceShuffle()
	}
	if d.plan != nil {
		c := d.ctx
		if c.planner == nil {
			return d.plan
		}
		d.consumers++
		if !c.planner.MaterializeShared(d.plan.lift(), d.consumers) {
			return d.plan
		}
		d.consumers = 0 // the rule already noted the sharing; force must not re-count
		d.force()
	}
	parts := d.parts
	lens := make([]int64, len(parts))
	for w, p := range parts {
		lens[w] = int64(len(p))
	}
	return &chain[T]{
		srcLens: lens,
		feed: func(w int, _ []int64, emit func(T)) {
			for _, t := range parts[w] {
				emit(t)
			}
		},
		bfeed: rootBatchFeed(parts),
	}
}

// extendOps copies the op-name slice and appends name. The copy matters:
// sibling chains extended off the same parent must not alias one slice.
func extendOps(ops []string, name string) []string {
	out := make([]string, 0, len(ops)+1)
	out = append(out, ops...)
	return append(out, name)
}

// extendKinds is extendOps for the parallel kind slice.
func extendKinds(kinds []opt.Kind, k opt.Kind) []opt.Kind {
	out := make([]opt.Kind, 0, len(kinds)+1)
	out = append(out, kinds...)
	return append(out, k)
}

// chainMap appends a Map to the chain.
func chainMap[T, U any](p *chain[T], name string, f func(T) U) *chain[U] {
	idx := len(p.ops)
	prev := p.feed
	return &chain[U]{
		srcLens: p.srcLens,
		ops:     extendOps(p.ops, name),
		kinds:   extendKinds(p.kinds, opt.KindMap),
		feed: func(w int, tally []int64, emit func(U)) {
			prev(w, tally, func(t T) {
				tally[idx]++
				emit(f(t))
			})
		},
		bfeed: batchMap(p.bfeed, idx, f),
	}
}

// chainFlatMap appends a FlatMap to the chain.
func chainFlatMap[T, U any](p *chain[T], name string, f func(T, func(U))) *chain[U] {
	idx := len(p.ops)
	prev := p.feed
	return &chain[U]{
		srcLens: p.srcLens,
		ops:     extendOps(p.ops, name),
		kinds:   extendKinds(p.kinds, opt.KindFlatMap),
		feed: func(w int, tally []int64, emit func(U)) {
			prev(w, tally, func(t T) {
				tally[idx]++
				f(t, emit)
			})
		},
		bfeed: batchFlatMap(p.bfeed, idx, f),
	}
}

// chainFilter appends a Filter to the chain.
func chainFilter[T any](p *chain[T], name string, pred func(T) bool) *chain[T] {
	idx := len(p.ops)
	prev := p.feed
	return &chain[T]{
		srcLens: p.srcLens,
		ops:     extendOps(p.ops, name),
		kinds:   extendKinds(p.kinds, opt.KindFilter),
		feed: func(w int, tally []int64, emit func(T)) {
			prev(w, tally, func(t T) {
				tally[idx]++
				if pred(t) {
					emit(t)
				}
			})
		},
		bfeed: batchFilter(p.bfeed, idx, pred),
	}
}

// chainMapPartitions starts a new chain whose first op is a MapPartitions
// over already-materialized partitions. MapPartitions hands f a whole
// partition slice, so it cannot consume a lazy upstream (the caller forces
// first) — but its output streams, so downstream narrow ops fuse onto it.
func chainMapPartitions[T, U any](parts [][]T, name string, f func(worker int, items []T, emit func(U))) *chain[U] {
	lens := make([]int64, len(parts))
	for w, p := range parts {
		lens[w] = int64(len(p))
	}
	return &chain[U]{
		srcLens: lens,
		ops:     []string{name},
		kinds:   []opt.Kind{opt.KindMapPartitions},
		feed: func(w int, tally []int64, emit func(U)) {
			tally[0] += int64(len(parts[w]))
			f(w, parts[w], emit)
		},
		bfeed: batchMapPartitions(parts, f),
	}
}

// fusedName names the fused stage of a chain. A single-op chain keeps
// exactly its operator's name, so spans, retries, and fault-injection sites
// are unchanged wherever nothing actually fused. Longer chains factor the
// ops' longest common '/'-terminated prefix and join the remaining segments
// with '+': ["ext/prune-groups" "ext/drop-empty"] → "ext/prune-groups+drop-empty".
// The naming lives in the opt package (a chain signature doubles as the
// optimizer's profile key); this delegation keeps the two aligned by
// construction.
func fusedName(ops []string) string { return opt.FusedName(ops) }

// commonSlashPrefix returns the longest '/'-terminated prefix shared by all
// names ("" when the first segments already differ).
func commonSlashPrefix(ops []string) string { return opt.CommonSlashPrefix(ops) }

// force materializes any pending chain as one fused stage and memoizes the
// result: d.parts receives the chain's output and the plan is cleared, so
// repeated forces (Len, Partitions, String, several wide consumers) reuse the
// materialized partitions without re-running anything.
func (d *Dataset[T]) force() {
	if d.shuffle != nil {
		d.forceShuffle()
		return
	}
	p := d.plan
	if p == nil {
		return
	}
	d.plan = nil
	c := d.ctx
	if c.planner != nil && d.consumers >= 1 {
		// The chain was already replayed by d.consumers lazy consumers and is
		// now forced on top: feed the total back into the profile so next run
		// the shared-prefix rule materializes it at its first consumer.
		c.planner.ObserveShared(p.lift(), d.consumers+1)
	}
	if c.failed() {
		d.parts = make([][]T, c.workers)
		return
	}
	name := fusedName(p.ops)
	sp := c.begin(name)
	out := make([][]T, c.workers)
	tallies := make([][]int64, c.workers)
	// Per-worker batch accounting for the columnar path: batches emitted into
	// the sink, total lanes they carried, and lanes still live (selected).
	var batches, lanes, live []int64
	if c.columnar {
		batches = make([]int64, c.workers)
		lanes = make([]int64, c.workers)
		live = make([]int64, c.workers)
	}
	if !c.runStage(name, func(w int) error {
		tally := tallies[w]
		if tally == nil {
			tally = make([]int64, len(p.ops))
			tallies[w] = tally
		} else {
			for i := range tally { // a retried worker replays the chain from scratch
				tally[i] = 0
			}
		}
		res := out[w] // a retried worker reuses its previous attempt's buffer
		if cap(res) < int(p.srcLens[w]) {
			res = make([]T, 0, p.srcLens[w])
		} else {
			res = res[:0]
		}
		if c.columnar {
			batches[w], lanes[w], live[w] = 0, 0, 0 // retried workers restart cleanly
			p.bfeed(w, tally, func(b colBatch[T]) {
				batches[w]++
				lanes[w] += int64(len(b.vals))
				if b.dense() {
					live[w] += int64(len(b.vals))
					res = append(res, b.vals...)
				} else {
					b.sel.ForEach(func(i int) {
						live[w]++
						res = append(res, b.vals[i])
					})
				}
			})
		} else {
			p.feed(w, tally, func(t T) { res = append(res, t) })
		}
		out[w] = res
		return nil
	}) {
		d.parts = make([][]T, c.workers)
		return
	}
	if len(p.ops) > 1 {
		sp.fusedOps = fusedOpCounts(p.ops, tallies)
	}
	if c.columnar {
		sp.batches = sumCounts(batches)
		sp.batchLanes = sumCounts(lanes)
		sp.batchLive = sumCounts(live)
	}
	sp.materializedBytes = estimateMaterializedBytes(out)
	c.finish(sp, p.srcLens, totalLen(out))
	d.parts = out
}

// Materialize forces any pending narrow-operator chain (as one fused stage)
// and returns the dataset. Use it to pin a dataset that several downstream
// chains consume: a pending chain would be replayed once per consumer,
// whereas a materialized dataset is computed exactly once.
func (d *Dataset[T]) Materialize() *Dataset[T] {
	d.force()
	return d
}
