package dataflow

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// Tests for the lazy plan layer (plan.go): partition balance, forcing
// semantics, fused-stage naming and accounting, fault retry on fused chains,
// and fused-vs-eager equivalence. Everything fusion-dependent pins the mode
// with an explicit WithFusion so the suite is meaningful under either value
// of the DATAFLOW_FUSION environment default (CI runs both).

func TestParallelizeBalancedPartitions(t *testing.T) {
	for _, tc := range []struct{ n, w int }{
		{5, 4}, {0, 3}, {1, 8}, {7, 7}, {100, 7}, {3, 1}, {16, 4},
	} {
		c := NewContext(tc.w)
		items := ints(tc.n)
		d := Parallelize(c, "in", items)
		parts := d.Partitions()
		if len(parts) != tc.w {
			t.Fatalf("n=%d w=%d: %d partitions", tc.n, tc.w, len(parts))
		}
		min, max := tc.n, 0
		for _, p := range parts {
			if len(p) < min {
				min = len(p)
			}
			if len(p) > max {
				max = len(p)
			}
		}
		if tc.n > 0 && max-min > 1 {
			t.Errorf("n=%d w=%d: partition sizes skewed, min=%d max=%d", tc.n, tc.w, min, max)
		}
		// Chunking is contiguous, so Collect preserves input order.
		if got := Collect(d); !reflect.DeepEqual(got, items) && !(len(got) == 0 && len(items) == 0) {
			t.Errorf("n=%d w=%d: Collect reordered: %v", tc.n, tc.w, got)
		}
	}
	// The motivating skew: 5 items on 4 workers must not leave a worker idle.
	parts := Parallelize(NewContext(4), "in", ints(5)).Partitions()
	var sizes []int
	for _, p := range parts {
		sizes = append(sizes, len(p))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	if !reflect.DeepEqual(sizes, []int{2, 1, 1, 1}) {
		t.Errorf("5 items on 4 workers split %v, want 2/1/1/1", sizes)
	}
}

func TestSinksForceExactlyOnce(t *testing.T) {
	var calls atomic.Int64
	c := NewContext(3, WithFusion(true))
	d := Map(Parallelize(c, "in", ints(10)), "count-calls", func(x int) int {
		calls.Add(1)
		return x
	})
	for name, sink := range map[string]func(){
		"Len":        func() { d.Len() },
		"Partitions": func() { d.Partitions() },
		"String":     func() { _ = d.String() },
	} {
		calls.Store(0)
		d.plan = nil
		d.parts = nil
		d = Map(Parallelize(c, "in", ints(10)), "count-calls", func(x int) int {
			calls.Add(1)
			return x
		})
		sink()
		if got := calls.Load(); got != 10 {
			t.Errorf("%s: map ran %d times, want 10", name, got)
		}
		// Repeated sinks reuse the materialized partitions.
		sink()
		sink()
		if got := calls.Load(); got != 10 {
			t.Errorf("repeated %s re-ran the chain: %d calls", name, got)
		}
	}
}

func TestMaterializePinsSharedParent(t *testing.T) {
	run := func(materialize bool) int64 {
		var calls atomic.Int64
		c := NewContext(2, WithFusion(true))
		parent := Map(Parallelize(c, "in", ints(8)), "shared", func(x int) int {
			calls.Add(1)
			return x
		})
		if materialize {
			parent.Materialize()
		}
		// Two consumers extend the same parent with sibling chains.
		Filter(parent, "a", func(x int) bool { return x%2 == 0 }).Len()
		Filter(parent, "b", func(x int) bool { return x%2 == 1 }).Len()
		return calls.Load()
	}
	if got := run(false); got != 16 {
		t.Errorf("unforced shared parent replayed %d times, want 16 (once per consumer)", got)
	}
	if got := run(true); got != 8 {
		t.Errorf("materialized shared parent ran %d times, want 8 (exactly once)", got)
	}
}

func TestFusedNameComposition(t *testing.T) {
	for _, tc := range []struct {
		ops  []string
		want string
	}{
		{[]string{"solo"}, "solo"},
		{[]string{"a", "b"}, "a+b"},
		{[]string{"ext/prune-groups", "ext/drop-empty"}, "ext/prune-groups+drop-empty"},
		{[]string{"x/y/a", "x/y/b", "x/y/c"}, "x/y/a+b+c"},
		{[]string{"x/y/a", "x/z/b"}, "x/y/a+z/b"},
		{[]string{"x/a", "plain"}, "x/a+plain"},
	} {
		if got := fusedName(tc.ops); got != tc.want {
			t.Errorf("fusedName(%v) = %q, want %q", tc.ops, got, tc.want)
		}
	}
}

func TestFusedChainRunsAsOneStage(t *testing.T) {
	c := NewContext(2, WithFusion(true))
	d := Parallelize(c, "in", ints(10))
	doubled := Map(d, "double", func(x int) int { return 2 * x })
	small := Filter(doubled, "small", func(x int) bool { return x < 10 })
	twice := FlatMap(small, "twice", func(x int, emit func(int)) { emit(x); emit(x) })
	got := Collect(twice)
	sort.Ints(got)
	if want := []int{0, 0, 2, 2, 4, 4, 6, 6, 8, 8}; !reflect.DeepEqual(got, want) {
		t.Fatalf("fused chain output %v, want %v", got, want)
	}

	spans := c.Stats().Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2 (parallelize + fused chain): %+v", len(spans), spans)
	}
	fused := spans[1]
	if fused.Name != "double+small+twice" {
		t.Errorf("fused span named %q, want %q", fused.Name, "double+small+twice")
	}
	if fused.RecordsIn != 10 || fused.RecordsOut != 10 {
		t.Errorf("fused span records in/out = %d/%d, want 10/10", fused.RecordsIn, fused.RecordsOut)
	}
	// Per-fused-op attribution: double sees all 10, small sees double's 10,
	// twice sees the 5 survivors.
	wantOps := []struct {
		name string
		in   int64
	}{{"double", 10}, {"small", 10}, {"twice", 5}}
	if len(fused.FusedOps) != len(wantOps) {
		t.Fatalf("fused ops = %+v", fused.FusedOps)
	}
	for i, w := range wantOps {
		if fused.FusedOps[i].Name != w.name || fused.FusedOps[i].RecordsIn != w.in {
			t.Errorf("fused op %d = %+v, want %+v", i, fused.FusedOps[i], w)
		}
	}
	// The fused chain counts once against TotalWork: 10 parallelize + 10 chain.
	if tw := c.Stats().TotalWork(); tw != 20 {
		t.Errorf("TotalWork = %d, want 20", tw)
	}
	// Spans and work accounting reconcile (the invariant the bench harness pins).
	var spanIn int64
	for _, sp := range spans {
		spanIn += sp.RecordsIn
	}
	if spanIn != c.Stats().TotalWork() {
		t.Errorf("span records-in %d != TotalWork %d", spanIn, c.Stats().TotalWork())
	}
}

func TestSingleOpChainKeepsPlainSpan(t *testing.T) {
	c := NewContext(2, WithFusion(true))
	d := Parallelize(c, "in", ints(4))
	Map(d, "only", func(x int) int { return x }).Materialize()
	spans := c.Stats().Spans()
	sp := spans[len(spans)-1]
	if sp.Name != "only" {
		t.Errorf("single-op chain span named %q, want %q", sp.Name, "only")
	}
	if sp.FusedOps != nil {
		t.Errorf("single-op chain carries fused-op attribution: %+v", sp.FusedOps)
	}
}

func TestMapPartitionsIsInputBarrierOutputLazy(t *testing.T) {
	c := NewContext(2, WithFusion(true))
	d := Parallelize(c, "in", ints(8))
	up := Map(d, "up", func(x int) int { return x + 1 })
	mp := MapPartitions(up, "mp", func(w int, items []int, emit func(int)) {
		for _, x := range items {
			emit(x)
		}
	})
	// Input barrier: building MapPartitions forced the upstream chain.
	if up.plan != nil {
		t.Errorf("MapPartitions did not force its upstream chain")
	}
	down := Map(mp, "down", func(x int) int { return x * 10 })
	if down.Len() != 8 {
		t.Fatalf("Len = %d, want 8", down.Len())
	}
	var names []string
	for _, sp := range c.Stats().Spans() {
		names = append(names, sp.Name)
	}
	// Downstream fuses onto MapPartitions' lazy output: "mp+down" is one stage.
	want := []string{"in", "up", "mp+down"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("spans = %v, want %v", names, want)
	}
}

func TestFusionDisabledMatchesEagerSpans(t *testing.T) {
	c := NewContext(2, WithFusion(false))
	d := Parallelize(c, "in", ints(10))
	got := Collect(Filter(Map(d, "double", func(x int) int { return 2 * x }), "small", func(x int) bool { return x < 10 }))
	sort.Ints(got)
	if want := []int{0, 2, 4, 6, 8}; !reflect.DeepEqual(got, want) {
		t.Fatalf("unfused output %v, want %v", got, want)
	}
	var names []string
	for _, sp := range c.Stats().Spans() {
		names = append(names, sp.Name)
	}
	if want := []string{"in", "double", "small"}; !reflect.DeepEqual(names, want) {
		t.Errorf("unfused spans = %v, want %v (one per operator)", names, want)
	}
}

func TestFusionEnvDefault(t *testing.T) {
	countSpans := func(opts ...Option) int {
		c := NewContext(2, opts...)
		d := Parallelize(c, "in", ints(4))
		Map(Map(d, "a", func(x int) int { return x }), "b", func(x int) int { return x }).Len()
		return len(c.Stats().Spans())
	}
	t.Setenv("DATAFLOW_FUSION", "off")
	if got := countSpans(); got != 3 {
		t.Errorf("DATAFLOW_FUSION=off: %d spans, want 3 (eager)", got)
	}
	// An explicit option always wins over the environment.
	if got := countSpans(WithFusion(true)); got != 2 {
		t.Errorf("WithFusion(true) under env off: %d spans, want 2 (fused)", got)
	}
	t.Setenv("DATAFLOW_FUSION", "on")
	if got := countSpans(); got != 2 {
		t.Errorf("DATAFLOW_FUSION=on: %d spans, want 2 (fused)", got)
	}
	if got := countSpans(WithFusion(false)); got != 3 {
		t.Errorf("WithFusion(false) under env on: %d spans, want 3 (eager)", got)
	}
}

func TestFusedChainFaultRetry(t *testing.T) {
	// The fault site is the fused stage's composite name; the retried worker
	// must replay the whole chain from the retained root partitions and the
	// accounting must match a fault-free run.
	plan := NewFaultPlan(Fault{Stage: "double+small", Worker: 1, Kind: FaultTransient})
	c := NewContext(2, WithFusion(true), WithFaultPlan(plan), WithRetries(2))
	d := Parallelize(c, "in", ints(10))
	got := Collect(Filter(Map(d, "double", func(x int) int { return 2 * x }), "small", func(x int) bool { return x < 10 }))
	if err := c.Err(); err != nil {
		t.Fatalf("fused chain did not recover from transient fault: %v", err)
	}
	sort.Ints(got)
	if want := []int{0, 2, 4, 6, 8}; !reflect.DeepEqual(got, want) {
		t.Fatalf("retried fused chain output %v, want %v", got, want)
	}
	if fired := plan.Fired(); len(fired) != 1 {
		t.Fatalf("fault did not fire at the composite site: %+v", fired)
	}
	if r := c.Stats().Retries()["double+small"]; r != 1 {
		t.Errorf("retries[double+small] = %d, want 1", r)
	}
	// Tallies reset on replay: per-op counts reflect one clean pass.
	for _, sp := range c.Stats().Spans() {
		if sp.Name != "double+small" {
			continue
		}
		for _, op := range sp.FusedOps {
			if op.RecordsIn != 10 {
				t.Errorf("fused op %q counted %d records after retry, want 10", op.Name, op.RecordsIn)
			}
		}
	}
}

func TestFusedChainExhaustedRetriesFailPipeline(t *testing.T) {
	plan := NewFaultPlan(
		Fault{Stage: "a+b", Worker: 0, Occurrence: 1, Kind: FaultTransient},
		Fault{Stage: "a+b", Worker: 0, Occurrence: 2, Kind: FaultTransient},
	)
	c := NewContext(2, WithFusion(true), WithFaultPlan(plan), WithRetries(1))
	d := Parallelize(c, "in", ints(4))
	out := Map(Map(d, "a", func(x int) int { return x }), "b", func(x int) int { return x })
	if got := Collect(out); len(got) != 0 {
		t.Fatalf("failed pipeline emitted %v", got)
	}
	var se *StageError
	if err := c.Err(); !errors.As(err, &se) || se.Stage != "a+b" {
		t.Fatalf("Err = %v, want StageError for stage a+b", c.Err())
	}
}

func TestFusedStageRecordsMaterializedBytes(t *testing.T) {
	c := NewContext(2, WithFusion(true))
	d := Parallelize(c, "in", ints(100))
	Map(d, "widen", func(x int) [4]int64 { return [4]int64{int64(x)} }).Materialize()
	snap := c.Stats().Metrics().Snapshot()
	if snap.Counters["dataflow.materialized.bytes"] <= 0 {
		t.Errorf("fused stage recorded no materialized bytes: %+v", snap.Counters)
	}
}

// Property: any chain of narrow operators produces identical output fused
// and unfused, and — within fused execution — columnar (batch-at-a-time)
// and record-at-a-time, across worker counts. (TotalWork legitimately
// differs between fused and eager: a fused chain's records count once,
// eager stages count per operator.)
func TestQuickFusedUnfusedEquivalence(t *testing.T) {
	f := func(data []int16, workers uint8) bool {
		w := int(workers)%4 + 1
		run := func(fused, columnar bool) []int {
			c := NewContext(w, WithFusion(fused), WithColumnar(columnar))
			d := Parallelize(c, "in", data)
			m := Map(d, "widen", func(x int16) int { return int(x) * 3 })
			fl := FlatMap(m, "dup-odd", func(x int, emit func(int)) {
				emit(x)
				if x%2 != 0 {
					emit(-x)
				}
			})
			kept := Filter(fl, "bound", func(x int) bool { return x > -50000 })
			return Collect(kept)
		}
		batch := run(true, true)
		return reflect.DeepEqual(batch, run(true, false)) &&
			reflect.DeepEqual(batch, run(false, false))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Fused and unfused execution must also agree through wide operators and
// under injected faults replayed at per-operator sites that exist in both
// modes (wide stages keep their names regardless of fusion).
func TestFusedUnfusedAgreeThroughShuffle(t *testing.T) {
	for _, w := range []int{1, 2, 4} {
		run := func(fused bool) map[int]int {
			plan := NewFaultPlan(Fault{Stage: "count/combine", Worker: 0, Kind: FaultTransient})
			c := NewContext(w, WithFusion(fused), WithFaultPlan(plan), WithRetries(2))
			d := Parallelize(c, "in", ints(200))
			pairs := Map(d, "pair", func(x int) Pair[int, int] { return Pair[int, int]{x % 7, 1} })
			counts := ReduceByKey(pairs, "count", func(a, b int) int { return a + b })
			if c.Err() != nil {
				t.Fatalf("w=%d fused=%v: %v", w, fused, c.Err())
			}
			out := map[int]int{}
			for _, kv := range Collect(counts) {
				out[kv.Key] = kv.Val
			}
			return out
		}
		if fused, eager := run(true), run(false); !reflect.DeepEqual(fused, eager) {
			t.Errorf("w=%d: fused %v != eager %v", w, fused, eager)
		}
	}
}

func TestSpanTreeRendersFusedOps(t *testing.T) {
	c := NewContext(2, WithFusion(true))
	d := Parallelize(c, "in", ints(4))
	Map(Map(d, "a", func(x int) int { return x }), "b", func(x int) int { return x }).Len()
	tree := c.Stats().SpanTree()
	if !strings.Contains(tree, "a+b") || !strings.Contains(tree, "fused=2") {
		t.Errorf("span tree missing fused annotation:\n%s", tree)
	}
}

func TestCommonSlashPrefix(t *testing.T) {
	for _, tc := range []struct {
		ops  []string
		want string
	}{
		{[]string{"a/b/c", "a/b/d"}, "a/b/"},
		{[]string{"a/b", "c/d"}, ""},
		{[]string{"noslash", "other"}, ""},
		{[]string{"a/b/c", "a/x"}, "a/"},
	} {
		if got := commonSlashPrefix(tc.ops); got != tc.want {
			t.Errorf("commonSlashPrefix(%v) = %q, want %q", tc.ops, got, tc.want)
		}
	}
}

func TestForceAfterFailureYieldsEmpty(t *testing.T) {
	plan := NewFaultPlan(
		Fault{Stage: "boom", Worker: 0, Occurrence: 1, Kind: FaultTransient},
	)
	c := NewContext(2, WithFusion(true), WithFaultPlan(plan), WithRetries(0))
	d := Parallelize(c, "in", ints(4))
	Map(d, "boom", func(x int) int { return x }).Materialize()
	if c.Err() == nil {
		t.Fatal("expected stage failure")
	}
	// A chain planned before (or after) the failure drains to empty.
	late := Map(d, "late", func(x int) int { return x })
	if got := late.Len(); got != 0 {
		t.Errorf("post-failure chain produced %d records", got)
	}
	if got := fmt.Sprint(Collect(late)); got != "[]" {
		t.Errorf("post-failure Collect = %s", got)
	}
}
