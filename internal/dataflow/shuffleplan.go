package dataflow

import "repro/internal/dataflow/opt"

// This file is the shuffle half of the optimizer's plan layer. With the
// planner active, PartitionBy does not execute immediately: it leaves a
// pending shufflePlan on the Dataset, and the optimizer's pushdown rules may
// move subsequent Maps and Filters onto the scatter side before anything
// forces it. Routing is always computed on the pre-image — the record as it
// existed at the PartitionBy — so record placement is byte-identical to the
// eager shuffle-then-map execution; what changes is which representation
// crosses partitions (the projected record) and how many records do (the
// filtered subset). The scatter applies the pushed chain in one streamed
// pass, the gather concatenates buckets in worker order exactly like
// shuffleParts, and the whole pending shuffle records as one span named
// after the PartitionBy stage with per-op fused attribution.
//
// A pending shuffle follows the chain contract for retries (per-worker
// buckets and tallies reset and rebuild deterministically from the retained
// input partitions) and for multiple consumers: the first Map/Filter derives
// an extended plan, and any other consumer forces the original, un-extended
// shuffle — consumption never mutates the plan it derives from.
type shufflePlan[T any] struct {
	name    string     // the PartitionBy stage (and span) name
	srcLens []int64    // per-worker input lengths, the span's input accounting
	ops     []string   // pushed narrow-op names, in application order
	kinds   []opt.Kind // parallel to ops
	// feed streams worker w's source partition through every pushed op,
	// emitting each surviving record with its precomputed route and
	// incrementing tally[i] per record entering the i-th op.
	feed func(w int, tally []int64, emit func(route int, t T))
}

// shuffleRoot returns a pending shuffle over materialized partitions.
func shuffleRoot[T any](name string, parts [][]T, route func(T) int) *shufflePlan[T] {
	lens := make([]int64, len(parts))
	for w, p := range parts {
		lens[w] = int64(len(p))
	}
	return &shufflePlan[T]{
		name:    name,
		srcLens: lens,
		feed: func(w int, _ []int64, emit func(int, T)) {
			for _, t := range parts[w] {
				emit(route(t), t)
			}
		},
	}
}

// shuffleMap pushes a Map onto the scatter side: the projected record
// travels to the pre-image's route.
func shuffleMap[T, U any](s *shufflePlan[T], name string, f func(T) U) *shufflePlan[U] {
	idx := len(s.ops)
	prev := s.feed
	return &shufflePlan[U]{
		name:    s.name,
		srcLens: s.srcLens,
		ops:     extendOps(s.ops, name),
		kinds:   extendKinds(s.kinds, opt.KindMap),
		feed: func(w int, tally []int64, emit func(int, U)) {
			prev(w, tally, func(p int, t T) {
				tally[idx]++
				emit(p, f(t))
			})
		},
	}
}

// shuffleFilter pushes a Filter onto the scatter side: dropped records never
// reach a bucket, so they never cross partitions.
func shuffleFilter[T any](s *shufflePlan[T], name string, pred func(T) bool) *shufflePlan[T] {
	idx := len(s.ops)
	prev := s.feed
	return &shufflePlan[T]{
		name:    s.name,
		srcLens: s.srcLens,
		ops:     extendOps(s.ops, name),
		kinds:   extendKinds(s.kinds, opt.KindFilter),
		feed: func(w int, tally []int64, emit func(int, T)) {
			prev(w, tally, func(p int, t T) {
				tally[idx]++
				if pred(t) {
					emit(p, t)
				}
			})
		},
	}
}

// forceShuffle executes a pending shuffle (with its pushed ops) and
// memoizes the result, the shuffle analogue of force: scatter streams each
// source partition through the pushed chain into exact destination buckets,
// gather concatenates buckets in worker order. The span carries the
// PartitionBy's name, the pushed ops' fused attribution, and the crossing
// bytes of what actually moved.
func (d *Dataset[T]) forceShuffle() {
	s := d.shuffle
	if s == nil {
		return
	}
	d.shuffle = nil
	c := d.ctx
	if c.failed() {
		d.parts = make([][]T, c.workers)
		return
	}
	sp := c.begin(s.name)
	buckets := make([][][]T, c.workers)
	crossing := make([]int64, c.workers)
	tallies := make([][]int64, c.workers)
	if !c.runStage(s.name+"/scatter", func(w int) error {
		tally := tallies[w]
		if tally == nil {
			tally = make([]int64, len(s.ops))
			tallies[w] = tally
		} else {
			for i := range tally { // a retried worker replays the chain from scratch
				tally[i] = 0
			}
		}
		local := buckets[w] // a retried worker reuses its previous attempt's buckets
		if local == nil {
			local = make([][]T, c.workers)
		}
		for p := range local {
			local[p] = local[p][:0]
		}
		var emitted int64
		s.feed(w, tally, func(p int, t T) {
			emitted++
			local[p] = append(local[p], t)
		})
		buckets[w] = local
		crossing[w] = emitted - int64(len(local[w]))
		return nil
	}) {
		d.parts = make([][]T, c.workers)
		return
	}
	out := make([][]T, c.workers)
	if !c.runStage(s.name+"/gather", func(t int) error {
		n := 0
		for w := 0; w < c.workers; w++ {
			n += len(buckets[w][t])
		}
		part := out[t]
		if cap(part) < n {
			part = make([]T, 0, n)
		} else {
			part = part[:0]
		}
		for w := 0; w < c.workers; w++ {
			part = append(part, buckets[w][t]...)
		}
		out[t] = part
		return nil
	}) {
		d.parts = make([][]T, c.workers)
		return
	}
	if len(s.ops) > 0 {
		sp.fusedOps = fusedOpCounts(s.ops, tallies)
	}
	// Crossing bytes are estimated from the output records — the pushed
	// representation is what actually moved.
	sp.shuffleBytes = estimateCrossingBytes(out, crossing)
	c.finish(sp, s.srcLens, totalLen(out))
	d.parts = out
}
