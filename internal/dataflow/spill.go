// Out-of-core execution for the keyed operators.
//
// When a Context carries a memory budget (WithMemoryBudget) and a PairCodec
// is registered for an operator's record type, ReduceByKey and GroupByKey
// switch to a spilling implementation that bounds the engine's resident state
// instead of holding the whole shuffle and aggregation in memory:
//
//   - The combine/scatter phase aggregates (or, for GroupByKey, merely
//     routes) records into a bounded map and encodes overflow into
//     per-target chunk buffers. Full chunks are appended to a per-worker
//     temporary file; partial chunks stay in memory, so a generous budget
//     degenerates to an in-memory (if serialized) shuffle with no disk I/O.
//   - The reduce/group phase streams each target's chunks in source-worker
//     order and re-aggregates under the same bound. Overflowing aggregation
//     state is flushed as a run sorted by encoded key bytes; runs are
//     recombined with an external k-way merge (multi-pass above mergeFanIn
//     for ReduceByKey), which restores exactly one record per key.
//
// The result is identical, as a multiset per partition, to the in-memory
// operators: records route through the same hashPartition, ReduceByKey's
// combine function is associative and commutative by contract, and
// GroupByKey's value order is preserved because chunks keep source order,
// runs are flushed in stream order, and the merge concatenates equal keys in
// run order. Only the (already arbitrary) map-iteration output order differs.
//
// Temporary files are created with os.CreateTemp and unlinked immediately,
// so closing the handle — or crashing — is the only cleanup needed. A worker
// retried after a transient fault starts by discarding its previous
// attempt's file and buffers, keeping the retained-partition retry contract.
package dataflow

import (
	"bufio"
	"bytes"
	"container/heap"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"reflect"
	"sort"
	"sync"

	"repro/internal/metrics"
)

// PairCodec serializes the keys and values of Pair[K, V] records so they can
// spill to disk. Key encodings must be injective — the spill path compares
// and merges keys by their encoded bytes, so equal keys must encode equally
// and distinct keys distinctly. Both Append methods follow the stdlib
// append-style contract; both Decode methods receive exactly the bytes one
// Append produced.
type PairCodec[K comparable, V any] interface {
	AppendKey(dst []byte, k K) []byte
	DecodeKey(src []byte) K
	AppendValue(dst []byte, v V) []byte
	DecodeValue(src []byte) V
}

// pairCodecs maps reflect.TypeOf(Pair[K, V]{}) to its registered PairCodec.
var pairCodecs sync.Map

// RegisterPairCodec makes codec available to budgeted ReduceByKey/GroupByKey
// over Pair[K, V]. Packages register their record types in init; the latest
// registration for a type wins. Operators whose record type has no codec run
// in memory regardless of the budget.
//
// Registration also derives and registers the matching ValueCodec[Pair[K, V]]
// (each pair encoded as one spill frame), so every spillable pair type can
// cross the network in distributed mode with no extra registration.
func RegisterPairCodec[K comparable, V any](codec PairCodec[K, V]) {
	pairCodecs.Store(reflect.TypeOf(Pair[K, V]{}), codec)
	RegisterValueCodec[Pair[K, V]](pairValueCodec[K, V]{pc: codec})
}

// pairCodecFor looks up the codec for Pair[K, V].
func pairCodecFor[K comparable, V any]() (PairCodec[K, V], bool) {
	c, ok := pairCodecs.Load(reflect.TypeOf(Pair[K, V]{}))
	if !ok {
		return nil, false
	}
	codec, ok := c.(PairCodec[K, V])
	return codec, ok
}

// mergeFanIn bounds how many runs one merge pass reads concurrently; more
// runs trigger intermediate passes that combine values run-group-wise.
const mergeFanIn = 64

// mapEntryOverhead approximates the per-entry bookkeeping of a Go map beyond
// the key and value payload, for budget accounting.
const mapEntryOverhead = 48

// spillParams derives the per-worker bounds from the Context budget: half
// the worker's share funds the aggregation map, the other half the routing
// chunks (one per target worker).
type spillParams struct {
	maxEntries int // aggregation-map entries (or buffered group values) before a run flush
	chunkCap   int // bytes per in-memory routing chunk before it goes to disk
}

func (c *Context) spillParams(perEntry int64) spillParams {
	if perEntry < 16 {
		perEntry = 16
	}
	wb := c.memBudget / int64(c.workers)
	if wb < 1 {
		wb = 1
	}
	me := wb / 2 / perEntry
	if me < 8 {
		me = 8
	}
	if me > 1<<22 {
		me = 1 << 22
	}
	cc := wb / 2 / int64(c.workers)
	if cc < 4096 {
		cc = 4096
	}
	if cc > 1<<20 {
		cc = 1 << 20
	}
	return spillParams{maxEntries: int(me), chunkCap: int(cc)}
}

// samplePairSize estimates the in-memory footprint of one aggregation-map
// entry from the dataset's first record.
func samplePairSize[K comparable, V any](parts [][]Pair[K, V]) int64 {
	for _, p := range parts {
		if len(p) > 0 {
			return metrics.EstimateSize(p[0]) + mapEntryOverhead
		}
	}
	return 0
}

// segment is one contiguous byte range of a spill file.
type segment struct{ off, n int64 }

// spillFile is an anonymous temporary file: created, then unlinked before
// use, so the kernel reclaims it when the handle closes no matter how the
// process ends. Writes append under a mutex; reads use ReadAt and are safe
// concurrently with each other (the engine's stage barrier separates them
// from writes).
type spillFile struct {
	mu  sync.Mutex
	f   *os.File
	off int64
}

func newSpillFile(dir string) (*spillFile, error) {
	f, err := os.CreateTemp(dir, "rdfind-spill-*")
	if err != nil {
		return nil, fmt.Errorf("dataflow: creating spill file: %w", err)
	}
	os.Remove(f.Name()) // unlink-on-create: Close is the only cleanup
	return &spillFile{f: f}, nil
}

func (s *spillFile) write(p []byte) (segment, error) {
	s.mu.Lock()
	off := s.off
	s.off += int64(len(p))
	s.mu.Unlock()
	if _, err := s.f.WriteAt(p, off); err != nil {
		return segment{}, fmt.Errorf("dataflow: writing spill segment: %w", err)
	}
	return segment{off: off, n: int64(len(p))}, nil
}

// readSegment reads one segment into buf (grown as needed).
func (s *spillFile) readSegment(seg segment, buf []byte) ([]byte, error) {
	if int64(cap(buf)) < seg.n {
		buf = make([]byte, seg.n)
	} else {
		buf = buf[:seg.n]
	}
	if _, err := s.f.ReadAt(buf, seg.off); err != nil {
		return nil, fmt.Errorf("dataflow: reading spill segment: %w", err)
	}
	return buf, nil
}

// frames returns a streaming reader over one segment.
func (s *spillFile) frames(seg segment) *frameReader {
	return &frameReader{r: bufio.NewReaderSize(io.NewSectionReader(s.f, seg.off, seg.n), 64<<10)}
}

func (s *spillFile) close() {
	if s != nil && s.f != nil {
		s.f.Close()
	}
}

func closeSpillFiles(files []*spillFile) {
	for _, f := range files {
		f.close()
	}
}

// appendFrame encodes one pair as [uvarint keyLen, key, uvarint valLen, val].
// scratch is reused staging for the codec's key/value encodings.
func appendFrame[K comparable, V any](dst []byte, codec PairCodec[K, V], k K, v V, scratch *[]byte) []byte {
	kb := codec.AppendKey((*scratch)[:0], k)
	dst = binary.AppendUvarint(dst, uint64(len(kb)))
	dst = append(dst, kb...)
	vb := codec.AppendValue(kb[:0], v) // kb is already copied out, reuse its array
	dst = binary.AppendUvarint(dst, uint64(len(vb)))
	dst = append(dst, vb...)
	*scratch = vb[:0]
	return dst
}

// decodeFrame splits the next frame off src, returning the key bytes, value
// bytes, and total frame length (0 at end of input).
func decodeFrame(src []byte) (kb, vb []byte, n int, err error) {
	if len(src) == 0 {
		return nil, nil, 0, nil
	}
	klen, kn := binary.Uvarint(src)
	if kn <= 0 || uint64(len(src)-kn) < klen {
		return nil, nil, 0, fmt.Errorf("dataflow: corrupt spill frame key")
	}
	kb = src[kn : kn+int(klen)]
	rest := src[kn+int(klen):]
	vlen, vn := binary.Uvarint(rest)
	if vn <= 0 || uint64(len(rest)-vn) < vlen {
		return nil, nil, 0, fmt.Errorf("dataflow: corrupt spill frame value")
	}
	vb = rest[vn : vn+int(vlen)]
	return kb, vb, kn + int(klen) + vn + int(vlen), nil
}

// frameReader streams frames from an io.Reader, reusing its key/value
// buffers between frames.
type frameReader struct {
	r        *bufio.Reader
	key, val []byte
}

// next advances to the next frame; false means clean end of stream.
func (fr *frameReader) next() (bool, error) {
	klen, err := binary.ReadUvarint(fr.r)
	if err == io.EOF {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("dataflow: reading spill frame: %w", err)
	}
	fr.key = growBuf(fr.key, int(klen))
	if _, err := io.ReadFull(fr.r, fr.key); err != nil {
		return false, fmt.Errorf("dataflow: reading spill key: %w", err)
	}
	vlen, err := binary.ReadUvarint(fr.r)
	if err != nil {
		return false, fmt.Errorf("dataflow: reading spill frame: %w", err)
	}
	fr.val = growBuf(fr.val, int(vlen))
	if _, err := io.ReadFull(fr.r, fr.val); err != nil {
		return false, fmt.Errorf("dataflow: reading spill value: %w", err)
	}
	return true, nil
}

func growBuf(b []byte, n int) []byte {
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}

// chunkList is the spill route from one source worker to one target worker:
// the on-disk segments flushed so far plus the in-memory tail that never
// overflowed. The reduce phase replays segments in order, then the tail, so
// the concatenation reproduces the source's emission order.
type chunkList struct {
	segs []segment
	tail []byte
}

// flushChunk moves a full chunk to the worker's spill file, opening the file
// lazily so small inputs never touch disk.
func flushChunk(cl *chunkList, file **spillFile, dir string, sp *activeSpan) error {
	if len(cl.tail) == 0 {
		return nil
	}
	if *file == nil {
		f, err := newSpillFile(dir)
		if err != nil {
			return err
		}
		*file = f
	}
	seg, err := (*file).write(cl.tail)
	if err != nil {
		return err
	}
	cl.segs = append(cl.segs, seg)
	cl.tail = cl.tail[:0]
	sp.spilledBytes.Add(seg.n)
	sp.spilledRuns.Add(1)
	return nil
}

// cancelCheckEvery bounds how many spill frames stream between cancellation
// checks: a cancelled job stops its replay and merge loops within a bounded
// amount of work, so the deferred file closes run promptly instead of after
// a full external merge.
const cancelCheckEvery = 1024

// cancelCounter polls the job's cancellation every cancelCheckEvery events.
type cancelCounter struct {
	c *Context
	n int
}

func (cc *cancelCounter) check() error {
	cc.n++
	if cc.n%cancelCheckEvery != 0 {
		return nil
	}
	if err := cc.c.cancelErr(); err != nil {
		return fmt.Errorf("dataflow: spill stream cancelled: %w", err)
	}
	return nil
}

// replayChunks streams every frame routed from all sources to target t, in
// source-worker order, into ingest, aborting early when the job is
// cancelled.
func replayChunks(c *Context, files []*spillFile, chunks [][]chunkList, t int, ingest func(kb, vb []byte) error) error {
	var segbuf []byte
	cancel := cancelCounter{c: c}
	consume := func(buf []byte) error {
		for len(buf) > 0 {
			kb, vb, n, err := decodeFrame(buf)
			if err != nil {
				return err
			}
			if n == 0 {
				return nil
			}
			if err := cancel.check(); err != nil {
				return err
			}
			if err := ingest(kb, vb); err != nil {
				return err
			}
			buf = buf[n:]
		}
		return nil
	}
	for w := range chunks {
		cl := &chunks[w][t]
		for _, seg := range cl.segs {
			var err error
			segbuf, err = files[w].readSegment(seg, segbuf)
			if err != nil {
				return err
			}
			if err := consume(segbuf); err != nil {
				return err
			}
		}
		if err := consume(cl.tail); err != nil {
			return err
		}
	}
	return nil
}

// runEntry locates one encoded pair inside a run arena: the key bytes (for
// sorting) and the full frame (for writing).
type runEntry struct {
	keyOff, keyEnd     int
	frameOff, frameEnd int
}

// sortedRunWriter accumulates encoded frames and flushes them as runs sorted
// by encoded key bytes.
type sortedRunWriter struct {
	arena   []byte
	entries []runEntry
	ordered []byte
	scratch []byte
}

// append encodes one pair into the arena.
func appendRunEntry[K comparable, V any](rw *sortedRunWriter, codec PairCodec[K, V], k K, v V) {
	frameOff := len(rw.arena)
	kb := codec.AppendKey(rw.scratch[:0], k)
	rw.arena = binary.AppendUvarint(rw.arena, uint64(len(kb)))
	keyOff := len(rw.arena)
	rw.arena = append(rw.arena, kb...)
	keyEnd := len(rw.arena)
	vb := codec.AppendValue(kb[:0], v)
	rw.arena = binary.AppendUvarint(rw.arena, uint64(len(vb)))
	rw.arena = append(rw.arena, vb...)
	rw.scratch = vb[:0]
	rw.entries = append(rw.entries, runEntry{keyOff: keyOff, keyEnd: keyEnd, frameOff: frameOff, frameEnd: len(rw.arena)})
}

// flush sorts the buffered entries by key bytes and writes them as one run.
// The sort is stable: GroupByKey emits a key's values as multiple frames with
// equal key bytes whose relative order encodes insertion order and must
// survive the sort (for ReduceByKey keys are unique, so stability is free).
func (rw *sortedRunWriter) flush(file **spillFile, dir string, sp *activeSpan) (segment, error) {
	sort.SliceStable(rw.entries, func(i, j int) bool {
		a, b := rw.entries[i], rw.entries[j]
		return bytes.Compare(rw.arena[a.keyOff:a.keyEnd], rw.arena[b.keyOff:b.keyEnd]) < 0
	})
	if cap(rw.ordered) < len(rw.arena) {
		rw.ordered = make([]byte, 0, len(rw.arena))
	}
	rw.ordered = rw.ordered[:0]
	for _, e := range rw.entries {
		rw.ordered = append(rw.ordered, rw.arena[e.frameOff:e.frameEnd]...)
	}
	if *file == nil {
		f, err := newSpillFile(dir)
		if err != nil {
			return segment{}, err
		}
		*file = f
	}
	seg, err := (*file).write(rw.ordered)
	if err != nil {
		return segment{}, err
	}
	rw.arena = rw.arena[:0]
	rw.entries = rw.entries[:0]
	sp.spilledBytes.Add(seg.n)
	sp.spilledRuns.Add(1)
	return seg, nil
}

// mergeCursor is one run's read head inside the k-way merge heap.
type mergeCursor struct {
	fr  *frameReader
	idx int // run index, the tie-break that keeps equal keys in run order
}

type mergeHeap []*mergeCursor

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if c := bytes.Compare(h[i].fr.key, h[j].fr.key); c != 0 {
		return c < 0
	}
	return h[i].idx < h[j].idx
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(*mergeCursor)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// mergeRunGroup k-way merges a group of key-sorted runs from file, invoking
// emit once per frame in (key, run index) order. Equal keys arrive
// consecutively; last reports whether this frame is the group's final frame
// for its key. A cancelled job aborts the merge mid-stream, so the merge
// readers (section readers over the unlinked spill file) are dropped and the
// deferred file closes release the descriptors promptly.
func mergeRunGroup(c *Context, file *spillFile, runs []segment, base int, emit func(kb, vb []byte, last bool) error) error {
	cancel := cancelCounter{c: c}
	h := make(mergeHeap, 0, len(runs))
	for i, seg := range runs {
		cur := &mergeCursor{fr: file.frames(seg), idx: base + i}
		okNext, err := cur.fr.next()
		if err != nil {
			return err
		}
		if okNext {
			h = append(h, cur)
		}
	}
	heap.Init(&h)
	var kb, vb []byte
	for h.Len() > 0 {
		if err := cancel.check(); err != nil {
			return err
		}
		cur := h[0]
		// Copy the frame out before advancing: next() reuses the reader's
		// key/value buffers, and the heap comparison needs the new frame.
		kb = append(kb[:0], cur.fr.key...)
		vb = append(vb[:0], cur.fr.val...)
		okNext, err := cur.fr.next()
		if err != nil {
			return err
		}
		if okNext {
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
		last := h.Len() == 0 || !bytes.Equal(h[0].fr.key, kb)
		if err := emit(kb, vb, last); err != nil {
			return err
		}
	}
	return nil
}

// reduceByKeySpill is the budgeted ReduceByKey. Phase 1 (name/combine)
// pre-aggregates each source partition under the entry bound and routes the
// encoded overflow to per-target chunks; phase 2 (name/reduce) re-aggregates
// each target's stream, spilling sorted runs and external-merging them back
// to one record per key.
func reduceByKeySpill[K comparable, V any](d *Dataset[Pair[K, V]], name string, combine func(V, V) V, codec PairCodec[K, V]) *Dataset[Pair[K, V]] {
	c := d.ctx
	sp := c.begin(name)
	params := c.spillParams(samplePairSize(d.parts))

	files := make([]*spillFile, c.workers)   // per source worker, combine-phase chunks
	chunks := make([][]chunkList, c.workers) // [source][target]
	counts := make([]int64, c.workers)
	emitted := make([]int64, c.workers)  // combiner output records
	crossing := make([]int64, c.workers) // encoded bytes routed off-worker
	defer closeSpillFiles(files)
	if !c.runStage(name+"/combine", func(w int) error {
		// A retried worker discards the previous attempt's file and routes.
		files[w].close()
		files[w] = nil
		cl := make([]chunkList, c.workers)
		chunks[w] = cl
		emitted[w], crossing[w] = 0, 0
		in := d.parts[w]
		counts[w] = int64(len(in))
		hint := mapSizeHint(len(in), d.distinct)
		if hint > params.maxEntries {
			hint = params.maxEntries
		}
		agg := make(map[K]V, hint)
		var scratch []byte
		flush := func() error {
			for k, v := range agg {
				t := hashPartition(c, k)
				before := len(cl[t].tail)
				cl[t].tail = appendFrame(cl[t].tail, codec, k, v, &scratch)
				emitted[w]++
				if t != w {
					crossing[w] += int64(len(cl[t].tail) - before)
				}
				if len(cl[t].tail) >= params.chunkCap {
					if err := flushChunk(&cl[t], &files[w], c.spillDir, sp); err != nil {
						return err
					}
				}
			}
			clear(agg)
			return nil
		}
		for _, kv := range in {
			if cur, ok := agg[kv.Key]; ok {
				agg[kv.Key] = combine(cur, kv.Val)
				continue
			}
			if len(agg) >= params.maxEntries {
				if err := flush(); err != nil {
					return err
				}
			}
			agg[kv.Key] = kv.Val
		}
		return flush()
	}) {
		return empty[Pair[K, V]](c)
	}
	sp.combinerIn = sumCounts(counts)
	sp.combinerOut = sumCounts(emitted)
	sp.shuffleBytes = sumCounts(crossing)

	out := make([][]Pair[K, V], c.workers)
	runFiles := make([]*spillFile, c.workers) // per target worker, sorted runs
	defer closeSpillFiles(runFiles)
	if !c.runStage(name+"/reduce", func(t int) error {
		runFiles[t].close()
		runFiles[t] = nil
		hint := params.maxEntries
		if hint > 1024 {
			hint = 1024 // let the map grow; pre-sizing to the cap wastes the budget
		}
		agg := make(map[K]V, hint)
		rw := &sortedRunWriter{}
		var runs []segment
		flushRun := func() error {
			if len(agg) == 0 {
				return nil
			}
			for k, v := range agg {
				appendRunEntry(rw, codec, k, v)
			}
			clear(agg)
			seg, err := rw.flush(&runFiles[t], c.spillDir, sp)
			if err != nil {
				return err
			}
			runs = append(runs, seg)
			return nil
		}
		if err := replayChunks(c, files, chunks, t, func(kb, vb []byte) error {
			k := codec.DecodeKey(kb)
			v := codec.DecodeValue(vb)
			if cur, ok := agg[k]; ok {
				agg[k] = combine(cur, v)
				return nil
			}
			if len(agg) >= params.maxEntries {
				if err := flushRun(); err != nil {
					return err
				}
			}
			agg[k] = v
			return nil
		}); err != nil {
			return err
		}
		if len(runs) == 0 {
			// Everything fit: emit the map directly, like the in-memory path.
			local := out[t]
			if cap(local) < len(agg) {
				local = make([]Pair[K, V], 0, len(agg))
			} else {
				local = local[:0]
			}
			for k, v := range agg {
				local = append(local, Pair[K, V]{k, v})
			}
			out[t] = local
			return nil
		}
		if err := flushRun(); err != nil {
			return err
		}
		local := out[t][:0]
		local, err := mergeReduceRuns(c, runFiles[t], runs, codec, combine, params, sp, local)
		if err != nil {
			return err
		}
		out[t] = local
		return nil
	}) {
		return empty[Pair[K, V]](c)
	}
	c.finish(sp, counts, totalLen(out))
	// One output record per distinct key, as with the in-memory operator.
	return &Dataset[Pair[K, V]]{ctx: c, parts: out, distinct: totalLen(out)}
}

// mergeReduceRuns external-merges key-sorted runs into one Pair per key.
// Above mergeFanIn runs, intermediate passes merge fan-in-sized groups into
// new combined runs until one final pass can read everything.
func mergeReduceRuns[K comparable, V any](c *Context, file *spillFile, runs []segment, codec PairCodec[K, V], combine func(V, V) V, params spillParams, sp *activeSpan, dst []Pair[K, V]) ([]Pair[K, V], error) {
	for len(runs) > mergeFanIn {
		sp.mergePasses.Add(1)
		var next []segment
		for lo := 0; lo < len(runs); lo += mergeFanIn {
			hi := lo + mergeFanIn
			if hi > len(runs) {
				hi = len(runs)
			}
			var buf, scratch []byte
			var accV V
			var accK []byte
			have := false
			err := mergeRunGroup(c, file, runs[lo:hi], lo, func(kb, vb []byte, last bool) error {
				v := codec.DecodeValue(vb)
				if have && bytes.Equal(accK, kb) {
					accV = combine(accV, v)
				} else {
					accK = append(accK[:0], kb...)
					accV = v
					have = true
				}
				if last {
					buf = appendFrame(buf, codec, codec.DecodeKey(accK), accV, &scratch)
					have = false
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			seg, err := file.write(buf)
			if err != nil {
				return nil, err
			}
			sp.spilledBytes.Add(seg.n)
			sp.spilledRuns.Add(1)
			next = append(next, seg)
		}
		runs = next
	}
	sp.mergePasses.Add(1)
	var accV V
	var accK []byte
	have := false
	err := mergeRunGroup(c, file, runs, 0, func(kb, vb []byte, last bool) error {
		v := codec.DecodeValue(vb)
		if have && bytes.Equal(accK, kb) {
			accV = combine(accV, v)
		} else {
			accK = append(accK[:0], kb...)
			accV = v
			have = true
		}
		if last {
			dst = append(dst, Pair[K, V]{codec.DecodeKey(accK), accV})
			have = false
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// groupByKeySpill is the budgeted GroupByKey. Phase 1 (name/scatter) routes
// every record — no pre-aggregation, preserving per-key value order — and
// phase 2 (name/group) streams each target in source order, spilling
// key-sorted runs whose merge concatenates equal keys' values in stream
// order, reproducing the in-memory operator's value order exactly.
func groupByKeySpill[K comparable, V any](d *Dataset[Pair[K, V]], name string, codec PairCodec[K, V]) *Dataset[Pair[K, []V]] {
	c := d.ctx
	sp := c.begin(name)
	params := c.spillParams(samplePairSize(d.parts))

	files := make([]*spillFile, c.workers)
	chunks := make([][]chunkList, c.workers)
	counts := make([]int64, c.workers)
	crossing := make([]int64, c.workers)
	defer closeSpillFiles(files)
	if !c.runStage(name+"/scatter", func(w int) error {
		files[w].close()
		files[w] = nil
		cl := make([]chunkList, c.workers)
		chunks[w] = cl
		crossing[w] = 0
		in := d.parts[w]
		counts[w] = int64(len(in))
		var scratch []byte
		for _, kv := range in {
			t := hashPartition(c, kv.Key)
			before := len(cl[t].tail)
			cl[t].tail = appendFrame(cl[t].tail, codec, kv.Key, kv.Val, &scratch)
			if t != w {
				crossing[w] += int64(len(cl[t].tail) - before)
			}
			if len(cl[t].tail) >= params.chunkCap {
				if err := flushChunk(&cl[t], &files[w], c.spillDir, sp); err != nil {
					return err
				}
			}
		}
		return nil
	}) {
		return empty[Pair[K, []V]](c)
	}
	sp.shuffleBytes = sumCounts(crossing)

	out := make([][]Pair[K, []V], c.workers)
	runFiles := make([]*spillFile, c.workers)
	defer closeSpillFiles(runFiles)
	if !c.runStage(name+"/group", func(t int) error {
		runFiles[t].close()
		runFiles[t] = nil
		agg := make(map[K][]V, mapSizeHint(0, d.distinct))
		buffered := 0 // values held in agg, the group-side budget unit
		rw := &sortedRunWriter{}
		var runs []segment
		flushRun := func() error {
			if buffered == 0 {
				return nil
			}
			// One frame per value; within a key, insertion order, which the
			// stable run sort preserves.
			for k, vs := range agg {
				for _, v := range vs {
					appendRunEntry(rw, codec, k, v)
				}
			}
			clear(agg)
			buffered = 0
			seg, err := rw.flush(&runFiles[t], c.spillDir, sp)
			if err != nil {
				return err
			}
			runs = append(runs, seg)
			return nil
		}
		if err := replayChunks(c, files, chunks, t, func(kb, vb []byte) error {
			if buffered >= params.maxEntries {
				if err := flushRun(); err != nil {
					return err
				}
			}
			k := codec.DecodeKey(kb)
			agg[k] = append(agg[k], codec.DecodeValue(vb))
			buffered++
			return nil
		}); err != nil {
			return err
		}
		if len(runs) == 0 {
			local := make([]Pair[K, []V], 0, len(agg))
			for k, vs := range agg {
				local = append(local, Pair[K, []V]{k, vs})
			}
			out[t] = local
			return nil
		}
		if err := flushRun(); err != nil {
			return err
		}
		sp.mergePasses.Add(1)
		var local []Pair[K, []V]
		var vs []V
		var curK []byte
		have := false
		err := mergeRunGroup(c, runFiles[t], runs, 0, func(kb, vb []byte, last bool) error {
			if !have || !bytes.Equal(curK, kb) {
				curK = append(curK[:0], kb...)
				vs = nil
				have = true
			}
			vs = append(vs, codec.DecodeValue(vb))
			if last {
				local = append(local, Pair[K, []V]{codec.DecodeKey(curK), vs})
				vs = nil
				have = false
			}
			return nil
		})
		if err != nil {
			return err
		}
		out[t] = local
		return nil
	}) {
		return empty[Pair[K, []V]](c)
	}
	c.finish(sp, counts, totalLen(out))
	return &Dataset[Pair[K, []V]]{ctx: c, parts: out, distinct: totalLen(out)}
}
