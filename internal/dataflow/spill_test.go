package dataflow

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// intIntCodec spills Pair[int, int]: fixed-width big-endian keys (injective,
// so byte equality is key equality) and varint values.
type intIntCodec struct{}

func (intIntCodec) AppendKey(dst []byte, k int) []byte {
	return binary.BigEndian.AppendUint64(dst, uint64(int64(k)))
}
func (intIntCodec) DecodeKey(src []byte) int { return int(int64(binary.BigEndian.Uint64(src))) }
func (intIntCodec) AppendValue(dst []byte, v int) []byte {
	return binary.AppendVarint(dst, int64(v))
}
func (intIntCodec) DecodeValue(src []byte) int { v, _ := binary.Varint(src); return int(v) }

// intStringCodec spills Pair[int, string], for the value-order tests.
type intStringCodec struct{}

func (intStringCodec) AppendKey(dst []byte, k int) []byte {
	return binary.BigEndian.AppendUint64(dst, uint64(int64(k)))
}
func (intStringCodec) DecodeKey(src []byte) int { return int(int64(binary.BigEndian.Uint64(src))) }
func (intStringCodec) AppendValue(dst []byte, v string) []byte { return append(dst, v...) }
func (intStringCodec) DecodeValue(src []byte) string          { return string(src) }

func init() {
	RegisterPairCodec[int, int](intIntCodec{})
	RegisterPairCodec[int, string](intStringCodec{})
}

// spillPairs builds a deterministic workload: n records over k distinct keys.
func spillPairs(n, k int) []Pair[int, int] {
	rng := rand.New(rand.NewSource(42))
	out := make([]Pair[int, int], n)
	for i := range out {
		out[i] = Pair[int, int]{Key: rng.Intn(k), Val: rng.Intn(100)}
	}
	return out
}

func sortPairs(ps []Pair[int, int]) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Key != ps[j].Key {
			return ps[i].Key < ps[j].Key
		}
		return ps[i].Val < ps[j].Val
	})
}

func TestSpillReduceMatchesInMemory(t *testing.T) {
	input := spillPairs(20000, 3000)
	// Sequential oracle.
	oracle := map[int]int{}
	for _, p := range input {
		oracle[p.Key] += p.Val
	}
	want := make([]Pair[int, int], 0, len(oracle))
	for k, v := range oracle {
		want = append(want, Pair[int, int]{k, v})
	}
	sortPairs(want)

	add := func(a, b int) int { return a + b }
	for _, workers := range []int{1, 2, 4} {
		for _, budget := range []int64{1, 1 << 10, 1 << 16, 1 << 30} {
			t.Run(fmt.Sprintf("workers=%d/budget=%d", workers, budget), func(t *testing.T) {
				c := NewContext(workers, WithMemoryBudget(budget), WithSpillDir(t.TempDir()))
				d := Parallelize(c, "input", input)
				got := Collect(ReduceByKey(d, "sum", add))
				if err := c.Err(); err != nil {
					t.Fatalf("budgeted pipeline failed: %v", err)
				}
				sortPairs(got)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("budgeted result diverged: %d records, want %d", len(got), len(want))
				}
				spilled := c.Stats().Metrics().Counter("dataflow.spill.bytes").Value()
				if budget <= 1<<10 && spilled == 0 {
					t.Errorf("budget %d spilled nothing", budget)
				}
				if budget == 1<<30 && spilled != 0 {
					t.Errorf("generous budget %d wrote %d spill bytes, want pure in-memory", budget, spilled)
				}
			})
		}
	}
}

func TestSpillReduceCountersInSpan(t *testing.T) {
	c := NewContext(2, WithMemoryBudget(1), WithSpillDir(t.TempDir()))
	d := Parallelize(c, "input", spillPairs(5000, 2000))
	Collect(ReduceByKey(d, "sum", func(a, b int) int { return a + b }))
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, sp := range c.Stats().Spans() {
		if sp.Name != "sum" {
			continue
		}
		found = true
		if sp.SpilledBytes == 0 || sp.SpilledRuns == 0 || sp.MergePasses == 0 {
			t.Errorf("span spill counters = %d bytes / %d runs / %d passes, want all nonzero",
				sp.SpilledBytes, sp.SpilledRuns, sp.MergePasses)
		}
		if sp.CombinerIn == 0 || sp.RecordsIn == 0 {
			t.Errorf("span work accounting missing: combinerIn=%d recordsIn=%d", sp.CombinerIn, sp.RecordsIn)
		}
	}
	if !found {
		t.Fatal(`no span named "sum"`)
	}
	reg := c.Stats().Metrics()
	for _, name := range []string{"dataflow.spill.bytes", "dataflow.spill.runs", "dataflow.spill.merge_passes"} {
		if reg.Counter(name).Value() == 0 {
			t.Errorf("registry counter %s is zero", name)
		}
	}
}

// A minimal budget on one worker forces well over mergeFanIn runs, so the
// external merge needs intermediate passes; the result must be unaffected.
func TestSpillReduceMultiPassMerge(t *testing.T) {
	input := spillPairs(30000, 8000) // ≥ 8000/8 = 1000 runs at the floor bound
	oracle := map[int]int{}
	for _, p := range input {
		oracle[p.Key] += p.Val
	}
	c := NewContext(1, WithMemoryBudget(1), WithSpillDir(t.TempDir()))
	d := Parallelize(c, "input", input)
	got := Collect(ReduceByKey(d, "sum", func(a, b int) int { return a + b }))
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(oracle) {
		t.Fatalf("got %d keys, want %d", len(got), len(oracle))
	}
	for _, p := range got {
		if oracle[p.Key] != p.Val {
			t.Fatalf("key %d = %d, want %d", p.Key, p.Val, oracle[p.Key])
		}
	}
	if passes := c.Stats().Metrics().Counter("dataflow.spill.merge_passes").Value(); passes < 2 {
		t.Errorf("merge passes = %d, want ≥ 2 (multi-pass merge)", passes)
	}
}

func TestSpillGroupMatchesInMemoryIncludingValueOrder(t *testing.T) {
	// Values encode their global emission position so order is checkable.
	const n, keys = 12000, 700
	rng := rand.New(rand.NewSource(7))
	input := make([]Pair[int, string], n)
	for i := range input {
		input[i] = Pair[int, string]{Key: rng.Intn(keys), Val: fmt.Sprintf("v%06d", i)}
	}
	collect := func(c *Context) map[int][]string {
		d := Parallelize(c, "input", input)
		grouped := Collect(GroupByKey(d, "grp"))
		if err := c.Err(); err != nil {
			t.Fatalf("pipeline failed: %v", err)
		}
		out := make(map[int][]string, len(grouped))
		for _, p := range grouped {
			out[p.Key] = p.Val
		}
		return out
	}
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			want := collect(NewContext(workers))
			cb := NewContext(workers, WithMemoryBudget(1), WithSpillDir(t.TempDir()))
			got := collect(cb)
			// Per-key value order is seed-independent (sources stream in
			// worker order), so the in-memory and spilled runs must agree
			// exactly, not just as multisets.
			if !reflect.DeepEqual(got, want) {
				t.Fatal("spilled GroupByKey diverged from in-memory result (value order or content)")
			}
			if cb.Stats().Metrics().Counter("dataflow.spill.bytes").Value() == 0 {
				t.Error("budgeted GroupByKey spilled nothing")
			}
		})
	}
}

// Transient faults during both spill phases must retry cleanly: a retried
// worker discards its previous attempt's spill file and buffers.
func TestSpillFaultRetryProducesSameResult(t *testing.T) {
	input := spillPairs(8000, 1500)
	oracle := map[int]int{}
	for _, p := range input {
		oracle[p.Key] += p.Val
	}
	plan := NewFaultPlan(
		Fault{Stage: "sum/combine", Worker: 1, Occurrence: 1, Kind: FaultPanic},
		Fault{Stage: "sum/reduce", Worker: 0, Occurrence: 1, Kind: FaultTransient},
	)
	c := NewContext(3, WithMemoryBudget(1<<10), WithSpillDir(t.TempDir()),
		WithRetries(2), WithBackoff(0), WithFaultPlan(plan))
	d := Parallelize(c, "input", input)
	got := Collect(ReduceByKey(d, "sum", func(a, b int) int { return a + b }))
	if err := c.Err(); err != nil {
		t.Fatalf("pipeline failed despite retry budget: %v", err)
	}
	if len(got) != len(oracle) {
		t.Fatalf("got %d keys, want %d", len(got), len(oracle))
	}
	for _, p := range got {
		if oracle[p.Key] != p.Val {
			t.Fatalf("key %d = %d, want %d", p.Key, p.Val, oracle[p.Key])
		}
	}
	if fired := plan.Fired(); len(fired) != 2 {
		t.Errorf("fired %d faults, want 2", len(fired))
	}
}

// Without a registered codec the budget must be ignored, not crash: the
// operator silently stays in memory.
func TestSpillFallsBackWithoutCodec(t *testing.T) {
	type opaque struct{ A, B int } // no codec registered for Pair[opaque, int]
	c := NewContext(2, WithMemoryBudget(1))
	d := Parallelize(c, "input", []Pair[opaque, int]{
		{opaque{1, 2}, 10}, {opaque{1, 2}, 5}, {opaque{3, 4}, 1},
	})
	got := Collect(ReduceByKey(d, "sum", func(a, b int) int { return a + b }))
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d keys, want 2", len(got))
	}
	if c.Stats().Metrics().Counter("dataflow.spill.bytes").Value() != 0 {
		t.Error("codec-less operator spilled")
	}
}

func TestSpillFrameRoundTrip(t *testing.T) {
	codec := intIntCodec{}
	var buf []byte
	var scratch []byte
	want := []Pair[int, int]{{1, -5}, {1 << 40, 0}, {-9, 1 << 30}, {0, 0}}
	for _, p := range want {
		buf = appendFrame(buf, codec, p.Key, p.Val, &scratch)
	}
	var got []Pair[int, int]
	for len(buf) > 0 {
		kb, vb, n, err := decodeFrame(buf)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		got = append(got, Pair[int, int]{codec.DecodeKey(kb), codec.DecodeValue(vb)})
		buf = buf[n:]
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip: got %v, want %v", got, want)
	}
}
