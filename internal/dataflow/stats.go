package dataflow

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/metrics"
)

// Stats accumulates per-stage, per-worker work accounting. Each operator
// records how many input records every worker processed. On a cluster, a
// stage finishes when its most loaded worker finishes, so the critical-path
// cost of a job is the sum of per-stage maxima; the ratio of total work to
// that critical path is the speedup a w-worker deployment can realize. The
// scale-out experiment (Fig. 9) reports this quantity next to wall-clock
// time, because on the single-core reproduction machine goroutine
// parallelism cannot manifest as elapsed-time speedup.
type Stats struct {
	mu       sync.Mutex
	stages   []StageStat
	retries  map[string]int
	spans    []metrics.Span
	seq      int
	registry *metrics.Registry
}

// StageStat is the per-worker record count of one named operator instance.
type StageStat struct {
	Name      string
	PerWorker []int64
}

// endStage appends one operator's work accounting and its trace span
// atomically: the span's RecordsIn equals the StageStat's per-worker sum, so
// metrics.TotalRecordsIn(Spans()) always reconciles with TotalWork.
func (s *Stats) endStage(st StageStat, sp metrics.Span) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stages = append(s.stages, st)
	s.spans = append(s.spans, sp)
}

// stageSeq returns a monotonically increasing stage sequence number, used to
// subsample the expensive memory probe.
func (s *Stats) stageSeq() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.seq
	s.seq++
	return n
}

// retriesFor sums the worker re-executions attributed to one operator: the
// operator's own stage name plus its '/'-suffixed sub-phases (combine,
// scatter, gather, reduce, …).
func (s *Stats) retriesFor(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for k, v := range s.retries {
		if k == name || strings.HasPrefix(k, name+"/") {
			total += v
		}
	}
	return total
}

// Spans returns a copy of the per-operator trace spans in execution order.
func (s *Stats) Spans() []metrics.Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]metrics.Span, len(s.spans))
	copy(out, s.spans)
	return out
}

// SpanTree renders the trace as a human-readable tree grouped by the
// '/'-separated stage-name segments.
func (s *Stats) SpanTree() string {
	var b strings.Builder
	if err := metrics.WriteSpanTree(&b, s.Spans()); err != nil {
		return err.Error()
	}
	return b.String()
}

// Metrics returns the job's metric registry (stage-latency histogram, peak
// goroutine/heap gauges, shuffle-byte counters, and whatever the pipeline
// stages record themselves). Lazily created so a zero Stats works.
func (s *Stats) Metrics() *metrics.Registry {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.registry == nil {
		s.registry = metrics.NewRegistry()
	}
	return s.registry
}

// recordRetries accounts n worker re-executions of one stage after a
// transient failure (see runStage).
func (s *Stats) recordRetries(name string, n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.retries == nil {
		s.retries = make(map[string]int)
	}
	s.retries[name] += n
}

// Retries returns the per-stage count of worker re-executions caused by
// transient faults. Stage names carry the engine's phase suffixes (e.g.
// "ext/merge-candidates/reduce").
func (s *Stats) Retries() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.retries))
	for k, v := range s.retries {
		out[k] = v
	}
	return out
}

// TotalRetries is the total number of worker re-executions across all stages.
func (s *Stats) TotalRetries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, v := range s.retries {
		total += v
	}
	return total
}

// Stages returns a copy of the recorded stages.
func (s *Stats) Stages() []StageStat {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]StageStat, len(s.stages))
	copy(out, s.stages)
	return out
}

// TotalWork is the sum of all records processed by all workers in all stages.
func (s *Stats) TotalWork() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	for _, st := range s.stages {
		for _, n := range st.PerWorker {
			total += n
		}
	}
	return total
}

// CriticalPath is the sum over stages of the most loaded worker's record
// count — the work a w-worker cluster cannot parallelize below.
func (s *Stats) CriticalPath() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	for _, st := range s.stages {
		var max int64
		for _, n := range st.PerWorker {
			if n > max {
				max = n
			}
		}
		total += max
	}
	return total
}

// Speedup is the work-balance speedup TotalWork / CriticalPath. It is 1 for
// a single worker and approaches the worker count under perfect balance.
func (s *Stats) Speedup() float64 {
	cp := s.CriticalPath()
	if cp == 0 {
		return 1
	}
	return float64(s.TotalWork()) / float64(cp)
}

// String renders a per-stage table for diagnostics.
func (s *Stats) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	for _, st := range s.stages {
		var total, max int64
		for _, n := range st.PerWorker {
			total += n
			if n > max {
				max = n
			}
		}
		fmt.Fprintf(&b, "%-40s total=%-10d max=%d\n", st.Name, total, max)
	}
	for name, n := range s.retries {
		fmt.Fprintf(&b, "%-40s retried workers=%d\n", name, n)
	}
	return b.String()
}
