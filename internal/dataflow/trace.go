package dataflow

import (
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// This file threads per-stage tracing through the engine. Every operator
// opens an activeSpan when it starts and closes it with its work accounting,
// producing one metrics.Span per logical operator execution (sub-phases like
// "/combine" or "/scatter" fold into their operator's span; their retries
// are attributed by name prefix). Span input-record totals are recorded from
// the same per-worker counts as Stats.TotalWork, so the two reconcile
// exactly — the invariant the benchmark harness cross-checks.

// memSampleEvery bounds how often a stage pays for runtime.ReadMemStats (a
// stop-the-world sample, taken once at begin and once at finish so the span
// can report allocation deltas): the first stage and every memSampleEvery-th
// thereafter. Goroutine counts are cheap and sampled on every stage.
const memSampleEvery = 4

// activeSpan is an operator span under construction.
type activeSpan struct {
	name         string
	start        time.Time
	shuffleBytes int64
	combinerIn   int64
	combinerOut  int64
	// memSampled marks spans selected for the runtime.ReadMemStats probe;
	// startMallocs/startAllocBytes hold the probe's baseline so finish can
	// report the stage's allocation deltas.
	memSampled      bool
	startMallocs    uint64
	startAllocBytes uint64
	// fusedOps attributes a fused chain's per-operator record counts (only
	// set for chains of length > 1; single-op stages keep plain spans).
	fusedOps []metrics.FusedOp
	// materializedBytes estimates the output partitions a narrow stage (or
	// fused chain) wrote — the quantity fusion exists to shrink.
	materializedBytes int64
	// batches/batchLanes/batchLive account the columnar path of a fused
	// chain (batch.go): column batches that reached the sink, the lanes they
	// carried, and the lanes still selected. All zero on the record path.
	batches    int64
	batchLanes int64
	batchLive  int64
	// Spill accounting, written concurrently by the workers of a budgeted
	// keyed operator (see spill.go), hence atomic.
	spilledBytes atomic.Int64
	spilledRuns  atomic.Int64
	mergePasses  atomic.Int64
}

// begin opens a span for one operator execution. The memory-probe decision is
// made here (every operator consumes exactly one sequence number, so the
// sampled set is the same as when finish decided) because allocation deltas
// need a baseline before any stage work runs; the wall clock starts after the
// probe so its stop-the-world cost is not billed to the stage.
func (c *Context) begin(name string) *activeSpan {
	sp := &activeSpan{name: name}
	if c.stats.stageSeq()%memSampleEvery == 0 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		sp.memSampled = true
		sp.startMallocs = ms.Mallocs
		sp.startAllocBytes = ms.TotalAlloc
	}
	sp.start = time.Now()
	return sp
}

// finish closes the span with the operator's per-worker input counts and its
// output record count, recording both the work accounting (StageStat) and
// the trace (metrics.Span) atomically, plus registry-level peaks and the
// stage-latency histogram.
func (c *Context) finish(sp *activeSpan, perWorker []int64, recordsOut int64) {
	wall := time.Since(sp.start)
	var in, max int64
	for _, n := range perWorker {
		in += n
		if n > max {
			max = n
		}
	}
	span := metrics.Span{
		Name:              sp.name,
		StartMS:           float64(sp.start.Sub(c.epoch).Nanoseconds()) / 1e6,
		WallMS:            float64(wall.Nanoseconds()) / 1e6,
		RecordsIn:         in,
		RecordsOut:        recordsOut,
		MaxWorkerRecords:  max,
		PerWorker:         append([]int64(nil), perWorker...),
		FusedOps:          sp.fusedOps,
		ShuffleBytes:      sp.shuffleBytes,
		CombinerIn:        sp.combinerIn,
		CombinerOut:       sp.combinerOut,
		MaterializedBytes: sp.materializedBytes,
		Batches:           sp.batches,
		BatchFill:         batchFillRate(sp.batchLive, sp.batchLanes),
		SpilledBytes:      sp.spilledBytes.Load(),
		SpilledRuns:       sp.spilledRuns.Load(),
		MergePasses:       sp.mergePasses.Load(),
		Retries:           c.stats.retriesFor(sp.name),
		Goroutines:        runtime.NumGoroutine(),
	}
	reg := c.stats.Metrics()
	if sp.memSampled {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		span.HeapAllocBytes = ms.HeapAlloc
		span.MallocsDelta = ms.Mallocs - sp.startMallocs
		span.AllocBytesDelta = ms.TotalAlloc - sp.startAllocBytes
		reg.Gauge("dataflow.peak.heap_alloc_bytes").SetMax(int64(ms.HeapAlloc))
	}
	reg.Gauge("dataflow.peak.goroutines").SetMax(int64(span.Goroutines))
	reg.Histogram("dataflow.stage.wall_ms").Observe(span.WallMS)
	reg.Counter("dataflow.records.processed").Add(in)
	if sp.shuffleBytes > 0 {
		reg.Counter("dataflow.shuffle.bytes").Add(sp.shuffleBytes)
	}
	if span.SpilledBytes > 0 {
		reg.Counter("dataflow.spill.bytes").Add(span.SpilledBytes)
	}
	if span.SpilledRuns > 0 {
		reg.Counter("dataflow.spill.runs").Add(span.SpilledRuns)
	}
	if span.MergePasses > 0 {
		reg.Counter("dataflow.spill.merge_passes").Add(span.MergePasses)
	}
	if span.MaterializedBytes > 0 {
		reg.Counter("dataflow.materialized.bytes").Add(span.MaterializedBytes)
	}
	if span.Batches > 0 {
		reg.Counter("dataflow.batches").Add(span.Batches)
		reg.Counter("dataflow.batch.lanes").Add(sp.batchLanes)
		reg.Counter("dataflow.batch.live").Add(sp.batchLive)
	}
	c.stats.endStage(StageStat{Name: sp.name, PerWorker: append([]int64(nil), perWorker...)}, span)
}

// batchFillRate is the fraction of sink-visible batch lanes still selected
// (live/lanes); zero when no batches ran.
func batchFillRate(live, lanes int64) float64 {
	if lanes <= 0 {
		return 0
	}
	return float64(live) / float64(lanes)
}

// totalLen sums the partition lengths of an operator's output.
func totalLen[T any](parts [][]T) int64 {
	var n int64
	for _, p := range parts {
		n += int64(len(p))
	}
	return n
}

// sumCounts adds up per-worker counts.
func sumCounts(counts []int64) int64 {
	var n int64
	for _, c := range counts {
		n += c
	}
	return n
}

// estimateMaterializedBytes estimates the bytes a narrow stage's output
// partitions occupy, one sample record per partition extrapolated like the
// shuffle estimate below. Fused chains materialize only their final output,
// so this is the footprint the fusion layer saves relative to eager per-op
// stages; benchdiff gates on its regression.
func estimateMaterializedBytes[T any](parts [][]T) int64 {
	var total int64
	for _, p := range parts {
		if len(p) == 0 {
			continue
		}
		total += metrics.EstimateSize(p[0]) * int64(len(p))
	}
	return total
}

// fusedOpCounts folds the per-worker chain tallies into one per-operator
// input-record count each, in chain order.
func fusedOpCounts(ops []string, tallies [][]int64) []metrics.FusedOp {
	out := make([]metrics.FusedOp, len(ops))
	for i, name := range ops {
		out[i].Name = name
	}
	for _, tally := range tallies {
		for i, n := range tally {
			out[i].RecordsIn += n
		}
	}
	return out
}

// estimateCrossingBytes estimates the bytes a shuffle moved across
// partitions: for each source partition, the width of one sample record is
// extrapolated over the records that landed on a different worker. On a
// single worker nothing crosses and the estimate is zero.
func estimateCrossingBytes[T any](parts [][]T, crossing []int64) int64 {
	var total int64
	for w, part := range parts {
		if len(part) == 0 || crossing[w] == 0 {
			continue
		}
		total += metrics.EstimateSize(part[0]) * crossing[w]
	}
	return total
}
