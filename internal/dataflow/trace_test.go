package dataflow

import (
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

// runSmallPipeline exercises every traced operator shape once.
func runSmallPipeline(t *testing.T, workers int) *Context {
	t.Helper()
	c := NewContext(workers)
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	d := Parallelize(c, "input", items)
	m := Map(d, "double", func(x int) int { return 2 * x })
	keyed := Map(m, "key", func(x int) Pair[int, int] { return Pair[int, int]{Key: x % 7, Val: x} })
	red := ReduceByKey(keyed, "sum-by-mod", func(a, b int) int { return a + b })
	grp := GroupByKey(keyed, "group-by-mod")
	_ = CoGroup(red, Map(grp, "count", func(p Pair[int, []int]) Pair[int, int] {
		return Pair[int, int]{Key: p.Key, Val: len(p.Val)}
	}), "join")
	part := PartitionBy(m, "spread", func(x int) int { return x })
	if _, ok := GlobalReduce(part, "total", func(a, b int) int { return a + b }); !ok {
		t.Fatal("GlobalReduce found no records")
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestSpansReconcileWithTotalWork is the accounting invariant the benchmark
// harness depends on: summed span input records equal Stats.TotalWork.
func TestSpansReconcileWithTotalWork(t *testing.T) {
	for _, w := range []int{1, 3} {
		c := runSmallPipeline(t, w)
		st := c.Stats()
		spans := st.Spans()
		if len(spans) != len(st.Stages()) {
			t.Fatalf("w=%d: %d spans but %d stages", w, len(spans), len(st.Stages()))
		}
		if got, want := metrics.TotalRecordsIn(spans), st.TotalWork(); got != want {
			t.Errorf("w=%d: span records-in %d != TotalWork %d", w, got, want)
		}
		var cp int64
		for _, sp := range spans {
			cp += sp.MaxWorkerRecords
		}
		if cp != st.CriticalPath() {
			t.Errorf("w=%d: span max-worker sum %d != CriticalPath %d", w, cp, st.CriticalPath())
		}
	}
}

func TestSpanFieldsPopulated(t *testing.T) {
	c := runSmallPipeline(t, 4)
	spans := c.Stats().Spans()
	byName := map[string]metrics.Span{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}

	in, ok := byName["input"]
	if !ok {
		t.Fatal("no span for the input stage")
	}
	if in.RecordsIn != 100 || in.RecordsOut != 100 {
		t.Errorf("input span records = %d/%d, want 100/100", in.RecordsIn, in.RecordsOut)
	}
	if in.WallMS < 0 || in.StartMS < 0 {
		t.Errorf("input span has negative timing: %+v", in)
	}
	if in.Goroutines <= 0 {
		t.Errorf("input span did not sample goroutines: %+v", in)
	}

	red := byName["sum-by-mod"]
	if red.CombinerIn != 100 {
		t.Errorf("reduce combiner-in = %d, want 100", red.CombinerIn)
	}
	// 4 partitions × ≤7 keys: the combiner must have pre-aggregated.
	if red.CombinerOut >= red.CombinerIn || red.CombinerOut < 7 {
		t.Errorf("reduce combiner-out = %d (in %d)", red.CombinerOut, red.CombinerIn)
	}
	if red.RecordsOut != 7 {
		t.Errorf("reduce records-out = %d, want 7", red.RecordsOut)
	}
	if red.ShuffleBytes <= 0 {
		t.Errorf("reduce shuffle bytes = %d, want > 0 on 4 workers", red.ShuffleBytes)
	}
	if grp := byName["group-by-mod"]; grp.ShuffleBytes <= 0 {
		t.Errorf("group shuffle bytes = %d, want > 0", grp.ShuffleBytes)
	}

	// One memory sample must have been taken (stage 0 always samples).
	reg := c.Stats().Metrics().Snapshot()
	if reg.Gauges["dataflow.peak.heap_alloc_bytes"] <= 0 {
		t.Error("no heap sample recorded")
	}
	if reg.Gauges["dataflow.peak.goroutines"] <= 0 {
		t.Error("no goroutine peak recorded")
	}
	if reg.Histograms["dataflow.stage.wall_ms"].Count != int64(len(spans)) {
		t.Errorf("latency histogram has %d observations, want %d",
			reg.Histograms["dataflow.stage.wall_ms"].Count, len(spans))
	}
}

// TestGlobalReduceAccounting pins the rewritten GlobalReduce (per-worker
// partial folds plus a binary merge tree): for any worker count — powers of
// two and not — the result equals a sequential in-order fold even when f is
// only associative (string concatenation is order-sensitive), and the
// operator's span accounting still reconciles with Stats.TotalWork.
func TestGlobalReduceAccounting(t *testing.T) {
	items := make([]string, 101)
	want := ""
	for i := range items {
		items[i] = string(rune('a' + i%26))
		want += items[i]
	}
	for _, w := range []int{1, 2, 3, 5, 8} {
		c := NewContext(w)
		d := Parallelize(c, "input", items)
		got, ok := GlobalReduce(d, "concat", func(a, b string) string { return a + b })
		if !ok {
			t.Fatalf("w=%d: GlobalReduce found no records: %v", w, c.Err())
		}
		if got != want {
			t.Errorf("w=%d: tree merge reordered the fold:\n got %q\nwant %q", w, got, want)
		}
		st := c.Stats()
		if sum, tw := metrics.TotalRecordsIn(st.Spans()), st.TotalWork(); sum != tw {
			t.Errorf("w=%d: span records-in %d != TotalWork %d", w, sum, tw)
		}
		var sp *metrics.Span
		spans := st.Spans()
		for i := range spans {
			if spans[i].Name == "concat" {
				sp = &spans[i]
			}
		}
		if sp == nil {
			t.Fatalf("w=%d: no span for GlobalReduce", w)
		}
		if sp.RecordsIn != int64(len(items)) || sp.RecordsOut != 1 {
			t.Errorf("w=%d: GlobalReduce span records = %d/%d, want %d/1",
				w, sp.RecordsIn, sp.RecordsOut, len(items))
		}
	}

	// The empty dataset still reports "no records" and one zero-count span.
	c := NewContext(3)
	d := Parallelize(c, "input", []string(nil))
	if _, ok := GlobalReduce(d, "concat", func(a, b string) string { return a + b }); ok {
		t.Error("GlobalReduce over an empty dataset reported a value")
	}
}

// TestGlobalReduceMergeRetry injects a transient fault into a merge-tree
// round: the retried worker must re-read the unmodified previous round and
// reproduce the same result (merge rounds write into fresh arrays).
func TestGlobalReduceMergeRetry(t *testing.T) {
	items := make([]string, 40)
	want := ""
	for i := range items {
		items[i] = string(rune('a' + i%26))
		want += items[i]
	}
	plan := NewFaultPlan(
		Fault{Stage: "concat/partial", Worker: 1, Kind: FaultTransient},
		Fault{Stage: "concat/merge", Worker: 0, Kind: FaultTransient},
	)
	c := NewContext(4, WithRetries(2), WithBackoff(time.Nanosecond), WithFaultPlan(plan))
	d := Parallelize(c, "input", items)
	got, ok := GlobalReduce(d, "concat", func(a, b string) string { return a + b })
	if !ok {
		t.Fatalf("faulted GlobalReduce failed: %v", c.Err())
	}
	if got != want {
		t.Errorf("retried merge diverged:\n got %q\nwant %q", got, want)
	}
	if c.Stats().TotalRetries() != 2 {
		t.Errorf("retries = %d, want 2", c.Stats().TotalRetries())
	}
}

// TestSpanAllocDeltas: sampled spans report process-wide allocation deltas
// next to the end-of-stage heap sample.
func TestSpanAllocDeltas(t *testing.T) {
	c := runSmallPipeline(t, 2)
	sampled := 0
	for _, sp := range c.Stats().Spans() {
		if sp.HeapAllocBytes > 0 {
			sampled++
			if sp.MallocsDelta == 0 && sp.AllocBytesDelta == 0 {
				t.Errorf("sampled span %s has no allocation deltas", sp.Name)
			}
		}
	}
	if sampled == 0 {
		t.Error("no span carried a memory sample (stage 0 always samples)")
	}
}

func TestSingleWorkerShufflesNothing(t *testing.T) {
	c := runSmallPipeline(t, 1)
	for _, sp := range c.Stats().Spans() {
		if sp.ShuffleBytes != 0 {
			t.Errorf("stage %s moved %d bytes on a single worker", sp.Name, sp.ShuffleBytes)
		}
	}
}

// TestSpeedupEmptyPipeline covers the zero-work edge case: a pipeline over an
// empty dataset records stages with zero counts, CriticalPath is zero, and
// Speedup must define itself as 1.0 instead of dividing by zero.
func TestSpeedupEmptyPipeline(t *testing.T) {
	c := NewContext(3)
	d := Parallelize(c, "input", []int(nil))
	keyed := Map(d, "key", func(x int) Pair[int, int] { return Pair[int, int]{Key: x, Val: x} })
	red := ReduceByKey(keyed, "reduce", func(a, b int) int { return a + b })
	if got := Collect(red); len(got) != 0 {
		t.Fatalf("empty pipeline produced %d records", len(got))
	}
	st := c.Stats()
	if st.TotalWork() != 0 || st.CriticalPath() != 0 {
		t.Fatalf("empty pipeline accounted work: total=%d critical=%d", st.TotalWork(), st.CriticalPath())
	}
	if len(st.Stages()) == 0 {
		t.Fatal("empty pipeline recorded no stages")
	}
	if got := st.Speedup(); got != 1.0 {
		t.Errorf("Speedup of zero-work pipeline = %v, want 1.0", got)
	}
}

func TestSpanRetriesAttribution(t *testing.T) {
	plan := NewFaultPlan(
		Fault{Stage: "agg/combine", Worker: 0, Kind: FaultTransient},
		Fault{Stage: "agg/reduce", Worker: 1, Kind: FaultPanic},
	)
	c := NewContext(2, WithRetries(2), WithBackoff(time.Nanosecond), WithFaultPlan(plan))
	d := Parallelize(c, "input", []int{1, 2, 3, 4})
	keyed := Map(d, "key", func(x int) Pair[int, int] { return Pair[int, int]{Key: x % 2, Val: x} })
	red := ReduceByKey(keyed, "agg", func(a, b int) int { return a + b })
	if got := Collect(red); len(got) != 2 {
		t.Fatalf("faulted pipeline produced %d records: %v", len(got), c.Err())
	}
	var agg *metrics.Span
	spans := c.Stats().Spans()
	for i := range spans {
		if spans[i].Name == "agg" {
			agg = &spans[i]
		}
	}
	if agg == nil {
		t.Fatal("no span for the faulted operator")
	}
	if agg.Retries != 2 {
		t.Errorf("agg span retries = %d, want 2 (one per injected fault)", agg.Retries)
	}
}

func TestSpanTreeRendering(t *testing.T) {
	c := runSmallPipeline(t, 2)
	tree := c.Stats().SpanTree()
	for _, want := range []string{"input", "sum-by-mod", "join"} {
		if !strings.Contains(tree, want) {
			t.Errorf("span tree lacks %q:\n%s", want, tree)
		}
	}
}

func TestFailedStageRecordsNoSpan(t *testing.T) {
	plan := NewFaultPlan(Fault{Stage: "boom", Worker: 0, Kind: FaultTransient})
	c := NewContext(2, WithFaultPlan(plan)) // no retries: first fault is terminal
	d := Parallelize(c, "input", []int{1, 2, 3})
	Map(d, "boom", func(x int) int { return x }).Materialize()
	if c.Err() == nil {
		t.Fatal("fault did not surface")
	}
	for _, sp := range c.Stats().Spans() {
		if sp.Name == "boom" {
			t.Error("failed stage recorded a span")
		}
	}
	// The accounting invariant holds on failed pipelines too.
	if got, want := metrics.TotalRecordsIn(c.Stats().Spans()), c.Stats().TotalWork(); got != want {
		t.Errorf("span records-in %d != TotalWork %d after failure", got, want)
	}
}
