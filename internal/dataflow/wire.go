// Wire layer of the distributed execution mode (see cluster.go): value
// serialization for records that cross process boundaries, the seeded byte
// hash that replaces maphash for cross-process partitioning, and the framed
// message protocol spoken between the coordinator and its workers.
//
// Record serialization deliberately reuses the spill layer's machinery: a
// keyed shuffle encodes its records with the operator's registered PairCodec
// in exactly the uvarint-framed [klen, key, vlen, val] layout spill files use
// (appendFrame/decodeFrame), so every record type that can spill to disk can
// also cross the network unchanged. Non-pair records (Distinct inputs,
// Collect/GlobalReduce values) use the lighter ValueCodec registry below;
// registering a PairCodec automatically derives the matching ValueCodec.
package dataflow

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"reflect"
	"sync"
	"time"
)

// ValueCodec serializes single records of type T for the network. Append
// follows the stdlib append-style contract; Decode receives exactly the bytes
// one Append produced. Encodings need not be canonical (two encodings of one
// value may differ byte-wise) — the wire layer never compares value bytes.
type ValueCodec[T any] interface {
	AppendValue(dst []byte, v T) []byte
	DecodeValue(src []byte) T
}

// valueCodecs maps reflect.TypeOf(T) to its registered ValueCodec[T].
var valueCodecs sync.Map

// RegisterValueCodec makes codec available to the distributed operators over
// records of type T. Packages register their record types in init; the latest
// registration for a type wins.
func RegisterValueCodec[T any](codec ValueCodec[T]) {
	valueCodecs.Store(reflect.TypeOf((*T)(nil)).Elem(), codec)
}

// valueCodecFor looks up the codec for T.
func valueCodecFor[T any]() (ValueCodec[T], bool) {
	c, ok := valueCodecs.Load(reflect.TypeOf((*T)(nil)).Elem())
	if !ok {
		return nil, false
	}
	codec, ok := c.(ValueCodec[T])
	return codec, ok
}

// pairValueCodec derives a ValueCodec[Pair[K, V]] from a PairCodec, encoding
// each pair as one spill frame. Registered automatically by RegisterPairCodec.
type pairValueCodec[K comparable, V any] struct{ pc PairCodec[K, V] }

func (c pairValueCodec[K, V]) AppendValue(dst []byte, p Pair[K, V]) []byte {
	var scratch []byte
	return appendFrame(dst, c.pc, p.Key, p.Val, &scratch)
}

func (c pairValueCodec[K, V]) DecodeValue(src []byte) Pair[K, V] {
	kb, vb, _, err := decodeFrame(src)
	if err != nil {
		panic(fmt.Sprintf("dataflow: corrupt pair frame on the wire: %v", err))
	}
	return Pair[K, V]{Key: c.pc.DecodeKey(kb), Val: c.pc.DecodeValue(vb)}
}

// Built-in codecs for the scalar record types the engine's own collectives
// produce (partition counts, load sums).
type intValueCodec struct{}

func (intValueCodec) AppendValue(dst []byte, v int) []byte { return binary.AppendVarint(dst, int64(v)) }
func (intValueCodec) DecodeValue(src []byte) int {
	n, _ := binary.Varint(src)
	return int(n)
}

type int64ValueCodec struct{}

func (int64ValueCodec) AppendValue(dst []byte, v int64) []byte { return binary.AppendVarint(dst, v) }
func (int64ValueCodec) DecodeValue(src []byte) int64 {
	n, _ := binary.Varint(src)
	return n
}

func init() {
	RegisterValueCodec[int](intValueCodec{})
	RegisterValueCodec[int64](int64ValueCodec{})
}

// MissingCodecError reports a distributed operator over a record type with no
// registered codec. Unlike the spill path — which silently stays in memory —
// the distributed engine cannot run the operator at all, so this is terminal.
type MissingCodecError struct {
	Type reflect.Type
}

func (e *MissingCodecError) Error() string {
	return fmt.Sprintf("dataflow: no codec registered for distributed records of type %v", e.Type)
}

// distHash is a seeded FNV-1a over encoded key bytes. Cross-process shuffles
// cannot use maphash (its seed is process-local and not serializable), so
// keys are routed by their codec encoding under a job-wide seed the
// coordinator distributes in the welcome message.
func distHash(seed uint64, b []byte) uint64 {
	h := seed ^ 0xcbf29ce484222325
	for _, c := range b {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return h
}

// distPartition maps encoded key bytes to a worker index.
func (c *Context) distPartition(b []byte) int {
	if c.workers <= 1 {
		return 0
	}
	return int(distHash(c.distSeed, b) % uint64(c.workers))
}

// Message types of the coordinator/worker protocol. Every message is framed
// as [1-byte type][uvarint payload length][payload], so a connection that
// dies mid-message can never deliver a partial payload — the frame read fails
// atomically and the bytes are discarded with the connection.
const (
	msgHello      byte = 1 + iota // worker → coordinator: rank announcement
	msgWelcome                    // coordinator → worker: job parameters
	msgContribute                 // worker → coordinator: collective input
	msgRelease                    // coordinator → worker: collective output
	msgHeartbeat                  // both directions: liveness
	msgFaultFired                 // worker → coordinator: injected fault index
	msgFailJob                    // worker → coordinator: local terminal failure
	msgAbort                      // coordinator → worker: job failed, drain
	msgGoodbye                    // worker → coordinator: clean completion
)

// maxWireMsg bounds one message payload (1 GiB), a corruption guard.
const maxWireMsg = 1 << 30

// collective kinds.
const (
	kindShuffle byte = 1 // contribute W per-target blobs, receive W per-source blobs
	kindGather  byte = 2 // contribute one blob, receive all W in rank order
)

func kindName(k byte) string {
	if k == kindShuffle {
		return "shuffle"
	}
	return "gather"
}

// writeMsg frames and writes one message. Callers serialize writes per
// connection and arm write deadlines themselves.
func writeMsg(w io.Writer, typ byte, payload []byte) error {
	var hdr [binary.MaxVarintLen64 + 1]byte
	hdr[0] = typ
	n := binary.PutUvarint(hdr[1:], uint64(len(payload)))
	if _, err := w.Write(hdr[:1+n]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// sendMsg writes one framed message under a write deadline.
func sendMsg(conn net.Conn, timeout time.Duration, typ byte, payload []byte) error {
	if timeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(timeout))
	}
	return writeMsg(conn, typ, payload)
}

// newWireReader wraps a connection for readMsg.
func newWireReader(conn net.Conn) *bufio.Reader { return bufio.NewReaderSize(conn, 1<<16) }

// encodeJSON / decodeJSON (de)serialize the control-message documents.
func encodeJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("dataflow: encoding control message: %v", err))
	}
	return b
}

func decodeJSON[T any](b []byte) (T, error) {
	var v T
	err := json.Unmarshal(b, &v)
	return v, err
}

// uvarintAt decodes one uvarint, reporting the value, its width, and success.
func uvarintAt(b []byte) (int, int, bool) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, 0, false
	}
	return int(v), n, true
}

// readMsg reads one framed message.
func readMsg(r *bufio.Reader) (byte, []byte, error) {
	typ, err := r.ReadByte()
	if err != nil {
		return 0, nil, err
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, nil, err
	}
	if n > maxWireMsg {
		return 0, nil, fmt.Errorf("dataflow: wire message of %d bytes exceeds limit", n)
	}
	if n == 0 {
		return typ, nil, nil
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return typ, buf, nil
}

// appendBlob appends one length-prefixed blob to a blob list.
func appendBlob(dst, blob []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(blob)))
	return append(dst, blob...)
}

// splitBlobs parses a blob list. The returned slices alias src.
func splitBlobs(src []byte) ([][]byte, error) {
	var out [][]byte
	for len(src) > 0 {
		n, w := binary.Uvarint(src)
		if w <= 0 || uint64(len(src)-w) < n {
			return nil, errors.New("dataflow: corrupt wire blob list")
		}
		out = append(out, src[w:w+int(n)])
		src = src[w+int(n):]
	}
	return out, nil
}

// helloMsg announces a (re)connecting worker's rank.
type helloMsg struct {
	Rank int `json:"rank"`
}

// welcomeMsg carries the job parameters from the coordinator to a worker. It
// is re-sent on every hello, so reconnecting and respawned workers always
// hold current spent-fault state.
type welcomeMsg struct {
	Rank            int         `json:"rank"`
	Workers         int         `json:"workers"`
	Seed            uint64      `json:"seed"`
	JobSpec         []byte      `json:"jobSpec,omitempty"`
	HeartbeatMS     int64       `json:"heartbeatMS"`
	DeadlineMS      int64       `json:"deadlineMS"`
	WriteTimeoutMS  int64       `json:"writeTimeoutMS"`
	ReconnectBaseMS int64       `json:"reconnectBaseMS"`
	MaxReconnects   int         `json:"maxReconnects"`
	Faults          []Fault     `json:"faults,omitempty"`
	ProcFaults      []ProcFault `json:"procFaults,omitempty"`
	Spent           []int       `json:"spent,omitempty"`
}

// wireError serializes a terminal failure across the process boundary,
// preserving the StageError classification fields.
type wireError struct {
	Stage         string `json:"stage"`
	Worker        int    `json:"worker"`
	Attempt       int    `json:"attempt"`
	Deterministic bool   `json:"deterministic"`
	Transient     bool   `json:"transient"`
	Msg           string `json:"msg"`
}

func encodeWireError(err error) []byte {
	we := wireError{Stage: "cluster", Worker: -1, Attempt: 1, Msg: err.Error()}
	var se *StageError
	if errors.As(err, &se) {
		we.Stage, we.Worker, we.Attempt, we.Deterministic = se.Stage, se.Worker, se.Attempt, se.Deterministic
		if se.Cause != nil {
			we.Msg = se.Cause.Error()
		}
		we.Transient = IsTransient(se.Cause)
	}
	b, _ := json.Marshal(we)
	return b
}

func decodeWireError(payload []byte) *StageError {
	var we wireError
	if err := json.Unmarshal(payload, &we); err != nil {
		return &StageError{Stage: "cluster", Worker: -1, Attempt: 1,
			Cause: fmt.Errorf("remote failure (undecodable: %v)", err)}
	}
	cause := fmt.Errorf("%w: %s", ErrRemoteFailure, we.Msg)
	if we.Transient {
		cause = Transient(cause)
	}
	return &StageError{Stage: we.Stage, Worker: we.Worker, Attempt: we.Attempt,
		Deterministic: we.Deterministic, Cause: cause}
}

// contribute payload: uvarint seq, 1-byte kind, uvarint name length, name,
// then the kind-specific body.
func encodeContribute(seq int, kind byte, name string, body []byte) []byte {
	out := make([]byte, 0, 2*binary.MaxVarintLen64+1+len(name)+len(body))
	out = binary.AppendUvarint(out, uint64(seq))
	out = append(out, kind)
	out = binary.AppendUvarint(out, uint64(len(name)))
	out = append(out, name...)
	return append(out, body...)
}

func decodeContribute(payload []byte) (seq int, kind byte, name string, body []byte, err error) {
	s, n := binary.Uvarint(payload)
	if n <= 0 || len(payload) < n+1 {
		return 0, 0, "", nil, errors.New("dataflow: corrupt contribute header")
	}
	kind = payload[n]
	rest := payload[n+1:]
	nl, w := binary.Uvarint(rest)
	if w <= 0 || uint64(len(rest)-w) < nl {
		return 0, 0, "", nil, errors.New("dataflow: corrupt contribute name")
	}
	name = string(rest[w : w+int(nl)])
	return int(s), kind, name, rest[w+int(nl):], nil
}

// release payload: uvarint seq, 1-byte status (0 ok, 1 failed), then either a
// blob list (ok) or a wireError document (failed).
const (
	releaseOK     byte = 0
	releaseFailed byte = 1
)

func encodeRelease(seq int, status byte, body []byte) []byte {
	out := make([]byte, 0, binary.MaxVarintLen64+1+len(body))
	out = binary.AppendUvarint(out, uint64(seq))
	out = append(out, status)
	return append(out, body...)
}

func decodeRelease(payload []byte) (seq int, status byte, body []byte, err error) {
	s, n := binary.Uvarint(payload)
	if n <= 0 || len(payload) < n+1 {
		return 0, 0, nil, errors.New("dataflow: corrupt release header")
	}
	return int(s), payload[n], payload[n+1:], nil
}
