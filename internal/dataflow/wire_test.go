package dataflow

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"reflect"
	"testing"
	"time"
)

func TestBlobListRoundTrip(t *testing.T) {
	blobs := [][]byte{
		{},
		[]byte("a"),
		bytes.Repeat([]byte{0xff}, 300), // length needs a 2-byte uvarint
		[]byte("last"),
	}
	var enc []byte
	for _, b := range blobs {
		enc = appendBlob(enc, b)
	}
	got, err := splitBlobs(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(blobs) {
		t.Fatalf("split %d blobs, want %d", len(got), len(blobs))
	}
	for i := range blobs {
		if !bytes.Equal(got[i], blobs[i]) {
			t.Errorf("blob %d: got %q, want %q", i, got[i], blobs[i])
		}
	}
	if _, err := splitBlobs([]byte{0x05, 'a'}); err == nil {
		t.Error("truncated blob list decoded without error")
	}
}

func TestContributeRoundTrip(t *testing.T) {
	body := []byte{1, 2, 3, 0, 255}
	enc := encodeContribute(300, kindGather, "ext/total-load", body)
	seq, kind, name, got, err := decodeContribute(enc)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 300 || kind != kindGather || name != "ext/total-load" || !bytes.Equal(got, body) {
		t.Errorf("round trip: seq=%d kind=%d name=%q body=%v", seq, kind, name, got)
	}
	if _, _, _, _, err := decodeContribute([]byte{0x80}); err == nil {
		t.Error("corrupt contribute header decoded without error")
	}
	if _, _, _, _, err := decodeContribute([]byte{0x01, kindShuffle, 0x09, 'x'}); err == nil {
		t.Error("truncated contribute name decoded without error")
	}
}

func TestReleaseRoundTrip(t *testing.T) {
	enc := encodeRelease(7, releaseOK, []byte("payload"))
	seq, status, body, err := decodeRelease(enc)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 7 || status != releaseOK || string(body) != "payload" {
		t.Errorf("round trip: seq=%d status=%d body=%q", seq, status, body)
	}
	if _, _, _, err := decodeRelease(nil); err == nil {
		t.Error("empty release decoded without error")
	}
}

func TestWireErrorPreservesClassification(t *testing.T) {
	cases := []struct {
		name string
		in   error
	}{
		{"deterministic", &StageError{Stage: "fcd/binary-sum", Worker: 3, Attempt: 2,
			Deterministic: true, Cause: errors.New("divide by zero")}},
		{"transient", &StageError{Stage: "ext/validate", Worker: 1, Attempt: 4,
			Cause: Transient(errors.New("socket reset"))}},
		{"bare", errors.New("not a stage error")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := decodeWireError(encodeWireError(tc.in))
			var want *StageError
			if errors.As(tc.in, &want) {
				if got.Stage != want.Stage || got.Worker != want.Worker ||
					got.Attempt != want.Attempt || got.Deterministic != want.Deterministic {
					t.Errorf("classification lost: got %+v, want %+v", got, want)
				}
				if IsTransient(got.Cause) != IsTransient(want.Cause) {
					t.Errorf("transience lost: got %v", got.Cause)
				}
			} else if got.Stage != "cluster" || got.Worker != -1 {
				t.Errorf("bare error not wrapped as cluster failure: %+v", got)
			}
			if !errors.Is(got, ErrRemoteFailure) {
				t.Errorf("decoded error does not wrap ErrRemoteFailure: %v", got)
			}
		})
	}
}

func TestDistHashDeterministicAndSeedSensitive(t *testing.T) {
	key := []byte("capture-bytes")
	if distHash(42, key) != distHash(42, key) {
		t.Error("same seed and bytes hashed differently")
	}
	if distHash(42, key) == distHash(43, key) {
		t.Error("different seeds collided (suspicious for FNV mixing)")
	}
	// Partitioning must cover all workers reasonably for small ints.
	c := NewContext(1)
	c.workers = 4
	c.distSeed = 0x9e3779b97f4a7c15
	seen := map[int]bool{}
	for i := 0; i < 256; i++ {
		seen[c.distPartition([]byte{byte(i), byte(i >> 4)})] = true
	}
	if len(seen) != 4 {
		t.Errorf("256 keys landed on %d of 4 partitions", len(seen))
	}
}

func TestUvarintAt(t *testing.T) {
	b := appendBlob(nil, []byte("xy"))
	n, w, ok := uvarintAt(b)
	if !ok || n != 2 || w != 1 {
		t.Errorf("uvarintAt = (%d, %d, %v)", n, w, ok)
	}
	if _, _, ok := uvarintAt(nil); ok {
		t.Error("uvarintAt accepted empty input")
	}
}

// TestWireMessageFraming exercises writeMsg/readMsg over a real socket pair,
// including the oversized-frame guard.
func TestWireMessageFraming(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		writeMsg(a, msgContribute, []byte("hello frame"))
	}()
	r := newWireReader(b)
	typ, payload, err := readMsg(r)
	if err != nil {
		t.Fatal(err)
	}
	if typ != msgContribute || string(payload) != "hello frame" {
		t.Errorf("framed message: type=%d payload=%q", typ, payload)
	}
	// An advertised length beyond maxWireMsg must be rejected before any
	// allocation attempt.
	go func() {
		hdr := []byte{msgContribute, 0xff, 0xff, 0xff, 0xff, 0xff, 0x07} // ~2^34
		a.SetWriteDeadline(time.Now().Add(time.Second))
		a.Write(hdr)
	}()
	if _, _, err := readMsg(newWireReader(b)); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestValueCodecRegistryDerivesPairCodecs(t *testing.T) {
	// int/int was registered by spill tests via RegisterPairCodec; the value
	// registry must auto-derive a ValueCodec for Pair[int, int].
	vc, ok := valueCodecFor[Pair[int, int]]()
	if !ok {
		t.Fatal("no derived codec for Pair[int, int]")
	}
	p := Pair[int, int]{Key: -3, Val: 1 << 40}
	if got := vc.DecodeValue(vc.AppendValue(nil, p)); got != p {
		t.Errorf("pair round trip: got %+v, want %+v", got, p)
	}

	type unregistered struct{ s string }
	if _, ok := valueCodecFor[unregistered](); ok {
		t.Error("registry invented a codec for an unregistered type")
	}
	mce := &MissingCodecError{Type: reflect.TypeOf(unregistered{})}
	var target *MissingCodecError
	if !errors.As(fmt.Errorf("stage: %w", mce), &target) || target.Type != mce.Type {
		t.Errorf("MissingCodecError does not survive wrapping: %v", mce)
	}
}

func TestBuiltinIntCodecs(t *testing.T) {
	vc, ok := valueCodecFor[int]()
	if !ok {
		t.Fatal("no built-in int codec")
	}
	for _, v := range []int{0, 1, -1, 1 << 30, -(1 << 30)} {
		if got := vc.DecodeValue(vc.AppendValue(nil, v)); got != v {
			t.Errorf("int codec: %d -> %d", v, got)
		}
	}
	vc64, ok := valueCodecFor[int64]()
	if !ok {
		t.Fatal("no built-in int64 codec")
	}
	for _, v := range []int64{0, -9, 1 << 60} {
		if got := vc64.DecodeValue(vc64.AppendValue(nil, v)); got != v {
			t.Errorf("int64 codec: %d -> %d", v, got)
		}
	}
}

func TestJSONHelpers(t *testing.T) {
	in := helloMsg{Rank: 3}
	out, err := decodeJSON[helloMsg](encodeJSON(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip: %+v", out)
	}
	if _, err := decodeJSON[helloMsg]([]byte("{")); err == nil {
		t.Error("corrupt JSON decoded without error")
	}
}
