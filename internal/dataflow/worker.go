// Multi-process distributed execution: the worker side.
//
// A WorkerConn is a rank's connection to its coordinator. The worker process
// runs the same deterministic driver program as the coordinator (see
// cluster.go); every collective barrier the driver reaches turns into one
// contribute→release round-trip here. The connection is self-healing: the
// read loop owns reconnection, re-dialing with jittered exponential backoff
// and re-sending the in-flight contribution, so a dropped connection costs a
// retry, not the job. Only an exhausted reconnect budget (the coordinator is
// gone) or an injected kill is terminal for the process.
package dataflow

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// WorkerConn is one worker process's connection to the coordinator,
// established with DialWorker and attached to the worker's driver Context
// with WithWorkerConn.
type WorkerConn struct {
	rank          int
	network, addr string
	workers       int
	seed          uint64
	jobSpec       []byte
	hbInterval    time.Duration
	hbDeadline    time.Duration
	writeTimeout  time.Duration
	reconnectBase time.Duration
	maxReconnects int
	faults        []Fault
	procFaults    []ProcFault
	rng           *rand.Rand

	mu      sync.Mutex
	wmu     sync.Mutex // serializes frame writes (heartbeats vs. contributions)
	conn    net.Conn
	reader  *bufio.Reader
	pending *pendingRelease // at most one in-flight contribution (the driver is sequential)
	spent   []bool          // per-ProcFault spent flags, merged from every welcome
	err     error           // terminal failure latch
	killed  bool
	closed  chan struct{}
	ponce   sync.Once // closes `closed` exactly once
	wg      sync.WaitGroup
}

type pendingRelease struct {
	seq     int
	payload []byte // full contribute payload, kept for re-send after reconnect
	ch      chan releaseResult
}

type releaseResult struct {
	status byte
	body   []byte
}

// DialWorker connects rank to the coordinator, performs the hello/welcome
// handshake, and starts the read and heartbeat loops.
func DialWorker(network, addr string, rank int) (*WorkerConn, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, fmt.Errorf("dataflow: worker %d dial: %w", rank, err)
	}
	w := &WorkerConn{
		rank:    rank,
		network: network,
		addr:    addr,
		closed:  make(chan struct{}),
		rng:     rand.New(rand.NewSource(int64(rank)*0x9e37 + time.Now().UnixNano())),
	}
	welcome, err := w.handshake(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	w.conn = conn
	w.workers = welcome.Workers
	w.seed = welcome.Seed
	w.jobSpec = welcome.JobSpec
	w.hbInterval = time.Duration(welcome.HeartbeatMS) * time.Millisecond
	w.hbDeadline = time.Duration(welcome.DeadlineMS) * time.Millisecond
	w.writeTimeout = time.Duration(welcome.WriteTimeoutMS) * time.Millisecond
	w.reconnectBase = time.Duration(welcome.ReconnectBaseMS) * time.Millisecond
	w.maxReconnects = welcome.MaxReconnects
	w.faults = welcome.Faults
	w.procFaults = welcome.ProcFaults
	w.spent = make([]bool, len(welcome.ProcFaults))
	w.mergeSpent(welcome.Spent)
	w.wg.Add(2)
	go w.readLoop()
	go w.heartbeatLoop()
	return w, nil
}

// handshake sends hello and reads the welcome on a fresh connection (no
// concurrent reader exists at this point).
func (w *WorkerConn) handshake(conn net.Conn) (welcomeMsg, error) {
	if err := sendMsg(conn, defaultWriteTimeout, msgHello, encodeJSON(helloMsg{Rank: w.rank})); err != nil {
		return welcomeMsg{}, fmt.Errorf("dataflow: worker %d hello: %w", w.rank, err)
	}
	conn.SetReadDeadline(time.Now().Add(defaultWriteTimeout))
	r := newWireReader(conn)
	typ, payload, err := readMsg(r)
	if err != nil || typ != msgWelcome {
		return welcomeMsg{}, fmt.Errorf("dataflow: worker %d awaiting welcome: %v", w.rank, err)
	}
	conn.SetReadDeadline(time.Time{})
	welcome, err := decodeJSON[welcomeMsg](payload)
	if err != nil {
		return welcomeMsg{}, fmt.Errorf("dataflow: worker %d decoding welcome: %w", w.rank, err)
	}
	w.reader = r // keep the handshake reader: it may have buffered past the welcome
	return welcome, nil
}

// Rank returns this process's worker rank; Workers the cluster width; Seed
// the job-wide partitioning seed; JobSpec the coordinator's opaque job
// description.
func (w *WorkerConn) Rank() int       { return w.rank }
func (w *WorkerConn) Workers() int    { return w.workers }
func (w *WorkerConn) Seed() uint64    { return w.seed }
func (w *WorkerConn) JobSpec() []byte { return w.jobSpec }

func (w *WorkerConn) mergeSpent(indexes []int) {
	for _, i := range indexes {
		if i >= 0 && i < len(w.spent) {
			w.spent[i] = true
		}
	}
}

// fatal latches a terminal failure and releases every waiter.
func (w *WorkerConn) fatal(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	p := w.pending
	w.pending = nil
	w.mu.Unlock()
	w.ponce.Do(func() { close(w.closed) })
	if p != nil {
		select {
		case p.ch <- releaseResult{status: releaseFailed, body: encodeWireError(err)}:
		default:
		}
	}
}

// Err returns the connection's terminal failure, if any.
func (w *WorkerConn) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// send writes one framed message on the current connection. Failures are
// returned but non-fatal: the read loop notices the dead connection and
// reconnects; pending contributions are re-sent then.
func (w *WorkerConn) send(typ byte, payload []byte) error {
	w.mu.Lock()
	conn := w.conn
	w.mu.Unlock()
	if conn == nil {
		return fmt.Errorf("dataflow: worker %d: no connection", w.rank)
	}
	w.wmu.Lock()
	defer w.wmu.Unlock()
	err := sendMsg(conn, w.writeTimeout, typ, payload)
	if err != nil {
		conn.Close() // unblock the read loop so it reconnects
	}
	return err
}

// readLoop owns the connection's read side and its recovery: on any read
// error it reconnects with jittered exponential backoff, re-handshakes, and
// re-sends the in-flight contribution.
func (w *WorkerConn) readLoop() {
	defer w.wg.Done()
	for {
		select {
		case <-w.closed:
			return
		default:
		}
		w.mu.Lock()
		conn, r := w.conn, w.reader
		w.mu.Unlock()
		conn.SetReadDeadline(time.Now().Add(w.hbDeadline))
		typ, payload, err := readMsg(r)
		if err != nil {
			if !w.reconnect() {
				return
			}
			continue
		}
		switch typ {
		case msgHeartbeat:
			// Liveness only; the next read re-arms the deadline.
		case msgRelease:
			seq, status, body, err := decodeRelease(payload)
			if err != nil {
				continue
			}
			w.mu.Lock()
			p := w.pending
			if p != nil && p.seq == seq {
				w.pending = nil
			} else {
				p = nil // stale or duplicate release: drop
			}
			w.mu.Unlock()
			if p != nil {
				p.ch <- releaseResult{status: status, body: body}
			}
		case msgAbort:
			w.fatal(decodeWireError(payload))
			return
		}
	}
}

// reconnect re-establishes the coordinator connection, reporting success.
// Exhausting the budget latches ErrCoordinatorLost.
func (w *WorkerConn) reconnect() bool {
	for attempt := 1; attempt <= w.maxReconnects; attempt++ {
		select {
		case <-w.closed:
			return false
		default:
		}
		w.mu.Lock()
		jitter := 1 + 0.5*(2*w.rng.Float64()-1)
		w.mu.Unlock()
		d := time.Duration(float64(w.reconnectBase<<(attempt-1)) * jitter)
		select {
		case <-time.After(d):
		case <-w.closed:
			return false
		}
		conn, err := net.Dial(w.network, w.addr)
		if err != nil {
			continue
		}
		welcome, err := w.handshakeReconnect(conn)
		if err != nil {
			conn.Close()
			continue
		}
		w.mu.Lock()
		if old := w.conn; old != nil {
			old.Close()
		}
		w.conn = conn
		w.mergeSpent(welcome.Spent)
		p := w.pending
		w.mu.Unlock()
		if p != nil {
			w.send(msgContribute, p.payload) // at-least-once; the coordinator dedups
		}
		return true
	}
	w.fatal(fmt.Errorf("dataflow: worker %d: %w after %d reconnect attempts",
		w.rank, ErrCoordinatorLost, w.maxReconnects))
	return false
}

// handshakeReconnect is handshake for the read loop's reconnect path: it
// installs the new reader under the lock since other goroutines are live.
func (w *WorkerConn) handshakeReconnect(conn net.Conn) (welcomeMsg, error) {
	if err := sendMsg(conn, w.writeTimeout, msgHello, encodeJSON(helloMsg{Rank: w.rank})); err != nil {
		return welcomeMsg{}, err
	}
	conn.SetReadDeadline(time.Now().Add(w.hbDeadline))
	r := newWireReader(conn)
	typ, payload, err := readMsg(r)
	if err != nil || typ != msgWelcome {
		return welcomeMsg{}, fmt.Errorf("awaiting welcome: %v", err)
	}
	welcome, err := decodeJSON[welcomeMsg](payload)
	if err != nil {
		return welcomeMsg{}, err
	}
	w.mu.Lock()
	w.reader = r
	w.mu.Unlock()
	return welcome, nil
}

// heartbeatLoop announces liveness to the coordinator.
func (w *WorkerConn) heartbeatLoop() {
	defer w.wg.Done()
	tick := time.NewTicker(w.hbInterval)
	defer tick.Stop()
	for {
		select {
		case <-w.closed:
			return
		case <-tick.C:
			w.send(msgHeartbeat, nil) // best-effort; the read loop handles dead conns
		}
	}
}

// contribute executes one collective barrier: fire any injected faults sited
// here, send the contribution, and block until the coordinator's release
// (or a terminal failure / cancellation). done is the driver's cancellation
// channel (nil when the job is not cancellable).
func (w *WorkerConn) contribute(seq int, kind byte, name string, body []byte, done <-chan struct{}) ([]byte, error) {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return nil, err
	}
	payload := encodeContribute(seq, kind, name, body)
	p := &pendingRelease{seq: seq, payload: payload, ch: make(chan releaseResult, 1)}
	w.pending = p
	w.mu.Unlock()

	duplicate, err := w.fireFaults(seq)
	if err != nil {
		return nil, err
	}
	w.send(msgContribute, payload) // errors recovered by reconnect re-send
	if duplicate {
		w.send(msgContribute, payload)
	}
	select {
	case res := <-p.ch:
		if res.status != releaseOK {
			return nil, decodeWireError(res.body)
		}
		return res.body, nil
	case <-w.closed:
		return nil, w.Err()
	case <-done:
		err := fmt.Errorf("cancelled while awaiting collective %q: %w", name, ErrRemoteFailure)
		w.fatal(err)
		return nil, err
	}
}

// fireFaults fires every unspent injected fault sited at this barrier for
// this rank, in schedule order. It reports whether the contribution should
// be duplicated, and returns ErrWorkerKilled for a kill (after terminating
// the connection so the coordinator observes the death).
func (w *WorkerConn) fireFaults(seq int) (duplicate bool, err error) {
	for i, pf := range w.procFaults {
		w.mu.Lock()
		hit := pf.Seq == seq && pf.Rank == w.rank && !w.spent[i]
		if hit {
			w.spent[i] = true
		}
		w.mu.Unlock()
		if !hit {
			continue
		}
		var idx [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(idx[:], uint64(i))
		w.send(msgFaultFired, idx[:n]) // best-effort notice; the coordinator also infers
		switch pf.Kind {
		case ProcKill:
			w.terminate()
			return false, fmt.Errorf("%w (rank %d at collective %d)", ErrWorkerKilled, w.rank, seq)
		case ProcDisconnect:
			w.mu.Lock()
			conn := w.conn
			w.mu.Unlock()
			if conn != nil {
				conn.Close() // the read loop reconnects and re-sends the pending payload
			}
		case ProcDelay:
			select {
			case <-time.After(pf.Delay):
			case <-w.closed:
				return false, w.Err()
			}
		case ProcDuplicate:
			duplicate = true
		}
	}
	return duplicate, nil
}

// terminate simulates process death in the in-process harness: the
// connection drops, loops stop, and every subsequent operation fails with
// ErrWorkerKilled. A real subprocess worker exits instead.
func (w *WorkerConn) terminate() {
	w.mu.Lock()
	w.killed = true
	if w.err == nil {
		w.err = ErrWorkerKilled
	}
	conn := w.conn
	w.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	w.ponce.Do(func() { close(w.closed) })
}

// Killed reports whether an injected ProcKill terminated this worker.
func (w *WorkerConn) Killed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.killed
}

// Fail propagates a locally detected terminal failure to the coordinator
// (which aborts the whole job). Killed workers stay silent — a dead process
// sends nothing.
func (w *WorkerConn) Fail(err error) {
	w.mu.Lock()
	killed := w.killed
	if w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
	if killed {
		return
	}
	w.send(msgFailJob, encodeWireError(err))
}

// Goodbye announces clean completion of the worker's driver replica, letting
// the coordinator shut down without waiting out timeouts.
func (w *WorkerConn) Goodbye() {
	w.send(msgGoodbye, nil)
}

// Close tears the connection down (harness cleanup; not a simulated death).
func (w *WorkerConn) Close() {
	w.ponce.Do(func() { close(w.closed) })
	w.mu.Lock()
	conn := w.conn
	w.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	w.wg.Wait()
}
