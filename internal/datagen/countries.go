package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/rdf"
)

// Countries generates the smallest suite dataset (~5.5k triples at scale 1):
// country entities with type, capital, continent, currency, language, and
// organization-membership statements, plus typed capital cities.
//
// Planted regularities (all in the style of Appendix B):
//   - ontology: every entity with a hasCapital statement is typed Country,
//     so (s, p=hasCapital) ⊆ (s, p=rdf:type ∧ o=Country);
//   - range discovery: every capital is typed City, so
//     (o, p=hasCapital) ⊆ (s, p=rdf:type ∧ o=City);
//   - knowledge discovery: all countries that use the euro are members of
//     the EU in this synthetic world, giving a low-support CIND.
func Countries(scale float64) *rdf.Dataset {
	const seed = 101
	rng := rand.New(rand.NewSource(seed))
	b := newBuilder()

	nCountries := scaled(400, scale)
	continents := []string{"Africa", "Asia", "Europe", "NorthAmerica", "SouthAmerica", "Oceania", "Antarctica"}
	currencies := make([]string, 40)
	for i := range currencies {
		currencies[i] = fmt.Sprintf("currency%d", i)
	}
	languages := zipfValues(rng, "lang", 80, 1.5)
	orgs := make([]string, 25)
	for i := range orgs {
		orgs[i] = fmt.Sprintf("org%d", i)
	}

	for i := 0; i < nCountries; i++ {
		c := fmt.Sprintf("country%d", i)
		capital := fmt.Sprintf("city%d", i)
		b.add(c, "rdf:type", "Country")
		b.add(c, "hasCapital", capital)
		b.add(capital, "rdf:type", "City")
		b.add(capital, "capitalOf", c)
		continent := continents[rng.Intn(len(continents))]
		b.add(c, "onContinent", continent)

		// The euro bloc: countries 0..59 share a currency and an org.
		if i < 60 {
			b.add(c, "usesCurrency", "euro")
			b.add(c, "memberOf", "EU")
		} else {
			b.add(c, "usesCurrency", currencies[rng.Intn(len(currencies))])
		}
		for l := 0; l < 1+rng.Intn(3); l++ {
			b.add(c, "speaks", languages())
		}
		for m := 0; m < rng.Intn(4); m++ {
			b.add(c, "memberOf", orgs[rng.Intn(len(orgs))])
		}
		// Borders form a sparse symmetric relation.
		if i > 0 {
			other := fmt.Sprintf("country%d", rng.Intn(i))
			b.add(c, "borders", other)
			b.add(other, "borders", c)
		}
		if b.size() >= scaled(5500, scale) {
			break
		}
	}
	SortTriples(b.ds)
	return b.ds
}
