// Package datagen generates the deterministic synthetic datasets that stand
// in for the paper's evaluation corpus (Table 2): Countries, Diseasome,
// LUBM-1, DrugBank, LinkedMDB, two DBpedia 2014 slices, and Freebase. The
// real datasets are multi-gigabyte downloads; these generators reproduce the
// properties the paper's analysis depends on instead:
//
//   - Zipf-shaped condition-frequency distributions (Fig. 4): most conditions
//     hold on very few triples, a few hold on very many;
//   - heavy value skew (rdf:type et al.) that produces dominant capture
//     groups (§7.1);
//   - planted CINDs and association rules matching the use cases of
//     Appendix B (subproperty pairs, class hierarchies, co-authorship, AR
//     classes), so discovered results can be checked against ground truth.
//
// Every generator is a pure function of its scale parameter; two calls with
// the same scale produce identical datasets.
package datagen

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/rdf"
)

// Spec describes one dataset of the suite.
type Spec struct {
	// Name matches the paper's Table 2 entry.
	Name string
	// PaperTriples is the size reported in Table 2, for the scaled-down
	// comparison in EXPERIMENTS.md.
	PaperTriples int64
	// Generate builds the dataset at the given scale. Scale 1 produces the
	// default single-machine size (DefaultTriples); the triple count grows
	// roughly linearly with scale.
	Generate func(scale float64) *rdf.Dataset
	// DefaultTriples is the approximate size at scale 1.
	DefaultTriples int
}

// Suite returns the evaluation datasets in Table 2 order.
func Suite() []Spec {
	return []Spec{
		{Name: "Countries", PaperTriples: 5_563, DefaultTriples: 5_500, Generate: Countries},
		{Name: "Diseasome", PaperTriples: 72_445, DefaultTriples: 24_000, Generate: Diseasome},
		{Name: "LUBM-1", PaperTriples: 103_104, DefaultTriples: 34_000, Generate: func(s float64) *rdf.Dataset { return LUBM(s) }},
		{Name: "DrugBank", PaperTriples: 517_023, DefaultTriples: 52_000, Generate: DrugBank},
		{Name: "LinkedMDB", PaperTriples: 6_148_121, DefaultTriples: 90_000, Generate: LinkedMDB},
		{Name: "DB14-MPCE", PaperTriples: 33_329_233, DefaultTriples: 130_000, Generate: DBpediaMPCE},
		{Name: "DB14-PLE", PaperTriples: 152_913_360, DefaultTriples: 200_000, Generate: DBpediaPLE},
		{Name: "Freebase", PaperTriples: 3_000_673_968, DefaultTriples: 400_000, Generate: Freebase},
	}
}

// ByName returns the spec with the given name.
func ByName(name string) (Spec, bool) {
	for _, s := range Suite() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// builder accumulates duplicate-free triples (RDF datasets are triple sets;
// the paper's Lemma 2 relies on distinctness).
type builder struct {
	ds   *rdf.Dataset
	seen map[rdf.Triple]struct{}
}

func newBuilder() *builder {
	return &builder{ds: rdf.NewDataset(), seen: make(map[rdf.Triple]struct{})}
}

// add inserts the triple unless it is already present; it reports whether
// the triple was new.
func (b *builder) add(s, p, o string) bool {
	t := rdf.Triple{S: b.ds.Dict.Encode(s), P: b.ds.Dict.Encode(p), O: b.ds.Dict.Encode(o)}
	if _, dup := b.seen[t]; dup {
		return false
	}
	b.seen[t] = struct{}{}
	b.ds.AddTriple(t)
	return true
}

func (b *builder) size() int { return len(b.ds.Triples) }

// scaled converts a base count to the requested scale, with a floor of 1.
func scaled(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 1 {
		n = 1
	}
	return n
}

// zipfValues returns a sampler over n values with Zipf-distributed
// popularity — the shape behind Fig. 4's condition-frequency decay.
func zipfValues(rng *rand.Rand, prefix string, n int, skew float64) func() string {
	if n < 1 {
		n = 1
	}
	z := rand.NewZipf(rng, skew, 1, uint64(n-1))
	return func() string {
		return fmt.Sprintf("%s%d", prefix, z.Uint64())
	}
}

// Random generates a tiny seeded-random dataset for property-based
// differential testing: 15–40 triples over a deliberately small vocabulary,
// so conditions repeat often enough to exercise frequent-condition pruning,
// AR derivation, and dominant-group handling while the naive oracle stays
// fast. Two calls with the same seed produce identical datasets.
func Random(seed int64) *rdf.Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := newBuilder()
	n := 15 + rng.Intn(26)
	subjects := 3 + rng.Intn(6)
	predicates := 2 + rng.Intn(4)
	objects := 3 + rng.Intn(6)
	for i := 0; i < n; i++ {
		b.add(
			fmt.Sprintf("s%d", rng.Intn(subjects)),
			fmt.Sprintf("p%d", rng.Intn(predicates)),
			fmt.Sprintf("o%d", rng.Intn(objects)),
		)
	}
	return b.ds
}

// Stats summarizes a dataset for the Table 2 reproduction.
type Stats struct {
	Name          string
	Triples       int
	DistinctTerms int
	// SizeMB estimates the N-Triples serialization size in megabytes.
	SizeMB float64
}

// Describe computes Table 2-style statistics. The size estimate counts the
// rendered term lengths plus separators.
func Describe(name string, ds *rdf.Dataset) Stats {
	var bytes int64
	for _, t := range ds.Triples {
		bytes += int64(len(ds.Dict.Decode(t.S)) + len(ds.Dict.Decode(t.P)) + len(ds.Dict.Decode(t.O)) + 10)
	}
	return Stats{
		Name:          name,
		Triples:       ds.Size(),
		DistinctTerms: ds.Dict.Len(),
		SizeMB:        float64(bytes) / (1 << 20),
	}
}

// SortTriples orders triples lexicographically by (S, P, O) IDs; generators
// call it so that datasets are independent of map iteration order.
func SortTriples(ds *rdf.Dataset) {
	sort.Slice(ds.Triples, func(i, j int) bool {
		a, b := ds.Triples[i], ds.Triples[j]
		if a.S != b.S {
			return a.S < b.S
		}
		if a.P != b.P {
			return a.P < b.P
		}
		return a.O < b.O
	})
}
