package datagen

import (
	"fmt"
	"testing"

	"repro/internal/cind"
	"repro/internal/rdf"
)

// mustID fails the test if the term is absent.
func mustID(t *testing.T, ds *rdf.Dataset, term string) rdf.Value {
	t.Helper()
	id, ok := ds.Dict.Lookup(term)
	if !ok {
		t.Fatalf("term %q not in dataset", term)
	}
	return id
}

func TestSuiteCoversTable2(t *testing.T) {
	suite := Suite()
	if len(suite) != 8 {
		t.Fatalf("suite has %d datasets, Table 2 lists 8", len(suite))
	}
	wantOrder := []string{"Countries", "Diseasome", "LUBM-1", "DrugBank",
		"LinkedMDB", "DB14-MPCE", "DB14-PLE", "Freebase"}
	for i, s := range suite {
		if s.Name != wantOrder[i] {
			t.Errorf("suite[%d] = %s, want %s", i, s.Name, wantOrder[i])
		}
		if s.PaperTriples <= 0 || s.DefaultTriples <= 0 {
			t.Errorf("%s: missing size metadata", s.Name)
		}
	}
	if _, ok := ByName("Diseasome"); !ok {
		t.Errorf("ByName(Diseasome) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Errorf("ByName(nope) succeeded")
	}
}

// TestGeneratorsDeterministicAndDeduped builds every dataset at a small
// scale twice and checks determinism, duplicate-freeness, and that the size
// lands in the expected ballpark.
func TestGeneratorsDeterministicAndDeduped(t *testing.T) {
	for _, spec := range Suite() {
		const scale = 0.05
		a := spec.Generate(scale)
		bds := spec.Generate(scale)
		if a.Size() != bds.Size() {
			t.Errorf("%s: non-deterministic size %d vs %d", spec.Name, a.Size(), bds.Size())
			continue
		}
		for i := range a.Triples {
			for _, attr := range rdf.Attrs {
				if a.Dict.Decode(a.Triples[i].Get(attr)) != bds.Dict.Decode(bds.Triples[i].Get(attr)) {
					t.Fatalf("%s: triple %d differs between runs", spec.Name, i)
				}
			}
		}
		seen := map[rdf.Triple]bool{}
		for _, tr := range a.Triples {
			if seen[tr] {
				t.Errorf("%s: duplicate triple %s", spec.Name, tr.String(a.Dict))
				break
			}
			seen[tr] = true
		}
		if a.Size() == 0 {
			t.Errorf("%s: empty at scale %f", spec.Name, scale)
		}
		// At scale 1 sizes should be near DefaultTriples; at 0.05, well below.
		if a.Size() > spec.DefaultTriples {
			t.Errorf("%s: scale 0.05 produced %d triples, exceeding the scale-1 default %d",
				spec.Name, a.Size(), spec.DefaultTriples)
		}
	}
}

func TestScaleGrowsTriples(t *testing.T) {
	for _, spec := range Suite() {
		small := spec.Generate(0.02).Size()
		large := spec.Generate(0.1).Size()
		if large <= small {
			t.Errorf("%s: scale 0.1 (%d triples) not larger than scale 0.02 (%d)", spec.Name, large, small)
		}
	}
}

// holds checks a planted inclusion directly.
func holds(t *testing.T, ds *rdf.Dataset, dep, ref cind.Capture) {
	t.Helper()
	inc := cind.Inclusion{Dep: dep, Ref: ref}
	if !cind.Holds(ds, inc) {
		t.Errorf("planted CIND does not hold: %s", inc.Format(ds.Dict))
	}
	if cind.SupportOf(ds, dep) == 0 {
		t.Errorf("planted CIND is vacuous: %s", inc.Format(ds.Dict))
	}
}

func TestCountriesPlantedCINDs(t *testing.T) {
	ds := Countries(0.2)
	typ := mustID(t, ds, "rdf:type")
	holds(t, ds,
		cind.NewCapture(rdf.Subject, cind.Unary(rdf.Predicate, mustID(t, ds, "hasCapital"))),
		cind.NewCapture(rdf.Subject, cind.Binary(rdf.Predicate, typ, rdf.Object, mustID(t, ds, "Country"))))
	holds(t, ds,
		cind.NewCapture(rdf.Object, cind.Unary(rdf.Predicate, mustID(t, ds, "hasCapital"))),
		cind.NewCapture(rdf.Subject, cind.Binary(rdf.Predicate, typ, rdf.Object, mustID(t, ds, "City"))))
	holds(t, ds,
		cind.NewCapture(rdf.Subject, cind.Binary(rdf.Predicate, mustID(t, ds, "usesCurrency"), rdf.Object, mustID(t, ds, "euro"))),
		cind.NewCapture(rdf.Subject, cind.Binary(rdf.Predicate, mustID(t, ds, "memberOf"), rdf.Object, mustID(t, ds, "EU"))))
}

func TestDiseasomePlantedCINDs(t *testing.T) {
	ds := Diseasome(0.2)
	typ := mustID(t, ds, "rdf:type")
	holds(t, ds,
		cind.NewCapture(rdf.Subject, cind.Unary(rdf.Predicate, mustID(t, ds, "associatedGene"))),
		cind.NewCapture(rdf.Subject, cind.Binary(rdf.Predicate, typ, rdf.Object, mustID(t, ds, "Disease"))))
	// Subclass typing implies parent-class typing.
	sub, ok := ds.Dict.Lookup("diseaseClass0_sub0")
	if !ok {
		t.Skip("subclass term not generated at this scale")
	}
	holds(t, ds,
		cind.NewCapture(rdf.Subject, cind.Binary(rdf.Predicate, typ, rdf.Object, sub)),
		cind.NewCapture(rdf.Subject, cind.Binary(rdf.Predicate, typ, rdf.Object, mustID(t, ds, "diseaseClass0"))))
}

func TestLUBMPlantedCINDs(t *testing.T) {
	ds := LUBM(0.5)
	typ := mustID(t, ds, "rdf:type")
	holds(t, ds,
		cind.NewCapture(rdf.Subject, cind.Unary(rdf.Predicate, mustID(t, ds, "memberOf"))),
		cind.NewCapture(rdf.Subject, cind.Binary(rdf.Predicate, typ, rdf.Object, mustID(t, ds, "GraduateStudent"))))
	holds(t, ds,
		cind.NewCapture(rdf.Subject, cind.Unary(rdf.Predicate, mustID(t, ds, "subOrganizationOf"))),
		cind.NewCapture(rdf.Subject, cind.Binary(rdf.Predicate, typ, rdf.Object, mustID(t, ds, "Department"))))
	holds(t, ds,
		cind.NewCapture(rdf.Object, cind.Unary(rdf.Predicate, mustID(t, ds, "undergraduateDegreeFrom"))),
		cind.NewCapture(rdf.Subject, cind.Binary(rdf.Predicate, typ, rdf.Object, mustID(t, ds, "University"))))
}

func TestDrugBankPlantedCINDs(t *testing.T) {
	ds := DrugBank(0.3)
	// The nested-target pair: drug00001's targets ⊆ drug00000's targets.
	holds(t, ds,
		cind.NewCapture(rdf.Object, cind.Binary(rdf.Subject, mustID(t, ds, "drug00001"), rdf.Predicate, mustID(t, ds, "target"))),
		cind.NewCapture(rdf.Object, cind.Binary(rdf.Subject, mustID(t, ds, "drug00000"), rdf.Predicate, mustID(t, ds, "target"))))
	// Classification hierarchy.
	cf := mustID(t, ds, "classificationFunction")
	holds(t, ds,
		cind.NewCapture(rdf.Subject, cind.Binary(rdf.Predicate, cf, rdf.Object, mustID(t, ds, "\"hydrolase activity\""))),
		cind.NewCapture(rdf.Subject, cind.Binary(rdf.Predicate, cf, rdf.Object, mustID(t, ds, "\"catalytic activity\""))))
}

func TestLinkedMDBPlantedAR(t *testing.T) {
	ds := LinkedMDB(0.2)
	r := cind.AR{
		If:   cind.Unary(rdf.Object, mustID(t, ds, "lmdb:performance")),
		Then: cind.Unary(rdf.Predicate, mustID(t, ds, "rdf:type")),
	}
	if !cind.ARHolds(ds, r) {
		t.Errorf("planted AR o=lmdb:performance → p=rdf:type does not hold")
	}
	typ := mustID(t, ds, "rdf:type")
	holds(t, ds,
		cind.NewCapture(rdf.Object, cind.Unary(rdf.Predicate, mustID(t, ds, "movieEditor"))),
		cind.NewCapture(rdf.Subject, cind.Binary(rdf.Predicate, typ, rdf.Object, mustID(t, ds, "foaf:Person"))))
}

func TestDBpediaPlantedCINDs(t *testing.T) {
	ds := DBpediaMPCE(0.3)
	holds(t, ds,
		cind.NewCapture(rdf.Subject, cind.Unary(rdf.Predicate, mustID(t, ds, "associatedBand"))),
		cind.NewCapture(rdf.Subject, cind.Unary(rdf.Predicate, mustID(t, ds, "associatedMusicalArtist"))))
	holds(t, ds,
		cind.NewCapture(rdf.Object, cind.Unary(rdf.Predicate, mustID(t, ds, "associatedBand"))),
		cind.NewCapture(rdf.Object, cind.Unary(rdf.Predicate, mustID(t, ds, "associatedMusicalArtist"))))
	// The AC/DC pair holds in both directions with support 26.
	w := mustID(t, ds, "writer")
	angus := cind.NewCapture(rdf.Subject, cind.Binary(rdf.Predicate, w, rdf.Object, mustID(t, ds, "dbr:Angus_Young")))
	malcolm := cind.NewCapture(rdf.Subject, cind.Binary(rdf.Predicate, w, rdf.Object, mustID(t, ds, "dbr:Malcolm_Young")))
	holds(t, ds, angus, malcolm)
	holds(t, ds, malcolm, angus)
	if supp := cind.SupportOf(ds, angus); supp != 26 {
		t.Errorf("AC/DC support = %d, want 26 (as in the paper)", supp)
	}
	// Area code 559 ⊆ partOf California.
	holds(t, ds,
		cind.NewCapture(rdf.Subject, cind.Binary(rdf.Predicate, mustID(t, ds, "areaCode"), rdf.Object, mustID(t, ds, "\"559\""))),
		cind.NewCapture(rdf.Subject, cind.Binary(rdf.Predicate, mustID(t, ds, "partOf"), rdf.Object, mustID(t, ds, "dbr:California"))))
}

func TestFreebasePredicateChains(t *testing.T) {
	ds := Freebase(0.1)
	// Ladder inclusion: a specific domain predicate implies the broader one
	// and the root type predicate.
	holds(t, ds,
		cind.NewCapture(rdf.Subject, cind.Unary(rdf.Predicate, mustID(t, ds, "fb:domain0.level1"))),
		cind.NewCapture(rdf.Subject, cind.Unary(rdf.Predicate, mustID(t, ds, "fb:domain0.level0"))))
	holds(t, ds,
		cind.NewCapture(rdf.Subject, cind.Unary(rdf.Predicate, mustID(t, ds, "fb:domain0.level0"))),
		cind.NewCapture(rdf.Subject, cind.Unary(rdf.Predicate, mustID(t, ds, "fb:type.object.type"))))
}

// TestFreebaseARsPeakAndDecline mirrors the Fig. 8 association-rule series:
// an early prefix satisfies more notable-type rules than the full dataset.
func TestFreebaseARsPeakAndDecline(t *testing.T) {
	ds := Freebase(0.1)
	typeID := mustID(t, ds, "fb:type.object.type")
	countARs := func(n int) int {
		prefix := &rdf.Dataset{Dict: ds.Dict, Triples: ds.Triples[:n]}
		found := 0
		for i := 0; i < 40; i++ {
			term, ok := ds.Dict.Lookup(fmt.Sprintf("fb:notable_type%d", i))
			if !ok {
				continue
			}
			r := cind.AR{If: cind.Unary(rdf.Object, term), Then: cind.Unary(rdf.Predicate, typeID)}
			if cind.ARHolds(prefix, r) {
				found++
			}
		}
		return found
	}
	early := countARs(ds.Size() / 3)
	full := countARs(ds.Size())
	if early <= full {
		t.Errorf("notable-type ARs do not decline: %d at 1/3 prefix, %d at full size", early, full)
	}
	if early == 0 {
		t.Errorf("no notable-type ARs hold on the early prefix")
	}
}

func TestDescribe(t *testing.T) {
	ds := Countries(0.1)
	st := Describe("Countries", ds)
	if st.Triples != ds.Size() || st.DistinctTerms != ds.Dict.Len() {
		t.Errorf("Describe stats inconsistent: %+v", st)
	}
	if st.SizeMB <= 0 {
		t.Errorf("SizeMB = %f", st.SizeMB)
	}
}

func TestRandomDeterministicAndVaried(t *testing.T) {
	a, b := Random(7), Random(7)
	if a.Size() != b.Size() {
		t.Fatalf("same seed, different sizes: %d vs %d", a.Size(), b.Size())
	}
	for i := range a.Triples {
		as := [3]string{a.Dict.Decode(a.Triples[i].S), a.Dict.Decode(a.Triples[i].P), a.Dict.Decode(a.Triples[i].O)}
		bs := [3]string{b.Dict.Decode(b.Triples[i].S), b.Dict.Decode(b.Triples[i].P), b.Dict.Decode(b.Triples[i].O)}
		if as != bs {
			t.Fatalf("same seed, triple %d differs: %v vs %v", i, as, bs)
		}
	}
	sizes := map[int]bool{}
	for seed := int64(0); seed < 50; seed++ {
		ds := Random(seed)
		if ds.Size() < 1 || ds.Size() > 40 {
			t.Errorf("seed %d: %d triples outside the tiny range", seed, ds.Size())
		}
		sizes[ds.Size()] = true
	}
	if len(sizes) < 5 {
		t.Errorf("seeds produce only %d distinct sizes — generator barely varies", len(sizes))
	}
}
