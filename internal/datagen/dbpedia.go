package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/rdf"
)

// dbpedia generates the heterogeneous encyclopedic shape of the two DBpedia
// 2014 slices the paper uses (DB14-MPCE: mapping-based properties, classes,
// external links; DB14-PLE: page links and literals — larger and noisier).
//
// Planted regularities from the paper's own DBpedia findings (§8.4, App. B):
//   - subproperty pair: every associatedBand statement has a matching
//     associatedMusicalArtist statement, both on subjects and objects, so
//     (s, p=associatedBand) ⊆ (s, p=associatedMusicalArtist) and
//     (o, p=associatedBand) ⊆ (o, p=associatedMusicalArtist);
//   - the AC/DC fact: Angus Young and Malcolm Young co-wrote all their
//     songs: (s, p=writer ∧ o=AngusYoung) ≡ (s, p=writer ∧ o=MalcolmYoung),
//     a low-support CIND pair;
//   - area codes: all subjects with areaCode 559 are partOf California.
func dbpedia(seed int64, targetTriples, nEntities, nPredicates int, literalShare int) *rdf.Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := newBuilder()

	classes := zipfValues(rng, "dbo:Class", 120, 1.6)
	predOf := zipfValues(rng, "dbo:prop", nPredicates, 1.35)
	objOf := zipfValues(rng, "dbr:entity", nEntities, 1.15)
	// Subjects are Zipf-popular too: encyclopedic corpora have head entities
	// with hundreds of statements. Their subject conditions are frequent but
	// project onto few distinct predicates, creating exactly the prunable
	// low-support captures and dominant rdf:type capture groups that
	// RDFind's capture-support pruning and load balancing target (§7).
	subjOf := zipfValues(rng, "dbr:e", nEntities, 1.05)

	// The AC/DC songs (the paper found 26).
	for i := 0; i < 26; i++ {
		song := fmt.Sprintf("dbr:acdc_song%d", i)
		b.add(song, "writer", "dbr:Angus_Young")
		b.add(song, "writer", "dbr:Malcolm_Young")
		b.add(song, "rdf:type", "dbo:Song")
	}
	// Other songs have other writers, keeping the pair non-vacuous.
	for i := 0; i < 120; i++ {
		song := fmt.Sprintf("dbr:song%d", i)
		b.add(song, "writer", fmt.Sprintf("dbr:writer%d", rng.Intn(40)))
		b.add(song, "rdf:type", "dbo:Song")
	}

	// Cities with area code 559 are all in California (the paper found 98).
	for i := 0; i < 98; i++ {
		city := fmt.Sprintf("dbr:ca_city%d", i)
		b.add(city, "areaCode", "\"559\"")
		b.add(city, "partOf", "dbr:California")
		b.add(city, "rdf:type", "dbo:City")
	}
	for i := 0; i < 300; i++ {
		city := fmt.Sprintf("dbr:city%d", i)
		b.add(city, "areaCode", fmt.Sprintf("\"%d\"", 200+rng.Intn(700)))
		b.add(city, "partOf", fmt.Sprintf("dbr:state%d", rng.Intn(50)))
		b.add(city, "rdf:type", "dbo:City")
	}

	// The associatedBand ⊑ associatedMusicalArtist subproperty pair.
	for i := 0; i < scaled(900, float64(targetTriples)/130000); i++ {
		artist := fmt.Sprintf("dbr:musician%d", i)
		band := fmt.Sprintf("dbr:band%d", rng.Intn(200))
		b.add(artist, "associatedMusicalArtist", band)
		if rng.Intn(10) < 8 {
			b.add(artist, "associatedBand", band)
		}
		b.add(artist, "rdf:type", "dbo:MusicalArtist")
	}

	// Heterogeneous encyclopedic bulk: Zipf subjects and objects, Zipf
	// predicates, occasional literals; every entity sighting gets a class
	// statement once.
	typed := make(map[string]struct{})
	for i := 0; b.size() < targetTriples; i++ {
		e := subjOf()
		if _, ok := typed[e]; !ok {
			typed[e] = struct{}{}
			b.add(e, "rdf:type", classes())
		}
		p := predOf()
		if rng.Intn(100) < literalShare {
			b.add(e, p, fmt.Sprintf("\"literal %d\"", rng.Intn(1<<20)))
		} else {
			b.add(e, p, objOf())
		}
	}
	SortTriples(b.ds)
	return b.ds
}

// DBpediaMPCE is the mapping-based properties / classes / external-links
// slice (33.3M triples in the paper; ~130k at scale 1 here).
func DBpediaMPCE(scale float64) *rdf.Dataset {
	return dbpedia(606, scaled(130000, scale), scaled(20000, scale), 400, 20)
}

// DBpediaPLE is the page-links / literals slice: larger, fewer distinct
// predicates, far more literals (152.9M triples in the paper; ~200k here).
func DBpediaPLE(scale float64) *rdf.Dataset {
	return dbpedia(707, scaled(200000, scale), scaled(40000, scale), 60, 55)
}
