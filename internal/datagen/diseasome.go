package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/rdf"
)

// Diseasome generates a disease–gene network in the shape of the FU Berlin
// Diseasome dataset the paper profiles most (Figs. 2, 7, 12): diseases with
// classes, associated genes, possible drugs, and subtype links.
//
// Planted regularities:
//   - class hierarchy (App. B / "Leptodactylidae ⊆ Frog" style): every
//     disease typed with a specific class c is also typed with its parent
//     class, so (s, p=rdf:type ∧ o=c) ⊆ (s, p=rdf:type ∧ o=parent(c));
//   - domain discovery: only diseases carry associatedGene, so
//     (s, p=associatedGene) ⊆ (s, p=rdf:type ∧ o=Disease);
//   - the degree distribution of genes is Zipf-shaped, giving the heavy
//     condition-frequency skew of Fig. 4 and a dominant capture group for
//     the value "Disease".
func Diseasome(scale float64) *rdf.Dataset {
	const seed = 202
	rng := rand.New(rand.NewSource(seed))
	b := newBuilder()

	nDiseases := scaled(2600, scale)
	nGenes := scaled(3000, scale)
	nDrugs := scaled(800, scale)
	target := scaled(24000, scale)

	// A two-level class tree: 12 parent classes, 5 subclasses each.
	parents := make([]string, 12)
	for i := range parents {
		parents[i] = fmt.Sprintf("diseaseClass%d", i)
	}
	geneOf := zipfValues(rng, "gene", nGenes, 1.3)
	drugOf := zipfValues(rng, "drug", nDrugs, 1.4)

	for i := 0; i < nDiseases && b.size() < target; i++ {
		d := fmt.Sprintf("disease%d", i)
		b.add(d, "rdf:type", "Disease")
		parent := parents[rng.Intn(len(parents))]
		sub := fmt.Sprintf("%s_sub%d", parent, rng.Intn(5))
		// Subclass typing always implies parent-class typing.
		b.add(d, "rdf:type", sub)
		b.add(d, "rdf:type", parent)
		b.add(d, "diseaseClass", parent)

		for g := 0; g < 1+rng.Intn(6); g++ {
			gene := geneOf()
			b.add(d, "associatedGene", gene)
			b.add(gene, "rdf:type", "Gene")
		}
		if rng.Intn(3) == 0 {
			b.add(d, "possibleDrug", drugOf())
		}
		if i > 0 && rng.Intn(4) == 0 {
			b.add(d, "diseaseSubtypeOf", fmt.Sprintf("disease%d", rng.Intn(i)))
		}
		b.add(d, "label", fmt.Sprintf("\"disease label %d\"", i))
	}
	// Gene-to-chromosome statements pad the long tail.
	for i := 0; b.size() < target && i < nGenes; i++ {
		gene := fmt.Sprintf("gene%d", i)
		b.add(gene, "chromosome", fmt.Sprintf("chr%d", rng.Intn(23)))
	}
	SortTriples(b.ds)
	return b.ds
}
