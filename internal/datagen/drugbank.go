package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/rdf"
)

// DrugBank generates a drug/target/category dataset shaped like the FU
// Berlin DrugBank export: drugs with Zipf-popular protein targets, category
// and classification statements, interactions, and literal-heavy metadata.
//
// Planted regularities:
//   - the knowledge-discovery pair of Appendix B: drug pairs whose target
//     sets are strictly nested, giving low-support CINDs of the form
//     (o, s=drugA ∧ p=target) ⊆ (o, s=drugB ∧ p=target);
//   - classification-function strings with a hierarchy, e.g. every drug
//     classified "hydrolase activity" is also classified "catalytic
//     activity" — the ontology-engineering hint of Appendix B;
//   - only drugs carry target statements, fixing the domain of target.
func DrugBank(scale float64) *rdf.Dataset {
	const seed = 404
	rng := rand.New(rand.NewSource(seed))
	b := newBuilder()

	nDrugs := scaled(1800, scale)
	nTargets := scaled(2200, scale)
	target := scaled(52000, scale)

	targetOf := zipfValues(rng, "protein", nTargets, 1.25)
	categories := zipfValues(rng, "category", 60, 1.6)
	functionPairs := [][2]string{
		{"\"hydrolase activity\"", "\"catalytic activity\""},
		{"\"kinase activity\"", "\"transferase activity\""},
		{"\"oxidoreductase activity\"", "\"catalytic activity\""},
	}

	// Nested-target drug pairs: drug i targets a superset of what drug i+1
	// targets, for every hundredth pair. The "sub" drug of a pair gets no
	// further targets, keeping the nesting intact.
	pairedSub := make(map[int]bool)
	for i := 0; i < nDrugs && b.size() < target; i++ {
		d := fmt.Sprintf("drug%05d", i)
		b.add(d, "rdf:type", "Drug")
		b.add(d, "category", categories())
		b.add(d, "brandName", fmt.Sprintf("\"Brand %d\"", i))

		switch {
		case i%100 == 0 && i+1 < nDrugs:
			// A nested pair: drugN+1's targets ⊂ drugN's targets, sized so
			// the contained drug has 14 distinct targets — the support the
			// paper reports for the drug00030/drug00047 finding.
			sub := fmt.Sprintf("drug%05d", i+1)
			pairedSub[i+1] = true
			seen := make(map[string]struct{})
			var shared []string
			for len(shared) < 15 {
				p := targetOf()
				if _, dup := seen[p]; dup {
					continue
				}
				seen[p] = struct{}{}
				shared = append(shared, p)
			}
			for _, p := range shared {
				b.add(d, "target", p)
			}
			for _, p := range shared[:14] {
				b.add(sub, "target", p)
			}
		case pairedSub[i]:
			// Targets were already assigned by the pair's superset drug.
		default:
			for t := 0; t < 1+rng.Intn(5); t++ {
				b.add(d, "target", targetOf())
			}
		}

		fp := functionPairs[rng.Intn(len(functionPairs))]
		if rng.Intn(2) == 0 {
			b.add(d, "classificationFunction", fp[0])
			b.add(d, "classificationFunction", fp[1]) // hierarchy implies parent
		} else {
			b.add(d, "classificationFunction", fp[1])
		}
		if i > 0 && rng.Intn(3) == 0 {
			b.add(d, "interactsWith", fmt.Sprintf("drug%05d", rng.Intn(i)))
		}
	}
	// Protein metadata pads the tail.
	for i := 0; b.size() < target && i < nTargets; i++ {
		p := fmt.Sprintf("protein%d", i)
		b.add(p, "rdf:type", "Protein")
		b.add(p, "organism", fmt.Sprintf("\"organism %d\"", rng.Intn(40)))
	}
	SortTriples(b.ds)
	return b.ds
}
