package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/rdf"
)

// Freebase generates the very large, very heterogeneous corpus used for the
// triple-scaling experiment (Fig. 8). The paper ran that experiment with
// predicates used only in conditions, growing the input from 0.5 to 3
// billion triples. The triples are emitted in "temporal" order (not sorted),
// because the experiment takes growing prefixes; the generator is
// deterministic without sorting.
//
// Structure planted to reproduce Fig. 8's series:
//
//   - predicate-implication ladders inside topic domains (an entity carrying
//     a domain's specific predicate also carries its broader ones), so
//     pertinent CINDs (s, p=specific) ⊆ (s, p=broad) accumulate as more
//     domains cross the support threshold — the growing CIND series;
//   - "notable type" terms that initially occur only as objects of
//     fb:type.object.type — exact association rules o=T → p=type — which
//     later triples violate by reusing the type term under
//     fb:common.notable_for: the AR count rises, peaks, and declines, as in
//     the paper (exact rules are fragile under growth);
//   - a Zipf bulk over ~2000 predicates for heterogeneity.
func Freebase(scale float64) *rdf.Dataset {
	const seed = 808
	rng := rand.New(rand.NewSource(seed))
	b := newBuilder()

	target := scaled(400000, scale)
	nEntities := scaled(60000, scale)
	nPredicates := 2000

	predOf := zipfValues(rng, "fb:p", nPredicates, 1.3)
	objOf := zipfValues(rng, "fb:m", nEntities, 1.1)

	// Topic domains with predicate ladders, broad to specific. Domain d is
	// used by entities with probability ~1/(d+2), so later domains cross
	// the support threshold only as the dataset grows.
	const nDomains = 24
	domains := make([][]string, nDomains)
	for d := range domains {
		ladder := []string{"fb:type.object.type"}
		for l := 0; l < 2+d%3; l++ {
			ladder = append(ladder, fmt.Sprintf("fb:domain%d.level%d", d, l))
		}
		domains[d] = ladder
	}

	// Notable types: AR candidates. Type t is violated once the dataset
	// passes its violation point, spread across the second half of the
	// generation — early prefixes satisfy many rules, the full dataset few.
	const nNotable = 40
	notable := make([]string, nNotable)
	violateAt := make([]int, nNotable)
	for i := range notable {
		notable[i] = fmt.Sprintf("fb:notable_type%d", i)
		violateAt[i] = target/3 + (i*2*target)/(3*nNotable)
	}

	for i := 0; b.size() < target; i++ {
		e := fmt.Sprintf("fb:m.%x", i%nEntities)
		switch {
		case i%5 == 0:
			// Domain member: carries a suffix of its domain's ladder, so
			// specific predicates imply broader ones.
			d := rng.Intn(nDomains)
			if rng.Intn(d+2) != 0 {
				d = rng.Intn(4) // bias toward the first domains
			}
			ladder := domains[d]
			depth := 1 + rng.Intn(len(ladder))
			for _, p := range ladder[:depth] {
				b.add(e, p, objOf())
			}
		case i%7 == 1:
			// Notable-type statement: initially only under
			// fb:type.object.type; after the violation point the same type
			// term also appears under fb:common.notable_for, breaking the
			// exact rule o=T → p=fb:type.object.type.
			t := notable[rng.Intn(nNotable)]
			idx := 0
			for j, n := range notable {
				if n == t {
					idx = j
				}
			}
			if b.size() >= violateAt[idx] && rng.Intn(3) == 0 {
				b.add(e, "fb:common.notable_for", t)
			} else {
				b.add(e, "fb:type.object.type", t)
			}
		case i%11 == 2:
			b.add(e, "fb:common.topic.description", fmt.Sprintf("\"desc %d\"", rng.Intn(1<<22)))
		default:
			b.add(e, predOf(), objOf())
		}
	}
	return b.ds
}
