package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/rdf"
)

// LinkedMDB generates a movie dataset in the shape of LinkedMDB, the
// medium-size dataset of the scale-out experiment (Fig. 9): films with
// performances, actors, directors, editors, genres, and countries.
//
// Planted regularities:
//   - the Appendix B association rule o=lmdb:performance → p=rdf:type: the
//     term lmdb:performance occurs only as the object of rdf:type;
//   - (o, p=movieEditor) ⊆ (s, p=rdf:type ∧ o=foaf:Person): editors are
//     typed persons (range discovery);
//   - performance entities link films and actors, producing the join-heavy
//     self-similar structure SPARQL queries over LinkedMDB exhibit.
func LinkedMDB(scale float64) *rdf.Dataset {
	const seed = 505
	rng := rand.New(rand.NewSource(seed))
	b := newBuilder()

	nFilms := scaled(6000, scale)
	nActors := scaled(4000, scale)
	target := scaled(90000, scale)

	actorOf := zipfValues(rng, "actor", nActors, 1.2)
	genres := zipfValues(rng, "genre", 30, 1.8)
	countries := zipfValues(rng, "mdbcountry", 60, 1.7)

	perf := 0
	for i := 0; i < nFilms && b.size() < target; i++ {
		f := fmt.Sprintf("film%d", i)
		b.add(f, "rdf:type", "lmdb:film")
		b.add(f, "genre", genres())
		b.add(f, "country", countries())
		b.add(f, "initialReleaseDate", fmt.Sprintf("\"19%02d\"", rng.Intn(100)))

		// Performances: the AR class — these entities are typed
		// lmdb:performance and nothing else uses that term.
		for j := 0; j < 1+rng.Intn(4); j++ {
			pe := fmt.Sprintf("performance%d", perf)
			perf++
			actor := actorOf()
			b.add(pe, "rdf:type", "lmdb:performance")
			b.add(pe, "performanceFilm", f)
			b.add(pe, "performanceActor", actor)
			b.add(actor, "rdf:type", "foaf:Person")
		}
		director := fmt.Sprintf("director%d", rng.Intn(nFilms/8+1))
		b.add(f, "director", director)
		b.add(director, "rdf:type", "foaf:Person")
		if rng.Intn(2) == 0 {
			editor := fmt.Sprintf("editor%d", rng.Intn(nFilms/10+1))
			b.add(f, "movieEditor", editor)
			b.add(editor, "rdf:type", "foaf:Person")
		}
	}
	SortTriples(b.ds)
	return b.ds
}
