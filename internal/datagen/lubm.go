package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/rdf"
)

// LUBM generates a university benchmark dataset following the LUBM schema
// closely enough to run query Q2 (the query-minimization experiment,
// Fig. 14): universities contain departments; graduate students are members
// of departments, have advisors, take courses, and hold an undergraduate
// degree from some university; professors work for departments and teach
// courses.
//
// The generator maintains the invariants that make the Fig. 14 CINDs hold:
//   - only graduate students carry memberOf, so
//     (s, p=memberOf) ⊆ (s, p=rdf:type ∧ o=GraduateStudent);
//   - only departments carry subOrganizationOf, so
//     (s, p=subOrganizationOf) ⊆ (s, p=rdf:type ∧ o=Department);
//   - undergraduate degrees point at universities, so
//     (o, p=undergraduateDegreeFrom) ⊆ (s, p=rdf:type ∧ o=University).
func LUBM(scale float64) *rdf.Dataset {
	const seed = 303
	rng := rand.New(rand.NewSource(seed))
	b := newBuilder()

	// Sizes scale smoothly: first the per-department population grows, then
	// the number of universities.
	nUniversities := scaled(5, scale)
	if nUniversities < 2 {
		nUniversities = 2
	}
	inner := scale * 5 / float64(nUniversities)
	if inner > 1.5 {
		inner = 1.5
	}
	deptsPer := max(2, scaled(15, inner))
	profsPerDept := max(2, scaled(7, inner))
	studentsPerDept := max(3, scaled(30, inner))
	coursesPerDept := max(2, scaled(10, inner))

	var universities []string
	for u := 0; u < nUniversities; u++ {
		univ := fmt.Sprintf("university%d", u)
		universities = append(universities, univ)
		b.add(univ, "rdf:type", "University")
		b.add(univ, "name", fmt.Sprintf("\"University %d\"", u))
	}
	for u, univ := range universities {
		for d := 0; d < deptsPer; d++ {
			dept := fmt.Sprintf("dept%d_%d", u, d)
			b.add(dept, "rdf:type", "Department")
			b.add(dept, "subOrganizationOf", univ)

			var courses []string
			for c := 0; c < coursesPerDept; c++ {
				course := fmt.Sprintf("course%d_%d_%d", u, d, c)
				courses = append(courses, course)
				b.add(course, "rdf:type", "GraduateCourse")
			}
			var profs []string
			for p := 0; p < profsPerDept; p++ {
				prof := fmt.Sprintf("prof%d_%d_%d", u, d, p)
				profs = append(profs, prof)
				b.add(prof, "rdf:type", "FullProfessor")
				b.add(prof, "worksFor", dept)
				b.add(prof, "teacherOf", courses[rng.Intn(len(courses))])
				b.add(prof, "doctoralDegreeFrom", universities[rng.Intn(len(universities))])
				b.add(prof, "researchInterest", fmt.Sprintf("\"research%d\"", rng.Intn(30)))
			}
			for s := 0; s < studentsPerDept; s++ {
				stud := fmt.Sprintf("gradStudent%d_%d_%d", u, d, s)
				b.add(stud, "rdf:type", "GraduateStudent")
				b.add(stud, "memberOf", dept)
				b.add(stud, "advisor", profs[rng.Intn(len(profs))])
				b.add(stud, "takesCourse", courses[rng.Intn(len(courses))])
				b.add(stud, "takesCourse", courses[rng.Intn(len(courses))])
				// Q2 asks for students whose undergraduate university hosts
				// their department; give one third of students that shape.
				if rng.Intn(3) == 0 {
					b.add(stud, "undergraduateDegreeFrom", univ)
				} else {
					b.add(stud, "undergraduateDegreeFrom", universities[rng.Intn(len(universities))])
				}
				b.add(stud, "emailAddress", fmt.Sprintf("\"student%d_%d_%d@example.edu\"", u, d, s))
			}
		}
	}
	SortTriples(b.ds)
	return b.ds
}
