package experiments

import (
	"fmt"

	"repro/internal/core"
)

// RunAblation sweeps the candidate-set Bloom filter size, the design choice
// §7.2 settles experimentally: "We experimentally observed that k = 64
// bytes yields the best performance." Small filters saturate and push many
// candidates into the validation pass; large ones waste memory bandwidth on
// cloning and intersecting. Results must be identical at every size (the
// filters are performance-only).
func RunAblation(opts Options) (*Report, error) {
	ds := dataset("LinkedMDB", opts.Scale)
	const h = 25
	sizes := []int{8, 16, 32, 64, 128, 256, 512}
	rep := &Report{
		ID:     "ablation",
		Title:  fmt.Sprintf("Candidate-set Bloom filter size, LinkedMDB analogue (%s triples), h=%d", fmtCount(ds.Size()), h),
		Header: []string{"Bloom bytes", "Runtime", "CINDs+ARs"},
		Notes: []string{
			"paper (§7.2): 64 bytes performed best; results are identical at every size",
		},
	}
	baseline := -1
	for _, size := range sizes {
		res, _, elapsed := timedDiscover(fmt.Sprintf("bloom-%dB", size), ds, core.Config{Support: h, Workers: opts.Workers, BloomBytes: size})
		n := len(res.CINDs) + len(res.ARs)
		if baseline < 0 {
			baseline = n
		} else if n != baseline {
			return nil, fmt.Errorf("ablation: result changed with Bloom size %d: %d vs %d statements", size, n, baseline)
		}
		rep.Rows = append(rep.Rows, []string{fmt.Sprintf("%d", size), fmtDuration(elapsed), fmtCount(n)})
	}
	return rep, nil
}
