package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/cind"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/rdf"
	"repro/internal/source"
)

// BenchSchema versions the machine-readable benchmark record. Bump it when a
// field changes meaning; benchdiff refuses to compare records across schemas.
const BenchSchema = "rdfind-bench/v1"

// PipelineRun is one instrumented discovery run inside an experiment: which
// configuration ran, how long it took, and the engine's work accounting and
// trace. Every span's input records reconcile with TotalWork — the invariant
// TestBenchSpansReconcile pins per experiment.
type PipelineRun struct {
	Label        string  `json:"label"`
	Variant      string  `json:"variant"`
	Workers      int     `json:"workers"`
	Support      int     `json:"support"`
	WallMS       float64 `json:"wall_ms"`
	TotalWork    int64   `json:"total_work"`
	CriticalPath int64   `json:"critical_path"`
	Speedup      float64 `json:"speedup"`
	Retries      int     `json:"retries,omitempty"`
	Failed       bool    `json:"failed,omitempty"`
	// Mallocs/AllocBytes are the run's process-wide allocation deltas
	// (core.RunStats.Mallocs/AllocBytes). Additive within schema v1: zero in
	// records written before the counters existed, and benchdiff only
	// compares them when both sides measured.
	Mallocs    uint64 `json:"mallocs,omitempty"`
	AllocBytes uint64 `json:"alloc_bytes,omitempty"`
	// SpilledBytes/SpilledRuns are the engine's out-of-core activity
	// (core.RunStats); additive within schema v1 like Mallocs, zero in
	// unbudgeted runs and in records from before spilling existed.
	SpilledBytes int64 `json:"spilled_bytes,omitempty"`
	SpilledRuns  int64 `json:"spilled_runs,omitempty"`
	// MaterializedBytes estimates the bytes buffered into partition slices by
	// narrow-operator stages (core.RunStats.MaterializedBytes); additive within
	// schema v1, zero in records from before the counter existed. Fusion
	// lowers it, and benchdiff gates on regressions when both sides measured.
	MaterializedBytes int64 `json:"materialized_bytes,omitempty"`
	// Batches/BatchFill account the columnar batch path across the run's fused
	// chains (core.RunStats.Batches/BatchFill); additive within schema v1, zero
	// on record-at-a-time runs and in records from before the counters existed.
	Batches   int64   `json:"batches,omitempty"`
	BatchFill float64 `json:"batch_fill,omitempty"`
	// OptDecisions/OptRules summarize the plan optimizer's report for the run:
	// how many per-stage rewrite/policy decisions fired and the distinct rule
	// names. Additive within schema v1, zero/absent on optimizer-off runs and
	// in records from before the optimizer existed.
	OptDecisions int      `json:"opt_decisions,omitempty"`
	OptRules     []string `json:"opt_rules,omitempty"`
	// ShuffleBytes is the streamed-ingest placement shuffle's wire volume
	// (core.IngestStats.ShuffleBytes) — the column the partition experiment
	// ablates. Additive within schema v1: zero on in-memory and
	// single-process runs and in records from before the source layer.
	ShuffleBytes int64          `json:"shuffle_bytes,omitempty"`
	Spans        []metrics.Span `json:"spans,omitempty"`
}

// BenchRecord is the machine-readable result of one experiment: the rendered
// report plus aggregate and per-run performance accounting. cmd/benchsuite
// writes one BENCH_<experiment>.json per record; cmd/benchdiff compares them.
type BenchRecord struct {
	Schema       string  `json:"schema"`
	Experiment   string  `json:"experiment"`
	Title        string  `json:"title"`
	Scale        float64 `json:"scale"`
	Workers      int     `json:"workers"`
	WallMS       float64 `json:"wall_ms"`
	TotalWork    int64   `json:"total_work"`
	CriticalPath int64   `json:"critical_path"`
	Speedup      float64 `json:"speedup"`
	// Mallocs/AllocBytes sum the runs' allocation deltas (zero when no run
	// measured them).
	Mallocs    uint64 `json:"mallocs,omitempty"`
	AllocBytes uint64 `json:"alloc_bytes,omitempty"`
	// SpilledBytes/SpilledRuns sum the runs' out-of-core activity (zero when
	// nothing spilled).
	SpilledBytes int64 `json:"spilled_bytes,omitempty"`
	SpilledRuns  int64 `json:"spilled_runs,omitempty"`
	// MaterializedBytes sums the runs' narrow-stage buffering estimates (zero
	// when no run measured them).
	MaterializedBytes int64 `json:"materialized_bytes,omitempty"`
	// Batches sums the runs' columnar batch counts; BatchFill averages their
	// fill rates over the runs that measured one (zero when none did).
	Batches   int64   `json:"batches,omitempty"`
	BatchFill float64 `json:"batch_fill,omitempty"`
	// OptDecisions sums the runs' plan-optimizer decision counts (zero when
	// every run had the optimizer off).
	OptDecisions int `json:"opt_decisions,omitempty"`
	// ShuffleBytes sums the runs' ingest placement-shuffle volumes (zero when
	// no run used distributed streamed ingest).
	ShuffleBytes int64 `json:"shuffle_bytes,omitempty"`
	// QPS/P50MS/P99MS summarize the closed-loop serving phase of the "serve"
	// experiment: sustained operations per second and overall latency
	// quantiles in milliseconds. PlanCacheHits/Misses expose the query
	// engine's plan cache over the same phase. Additive within schema v1:
	// zero/absent for batch experiments and for records written before the
	// serving layer existed; benchdiff compares them only when both sides
	// measured.
	QPS             float64       `json:"qps,omitempty"`
	P50MS           float64       `json:"p50_ms,omitempty"`
	P99MS           float64       `json:"p99_ms,omitempty"`
	PlanCacheHits   int64         `json:"plan_cache_hits,omitempty"`
	PlanCacheMisses int64         `json:"plan_cache_misses,omitempty"`
	Runs            []PipelineRun `json:"runs"`
	Header          []string      `json:"header,omitempty"`
	Rows            [][]string    `json:"rows,omitempty"`
	Notes           []string      `json:"notes,omitempty"`
}

// The collector gathers the PipelineRuns of the experiment currently running
// under RunBench. Plain Run(...) leaves it off, so the text harness pays only
// for the struct copies timedDiscover makes.
var (
	benchRunMu sync.Mutex // serializes RunBench: one collection at a time
	collectMu  sync.Mutex
	collected  []PipelineRun
	servedSum  *ServeSummary
	collecting bool
)

func recordRun(r PipelineRun) {
	collectMu.Lock()
	if collecting {
		collected = append(collected, r)
	}
	collectMu.Unlock()
}

// ServeSummary is the serving-layer accounting the serve experiment reports
// into its benchmark record alongside the discovery PipelineRuns.
type ServeSummary struct {
	QPS             float64
	P50MS           float64
	P99MS           float64
	PlanCacheHits   int64
	PlanCacheMisses int64
}

// recordServe publishes the load generator's summary to the active RunBench
// collection (a no-op under the plain text harness, like recordRun).
func recordServe(s ServeSummary) {
	collectMu.Lock()
	if collecting {
		cp := s
		servedSum = &cp
	}
	collectMu.Unlock()
}

// timedDiscover is the experiments' instrumented core.Discover: it times the
// run and, under RunBench, records the configuration, work accounting, and
// trace spans. Panics on error, like core.Discover.
func timedDiscover(label string, ds *rdf.Dataset, cfg core.Config) (*cind.Result, *core.RunStats, time.Duration) {
	res, stats, elapsed, err := timedTryDiscover(label, ds, cfg)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return res, stats, elapsed
}

// timedTryDiscover is timedDiscover with errors surfaced; failed runs (load
// limit, injected faults) are recorded with Failed set and partial accounting.
func timedTryDiscover(label string, ds *rdf.Dataset, cfg core.Config) (*cind.Result, *core.RunStats, time.Duration, error) {
	start := time.Now()
	res, stats, err := core.TryDiscover(ds, cfg)
	elapsed := time.Since(start)
	recordRun(buildRun(label, cfg, stats, elapsed, err))
	return res, stats, elapsed, err
}

// timedTrySource is timedTryDiscover's streamed counterpart: the run ingests
// through the source layer (core.DiscoverSource) instead of a materialized
// dataset, and the recorded run gains the ingest shuffle accounting.
func timedTrySource(label string, spec source.Spec, cfg core.Config) (*cind.Result, *rdf.Dictionary, *core.RunStats, time.Duration, error) {
	start := time.Now()
	res, dict, stats, err := core.DiscoverSource(context.Background(), spec, cfg)
	elapsed := time.Since(start)
	recordRun(buildRun(label, cfg, stats, elapsed, err))
	return res, dict, stats, elapsed, err
}

// buildRun assembles the bench record of one instrumented discovery.
func buildRun(label string, cfg core.Config, stats *core.RunStats, elapsed time.Duration, err error) PipelineRun {
	run := PipelineRun{
		Label:   label,
		Variant: cfg.Variant.String(),
		Workers: max(cfg.Workers, 1),
		Support: max(cfg.Support, 1),
		WallMS:  float64(elapsed.Nanoseconds()) / 1e6,
		Speedup: 1,
		Failed:  err != nil,
	}
	if stats != nil {
		run.Mallocs = stats.Mallocs
		run.AllocBytes = stats.AllocBytes
		run.SpilledBytes = stats.SpilledBytes
		run.SpilledRuns = stats.SpilledRuns
		run.MaterializedBytes = stats.MaterializedBytes
		run.Batches = stats.Batches
		run.BatchFill = stats.BatchFill
		if rep := stats.Optimizer; rep != nil && rep.Enabled {
			run.OptDecisions = len(rep.Decisions)
			run.OptRules = rep.Rules()
		}
		if ing := stats.Ingest; ing != nil {
			run.ShuffleBytes = ing.ShuffleBytes
		}
	}
	if stats != nil && stats.Dataflow != nil {
		run.TotalWork = stats.Dataflow.TotalWork()
		run.CriticalPath = stats.Dataflow.CriticalPath()
		run.Speedup = stats.Dataflow.Speedup()
		run.Retries = stats.StageRetries
		run.Spans = stats.Dataflow.Spans()
	}
	return run
}

// RunBench executes one experiment with run collection switched on and
// returns its benchmark record. Note that experiments share memoized results
// (the Fig. 10/11 support sweep runs once per options): benching both in one
// process leaves the second record's run list empty.
func RunBench(id string, opts Options) (*BenchRecord, error) {
	runner, ok := Lookup(id)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	opts = opts.normalized()

	benchRunMu.Lock()
	defer benchRunMu.Unlock()
	collectMu.Lock()
	collected, servedSum, collecting = nil, nil, true
	collectMu.Unlock()

	start := time.Now()
	rep, err := runner(opts)
	elapsed := time.Since(start)

	collectMu.Lock()
	runs, serve := collected, servedSum
	collected, servedSum, collecting = nil, nil, false
	collectMu.Unlock()
	if err != nil {
		return nil, err
	}

	rec := &BenchRecord{
		Schema:     BenchSchema,
		Experiment: rep.ID,
		Title:      rep.Title,
		Scale:      opts.Scale,
		Workers:    opts.Workers,
		WallMS:     float64(elapsed.Nanoseconds()) / 1e6,
		Speedup:    1,
		Runs:       runs,
		Header:     rep.Header,
		Rows:       rep.Rows,
		Notes:      rep.Notes,
	}
	batchRuns := 0
	for _, r := range runs {
		rec.TotalWork += r.TotalWork
		rec.CriticalPath += r.CriticalPath
		rec.Mallocs += r.Mallocs
		rec.AllocBytes += r.AllocBytes
		rec.SpilledBytes += r.SpilledBytes
		rec.SpilledRuns += r.SpilledRuns
		rec.MaterializedBytes += r.MaterializedBytes
		rec.Batches += r.Batches
		rec.OptDecisions += r.OptDecisions
		rec.ShuffleBytes += r.ShuffleBytes
		if r.Batches > 0 {
			rec.BatchFill += r.BatchFill
			batchRuns++
		}
	}
	if batchRuns > 0 {
		rec.BatchFill /= float64(batchRuns)
	}
	if rec.CriticalPath > 0 {
		rec.Speedup = float64(rec.TotalWork) / float64(rec.CriticalPath)
	}
	if serve != nil {
		rec.QPS = serve.QPS
		rec.P50MS = serve.P50MS
		rec.P99MS = serve.P99MS
		rec.PlanCacheHits = serve.PlanCacheHits
		rec.PlanCacheMisses = serve.PlanCacheMisses
	}
	return rec, nil
}
