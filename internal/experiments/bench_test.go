package experiments

import (
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
)

// TestBenchAllExperimentsReconcile is the harness-level accounting check:
// every experiment produces a valid benchmark record whose per-run span
// totals reconcile with the engine's TotalWork, and the record survives a
// JSON round-trip. Uses its own options so the Fig. 10/11 sweep memo from
// other tests in this package does not empty the run lists.
func TestBenchAllExperimentsReconcile(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	opts := Options{Scale: 0.04, Workers: 3}
	sawRuns := false
	for _, id := range IDs() {
		rec, err := RunBench(id, opts)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if rec.Schema != BenchSchema {
			t.Errorf("%s: schema %q", id, rec.Schema)
		}
		if rec.Experiment != id {
			t.Errorf("%s: record carries experiment %q", id, rec.Experiment)
		}
		if rec.WallMS <= 0 || len(rec.Rows) == 0 {
			t.Errorf("%s: incomplete record: wall=%v rows=%d", id, rec.WallMS, len(rec.Rows))
		}
		var total, critical int64
		for _, run := range rec.Runs {
			sawRuns = true
			if got := metrics.TotalRecordsIn(run.Spans); got != run.TotalWork {
				t.Errorf("%s run %q: span records-in %d != total work %d",
					id, run.Label, got, run.TotalWork)
			}
			if run.WallMS <= 0 || run.Workers < 1 || run.Support < 1 {
				t.Errorf("%s run %q: bad fields: %+v", id, run.Label, run)
			}
			total += run.TotalWork
			critical += run.CriticalPath
		}
		if total != rec.TotalWork || critical != rec.CriticalPath {
			t.Errorf("%s: aggregate work %d/%d != summed runs %d/%d",
				id, rec.TotalWork, rec.CriticalPath, total, critical)
		}

		raw, err := json.Marshal(rec)
		if err != nil {
			t.Fatalf("%s: marshal: %v", id, err)
		}
		var back BenchRecord
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", id, err)
		}
		if back.TotalWork != rec.TotalWork || len(back.Runs) != len(rec.Runs) {
			t.Errorf("%s: JSON round-trip changed the record", id)
		}
	}
	if !sawRuns {
		t.Error("no experiment recorded a single pipeline run")
	}
}

func TestBenchUnknownExperiment(t *testing.T) {
	if _, err := RunBench("nope", tinyOpts); err == nil {
		t.Error("no error for unknown experiment")
	}
}

// TestPlainRunDoesNotCollect guards the collector gate: discoveries outside
// RunBench must not leak runs into the next benchmark record.
func TestPlainRunDoesNotCollect(t *testing.T) {
	ds := dataset("Countries", 0.02)
	timedDiscover("stray", ds, core.Config{Support: 2, Workers: 1})
	rec, err := RunBench("table2", Options{Scale: 0.02, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range rec.Runs {
		if run.Label == "stray" {
			t.Error("un-benched run leaked into the record")
		}
	}
}
