package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/cind"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/rdf"
)

// RunDist measures the multi-process execution mode against the
// single-process engine on one dataset: the coordinator plus in-process
// worker replicas connected over a unix socket, across worker counts, plus
// one run with an injected worker kill that must finish through lineage
// re-execution. Correctness is asserted (every distributed run must be
// byte-identical to the single-process result); the interesting columns are
// the coordination overhead and the fault-recovery accounting.
func RunDist(opts Options) (*Report, error) {
	ds := dataset("Diseasome", opts.Scale)
	const h = 10
	rep := &Report{
		ID:     "dist",
		Title:  fmt.Sprintf("Distributed execution and fault recovery, Diseasome analogue (%s triples), h=%d", fmtCount(ds.Size()), h),
		Header: []string{"Mode", "Runtime", "Losses", "Respawns", "Retries", "CINDs+ARs"},
		Notes: []string{
			"workers are in-process replicas over a unix socket; every distributed result is byte-identical to the single-process run",
			"the chaos row injects one worker kill mid-pipeline and recovers by respawn + lineage replay",
		},
	}

	res, stats, elapsed := timedDiscover("dist-single", ds, core.Config{Support: h, Workers: opts.Workers})
	want := res.Format(ds.Dict)
	n := len(res.CINDs) + len(res.ARs)
	rep.Rows = append(rep.Rows, []string{
		"single-process", fmtDuration(elapsed), "0", "0",
		fmtCount(stats.StageRetries), fmtCount(n),
	})

	modes := []struct {
		label   string
		workers int
		faults  []dataflow.ProcFault
	}{
		{"cluster w=1", 1, nil},
		{"cluster w=2", 2, nil},
		{"cluster w=4", 4, nil},
		{"cluster w=2 +kill", 2, []dataflow.ProcFault{{Seq: 4, Rank: 1, Kind: dataflow.ProcKill}}},
	}
	for _, mode := range modes {
		res, stats, elapsed, err := distDiscover("dist-"+mode.label, ds, h, mode.workers, mode.faults)
		if err != nil {
			return nil, fmt.Errorf("dist: %s: %w", mode.label, err)
		}
		if got := res.Format(ds.Dict); got != want {
			return nil, fmt.Errorf("dist: %s diverged from the single-process result (%d vs %d bytes)",
				mode.label, len(got), len(want))
		}
		rep.Rows = append(rep.Rows, []string{
			mode.label,
			fmtDuration(elapsed),
			fmtCount(stats.WorkerLosses),
			fmtCount(stats.WorkerRespawns),
			fmtCount(stats.StageRetries),
			fmtCount(len(res.CINDs) + len(res.ARs)),
		})
	}
	return rep, nil
}

// distDiscover runs one discovery on an in-process cluster and records it in
// the bench collector like timedTryDiscover does for local runs.
func distDiscover(label string, ds *rdf.Dataset, h, workers int, faults []dataflow.ProcFault) (res *cind.Result, stats *core.RunStats, elapsed time.Duration, err error) {
	dir, err := os.MkdirTemp("", "rdfind-dist-")
	if err != nil {
		return nil, nil, 0, err
	}
	defer os.RemoveAll(dir)
	addr := filepath.Join(dir, "coord.sock")
	var wg sync.WaitGroup
	cl, err := dataflow.StartCluster(dataflow.ClusterConfig{
		Workers:    workers,
		Network:    "unix",
		Addr:       addr,
		ProcFaults: faults,
		Spawn: func(rank int) error {
			wg.Add(1)
			go func() {
				defer wg.Done()
				w, err := dataflow.DialWorker("unix", addr, rank)
				if err != nil {
					return
				}
				defer w.Close()
				cfg := core.Config{Support: h, WorkerConn: w}
				if _, _, err := core.TryDiscover(ds, cfg); err == nil {
					w.Goodbye()
				}
			}()
			return nil
		},
	})
	if err != nil {
		return nil, nil, 0, err
	}
	defer wg.Wait()
	defer cl.Close()
	res, stats, elapsed, err = timedTryDiscover(label, ds, core.Config{Support: h, Cluster: cl})
	return res, stats, elapsed, err
}
