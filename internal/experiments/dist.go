package experiments

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/source"
)

// RunDist measures the multi-process execution mode against the
// single-process engine on one dataset: the coordinator plus in-process
// worker replicas connected over a unix socket, across worker counts, plus
// one run with an injected worker kill that must finish through lineage
// re-execution. The dataset is split into part files and every worker
// streams only its own assignment through the source layer — the
// coordinator never materializes a triple. Correctness is asserted (every
// distributed run must be byte-identical to the single-process in-memory
// result, pinning the two ingest layers against each other); the
// interesting columns are the coordination overhead and the fault-recovery
// accounting.
func RunDist(opts Options) (*Report, error) {
	ds := dataset("Diseasome", opts.Scale)
	const h = 10
	dir, err := os.MkdirTemp("", "rdfind-dist-parts-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	spec, err := writeSourceParts(ds, dir, 4)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "dist",
		Title:  fmt.Sprintf("Distributed execution and fault recovery, Diseasome analogue (%s triples), h=%d", fmtCount(ds.Size()), h),
		Header: []string{"Mode", "Runtime", "Losses", "Respawns", "Retries", "CINDs+ARs"},
		Notes: []string{
			"workers are in-process replicas over a unix socket streaming their own part files; every distributed result is byte-identical to the single-process run",
			"the chaos row injects one worker kill mid-pipeline and recovers by respawn + lineage replay",
		},
	}

	res, stats, elapsed := timedDiscover("dist-single", ds, core.Config{Support: h, Workers: opts.Workers})
	n := len(res.CINDs) + len(res.ARs)
	rep.Rows = append(rep.Rows, []string{
		"single-process", fmtDuration(elapsed), "0", "0",
		fmtCount(stats.StageRetries), fmtCount(n),
	})

	// The streamed baseline re-reads the part files, so its term surfaces are
	// the N-Triples writer's (plain generated terms come back URI-wrapped) —
	// byte-identity is pinned within the streamed layer, statement counts
	// across the two ingest layers.
	sres, sdict, sstats, selapsed, err := timedTrySource("dist-streamed", spec,
		core.Config{Support: h, Workers: opts.Workers})
	if err != nil {
		return nil, fmt.Errorf("dist: streamed baseline: %w", err)
	}
	want := sres.Format(sdict)
	if sn := len(sres.CINDs) + len(sres.ARs); sn != n {
		return nil, fmt.Errorf("dist: streamed ingest found %d statements, in-memory %d", sn, n)
	}
	rep.Rows = append(rep.Rows, []string{
		"single-process streamed", fmtDuration(selapsed), "0", "0",
		fmtCount(sstats.StageRetries), fmtCount(n),
	})

	modes := []struct {
		label   string
		workers int
		faults  []dataflow.ProcFault
	}{
		{"cluster w=1", 1, nil},
		{"cluster w=2", 2, nil},
		{"cluster w=4", 4, nil},
		{"cluster w=2 +kill", 2, []dataflow.ProcFault{{Seq: 4, Rank: 1, Kind: dataflow.ProcKill}}},
	}
	for _, mode := range modes {
		res, dict, stats, elapsed, err := distSourceDiscover("dist-"+mode.label, spec, h, mode.workers, source.HashPartitioner{}, mode.faults)
		if err != nil {
			return nil, fmt.Errorf("dist: %s: %w", mode.label, err)
		}
		if got := res.Format(dict); got != want {
			return nil, fmt.Errorf("dist: %s diverged from the single-process result (%d vs %d bytes)",
				mode.label, len(got), len(want))
		}
		rep.Rows = append(rep.Rows, []string{
			mode.label,
			fmtDuration(elapsed),
			fmtCount(stats.WorkerLosses),
			fmtCount(stats.WorkerRespawns),
			fmtCount(stats.StageRetries),
			fmtCount(len(res.CINDs) + len(res.ARs)),
		})
	}
	return rep, nil
}
