// Package experiments regenerates every table and figure of the paper's
// evaluation (§8 and Appendix B) on the synthetic dataset suite. Each
// experiment is registered under the identifier used in DESIGN.md
// ("table2", "fig2", …, "fig14", "sec86", "appB") and produces a Report —
// the same rows/series the paper plots, which EXPERIMENTS.md compares
// against the published results.
//
// Absolute numbers differ from the paper (single core and scaled-down
// datasets versus a 10-node cluster and the original corpora); the reports
// are about shape: who wins, by what factor, where the curves bend.
package experiments

import (
	"fmt"
	"io"

	"strings"
	"sync"
	"time"

	"repro/internal/datagen"
	"repro/internal/rdf"
)

// Options configure a harness run.
type Options struct {
	// Scale multiplies every dataset size; 1.0 is the default suite size
	// (see datagen.Suite), benchmarks typically use 0.1–0.3.
	Scale float64
	// Workers is the dataflow worker count used where the experiment does
	// not itself vary it. Zero selects 4.
	Workers int
}

func (o Options) normalized() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	return o
}

// Report is one regenerated table or figure.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// WriteTo renders the report as an aligned text table.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// Runner computes one experiment.
type Runner func(opts Options) (*Report, error)

// registry maps experiment IDs to runners, in presentation order.
var registry = []struct {
	ID    string
	Run   Runner
	Title string
}{
	{"table2", RunTable2, "Evaluation datasets (Table 2)"},
	{"fig2", RunFig2, "CIND search-space funnel on Diseasome (Figure 2)"},
	{"fig4", RunFig4, "Conditions by frequency (Figure 4)"},
	{"fig7", RunFig7, "RDFind vs. Cinderella (Figure 7)"},
	{"fig8", RunFig8, "Scaling the number of triples (Figure 8)"},
	{"fig9", RunFig9, "Scaling out (Figure 9)"},
	{"fig10", RunFig10, "Runtime vs. support threshold (Figure 10)"},
	{"fig11", RunFig11, "Pertinent CINDs vs. support threshold (Figure 11)"},
	{"fig12", RunFig12, "Pruning effectiveness, small datasets (Figure 12)"},
	{"fig13", RunFig13, "RDFind vs. RDFind-DE, larger datasets (Figure 13)"},
	{"sec86", RunSec86, "Minimal-CINDs-first strategy (Section 8.6)"},
	{"fig14", RunFig14, "Query minimization, LUBM Q2 (Figure 14)"},
	{"appB", RunAppB, "Use-case CINDs and ARs (Appendix B)"},
	{"ablation", RunAblation, "Candidate-set Bloom size ablation (§7.2)"},
	{"fusion", RunFusion, "Narrow-operator fusion vs. eager execution"},
	{"dist", RunDist, "Distributed execution and fault recovery"},
	{"partition", RunPartition, "Ingest partitioning ablation (hash vs subject locality)"},
	{"serve", RunServe, "Concurrent query serving under mixed load"},
}

// IDs returns the registered experiment identifiers in order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.ID
	}
	return out
}

// Lookup returns the runner for an ID.
func Lookup(id string) (Runner, bool) {
	for _, e := range registry {
		if strings.EqualFold(e.ID, id) {
			return e.Run, true
		}
	}
	return nil, false
}

// Run executes one experiment (or all for id "all") and writes its report.
func Run(id string, opts Options, w io.Writer) error {
	if strings.EqualFold(id, "all") {
		for _, e := range registry {
			if err := Run(e.ID, opts, w); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
		}
		return nil
	}
	runner, ok := Lookup(id)
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (known: %s, all)", id, strings.Join(IDs(), ", "))
	}
	rep, err := runner(opts.normalized())
	if err != nil {
		return err
	}
	_, err = rep.WriteTo(w)
	return err
}

// datasetCache memoizes generated datasets per (name, scale) so that
// experiments sharing inputs do not regenerate them.
var (
	cacheMu      sync.Mutex
	datasetCache = map[string]*rdf.Dataset{}
)

func dataset(name string, scale float64) *rdf.Dataset {
	key := fmt.Sprintf("%s@%g", name, scale)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if ds, ok := datasetCache[key]; ok {
		return ds
	}
	spec, ok := datagen.ByName(name)
	if !ok {
		panic("experiments: unknown dataset " + name)
	}
	ds := spec.Generate(scale)
	datasetCache[key] = ds
	return ds
}

// fmtDuration renders a duration with millisecond resolution.
func fmtDuration(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}

// fmtCount renders large counts with thousands separators.
func fmtCount[T ~int | ~int64 | ~uint64](n T) string {
	s := fmt.Sprintf("%d", n)
	if len(s) <= 3 {
		return s
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	return s + "," + strings.Join(parts, ",")
}
