package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// tinyOpts keeps every experiment in test-friendly territory.
var tinyOpts = Options{Scale: 0.04, Workers: 2}

func run(t *testing.T, id string) *Report {
	t.Helper()
	runner, ok := Lookup(id)
	if !ok {
		t.Fatalf("unknown experiment %q", id)
	}
	rep, err := runner(tinyOpts.normalized())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if rep.ID != id {
		t.Errorf("%s: report carries ID %q", id, rep.ID)
	}
	if len(rep.Header) == 0 || len(rep.Rows) == 0 {
		t.Fatalf("%s: empty report", id)
	}
	for i, row := range rep.Rows {
		if len(row) != len(rep.Header) {
			t.Errorf("%s: row %d has %d cells, header has %d", id, i, len(row), len(rep.Header))
		}
	}
	return rep
}

// number parses a fmtCount-rendered cell.
func number(t *testing.T, cell string) int64 {
	t.Helper()
	n, err := strconv.ParseInt(strings.ReplaceAll(cell, ",", ""), 10, 64)
	if err != nil {
		t.Fatalf("cell %q is not a count: %v", cell, err)
	}
	return n
}

func TestAllExperimentsProduceReports(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	for _, id := range IDs() {
		rep := run(t, id)
		var buf bytes.Buffer
		if _, err := rep.WriteTo(&buf); err != nil {
			t.Errorf("%s: WriteTo: %v", id, err)
		}
		if !strings.Contains(buf.String(), rep.Title) {
			t.Errorf("%s: rendering lacks the title", id)
		}
	}
}

func TestTable2CoversSuite(t *testing.T) {
	rep := run(t, "table2")
	if len(rep.Rows) != 8 {
		t.Errorf("table2 has %d rows, want 8", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if number(t, row[2]) <= 0 {
			t.Errorf("dataset %s has no triples", row[0])
		}
	}
}

func TestFig2FunnelInvariants(t *testing.T) {
	rep := run(t, "fig2")
	get := func(box string) int64 {
		for _, row := range rep.Rows {
			if row[0] == box {
				return number(t, row[1])
			}
		}
		t.Fatalf("fig2: missing box %q", box)
		return 0
	}
	all := get("all CIND candidates")
	freq := get("candidates w/ frequent conditions")
	broadCand := get("broad CIND candidates")
	allCINDs := get("all CINDs")
	minimal := get("minimal CINDs")
	broad := get("broad CINDs")
	pertinent := get("pertinent CINDs")
	if !(all >= freq && freq >= broadCand) {
		t.Errorf("candidate funnel violated: %d ≥ %d ≥ %d", all, freq, broadCand)
	}
	if !(allCINDs >= minimal && minimal >= pertinent && broad >= pertinent) {
		t.Errorf("result funnel violated: all=%d minimal=%d broad=%d pertinent=%d",
			allCINDs, minimal, broad, pertinent)
	}
	// The funnel must actually prune: frequent candidates are orders of
	// magnitude below all candidates, as in the paper.
	if freq*10 > all {
		t.Errorf("frequent-condition pruning removed <90%%: %d of %d", freq, all)
	}
}

func TestFig4DecayShape(t *testing.T) {
	rep := run(t, "fig4")
	// For every dataset column, the first bucket must dominate the last.
	for col := 1; col < len(rep.Header); col++ {
		first := number(t, rep.Rows[0][col])
		last := number(t, rep.Rows[len(rep.Rows)-1][col])
		if first <= last {
			t.Errorf("fig4 %s: no decay (%d -> %d)", rep.Header[col], first, last)
		}
	}
}

func TestFig11MonotoneInSupport(t *testing.T) {
	rep := run(t, "fig11")
	last := map[string]int64{}
	for _, row := range rep.Rows {
		ds := row[0]
		n := number(t, row[2]) + number(t, row[3])
		if prev, ok := last[ds]; ok && n > prev {
			t.Errorf("fig11 %s: results grew with h (%d -> %d)", ds, prev, n)
		}
		last[ds] = n
	}
}

func TestFig14RemovesPatterns(t *testing.T) {
	rep := run(t, "fig14")
	if len(rep.Rows) != 2 {
		t.Fatalf("fig14 has %d rows", len(rep.Rows))
	}
	orig := number(t, rep.Rows[0][1])
	min := number(t, rep.Rows[1][1])
	if orig != 6 || min != 3 {
		t.Errorf("fig14: %d -> %d query triples, want 6 -> 3", orig, min)
	}
}

func TestAppBFindsAllUseCases(t *testing.T) {
	// At a fuller scale all planted facts must be recovered; run appB at a
	// larger scale than the rest of this file.
	runner, _ := Lookup("appB")
	rep, err := runner(Options{Scale: 0.3, Workers: 2}.normalized())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		if row[2] != "yes" {
			t.Errorf("appB: use case %q not recovered: %s", row[0], row[1])
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("nope", tinyOpts, &buf); err == nil {
		t.Errorf("no error for unknown experiment")
	}
}

func TestRunAllWritesEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	var buf bytes.Buffer
	if err := Run("all", tinyOpts, &buf); err != nil {
		t.Fatal(err)
	}
	for _, id := range IDs() {
		if !strings.Contains(buf.String(), "== "+id+":") {
			t.Errorf("combined run lacks %s", id)
		}
	}
}

func TestFmtCount(t *testing.T) {
	cases := map[int64]string{
		0: "0", 12: "12", 123: "123", 1234: "1,234",
		1234567: "1,234,567", 1000: "1,000",
	}
	for n, want := range cases {
		if got := fmtCount(n); got != want {
			t.Errorf("fmtCount(%d) = %q, want %q", n, got, want)
		}
	}
}
