package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataflow/opt"
)

// supportSweep lists, per dataset, the thresholds swept in Figs. 10 and 11.
// Mirroring the paper's plots, the larger datasets start at higher
// thresholds (the paper's own curves for DB14-PLE begin at h=100): at tiny
// thresholds almost no condition can be pruned and extraction cost grows
// quadratically with capture-group sizes (§8.4).
var supportSweep = []struct {
	Dataset    string
	Thresholds []int
}{
	{"Countries", []int{1, 10, 100, 1000}},
	{"Diseasome", []int{5, 10, 100, 1000, 10000}},
	{"LUBM-1", []int{5, 10, 100, 1000, 10000}},
	{"DrugBank", []int{10, 100, 1000, 10000}},
	{"LinkedMDB", []int{25, 100, 1000, 10000}},
	{"DB14-MPCE", []int{25, 100, 1000, 10000}},
	{"DB14-PLE", []int{100, 1000, 10000}},
}

// sweep runs the support sweep once and returns per-(dataset, h) runtime and
// result counts; both Fig. 10 and Fig. 11 are views of it. Each point is
// measured twice — optimizer on (planning against a profile shared across
// the dataset's sweep, warm after the first threshold) and optimizer off —
// so Fig. 10 doubles as the optimizer's headline wall-time comparison.
type sweepPoint struct {
	Dataset      string
	H            int
	Runtime      time.Duration
	RuntimeNoOpt time.Duration
	CINDs        int
	ARs          int
}

var sweepCache = map[string][]sweepPoint{}

func runSweep(opts Options) []sweepPoint {
	key := fmt.Sprintf("%g/%d", opts.Scale, opts.Workers)
	cacheMu.Lock()
	cached, ok := sweepCache[key]
	cacheMu.Unlock()
	if ok {
		return cached
	}
	var points []sweepPoint
	for _, entry := range supportSweep {
		ds := dataset(entry.Dataset, opts.Scale)
		// Sweep from the cheapest (highest) threshold down so the shared
		// profile is warm before the expensive low-h runs; the points are
		// re-sorted into ascending order for the report.
		prof := opt.NewProfile()
		first := len(points)
		for i := len(entry.Thresholds) - 1; i >= 0; i-- {
			h := entry.Thresholds[i]
			res, _, elapsed := timedDiscover(entry.Dataset, ds, core.Config{Support: h, Workers: opts.Workers, Profile: prof})
			_, _, elapsedOff := timedDiscover(entry.Dataset+"-noopt", ds, core.Config{Support: h, Workers: opts.Workers, DisableOptimizer: true})
			points = append(points, sweepPoint{
				Dataset:      entry.Dataset,
				H:            h,
				Runtime:      elapsed,
				RuntimeNoOpt: elapsedOff,
				CINDs:        len(res.CINDs),
				ARs:          len(res.ARs),
			})
		}
		seg := points[first:]
		for i, j := 0, len(seg)-1; i < j; i, j = i+1, j-1 {
			seg[i], seg[j] = seg[j], seg[i]
		}
	}
	cacheMu.Lock()
	sweepCache[key] = points
	cacheMu.Unlock()
	return points
}

// RunFig10 regenerates the runtime-vs-support curves: nearly constant for
// large h, rising steeply once h drops into the regime where most
// conditions survive pruning.
func RunFig10(opts Options) (*Report, error) {
	rep := &Report{
		ID:     "fig10",
		Title:  "Runtime by support threshold",
		Header: []string{"Dataset", "h", "Runtime", "No-opt"},
		Notes: []string{
			"paper: runtimes are flat for large h and rise sharply below h≈10",
			"No-opt reruns the point with the plan optimizer off; the Runtime column plans against a profile shared across the dataset's sweep",
		},
	}
	for _, p := range runSweep(opts) {
		rep.Rows = append(rep.Rows, []string{p.Dataset, fmt.Sprintf("%d", p.H), fmtDuration(p.Runtime), fmtDuration(p.RuntimeNoOpt)})
	}
	return rep, nil
}

// RunFig11 regenerates the result-size-vs-support curves: the number of
// pertinent CINDs is roughly inversely proportional to the threshold, with
// ARs accounting for a sizable share.
func RunFig11(opts Options) (*Report, error) {
	rep := &Report{
		ID:     "fig11",
		Title:  "Pertinent CINDs and ARs by support threshold",
		Header: []string{"Dataset", "h", "CINDs", "ARs"},
		Notes: []string{
			"paper: decreasing h by two orders of magnitude increases CINDs by about three; ARs are 10–50% of the CIND count",
		},
	}
	for _, p := range runSweep(opts) {
		rep.Rows = append(rep.Rows, []string{
			p.Dataset, fmt.Sprintf("%d", p.H), fmtCount(p.CINDs), fmtCount(p.ARs),
		})
	}
	return rep, nil
}
