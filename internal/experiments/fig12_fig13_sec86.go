package experiments

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/extract"
)

// memGrant emulates the 4 GB per-node memory grant of the paper's cluster
// for the variant experiments, expressed in candidate-set entries (each
// entry costs on the order of 10²  bytes across the map structures). It is
// calibrated against measured extraction loads at scale 1: RDFind stays
// below it on every dataset of Fig. 13 (its largest load is 27.4M entries,
// DB14-MPCE at h=25), while RDFind-DE exceeds it on both DBpedia datasets
// (35.8M and 31.4M entries) — the two failures the paper reports.
const memGrant = 30_000_000

// timeVariantBounded runs one pipeline variant under the memory grant.
// It returns the wall time, result cardinality, and whether the run failed
// the grant.
func timeVariantBounded(name string, opts Options, h int, v core.Variant, limit int64) (time.Duration, int, bool, error) {
	ds := dataset(name, opts.Scale)
	res, _, elapsed, err := timedTryDiscover(name, ds, core.Config{
		Support: h, Workers: opts.Workers, Variant: v, LoadLimit: limit,
	})
	if errors.Is(err, extract.ErrLoadLimit) {
		return elapsed, 0, true, nil
	}
	if err != nil {
		return 0, 0, false, err
	}
	return elapsed, len(res.CINDs) + len(res.ARs), false, nil
}

// RunFig12 regenerates the pruning-effectiveness comparison on the two
// small datasets: RDFind vs. RDFind-DE vs. RDFind-NF across thresholds.
// Reproduced property: NF (no frequent-condition pruning) is drastically
// slower everywhere; DE tracks RDFind closely at this scale. The experiment
// runs at a quarter of the global scale because NF's candidate load is
// quadratic in capture-group sizes (on the full-scale Diseasome analogue it
// needs 406M candidate entries — beyond the memory grant, so the run would
// only report FAIL).
func RunFig12(opts Options) (*Report, error) {
	thresholds := []int{5, 10, 50, 100, 500, 1000}
	sub := opts
	sub.Scale = opts.Scale * 0.25
	rep := &Report{
		ID:     "fig12",
		Title:  fmt.Sprintf("RDFind vs. RDFind-DE vs. RDFind-NF (scale %g)", sub.Scale),
		Header: []string{"Dataset", "h", "RDFind", "RDFind-DE", "RDFind-NF", "NF/RDFind"},
		Notes: []string{
			"paper: RDFind and RDFind-DE similar on small data; RDFind-NF drastically inferior in all measurements",
		},
	}
	for _, name := range []string{"Countries", "Diseasome"} {
		for _, h := range thresholds {
			tStd, _, _, err := timeVariantBounded(name, sub, h, core.Standard, memGrant)
			if err != nil {
				return nil, err
			}
			tDE, _, _, err := timeVariantBounded(name, sub, h, core.DirectExtraction, memGrant)
			if err != nil {
				return nil, err
			}
			tNF, _, nfFailed, err := timeVariantBounded(name, sub, h, core.NoFrequentConditions, memGrant)
			if err != nil {
				return nil, err
			}
			nfCell := fmtDuration(tNF)
			ratio := fmt.Sprintf("%.1f", float64(tNF)/float64(tStd))
			if nfFailed {
				nfCell = "FAIL(mem)"
				ratio = "∞"
			}
			rep.Rows = append(rep.Rows, []string{
				name, fmt.Sprintf("%d", h),
				fmtDuration(tStd), fmtDuration(tDE), nfCell, ratio,
			})
		}
	}
	return rep, nil
}

// RunFig13 regenerates the larger-dataset comparison of RDFind vs.
// RDFind-DE at a small and a large support threshold per dataset, under the
// emulated per-node memory grant. Reproduced properties: at large
// thresholds the two are close (the dominant-group machinery has little to
// do); at small thresholds RDFind is faster and, on the two DBpedia
// datasets, RDFind-DE exceeds the memory grant — the paper's crossed-out
// runs.
func RunFig13(opts Options) (*Report, error) {
	cases := []struct {
		Dataset      string
		Small, Large int
	}{
		{"LUBM-1", 10, 1000},
		{"DrugBank", 10, 1000},
		{"LinkedMDB", 25, 1000},
		{"DB14-MPCE", 25, 1000},
		{"DB14-PLE", 25, 1000},
	}
	rep := &Report{
		ID:     "fig13",
		Title:  "RDFind vs. RDFind-DE, small and large supports (FAIL(mem) = memory grant exceeded)",
		Header: []string{"Dataset", "h", "RDFind", "RDFind-DE", "DE/RDFind"},
		Notes: []string{
			"paper: 5.7x average speedup over DE at small supports; near-parity at large supports; DE failed on both DBpedia datasets at small supports",
			"at 1/250th of the paper's data volume, group sizes shrink quadratically, so the dominant-group speedup is muted; the failure pattern and the direction of the gap reproduce",
		},
	}
	for _, c := range cases {
		for _, h := range []int{c.Small, c.Large} {
			tStd, nStd, stdFailed, err := timeVariantBounded(c.Dataset, opts, h, core.Standard, memGrant)
			if err != nil {
				return nil, err
			}
			if stdFailed {
				return nil, fmt.Errorf("fig13: RDFind itself exceeded the grant on %s h=%d", c.Dataset, h)
			}
			tDE, nDE, deFailed, err := timeVariantBounded(c.Dataset, opts, h, core.DirectExtraction, memGrant)
			if err != nil {
				return nil, err
			}
			deCell := fmtDuration(tDE)
			ratio := fmt.Sprintf("%.2f", float64(tDE)/float64(tStd))
			if deFailed {
				deCell, ratio = "FAIL(mem)", "∞"
			} else if nStd != nDE {
				return nil, fmt.Errorf("fig13: variants disagree on %s h=%d: %d vs %d results", c.Dataset, h, nStd, nDE)
			}
			rep.Rows = append(rep.Rows, []string{
				c.Dataset, fmt.Sprintf("%d", h),
				fmtDuration(tStd), deCell, ratio,
			})
		}
	}
	return rep, nil
}

// RunSec86 regenerates the §8.6 comparison: extracting minimal CINDs first
// (multiple passes over the capture groups) against RDFind and RDFind-DE.
// Reproduced property: minimal-first is slower — up to 3x slower than even
// DE in the paper — because broad CINDs are usually minimal anyway and the
// extra passes cost more than the candidate reduction saves.
func RunSec86(opts Options) (*Report, error) {
	thresholds := []int{10, 100, 1000}
	rep := &Report{
		ID:     "sec86",
		Title:  "Minimal-CINDs-first strategy vs. broad-then-minimize",
		Header: []string{"Dataset", "h", "RDFind", "RDFind-DE", "Minimal-first", "MF/DE"},
		Notes: []string{
			"paper: the minimal-first strategy was up to 3x slower than RDFind-DE",
		},
	}
	for _, name := range []string{"Countries", "Diseasome"} {
		for _, h := range thresholds {
			tStd, nStd, _, err := timeVariantBounded(name, opts, h, core.Standard, 0)
			if err != nil {
				return nil, err
			}
			tDE, _, _, err := timeVariantBounded(name, opts, h, core.DirectExtraction, 0)
			if err != nil {
				return nil, err
			}
			tMF, nMF, _, err := timeVariantBounded(name, opts, h, core.MinimalFirst, 0)
			if err != nil {
				return nil, err
			}
			if nStd != nMF {
				return nil, fmt.Errorf("sec86: minimal-first disagrees on %s h=%d: %d vs %d results", name, h, nMF, nStd)
			}
			rep.Rows = append(rep.Rows, []string{
				name, fmt.Sprintf("%d", h),
				fmtDuration(tStd), fmtDuration(tDE), fmtDuration(tMF),
				fmt.Sprintf("%.2f", float64(tMF)/float64(tDE)),
			})
		}
	}
	return rep, nil
}
