package experiments

import (
	"fmt"
	"time"

	"repro/internal/cind"
	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/triplestore"
)

// lubmQ2 is LUBM query Q2: graduate students who are members of a
// department of the university they received their undergraduate degree
// from — six query triples, three of them type checks.
const lubmQ2 = "SELECT ?x ?y ?z WHERE { " +
	"?x rdf:type GraduateStudent . ?y rdf:type University . ?z rdf:type Department . " +
	"?x memberOf ?z . ?z subOrganizationOf ?y . ?x undergraduateDegreeFrom ?y }"

// RunFig14 regenerates the query-minimization effect: LUBM Q2 is executed
// in its original six-triple form and in the CIND-minimized three-triple
// form, averaged over warm repetitions. Reproduced properties: the
// minimizer removes exactly the three rdf:type patterns, results are
// identical, and the minimized query runs several times faster.
func RunFig14(opts Options) (*Report, error) {
	// The minimizing CINDs project universities; their support equals the
	// university count, so the threshold must not exceed it. Tiny
	// thresholds explode extraction cost (cf. Fig. 10), so this experiment
	// doubles the LUBM scale — twice the universities lets the threshold
	// stay clear of the blow-up region.
	ds := dataset("LUBM-1", 2*opts.Scale)
	h := int(10 * opts.Scale)
	if h < 2 {
		h = 2
	}
	res, _, _ := timedDiscover("LUBM-1(x2)", ds, core.Config{Support: h, Workers: opts.Workers})
	st := triplestore.New(ds)

	q, err := sparql.Parse(lubmQ2)
	if err != nil {
		return nil, err
	}
	min := sparql.Minimize(q, res, ds.Dict)

	timeQuery := func(query *sparql.Query, reps int) (time.Duration, int, error) {
		var rows int
		start := time.Now()
		for i := 0; i < reps; i++ {
			r, err := sparql.Execute(st, query)
			if err != nil {
				return 0, 0, err
			}
			rows = len(r.Rows)
		}
		return time.Since(start) / time.Duration(reps), rows, nil
	}
	// Warm-up, then measure.
	if _, _, err := timeQuery(q, 1); err != nil {
		return nil, err
	}
	tOrig, nOrig, err := timeQuery(q, 5)
	if err != nil {
		return nil, err
	}
	tMin, nMin, err := timeQuery(min, 5)
	if err != nil {
		return nil, err
	}
	if nOrig != nMin {
		return nil, fmt.Errorf("fig14: minimized query changed results: %d vs %d rows", nMin, nOrig)
	}
	rep := &Report{
		ID:     "fig14",
		Title:  fmt.Sprintf("LUBM Q2 minimization (%s triples, %d results)", fmtCount(ds.Size()), nOrig),
		Header: []string{"Query", "Query triples", "Avg runtime", "Speedup"},
		Rows: [][]string{
			{"original Q2", fmt.Sprintf("%d", len(q.Patterns)), fmtDuration(tOrig), "1.00"},
			{"minimized Q2", fmt.Sprintf("%d", len(min.Patterns)), fmtDuration(tMin),
				fmt.Sprintf("%.2f", float64(tOrig)/float64(tMin))},
		},
		Notes: []string{
			"paper: 6 query triples reduced to 3; about 3x faster execution (Fig. 14)",
			"minimized form: " + min.String(),
		},
	}
	return rep, nil
}

// RunAppB verifies the Appendix B use-case findings on the analogues: the
// discovery output must contain (directly or via AR equivalence) the
// planted subproperty hints, class hierarchies, knowledge-discovery facts,
// and the performance-class association rule.
func RunAppB(opts Options) (*Report, error) {
	rep := &Report{
		ID:     "appB",
		Title:  "Use-case CINDs and ARs (Appendix B analogues)",
		Header: []string{"Use case", "Statement", "Found", "Support"},
	}

	type check struct {
		useCase string
		render  string
		found   bool
		support int
	}
	var checks []check

	// DBpedia: subproperty hint and the AC/DC pair.
	{
		ds := dataset("DB14-MPCE", opts.Scale)
		res, _, _ := timedDiscover("DB14-MPCE", ds, core.Config{Support: 25, Workers: opts.Workers})
		checks = append(checks,
			findCIND(ds, res, "ontology: subproperty",
				cap(ds, rdf.Subject, "associatedBand"), cap(ds, rdf.Subject, "associatedMusicalArtist")),
			findCIND(ds, res, "ontology: subproperty (objects)",
				cap(ds, rdf.Object, "associatedBand"), cap(ds, rdf.Object, "associatedMusicalArtist")),
		)
		// The AC/DC fact needs a low threshold (support 26 in the paper).
		low, _, _ := timedDiscover("DB14-MPCE(low-h)", ds, core.Config{Support: 20, Workers: opts.Workers})
		angus := capBin(ds, rdf.Subject, "writer", "dbr:Angus_Young")
		malcolm := capBin(ds, rdf.Subject, "writer", "dbr:Malcolm_Young")
		checks = append(checks, findCIND(ds, low, "knowledge: co-written songs", angus, malcolm))
		area := capBin(ds, rdf.Subject, "areaCode", "\"559\"")
		calif := capBin(ds, rdf.Subject, "partOf", "dbr:California")
		checks = append(checks, findCIND(ds, low, "knowledge: area code 559 in California", area, calif))
	}

	// LinkedMDB: the performance-class association rule.
	{
		ds := dataset("LinkedMDB", opts.Scale)
		res, _, _ := timedDiscover("LinkedMDB", ds, core.Config{Support: 100, Workers: opts.Workers})
		perf, okP := ds.Dict.Lookup("lmdb:performance")
		typ, okT := ds.Dict.Lookup("rdf:type")
		c := check{useCase: "ontology: class discovery", render: "o=lmdb:performance → p=rdf:type"}
		if okP && okT {
			for _, r := range res.ARs {
				if r.If == cind.Unary(rdf.Object, perf) && r.Then == cind.Unary(rdf.Predicate, typ) {
					c.found, c.support = true, r.Support
				}
			}
		}
		checks = append(checks, c)
	}

	// DrugBank: nested drug targets and the classification hierarchy.
	{
		ds := dataset("DrugBank", opts.Scale)
		res, _, _ := timedDiscover("DrugBank", ds, core.Config{Support: 5, Workers: opts.Workers})
		sub := capBinSP(ds, rdf.Object, "drug00001", "target")
		super := capBinSP(ds, rdf.Object, "drug00000", "target")
		checks = append(checks, findCIND(ds, res, "knowledge: drug target nesting", sub, super))
		hydro := capBin(ds, rdf.Subject, "classificationFunction", "\"hydrolase activity\"")
		cata := capBin(ds, rdf.Subject, "classificationFunction", "\"catalytic activity\"")
		checks = append(checks, findCIND(ds, res, "ontology: classification hierarchy", hydro, cata))
	}

	for _, c := range checks {
		found := "no"
		if c.found {
			found = "yes"
		}
		rep.Rows = append(rep.Rows, []string{c.useCase, c.render, found, fmtCount(c.support)})
	}
	for _, c := range checks {
		if !c.found {
			rep.Notes = append(rep.Notes, "MISSING: "+c.render)
		}
	}
	return rep, nil

}

// cap builds a unary-predicate capture from surface forms; a zero capture if
// terms are absent.
func cap(ds *rdf.Dataset, proj rdf.Attr, pred string) *cind.Capture {
	p, ok := ds.Dict.Lookup(pred)
	if !ok {
		return nil
	}
	c := cind.Capture{Proj: proj, Cond: cind.Unary(rdf.Predicate, p)}
	return &c
}

// capBin builds a (proj, p=pred ∧ o=obj) capture.
func capBin(ds *rdf.Dataset, proj rdf.Attr, pred, obj string) *cind.Capture {
	p, okP := ds.Dict.Lookup(pred)
	o, okO := ds.Dict.Lookup(obj)
	if !okP || !okO {
		return nil
	}
	c := cind.Capture{Proj: proj, Cond: cind.Binary(rdf.Predicate, p, rdf.Object, o)}
	return &c
}

// capBinSP builds a (proj, s=subj ∧ p=pred) capture.
func capBinSP(ds *rdf.Dataset, proj rdf.Attr, subj, pred string) *cind.Capture {
	s, okS := ds.Dict.Lookup(subj)
	p, okP := ds.Dict.Lookup(pred)
	if !okS || !okP {
		return nil
	}
	c := cind.Capture{Proj: proj, Cond: cind.Binary(rdf.Subject, s, rdf.Predicate, p)}
	return &c
}

// findCIND checks whether the inclusion dep ⊆ ref is in the result, either
// literally or via implication/AR equivalence, and records its support.
func findCIND(ds *rdf.Dataset, res *cind.Result, useCase string, dep, ref *cind.Capture) (c struct {
	useCase string
	render  string
	found   bool
	support int
}) {
	c.useCase = useCase
	if dep == nil || ref == nil {
		c.render = "(terms not generated at this scale)"
		return c
	}
	inc := cind.Inclusion{Dep: *dep, Ref: *ref}
	c.render = inc.Format(ds.Dict)
	// Literal or implied by a listed CIND.
	for _, k := range res.CINDs {
		if k.Inclusion == inc || k.Inclusion.Implies(inc) {
			c.found, c.support = true, k.Support
			return c
		}
	}
	// Via AR equivalence of either side's condition.
	norm := func(cond cind.Condition) cind.Condition {
		if !cond.IsBinary() {
			return cond
		}
		parts := cond.UnaryParts()
		for _, r := range res.ARs {
			if (r.If == parts[0] && r.Then == parts[1]) || (r.If == parts[1] && r.Then == parts[0]) {
				return r.If
			}
		}
		return cond
	}
	nInc := cind.Inclusion{
		Dep: cind.Capture{Proj: dep.Proj, Cond: norm(dep.Cond)},
		Ref: cind.Capture{Proj: ref.Proj, Cond: norm(ref.Cond)},
	}
	if nInc.Dep.Cond.Uses(nInc.Dep.Proj) || nInc.Ref.Cond.Uses(nInc.Ref.Proj) {
		return c
	}
	if nInc.Trivial() {
		c.found = true
		c.support = cind.SupportOf(ds, nInc.Dep)
		return c
	}
	for _, k := range res.CINDs {
		if k.Inclusion == nInc || k.Inclusion.Implies(nInc) {
			c.found, c.support = true, k.Support
			return c
		}
	}
	return c
}
