package experiments

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cinderella"
	"repro/internal/core"
	"repro/internal/dataflow/opt"
	"repro/internal/reldb"
)

// fig7Budget emulates the baseline's 4 GB memory grant, scaled to the
// reproduction's dataset sizes. Calibrated against measured peak tracking
// entries at scale 1 (Countries standard: 15,441; Diseasome optimized:
// 34,203 at h=5, 20,171 at h=10, 16,963 at h=50) so the failure pattern of
// Fig. 7 reproduces: standard Cinderella fails on every Diseasome run,
// Cinderella* only at h=5 and h=10, and all Countries runs fit.
const fig7Budget = 18_500

// RunFig7 regenerates the RDFind-vs-Cinderella comparison: runtimes on the
// Countries and Diseasome analogues for support thresholds 5–1000, for
// RDFind (single worker, as the paper ran this on one node) and the four
// baseline configurations (standard/optimized × PostgreSQL/MySQL stand-in).
// "FAIL(oom)" marks runs aborted by the memory emulation — the hollow bars.
func RunFig7(opts Options) (*Report, error) {
	thresholds := []int{5, 10, 50, 100, 500, 1000}
	// Tracking structures grow roughly linearly with the dataset, so the
	// emulated memory grant scales with it.
	budget := int(fig7Budget * opts.Scale)
	if budget < 1000 {
		budget = 1000
	}
	rep := &Report{
		ID:     "fig7",
		Title:  "RDFind vs. Cinderella (runtimes; FAIL(oom) = aborted run)",
		Header: []string{"Dataset", "h", "RDFind", "RD/noopt", "Cin/Pos", "Cin*/Pos", "Cin/My", "Cin*/My", "Pli"},
		Notes: []string{
			"paper: RDFind wins by 8–39x on Countries, up to 419x on Diseasome; standard Cinderella fails all Diseasome runs, Cinderella* fails h=5,10",
			"the Pli column is not in the paper's figure (it excludes the variant as slower than Cinderella, §8.1); it is measured here to substantiate that claim",
			"RD/noopt reruns RDFind with the plan optimizer off; the RDFind column plans against a profile shared across the dataset's sweep (warm after the first threshold)",
		},
	}
	for _, name := range []string{"Countries", "Diseasome"} {
		ds := dataset(name, opts.Scale)
		// One profile per dataset, swept from the cheapest (highest) threshold
		// down: the cheap runs record into it first, so by the time the
		// expensive low-h runs execute the planner is warm — the self-tuning
		// loop the optimizer-off companion column is measured against. Rows
		// are re-sorted into the paper's ascending order afterwards.
		prof := opt.NewProfile()
		rowByH := map[int][]string{}
		for i := len(thresholds) - 1; i >= 0; i-- {
			h := thresholds[i]
			row := []string{name, fmt.Sprintf("%d", h)}

			_, _, elapsed := timedDiscover(name, ds, core.Config{Support: h, Workers: 1, Profile: prof})
			row = append(row, fmtDuration(elapsed))
			_, _, elapsedOff := timedDiscover(name+"-noopt", ds, core.Config{Support: h, Workers: 1, DisableOptimizer: true})
			row = append(row, fmtDuration(elapsedOff))

			for _, variant := range []struct {
				optimized bool
				join      reldb.JoinAlgorithm
			}{
				{false, reldb.HashJoin},
				{true, reldb.HashJoin},
				{false, reldb.SortMergeJoin},
				{true, reldb.SortMergeJoin},
			} {
				start := time.Now()
				_, err := cinderella.Discover(ds, cinderella.Config{
					Support:   h,
					Join:      variant.join,
					Optimized: variant.optimized,
					RowBudget: budget,
				})
				switch {
				case errors.Is(err, reldb.ErrOutOfMemory):
					row = append(row, fmt.Sprintf("FAIL(oom) >%s", fmtDuration(time.Since(start))))
				case err != nil:
					return nil, err
				default:
					row = append(row, fmtDuration(time.Since(start)))
				}
			}
			// The Pli variant's up-front position index alone exceeds the
			// grant Cinderella runs in, so it is measured with an uncapped
			// budget — the comparison is about speed, §8.1's criterion.
			start := time.Now()
			_, err := cinderella.DiscoverPLI(ds, cinderella.Config{Support: h, RowBudget: 1 << 40})
			switch {
			case errors.Is(err, reldb.ErrOutOfMemory):
				row = append(row, fmt.Sprintf("FAIL(oom) >%s", fmtDuration(time.Since(start))))
			case err != nil:
				return nil, err
			default:
				row = append(row, fmtDuration(time.Since(start)))
			}
			rowByH[h] = row
		}
		for _, h := range thresholds {
			rep.Rows = append(rep.Rows, rowByH[h])
		}
	}
	return rep, nil
}
