package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/rdf"
)

// RunFig8 regenerates the triple-scaling experiment: the Freebase analogue
// is grown in six steps and RDFind (predicates only in conditions, as in
// §8.3) is timed on each prefix size. Reproduced properties: slightly
// superlinear runtime growth, monotonically growing pertinent-CIND counts,
// and an association-rule count that peaks and then declines (adding
// triples violates exact rules).
func RunFig8(opts Options) (*Report, error) {
	spec, _ := datagen.ByName("Freebase")
	full := spec.Generate(opts.Scale)
	steps := []float64{1.0 / 6, 2.0 / 6, 3.0 / 6, 4.0 / 6, 5.0 / 6, 1}
	// The paper used h=1000 on 0.5–3 B triples; scale the threshold with
	// the dataset so the pruning regime matches.
	h := int(1000 * float64(full.Size()) / 3_000_000_000 * 1000)
	if h < 20 {
		h = 20
	}
	rep := &Report{
		ID:     "fig8",
		Title:  fmt.Sprintf("Triple scaling, Freebase analogue, h=%d, predicates only in conditions", h),
		Header: []string{"Triples", "Runtime", "CINDs", "ARs", "ns/triple"},
		Notes: []string{
			"paper: slightly quadratic runtime; CINDs grow with input; ARs peak at 1B triples then decline",
		},
	}
	for _, frac := range steps {
		n := int(float64(full.Size()) * frac)
		prefix := &rdf.Dataset{Dict: full.Dict, Triples: full.Triples[:n]}
		res, _, elapsed := timedDiscover(fmt.Sprintf("Freebase[:%s]", fmtCount(n)), prefix, core.Config{
			Support:                    h,
			Workers:                    opts.Workers,
			PredicatesOnlyInConditions: true,
		})
		rep.Rows = append(rep.Rows, []string{
			fmtCount(n),
			fmtDuration(elapsed),
			fmtCount(len(res.CINDs)),
			fmtCount(len(res.ARs)),
			fmt.Sprintf("%.0f", float64(elapsed.Nanoseconds())/float64(n)),
		})
	}
	return rep, nil
}

// RunFig9 regenerates the scale-out experiment on the LinkedMDB analogue:
// worker counts 1–20 across five support thresholds. On the single-core
// reproduction machine goroutine parallelism cannot show up as wall-clock
// speedup, so the report includes the work-balance speedup (total work over
// critical-path work, see internal/dataflow), which is the quantity load
// balancing improves and Fig. 9 measures on real hardware.
func RunFig9(opts Options) (*Report, error) {
	ds := dataset("LinkedMDB", opts.Scale)
	workerCounts := []int{1, 2, 4, 8, 10, 20}
	thresholds := []int{25, 50, 100, 1000, 10000}
	rep := &Report{
		ID:     "fig9",
		Title:  fmt.Sprintf("Scale-out, LinkedMDB analogue (%s triples)", fmtCount(ds.Size())),
		Header: []string{"Workers", "h", "Wall time", "Work-balance speedup", "CINDs+ARs"},
		Notes: []string{
			"paper: near-linear scaling, average speedup 8.14 on 10 machines",
			"wall time on this single-core machine cannot improve with workers; the balance speedup is the cluster-relevant measure",
		},
	}
	for _, h := range thresholds {
		for _, w := range workerCounts {
			res, stats, elapsed := timedDiscover("LinkedMDB", ds, core.Config{Support: h, Workers: w})
			rep.Rows = append(rep.Rows, []string{
				fmt.Sprintf("%d", w),
				fmt.Sprintf("%d", h),
				fmtDuration(elapsed),
				fmt.Sprintf("%.2f", stats.Dataflow.Speedup()),
				fmtCount(len(res.CINDs) + len(res.ARs)),
			})
		}
	}
	return rep, nil
}
