package experiments

import (
	"fmt"

	"repro/internal/core"
)

// RunFusion contrasts the dataflow engine's lazy narrow-operator fusion with
// the eager one-stage-per-operator mode (core.Config.DisableFusion). Fusion
// is performance-only — the discovered CINDs and ARs must be identical — so
// the interesting columns are the stage count, the engine's work accounting,
// and the bytes buffered into intermediate partitions, which fusion elides
// between chained narrow operators.
func RunFusion(opts Options) (*Report, error) {
	ds := dataset("Diseasome", opts.Scale)
	const h = 10
	rep := &Report{
		ID:     "fusion",
		Title:  fmt.Sprintf("Narrow-operator fusion vs. eager execution, Diseasome analogue (%s triples), h=%d", fmtCount(ds.Size()), h),
		Header: []string{"Mode", "Runtime", "Stages", "Total work", "Materialized", "CINDs+ARs"},
		Notes: []string{
			"fusion chains Map/FlatMap/Filter into one stage; results are identical either way",
		},
	}
	baseline := -1
	for _, mode := range []struct {
		label   string
		disable bool
	}{
		{"fused", false},
		{"unfused", true},
	} {
		cfg := core.Config{Support: h, Workers: opts.Workers, DisableFusion: mode.disable}
		res, stats, elapsed := timedDiscover("fusion-"+mode.label, ds, cfg)
		n := len(res.CINDs) + len(res.ARs)
		if baseline < 0 {
			baseline = n
		} else if n != baseline {
			return nil, fmt.Errorf("fusion: result changed in %s mode: %d vs %d statements", mode.label, n, baseline)
		}
		rep.Rows = append(rep.Rows, []string{
			mode.label,
			fmtDuration(elapsed),
			fmtCount(len(stats.Dataflow.Spans())),
			fmtCount(stats.Dataflow.TotalWork()),
			fmtCount(stats.MaterializedBytes) + " B",
			fmtCount(n),
		})
	}
	return rep, nil
}
