package experiments

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/cind"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/rdf"
	"repro/internal/source"
)

// RunPartition ablates the streamed-ingest placement strategies (hash vs
// subject locality) across cluster sizes on one dataset split into part
// files. Placement never changes the result — every run is asserted
// byte-identical to the single-process streamed baseline — so the columns
// that matter are the placement shuffle's wire volume and the per-rank
// balance of ingested triples: hash optimizes balance, subject locality
// trades skew for keeping each subject's triples co-resident.
func RunPartition(opts Options) (*Report, error) {
	ds := dataset("Diseasome", opts.Scale)
	const h = 10
	dir, err := os.MkdirTemp("", "rdfind-partition-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	const nparts = 4
	spec, err := writeSourceParts(ds, dir, nparts)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		ID: "partition",
		Title: fmt.Sprintf("Ingest partitioning ablation, Diseasome analogue (%s triples, %d part files), h=%d",
			fmtCount(ds.Size()), nparts, h),
		Header: []string{"Strategy", "Mode", "Runtime", "Shuffle bytes", "Balance", "Moved", "CINDs+ARs"},
		Notes: []string{
			"every row's result is byte-identical to the single-process streamed baseline (placement never changes output)",
			"balance is max/mean placed triples per partition (1.00 = perfectly even); moved is the share of triples placed off their loading rank",
			"workers stream their own part files; the shuffle column is the placement collective's wire volume",
		},
	}

	// The streamed dataset (placement is a function of the streamed dict's
	// IDs, not the generator's) for the analytic placement columns.
	resolved, err := spec.Resolve()
	if err != nil {
		return nil, err
	}
	sds, _, err := resolved.ReadDataset()
	if err != nil {
		return nil, err
	}

	res, dict, _, elapsed, err := timedTrySource("partition-local", spec,
		core.Config{Support: h, Workers: opts.Workers})
	if err != nil {
		return nil, fmt.Errorf("partition: baseline: %w", err)
	}
	want := res.Format(dict)
	balance, _ := placementCols(sds, source.HashPartitioner{}, nparts, opts.Workers)
	rep.Rows = append(rep.Rows, []string{
		"hash", "single-process", fmtDuration(elapsed), "0",
		balance, "0%", fmtCount(len(res.CINDs) + len(res.ARs)),
	})

	for _, strat := range []string{"hash", "subject"} {
		part, err := source.ByName(strat)
		if err != nil {
			return nil, err
		}
		for _, w := range []int{2, 4} {
			label := fmt.Sprintf("partition-%s-w%d", strat, w)
			res, dict, stats, elapsed, err := distSourceDiscover(label, spec, h, w, part, nil)
			if err != nil {
				return nil, fmt.Errorf("partition: %s: %w", label, err)
			}
			if got := res.Format(dict); got != want {
				return nil, fmt.Errorf("partition: %s diverged from the baseline (%d vs %d bytes)",
					label, len(got), len(want))
			}
			balance, moved := placementCols(sds, part, nparts, w)
			rep.Rows = append(rep.Rows, []string{
				strat, fmt.Sprintf("cluster w=%d", w),
				fmtDuration(elapsed),
				fmtCount(stats.Ingest.ShuffleBytes),
				balance, moved,
				fmtCount(len(res.CINDs) + len(res.ARs)),
			})
		}
	}
	return rep, nil
}

// placementCols computes the analytic placement columns for one strategy:
// balance (max/mean placed triples per partition) and the share of triples
// whose Partitioner-chosen home differs from the rank that streams their
// file (file i loads on rank i mod workers). Placement is a pure function of
// the streamed dictionary IDs, so this is exactly what every cluster run of
// the same spec does.
func placementCols(ds *rdf.Dataset, part source.Partitioner, nparts, workers int) (balance, moved string) {
	n := len(ds.Triples)
	counts := make([]int64, workers)
	var off int64
	for f := 0; f < nparts; f++ {
		lo, hi := f*n/nparts, (f+1)*n/nparts
		for _, t := range ds.Triples[lo:hi] {
			home := part.Place(t, workers)
			counts[home]++
			if home != f%workers {
				off++
			}
		}
	}
	var maxRank int64
	for _, c := range counts {
		if c > maxRank {
			maxRank = c
		}
	}
	mean := float64(n) / float64(workers)
	if mean == 0 {
		return "1.00", "0%"
	}
	return fmt.Sprintf("%.2f", float64(maxRank)/mean), fmt.Sprintf("%.0f%%", 100*float64(off)/float64(n))
}

// writeSourceParts splits a dataset into nparts sequential N-Triples files
// whose names sort in split order, so the spec's canonical document order
// reproduces the dataset exactly.
func writeSourceParts(ds *rdf.Dataset, dir string, nparts int) (source.Spec, error) {
	n := ds.Size()
	for i := 0; i < nparts; i++ {
		lo, hi := i*n/nparts, (i+1)*n/nparts
		part := &rdf.Dataset{Dict: ds.Dict, Triples: ds.Triples[lo:hi]}
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("part-%02d.nt", i)))
		if err != nil {
			return source.Spec{}, err
		}
		if err := rdf.WriteNTriples(f, part); err != nil {
			f.Close()
			return source.Spec{}, err
		}
		if err := f.Close(); err != nil {
			return source.Spec{}, err
		}
	}
	return source.Spec{Inputs: []string{filepath.Join(dir, "part-*.nt")}}, nil
}

// distSourceDiscover runs one streamed discovery on an in-process cluster:
// each worker replica streams its own file assignment through
// core.DiscoverSource, so no process (least of all the coordinator) ever
// holds the whole dataset. The coordinator's run lands in the bench
// collector via timedTrySource.
func distSourceDiscover(label string, spec source.Spec, h, workers int, part source.Partitioner, faults []dataflow.ProcFault) (*cind.Result, *rdf.Dictionary, *core.RunStats, time.Duration, error) {
	dir, err := os.MkdirTemp("", "rdfind-dist-")
	if err != nil {
		return nil, nil, nil, 0, err
	}
	defer os.RemoveAll(dir)
	addr := filepath.Join(dir, "coord.sock")
	var wg sync.WaitGroup
	cl, err := dataflow.StartCluster(dataflow.ClusterConfig{
		Workers:    workers,
		Network:    "unix",
		Addr:       addr,
		ProcFaults: faults,
		Spawn: func(rank int) error {
			wg.Add(1)
			go func() {
				defer wg.Done()
				w, err := dataflow.DialWorker("unix", addr, rank)
				if err != nil {
					return
				}
				defer w.Close()
				cfg := core.Config{Support: h, WorkerConn: w, Partitioner: part}
				if _, _, _, err := core.DiscoverSource(context.Background(), spec, cfg); err == nil {
					w.Goodbye()
				}
			}()
			return nil
		},
	})
	if err != nil {
		return nil, nil, nil, 0, err
	}
	defer wg.Wait()
	defer cl.Close()
	return timedTrySource(label, spec, core.Config{Support: h, Cluster: cl, Partitioner: part})
}
