package experiments

// The serve experiment is the concurrent-serving counterpart of the batch
// harness (ROADMAP "concurrent query serving"): after one discovery run it
// keeps the results hot behind a sparql.Engine and drives a closed-loop
// mixed workload — SPARQL queries through the engine's plan cache, CIND-based
// query minimization, and CIND lookups against the discovery result — from
// several concurrent clients, reporting sustained qps and p50/p99 latency
// per operation kind.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/cind"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/triplestore"
)

// serveClients is the closed-loop concurrency: each client issues its next
// operation as soon as the previous one completes.
const serveClients = 8

// ServeLatencyBuckets resolve the sub-millisecond range where in-memory
// query serving lives; DefaultLatencyBuckets start at 0.25ms, far too coarse
// for p50 estimation here.
var ServeLatencyBuckets = []float64{
	0.002, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 1000,
}

// serveOp is one workload operation: a kind tag plus a closure executing it.
type serveOp struct {
	kind string
	run  func(ctx context.Context) error
}

// RunServe builds the LUBM dataset, discovers CINDs once (the batch phase,
// accounted like every other experiment), then replays a seeded mixed
// workload through a concurrent sparql.Engine and reports throughput and
// latency quantiles. The summary lands in BENCH_serve.json via recordServe.
func RunServe(opts Options) (*Report, error) {
	// Same dataset/threshold regime as fig14: the minimizing CINDs must
	// survive the support threshold.
	ds := dataset("LUBM-1", 2*opts.Scale)
	h := int(10 * opts.Scale)
	if h < 2 {
		h = 2
	}
	res, _, _ := timedDiscover("LUBM-1(x2)", ds, core.Config{Support: h, Workers: opts.Workers})
	st := triplestore.New(ds)

	eng := sparql.NewEngine(st, sparql.EngineConfig{
		Workers:   opts.Workers,
		Knowledge: res,
		Timeout:   10 * time.Second,
	})
	defer eng.Close()

	ops, err := buildServeWorkload(ds, eng, res)
	if err != nil {
		return nil, err
	}
	// Closed loop: every client replays the whole operation list, offset so
	// clients do not move in lockstep.
	perClient := len(ops)
	reg := metrics.NewRegistry()
	overall := reg.HistogramWith("serve.latency", ServeLatencyBuckets)
	byKind := map[string]*metrics.Histogram{}
	for _, op := range ops {
		if _, ok := byKind[op.kind]; !ok {
			byKind[op.kind] = reg.HistogramWith("serve.latency."+op.kind, ServeLatencyBuckets)
		}
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	errCh := make(chan error, serveClients)
	start := time.Now()
	for c := 0; c < serveClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				op := ops[(i+c*perClient/serveClients)%len(ops)]
				opStart := time.Now()
				if err := op.run(ctx); err != nil {
					errCh <- fmt.Errorf("client %d op %d (%s): %w", c, i, op.kind, err)
					return
				}
				ms := float64(time.Since(opStart).Nanoseconds()) / 1e6
				overall.Observe(ms)
				byKind[op.kind].Observe(ms)
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	close(errCh)
	for err := range errCh {
		return nil, err
	}

	snap := overall.Snapshot()
	qps := float64(snap.Count) / wall.Seconds()
	stats := eng.Stats()
	recordServe(ServeSummary{
		QPS:             qps,
		P50MS:           snap.Quantile(0.50),
		P99MS:           snap.Quantile(0.99),
		PlanCacheHits:   stats.PlanCacheHits,
		PlanCacheMisses: stats.PlanCacheMisses,
	})

	rep := &Report{
		ID:    "serve",
		Title: fmt.Sprintf("Concurrent serving, %d clients over %s triples", serveClients, fmtCount(ds.Size())),
		Header: []string{"Op", "Count", "p50", "p99"},
	}
	for _, kind := range []string{"query", "minimize", "cind-lookup"} {
		h, ok := byKind[kind]
		if !ok {
			continue
		}
		s := h.Snapshot()
		rep.Rows = append(rep.Rows, []string{
			kind, fmtCount(s.Count),
			fmt.Sprintf("%.3fms", s.Quantile(0.50)),
			fmt.Sprintf("%.3fms", s.Quantile(0.99)),
		})
	}
	rep.Rows = append(rep.Rows, []string{
		"total", fmtCount(snap.Count),
		fmt.Sprintf("%.3fms", snap.Quantile(0.50)),
		fmt.Sprintf("%.3fms", snap.Quantile(0.99)),
	})
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("%.0f ops/s sustained over %s (%d engine workers)", qps, fmtDuration(wall), opts.Workers),
		fmt.Sprintf("plan cache: %d hits, %d misses over %d queries",
			stats.PlanCacheHits, stats.PlanCacheMisses, stats.Queries),
	)
	return rep, nil
}

// buildServeWorkload generates the seeded operation mix: ~60% SPARQL queries
// over repeated shapes with varying constants (so the plan cache sees both
// hits and misses), ~20% query minimizations, ~20% CIND lookups.
func buildServeWorkload(ds *rdf.Dataset, eng *sparql.Engine, res *cind.Result) ([]serveOp, error) {
	rng := rand.New(rand.NewSource(4242))

	// Harvest department surface forms: the generator's entity names depend
	// on scale, so sample them from the data instead of hardcoding.
	memberOf, ok := ds.Dict.Lookup("memberOf")
	if !ok {
		return nil, fmt.Errorf("serve: LUBM dataset lacks memberOf")
	}
	seen := map[rdf.Value]bool{}
	var depts []string
	for _, t := range ds.Triples {
		if t.P == memberOf && !seen[t.O] {
			seen[t.O] = true
			depts = append(depts, ds.Dict.Decode(t.O))
		}
	}
	if len(depts) == 0 {
		return nil, fmt.Errorf("serve: LUBM dataset has no departments")
	}

	queryTexts := func() string {
		switch rng.Intn(5) {
		case 0:
			return fmt.Sprintf("SELECT ?x WHERE { ?x rdf:type GraduateStudent . ?x memberOf %s }",
				depts[rng.Intn(len(depts))])
		case 1:
			return fmt.Sprintf("SELECT DISTINCT ?y WHERE { ?x undergraduateDegreeFrom ?y . ?x memberOf %s }",
				depts[rng.Intn(len(depts))])
		case 2:
			return fmt.Sprintf("SELECT ?x ?c WHERE { ?x takesCourse ?c . ?x memberOf %s . FILTER(?x != ?c) } LIMIT %d",
				depts[rng.Intn(len(depts))], 1+rng.Intn(10))
		case 3:
			return "SELECT DISTINCT ?p WHERE { ?s ?p ?o } LIMIT 50"
		default:
			return lubmQ2
		}
	}

	q2, err := sparql.Parse(lubmQ2)
	if err != nil {
		return nil, err
	}
	// CIND lookups emulate the advisor's hot path: does the result entail an
	// inclusion between two predicate captures?
	preds := []string{"memberOf", "subOrganizationOf", "undergraduateDegreeFrom", "takesCourse", "rdf:type"}

	var ops []serveOp
	for len(ops) < 200 {
		switch rng.Intn(5) {
		case 0, 1, 2: // 60% queries through the engine
			q, err := sparql.Parse(queryTexts())
			if err != nil {
				return nil, err
			}
			ops = append(ops, serveOp{kind: "query", run: func(ctx context.Context) error {
				_, err := eng.Execute(ctx, q)
				return err
			}})
		case 3: // 20% minimization
			ops = append(ops, serveOp{kind: "minimize", run: func(ctx context.Context) error {
				min := sparql.Minimize(q2, res, ds.Dict)
				if len(min.Patterns) == 0 {
					return fmt.Errorf("serve: minimization emptied the query")
				}
				return nil
			}})
		default: // 20% CIND lookup
			dp := preds[rng.Intn(len(preds))]
			rp := preds[rng.Intn(len(preds))]
			ops = append(ops, serveOp{kind: "cind-lookup", run: func(ctx context.Context) error {
				depID, okD := ds.Dict.Lookup(dp)
				refID, okR := ds.Dict.Lookup(rp)
				if !okD || !okR {
					return fmt.Errorf("serve: workload predicate missing from dictionary")
				}
				inc := cind.Inclusion{
					Dep: cind.Capture{Proj: rdf.Subject, Cond: cind.Unary(rdf.Predicate, depID)},
					Ref: cind.Capture{Proj: rdf.Subject, Cond: cind.Unary(rdf.Predicate, refID)},
				}
				for _, k := range res.CINDs {
					if k.Inclusion == inc || k.Inclusion.Implies(inc) {
						return nil
					}
				}
				return nil
			}})
		}
	}
	return ops, nil
}
