package experiments

import (
	"encoding/json"
	"testing"
)

// TestBenchServeRecord: the serve experiment's benchmark record must carry
// populated throughput, latency-quantile, and plan-cache fields, and they
// must survive a JSON round trip under the committed field names.
func TestBenchServeRecord(t *testing.T) {
	rec, err := RunBench("serve", Options{Scale: 0.04, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Schema != BenchSchema || rec.Experiment != "serve" {
		t.Fatalf("record header = %s/%s", rec.Schema, rec.Experiment)
	}
	if rec.QPS <= 0 {
		t.Errorf("QPS = %v, want > 0", rec.QPS)
	}
	if rec.P50MS <= 0 || rec.P99MS <= 0 || rec.P99MS < rec.P50MS {
		t.Errorf("latency quantiles implausible: p50=%v p99=%v", rec.P50MS, rec.P99MS)
	}
	if rec.PlanCacheHits == 0 {
		t.Errorf("serving workload produced no plan-cache hits")
	}
	if rec.PlanCacheMisses == 0 {
		t.Errorf("plan-cache misses = 0, first occurrence of each shape must miss")
	}
	if len(rec.Runs) == 0 {
		t.Errorf("discovery phase recorded no pipeline runs")
	}
	if len(rec.Rows) < 2 {
		t.Errorf("report has %d rows, want per-kind rows plus total", len(rec.Rows))
	}

	raw, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"qps", "p50_ms", "p99_ms", "plan_cache_hits", "plan_cache_misses"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("serialized record lacks %q (CI greps for it)", key)
		}
	}
}
