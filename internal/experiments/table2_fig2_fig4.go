package experiments

import (
	"fmt"
	"sort"

	"repro/internal/dataflow"
	"repro/internal/datagen"
	"repro/internal/fcdetect"
	"repro/internal/naive"
)

// RunTable2 regenerates Table 2: the dataset inventory with sizes. The
// paper's original triple counts are shown next to the scaled reproduction.
func RunTable2(opts Options) (*Report, error) {
	rep := &Report{
		ID:     "table2",
		Title:  "Evaluation RDF datasets",
		Header: []string{"Name", "Size [MB]", "Triples", "Distinct terms", "Paper triples"},
		Notes: []string{
			fmt.Sprintf("generated at scale %g; paper sizes shown for reference", opts.Scale),
		},
	}
	for _, spec := range datagen.Suite() {
		ds := dataset(spec.Name, opts.Scale)
		st := datagen.Describe(spec.Name, ds)
		rep.Rows = append(rep.Rows, []string{
			st.Name,
			fmt.Sprintf("%.1f", st.SizeMB),
			fmtCount(st.Triples),
			fmtCount(st.DistinctTerms),
			fmtCount(spec.PaperTriples),
		})
	}
	return rep, nil
}

// RunFig2 regenerates the search-space funnel of Fig. 2 on the Diseasome
// analogue with support threshold 10: every box of the figure, computed
// exactly by the oracle. The funnel ordering — candidates shrink by orders
// of magnitude through lazy pruning, and pertinent CINDs are a small
// fraction of all valid CINDs — is the reproduced property.
func RunFig2(opts Options) (*Report, error) {
	// The oracle materializes every valid CIND, so the funnel runs on a
	// reduced Diseasome (the paper's own numbers come from a 72k-triple
	// dataset processed on a cluster).
	scale := 0.2 * opts.Scale
	ds := dataset("Diseasome", scale)
	const h = 10
	st := naive.SearchSpace(ds, h, naive.Options{})
	rep := &Report{
		ID:     "fig2",
		Title:  fmt.Sprintf("CIND search space, Diseasome analogue (%s triples), h=%d", fmtCount(ds.Size()), h),
		Header: []string{"Box", "Count", "Paper (72,445 triples)"},
		Rows: [][]string{
			{"all CIND candidates", fmtCount(st.AllCandidates), "> 50 billion"},
			{"candidates w/ frequent conditions", fmtCount(st.FrequentCandidates), "> 77 million"},
			{"broad CIND candidates", fmtCount(st.BroadCandidates), "> 21 million"},
			{"all CINDs", fmtCount(st.AllCINDs), "> 1.3 billion"},
			{"minimal CINDs", fmtCount(st.MinimalCINDs), "> 219 million"},
			{"broad CINDs", fmtCount(st.BroadCINDs), "915,647"},
			{"pertinent CINDs", fmtCount(st.Pertinent), "879,637"},
			{"(broad) association rules", fmtCount(st.ARs), "690"},
		},
		Notes: []string{
			"funnel invariants: candidates ≥ frequent ≥ broad candidates; all ≥ minimal ≥ pertinent; broad ≥ pertinent",
		},
	}
	return rep, nil
}

// RunFig4 regenerates the condition-frequency distribution of Fig. 4 for
// the four datasets the paper plots, bucketed into powers of two. The
// reproduced property is the heavy head: the overwhelming majority of
// conditions hold on very few triples.
func RunFig4(opts Options) (*Report, error) {
	names := []string{"Diseasome", "DrugBank", "LinkedMDB", "DB14-MPCE"}
	buckets := map[string]map[int]int{} // dataset -> log2 bucket -> count
	maxBucket := 0
	for _, name := range names {
		ds := dataset(name, opts.Scale)
		ctx := dataflow.NewContext(opts.Workers)
		triples := dataflow.Parallelize(ctx, "input", ds.Triples)
		hist := fcdetect.ConditionFrequencyHistogram(triples)
		bs := map[int]int{}
		for _, b := range hist {
			lg := 0
			for f := b.Frequency; f > 1; f >>= 1 {
				lg++
			}
			bs[lg] += b.Count
			if lg > maxBucket {
				maxBucket = lg
			}
		}
		buckets[name] = bs
	}
	rep := &Report{
		ID:     "fig4",
		Title:  "Number of conditions by frequency (log2 buckets)",
		Header: append([]string{"Frequency"}, names...),
		Notes: []string{
			"reproduced property: counts decay by orders of magnitude with frequency (Zipf head)",
		},
	}
	for lg := 0; lg <= maxBucket; lg++ {
		lo := 1 << lg
		hi := (1 << (lg + 1)) - 1
		label := fmt.Sprintf("%d", lo)
		if hi > lo {
			label = fmt.Sprintf("%d–%d", lo, hi)
		}
		row := []string{label}
		any := false
		for _, name := range names {
			n := buckets[name][lg]
			if n > 0 {
				any = true
			}
			row = append(row, fmtCount(n))
		}
		if any {
			rep.Rows = append(rep.Rows, row)
		}
	}
	// Headline statistic the paper quotes: share of conditions holding on a
	// single triple.
	for _, name := range names {
		total, ones := 0, buckets[name][0]
		for _, n := range buckets[name] {
			total += n
		}
		if total > 0 {
			rep.Notes = append(rep.Notes,
				fmt.Sprintf("%s: %.0f%% of conditions have frequency 1 (paper: 86%% for DBpedia)",
					name, 100*float64(ones)/float64(total)))
		}
	}
	sort.Strings(rep.Notes[1:])
	return rep, nil
}
