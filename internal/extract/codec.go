package extract

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bloom"
	"repro/internal/cind"
	"repro/internal/dataflow"
)

// Spill codecs for the CINDExtractor's keyed stages: capture-support pruning
// (ext/capture-support), candidate-set merging (ext/merge-candidates), and
// Bloom-lineage validation (ext/validate). With these registered, a memory
// budget makes the whole extraction phase — the part of RDFind that the paper
// reports running out of memory on DBpedia at small supports — run out of
// core instead of failing.

// captureIntCodec spills Pair[cind.Capture, int].
type captureIntCodec struct{}

func (captureIntCodec) AppendKey(dst []byte, k cind.Capture) []byte {
	return cind.AppendCapture(dst, k)
}
func (captureIntCodec) DecodeKey(src []byte) cind.Capture { return cind.CaptureAt(src) }
func (captureIntCodec) AppendValue(dst []byte, v int) []byte {
	return binary.AppendVarint(dst, int64(v))
}
func (captureIntCodec) DecodeValue(src []byte) int {
	v, _ := binary.Varint(src)
	return int(v)
}

// candSet wire flags.
const (
	candSetLineage  = 1 << 0
	candSetHasExact = 1 << 1
	candSetHasBloom = 1 << 2
)

// candSetCodec spills Pair[cind.Capture, *candSet]. The value layout is a
// varint group count, one flags byte, then either a uvarint-counted list of
// 11-byte captures (exact sets) or a bloom.Filter binary image (approximate
// sets). Bitmap-backed exact sets (Config.BitmapSets) encode under the same
// exact flag as their live captures in sorted universe order, so the wire
// format is identical to the map representation's — and, unlike map
// iteration, byte-deterministic. Map iteration order is nondeterministic, so
// two encodings of the same map set may differ byte-wise — harmless, because
// the spill path only compares key bytes, never value bytes. Decoding always
// allocates fresh objects (bitmap sets decode to the map form; mergeCandSets
// handles every mixed pairing), which keeps in-place mutation safe.
type candSetCodec struct{}

func (candSetCodec) AppendKey(dst []byte, k cind.Capture) []byte {
	return cind.AppendCapture(dst, k)
}
func (candSetCodec) DecodeKey(src []byte) cind.Capture { return cind.CaptureAt(src) }

func (candSetCodec) AppendValue(dst []byte, v *candSet) []byte {
	dst = binary.AppendVarint(dst, int64(v.count))
	var flags byte
	if v.lineage {
		flags |= candSetLineage
	}
	if v.hasExact() {
		flags |= candSetHasExact
	}
	if v.approx != nil {
		flags |= candSetHasBloom
	}
	dst = append(dst, flags)
	if v.hasExact() {
		dst = binary.AppendUvarint(dst, uint64(v.liveLen()))
		v.liveRefs(func(c cind.Capture) {
			dst = cind.AppendCapture(dst, c)
		})
	}
	if v.approx != nil {
		dst = v.approx.AppendBinary(dst)
	}
	return dst
}

func (candSetCodec) DecodeValue(src []byte) *candSet {
	count, n := binary.Varint(src)
	src = src[n:]
	flags := src[0]
	src = src[1:]
	cs := &candSet{count: int(count), lineage: flags&candSetLineage != 0}
	if flags&candSetHasExact != 0 {
		sz, n := binary.Uvarint(src)
		src = src[n:]
		cs.exact = make(map[cind.Capture]struct{}, sz)
		for i := uint64(0); i < sz; i++ {
			cs.exact[cind.CaptureAt(src)] = struct{}{}
			src = src[cind.CaptureWireSize:]
		}
	}
	if flags&candSetHasBloom != 0 {
		f, _, err := bloom.FromBinary(src)
		if err != nil {
			panic(fmt.Sprintf("extract: corrupt spilled candidate set: %v", err))
		}
		cs.approx = f
	}
	return cs
}

// captureSetCodec spills Pair[cind.Capture, map[cind.Capture]struct{}] (the
// validation sets): a uvarint count followed by 11-byte captures.
type captureSetCodec struct{}

func (captureSetCodec) AppendKey(dst []byte, k cind.Capture) []byte {
	return cind.AppendCapture(dst, k)
}
func (captureSetCodec) DecodeKey(src []byte) cind.Capture { return cind.CaptureAt(src) }

func (captureSetCodec) AppendValue(dst []byte, v map[cind.Capture]struct{}) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(v)))
	for c := range v {
		dst = cind.AppendCapture(dst, c)
	}
	return dst
}

func (captureSetCodec) DecodeValue(src []byte) map[cind.Capture]struct{} {
	sz, n := binary.Uvarint(src)
	src = src[n:]
	set := make(map[cind.Capture]struct{}, sz)
	for i := uint64(0); i < sz; i++ {
		set[cind.CaptureAt(src)] = struct{}{}
		src = src[cind.CaptureWireSize:]
	}
	return set
}

// workUnitCodec carries Pair[int, workUnit] (the ext/place-units shuffle that
// spreads dominant-group slices across workers): each side of the unit is a
// uvarint-counted list of 11-byte captures.
type workUnitCodec struct{}

func (workUnitCodec) AppendKey(dst []byte, k int) []byte {
	return binary.BigEndian.AppendUint64(dst, uint64(int64(k)))
}
func (workUnitCodec) DecodeKey(src []byte) int { return int(int64(binary.BigEndian.Uint64(src))) }

func (workUnitCodec) AppendValue(dst []byte, v workUnit) []byte {
	dst = appendCaptures(dst, v.Deps)
	return appendCaptures(dst, v.All)
}

func (workUnitCodec) DecodeValue(src []byte) workUnit {
	deps, n := capturesAt(src)
	all, _ := capturesAt(src[n:])
	return workUnit{Deps: deps, All: all}
}

func appendCaptures(dst []byte, cs []cind.Capture) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(cs)))
	for _, c := range cs {
		dst = cind.AppendCapture(dst, c)
	}
	return dst
}

func capturesAt(src []byte) ([]cind.Capture, int) {
	sz, n := binary.Uvarint(src)
	cs := make([]cind.Capture, 0, sz)
	for i := uint64(0); i < sz; i++ {
		cs = append(cs, cind.CaptureAt(src[n:]))
		n += cind.CaptureWireSize
	}
	return cs, n
}

func init() {
	dataflow.RegisterPairCodec[cind.Capture, int](captureIntCodec{})
	dataflow.RegisterPairCodec[int, workUnit](workUnitCodec{})
	dataflow.RegisterPairCodec[cind.Capture, *candSet](candSetCodec{})
	dataflow.RegisterPairCodec[cind.Capture, map[cind.Capture]struct{}](captureSetCodec{})
}
