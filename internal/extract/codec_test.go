package extract

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/bloom"
	"repro/internal/cind"
	"repro/internal/dataflow"
	"repro/internal/rdf"
)

// Wire-parity tests for the bitmap candidate-set representation
// (Config.BitmapSets): a bitmap set must encode through candSetCodec to the
// same logical value as the map set holding the same captures, the bitmap
// encoding must be byte-deterministic, and mergeCandSets must intersect
// correctly across every mixed representation pairing — these are the
// invariants that let the spill path and the cluster collective frames carry
// either representation interchangeably.

// bitsSet builds a bitmap candSet over the given universe with exactly the
// live captures selected, the way ext/candidates-exact builds them.
func bitsSet(universe []cind.Capture, live ...cind.Capture) *candSet {
	refs := sortedUniverse(universe, AnyArity)
	bits := dataflow.NewBitmap(len(refs))
	for _, c := range live {
		i := searchCapture(refs, c)
		if i >= len(refs) || refs[i] != c {
			panic("bitsSet: live capture not in universe")
		}
		bits.Set(i)
	}
	return &candSet{refs: refs, bits: bits, count: 1}
}

func mapSet(live ...cind.Capture) *candSet {
	m := map[cind.Capture]struct{}{}
	for _, c := range live {
		m[c] = struct{}{}
	}
	return &candSet{exact: m, count: 1}
}

func liveMap(cs *candSet) map[cind.Capture]struct{} {
	m := map[cind.Capture]struct{}{}
	cs.liveRefs(func(c cind.Capture) { m[c] = struct{}{} })
	return m
}

// TestCandSetCodecBitmapMapParity: a bitmap set and a map set holding the
// same live captures decode to the same exact set through the spill/wire
// codec, and the bitmap encoding (sorted universe order) is deterministic —
// two encodings of the same set are byte-identical.
func TestCandSetCodecBitmapMapParity(t *testing.T) {
	var universe []cind.Capture
	for v := rdf.Value(0); v < 9; v++ {
		universe = append(universe, cap(rdf.Subject, cind.Unary(rdf.Predicate, v)))
	}
	live := []cind.Capture{universe[0], universe[3], universe[4], universe[8]}

	codec := candSetCodec{}
	bm := bitsSet(universe, live...)
	mp := mapSet(live...)

	encBits := codec.AppendValue(nil, bm)
	encMap := codec.AppendValue(nil, mp)

	decBits := codec.DecodeValue(encBits)
	decMap := codec.DecodeValue(encMap)
	// Decoding always yields the map form; both representations must decode
	// to the same live set with the same bookkeeping.
	if decBits.refs != nil {
		t.Error("decoded bitmap set still carries a universe (should be map form)")
	}
	if !reflect.DeepEqual(decBits.exact, decMap.exact) {
		t.Errorf("decoded sets differ:\nbitmap: %v\nmap:    %v", decBits.exact, decMap.exact)
	}
	if !reflect.DeepEqual(liveMap(bm), decBits.exact) {
		t.Errorf("bitmap round-trip lost captures: %v vs %v", liveMap(bm), decBits.exact)
	}
	if decBits.count != 1 || decBits.lineage || decBits.approx != nil {
		t.Errorf("bitmap round-trip bookkeeping: %+v", decBits)
	}

	// Bitmap encodings are deterministic (sorted universe order), so repeated
	// encodings — and encodings of an independently built equal set — are
	// byte-identical. Map encodings make no such promise (map order).
	if again := codec.AppendValue(nil, bm); !bytes.Equal(encBits, again) {
		t.Error("re-encoding the same bitmap set produced different bytes")
	}
	rebuilt := bitsSet(universe, live[3], live[1], live[0], live[2])
	if enc := codec.AppendValue(nil, rebuilt); !bytes.Equal(encBits, enc) {
		t.Error("equal bitmap sets encoded to different bytes")
	}

	// All-cleared bitmap (every candidate refuted): encodes as an empty exact
	// set, still flagged exact so the decode keeps it distinguishable from a
	// pure-Bloom set.
	empty := bitsSet(universe)
	dec := codec.DecodeValue(codec.AppendValue(nil, empty))
	if dec.exact == nil || len(dec.exact) != 0 {
		t.Errorf("empty bitmap set decoded to %+v, want empty exact map", dec)
	}
}

// TestMergeCandSetsBitmap covers the bitmap arms of Algorithm 3's merge:
// bits x bits, bits x map, bits x bloom (and the swapped orders), with
// count/lineage bookkeeping and no mutation of the shared universe slice.
func TestMergeCandSetsBitmap(t *testing.T) {
	mk := func(v rdf.Value) cind.Capture { return cap(rdf.Subject, cind.Unary(rdf.Predicate, v)) }
	c1, c2, c3, c4 := mk(1), mk(2), mk(3), mk(4)
	universe := []cind.Capture{c1, c2, c3, c4}

	want := func(t *testing.T, m *candSet, count int, lineage bool, caps ...cind.Capture) {
		t.Helper()
		if m.count != count || m.lineage != lineage {
			t.Errorf("merge bookkeeping: count=%d lineage=%v, want %d/%v", m.count, m.lineage, count, lineage)
		}
		if got, exp := liveMap(m), liveMap(mapSet(caps...)); !reflect.DeepEqual(got, exp) {
			t.Errorf("merge kept %v, want %v", got, exp)
		}
	}

	// bits ∩ bits over the same universe.
	want(t, mergeCandSets(bitsSet(universe, c1, c2, c3), bitsSet(universe, c2, c3, c4)), 2, false, c2, c3)

	// bits ∩ bits over different universes (groups met in the reduce).
	other := []cind.Capture{c2, c3}
	want(t, mergeCandSets(bitsSet(universe, c1, c2), bitsSet(other, c2, c3)), 2, false, c2)

	// bits ∩ map, both orders.
	want(t, mergeCandSets(bitsSet(universe, c1, c2, c4), mapSet(c2, c3, c4)), 2, false, c2, c4)
	want(t, mergeCandSets(mapSet(c2, c3, c4), bitsSet(universe, c1, c2, c4)), 2, false, c2, c4)

	// bits ∩ bloom: true members survive the probe, lineage is inherited.
	f := bloom.NewBytes(64, 4)
	f.Add(c2.Key())
	blm := &candSet{approx: f, count: 1, lineage: true}
	m := mergeCandSets(bitsSet(universe, c1, c2), blm)
	if !m.lineage || m.count != 2 {
		t.Errorf("bits/bloom bookkeeping: %+v", m)
	}
	if !m.containsRef(c2) {
		t.Error("bits/bloom merge dropped a true member")
	}

	// The shared universe slice is never mutated: siblings of the same group
	// keep their own selections after one dependent's merge clears bits.
	shared := sortedUniverse(universe, AnyArity)
	depA := &candSet{refs: shared, bits: dataflow.NewBitmap(len(shared)), count: 1}
	depA.bits.SetAll()
	depB := &candSet{refs: shared, bits: dataflow.NewBitmap(len(shared)), count: 1}
	depB.bits.SetAll()
	before := append([]cind.Capture(nil), shared...)
	mergeCandSets(depA, mapSet(c1))
	if !reflect.DeepEqual(shared, before) {
		t.Error("merge reordered the shared universe slice")
	}
	if depB.bits.Count() != len(shared) {
		t.Error("merging one dependent cleared a sibling's bits")
	}
}

// TestBroadCINDsBitmapSetsEquivalence: extraction with bitmap candidate sets
// produces exactly the CINDs (and supports) of the map representation, across
// worker counts and both extraction strategies.
func TestBroadCINDsBitmapSetsEquivalence(t *testing.T) {
	ds := randomDataset(300, 4)
	for _, w := range []int{1, 3} {
		for _, direct := range []bool{false, true} {
			run := func(bitmap bool) map[cind.CIND]bool {
				got, err := BroadCINDs(groupsFromDataset(dataflow.NewContext(w), ds),
					Config{Support: 2, DirectExtraction: direct, BitmapSets: bitmap})
				if err != nil {
					t.Fatalf("w=%d direct=%v bitmap=%v: %v", w, direct, bitmap, err)
				}
				set := map[cind.CIND]bool{}
				for _, c := range got {
					set[c] = true
				}
				return set
			}
			bm, mp := run(true), run(false)
			if !reflect.DeepEqual(bm, mp) {
				t.Errorf("w=%d direct=%v: bitmap sets found %d CINDs, map sets %d",
					w, direct, len(bm), len(mp))
			}
			if len(bm) == 0 {
				t.Errorf("w=%d direct=%v: extraction found nothing (vacuous comparison)", w, direct)
			}
		}
	}
}
