// Package extract implements RDFind's CINDExtractor (§7, Fig. 6): it turns
// capture groups into the set of broad CINDs and then consolidates them into
// the pertinent (minimal ∧ broad) CINDs.
//
// The extractor follows the paper's recipe for cracking dominant capture
// groups: capture-support pruning (the second phase of lazy pruning), load
// estimation and work-unit splitting, the approximate-validate candidate
// generation with fixed-size Bloom filters (Algorithm 3), and a final
// validation pass for candidates with Bloom lineage. Disabling the pruning
// and balancing steps yields the RDFind-DE baseline of §8.5; both variants
// produce identical results.
package extract

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/bloom"
	"repro/internal/capture"
	"repro/internal/cind"
	"repro/internal/dataflow"
)

// ErrLoadLimit reports that the estimated extraction load (the number of
// candidate-set entries generation would materialize) exceeds the configured
// limit. It stands in for the out-of-memory failures the paper observed for
// RDFind-DE on the DBpedia datasets at small supports (Fig. 13).
var ErrLoadLimit = errors.New("extract: extraction load exceeds the configured limit")

// Arity restricts which captures may serve as dependent or referenced side
// of generated candidates. The minimal-first strategy (§8.6) uses it to
// extract one condition-arity class (Ψ1:1, Ψ1:2, Ψ2:1, Ψ2:2) per pass.
type Arity uint8

const (
	AnyArity Arity = iota
	UnaryOnly
	BinaryOnly
)

func (a Arity) matches(c cind.Capture) bool {
	switch a {
	case UnaryOnly:
		return !c.Cond.IsBinary()
	case BinaryOnly:
		return c.Cond.IsBinary()
	}
	return true
}

// Config tunes the extractor.
type Config struct {
	// Support is the broadness threshold h.
	Support int
	// DirectExtraction disables capture-support pruning, load balancing,
	// and the approximate-validate strategy, reverting to the basic
	// extraction of §7.1 (the RDFind-DE variant).
	DirectExtraction bool
	// BloomBytes sizes the per-candidate-set Bloom filters; the paper found
	// 64 bytes to perform best (§7.2). Zero selects 64.
	BloomBytes int
	// DepArity and RefArity restrict candidate generation to one condition
	// arity per side (minimal-first strategy). The zero value admits all.
	DepArity, RefArity Arity
	// LoadLimit caps the estimated candidate-set entries (|G|² per exact
	// group, |G| per Bloom-encoded work unit); 0 means unlimited. Exceeding
	// it aborts extraction with ErrLoadLimit, emulating a memory-bound run.
	LoadLimit int64
	// ForceBloomUnits routes every capture group through the Bloom-encoded
	// work-unit path, never materializing exact |G|² candidate sets. This is
	// the degraded, memory-frugal strategy: O(|G|) load per group at the cost
	// of an extra validation pass. Results are identical to the exact
	// strategy (Bloom false positives cannot survive validation).
	ForceBloomUnits bool
	// DegradeOnLoadLimit turns a LoadLimit breach into a degradation point:
	// instead of failing with ErrLoadLimit, extraction is re-planned with
	// ForceBloomUnits and only fails if even the degraded load exceeds the
	// limit. Ignored under DirectExtraction, which the paper defines as
	// exact-only (its memory failures are the point of Fig. 13).
	DegradeOnLoadLimit bool
	// SpillOnLoadLimit turns a LoadLimit breach into a spill point instead:
	// the exact plan is kept unchanged and the breach is simply recorded,
	// trusting the engine's memory budget to take the oversized shuffle state
	// out of core (the Context must carry a budget and the extract codecs are
	// registered at package load). It takes precedence over
	// DegradeOnLoadLimit and — unlike degradation — also applies under
	// DirectExtraction, since spilling does not change the plan and therefore
	// cannot violate the exact-only definition of RDFind-DE.
	SpillOnLoadLimit bool
	// BitmapSets selects the columnar representation for exact candidate
	// sets: one sorted referenced-capture universe shared by all dependent
	// captures of a group, plus a per-dependent selection bitmap over it —
	// |G|/64 words per candidate instead of a |G|-entry hash map. Merging
	// clears bits instead of deleting keys, and the wire/spill codec encodes
	// the live captures under the same exact-set flag as the map
	// representation, so encodings stay format-compatible (and become
	// deterministic: universe order is sorted). Results are identical; core
	// enables it whenever the engine's columnar batch execution is on.
	BitmapSets bool
}

// Outcome reports how an extraction ran: the estimated load of the executed
// strategy and whether the exact strategy was abandoned for Bloom work units
// after a LoadLimit breach.
type Outcome struct {
	// EstimatedLoad is the candidate-set entries of the strategy that
	// actually ran (or was attempted last).
	EstimatedLoad int64
	// Degraded reports that DegradeOnLoadLimit re-planned the extraction
	// with Bloom work-unit candidate sets.
	Degraded bool
	// Spilled reports that SpillOnLoadLimit absorbed a LoadLimit breach: the
	// exact plan ran unchanged on the engine's spill-to-disk path.
	Spilled bool
}

func (c Config) bloomBytes() int {
	if c.BloomBytes <= 0 {
		return 64
	}
	return c.BloomBytes
}

// candSet is a CIND candidate set: a dependent capture's referenced captures
// plus the number of capture groups seen so far (which sums to the support).
// Exactly one representation is set: an exact hash map, an exact bitmap
// (refs+bits: the sorted capture universe of the originating group, shared by
// all of its dependents, with bit i live meaning refs[i] is a candidate — the
// columnar form selected by Config.BitmapSets), or a Bloom filter. The
// lineage flag records whether any Bloom filter took part in building the
// set; such candidates are uncertain and require validation (Algorithm 3 —
// we track lineage with OR rather than the paper's AND so that Bloom false
// positives can never leak into results).
type candSet struct {
	exact   map[cind.Capture]struct{}
	refs    []cind.Capture
	bits    dataflow.Bitmap
	approx  *bloom.Filter
	count   int
	lineage bool
}

// liveRefs iterates the exact referenced captures, whichever representation
// holds them (never called on pure-Bloom sets). Bitmap sets iterate in sorted
// universe order; map sets in map order — consumers are order-insensitive.
func (cs *candSet) liveRefs(f func(cind.Capture)) {
	if cs.refs != nil {
		cs.bits.ForEach(func(i int) { f(cs.refs[i]) })
		return
	}
	for r := range cs.exact {
		f(r)
	}
}

// liveLen returns the exact-set cardinality (0 for pure-Bloom sets).
func (cs *candSet) liveLen() int {
	if cs.refs != nil {
		return cs.bits.Count()
	}
	return len(cs.exact)
}

// hasExact reports whether the set carries an exact representation (map or
// bitmap) rather than only a Bloom filter.
func (cs *candSet) hasExact() bool { return cs.exact != nil || cs.refs != nil }

// containsRef reports exact-set membership (map lookup or binary search over
// the sorted universe plus a bit probe).
func (cs *candSet) containsRef(r cind.Capture) bool {
	if cs.refs != nil {
		i := searchCapture(cs.refs, r)
		return i < len(cs.refs) && cs.refs[i] == r && cs.bits.Get(i)
	}
	_, ok := cs.exact[r]
	return ok
}

// captureLess orders captures by (projection, condition attributes, condition
// values) — the total order of the bitmap universes.
func captureLess(a, b cind.Capture) bool {
	if a.Proj != b.Proj {
		return a.Proj < b.Proj
	}
	if a.Cond.A1 != b.Cond.A1 {
		return a.Cond.A1 < b.Cond.A1
	}
	if a.Cond.A2 != b.Cond.A2 {
		return a.Cond.A2 < b.Cond.A2
	}
	if a.Cond.V1 != b.Cond.V1 {
		return a.Cond.V1 < b.Cond.V1
	}
	return a.Cond.V2 < b.Cond.V2
}

// searchCapture returns the first index i with !captureLess(refs[i], c),
// i.e. the binary-search insertion point of c in a sorted universe.
func searchCapture(refs []cind.Capture, c cind.Capture) int {
	return sort.Search(len(refs), func(i int) bool { return !captureLess(refs[i], c) })
}

// workUnit is a slice of a dominant capture group: the dependent captures
// this unit is responsible for, plus the full group as referenced captures.
type workUnit struct {
	Deps []cind.Capture
	All  []cind.Capture
}

// BroadCINDs extracts all valid CINDs with support ≥ cfg.Support from the
// capture groups. The result includes logically trivial inclusions (they are
// valid CINDs); Minimize removes them. Reflexive statements are excluded.
// Possible errors are ErrLoadLimit (only when cfg.LoadLimit is set) and an
// engine failure surfaced from the dataset's Context.
func BroadCINDs(groups *dataflow.Dataset[capture.Group], cfg Config) ([]cind.CIND, error) {
	res, _, err := BroadCINDsOutcome(groups, cfg)
	return res, err
}

// BroadCINDsOutcome is BroadCINDs with an execution report: the estimated
// candidate-set load and whether the run degraded to Bloom work units.
func BroadCINDsOutcome(groups *dataflow.Dataset[capture.Group], cfg Config) ([]cind.CIND, Outcome, error) {
	h := cfg.Support
	outcome := Outcome{Degraded: false}

	// Expand every group to its implication closure so that Lemma 3's
	// membership test sees subsumed unary captures (see DESIGN.md).
	// pruneBySupport consumes the closure through two separate narrow chains
	// (the capture counters and the group pruning); the optimizer's
	// shared-prefix rule pins it — at the second consumer on a cold run, at
	// the first once a profile remembers the sharing — where a hand-placed
	// Materialize call used to.
	closed := dataflow.Map(groups, "ext/close", capture.Close)

	// Capture-support pruning (steps 1–3): captures occurring in fewer than
	// h groups cannot take part in any broad CIND — neither as dependent
	// (support too small) nor as referenced (a referenced capture's support
	// bounds the dependent one's from above).
	if !cfg.DirectExtraction {
		closed = pruneBySupport(closed, h)
	}

	forced := cfg.ForceBloomUnits && !cfg.DirectExtraction
	normal, units := planStrategy(closed, cfg, forced)

	// Memory guard: candidate generation materializes |G|² entries per
	// exact group and O(|G|) per Bloom-encoded work unit. The load is known
	// exactly before any allocation, so a bounded run can abort cleanly —
	// or, with DegradeOnLoadLimit, fall back to the all-Bloom strategy whose
	// load is linear rather than quadratic in the group sizes.
	outcome.EstimatedLoad = estimateLoad(normal, units)
	if cfg.LoadLimit > 0 && outcome.EstimatedLoad > cfg.LoadLimit {
		switch {
		case cfg.SpillOnLoadLimit:
			// Keep the exact plan: the engine's memory budget will spill the
			// oversized candidate-set state to disk instead of us trading it
			// for extra Bloom validation work.
			outcome.Spilled = true
		case !cfg.DegradeOnLoadLimit || cfg.DirectExtraction || forced:
			return nil, outcome, fmt.Errorf("%w: %d candidate entries > limit %d",
				ErrLoadLimit, outcome.EstimatedLoad, cfg.LoadLimit)
		default:
			forced = true
			outcome.Degraded = true
			normal, units = planStrategy(closed, cfg, forced)
			outcome.EstimatedLoad = estimateLoad(normal, units)
			if outcome.EstimatedLoad > cfg.LoadLimit {
				return nil, outcome, fmt.Errorf("%w: degraded run still needs %d candidate entries > limit %d",
					ErrLoadLimit, outcome.EstimatedLoad, cfg.LoadLimit)
			}
		}
	}

	// Candidate generation (step 7). Normal groups enumerate exact
	// referenced-capture sets; work units encode the group in a fixed-size
	// Bloom filter, shared per group and cloned per dependent capture.
	bloomBytes := cfg.bloomBytes()
	normalCands := dataflow.FlatMap(normal, "ext/candidates-exact",
		func(g capture.Group, emit func(dataflow.Pair[cind.Capture, *candSet])) {
			if cfg.BitmapSets {
				// One sorted universe per group, shared by every dependent;
				// each dependent's set is an all-ones bitmap with its own
				// capture cleared — |G|/64 words instead of a |G|-entry map.
				universe := sortedUniverse(g.Captures, cfg.RefArity)
				for _, dep := range g.Captures {
					if !cfg.DepArity.matches(dep) {
						continue
					}
					bits := dataflow.NewBitmap(len(universe))
					bits.SetAll()
					if i := searchCapture(universe, dep); i < len(universe) && universe[i] == dep {
						bits.Clear(i)
					}
					emit(dataflow.Pair[cind.Capture, *candSet]{Key: dep, Val: &candSet{refs: universe, bits: bits, count: 1}})
				}
				return
			}
			for _, dep := range g.Captures {
				if !cfg.DepArity.matches(dep) {
					continue
				}
				refs := make(map[cind.Capture]struct{}, len(g.Captures)-1)
				for _, r := range g.Captures {
					if r != dep && cfg.RefArity.matches(r) {
						refs[r] = struct{}{}
					}
				}
				emit(dataflow.Pair[cind.Capture, *candSet]{Key: dep, Val: &candSet{exact: refs, count: 1}})
			}
		})
	unitCands := dataflow.FlatMap(units, "ext/candidates-bloom",
		func(u workUnit, emit func(dataflow.Pair[cind.Capture, *candSet])) {
			shared := bloom.NewBytes(bloomBytes, 4)
			for _, r := range u.All {
				if cfg.RefArity.matches(r) {
					shared.Add(r.Key())
				}
			}
			for _, dep := range u.Deps {
				if !cfg.DepArity.matches(dep) {
					continue
				}
				emit(dataflow.Pair[cind.Capture, *candSet]{
					Key: dep,
					Val: &candSet{approx: shared.Clone(), count: 1, lineage: true},
				})
			}
		})

	// Merge candidate sets per dependent capture (Algorithm 3, step 8).
	all := dataflow.Union(normalCands, unitCands, "ext/concat")
	merged := dataflow.ReduceByKey(all, "ext/merge-candidates", mergeCandSets)

	// Certain candidates become CINDs directly; uncertain ones (Bloom
	// lineage) go through the validation pass (steps 9–10).
	var out []cind.CIND
	uncertain := make(map[cind.Capture]*candSet)
	for _, p := range dataflow.Collect(merged) {
		dep, cs := p.Key, p.Val
		if cs.count < h {
			continue // not broad (only reachable in direct extraction)
		}
		if !cs.lineage {
			cs.liveRefs(func(r cind.Capture) {
				if r != dep {
					out = append(out, cind.CIND{Inclusion: cind.Inclusion{Dep: dep, Ref: r}, Support: cs.count})
				}
			})
			continue
		}
		if cs.hasExact() && cs.liveLen() == 0 {
			continue // dead: no candidate referenced captures remain
		}
		uncertain[dep] = cs
	}
	out = append(out, validate(units, uncertain, cfg.RefArity)...)
	// A failed engine (worker fault, cancellation) drains every stage above
	// into empty datasets; surface the failure instead of an empty result.
	if err := groups.Context().Err(); err != nil {
		return nil, outcome, err
	}
	reg := groups.Context().Stats().Metrics()
	reg.Counter("extract.load.estimated").Add(outcome.EstimatedLoad)
	reg.Counter("extract.broad_cinds").Add(int64(len(out)))
	if outcome.Degraded {
		reg.Counter("extract.degraded_runs").Inc()
	}
	if outcome.Spilled {
		reg.Counter("extract.spill_planned_runs").Inc()
	}
	return out, outcome, nil
}

// planStrategy selects how groups become candidate sets: exact sets for every
// group (direct extraction), the paper's hybrid of exact normal groups plus
// Bloom work units for dominant ones (standard), or Bloom work units for all
// groups (the degraded strategy).
func planStrategy(closed *dataflow.Dataset[capture.Group], cfg Config, forced bool) (*dataflow.Dataset[capture.Group], *dataflow.Dataset[workUnit]) {
	switch {
	case cfg.DirectExtraction:
		return closed, emptyUnits(closed)
	case forced:
		return emptyGroups(closed), splitAll(closed)
	default:
		return splitDominant(closed)
	}
}

// estimateLoad sums the candidate-set entries generation will allocate.
func estimateLoad(normal *dataflow.Dataset[capture.Group], units *dataflow.Dataset[workUnit]) int64 {
	loads := dataflow.MapPartitions(normal, "ext/load-normal",
		func(_ int, groups []capture.Group, emit func(int64)) {
			var load int64
			for _, g := range groups {
				n := int64(len(g.Captures))
				load += n * n
			}
			emit(load)
		})
	total, _ := dataflow.GlobalReduce(loads, "ext/load-sum", func(a, b int64) int64 { return a + b })
	unitLoads := dataflow.MapPartitions(units, "ext/load-units",
		func(_ int, us []workUnit, emit func(int64)) {
			var load int64
			for _, u := range us {
				load += int64(len(u.Deps)) + int64(len(u.All))
			}
			emit(load)
		})
	unitTotal, _ := dataflow.GlobalReduce(unitLoads, "ext/load-units-sum", func(a, b int64) int64 { return a + b })
	return total + unitTotal
}

// pruneBySupport removes captures with fewer than h group memberships from
// every group. Groups that become empty disappear; groups that keep members
// still matter, because each group a dependent capture occurs in both counts
// toward its support and constrains its referenced captures.
func pruneBySupport(closed *dataflow.Dataset[capture.Group], h int) *dataflow.Dataset[capture.Group] {
	counters := dataflow.FlatMap(closed, "ext/capture-counters",
		func(g capture.Group, emit func(dataflow.Pair[cind.Capture, int])) {
			for _, c := range g.Captures {
				emit(dataflow.Pair[cind.Capture, int]{Key: c, Val: 1})
			}
		})
	supports := dataflow.ReduceByKey(counters, "ext/capture-support", func(a, b int) int { return a + b })
	low := dataflow.Filter(supports, "ext/prunable",
		func(p dataflow.Pair[cind.Capture, int]) bool { return p.Val < h })
	prunable := make(map[cind.Capture]struct{})
	for _, p := range dataflow.Collect(low) {
		prunable[p.Key] = struct{}{}
	}
	pruned := dataflow.Map(closed, "ext/prune-groups", func(g capture.Group) capture.Group {
		kept := make([]cind.Capture, 0, len(g.Captures))
		for _, c := range g.Captures {
			if _, drop := prunable[c]; !drop {
				kept = append(kept, c)
			}
		}
		return capture.Group{Captures: kept}
	})
	return dataflow.Filter(pruned, "ext/drop-empty",
		func(g capture.Group) bool { return len(g.Captures) > 0 })
}

// splitDominant implements the load balancing of §7.2 (steps 4–7): the
// processing load of a group is |G|²; groups above the per-worker average
// are dominant and get split into w work units that are spread across all
// workers. Normal groups pass through unchanged.
func splitDominant(closed *dataflow.Dataset[capture.Group]) (*dataflow.Dataset[capture.Group], *dataflow.Dataset[workUnit]) {
	ctx := closed.Context()
	w := ctx.Workers()

	// Estimate per-worker loads and derive the average (steps 4–6).
	loads := dataflow.MapPartitions(closed, "ext/estimate-load",
		func(_ int, groups []capture.Group, emit func(int64)) {
			var load int64
			for _, g := range groups {
				n := int64(len(g.Captures))
				load += n * n
			}
			emit(load)
		})
	total, _ := dataflow.GlobalReduce(loads, "ext/total-load", func(a, b int64) int64 { return a + b })
	avg := total / int64(w)

	isDominant := func(g capture.Group) bool {
		n := int64(len(g.Captures))
		return n*n > avg
	}
	normal := dataflow.Filter(closed, "ext/normal-groups",
		func(g capture.Group) bool { return !isDominant(g) })
	dominant := dataflow.Filter(closed, "ext/dominant-groups", isDominant)
	return normal, splitUnits(dominant, w)
}

// splitAll turns every group into Bloom-encoded work units — the degraded,
// linear-load strategy selected by ForceBloomUnits or a LoadLimit breach.
func splitAll(closed *dataflow.Dataset[capture.Group]) *dataflow.Dataset[workUnit] {
	return splitUnits(closed, closed.Context().Workers())
}

// splitUnits splits each group into up to w work units and spreads them
// evenly across the workers.
func splitUnits(groups *dataflow.Dataset[capture.Group], w int) *dataflow.Dataset[workUnit] {
	units := dataflow.FlatMap(groups, "ext/split-units",
		func(g capture.Group, emit func(dataflow.Pair[int, workUnit])) {
			n := len(g.Captures)
			per := (n + w - 1) / w
			spread := int(g.Captures[0].Key()) // stable per-group offset
			for i := 0; i*per < n; i++ {
				lo, hi := i*per, (i+1)*per
				if hi > n {
					hi = n
				}
				emit(dataflow.Pair[int, workUnit]{
					Key: spread + i,
					Val: workUnit{Deps: g.Captures[lo:hi:hi], All: g.Captures},
				})
			}
		})
	placed := dataflow.PartitionBy(units, "ext/place-units",
		func(p dataflow.Pair[int, workUnit]) int { return p.Key })
	return dataflow.Map(placed, "ext/unwrap-units",
		func(p dataflow.Pair[int, workUnit]) workUnit { return p.Val })
}

// emptyUnits returns an empty work-unit dataset in the same context.
func emptyUnits(d *dataflow.Dataset[capture.Group]) *dataflow.Dataset[workUnit] {
	return dataflow.Parallelize(d.Context(), "ext/no-units", []workUnit(nil))
}

// emptyGroups returns an empty group dataset in the same context.
func emptyGroups(d *dataflow.Dataset[capture.Group]) *dataflow.Dataset[capture.Group] {
	return dataflow.Parallelize(d.Context(), "ext/no-normal", []capture.Group(nil))
}

// mergeCandSets is Algorithm 3: intersect two candidate sets, distinguishing
// exact/exact, Bloom/Bloom, bitmap, and mixed cases, summing the group counts
// and propagating Bloom lineage. The intersection is associative and
// commutative — probing an element against two Bloom filters succeeds exactly
// when it passes their bit-wise AND — so reduction order does not matter.
func mergeCandSets(a, b *candSet) *candSet {
	count := a.count + b.count
	lineage := a.lineage || b.lineage
	var res *candSet
	switch {
	case a.refs != nil || b.refs != nil:
		res = mergeIntoBits(a, b)
	case a.exact != nil && b.exact != nil:
		// Intersect the smaller into the larger for speed.
		small, large := a, b
		if len(small.exact) > len(large.exact) {
			small, large = large, small
		}
		for r := range small.exact {
			if _, ok := large.exact[r]; !ok {
				delete(small.exact, r)
			}
		}
		res = small
	case a.approx != nil && b.approx != nil:
		a.approx.Intersect(b.approx)
		res = a
	default:
		// Mixed: probe the exact side against the Bloom filter and keep the
		// survivors as the (still possibly over-approximate) exact set.
		exact, blm := a, b
		if exact.exact == nil {
			exact, blm = b, a
		}
		for r := range exact.exact {
			if !blm.approx.Test(r.Key()) {
				delete(exact.exact, r)
			}
		}
		res = exact
	}
	res.count = count
	res.lineage = lineage
	return res
}

// mergeIntoBits intersects when at least one side is bitmap-backed: the
// bitmap side (the smaller-cardinality one if both are) probes each live
// capture against the other representation and clears misses. Clearing bits
// never touches the shared universe slice, so siblings of the originating
// group are unaffected. The caller overwrites count/lineage.
func mergeIntoBits(a, b *candSet) *candSet {
	if a.refs == nil || (b.refs != nil && a.bits.Count() > b.bits.Count()) {
		a, b = b, a
	}
	switch {
	case b.refs != nil:
		a.bits.ForEach(func(i int) {
			if !b.containsRef(a.refs[i]) {
				a.bits.Clear(i)
			}
		})
	case b.exact != nil:
		a.bits.ForEach(func(i int) {
			if _, ok := b.exact[a.refs[i]]; !ok {
				a.bits.Clear(i)
			}
		})
	default:
		a.bits.ForEach(func(i int) {
			if !b.approx.Test(a.refs[i].Key()) {
				a.bits.Clear(i)
			}
		})
	}
	return a
}

// sortedUniverse filters a group's captures by the referenced arity and
// sorts a fresh copy (the group's own slice is shared with work units and
// must not be reordered) — the capture universe bitmap sets index into.
func sortedUniverse(captures []cind.Capture, ref Arity) []cind.Capture {
	universe := make([]cind.Capture, 0, len(captures))
	for _, c := range captures {
		if ref.matches(c) {
			universe = append(universe, c)
		}
	}
	sort.Slice(universe, func(i, j int) bool { return captureLess(universe[i], universe[j]) })
	return universe
}

// validate resolves uncertain candidate sets (step 9–10): the uncertain map
// is broadcast, every work unit emits the exact intersection of its group
// with the candidate's referenced captures, and intersecting those
// validation sets across all of a dependent capture's dominant groups yields
// the exact referenced captures (Bloom false positives cannot survive every
// group's probe).
func validate(units *dataflow.Dataset[workUnit], uncertain map[cind.Capture]*candSet, refArity Arity) []cind.CIND {
	if len(uncertain) == 0 {
		return nil
	}
	vsets := dataflow.FlatMap(units, "ext/validation-sets",
		func(u workUnit, emit func(dataflow.Pair[cind.Capture, map[cind.Capture]struct{}])) {
			for _, dep := range u.Deps {
				cs, ok := uncertain[dep]
				if !ok {
					continue
				}
				refs := make(map[cind.Capture]struct{})
				for _, r := range u.All {
					if r == dep || !refArity.matches(r) {
						continue
					}
					if cs.hasExact() {
						if cs.containsRef(r) {
							refs[r] = struct{}{}
						}
					} else if cs.approx.Test(r.Key()) {
						refs[r] = struct{}{}
					}
				}
				emit(dataflow.Pair[cind.Capture, map[cind.Capture]struct{}]{Key: dep, Val: refs})
			}
		})
	final := dataflow.ReduceByKey(vsets, "ext/validate",
		func(a, b map[cind.Capture]struct{}) map[cind.Capture]struct{} {
			if len(a) > len(b) {
				a, b = b, a
			}
			for r := range a {
				if _, ok := b[r]; !ok {
					delete(a, r)
				}
			}
			return a
		})
	var out []cind.CIND
	for _, p := range dataflow.Collect(final) {
		dep, refs := p.Key, p.Val
		cs := uncertain[dep]
		for r := range refs {
			if r != dep {
				out = append(out, cind.CIND{Inclusion: cind.Inclusion{Dep: dep, Ref: r}, Support: cs.count})
			}
		}
	}
	return out
}
