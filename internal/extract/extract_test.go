package extract

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bloom"
	"repro/internal/capture"
	"repro/internal/cind"
	"repro/internal/dataflow"
	"repro/internal/naive"
	"repro/internal/rdf"
)

func cap(proj rdf.Attr, cond cind.Condition) cind.Capture {
	return cind.Capture{Proj: proj, Cond: cond}
}

// mkGroups wraps capture slices into a dataset of groups.
func mkGroups(w int, groups ...[]cind.Capture) *dataflow.Dataset[capture.Group] {
	ctx := dataflow.NewContext(w)
	gs := make([]capture.Group, len(groups))
	for i, g := range groups {
		gs[i] = capture.Group{Captures: g}
	}
	return dataflow.Parallelize(ctx, "groups", gs)
}

// TestExample6Extraction reproduces §7.1's running example: three capture
// groups G1 = {ca..ce}, G2 = {ca, cb}, G3 = {cc, cd}. With h=2, ce is pruned
// (support 1); ca and cb co-occur in G1 and G2, cc and cd in G1 and G3.
func TestExample6Extraction(t *testing.T) {
	ca := cap(rdf.Subject, cind.Unary(rdf.Predicate, 1))
	cb := cap(rdf.Subject, cind.Unary(rdf.Predicate, 2))
	cc := cap(rdf.Subject, cind.Unary(rdf.Predicate, 3))
	cd := cap(rdf.Subject, cind.Unary(rdf.Predicate, 4))
	ce := cap(rdf.Subject, cind.Unary(rdf.Predicate, 5))
	for _, direct := range []bool{false, true} {
		groups := mkGroups(2, []cind.Capture{ca, cb, cc, cd, ce}, []cind.Capture{ca, cb}, []cind.Capture{cc, cd})
		got, err := BroadCINDs(groups, Config{Support: 2, DirectExtraction: direct})
		if err != nil {
			t.Fatal(err)
		}
		want := map[cind.Inclusion]int{
			{Dep: ca, Ref: cb}: 2,
			{Dep: cb, Ref: ca}: 2,
			{Dep: cc, Ref: cd}: 2,
			{Dep: cd, Ref: cc}: 2,
		}
		if len(got) != len(want) {
			t.Errorf("direct=%v: got %d CINDs, want %d: %+v", direct, len(got), len(want), got)
		}
		for _, c := range got {
			if supp, ok := want[c.Inclusion]; !ok || supp != c.Support {
				t.Errorf("direct=%v: unexpected %+v", direct, c)
			}
		}
	}
}

// TestDominantGroupSplitting drives a dataset with one huge group through
// both the balanced and the direct path; results must agree.
func TestDominantGroupSplitting(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var big []cind.Capture
	for i := 0; i < 200; i++ {
		big = append(big, cap(rdf.Predicate, cind.Unary(rdf.Subject, rdf.Value(i))))
	}
	// A few small groups that overlap with the big one.
	var smalls [][]cind.Capture
	for i := 0; i < 30; i++ {
		var g []cind.Capture
		for j := 0; j < 5; j++ {
			g = append(g, big[rng.Intn(len(big))])
		}
		g = dedup(g)
		smalls = append(smalls, g)
	}
	build := func() *dataflow.Dataset[capture.Group] {
		all := append([][]cind.Capture{big}, smalls...)
		return mkGroups(4, all...)
	}
	balanced, err := BroadCINDs(build(), Config{Support: 2})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := BroadCINDs(build(), Config{Support: 2, DirectExtraction: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(balanced) != len(direct) {
		t.Fatalf("balanced found %d CINDs, direct %d", len(balanced), len(direct))
	}
	set := map[cind.CIND]bool{}
	for _, c := range direct {
		set[c] = true
	}
	for _, c := range balanced {
		if !set[c] {
			t.Errorf("balanced-only CIND %+v", c)
		}
	}
}

// TestMinimizeAgreesWithOracle: the consolidation must agree with the
// specification-level Minimize on discovered broad sets.
func TestMinimizeAgreesWithOracle(t *testing.T) {
	ds := randomDataset(160, 4)
	for _, h := range []int{1, 2, 3} {
		// Build broad CINDs through the real pipeline components would need
		// fcdetect; instead enumerate the oracle's broad set directly.
		broad := oracleBroad(ds, h)
		a := Minimize(broad)
		b := naive.Minimize(broad)
		if len(a) != len(b) {
			t.Errorf("h=%d: extract.Minimize kept %d, naive kept %d", h, len(a), len(b))
		}
		bset := map[cind.Inclusion]bool{}
		for _, c := range b {
			bset[c.Inclusion] = true
		}
		for _, c := range a {
			if c.Trivial() {
				t.Errorf("h=%d: trivial CIND survived Minimize: %s", h, c.Inclusion.Format(ds.Dict))
			}
			if !bset[c.Inclusion] {
				t.Errorf("h=%d: disagreement on %s", h, c.Inclusion.Format(ds.Dict))
			}
		}
	}
}

// oracleBroad enumerates all valid broad CINDs (including trivial ones) over
// the AR-pruned frequent universe, mirroring what BroadCINDs returns.
func oracleBroad(ds *rdf.Dataset, h int) []cind.CIND {
	freq := naive.FrequentConditions(ds, h, naive.Options{})
	ars := naive.AssociationRules(ds, h, naive.Options{})
	arSet := map[[2]cind.Condition]bool{}
	for _, r := range ars {
		arSet[[2]cind.Condition{r.If, r.Then}] = true
	}
	var caps []cind.Capture
	for c := range freq {
		if c.IsBinary() {
			p := c.UnaryParts()
			if arSet[[2]cind.Condition{p[0], p[1]}] || arSet[[2]cind.Condition{p[1], p[0]}] {
				continue
			}
		}
		for _, a := range rdf.Attrs {
			if !c.Uses(a) {
				caps = append(caps, cind.Capture{Proj: a, Cond: c})
			}
		}
	}
	interp := make([]map[rdf.Value]struct{}, len(caps))
	for i, c := range caps {
		interp[i] = cind.Interpret(ds, c)
	}
	subset := func(a, b map[rdf.Value]struct{}) bool {
		if len(a) > len(b) {
			return false
		}
		for v := range a {
			if _, ok := b[v]; !ok {
				return false
			}
		}
		return true
	}
	var out []cind.CIND
	for i, dep := range caps {
		if len(interp[i]) < h {
			continue
		}
		for j, ref := range caps {
			if i == j {
				continue
			}
			if subset(interp[i], interp[j]) {
				out = append(out, cind.CIND{Inclusion: cind.Inclusion{Dep: dep, Ref: ref}, Support: len(interp[i])})
			}
		}
	}
	return out
}

// TestMergeCandSets covers Algorithm 3's three cases plus count/lineage
// bookkeeping.
func TestMergeCandSets(t *testing.T) {
	c1 := cap(rdf.Subject, cind.Unary(rdf.Predicate, 1))
	c2 := cap(rdf.Subject, cind.Unary(rdf.Predicate, 2))
	c3 := cap(rdf.Subject, cind.Unary(rdf.Predicate, 3))

	exact := func(caps ...cind.Capture) *candSet {
		m := map[cind.Capture]struct{}{}
		for _, c := range caps {
			m[c] = struct{}{}
		}
		return &candSet{exact: m, count: 1}
	}
	blm := func(caps ...cind.Capture) *candSet {
		f := bloom.NewBytes(64, 4)
		for _, c := range caps {
			f.Add(c.Key())
		}
		return &candSet{approx: f, count: 1, lineage: true}
	}

	// exact ∩ exact
	m := mergeCandSets(exact(c1, c2, c3), exact(c2, c3))
	if len(m.exact) != 2 || m.count != 2 || m.lineage {
		t.Errorf("exact/exact merge wrong: %+v", m)
	}

	// exact ∩ bloom: probing keeps members present in the filter
	m = mergeCandSets(exact(c1, c2), blm(c2))
	if m.exact == nil || m.count != 2 || !m.lineage {
		t.Errorf("mixed merge wrong: %+v", m)
	}
	if _, ok := m.exact[c2]; !ok {
		t.Errorf("mixed merge dropped true member")
	}

	// bloom ∩ bloom: common members must survive the AND
	m = mergeCandSets(blm(c1, c2), blm(c2, c3))
	if m.approx == nil || !m.approx.Test(c2.Key()) || m.count != 2 || !m.lineage {
		t.Errorf("bloom/bloom merge wrong: %+v", m)
	}

	// order invariance of the mixed case
	m2 := mergeCandSets(blm(c2), exact(c1, c2))
	if m2.exact == nil || m2.count != 2 || !m2.lineage {
		t.Errorf("mixed merge (swapped) wrong: %+v", m2)
	}
}

// TestArityFilters: per-class extraction must partition the unfiltered
// result exactly.
func TestArityFilters(t *testing.T) {
	ds := randomDataset(250, 4)
	groups := func() *dataflow.Dataset[capture.Group] {
		ctx := dataflow.NewContext(3)
		gs := groupsFromDataset(ctx, ds)
		return gs
	}
	h := 2
	all, err := BroadCINDs(groups(), Config{Support: h})
	if err != nil {
		t.Fatal(err)
	}
	classes := map[string][]cind.CIND{}
	for _, pair := range []struct {
		name     string
		dep, ref Arity
	}{
		{"11", UnaryOnly, UnaryOnly}, {"12", UnaryOnly, BinaryOnly},
		{"21", BinaryOnly, UnaryOnly}, {"22", BinaryOnly, BinaryOnly},
	} {
		cfg := Config{Support: h, DepArity: pair.dep, RefArity: pair.ref}
		cs, err := BroadCINDs(groups(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		classes[pair.name] = cs
	}
	total := 0
	set := map[cind.CIND]bool{}
	for name, cs := range classes {
		total += len(cs)
		for _, c := range cs {
			if set[c] {
				t.Errorf("CIND in two classes: %s", c.Inclusion.Format(ds.Dict))
			}
			set[c] = true
			wantDepBin := name[0] == '2'
			wantRefBin := name[1] == '2'
			if c.Dep.Cond.IsBinary() != wantDepBin || c.Ref.Cond.IsBinary() != wantRefBin {
				t.Errorf("class %s contains %s", name, c.Inclusion.Format(ds.Dict))
			}
		}
	}
	if total != len(all) {
		t.Errorf("classes sum to %d CINDs, unfiltered extraction finds %d", total, len(all))
	}
	for _, c := range all {
		if !set[c] {
			t.Errorf("unfiltered CIND missing from class partition: %s", c.Inclusion.Format(ds.Dict))
		}
	}
}

// groupsFromDataset builds closed-form ground-truth groups (h=1 universe
// pruned by nothing) for extraction tests that do not involve fcdetect.
func groupsFromDataset(ctx *dataflow.Context, ds *rdf.Dataset) *dataflow.Dataset[capture.Group] {
	members := map[rdf.Value]map[cind.Capture]struct{}{}
	add := func(v rdf.Value, c cind.Capture) {
		g, ok := members[v]
		if !ok {
			g = map[cind.Capture]struct{}{}
			members[v] = g
		}
		g[c] = struct{}{}
	}
	for _, t := range ds.Triples {
		for _, proj := range rdf.Attrs {
			b, g := proj.Others()
			add(t.Get(proj), cind.Capture{Proj: proj, Cond: cind.Unary(b, t.Get(b))})
			add(t.Get(proj), cind.Capture{Proj: proj, Cond: cind.Unary(g, t.Get(g))})
			add(t.Get(proj), cind.Capture{Proj: proj, Cond: cind.Binary(b, t.Get(b), g, t.Get(g))})
		}
	}
	var gs []capture.Group
	for _, g := range members {
		var caps []cind.Capture
		for c := range g {
			caps = append(caps, c)
		}
		gs = append(gs, capture.Group{Captures: caps})
	}
	return dataflow.Parallelize(ctx, "groups", gs)
}

// Property: Minimize never keeps an implied CIND and never drops an
// unimplied one, on synthetic inclusion sets.
func TestQuickMinimizeSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var broad []cind.CIND
		seen := map[cind.Inclusion]bool{}
		for i := 0; i < 60; i++ {
			dep := randomCapture(rng)
			ref := randomCapture(rng)
			if dep == ref {
				continue
			}
			inc := cind.Inclusion{Dep: dep, Ref: ref}
			if seen[inc] {
				continue
			}
			seen[inc] = true
			broad = append(broad, cind.CIND{Inclusion: inc, Support: 1 + rng.Intn(5)})
		}
		a := Minimize(broad)
		b := naive.Minimize(broad)
		if len(a) != len(b) {
			return false
		}
		bset := map[cind.Inclusion]bool{}
		for _, c := range b {
			bset[c.Inclusion] = true
		}
		for _, c := range a {
			if !bset[c.Inclusion] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func randomCapture(rng *rand.Rand) cind.Capture {
	proj := rdf.Attr(rng.Intn(3))
	b, g := proj.Others()
	if rng.Intn(2) == 0 {
		attr := b
		if rng.Intn(2) == 0 {
			attr = g
		}
		return cind.Capture{Proj: proj, Cond: cind.Unary(attr, rdf.Value(rng.Intn(4)))}
	}
	return cind.Capture{Proj: proj, Cond: cind.Binary(b, rdf.Value(rng.Intn(4)), g, rdf.Value(rng.Intn(4)))}
}

func dedup(caps []cind.Capture) []cind.Capture {
	seen := map[cind.Capture]bool{}
	var out []cind.Capture
	for _, c := range caps {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

func randomDataset(n, card int) *rdf.Dataset {
	if max := card * 3 * card * card * 2; n > max {
		panic(fmt.Sprintf("randomDataset: %d triples requested, only %d possible", n, max))
	}
	rng := rand.New(rand.NewSource(13))
	ds := rdf.NewDataset()
	seen := map[[3]int]bool{}
	for len(ds.Triples) < n {
		s, p, o := rng.Intn(card*3), rng.Intn(card), rng.Intn(card*2)
		if seen[[3]int{s, p, o}] {
			continue
		}
		seen[[3]int{s, p, o}] = true
		ds.Add(fmt.Sprintf("s%d", s), fmt.Sprintf("p%d", p), fmt.Sprintf("o%d", o))
	}
	return ds
}
