package extract

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/cind"
	"repro/internal/dataflow"
)

// runBroad extracts over ground-truth groups of a random dataset and returns
// the result as a set, plus the reported outcome.
func runBroad(t *testing.T, cfg Config) (map[cind.CIND]bool, Outcome) {
	t.Helper()
	ds := randomDataset(300, 5)
	ctx := dataflow.NewContext(3)
	res, outcome, err := BroadCINDsOutcome(groupsFromDataset(ctx, ds), cfg)
	if err != nil {
		t.Fatalf("extraction failed (%+v): %v", cfg, err)
	}
	set := make(map[cind.CIND]bool, len(res))
	for _, c := range res {
		set[c] = true
	}
	return set, outcome
}

// TestFaultForceBloomUnitsEquivalence: the degraded all-Bloom strategy must
// produce exactly the broad CINDs of the exact strategy, at a load no larger
// than the exact one (linear instead of quadratic in the group sizes).
func TestFaultForceBloomUnitsEquivalence(t *testing.T) {
	for _, h := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("h=%d", h), func(t *testing.T) {
			exact, outExact := runBroad(t, Config{Support: h})
			forced, outForced := runBroad(t, Config{Support: h, ForceBloomUnits: true})
			if outExact.Degraded || outForced.Degraded {
				t.Error("no LoadLimit was set, nothing should report degradation")
			}
			if outForced.EstimatedLoad > outExact.EstimatedLoad {
				t.Errorf("forced load %d exceeds exact load %d", outForced.EstimatedLoad, outExact.EstimatedLoad)
			}
			for c := range exact {
				if !forced[c] {
					t.Errorf("forced-Bloom run lost CIND %+v", c)
				}
			}
			for c := range forced {
				if !exact[c] {
					t.Errorf("forced-Bloom run fabricated CIND %+v", c)
				}
			}
		})
	}
}

// TestFaultDegradeOnLoadLimit: a limit between the Bloom and the exact load
// degrades; a limit below even the Bloom load still fails; without the
// degradation switch the breach fails immediately.
func TestFaultDegradeOnLoadLimit(t *testing.T) {
	_, outExact := runBroad(t, Config{Support: 2})
	_, outForced := runBroad(t, Config{Support: 2, ForceBloomUnits: true})
	if outForced.EstimatedLoad >= outExact.EstimatedLoad {
		t.Skipf("degenerate dataset: forced load %d not below exact load %d",
			outForced.EstimatedLoad, outExact.EstimatedLoad)
	}
	limit := outExact.EstimatedLoad - 1

	degraded, outDegraded := runBroad(t, Config{Support: 2, LoadLimit: limit, DegradeOnLoadLimit: true})
	if !outDegraded.Degraded {
		t.Error("breach with DegradeOnLoadLimit did not degrade")
	}
	if outDegraded.EstimatedLoad != outForced.EstimatedLoad {
		t.Errorf("degraded load %d, want the forced-Bloom load %d", outDegraded.EstimatedLoad, outForced.EstimatedLoad)
	}
	exactRes, _ := runBroad(t, Config{Support: 2})
	if len(degraded) != len(exactRes) {
		t.Errorf("degraded run found %d CINDs, exact %d", len(degraded), len(exactRes))
	}

	ds := randomDataset(300, 5)
	ctx := dataflow.NewContext(3)
	_, _, err := BroadCINDsOutcome(groupsFromDataset(ctx, ds), Config{Support: 2, LoadLimit: limit})
	if !errors.Is(err, ErrLoadLimit) {
		t.Errorf("breach without DegradeOnLoadLimit: err = %v, want ErrLoadLimit", err)
	}
	ctx2 := dataflow.NewContext(3)
	_, out, err := BroadCINDsOutcome(groupsFromDataset(ctx2, ds),
		Config{Support: 2, LoadLimit: 1, DegradeOnLoadLimit: true})
	if !errors.Is(err, ErrLoadLimit) {
		t.Errorf("limit below the degraded load: err = %v, want ErrLoadLimit", err)
	}
	if !out.Degraded {
		t.Error("the failed run should still report that degradation was attempted")
	}
}

// TestFaultDirectExtractionNeverDegrades: RDFind-DE is exact-only; the
// degradation switch must not change its failure behavior.
func TestFaultDirectExtractionNeverDegrades(t *testing.T) {
	ds := randomDataset(300, 5)
	ctx := dataflow.NewContext(3)
	_, outcome, err := BroadCINDsOutcome(groupsFromDataset(ctx, ds),
		Config{Support: 2, DirectExtraction: true, LoadLimit: 1, DegradeOnLoadLimit: true})
	if !errors.Is(err, ErrLoadLimit) {
		t.Fatalf("err = %v, want ErrLoadLimit", err)
	}
	if outcome.Degraded {
		t.Error("direct extraction must never degrade")
	}
}
