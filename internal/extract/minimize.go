package extract

import (
	"repro/internal/cind"
)

// Minimize keeps only the minimal CINDs among the broad ones (§7.3). A CIND
// is non-minimal when another valid CIND implies it — by relaxing its
// dependent condition (dependent implication) or tightening its referenced
// condition (referenced implication). The paper consolidates the four arity
// classes in two passes (Ψ2:1 against Ψ1:1 ∪ Ψ2:2, then Ψ1:1 ∪ Ψ2:2 against
// Ψ1:2); because an implier is itself implied by some CIND that survives, a
// single pass over hash indexes of the full broad set decides every CIND
// independently and reaches the same fixpoint.
//
// Trivial inclusions (the dependent condition logically implies the
// referenced one, e.g. (s, p=a ∧ o=b) ⊆ (s, p=a)) are never minimal: their
// dependent condition relaxes to the referenced condition itself, which
// yields a reflexive, universally valid statement.
func Minimize(broad []cind.CIND) []cind.CIND {
	// Index 1: the full statement set, for dependent-implication lookups.
	all := make(map[cind.Inclusion]struct{}, len(broad))
	for _, c := range broad {
		all[c.Inclusion] = struct{}{}
	}
	// Index 2: referenced-tightening coverage. A CIND with a binary
	// referenced condition covers the same statement with either unary
	// relaxation of that condition (Ψx:2 kills Ψx:1).
	tightened := make(map[cind.Inclusion]struct{})
	for _, c := range broad {
		if !c.Ref.Cond.IsBinary() {
			continue
		}
		for _, u := range c.Ref.Cond.UnaryParts() {
			if u.Uses(c.Ref.Proj) {
				continue
			}
			relaxedRef := cind.Capture{Proj: c.Ref.Proj, Cond: u}
			tightened[cind.Inclusion{Dep: c.Dep, Ref: relaxedRef}] = struct{}{}
		}
	}

	minimal := make([]cind.CIND, 0, len(broad))
	for _, c := range broad {
		if c.Trivial() {
			continue
		}
		if _, ok := tightened[c.Inclusion]; ok {
			continue // referenced implication (Ψ1:2 kills Ψ1:1, Ψ2:2 kills Ψ2:1, …)
		}
		if dependentImplied(c.Inclusion, all) {
			continue // dependent implication (Ψ1:1 kills Ψ2:1, Ψ1:2 kills Ψ2:2)
		}
		minimal = append(minimal, c)
	}
	return minimal
}

// dependentImplied reports whether relaxing the binary dependent condition
// of inc to one of its unary parts yields a statement that is valid — either
// because it is in the broad set or because it is reflexive.
func dependentImplied(inc cind.Inclusion, all map[cind.Inclusion]struct{}) bool {
	if !inc.Dep.Cond.IsBinary() {
		return false
	}
	for _, u := range inc.Dep.Cond.UnaryParts() {
		if u.Uses(inc.Dep.Proj) {
			continue
		}
		relaxed := cind.Capture{Proj: inc.Dep.Proj, Cond: u}
		if relaxed == inc.Ref {
			return true // relaxes to a reflexive statement
		}
		if _, ok := all[cind.Inclusion{Dep: relaxed, Ref: inc.Ref}]; ok {
			return true
		}
	}
	return false
}
