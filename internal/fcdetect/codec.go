package fcdetect

import (
	"encoding/binary"

	"repro/internal/cind"
	"repro/internal/dataflow"
)

// Spill codecs for the FCDetector's keyed stages, so the frequency sums
// (fcd/unary-sum, fcd/binary-sum, stats/condition-frequencies) and the
// frequency histogram (stats/bucket-sum) can run out of core under a memory
// budget. Registered at package load; the engine only consults them when a
// budget is configured.

// conditionCountCodec spills Pair[cind.Condition, int].
type conditionCountCodec struct{}

func (conditionCountCodec) AppendKey(dst []byte, k cind.Condition) []byte {
	return cind.AppendCondition(dst, k)
}
func (conditionCountCodec) DecodeKey(src []byte) cind.Condition { return cind.ConditionAt(src) }
func (conditionCountCodec) AppendValue(dst []byte, v int) []byte {
	return binary.AppendVarint(dst, int64(v))
}
func (conditionCountCodec) DecodeValue(src []byte) int {
	v, _ := binary.Varint(src)
	return int(v)
}

// intCountCodec spills Pair[int, int] (the frequency-histogram buckets).
type intCountCodec struct{}

func (intCountCodec) AppendKey(dst []byte, k int) []byte {
	return binary.BigEndian.AppendUint64(dst, uint64(int64(k)))
}
func (intCountCodec) DecodeKey(src []byte) int { return int(int64(binary.BigEndian.Uint64(src))) }
func (intCountCodec) AppendValue(dst []byte, v int) []byte {
	return binary.AppendVarint(dst, int64(v))
}
func (intCountCodec) DecodeValue(src []byte) int {
	v, _ := binary.Varint(src)
	return int(v)
}

func init() {
	dataflow.RegisterPairCodec[cind.Condition, int](conditionCountCodec{})
	dataflow.RegisterPairCodec[int, int](intCountCodec{})
}
