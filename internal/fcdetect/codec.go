package fcdetect

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bloom"
	"repro/internal/cind"
	"repro/internal/dataflow"
)

// Spill codecs for the FCDetector's keyed stages, so the frequency sums
// (fcd/unary-sum, fcd/binary-sum, stats/condition-frequencies) and the
// frequency histogram (stats/bucket-sum) can run out of core under a memory
// budget. Registered at package load; the engine only consults them when a
// budget is configured.

// conditionCountCodec spills Pair[cind.Condition, int].
type conditionCountCodec struct{}

func (conditionCountCodec) AppendKey(dst []byte, k cind.Condition) []byte {
	return cind.AppendCondition(dst, k)
}
func (conditionCountCodec) DecodeKey(src []byte) cind.Condition { return cind.ConditionAt(src) }
func (conditionCountCodec) AppendValue(dst []byte, v int) []byte {
	return binary.AppendVarint(dst, int64(v))
}
func (conditionCountCodec) DecodeValue(src []byte) int {
	v, _ := binary.Varint(src)
	return int(v)
}

// intCountCodec spills Pair[int, int] (the frequency-histogram buckets).
type intCountCodec struct{}

func (intCountCodec) AppendKey(dst []byte, k int) []byte {
	return binary.BigEndian.AppendUint64(dst, uint64(int64(k)))
}
func (intCountCodec) DecodeKey(src []byte) int { return int(int64(binary.BigEndian.Uint64(src))) }
func (intCountCodec) AppendValue(dst []byte, v int) []byte {
	return binary.AppendVarint(dst, int64(v))
}
func (intCountCodec) DecodeValue(src []byte) int {
	v, _ := binary.Varint(src)
	return int(v)
}

// conditionBinCodec carries Pair[cind.Condition, bin] (the exploded binary
// counters of the fcd/ar-join co-group) across spill files and the network.
type conditionBinCodec struct{}

func (conditionBinCodec) AppendKey(dst []byte, k cind.Condition) []byte {
	return cind.AppendCondition(dst, k)
}
func (conditionBinCodec) DecodeKey(src []byte) cind.Condition { return cind.ConditionAt(src) }
func (conditionBinCodec) AppendValue(dst []byte, v bin) []byte {
	dst = cind.AppendCondition(dst, v.other)
	return binary.AppendVarint(dst, int64(v.count))
}
func (conditionBinCodec) DecodeValue(src []byte) bin {
	other := cind.ConditionAt(src)
	count, _ := binary.Varint(src[cind.ConditionWireSize:])
	return bin{other: other, count: int(count)}
}

// bloomCodec ships partial Bloom filters to the coordinator for the
// fcd/*-bloom-union global reduces.
type bloomCodec struct{}

func (bloomCodec) AppendValue(dst []byte, v *bloom.Filter) []byte { return v.AppendBinary(dst) }
func (bloomCodec) DecodeValue(src []byte) *bloom.Filter {
	f, _, err := bloom.FromBinary(src)
	if err != nil {
		panic(fmt.Sprintf("fcdetect: corrupt Bloom filter on the wire: %v", err))
	}
	return f
}

// arCodec ships collected association rules (fcd/ar-extract) to the driver.
type arCodec struct{}

func (arCodec) AppendValue(dst []byte, v cind.AR) []byte {
	dst = cind.AppendCondition(dst, v.If)
	dst = cind.AppendCondition(dst, v.Then)
	return binary.AppendVarint(dst, int64(v.Support))
}
func (arCodec) DecodeValue(src []byte) cind.AR {
	ifc := cind.ConditionAt(src)
	then := cind.ConditionAt(src[cind.ConditionWireSize:])
	sup, _ := binary.Varint(src[2*cind.ConditionWireSize:])
	return cind.AR{If: ifc, Then: then, Support: int(sup)}
}

func init() {
	dataflow.RegisterPairCodec[cind.Condition, int](conditionCountCodec{})
	dataflow.RegisterPairCodec[int, int](intCountCodec{})
	dataflow.RegisterPairCodec[cind.Condition, bin](conditionBinCodec{})
	dataflow.RegisterValueCodec[*bloom.Filter](bloomCodec{})
	dataflow.RegisterValueCodec[cind.AR](arCodec{})
}
