// Package fcdetect implements RDFind's Frequent Condition Detector (§5,
// Fig. 5): the first phase of lazy pruning. It finds all unary and binary
// conditions whose frequency reaches the support threshold, compacts them
// into Bloom filters for constant-time probing in later stages, and derives
// the exact association rules as a by-product of the two counting passes.
package fcdetect

import (
	"repro/internal/bloom"
	"repro/internal/cind"
	"repro/internal/dataflow"
	"repro/internal/rdf"
)

// Options tune the detector and the downstream capture-group creation.
type Options struct {
	// PredicatesOnlyInConditions implements §8.3's Freebase configuration:
	// "we consider predicates only in conditions" — the predicate element
	// never serves as a projection attribute, so no capture evidences are
	// emitted for it (and the dominant capture groups that predicate
	// projections of hot values like rdf:type would create never arise).
	// Condition detection itself is unaffected.
	PredicatesOnlyInConditions bool
	// ExactUnaryIndex replaces the unary Bloom-filter probes of the binary
	// counting pass (Algorithm 1, steps 5–7) with an exact bitmap over the
	// dictionary's value space: 3·ValueSpace bits, attribute-major, one per
	// (attribute, value) unary condition. Results are identical either way —
	// a Bloom false positive only admits binary candidates whose true count
	// is below the support threshold (a binary condition is at most as
	// frequent as its unary parts), so fcd/binary-threshold discards them —
	// but the exact index probes by a single bit test instead of hashing.
	// The index is compacted on the driver from the already-materialized
	// unary counters, adding no dataflow stage. It is opt-in rather than the
	// default: eliminating the (harmless) false-positive candidates shifts
	// the intermediate record counts in the span trace, which the pipeline's
	// golden files pin, and in distributed runs the driver-side compaction
	// would add a gather collective to the replayed schedule.
	ExactUnaryIndex bool
	// ValueSpace is the dictionary size the exact index is laid out over
	// (rdf.Dictionary.Len()); ExactUnaryIndex is ignored when it is zero.
	ValueSpace int
}

// Output is what later pipeline stages need: the exact frequent-condition
// counters (kept as distributed datasets), the Bloom filters that stand in
// for them during probing, and the association rules.
type Output struct {
	// Unary and Binary hold the frequent conditions with their exact
	// frequencies, partitioned across workers.
	Unary  *dataflow.Dataset[dataflow.Pair[cind.Condition, int]]
	Binary *dataflow.Dataset[dataflow.Pair[cind.Condition, int]]
	// UnaryBloom and BinaryBloom are the broadcastable compact indexes
	// (steps 3–4 and 8–9 of Fig. 5). BinaryBloom is nil in predicate-only
	// mode. Both may yield false positives, never false negatives.
	UnaryBloom  *bloom.Filter
	BinaryBloom *bloom.Filter
	// ARs are the exact association rules with their supports (step 11).
	ARs []cind.AR
}

// HasAR reports whether the rule "a → b" was detected, for Algorithm 2's
// line 9–10 checks. Rules are indexed by their If and Then conditions.
type arIndex map[[2]cind.Condition]struct{}

// ARSet builds a constant-time lookup over the detected rules.
func (o *Output) ARSet() map[[2]cind.Condition]struct{} {
	idx := make(arIndex, len(o.ARs))
	for _, r := range o.ARs {
		idx[[2]cind.Condition{r.If, r.Then}] = struct{}{}
	}
	return idx
}

// unaryConditionsOf emits the three unary conditions of a triple (step 1 of
// Fig. 5).
func unaryConditionsOf(t rdf.Triple, emit func(cind.Condition)) {
	emit(cind.Unary(rdf.Subject, t.S))
	emit(cind.Unary(rdf.Predicate, t.P))
	emit(cind.Unary(rdf.Object, t.O))
}

// Detect runs the full detector over the partitioned triples. When the
// engine has already failed (worker fault, cancellation) the detector
// schedules nothing and returns a well-formed empty output; the caller
// observes the failure via the dataset's Context.Err.
func Detect(triples *dataflow.Dataset[rdf.Triple], h int, opts Options) *Output {
	if triples.Context().Err() != nil {
		return abortedOutput(triples.Context())
	}
	out := &Output{}

	// Frequent unary conditions: per-triple counters, early-aggregated and
	// globally reduced, then thresholded (steps 1–2).
	unaryCounters := dataflow.FlatMap(triples, "fcd/unary-counters",
		func(t rdf.Triple, emit func(dataflow.Pair[cind.Condition, int])) {
			unaryConditionsOf(t, func(c cind.Condition) {
				emit(dataflow.Pair[cind.Condition, int]{Key: c, Val: 1})
			})
		})
	unarySums := dataflow.ReduceByKey(unaryCounters, "fcd/unary-sum", addInts)
	out.Unary = dataflow.Filter(unarySums, "fcd/unary-threshold",
		func(p dataflow.Pair[cind.Condition, int]) bool { return p.Val >= h })

	// Compact into a Bloom filter: per-worker partial filters, unioned by a
	// bit-wise OR on a single worker (steps 3–4).
	out.UnaryBloom = buildConditionBloom(out.Unary, "fcd/unary-bloom")

	// Abort promptly between the two counting passes when the engine failed
	// during the unary phase — the binary pass and the AR join would only
	// schedule no-op stages over drained datasets.
	if triples.Context().Err() != nil {
		return abortedOutput(triples.Context())
	}

	// Frequent binary conditions: Algorithm 1 — candidates are generated on
	// demand per triple by probing the unary filter, never materialized
	// up front (steps 5–7). With ExactUnaryIndex the probe is a bitmap bit
	// test instead of a Bloom lookup (see Options).
	bu := out.UnaryBloom
	probe := func(a rdf.Attr, v rdf.Value) bool { return bu.Test(cind.Unary(a, v).Key()) }
	if opts.ExactUnaryIndex && opts.ValueSpace > 0 {
		space := opts.ValueSpace
		idx := dataflow.NewBitmap(3 * space)
		for _, p := range dataflow.Collect(out.Unary) {
			idx.Set(int(p.Key.A1)*space + int(p.Key.V1))
		}
		probe = func(a rdf.Attr, v rdf.Value) bool { return idx.Get(int(a)*space + int(v)) }
	}
	binaryCounters := dataflow.FlatMap(triples, "fcd/binary-counters",
		func(t rdf.Triple, emit func(dataflow.Pair[cind.Condition, int])) {
			sF := probe(rdf.Subject, t.S)
			pF := probe(rdf.Predicate, t.P)
			oF := probe(rdf.Object, t.O)
			if sF && pF {
				emit(dataflow.Pair[cind.Condition, int]{Key: cind.Binary(rdf.Subject, t.S, rdf.Predicate, t.P), Val: 1})
			}
			if sF && oF {
				emit(dataflow.Pair[cind.Condition, int]{Key: cind.Binary(rdf.Subject, t.S, rdf.Object, t.O), Val: 1})
			}
			if pF && oF {
				emit(dataflow.Pair[cind.Condition, int]{Key: cind.Binary(rdf.Predicate, t.P, rdf.Object, t.O), Val: 1})
			}
		})
	binarySums := dataflow.ReduceByKey(binaryCounters, "fcd/binary-sum", addInts)
	out.Binary = dataflow.Filter(binarySums, "fcd/binary-threshold",
		func(p dataflow.Pair[cind.Condition, int]) bool { return p.Val >= h })

	// Compact into the binary Bloom filter (steps 8–9).
	out.BinaryBloom = buildConditionBloom(out.Binary, "fcd/binary-bloom")

	// Association rules: join frequent unary and binary counters on the
	// embedded unary condition; equal counts mean confidence 1 (step 11).
	out.ARs = extractARs(out.Unary, out.Binary)

	// Detector-level observability: the funnel sizes §8's evaluation keys on.
	reg := triples.Context().Stats().Metrics()
	reg.Counter("fc.frequent.unary").Add(int64(out.Unary.Len()))
	reg.Counter("fc.frequent.binary").Add(int64(out.Binary.Len()))
	reg.Counter("fc.ars").Add(int64(len(out.ARs)))
	return out
}

func addInts(a, b int) int { return a + b }

// bin keys a frequent binary condition by one of its embedded unary
// conditions, remembering the complementary part and the shared frequency.
// Package-level (rather than local to extractARs) so codec.go can register a
// wire codec for the fcd/ar-join shuffle.
type bin struct {
	other cind.Condition
	count int
}

// abortedOutput is a well-formed, empty detector output for a failed engine:
// empty counter datasets and empty (never-matching) Bloom filters, so
// downstream stages — which all short-circuit anyway — see no nils.
func abortedOutput(c *dataflow.Context) *Output {
	empty := dataflow.Parallelize(c, "fcd/aborted", []dataflow.Pair[cind.Condition, int](nil))
	return &Output{
		Unary:       empty,
		Binary:      empty,
		UnaryBloom:  bloom.New(1024, 0.001),
		BinaryBloom: bloom.New(1024, 0.001),
	}
}

// buildConditionBloom encodes the conditions of a counter dataset in a Bloom
// filter, built distributedly: one partial filter per worker, unioned on the
// driver. All partials share geometry derived from the global count so the
// OR-union is well-defined.
func buildConditionBloom(conds *dataflow.Dataset[dataflow.Pair[cind.Condition, int]], name string) *bloom.Filter {
	n := conds.Len()
	if n < 1024 {
		n = 1024
	}
	partials := dataflow.MapPartitions(conds, name,
		func(w int, items []dataflow.Pair[cind.Condition, int], emit func(*bloom.Filter)) {
			f := bloom.New(n, 0.001)
			for _, p := range items {
				f.Add(p.Key.Key())
			}
			emit(f)
		})
	merged, ok := dataflow.GlobalReduce(partials, name+"-union", func(a, b *bloom.Filter) *bloom.Filter {
		a.Union(b)
		return a
	})
	if !ok {
		return bloom.New(n, 0.001)
	}
	return merged
}

// extractARs performs the distributed join of step 11: each frequent binary
// condition is exploded along its two embedded unary conditions and
// co-grouped with the unary counters; equal frequencies yield a rule
// (§5.3). The rule's support is the shared frequency (Lemma 2).
func extractARs(
	unary, binary *dataflow.Dataset[dataflow.Pair[cind.Condition, int]],
) []cind.AR {
	exploded := dataflow.FlatMap(binary, "fcd/ar-explode",
		func(p dataflow.Pair[cind.Condition, int], emit func(dataflow.Pair[cind.Condition, bin])) {
			parts := p.Key.UnaryParts()
			emit(dataflow.Pair[cind.Condition, bin]{Key: parts[0], Val: bin{other: parts[1], count: p.Val}})
			emit(dataflow.Pair[cind.Condition, bin]{Key: parts[1], Val: bin{other: parts[0], count: p.Val}})
		})
	joined := dataflow.CoGroup(unary, exploded, "fcd/ar-join")
	rules := dataflow.FlatMap(joined, "fcd/ar-extract",
		func(g dataflow.CoGrouped[cind.Condition, int, bin], emit func(cind.AR)) {
			if len(g.Left) != 1 {
				return // unary condition not frequent (or absent)
			}
			n := g.Left[0]
			for _, b := range g.Right {
				if b.count == n {
					emit(cind.AR{If: g.Key, Then: b.other, Support: n})
				}
			}
		})
	return dataflow.Collect(rules)
}
