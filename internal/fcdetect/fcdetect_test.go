package fcdetect

import (
	"math/rand"
	"testing"

	"repro/internal/cind"
	"repro/internal/dataflow"
	"repro/internal/fixtures"
	"repro/internal/naive"
	"repro/internal/rdf"
)

func detect(t *testing.T, ds *rdf.Dataset, h, workers int, opts Options) *Output {
	t.Helper()
	ctx := dataflow.NewContext(workers)
	triples := dataflow.Parallelize(ctx, "input", ds.Triples)
	return Detect(triples, h, opts)
}

func counterMap(d *dataflow.Dataset[dataflow.Pair[cind.Condition, int]]) map[cind.Condition]int {
	out := make(map[cind.Condition]int)
	for _, p := range dataflow.Collect(d) {
		out[p.Key] = p.Val
	}
	return out
}

// TestDetectMatchesOracle compares frequent conditions and ARs against the
// exhaustive reference, across worker counts and thresholds.
func TestDetectMatchesOracle(t *testing.T) {
	datasets := map[string]*rdf.Dataset{
		"table1": fixtures.University(),
		"random": randomDataset(500, 6),
	}
	for name, ds := range datasets {
		for _, h := range []int{1, 2, 3, 10} {
			for _, w := range []int{1, 3} {
				out := detect(t, ds, h, w, Options{})
				want := naive.FrequentConditions(ds, h, naive.Options{})
				got := counterMap(out.Unary)
				for k, v := range counterMap(out.Binary) {
					got[k] = v
				}
				if len(got) != len(want) {
					t.Errorf("%s h=%d w=%d: %d frequent conditions, oracle has %d", name, h, w, len(got), len(want))
				}
				for c, n := range want {
					if got[c] != n {
						t.Errorf("%s h=%d w=%d: freq(%s) = %d, oracle %d", name, h, w, c.Format(ds.Dict), got[c], n)
					}
				}
				// Bloom filters must cover every frequent condition.
				for c := range want {
					if !c.IsBinary() && !out.UnaryBloom.Test(c.Key()) {
						t.Errorf("%s: unary Bloom misses %s", name, c.Format(ds.Dict))
					}
					if c.IsBinary() && !out.BinaryBloom.Test(c.Key()) {
						t.Errorf("%s: binary Bloom misses %s", name, c.Format(ds.Dict))
					}
				}
				// Association rules must match the oracle exactly.
				wantARs := map[cind.AR]bool{}
				for _, r := range naive.AssociationRules(ds, h, naive.Options{}) {
					wantARs[r] = true
				}
				for _, r := range out.ARs {
					if !wantARs[r] {
						t.Errorf("%s h=%d w=%d: spurious AR %s", name, h, w, r.Format(ds.Dict))
					}
					delete(wantARs, r)
				}
				for r := range wantARs {
					t.Errorf("%s h=%d w=%d: missing AR %s", name, h, w, r.Format(ds.Dict))
				}
			}
		}
	}
}

func TestDetectTable1Example(t *testing.T) {
	ds := fixtures.University()
	id := func(s string) rdf.Value { return fixtures.MustID(ds, s) }
	out := detect(t, ds, 2, 2, Options{})
	// The paper's running example: o=gradStudent → p=rdf:type with support 2.
	found := false
	for _, r := range out.ARs {
		if r.If == cind.Unary(rdf.Object, id("gradStudent")) &&
			r.Then == cind.Unary(rdf.Predicate, id("rdf:type")) {
			found = true
			if r.Support != 2 {
				t.Errorf("AR support = %d, want 2", r.Support)
			}
		}
	}
	if !found {
		t.Errorf("missing the paper's example AR")
	}
}

// TestPredicatesOnlyInConditionsOptionIsDetectorNeutral: the §8.3 option
// restricts projections, not conditions, so the detector output is
// unaffected by it.
func TestPredicatesOnlyInConditionsOptionIsDetectorNeutral(t *testing.T) {
	ds := fixtures.University()
	plain := detect(t, ds, 2, 2, Options{})
	restricted := detect(t, ds, 2, 2, Options{PredicatesOnlyInConditions: true})
	if plain.Unary.Len() != restricted.Unary.Len() ||
		plain.Binary.Len() != restricted.Binary.Len() ||
		len(plain.ARs) != len(restricted.ARs) {
		t.Errorf("detector output changed under the projection-only option: %d/%d/%d vs %d/%d/%d",
			plain.Unary.Len(), plain.Binary.Len(), len(plain.ARs),
			restricted.Unary.Len(), restricted.Binary.Len(), len(restricted.ARs))
	}
}

// TestExactUnaryIndexEquivalence: the opt-in exact unary index replaces the
// binary pass's Bloom probes with bitmap lookups, which can only remove
// below-threshold candidates the threshold filter would discard anyway — so
// frequent conditions, their counts, and the association rules are identical
// to the Bloom-probed detector's across datasets, thresholds, and workers.
func TestExactUnaryIndexEquivalence(t *testing.T) {
	datasets := map[string]*rdf.Dataset{
		"table1": fixtures.University(),
		"random": randomDataset(500, 6),
	}
	for name, ds := range datasets {
		for _, h := range []int{1, 2, 3} {
			for _, w := range []int{1, 3} {
				bloomed := detect(t, ds, h, w, Options{})
				exact := detect(t, ds, h, w, Options{ExactUnaryIndex: true, ValueSpace: ds.Dict.Len()})
				label := func(what string) string {
					return name + " h=" + string(rune('0'+h)) + " w=" + string(rune('0'+w)) + ": " + what
				}
				for probe, pair := range map[string][2]map[cind.Condition]int{
					"unary":  {counterMap(bloomed.Unary), counterMap(exact.Unary)},
					"binary": {counterMap(bloomed.Binary), counterMap(exact.Binary)},
				} {
					got, want := pair[1], pair[0]
					if len(got) != len(want) {
						t.Errorf("%s: %d conditions, Bloom path has %d", label(probe), len(got), len(want))
					}
					for c, n := range want {
						if got[c] != n {
							t.Errorf("%s: freq(%s) = %d, Bloom path %d", label(probe), c.Format(ds.Dict), got[c], n)
						}
					}
				}
				gotARs := map[cind.AR]bool{}
				for _, r := range exact.ARs {
					gotARs[r] = true
				}
				if len(gotARs) != len(bloomed.ARs) {
					t.Errorf("%s: %d ARs, Bloom path has %d", label("ARs"), len(gotARs), len(bloomed.ARs))
				}
				for _, r := range bloomed.ARs {
					if !gotARs[r] {
						t.Errorf("%s: missing AR %s", label("ARs"), r.Format(ds.Dict))
					}
				}
			}
		}
	}
	// ValueSpace 0 disables the index (nothing to size the bitmap by); the
	// detector must fall back to Bloom probes rather than panic.
	out := detect(t, fixtures.University(), 2, 2, Options{ExactUnaryIndex: true})
	if out.Unary.Len() == 0 {
		t.Error("ExactUnaryIndex without ValueSpace produced no output")
	}
}

func TestARSetIndex(t *testing.T) {
	ds := fixtures.University()
	out := detect(t, ds, 2, 1, Options{})
	idx := out.ARSet()
	if len(idx) != len(out.ARs) {
		t.Fatalf("index size %d != %d rules", len(idx), len(out.ARs))
	}
	for _, r := range out.ARs {
		if _, ok := idx[[2]cind.Condition{r.If, r.Then}]; !ok {
			t.Errorf("index misses %s", r.Format(ds.Dict))
		}
	}
}

func TestHistogramTotalsAndShape(t *testing.T) {
	ds := fixtures.University()
	ctx := dataflow.NewContext(3)
	triples := dataflow.Parallelize(ctx, "input", ds.Triples)
	hist := ConditionFrequencyHistogram(triples)

	// The histogram must account for every distinct condition exactly once.
	wantDistinct := len(naive.FrequentConditions(ds, 1, naive.Options{}))
	total := 0
	weighted := 0
	for _, b := range hist {
		total += b.Count
		weighted += b.Count * b.Frequency
	}
	if total != wantDistinct {
		t.Errorf("histogram covers %d conditions, want %d", total, wantDistinct)
	}
	// Each triple contributes 3 unary + 3 binary condition instances.
	if weighted != 6*ds.Size() {
		t.Errorf("weighted total = %d, want %d", weighted, 6*ds.Size())
	}
	// Buckets are sorted by frequency.
	for i := 1; i < len(hist); i++ {
		if hist[i].Frequency <= hist[i-1].Frequency {
			t.Errorf("histogram not sorted at %d", i)
		}
	}
}

// TestDetectEmptyInput ensures the detector tolerates empty datasets.
func TestDetectEmptyInput(t *testing.T) {
	ds := rdf.NewDataset()
	out := detect(t, ds, 5, 2, Options{})
	if out.Unary.Len() != 0 || out.Binary.Len() != 0 || len(out.ARs) != 0 {
		t.Errorf("non-empty output for empty input")
	}
	if out.UnaryBloom == nil || !out.UnaryBloom.Empty() {
		t.Errorf("unary Bloom not empty for empty input")
	}
}

func randomDataset(n, card int) *rdf.Dataset {
	rng := rand.New(rand.NewSource(7))
	ds := rdf.NewDataset()
	for i := 0; i < n; i++ {
		s := rng.Intn(card * 3)
		p := rng.Intn(card)
		o := rng.Intn(card * 2)
		ds.Add(
			"s"+string(rune('a'+s%26))+string(rune('0'+s/26)),
			"p"+string(rune('a'+p)),
			"o"+string(rune('a'+o%26))+string(rune('0'+o/26)),
		)
	}
	return ds
}

func BenchmarkDetect(b *testing.B) {
	ds := randomDataset(20000, 30)
	ctx := dataflow.NewContext(2)
	triples := dataflow.Parallelize(ctx, "input", ds.Triples)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Detect(triples, 10, Options{})
	}
}
