package fcdetect

import (
	"sort"

	"repro/internal/cind"
	"repro/internal/dataflow"
	"repro/internal/rdf"
)

// FrequencyBucket is one point of the condition-frequency distribution:
// Count conditions occur with exactly Frequency matching triples.
type FrequencyBucket struct {
	Frequency int
	Count     int
}

// ConditionFrequencyHistogram computes the number-of-conditions-by-frequency
// distribution of Fig. 4 over all unary and binary conditions. It is two
// chained counting jobs: condition → frequency, then frequency → count.
func ConditionFrequencyHistogram(triples *dataflow.Dataset[rdf.Triple]) []FrequencyBucket {
	counters := dataflow.FlatMap(triples, "stats/condition-counters",
		func(t rdf.Triple, emit func(dataflow.Pair[cind.Condition, int])) {
			emit(dataflow.Pair[cind.Condition, int]{Key: cind.Unary(rdf.Subject, t.S), Val: 1})
			emit(dataflow.Pair[cind.Condition, int]{Key: cind.Unary(rdf.Predicate, t.P), Val: 1})
			emit(dataflow.Pair[cind.Condition, int]{Key: cind.Unary(rdf.Object, t.O), Val: 1})
			emit(dataflow.Pair[cind.Condition, int]{Key: cind.Binary(rdf.Subject, t.S, rdf.Predicate, t.P), Val: 1})
			emit(dataflow.Pair[cind.Condition, int]{Key: cind.Binary(rdf.Subject, t.S, rdf.Object, t.O), Val: 1})
			emit(dataflow.Pair[cind.Condition, int]{Key: cind.Binary(rdf.Predicate, t.P, rdf.Object, t.O), Val: 1})
		})
	freqs := dataflow.ReduceByKey(counters, "stats/condition-frequencies", addInts)
	byFreq := dataflow.Map(freqs, "stats/bucket",
		func(p dataflow.Pair[cind.Condition, int]) dataflow.Pair[int, int] {
			return dataflow.Pair[int, int]{Key: p.Val, Val: 1}
		})
	buckets := dataflow.Collect(dataflow.ReduceByKey(byFreq, "stats/bucket-sum", addInts))
	out := make([]FrequencyBucket, 0, len(buckets))
	for _, b := range buckets {
		out = append(out, FrequencyBucket{Frequency: b.Key, Count: b.Val})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Frequency < out[j].Frequency })
	return out
}
