// Package fixtures provides small, hand-checked datasets used by tests and
// examples across the repository — most prominently the university instance
// of Table 1 of the paper, whose CINDs are worked out in the text.
package fixtures

import "repro/internal/rdf"

// University returns the eight-triple instance of Table 1.
//
//	t1 patrick rdf:type       gradStudent
//	t2 mike    rdf:type       gradStudent
//	t3 john    rdf:type       professor
//	t4 patrick memberOf       csd
//	t5 mike    memberOf       biod
//	t6 patrick undergradFrom  hpi
//	t7 tim     undergradFrom  hpi
//	t8 mike    undergradFrom  cmu
func University() *rdf.Dataset {
	ds := rdf.NewDataset()
	ds.Add("patrick", "rdf:type", "gradStudent")
	ds.Add("mike", "rdf:type", "gradStudent")
	ds.Add("john", "rdf:type", "professor")
	ds.Add("patrick", "memberOf", "csd")
	ds.Add("mike", "memberOf", "biod")
	ds.Add("patrick", "undergradFrom", "hpi")
	ds.Add("tim", "undergradFrom", "hpi")
	ds.Add("mike", "undergradFrom", "cmu")
	return ds
}

// MustID returns the dictionary ID of a term that is known to exist in the
// dataset, panicking otherwise. It keeps test setup terse.
func MustID(ds *rdf.Dataset, term string) rdf.Value {
	id, ok := ds.Dict.Lookup(term)
	if !ok {
		panic("fixtures: unknown term " + term)
	}
	return id
}
