package fixtures

import "testing"

func TestUniversityShape(t *testing.T) {
	ds := University()
	if ds.Size() != 8 {
		t.Fatalf("Table 1 has %d triples, want 8", ds.Size())
	}
	// Spot-check t6: (patrick, undergradFrom, hpi).
	tr := ds.Triples[5]
	if ds.Dict.Decode(tr.S) != "patrick" || ds.Dict.Decode(tr.P) != "undergradFrom" || ds.Dict.Decode(tr.O) != "hpi" {
		t.Errorf("t6 = %s", tr.String(ds.Dict))
	}
}

func TestMustIDPanicsOnUnknownTerm(t *testing.T) {
	ds := University()
	if MustID(ds, "patrick") != ds.Triples[0].S {
		t.Errorf("MustID(patrick) wrong")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("no panic for unknown term")
		}
	}()
	MustID(ds, "nonexistent")
}
