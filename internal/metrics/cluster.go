package metrics

// Counter names of the distributed execution mode. The dataflow coordinator
// feeds them into the job's metric registry, and core surfaces the headline
// ones on RunStats/RunSnapshot, so cluster health is observable through the
// same machinery as spill and retry accounting.
const (
	// ClusterLosses counts worker processes declared lost (missed heartbeat
	// deadline or observed kill).
	ClusterLosses = "dataflow.cluster.losses"
	// ClusterRespawns counts replacement worker processes launched after a
	// loss.
	ClusterRespawns = "dataflow.cluster.respawns"
	// ClusterReconnects counts worker connections re-established after a
	// drop (reported by the worker in its hello).
	ClusterReconnects = "dataflow.cluster.reconnects"
	// ClusterCollectives counts completed collective barriers.
	ClusterCollectives = "dataflow.cluster.collectives"
	// ClusterShuffleBytes totals the payload bytes workers contributed to
	// collectives (the network-shuffle volume).
	ClusterShuffleBytes = "dataflow.cluster.shuffle_bytes"
	// ClusterHeartbeats counts worker heartbeats received.
	ClusterHeartbeats = "dataflow.cluster.heartbeats"
	// ClusterDupContribs counts duplicated contributions absorbed by the
	// idempotent collective protocol.
	ClusterDupContribs = "dataflow.cluster.duplicate_contributions"
	// ClusterReplayedReleases counts releases re-sent to workers replaying
	// the collective program after a respawn.
	ClusterReplayedReleases = "dataflow.cluster.replayed_releases"
)
