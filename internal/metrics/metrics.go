// Package metrics is a small, dependency-free observability toolkit for the
// reproduction: counters, gauges, and fixed-bucket latency histograms
// collected in a Registry, plus the Span model the dataflow engine uses for
// per-stage tracing (see span.go). The paper's evaluation (§8) is entirely
// about where time and work go — per-operator costs, scale-out speedups,
// load-balancing effects — so every performance claim this repo makes is
// backed by these primitives: the benchsuite serializes them into
// BENCH_<exp>.json files and benchdiff compares two such files.
//
// All types are safe for concurrent use. Snapshots are plain structs with
// JSON tags, so callers can embed them into larger machine-readable reports.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative n is ignored; counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable int64 (a level, not a rate).
type Gauge struct {
	v atomic.Int64
}

// Set stores the current level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// SetMax raises the gauge to n if n exceeds the current level, for peak
// tracking (peak goroutines, peak heap).
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultLatencyBuckets are the fixed histogram bucket upper bounds used for
// stage wall times, in milliseconds: sub-millisecond stages up to
// multi-second stragglers. The last implicit bucket is +Inf.
var DefaultLatencyBuckets = []float64{0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// Histogram is a fixed-bucket histogram over float64 observations. Bucket
// bounds are upper-inclusive; one overflow bucket catches everything beyond
// the last bound.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64 // len(bounds)+1, last is overflow
	sum    float64
	n      int64
}

// NewHistogram returns a histogram over the given ascending bucket bounds.
// Nil or empty bounds select DefaultLatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	cp := make([]float64, len(bounds))
	copy(cp, bounds)
	return &Histogram{bounds: cp, counts: make([]int64, len(cp)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
}

// HistogramSnapshot is the serializable state of a Histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra entry for the
	// overflow bucket.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// Quantile estimates the q-quantile (q in [0,1]) of the recorded
// observations by linear interpolation inside the bucket holding the target
// rank. Observations in the overflow bucket report the last bound — a
// deliberate underestimate, so callers comparing latency quantiles should
// pick bounds that cover their tail. An empty histogram reports 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum, lower := 0.0, 0.0
	for i, c := range s.Counts {
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1] // overflow bucket
		}
		upper := s.Bounds[i]
		next := cum + float64(c)
		if next >= rank && c > 0 {
			return lower + (rank-cum)/float64(c)*(upper-lower)
		}
		cum, lower = next, upper
	}
	return lower
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]int64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.n,
	}
	return s
}

// Registry holds named counters, gauges, and histograms. Lookups create the
// instrument on first use, so call sites need no registration ceremony.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the default
// latency buckets on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.histograms == nil {
		r.histograms = make(map[string]*Histogram)
	}
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(nil)
		r.histograms[name] = h
	}
	return h
}

// HistogramWith returns the named histogram, creating it with the given
// bucket bounds on first use (nil bounds select the defaults). Bounds only
// apply at creation; a later call with different bounds returns the existing
// histogram unchanged. Serving-latency call sites use this to get finer
// sub-millisecond resolution than DefaultLatencyBuckets.
func (r *Registry) HistogramWith(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.histograms == nil {
		r.histograms = make(map[string]*Histogram)
	}
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// RegistrySnapshot is the serializable state of a Registry, with
// deterministically ordered (sorted) maps — encoding/json sorts map keys, so
// two snapshots of equal state marshal identically.
type RegistrySnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry state.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s RegistrySnapshot
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for k, c := range r.counters {
			s.Counters[k] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for k, g := range r.gauges {
			s.Gauges[k] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for k, h := range r.histograms {
			s.Histograms[k] = h.Snapshot()
		}
	}
	return s
}
