package metrics

import (
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("x") != c {
		t.Error("Counter lookup is not idempotent")
	}
	g := r.Gauge("y")
	g.Set(7)
	g.SetMax(3) // lower: no-op
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Errorf("gauge = %d, want 9", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Upper-inclusive bounds: 0.5 and 1 land in bucket 0; 5 in 1; 50 in 2;
	// 500 and 5000 overflow.
	want := []int64{2, 1, 1, 2}
	for i, n := range want {
		if s.Counts[i] != n {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], n, s.Counts)
		}
	}
	if s.Count != 6 || s.Sum != 5556.5 {
		t.Errorf("count=%d sum=%g, want 6 / 5556.5", s.Count, s.Sum)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").SetMax(int64(j))
				r.Histogram("h").Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["c"] != 8000 {
		t.Errorf("counter = %d, want 8000", s.Counters["c"])
	}
	if s.Gauges["g"] != 999 {
		t.Errorf("gauge = %d, want 999", s.Gauges["g"])
	}
	if s.Histograms["h"].Count != 8000 {
		t.Errorf("histogram count = %d, want 8000", s.Histograms["h"].Count)
	}
}

func TestSnapshotMarshalsDeterministically(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	j1, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := json.Marshal(r.Snapshot())
	if string(j1) != string(j2) {
		t.Errorf("snapshot marshalling unstable:\n%s\n%s", j1, j2)
	}
}

func TestSpanCombinerHitRate(t *testing.T) {
	cases := []struct {
		in, out int64
		want    float64
	}{
		{0, 0, 0}, {100, 100, 0}, {100, 25, 0.75}, {100, 150, 0}, // out>in clamps to 0
	}
	for _, c := range cases {
		s := Span{CombinerIn: c.in, CombinerOut: c.out}
		if got := s.CombinerHitRate(); got != c.want {
			t.Errorf("hit rate(%d→%d) = %g, want %g", c.in, c.out, got, c.want)
		}
	}
}

func TestWriteSpanTree(t *testing.T) {
	spans := []Span{
		{Name: "input", WallMS: 1.5, RecordsIn: 100, RecordsOut: 100, MaxWorkerRecords: 50},
		{Name: "fc/count-unary", WallMS: 2, RecordsIn: 300, RecordsOut: 40, MaxWorkerRecords: 160,
			ShuffleBytes: 2048, CombinerIn: 300, CombinerOut: 60},
		{Name: "fc/ars/pairs", WallMS: 0.5, RecordsIn: 40, RecordsOut: 7, MaxWorkerRecords: 22, Retries: 2},
	}
	var b strings.Builder
	if err := WriteSpanTree(&b, spans); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"input", "fc", "count-unary", "pairs", "shuffle=2.0KB", "combiner=80%", "retries=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree lacks %q:\n%s", want, out)
		}
	}
	// Children are indented below their group.
	if strings.Index(out, "fc") > strings.Index(out, "count-unary") {
		t.Errorf("group does not precede child:\n%s", out)
	}
}

func TestWriteSpanTreeDuplicateNames(t *testing.T) {
	spans := []Span{
		{Name: "x/combine", WallMS: 1, RecordsIn: 10},
		{Name: "x/combine", WallMS: 2, RecordsIn: 20},
	}
	var b strings.Builder
	if err := WriteSpanTree(&b, spans); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(b.String(), "combine"); n != 2 {
		t.Errorf("duplicate span collapsed: %d occurrences\n%s", n, b.String())
	}
}

func TestTotalRecordsInAndTopByWall(t *testing.T) {
	spans := []Span{
		{Name: "a", RecordsIn: 10, WallMS: 1},
		{Name: "b", RecordsIn: 20, WallMS: 5},
		{Name: "c", RecordsIn: 30, WallMS: 3},
	}
	if got := TotalRecordsIn(spans); got != 60 {
		t.Errorf("TotalRecordsIn = %d, want 60", got)
	}
	top := TopByWall(spans, 2)
	if len(top) != 2 || top[0].Name != "b" || top[1].Name != "c" {
		t.Errorf("TopByWall = %v", top)
	}
	if got := TopByWall(spans, 10); len(got) != 3 {
		t.Errorf("TopByWall over-ask returned %d spans", len(got))
	}
	// The input order must be untouched.
	if spans[0].Name != "a" || spans[1].Name != "b" {
		t.Error("TopByWall mutated its input")
	}
}

func TestEstimateSize(t *testing.T) {
	type pair struct {
		Key string
		Val int64
	}
	if sz := EstimateSize(int64(1)); sz != 8 {
		t.Errorf("int64 size = %d, want 8", sz)
	}
	s := EstimateSize(pair{Key: "hello", Val: 3})
	if s < 13 || s > 64 {
		t.Errorf("pair size = %d, want a small positive estimate", s)
	}
	long := EstimateSize(make([]int32, 1000))
	if long < 4000 {
		t.Errorf("long slice size = %d, want >= 4000", long)
	}
	if EstimateSize(nil) != 0 {
		t.Errorf("nil size = %d, want 0", EstimateSize(nil))
	}
	if sz := EstimateSize(map[string]int{"a": 1, "bb": 2}); sz <= 0 {
		t.Errorf("map size = %d, want positive", sz)
	}
}

func TestSpanJSONRoundTrip(t *testing.T) {
	in := Span{Name: "x", WallMS: 1.25, RecordsIn: 10, RecordsOut: 5, MaxWorkerRecords: 6,
		ShuffleBytes: 100, CombinerIn: 10, CombinerOut: 5, Retries: 1, Goroutines: 4, HeapAllocBytes: 1 << 20}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Span
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Errorf("round trip changed span: %+v != %+v", out, in)
	}
}
