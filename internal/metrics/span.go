package metrics

import (
	"fmt"
	"io"
	"reflect"
	"sort"
	"strings"
)

// Span is the trace record of one dataflow stage execution: what the stage
// was called, when it ran, how long it took, how many records it consumed
// and produced, how many bytes its shuffle moved across partitions, how well
// its combiner pre-aggregated, how often workers were re-executed, and a
// runtime sample (goroutines, heap) taken when the stage finished.
//
// Stage names use '/'-separated paths ("fc/count-unary",
// "ext/merge-candidates"); WriteSpanTree renders them as a tree. Sizes and
// byte counts are estimates (see EstimateSize), good for relative
// comparisons between runs, not for accounting.
type Span struct {
	Name    string  `json:"name"`
	StartMS float64 `json:"start_ms"` // offset from the trace epoch (first stage)
	WallMS  float64 `json:"wall_ms"`

	RecordsIn  int64 `json:"records_in"`
	RecordsOut int64 `json:"records_out"`
	// MaxWorkerRecords is the most loaded worker's input count — the quantity
	// the critical-path model (dataflow.Stats.CriticalPath) sums per stage.
	MaxWorkerRecords int64   `json:"max_worker_records"`
	PerWorker        []int64 `json:"per_worker,omitempty"`

	// FusedOps attributes per-operator input-record counts inside a fused
	// narrow-operator chain (dataflow plan.go). Empty for unfused stages;
	// fused stages carry composite names joining the chained ops with '+'.
	// RecordsIn counts the chain's source records once, so the per-op counts
	// here are attribution detail on top of — not part of — the
	// TotalRecordsIn == TotalWork reconciliation.
	FusedOps []FusedOp `json:"fused_ops,omitempty"`

	// ShuffleBytes estimates the bytes that crossed partitions during this
	// stage's shuffle (zero for partition-preserving operators).
	ShuffleBytes int64 `json:"shuffle_bytes,omitempty"`
	// MaterializedBytes estimates the output partitions a narrow stage (or a
	// fused chain, which materializes only its final output) wrote; zero for
	// wide operators and sources.
	MaterializedBytes int64 `json:"materialized_bytes,omitempty"`
	// Batches counts the column batches a fused chain's columnar execution
	// (dataflow batch.go) delivered to its sink; BatchFill is the fraction of
	// their lanes still selected (1.0 = no Filter cleared anything). Both zero
	// on record-at-a-time execution.
	Batches   int64   `json:"batches,omitempty"`
	BatchFill float64 `json:"batch_fill,omitempty"`
	// CombinerIn/CombinerOut are the record counts before and after combiner
	// pre-aggregation (ReduceByKey's early aggregation); zero when the stage
	// has no combiner.
	CombinerIn  int64 `json:"combiner_in,omitempty"`
	CombinerOut int64 `json:"combiner_out,omitempty"`
	// SpilledBytes/SpilledRuns/MergePasses account the stage's out-of-core
	// execution (dataflow spill.go): bytes written to spill files, runs and
	// chunk segments flushed, and external-merge passes executed. All zero
	// for stages that stayed in memory.
	SpilledBytes int64 `json:"spilled_bytes,omitempty"`
	SpilledRuns  int64 `json:"spilled_runs,omitempty"`
	MergePasses  int64 `json:"merge_passes,omitempty"`
	// Retries counts worker re-executions after transient faults across the
	// stage's phases.
	Retries int `json:"retries,omitempty"`

	// Goroutines and HeapAllocBytes sample the runtime when the stage ended
	// (runtime.NumGoroutine, runtime.ReadMemStats().HeapAlloc).
	Goroutines     int    `json:"goroutines,omitempty"`
	HeapAllocBytes uint64 `json:"heap_alloc_bytes,omitempty"`
	// MallocsDelta and AllocBytesDelta are the process-wide allocation deltas
	// (runtime.MemStats Mallocs and TotalAlloc) between the stage's start and
	// end, sampled on the same subsampling schedule as HeapAllocBytes (zero on
	// unsampled stages). Process-wide means concurrent GC and driver work leak
	// in; like ShuffleBytes, they are for relative comparisons between runs.
	MallocsDelta    uint64 `json:"mallocs_delta,omitempty"`
	AllocBytesDelta uint64 `json:"alloc_bytes_delta,omitempty"`
}

// FusedOp is one operator's attribution inside a fused chain span: its name
// and how many records entered it as the chain streamed.
type FusedOp struct {
	Name      string `json:"name"`
	RecordsIn int64  `json:"records_in"`
}

// CostInputs is the subset of a span's statistics a cost model consumes:
// the primitive quantities (records, bytes moved or spilled, wall time,
// allocation volume) with the display-oriented fields stripped. The plan
// optimizer's profile stores exactly these per stage.
type CostInputs struct {
	RecordsIn         int64
	RecordsOut        int64
	WallMS            float64
	ShuffleBytes      int64
	SpilledBytes      int64
	MaterializedBytes int64
	CombinerIn        int64
	CombinerOut       int64
	AllocBytes        int64
}

// CostInputs extracts the cost-model observation from a recorded span.
func (s Span) CostInputs() CostInputs {
	return CostInputs{
		RecordsIn:         s.RecordsIn,
		RecordsOut:        s.RecordsOut,
		WallMS:            s.WallMS,
		ShuffleBytes:      s.ShuffleBytes,
		SpilledBytes:      s.SpilledBytes,
		MaterializedBytes: s.MaterializedBytes,
		CombinerIn:        s.CombinerIn,
		CombinerOut:       s.CombinerOut,
		AllocBytes:        int64(s.AllocBytesDelta),
	}
}

// CombinerHitRate is the fraction of records the combiner eliminated before
// the shuffle: 1 - out/in. Zero when the stage has no combiner (or the
// combiner eliminated nothing).
func (s Span) CombinerHitRate() float64 {
	if s.CombinerIn <= 0 {
		return 0
	}
	r := 1 - float64(s.CombinerOut)/float64(s.CombinerIn)
	if r < 0 {
		return 0
	}
	return r
}

// spanNode is one level of the rendered span tree.
type spanNode struct {
	segment  string
	span     *Span // nil for pure path groups
	children []*spanNode
	index    map[string]*spanNode
}

func (n *spanNode) child(segment string) *spanNode {
	if n.index == nil {
		n.index = make(map[string]*spanNode)
	}
	if c, ok := n.index[segment]; ok {
		return c
	}
	c := &spanNode{segment: segment}
	n.index[segment] = c
	n.children = append(n.children, c)
	return c
}

// WriteSpanTree renders spans as a human-readable tree grouped by the
// '/'-separated segments of their names, in first-appearance order:
//
//	fc
//	  count-unary        2.1ms  in=12000 out=640  max=3020
//	  ars/pairs          0.8ms  in=640   out=77   max=180  shuffle=4.2KB
//
// Group lines aggregate their children's wall time.
func WriteSpanTree(w io.Writer, spans []Span) error {
	root := &spanNode{}
	for i := range spans {
		n := root
		for _, seg := range strings.Split(spans[i].Name, "/") {
			n = n.child(seg)
		}
		// A name collision (same stage name twice) gets its own sibling node
		// so neither execution is hidden.
		if n.span != nil {
			n = &spanNode{segment: spans[i].Name[strings.LastIndexByte(spans[i].Name, '/')+1:]}
			root.children = append(root.children, n)
		}
		n.span = &spans[i]
	}
	return writeSpanNodes(w, root.children, 0)
}

func writeSpanNodes(w io.Writer, nodes []*spanNode, depth int) error {
	for _, n := range nodes {
		indent := strings.Repeat("  ", depth)
		if n.span == nil {
			if _, err := fmt.Fprintf(w, "%s%s  (%s total)\n", indent, n.segment, fmtMS(subtreeWall(n))); err != nil {
				return err
			}
		} else {
			s := n.span
			line := fmt.Sprintf("%s%-*s  %8s  in=%-9d out=%-9d max=%d",
				indent, 32-2*depth, n.segment, fmtMS(s.WallMS), s.RecordsIn, s.RecordsOut, s.MaxWorkerRecords)
			if len(s.FusedOps) > 0 {
				line += fmt.Sprintf("  fused=%d", len(s.FusedOps))
			}
			if s.Batches > 0 {
				line += fmt.Sprintf("  batches=%d/%.0f%%", s.Batches, s.BatchFill*100)
			}
			if s.ShuffleBytes > 0 {
				line += fmt.Sprintf("  shuffle=%s", fmtBytes(s.ShuffleBytes))
			}
			if s.CombinerIn > 0 {
				line += fmt.Sprintf("  combiner=%.0f%%", s.CombinerHitRate()*100)
			}
			if s.SpilledBytes > 0 {
				line += fmt.Sprintf("  spill=%s/%druns", fmtBytes(s.SpilledBytes), s.SpilledRuns)
			}
			if s.MallocsDelta > 0 {
				line += fmt.Sprintf("  allocs=%d/%s", s.MallocsDelta, fmtBytes(int64(s.AllocBytesDelta)))
			}
			if s.Retries > 0 {
				line += fmt.Sprintf("  retries=%d", s.Retries)
			}
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
		if err := writeSpanNodes(w, n.children, depth+1); err != nil {
			return err
		}
	}
	return nil
}

func subtreeWall(n *spanNode) float64 {
	var total float64
	if n.span != nil {
		total += n.span.WallMS
	}
	for _, c := range n.children {
		total += subtreeWall(c)
	}
	return total
}

func fmtMS(ms float64) string {
	switch {
	case ms >= 1000:
		return fmt.Sprintf("%.2fs", ms/1000)
	case ms >= 1:
		return fmt.Sprintf("%.1fms", ms)
	default:
		return fmt.Sprintf("%.0fµs", ms*1000)
	}
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// TotalRecordsIn sums the spans' input-record counts; by construction the
// dataflow engine keeps it equal to Stats.TotalWork, which is how BENCH
// files can be cross-checked against the work accounting.
func TotalRecordsIn(spans []Span) int64 {
	var total int64
	for _, s := range spans {
		total += s.RecordsIn
	}
	return total
}

// TopByWall returns the n spans with the largest wall time, descending — the
// "where did the time go" view of a run.
func TopByWall(spans []Span, n int) []Span {
	cp := append([]Span(nil), spans...)
	sort.SliceStable(cp, func(i, j int) bool { return cp[i].WallMS > cp[j].WallMS })
	if n > len(cp) {
		n = len(cp)
	}
	return cp[:n]
}

// EstimateSize estimates the serialized size of one record in bytes, by
// shallow reflection: fixed-size kinds count their in-memory width, strings
// and byte slices count their length plus a small header, other slices count
// their elements (recursively, to a small depth). The dataflow engine calls
// it on one sample record per partition and extrapolates, mirroring how the
// paper estimates shuffle volume from record counts × average width (§6.1).
func EstimateSize(v any) int64 {
	return estimateValue(reflect.ValueOf(v), 3)
}

func estimateValue(v reflect.Value, depth int) int64 {
	if !v.IsValid() || depth < 0 {
		return 0
	}
	switch v.Kind() {
	case reflect.String:
		return int64(v.Len()) + 8
	case reflect.Slice, reflect.Array:
		if v.Kind() == reflect.Slice && v.Type().Elem().Kind() == reflect.Uint8 {
			return int64(v.Len()) + 8
		}
		var total int64 = 8
		n := v.Len()
		if n > 16 { // sample long slices
			est := estimateValue(v.Index(0), depth-1)
			return 8 + est*int64(n)
		}
		for i := 0; i < n; i++ {
			total += estimateValue(v.Index(i), depth-1)
		}
		return total
	case reflect.Struct:
		var total int64
		for i := 0; i < v.NumField(); i++ {
			total += estimateValue(v.Field(i), depth-1)
		}
		return total
	case reflect.Ptr, reflect.Interface:
		if v.IsNil() {
			return 8
		}
		return 8 + estimateValue(v.Elem(), depth-1)
	case reflect.Map:
		var total int64 = 8
		iter := v.MapRange()
		i := 0
		for iter.Next() && i < 16 {
			total += estimateValue(iter.Key(), depth-1) + estimateValue(iter.Value(), depth-1)
			i++
		}
		if n := v.Len(); n > i && i > 0 {
			total = 8 + (total-8)/int64(i)*int64(n)
		}
		return total
	case reflect.Bool:
		return 1
	default:
		if sz := v.Type().Size(); sz > 0 {
			return int64(sz)
		}
		return 8
	}
}
