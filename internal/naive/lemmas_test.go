package naive

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cind"
	"repro/internal/rdf"
)

// TestLemma1 checks the paper's Lemma 1 on discovered CINDs: the condition
// frequencies of both the dependent and the referenced condition are at
// least the CIND's support.
func TestLemma1(t *testing.T) {
	f := func(seed int64) bool {
		ds := seededDataset(seed, 120, 4)
		for _, h := range []int{1, 2} {
			for _, c := range Discover(ds, h, Options{}).CINDs {
				if cind.FrequencyOf(ds, c.Dep.Cond) < c.Support {
					return false
				}
				if cind.FrequencyOf(ds, c.Ref.Cond) < c.Support {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestLemma2 checks that every discovered association rule's support equals
// the support of its implied CIND.
func TestLemma2(t *testing.T) {
	f := func(seed int64) bool {
		ds := seededDataset(seed, 120, 3)
		for _, r := range AssociationRules(ds, 1, Options{}) {
			implied := r.ImpliedCIND()
			if !cind.Holds(ds, implied.Inclusion) {
				return false
			}
			if cind.SupportOf(ds, implied.Dep) != r.Support {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestDiscoveredCINDsAreSound: on arbitrary datasets, everything Discover
// reports must hold, be supported as claimed, and be minimal within the
// reported set (no reported CIND implies another).
func TestDiscoveredCINDsAreSound(t *testing.T) {
	f := func(seed int64) bool {
		ds := seededDataset(seed, 150, 5)
		res := Discover(ds, 2, Options{})
		for i, a := range res.CINDs {
			if !cind.Holds(ds, a.Inclusion) {
				return false
			}
			if cind.SupportOf(ds, a.Dep) != a.Support {
				return false
			}
			for j, b := range res.CINDs {
				if i != j && a.Inclusion.Implies(b.Inclusion) {
					return false
				}
			}
		}
		for _, r := range res.ARs {
			if !cind.ARHolds(ds, r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// seededDataset builds a random duplicate-free dataset whose shape depends
// only on the seed.
func seededDataset(seed int64, n, card int) *rdf.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := rdf.NewDataset()
	seen := map[[3]int]bool{}
	attempts := 0
	for len(ds.Triples) < n && attempts < n*20 {
		attempts++
		s, p, o := rng.Intn(card*3), rng.Intn(card), rng.Intn(card*2)
		if seen[[3]int{s, p, o}] {
			continue
		}
		seen[[3]int{s, p, o}] = true
		ds.Add(fmt.Sprintf("s%d", s), fmt.Sprintf("p%d", p), fmt.Sprintf("o%d", o))
	}
	return ds
}
