// Package naive is an exhaustive, specification-level implementation of
// pertinent CIND discovery (§3.3). It materializes every frequent condition,
// every capture interpretation, and checks every candidate inclusion by set
// containment. It is exponential in nothing but brutally quadratic in the
// number of captures, so it only runs on small datasets — which is its
// purpose: it is the oracle the RDFind pipeline is differentially tested
// against, and it supplies the exact search-space accounting of Fig. 2.
package naive

import (
	"repro/internal/cind"
	"repro/internal/rdf"
)

// Options tune the oracle to mirror pipeline configuration.
type Options struct {
	// PredicatesOnlyInConditions mirrors the Freebase scaling experiment
	// (§8.3: "we consider predicates only in conditions"): the predicate
	// element never serves as a projection attribute; conditions are
	// unrestricted.
	PredicatesOnlyInConditions bool
}

// conditionFrequencies counts every unary and binary condition of the
// dataset (the condition frequency of §5.1).
func conditionFrequencies(ds *rdf.Dataset, opts Options) map[cind.Condition]int {
	freq := make(map[cind.Condition]int)
	for _, t := range ds.Triples {
		for _, a := range rdf.Attrs {
			freq[cind.Unary(a, t.Get(a))]++
		}
		freq[cind.Binary(rdf.Subject, t.S, rdf.Predicate, t.P)]++
		freq[cind.Binary(rdf.Subject, t.S, rdf.Object, t.O)]++
		freq[cind.Binary(rdf.Predicate, t.P, rdf.Object, t.O)]++
	}
	return freq
}

// FrequentConditions returns all conditions with frequency ≥ h.
func FrequentConditions(ds *rdf.Dataset, h int, opts Options) map[cind.Condition]int {
	out := make(map[cind.Condition]int)
	for c, n := range conditionFrequencies(ds, opts) {
		if n >= h {
			out[c] = n
		}
	}
	return out
}

// AssociationRules derives all exact association rules between frequent
// unary conditions: u → v holds when freq(u) == freq(u ∧ v) (§5.3); the rule
// support is freq(u) by Lemma 2.
func AssociationRules(ds *rdf.Dataset, h int, opts Options) []cind.AR {
	freq := conditionFrequencies(ds, opts)
	var rules []cind.AR
	for c, n := range freq {
		if !c.IsBinary() || n < h {
			continue
		}
		u1, u2 := c.UnaryParts()[0], c.UnaryParts()[1]
		if freq[u1] == n {
			rules = append(rules, cind.AR{If: u1, Then: u2, Support: n})
		}
		if freq[u2] == n {
			rules = append(rules, cind.AR{If: u2, Then: u1, Support: n})
		}
	}
	return rules
}

// embedsAR reports whether a binary condition is the conjunction of an
// association rule's sides, in either direction — such conditions yield
// captures equivalent to unary ones and are excluded (§5.1, equivalence
// pruning).
func embedsAR(c cind.Condition, ars []cind.AR) bool {
	if !c.IsBinary() {
		return false
	}
	parts := c.UnaryParts()
	for _, r := range ars {
		if (r.If == parts[0] && r.Then == parts[1]) || (r.If == parts[1] && r.Then == parts[0]) {
			return true
		}
	}
	return false
}

// captureUniverse builds every admissible capture: a frequent condition plus
// a projection attribute it does not use, excluding AR-equivalent binary
// conditions (and predicate projections in the §8.3 configuration).
func captureUniverse(freq map[cind.Condition]int, ars []cind.AR, opts Options) []cind.Capture {
	var caps []cind.Capture
	for c := range freq {
		if embedsAR(c, ars) {
			continue
		}
		for _, a := range rdf.Attrs {
			if opts.PredicatesOnlyInConditions && a == rdf.Predicate {
				continue
			}
			if !c.Uses(a) {
				caps = append(caps, cind.NewCapture(a, c))
			}
		}
	}
	return caps
}

// Discover returns the pertinent CINDs (broad ∧ minimal) and the association
// rules, by exhaustive enumeration. CINDs implied by ARs never arise because
// AR-embedding captures are excluded from the universe (equivalence pruning,
// §5.1), and logically trivial CINDs are non-minimal by construction: their
// dependent condition can be relaxed to the referenced condition itself,
// yielding a reflexive — hence valid — statement.
func Discover(ds *rdf.Dataset, h int, opts Options) *cind.Result {
	freq := FrequentConditions(ds, h, opts)
	ars := AssociationRules(ds, h, opts)
	caps := captureUniverse(freq, ars, opts)

	// Materialize interpretations once.
	interp := make([]map[rdf.Value]struct{}, len(caps))
	for i, c := range caps {
		interp[i] = cind.Interpret(ds, c)
	}

	// Enumerate valid broad CINDs.
	var valid []cind.CIND
	for i, dep := range caps {
		if len(interp[i]) < h {
			continue // not broad
		}
		for j, ref := range caps {
			if i == j {
				continue
			}
			if subset(interp[i], interp[j]) {
				valid = append(valid, cind.CIND{
					Inclusion: cind.Inclusion{Dep: dep, Ref: ref},
					Support:   len(interp[i]),
				})
			}
		}
	}

	// Keep minimal CINDs: those implied by no other valid one.
	return &cind.Result{CINDs: Minimize(valid), ARs: ars}
}

// Minimize removes every CIND implied by another one in the list (§3.1).
func Minimize(all []cind.CIND) []cind.CIND {
	set := make(map[cind.Inclusion]struct{}, len(all))
	for _, c := range all {
		set[c.Inclusion] = struct{}{}
	}
	var out []cind.CIND
	for _, c := range all {
		if !impliedByAny(c.Inclusion, set) {
			out = append(out, c)
		}
	}
	return out
}

// impliedByAny checks whether inc can be inferred from some other valid
// inclusion: a CIND is minimal iff its dependent condition cannot be relaxed
// nor its referenced condition tightened without violating it (§3.1).
// Implication only relaxes the dependent condition or tightens the
// referenced one, so the candidates are directly enumerable. The implying
// statement is either in the set (all valid broad CINDs over the capture
// universe) or is reflexive/trivial, i.e. valid on every dataset.
func impliedByAny(inc cind.Inclusion, set map[cind.Inclusion]struct{}) bool {
	// A trivial inclusion's dependent condition relaxes to the referenced
	// condition itself, giving a reflexive, always-valid statement — so
	// trivial inclusions are never minimal.
	if inc.Trivial() {
		return true
	}
	// Dependent implication: a valid CIND with a relaxed (unary) dependent
	// condition implies inc.
	if inc.Dep.Cond.IsBinary() {
		for _, u := range inc.Dep.Cond.UnaryParts() {
			if u.Uses(inc.Dep.Proj) {
				continue
			}
			cand := cind.Inclusion{Dep: cind.Capture{Proj: inc.Dep.Proj, Cond: u}, Ref: inc.Ref}
			if _, ok := set[cand]; ok {
				return true
			}
			if cand.Trivial() {
				return true
			}
		}
	}
	// Referenced implication: a valid CIND with a tightened (binary)
	// referenced condition implies inc. Enumerate by scanning the set once.
	if !inc.Ref.Cond.IsBinary() {
		for other := range set {
			if other != inc && other.Dep == inc.Dep && other.Ref.Proj == inc.Ref.Proj &&
				other.Ref.Cond.Implies(inc.Ref.Cond) && other.Ref.Cond != inc.Ref.Cond {
				return true
			}
		}
	}
	// Composition of both single steps goes through an intermediate CIND
	// that is itself valid and present, so the two checks above suffice.
	return false
}

func subset(a, b map[rdf.Value]struct{}) bool {
	if len(a) > len(b) {
		return false
	}
	for v := range a {
		if _, ok := b[v]; !ok {
			return false
		}
	}
	return true
}
