package naive

import (
	"math/rand"
	"testing"

	"repro/internal/cind"
	"repro/internal/fixtures"
	"repro/internal/rdf"
)

func TestFrequentConditionsTable1(t *testing.T) {
	ds := fixtures.University()
	id := func(s string) rdf.Value { return fixtures.MustID(ds, s) }
	freq := FrequentConditions(ds, 2, Options{})
	want := map[cind.Condition]int{
		cind.Unary(rdf.Predicate, id("rdf:type")):                                 3,
		cind.Unary(rdf.Predicate, id("memberOf")):                                 2,
		cind.Unary(rdf.Predicate, id("undergradFrom")):                            3,
		cind.Unary(rdf.Object, id("gradStudent")):                                 2,
		cind.Unary(rdf.Object, id("hpi")):                                         2,
		cind.Unary(rdf.Subject, id("patrick")):                                    3,
		cind.Unary(rdf.Subject, id("mike")):                                       3,
		cind.Binary(rdf.Predicate, id("rdf:type"), rdf.Object, id("gradStudent")): 2,
		cind.Binary(rdf.Predicate, id("undergradFrom"), rdf.Object, id("hpi")):    2,
	}
	for c, n := range want {
		if freq[c] != n {
			t.Errorf("freq(%s) = %d, want %d", c.Format(ds.Dict), freq[c], n)
		}
	}
	for c, n := range freq {
		if n < 2 {
			t.Errorf("non-frequent condition %s (freq %d) reported", c.Format(ds.Dict), n)
		}
	}
	if len(freq) != len(want) {
		t.Errorf("got %d frequent conditions, want %d", len(freq), len(want))
		for c := range freq {
			t.Logf("  %s (%d)", c.Format(ds.Dict), freq[c])
		}
	}
}

func TestAssociationRulesTable1(t *testing.T) {
	ds := fixtures.University()
	id := func(s string) rdf.Value { return fixtures.MustID(ds, s) }
	ars := AssociationRules(ds, 2, Options{})
	// The paper's example AR: o=gradStudent → p=rdf:type, support 2.
	// o=hpi → p=undergradFrom also holds with support 2.
	want := map[cind.AR]bool{
		{If: cind.Unary(rdf.Object, id("gradStudent")), Then: cind.Unary(rdf.Predicate, id("rdf:type")), Support: 2}: true,
		{If: cind.Unary(rdf.Object, id("hpi")), Then: cind.Unary(rdf.Predicate, id("undergradFrom")), Support: 2}:    true,
	}
	for _, r := range ars {
		if !cind.ARHolds(ds, r) {
			t.Errorf("reported AR does not hold: %s", r.Format(ds.Dict))
		}
		delete(want, r)
	}
	for r := range want {
		t.Errorf("missing AR %s", r.Format(ds.Dict))
	}
}

func TestDiscoverTable1Example3(t *testing.T) {
	ds := fixtures.University()
	id := func(s string) rdf.Value { return fixtures.MustID(ds, s) }
	res := Discover(ds, 2, Options{})

	// Every reported CIND must hold, be broad, and be non-trivial.
	for _, c := range res.CINDs {
		if !cind.Holds(ds, c.Inclusion) {
			t.Errorf("invalid CIND reported: %s", c.Format(ds.Dict))
		}
		if got := cind.SupportOf(ds, c.Dep); got != c.Support {
			t.Errorf("support of %s = %d, reported %d", c.Inclusion.Format(ds.Dict), got, c.Support)
		}
		if c.Support < 2 {
			t.Errorf("non-broad CIND reported: %s", c.Format(ds.Dict))
		}
		if c.Trivial() {
			t.Errorf("trivial CIND reported: %s", c.Format(ds.Dict))
		}
	}

	// Example 3's CIND: (s, p=rdf:type ∧ o=gradStudent) ⊆ (s, p=undergradFrom).
	// Its dependent condition embeds the AR o=gradStudent → p=rdf:type, so
	// the pertinent result reports the equivalent unary form
	// (s, o=gradStudent) ⊆ (s, p=undergradFrom) instead.
	wantInc := cind.Inclusion{
		Dep: cind.NewCapture(rdf.Subject, cind.Unary(rdf.Object, id("gradStudent"))),
		Ref: cind.NewCapture(rdf.Subject, cind.Unary(rdf.Predicate, id("undergradFrom"))),
	}
	found := false
	for _, c := range res.CINDs {
		if c.Inclusion == wantInc {
			found = true
			if c.Support != 2 {
				t.Errorf("support of Example 3 CIND = %d, want 2", c.Support)
			}
		}
	}
	if !found {
		t.Errorf("Example 3's CIND (unary form) not reported; got:\n%s", res.Format(ds.Dict))
	}
}

// TestDiscoverCompleteness cross-checks Discover against a fully independent
// validity scan: every valid, broad, minimal, non-trivial inclusion over the
// AR-pruned capture universe must be reported.
func TestDiscoverCompleteness(t *testing.T) {
	ds := fixtures.University()
	h := 2
	res := Discover(ds, h, Options{})
	reported := make(map[cind.Inclusion]bool)
	for _, c := range res.CINDs {
		reported[c.Inclusion] = true
	}

	freq := FrequentConditions(ds, h, Options{})
	ars := AssociationRules(ds, h, Options{})
	caps := captureUniverse(freq, ars, Options{})
	var all []cind.CIND
	for _, dep := range caps {
		supp := cind.SupportOf(ds, dep)
		if supp < h {
			continue
		}
		for _, ref := range caps {
			if dep == ref {
				continue
			}
			if cind.Holds(ds, cind.Inclusion{Dep: dep, Ref: ref}) {
				all = append(all, cind.CIND{Inclusion: cind.Inclusion{Dep: dep, Ref: ref}, Support: supp})
			}
		}
	}
	minimal := Minimize(all)
	if len(minimal) != len(res.CINDs) {
		t.Errorf("Discover reported %d CINDs, independent scan found %d minimal ones", len(res.CINDs), len(minimal))
	}
	for _, c := range minimal {
		if !reported[c.Inclusion] {
			t.Errorf("missing pertinent CIND %s", c.Inclusion.Format(ds.Dict))
		}
	}
}

func TestPredicatesOnlyInConditions(t *testing.T) {
	ds := fixtures.University()
	res := Discover(ds, 2, Options{PredicatesOnlyInConditions: true})
	for _, c := range res.CINDs {
		for _, cap := range []cind.Capture{c.Dep, c.Ref} {
			if cap.Proj == rdf.Predicate {
				t.Errorf("predicate projection in %s", c.Inclusion.Format(ds.Dict))
			}
		}
	}
	// (s, p=memberOf) ⊆ (s, p=rdf:type) holds with support 2 and must appear.
	id := func(s string) rdf.Value { return fixtures.MustID(ds, s) }
	want := cind.Inclusion{
		Dep: cind.NewCapture(rdf.Subject, cind.Unary(rdf.Predicate, id("memberOf"))),
		Ref: cind.NewCapture(rdf.Subject, cind.Unary(rdf.Predicate, id("rdf:type"))),
	}
	found := false
	for _, c := range res.CINDs {
		if c.Inclusion == want {
			found = true
		}
	}
	if !found {
		t.Errorf("expected %s in predicate-only result:\n%s", want.Format(ds.Dict), res.Format(ds.Dict))
	}
}

func TestMinimizeFigure1(t *testing.T) {
	ds := fixtures.University()
	id := func(s string) rdf.Value { return fixtures.MustID(ds, s) }
	s := rdf.Subject
	mo := cind.Unary(rdf.Predicate, id("memberOf"))
	moCsd := cind.Binary(rdf.Predicate, id("memberOf"), rdf.Object, id("csd"))
	ty := cind.Unary(rdf.Predicate, id("rdf:type"))
	tyGrad := cind.Binary(rdf.Predicate, id("rdf:type"), rdf.Object, id("gradStudent"))

	mk := func(d, r cind.Condition) cind.CIND {
		return cind.CIND{Inclusion: cind.Inclusion{
			Dep: cind.NewCapture(s, d), Ref: cind.NewCapture(s, r),
		}, Support: 1}
	}
	all := []cind.CIND{mk(mo, tyGrad), mk(moCsd, tyGrad), mk(mo, ty), mk(moCsd, ty)}
	min := Minimize(all)
	if len(min) != 1 || min[0].Inclusion != all[0].Inclusion {
		t.Errorf("Minimize(Fig.1 lattice) = %d CINDs, want only ψ1", len(min))
		for _, c := range min {
			t.Logf("  %s", c.Inclusion.Format(ds.Dict))
		}
	}
}

func TestSearchSpaceFunnelOrdering(t *testing.T) {
	ds := randomDataset(600, 7)
	for _, h := range []int{1, 2, 5} {
		st := SearchSpace(ds, h, Options{})
		if st.FrequentCandidates > st.AllCandidates {
			t.Errorf("h=%d: frequent candidates exceed all candidates", h)
		}
		if st.BroadCandidates > st.FrequentCandidates {
			t.Errorf("h=%d: broad candidates (%d) exceed frequent candidates (%d)", h, st.BroadCandidates, st.FrequentCandidates)
		}
		if st.MinimalCINDs > st.AllCINDs {
			t.Errorf("h=%d: minimal CINDs exceed all CINDs", h)
		}
		if st.BroadCINDs > st.AllCINDs {
			t.Errorf("h=%d: broad CINDs exceed all CINDs", h)
		}
		if st.Pertinent > st.BroadCINDs || st.Pertinent > st.MinimalCINDs {
			t.Errorf("h=%d: pertinent (%d) exceeds broad (%d) or minimal (%d)", h, st.Pertinent, st.BroadCINDs, st.MinimalCINDs)
		}
	}
}

// TestSearchSpacePertinentMatchesDiscover ties the funnel's final box to the
// actual discovery output.
func TestSearchSpacePertinentMatchesDiscover(t *testing.T) {
	ds := randomDataset(300, 5)
	for _, h := range []int{1, 2, 3} {
		st := SearchSpace(ds, h, Options{})
		res := Discover(ds, h, Options{})
		if st.Pertinent != uint64(len(res.CINDs)) {
			t.Errorf("h=%d: funnel pertinent = %d, Discover = %d", h, st.Pertinent, len(res.CINDs))
		}
		if st.ARs != uint64(len(res.ARs)) {
			t.Errorf("h=%d: funnel ARs = %d, Discover = %d", h, st.ARs, len(res.ARs))
		}
	}
}

// randomDataset builds a small random dataset with heavy value reuse so that
// inclusions actually arise.
func randomDataset(n int, card int) *rdf.Dataset {
	rng := rand.New(rand.NewSource(42))
	ds := rdf.NewDataset()
	subjects := make([]string, card*3)
	preds := make([]string, card)
	objects := make([]string, card*2)
	for i := range subjects {
		subjects[i] = "s" + string(rune('A'+i%26)) + string(rune('0'+i/26))
	}
	for i := range preds {
		preds[i] = "p" + string(rune('A'+i))
	}
	for i := range objects {
		objects[i] = "o" + string(rune('A'+i%26)) + string(rune('0'+i/26))
	}
	seen := map[rdf.Triple]bool{}
	for len(ds.Triples) < n {
		s := subjects[rng.Intn(len(subjects))]
		p := preds[rng.Intn(len(preds))]
		o := objects[rng.Intn(len(objects))]
		t := rdf.Triple{S: ds.Dict.Encode(s), P: ds.Dict.Encode(p), O: ds.Dict.Encode(o)}
		if seen[t] {
			continue
		}
		seen[t] = true
		ds.AddTriple(t)
	}
	return ds
}
