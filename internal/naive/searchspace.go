package naive

import (
	"repro/internal/cind"
	"repro/internal/rdf"
)

// SpaceStats is the CIND search-space funnel of Fig. 2: how candidate and
// result counts shrink from the full quadratic candidate space down to the
// pertinent CINDs and association rules.
type SpaceStats struct {
	// AllCandidates counts ordered pairs of distinct captures over all
	// conditions occurring in the dataset (the ">50 billion" box).
	AllCandidates uint64
	// FrequentCandidates counts candidate pairs over captures whose
	// conditions are frequent (first phase of lazy pruning).
	FrequentCandidates uint64
	// BroadCandidates counts candidate pairs whose dependent capture has
	// support ≥ h (second phase of lazy pruning).
	BroadCandidates uint64
	// AllCINDs counts all valid CINDs per Definition 2.3, any support.
	AllCINDs uint64
	// MinimalCINDs counts the valid CINDs that are minimal, any support.
	MinimalCINDs uint64
	// BroadCINDs counts valid CINDs with support ≥ h over the AR-pruned
	// capture universe — what the extractor materializes before minimality.
	BroadCINDs uint64
	// Pertinent counts broad ∧ minimal CINDs, the final output.
	Pertinent uint64
	// ARs counts the (broad) exact association rules.
	ARs uint64
}

// capturesOf returns the admissible captures of a condition (one per unused,
// admissible projection attribute).
func capturesOf(c cind.Condition, opts Options) []cind.Capture {
	var out []cind.Capture
	for _, a := range rdf.Attrs {
		if opts.PredicatesOnlyInConditions && a == rdf.Predicate {
			continue
		}
		if !c.Uses(a) {
			out = append(out, cind.Capture{Proj: a, Cond: c})
		}
	}
	return out
}

// SearchSpace computes the full funnel. It materializes every valid CIND's
// referenced-capture set, so it must only run on small datasets (the Fig. 2
// experiment sizes its input accordingly).
func SearchSpace(ds *rdf.Dataset, h int, opts Options) SpaceStats {
	var st SpaceStats
	freq := conditionFrequencies(ds, opts)

	// Candidate-space sizes are combinatorial: captures pair with every
	// other capture.
	var allCaps, freqCaps uint64
	for c, n := range freq {
		caps := uint64(len(capturesOf(c, opts)))
		allCaps += caps
		if n >= h {
			freqCaps += caps
		}
	}
	st.AllCandidates = allCaps * (allCaps - 1)
	st.FrequentCandidates = freqCaps * (freqCaps - 1)

	// Valid-CIND accounting over all conditions, via capture groups: the
	// referenced captures of a dependent capture are the intersection of all
	// groups containing it (Lemma 3).
	groups := buildGroups(ds, opts)
	refs := make(map[cind.Capture]map[cind.Capture]struct{})
	supports := make(map[cind.Capture]int)
	for _, g := range groups {
		for _, dep := range g {
			supports[dep]++
			if cur, ok := refs[dep]; !ok {
				set := make(map[cind.Capture]struct{}, len(g))
				for _, r := range g {
					set[r] = struct{}{}
				}
				refs[dep] = set
			} else {
				inGroup := make(map[cind.Capture]struct{}, len(g))
				for _, r := range g {
					inGroup[r] = struct{}{}
				}
				for r := range cur {
					if _, ok := inGroup[r]; !ok {
						delete(cur, r)
					}
				}
			}
		}
	}

	// Broad candidates: dependent captures over frequent conditions with
	// support ≥ h, paired with every other frequent-conditioned capture.
	var broadDeps uint64
	for dep, supp := range supports {
		if supp >= h && freq[dep.Cond] >= h {
			broadDeps++
		}
	}
	st.BroadCandidates = broadDeps * (freqCaps - 1)

	ars := AssociationRules(ds, h, opts)
	st.ARs = uint64(len(ars))
	arSet := make(map[cind.Condition]struct{})
	for c := range freq {
		if embedsAR(c, ars) {
			arSet[c] = struct{}{}
		}
	}

	// Count valid, minimal, and broad CINDs from the materialized ref sets.
	for dep, rs := range refs {
		// Referenced-tightening index: unary referenced captures covered by
		// a binary referenced capture of the same dependent capture.
		// AR-embedded binaries are skipped: they are equivalent to their
		// unary relaxation (equivalence pruning), so "tightening" to them is
		// not a genuine tightening.
		tightened := make(map[cind.Capture]struct{})
		for r := range rs {
			if _, arEq := arSet[r.Cond]; arEq {
				continue
			}
			if r.Cond.IsBinary() {
				for _, u := range r.Cond.UnaryParts() {
					if !u.Uses(r.Proj) {
						tightened[cind.Capture{Proj: r.Proj, Cond: u}] = struct{}{}
					}
				}
			}
		}
		for r := range rs {
			if r == dep {
				continue // reflexive
			}
			st.AllCINDs++
			inc := cind.Inclusion{Dep: dep, Ref: r}
			minimal := !inc.Trivial()
			// Dependent relaxation is only a genuine weakening when the
			// binary dependent condition is not AR-equivalent to its unary
			// part (same quotient reasoning as for tightening above).
			_, depAREq := arSet[dep.Cond]
			if minimal && dep.Cond.IsBinary() && !depAREq {
				for _, u := range dep.Cond.UnaryParts() {
					if u.Uses(dep.Proj) {
						continue
					}
					relaxed := cind.Capture{Proj: dep.Proj, Cond: u}
					if relaxed == r {
						minimal = false // relaxes to a reflexive statement
						break
					}
					if rr, ok := refs[relaxed]; ok {
						if _, ok := rr[r]; ok {
							minimal = false
							break
						}
					}
				}
			}
			if minimal && !r.Cond.IsBinary() {
				if _, ok := tightened[r]; ok {
					minimal = false
				}
			}
			if minimal {
				st.MinimalCINDs++
			}
			// Broad CINDs live in the AR-pruned, frequent-condition universe.
			broad := supports[dep] >= h && freq[dep.Cond] >= h && freq[r.Cond] >= h
			if _, arDep := arSet[dep.Cond]; arDep {
				broad = false
			}
			if _, arRef := arSet[r.Cond]; arRef {
				broad = false
			}
			if broad {
				st.BroadCINDs++
				if minimal {
					st.Pertinent++
				}
			}
		}
	}
	return st
}

// buildGroups materializes the capture groups of the dataset directly from
// the definition: the group of a value v contains every capture whose
// interpretation includes v. No frequency pruning is applied; the result is
// the ground truth Lemma 3 speaks about.
func buildGroups(ds *rdf.Dataset, opts Options) map[rdf.Value][]cind.Capture {
	members := make(map[rdf.Value]map[cind.Capture]struct{})
	add := func(v rdf.Value, c cind.Capture) {
		g, ok := members[v]
		if !ok {
			g = make(map[cind.Capture]struct{})
			members[v] = g
		}
		g[c] = struct{}{}
	}
	for _, t := range ds.Triples {
		for _, proj := range rdf.Attrs {
			if opts.PredicatesOnlyInConditions && proj == rdf.Predicate {
				continue
			}
			b, g := proj.Others()
			v := t.Get(proj)
			add(v, cind.Capture{Proj: proj, Cond: cind.Unary(b, t.Get(b))})
			add(v, cind.Capture{Proj: proj, Cond: cind.Unary(g, t.Get(g))})
			add(v, cind.Capture{Proj: proj, Cond: cind.Binary(b, t.Get(b), g, t.Get(g))})
		}
	}
	out := make(map[rdf.Value][]cind.Capture, len(members))
	for v, g := range members {
		caps := make([]cind.Capture, 0, len(g))
		for c := range g {
			caps = append(caps, c)
		}
		out[v] = caps
	}
	return out
}
