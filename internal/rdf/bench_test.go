package rdf_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/rdf"
)

// Ingest microbenchmarks: the sequential bufio reader vs the parallel
// byte-slice kernel at several shard counts. Run with
//
//	go test ./internal/rdf -run '^$' -bench Ingest -benchmem
//
// Even at one shard the parallel kernel should win on allocations: it slices
// terms out of the input buffer and materializes a string only on a term's
// first occurrence, where the sequential path materializes every line.

// benchDocument synthesizes an N-Triples corpus with term reuse patterns like
// real data: many subjects, few predicates, a mid-sized object vocabulary.
func benchDocument(triples int) []byte {
	var b strings.Builder
	b.Grow(triples * 80)
	for i := 0; i < triples; i++ {
		fmt.Fprintf(&b, "<http://example.org/entity/%d> <http://example.org/p%d> <http://example.org/value/%d> .\n",
			i/4, i%7, i%997)
		if i%5 == 0 {
			fmt.Fprintf(&b, "<http://example.org/entity/%d> <http://example.org/label> \"entity %d\"@en .\n", i/4, i/4)
		}
	}
	return []byte(b.String())
}

func BenchmarkIngestSequential(b *testing.B) {
	data := benchDocument(50000)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rdf.ReadNTriples(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIngestParallel(b *testing.B) {
	data := benchDocument(50000)
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := rdf.ParseNTriples(data, shards); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
