package rdf

// Dictionary maps RDF term strings to dense Value IDs and back. Encoding the
// corpus once lets every downstream stage (condition counting, capture
// groups, extraction) work on fixed-size integers, which is what keeps
// RDFind's data structures compact (§6).
type Dictionary struct {
	byStr map[string]Value
	byID  []string
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{byStr: make(map[string]Value)}
}

// NewDictionarySized returns an empty dictionary pre-sized for about n terms,
// so bulk loaders (the parallel ingest merge) avoid incremental map growth.
func NewDictionarySized(n int) *Dictionary {
	if n < 0 {
		n = 0
	}
	return &Dictionary{
		byStr: make(map[string]Value, n),
		byID:  make([]string, 0, n),
	}
}

// Encode interns s and returns its ID, assigning the next free ID on first
// sight.
func (d *Dictionary) Encode(s string) Value {
	if id, ok := d.byStr[s]; ok {
		return id
	}
	id := Value(len(d.byID))
	d.byStr[s] = id
	d.byID = append(d.byID, s)
	return id
}

// Lookup returns the ID for s without interning it.
func (d *Dictionary) Lookup(s string) (Value, bool) {
	id, ok := d.byStr[s]
	return id, ok
}

// Decode returns the surface form of id. It returns "?" for IDs the
// dictionary has never issued, including NoValue.
func (d *Dictionary) Decode(id Value) string {
	if int(id) >= len(d.byID) {
		return "?"
	}
	return d.byID[id]
}

// Len returns the number of distinct terms interned so far.
func (d *Dictionary) Len() int { return len(d.byID) }
