package rdf

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTriple checks two properties of the N-Triples reader on arbitrary
// input: the lenient mode never panics or errors spuriously (it may reject
// documents, never crash), and whatever it parses survives a write→reparse
// round-trip term for term. The parser keeps terms in surface form, so the
// writer must emit exactly what the strict reader accepts.
func FuzzReadTriple(f *testing.F) {
	seeds := []string{
		"",
		"# comment only\n",
		"<http://example.org/s> <http://example.org/p> <http://example.org/o> .",
		"<http://example.org/altes_museum> <http://example.org/located> <http://example.org/berlin> .\n" +
			"<http://example.org/berlin> <http://example.org/cityIn> <http://example.org/germany> .",
		"_:b0 <http://example.org/p> _:b1 .",
		`<s> <p> "plain literal" .`,
		`<s> <p> "escaped \" quote" .`,
		`<s> <p> "trailing backslash \\" .`,
		`<s> <p> "typed"^^<http://www.w3.org/2001/XMLSchema#string> .`,
		`<s> <p> "tagged"@en-US .`,
		`<s> <p> "héllo wörld ☃" .`,
		`<s> <p> "dot inside . and # hash" .`,
		"<a><b><c>.",
		`<s> <p> "no space".`,
		"  <s>\t<p>\t<o>\t.  ",
		"<s> <p> <o>",            // missing dot
		`<s> <p> "unterminated`,  // unterminated literal
		"<s> <p> <unterminated",  // unterminated URI
		`<s> <p> "t"^^<no-close`, // unterminated datatype
		"just some text\nacross lines\n",
		"<ok> <ok> <ok> .\nbroken line\n<ok2> <ok2> <ok2> .",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	// One seed produced by the writer itself, covering term wrapping.
	ds := NewDataset()
	ds.Add("bare-term", "p", `"lit"@de`)
	ds.Add("<u>", "_:b", `"x\ny"`)
	var b bytes.Buffer
	if err := WriteNTriples(&b, ds); err != nil {
		f.Fatal(err)
	}
	f.Add(b.String())

	f.Fuzz(func(t *testing.T, input string) {
		parsed, malformed, err := ReadNTriplesLenient(strings.NewReader(input), 50)
		if err != nil {
			// Over the malformed-line cap; rejecting is fine, panicking is
			// not — and the parallel kernel must reject identically.
			if _, _, perr := ParseNTriplesLenient([]byte(input), 4, 50); perr == nil || perr.Error() != err.Error() {
				t.Fatalf("parallel lenient diverged on rejection: %v vs %v", perr, err)
			}
			return
		}
		for _, se := range malformed {
			if se == nil || se.Line <= 0 || se.Err == nil {
				t.Fatalf("malformed report without position or cause: %v", se)
			}
		}

		// Differential: the parallel byte-slice kernel accepts exactly the
		// same documents with exactly the same dictionary assignment.
		par, parMalformed, parErr := ParseNTriplesLenient([]byte(input), 4, 50)
		if parErr != nil {
			t.Fatalf("parallel lenient failed where sequential succeeded: %v", parErr)
		}
		if len(parMalformed) != len(malformed) {
			t.Fatalf("parallel reported %d malformed lines, sequential %d", len(parMalformed), len(malformed))
		}
		for i := range malformed {
			if parMalformed[i].Line != malformed[i].Line {
				t.Fatalf("parallel malformed line %d at %d, sequential at %d",
					i, parMalformed[i].Line, malformed[i].Line)
			}
		}
		if len(par.Triples) != len(parsed.Triples) || par.Dict.Len() != parsed.Dict.Len() {
			t.Fatalf("parallel parse diverged: %d triples/%d terms vs %d/%d",
				len(par.Triples), par.Dict.Len(), len(parsed.Triples), parsed.Dict.Len())
		}
		for i := range parsed.Triples {
			if par.Triples[i] != parsed.Triples[i] {
				t.Fatalf("parallel triple %d = %+v, sequential %+v", i, par.Triples[i], parsed.Triples[i])
			}
		}

		// Round-trip: write what was parsed, reparse strictly, compare terms.
		var buf bytes.Buffer
		if err := WriteNTriples(&buf, parsed); err != nil {
			t.Fatalf("write failed on parsed dataset: %v", err)
		}
		back, err := ReadNTriples(&buf)
		if err != nil {
			t.Fatalf("strict reparse of written output failed: %v\ndocument:\n%s", err, buf.String())
		}
		if len(back.Triples) != len(parsed.Triples) {
			t.Fatalf("round-trip changed triple count: %d -> %d\ndocument:\n%s",
				len(parsed.Triples), len(back.Triples), buf.String())
		}
		for i := range parsed.Triples {
			p, q := parsed.Triples[i], back.Triples[i]
			ps := [3]string{parsed.Dict.Decode(p.S), parsed.Dict.Decode(p.P), parsed.Dict.Decode(p.O)}
			qs := [3]string{back.Dict.Decode(q.S), back.Dict.Decode(q.P), back.Dict.Decode(q.O)}
			if ps != qs {
				t.Fatalf("round-trip changed triple %d: %q -> %q", i, ps, qs)
			}
		}
	})
}
